// E1 — Storage overhead of the provenance schema over Places.
//
// Paper (section 4): "The total storage overhead of this schema over
// Places is 39.5%, but on real data, this represents less than 5MB
// because Places is quite conservative."
//
// Both recorders ingest the same 79-day stream into one database; bytes
// are attributed per tree namespace by the storage engine's space
// accounting (pages x page size, as one would measure SQLite tables).
// The text index used by search is reported separately: it is IR
// infrastructure, not part of the provenance schema the paper measures.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  Init(argc, argv, "bench_storage_overhead");

  Header("E1", "storage overhead: provenance schema vs Places baseline",
         "39.5% overhead over Places; < 5 MB on a real 79-day history");

  auto fx = HistoryFixture::Build({});
  auto space = MustOk(fx->db->Space(), "space report");

  const uint64_t places_bytes = space.BytesForPrefix("places.");
  const uint64_t prov_bytes = space.BytesForPrefix("prov.");
  const uint64_t text_bytes = space.BytesForPrefix("textindex.");
  // The paper's provenance schema subsumes Places (pages, bookmarks,
  // downloads become homogeneous nodes), so the comparable figure is the
  // cost of REPLACING Places: (prov - places) / places. The side-by-side
  // ratio prov/places is printed too.
  const double replace_overhead =
      100.0 * (static_cast<double>(prov_bytes) -
               static_cast<double>(places_bytes)) /
      static_cast<double>(places_bytes);
  const double side_by_side =
      100.0 * static_cast<double>(prov_bytes) /
      static_cast<double>(places_bytes);

  Row("history scale: %u days, %llu visits, %llu prov nodes, %llu prov edges",
      79, (unsigned long long)fx->out.total_visits,
      (unsigned long long)*fx->prov->NodeCount(),
      (unsigned long long)*fx->prov->EdgeCount());
  Blank();
  Row("%-34s %12s %10s", "schema (tree namespace)", "bytes", "human");
  Row("%-34s %12llu %10s", "places.* (Firefox baseline)",
      (unsigned long long)places_bytes,
      util::HumanBytes(places_bytes).c_str());
  Row("%-34s %12llu %10s", "prov.* (provenance graph)",
      (unsigned long long)prov_bytes, util::HumanBytes(prov_bytes).c_str());
  Row("%-34s %12llu %10s", "textindex.* (IR index, reported only)",
      (unsigned long long)text_bytes, util::HumanBytes(text_bytes).c_str());
  Blank();
  Row("overhead of replacing Places with the provenance schema: %.1f%%",
      replace_overhead);
  Row("  (paper: 39.5%% — their schema reuses SQLite/Places row storage;");
  Row("   ours pays extra for graph adjacency indexes, see EXPERIMENTS.md)");
  Row("side-by-side ratio prov/places: %.1f%%", side_by_side);
  Row("absolute provenance footprint:  %s   (paper: < 5 MB)",
      util::HumanBytes(prov_bytes).c_str());
  Metric("replace_overhead_pct", replace_overhead);
  Metric("prov_bytes", static_cast<double>(prov_bytes));
  Metric("places_bytes", static_cast<double>(places_bytes));
  Blank();

  // Per-tree breakdown for the curious.
  Row("%-34s %10s %8s %8s", "tree", "pages", "cells", "depth");
  for (const auto& entry : space.trees) {
    Row("%-34s %10llu %8llu %8u", entry.name.c_str(),
        (unsigned long long)entry.stats.TotalPages(),
        (unsigned long long)entry.stats.cells, entry.stats.depth);
  }
  // Commit-latency distribution from the engine's registry (populated
  // by the fixture ingest): instrumentation liveness cross-check.
  MetricObsHistogram("obs_commit_us", CommitLatencyHistogram());
  return Finish();
}
