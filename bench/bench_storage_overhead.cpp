// E1 — Storage overhead of the provenance schema over Places, and the
// storage diet (checkpoint-time page compression) applied to both.
//
// Paper (section 4): "The total storage overhead of this schema over
// Places is 39.5%, but on real data, this represents less than 5MB
// because Places is quite conservative."
//
// Both recorders ingest the same 79-day stream into one database; bytes
// are attributed per tree namespace by the storage engine's space
// accounting. With the diet on (compression=fast), accounting switches
// from pages x page size to PHYSICAL bytes: a checkpoint slot holding a
// compressed frame counts header + payload (the rest of the slot is
// zero-filled and hole-punchable). The text index used by search is
// reported separately: it is IR infrastructure, not part of the
// provenance schema the paper measures.
//
// Why replace_overhead_pct exceeds the paper's 39.5% (often > 100%):
// the prov.* namespace carries THREE redundant access-path indexes —
// prov.in / prov.out (bidirectional adjacency postings) and
// prov.url_index — that store every edge or node key a second and third
// time so traces run without scans. The paper's schema piggybacked on
// SQLite tables and reused Places' own indexes, so its 39.5% counted
// none of that. The core graph data alone (prov.nodes + prov.edges)
// stays the same order as places.* (below it at this bench's config);
// the split is printed and exported below, and
// tests/integration_test.cpp pins the decomposition as a regression
// test.
#include "bench/common.hpp"

namespace {

struct SpaceCut {
  uint64_t places = 0;
  uint64_t prov = 0;
  uint64_t prov_core = 0;   // prov.nodes + prov.edges (graph data)
  uint64_t prov_index = 0;  // prov.in/out/url_index/term_index
  uint64_t text = 0;
};

SpaceCut Cut(const bp::storage::SpaceReport& space) {
  SpaceCut cut;
  cut.places = space.BytesForPrefix("places.");
  cut.prov = space.BytesForPrefix("prov.");
  cut.prov_core = space.BytesForPrefix("prov.nodes") +
                  space.BytesForPrefix("prov.edges");
  cut.prov_index = cut.prov - cut.prov_core;
  cut.text = space.BytesForPrefix("textindex.");
  return cut;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  using storage::compress::CompressionOptions;
  Init(argc, argv, "bench_storage_overhead");

  Header("E1", "storage overhead: provenance schema vs Places baseline",
         "39.5% overhead over Places; < 5 MB on a real 79-day history");

  FixtureOptions off_options;
  off_options.compression.mode = CompressionOptions::Mode::kOff;
  auto fx = HistoryFixture::Build(off_options);
  // Fold the WAL into the main file before measuring: space accounting
  // reads physical checkpoint slots, and the diet only applies at the
  // fold (the WAL hot path always stays raw).
  MustOk(fx->db->pager().Checkpoint(), "checkpoint (off)");
  auto space = MustOk(fx->db->Space(), "space report");
  const SpaceCut off = Cut(space);

  const uint64_t places_bytes = off.places;
  const uint64_t prov_bytes = off.prov;
  // The paper's provenance schema subsumes Places (pages, bookmarks,
  // downloads become homogeneous nodes), so the comparable figure is the
  // cost of REPLACING Places: (prov - places) / places. The side-by-side
  // ratio prov/places is printed too.
  const double replace_overhead =
      100.0 * (static_cast<double>(prov_bytes) -
               static_cast<double>(places_bytes)) /
      static_cast<double>(places_bytes);
  const double side_by_side =
      100.0 * static_cast<double>(prov_bytes) /
      static_cast<double>(places_bytes);
  const double core_overhead =
      100.0 * (static_cast<double>(off.prov_core) -
               static_cast<double>(places_bytes)) /
      static_cast<double>(places_bytes);

  Row("history scale: %u days, %llu visits, %llu prov nodes, %llu prov edges",
      State().smoke ? 3 : 79, (unsigned long long)fx->out.total_visits,
      (unsigned long long)*fx->prov->NodeCount(),
      (unsigned long long)*fx->prov->EdgeCount());
  Blank();
  Row("%-34s %12s %10s", "schema (tree namespace)", "bytes", "human");
  Row("%-34s %12llu %10s", "places.* (Firefox baseline)",
      (unsigned long long)places_bytes,
      util::HumanBytes(places_bytes).c_str());
  Row("%-34s %12llu %10s", "prov.* (provenance graph)",
      (unsigned long long)prov_bytes, util::HumanBytes(prov_bytes).c_str());
  Row("%-34s %12llu %10s", "  prov core (nodes + edges)",
      (unsigned long long)off.prov_core,
      util::HumanBytes(off.prov_core).c_str());
  Row("%-34s %12llu %10s", "  prov access-path indexes",
      (unsigned long long)off.prov_index,
      util::HumanBytes(off.prov_index).c_str());
  Row("%-34s %12llu %10s", "textindex.* (IR index, reported only)",
      (unsigned long long)off.text, util::HumanBytes(off.text).c_str());
  Blank();
  Row("overhead of replacing Places with the provenance schema: %.1f%%",
      replace_overhead);
  Row("  (paper: 39.5%% — their schema reused SQLite/Places row storage");
  Row("   and indexes; ours pays for prov.in/out adjacency postings and");
  Row("   prov.url_index on top of the core graph, see the file header)");
  Row("core graph only (nodes + edges) vs Places: %.1f%%", core_overhead);
  Row("side-by-side ratio prov/places: %.1f%%", side_by_side);
  Row("absolute provenance footprint:  %s   (paper: < 5 MB)",
      util::HumanBytes(prov_bytes).c_str());
  Metric("replace_overhead_pct", replace_overhead);
  Metric("core_overhead_pct", core_overhead);
  Metric("prov_bytes", static_cast<double>(prov_bytes));
  Metric("prov_core_bytes", static_cast<double>(off.prov_core));
  Metric("prov_index_bytes", static_cast<double>(off.prov_index));
  Metric("places_bytes", static_cast<double>(places_bytes));
  Blank();

  // Per-tree breakdown for the curious.
  Row("%-34s %10s %8s %8s", "tree", "pages", "cells", "depth");
  for (const auto& entry : space.trees) {
    Row("%-34s %10llu %8llu %8u", entry.name.c_str(),
        (unsigned long long)entry.stats.TotalPages(),
        (unsigned long long)entry.stats.cells, entry.stats.depth);
  }
  Blank();

  // ------------------------------------------- storage diet (E1b sweep)
  // The same stream ingested with compression=fast: checkpoint folds
  // compress every eligible page that clears the ratio floor, and the
  // space report prices compressed slots at their physical frame size.
  FixtureOptions fast_options;
  fast_options.compression.mode = CompressionOptions::Mode::kFast;
  auto fast_fx = HistoryFixture::Build(fast_options);
  MustOk(fast_fx->db->pager().Checkpoint(), "checkpoint (fast)");
  auto fast_space = MustOk(fast_fx->db->Space(), "space report (fast)");
  const SpaceCut fast = Cut(fast_space);
  const storage::PagerStats pager_stats = fast_fx->db->pager().stats();

  const uint64_t off_combined = off.prov + off.places;
  const uint64_t fast_combined = fast.prov + fast.places;
  const double reduction =
      fast_combined > 0 ? static_cast<double>(off_combined) /
                              static_cast<double>(fast_combined)
                        : 0.0;
  Row("storage diet (compression=fast, measured after checkpoint):");
  Row("%-34s %12s %12s", "namespace", "off bytes", "fast bytes");
  Row("%-34s %12llu %12llu", "places.*", (unsigned long long)off.places,
      (unsigned long long)fast.places);
  Row("%-34s %12llu %12llu", "prov.*", (unsigned long long)off.prov,
      (unsigned long long)fast.prov);
  Row("%-34s %12llu %12llu", "textindex.*", (unsigned long long)off.text,
      (unsigned long long)fast.text);
  Row("combined prov+places on-disk reduction: %.2fx", reduction);
  // Acceptance target for the storage diet: the fold must buy at least
  // 1.8x on the schema bytes the paper measures, or compression is not
  // earning its read-path tax.
  BP_CHECK(reduction >= 1.8,
           "compression=fast must reduce prov+places on-disk >= 1.8x");
  Row("checkpoint compression: %llu pages compressed, %llu -> %llu bytes, "
      "%llu decompress reads",
      (unsigned long long)pager_stats.compressed_pages,
      (unsigned long long)pager_stats.compressible_raw_bytes,
      (unsigned long long)pager_stats.compressed_bytes,
      (unsigned long long)pager_stats.decompress_reads);
  Metric("prov_bytes_fast", static_cast<double>(fast.prov));
  Metric("places_bytes_fast", static_cast<double>(fast.places));
  Metric("disk_reduction_x", reduction);
  Metric("compressed_pages", static_cast<double>(pager_stats.compressed_pages));
  Metric("compressed_bytes", static_cast<double>(pager_stats.compressed_bytes));
  // Commit-latency distribution from the engine's registry (populated
  // by the fixture ingest): instrumentation liveness cross-check.
  MetricObsHistogram("obs_commit_us", CommitLatencyHistogram());
  return Finish();
}
