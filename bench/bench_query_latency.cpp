// E3 — Use-case query latency on a 25k-node history.
//
// Paper (section 4): "These queries complete in less than 200ms in the
// majority of cases and can be bound to that time in the remaining
// cases."
//
// Runs each of the four use-case queries many times with varied inputs
// over the standard 79-day fixture; reports latency percentiles, then
// repeats with a 200ms QueryBudget to demonstrate the bound (anytime
// results, truncated flag instead of overrun).
#include "bench/common.hpp"
#include "prov/provenance_db.hpp"
#include "search/lineage.hpp"
#include "search/personalize.hpp"
#include "search/time_context.hpp"

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  Init(argc, argv, "bench_query_latency");

  Header("E3", "query latency for all four use cases",
         "< 200 ms in the majority of cases; boundable to 200 ms otherwise");

  auto fx = HistoryFixture::Build({});
  Row("history: %llu prov nodes, %llu edges",
      (unsigned long long)*fx->prov->NodeCount(),
      (unsigned long long)*fx->prov->EdgeCount());

  // Query inputs drawn from the user's own activity.
  std::vector<std::string> queries;
  for (const auto& episode : fx->out.searches) {
    queries.push_back(episode.query);
    if (queries.size() >= 40) break;
  }
  std::vector<prov::NodeId> downloads;
  for (const auto& episode : fx->out.downloads) {
    auto it = fx->prov_recorder->download_map().find(episode.download_id);
    if (it != fx->prov_recorder->download_map().end()) {
      downloads.push_back(it->second);
    }
    if (downloads.size() >= 40) break;
  }

  // Warm the interval index once (it is built lazily and cached).
  (void)fx->prov->VisitIntervals();

  struct Timing {
    std::string name;
    std::vector<double> ms;
    uint64_t truncated = 0;
  };
  auto run_suite = [&](bool budgeted) {
    std::vector<Timing> timings;
    {
      Timing t{"2.1 contextual history search", {}, 0};
      for (const std::string& query : queries) {
        util::QueryBudget budget = util::QueryBudget::WithDeadlineMs(200);
        search::ContextualSearchOptions options;
        if (budgeted) options.budget = &budget;
        util::Stopwatch watch;
        auto result =
            MustOk(fx->searcher->ContextualSearch(query, options), "uc1");
        t.ms.push_back(watch.ElapsedMs());
        if (result.truncated) ++t.truncated;
      }
      timings.push_back(std::move(t));
    }
    {
      Timing t{"2.2 personalized web search", {}, 0};
      for (const std::string& query : queries) {
        util::QueryBudget budget = util::QueryBudget::WithDeadlineMs(200);
        search::PersonalizeOptions options;
        if (budgeted) options.contextual.budget = &budget;
        util::Stopwatch watch;
        auto result =
            MustOk(search::PersonalizeQuery(*fx->searcher, query, options),
                   "uc2");
        t.ms.push_back(watch.ElapsedMs());
        if (result.truncated) ++t.truncated;
      }
      timings.push_back(std::move(t));
    }
    {
      Timing t{"2.3 time-contextual search", {}, 0};
      for (size_t i = 0; i + 1 < queries.size(); i += 2) {
        util::QueryBudget budget = util::QueryBudget::WithDeadlineMs(200);
        search::TimeContextOptions options;
        if (budgeted) options.budget = &budget;
        util::Stopwatch watch;
        auto result = MustOk(
            search::TimeContextualSearch(*fx->searcher, queries[i],
                                         queries[i + 1], options),
            "uc3");
        t.ms.push_back(watch.ElapsedMs());
        if (result.truncated) ++t.truncated;
      }
      timings.push_back(std::move(t));
    }
    {
      Timing t{"2.4 download lineage", {}, 0};
      for (prov::NodeId download : downloads) {
        util::QueryBudget budget = util::QueryBudget::WithDeadlineMs(200);
        search::LineageOptions options;
        if (budgeted) options.budget = &budget;
        util::Stopwatch watch;
        auto report =
            MustOk(search::TraceDownload(*fx->prov, download, options),
                   "uc4");
        t.ms.push_back(watch.ElapsedMs());
        if (report.truncated) ++t.truncated;
      }
      timings.push_back(std::move(t));
    }
    return timings;
  };

  for (bool budgeted : {false, true}) {
    Blank();
    Row("%s", budgeted
                  ? "WITH 200ms QueryBudget (anytime bound, paper's remedy)"
                  : "UNBOUNDED (natural latency)");
    Row("%-32s %6s %8s %8s %8s %8s %6s %10s", "query", "runs", "p50 ms",
        "p90 ms", "p99 ms", "max ms", "<200ms", "truncated");
    int suite_index = 0;
    for (const Timing& t : run_suite(budgeted)) {
      Percentiles p = ComputePercentiles(t.ms);
      uint64_t under = 0;
      for (double ms : t.ms) {
        if (ms < 200.0) ++under;
      }
      Row("%-32s %6zu %8.2f %8.2f %8.2f %8.2f %5.0f%% %10llu",
          t.name.c_str(), t.ms.size(), p.p50, p.p90, p.p99, p.max,
          100.0 * static_cast<double>(under) /
              static_cast<double>(t.ms.empty() ? 1 : t.ms.size()),
          (unsigned long long)t.truncated);
      ++suite_index;
      // uc2_1 .. uc2_4 = paper use cases 2.1 .. 2.4. Full percentile
      // family so bench_diff.py can watch the tail, not just the median.
      MetricPercentiles(util::StrFormat("uc2_%d_%s_ms", suite_index,
                                        budgeted ? "budgeted" : "unbounded"),
                        p);
    }
  }

  // ---- QueryStats: every query now reports the work it performed.
  {
    Blank();
    Row("QueryStats sample (contextual search, first query):");
    auto result =
        MustOk(fx->searcher->ContextualSearch(queries.front(), {}), "stats");
    Row("  \"%s\": %s", queries.front().c_str(),
        result.stats.ToString().c_str());
    Metric("uc1_sample_rows_scanned",
           static_cast<double>(result.stats.rows_scanned));
    Metric("uc1_sample_edges_expanded",
           static_cast<double>(result.stats.edges_expanded));
  }

  // ---- Cursor read path vs the deprecated callback wrappers.
  //
  // Same physical work (walk every adjacency of every node, both
  // directions); the callback path pays a type-erased call and a full
  // Edge materialization (AttrMap decode + per-attr allocations) per
  // edge, the cursor path decodes lazily and only touches the varint
  // prefix. The tentpole acceptance: cursors at parity or faster.
  {
    Blank();
    Row("edge iteration: cursor (lazy decode) vs callback (materialize)");
    const uint64_t node_count = *fx->prov->NodeCount();
    const int kRounds = 3;
    uint64_t edges_callback = 0, edges_cursor = 0;
    uint64_t kind_sum_callback = 0, kind_sum_cursor = 0;

    util::Stopwatch callback_watch;
    for (int round = 0; round < kRounds; ++round) {
      for (graph::NodeId node = 1; node <= node_count; ++node) {
        for (auto dir : {graph::Direction::kOut, graph::Direction::kIn}) {
          MustOk(fx->prov->graph().ForEachEdge(
                     node, dir,
                     [&](const graph::Edge& edge) {
                       ++edges_callback;
                       kind_sum_callback += edge.kind;
                       return true;
                     }),
                 "callback iteration");
        }
      }
    }
    const double callback_ms = callback_watch.ElapsedMs();

    util::Stopwatch cursor_watch;
    for (int round = 0; round < kRounds; ++round) {
      for (graph::NodeId node = 1; node <= node_count; ++node) {
        for (auto dir : {graph::Direction::kOut, graph::Direction::kIn}) {
          graph::EdgeCursor cur = fx->prov->graph().Edges(node, dir);
          for (; cur.Valid(); cur.Next()) {
            ++edges_cursor;
            kind_sum_cursor += cur.edge().kind();
          }
          MustOk(cur.status(), "cursor iteration");
        }
      }
    }
    const double cursor_ms = cursor_watch.ElapsedMs();
    BP_CHECK(edges_cursor == edges_callback &&
                 kind_sum_cursor == kind_sum_callback,
             "cursor and callback paths disagree");

    const double callback_eps =
        callback_ms > 0 ? 1000.0 * edges_callback / callback_ms : 0;
    const double cursor_eps =
        cursor_ms > 0 ? 1000.0 * edges_cursor / cursor_ms : 0;
    Row("  callback: %10llu edges in %8.1f ms  (%12.0f edges/s)",
        (unsigned long long)edges_callback, callback_ms, callback_eps);
    Row("  cursor:   %10llu edges in %8.1f ms  (%12.0f edges/s)",
        (unsigned long long)edges_cursor, cursor_ms, cursor_eps);
    Row("  speedup: %.2fx (acceptance: >= 1.0x, lazy decode should win)",
        callback_ms > 0 && cursor_ms > 0 ? callback_ms / cursor_ms : 0.0);
    Metric("edge_iter_callback_edges_per_sec", callback_eps);
    Metric("edge_iter_cursor_edges_per_sec", cursor_eps);
    Metric("edge_iter_cursor_speedup",
           cursor_ms > 0 ? callback_ms / cursor_ms : 0.0);
  }

  // ---- Shared buffer pool: repeated one-shot queries, cold open.
  //
  // Under WAL durability every one-shot facade query opens a fresh
  // snapshot. Before the shared pool, each snapshot carried a private
  // copy-on-read cache, so EVERY query cold-read its working set from
  // the database; with the pool, only the first touch of a page image
  // pays storage — successive queries run warm no matter how many
  // snapshots come and go.
  //
  // Modeled like the paper's forensics pattern: ingest a history, CLOSE
  // it, reopen the file cold, and interrogate it with repeated one-shot
  // queries. Reads are charged kColdReadUs per page (MemEnv read-cost
  // model, same device-time technique as bench_wal_commit's fsync cost
  // and E12's kModeledSync) — an NVMe-class cache-cold 4 KiB read; a
  // laptop SSD or a spinning disk is slower, so the pool's win here is
  // the conservative end. Acceptance: warm passes >= 2x the cold /
  // per-snapshot baseline.
  {
    constexpr uint32_t kColdReadUs = 20;
    Blank();
    Row("one-shot facade queries, repeated (WAL, cold-open history,");
    Row("modeled %u us/page cold reads):", kColdReadUs);
    const int kPasses = 3;
    struct OneShotRun {
      std::vector<double> pass_ms;
      std::vector<double> query_ms;  // per-query samples, warm passes only
      uint64_t pool_hits = 0;
      uint64_t pool_misses = 0;
      uint64_t pages_fetched = 0;
    };
    auto run_config = [&](size_t pool_bytes) {
      storage::MemEnv env;
      prov::ProvenanceDb::Options options;
      options.db.env = &env;
      options.db.sync = false;  // measuring the read path, not fsync
      options.db.durability = storage::DurabilityMode::kWal;
      options.db.pool_bytes = pool_bytes;

      std::vector<std::string> qs(
          queries.begin(),
          queries.begin() + std::min<size_t>(queries.size(), 16));
      std::vector<prov::NodeId> dls;
      {
        // Build the history, then close it cleanly (folds the WAL).
        auto writer = MustOk(prov::ProvenanceDb::Open("oneshot.db", options),
                             "open one-shot writer");
        MustOk(writer->IngestAll(fx->out.events), "one-shot ingest");
        for (const auto& episode : fx->out.downloads) {
          auto it =
              writer->recorder().download_map().find(episode.download_id);
          if (it != writer->recorder().download_map().end()) {
            dls.push_back(it->second);
          }
          if (dls.size() >= 16) break;
        }
        // Build the text index before closing so reopened queries need
        // no writes (the forensics reader interrogates, never ingests).
        MustOk(writer->Search(qs.empty() ? "page" : qs[0]).status(),
               "index build");
      }

      // Reopen cold: empty caches, empty pool, device-priced reads.
      env.set_read_cost_us(kColdReadUs);
      auto db = MustOk(prov::ProvenanceDb::Open("oneshot.db", options),
                       "reopen one-shot facade");
      OneShotRun run;
      for (int pass = 0; pass < kPasses; ++pass) {
        // Per-query samples from warm passes only: pass 0 is the pool
        // fill, and mixing fill faults into the distribution would hide
        // a warm-path regression behind cold-read noise.
        const bool sample = pass > 0;
        util::Stopwatch watch;
        for (const std::string& q : qs) {
          util::Stopwatch one;
          MustOk(db->Search(q).status(), "one-shot search");
          if (sample) run.query_ms.push_back(one.ElapsedMs());
        }
        for (prov::NodeId dl : dls) {
          util::Stopwatch one;
          MustOk(db->TraceDownload(dl).status(), "one-shot lineage");
          if (sample) run.query_ms.push_back(one.ElapsedMs());
        }
        run.pass_ms.push_back(watch.ElapsedMs());
      }
      storage::PagerStats stats = db->storage_stats();
      run.pool_hits = stats.pool_hits;
      run.pool_misses = stats.pool_misses;
      run.pages_fetched = stats.snapshot_pages_read;
      return run;
    };

    OneShotRun private_cache = run_config(/*pool_bytes=*/0);
    OneShotRun pooled = run_config(/*pool_bytes=*/size_t{256} << 20);

    // Per-snapshot baseline: its best (min) pass — most favorable to
    // the old design (every pass re-reads, so they are all "warm" in
    // the only sense that design supports). Warm: the pool's best
    // post-cold pass.
    double baseline_ms = private_cache.pass_ms[0];
    for (double ms : private_cache.pass_ms) {
      baseline_ms = std::min(baseline_ms, ms);
    }
    const double cold_ms = pooled.pass_ms[0];
    double warm_ms = pooled.pass_ms[1];
    for (size_t i = 1; i < pooled.pass_ms.size(); ++i) {
      warm_ms = std::min(warm_ms, pooled.pass_ms[i]);
    }
    // The cold/per-snapshot baseline IS the old design: with a private
    // cache per snapshot, every one-shot query re-reads its working
    // set, so every pass is as cold as the first. Pass 1 of the pooled
    // run is already partially warm — queries within the pass share
    // frames from the moment the first query faulted them in — which is
    // exactly the effect being measured.
    Row("  cold / per-snapshot baseline:  best pass %8.1f ms", baseline_ms);
    Row("  shared pool, pass 1 (filling):            %8.1f ms", cold_ms);
    Row("  shared pool, warm passes:                 %8.1f ms", warm_ms);
    Row("  warm speedup vs cold baseline: %.2fx (acceptance: >= 2x)",
        warm_ms > 0 ? baseline_ms / warm_ms : 0.0);
    Row("  warm speedup vs pass 1:        %.2fx", warm_ms > 0 ? cold_ms / warm_ms : 0.0);
    Row("  pool: %llu hits, %llu misses over %d passes "
        "(baseline re-fetched %llu pages)",
        (unsigned long long)pooled.pool_hits,
        (unsigned long long)pooled.pool_misses, kPasses,
        (unsigned long long)private_cache.pages_fetched);
    Metric("oneshot_cold_baseline_ms", baseline_ms);
    Metric("oneshot_pool_pass1_ms", cold_ms);
    Metric("oneshot_pool_warm_ms", warm_ms);
    Metric("oneshot_warm_speedup",
           warm_ms > 0 ? baseline_ms / warm_ms : 0.0);
    Metric("oneshot_pool_hits", static_cast<double>(pooled.pool_hits));
    Metric("oneshot_pool_misses", static_cast<double>(pooled.pool_misses));
    // Per-query warm latency distribution — the acceptance gate for the
    // read path's tail (bench_diff.py tracks p50/p99 at loose tolerance).
    MetricPercentiles("oneshot_query_ms",
                      ComputePercentiles(std::move(pooled.query_ms)));
    // Engine-side view of the same queries through the registry
    // histograms (every one-shot facade call above recorded into
    // bp_query_us): cross-checks that the instrumentation fired.
    MetricObsHistogram("obs_query_search_us", QueryLatencyHistogram("search"));
    MetricObsHistogram("obs_query_trace_us",
                       QueryLatencyHistogram("trace_download"));
  }

  Blank();
  Row("('<200ms' should be a large majority unbounded and 100%% budgeted,");
  Row(" reproducing the paper's latency claim)");
  return Finish();
}
