// Shared fixture and reporting helpers for the experiment benches.
//
// Every experiment binary builds (or reuses) a simulated history of the
// paper's scale — 79 days, >25,000 provenance nodes — ingested through
// BOTH recorders into one database, then prints a paper-style table with
// the paper's claimed value next to the measured one.
#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "capture/bus.hpp"
#include "capture/recorders.hpp"
#include "obs/metrics.hpp"
#include "places/places.hpp"
#include "prov/prov_store.hpp"
#include "search/history_search.hpp"
#include "sim/browser.hpp"
#include "sim/vocab.hpp"
#include "sim/web.hpp"
#include "storage/env.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace bp::bench {

// --------------------------------------------------- CLI / JSON output
//
// Every table-style bench accepts:
//   --json    after the human-readable tables, write BENCH_<name>.json
//   --smoke   cap fixture scale (days <= 3) so CI can cheaply execute
//             every bench end-to-end
//
// The JSON schema is flat and append-only so perf-trajectory tooling can
// diff runs:
//   { "bench": "<name>", "smoke": <bool>,
//     "metrics": { "<key>": <number>, ... } }
//
// Usage in a bench:
//   int main(int argc, char** argv) {
//     Init(argc, argv, "bench_foo");
//     ...
//     Metric("p50_ms", p.p50);
//     return Finish();
//   }
struct BenchState {
  std::string name;
  bool json = false;
  bool smoke = false;
  std::vector<std::pair<std::string, double>> metrics;
};

inline BenchState& State() {
  static BenchState state;
  return state;
}

inline void Init(int argc, char** argv, const char* name) {
  State().name = name;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      State().json = true;
    } else if (arg == "--smoke") {
      State().smoke = true;
    } else {
      std::fprintf(stderr, "%s: unknown flag %s (known: --json --smoke)\n",
                   name, arg.c_str());
    }
  }
}

// Records a headline number for the JSON report (ignored without --json).
inline void Metric(const std::string& key, double value) {
  State().metrics.emplace_back(key, value);
}


// Writes BENCH_<name>.json when --json was passed. Return this from main.
inline int Finish() {
  const BenchState& state = State();
  if (!state.json) return 0;
  const std::string path = "BENCH_" + state.name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  // Keys are expected to be snake_case slugs, but escape the JSON
  // string specials anyway so a stray label can never break the file.
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"smoke\": %s,\n  \"metrics\": {",
               state.name.c_str(), state.smoke ? "true" : "false");
  for (size_t i = 0; i < state.metrics.size(); ++i) {
    std::fprintf(f, "%s\n    \"%s\": %.17g", i == 0 ? "" : ",",
                 escape(state.metrics[i].first).c_str(),
                 state.metrics[i].second);
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu metrics)\n", path.c_str(),
              state.metrics.size());
  return 0;
}

// Aborts with a message on error — benches have no one to return Status
// to.
template <typename T>
T MustOk(util::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void MustOk(util::Status status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

struct FixtureOptions {
  uint32_t days = 79;
  uint64_t seed = 2009;  // year of the paper
  prov::VersionPolicy policy = prov::VersionPolicy::kVersionNodes;
  bool record_close_times = true;
  double redirect_fraction = 0.06;  // web knob (E9 raises it)
  sim::UserConfig user;             // overrides applied after defaults
  bool user_overridden = false;
  // Ingest rides the WAL + group-commit + batched-transaction path by
  // default — the production capture configuration. Set durability to
  // kRollbackJournal / ingest_batch to 1 to measure the naive path.
  storage::DurabilityMode durability = storage::DurabilityMode::kWal;
  uint32_t wal_group_commit = 8;
  size_t ingest_batch = 256;  // events per storage transaction
  // Storage diet: kFast compresses checkpoint folds + demotes pool
  // evictions to the compressed cold tier. Default follows
  // BP_COMPRESSION (so a compression-on CI lane exercises the benches
  // too); sweeps set it explicitly.
  storage::compress::CompressionOptions compression;
};

// A complete simulated world + populated database.
struct HistoryFixture {
  storage::MemEnv env;
  sim::Vocabulary vocab;
  sim::WebGraph web;
  sim::SimOutput out;
  std::unique_ptr<storage::Db> db;
  std::unique_ptr<places::PlacesStore> places;
  std::unique_ptr<prov::ProvStore> prov;
  std::unique_ptr<capture::PlacesRecorder> places_recorder;
  std::unique_ptr<capture::ProvenanceRecorder> prov_recorder;
  std::unique_ptr<search::HistorySearcher> searcher;
  double ingest_seconds = 0;

  static std::unique_ptr<HistoryFixture> Build(FixtureOptions options) {
    auto fx = std::make_unique<HistoryFixture>();
    if (State().smoke) {
      // CI smoke mode: every bench must run end to end in seconds, not
      // reproduce the paper's scale.
      options.days = std::min(options.days, 3u);
    }
    util::Rng rng(options.seed);
    fx->vocab = sim::Vocabulary::Create(rng, {});
    sim::WebConfig web_config;
    web_config.redirect_page_fraction = options.redirect_fraction;
    fx->web = sim::WebGraph::Generate(rng, web_config, fx->vocab);

    sim::UserConfig user = options.user;
    if (!options.user_overridden) {
      user = sim::UserConfig{};
    }
    user.seed = options.seed + 1;
    user.days = options.days;
    fx->out = sim::BrowserSim(fx->web, user).Run();

    storage::DbOptions db_opts;
    db_opts.env = &fx->env;
    db_opts.sync = false;  // measuring CPU/layout, not fsync
    db_opts.durability = options.durability;
    db_opts.wal_group_commit = options.wal_group_commit;
    db_opts.compression = options.compression;
    fx->db = MustOk(storage::Db::Open("bench.db", db_opts), "open db");
    fx->places = MustOk(places::PlacesStore::Open(*fx->db), "places");
    prov::ProvOptions prov_opts;
    prov_opts.policy = options.policy;
    prov_opts.record_close_times = options.record_close_times;
    fx->prov = MustOk(prov::ProvStore::Open(*fx->db, prov_opts), "prov");

    fx->places_recorder =
        std::make_unique<capture::PlacesRecorder>(*fx->places);
    fx->prov_recorder =
        std::make_unique<capture::ProvenanceRecorder>(*fx->prov);
    capture::EventBus bus;
    bus.Subscribe(fx->places_recorder.get());
    bus.Subscribe(fx->prov_recorder.get());
    const storage::PagerStats pre_ingest = fx->db->pager().stats();
    util::Stopwatch watch;
    // Batched ingest: chunks of events share one storage transaction
    // (each recorder's per-event transaction nests into it), and with
    // WAL durability adjacent chunks share one group-committed fsync.
    const size_t batch = std::max<size_t>(1, options.ingest_batch);
    for (size_t start = 0; start < fx->out.events.size(); start += batch) {
      size_t end = std::min(fx->out.events.size(), start + batch);
      MustOk(fx->db->Begin(), "ingest batch begin");
      for (size_t i = start; i < end; ++i) {
        MustOk(bus.Publish(fx->out.events[i]), "ingest");
      }
      MustOk(fx->db->Commit(), "ingest batch commit");
    }
    fx->ingest_seconds = watch.ElapsedMs() / 1000.0;
    ReportIngestDurability(pre_ingest, fx->db->pager().stats(),
                           fx->ingest_seconds);

    fx->searcher =
        MustOk(search::HistorySearcher::Open(*fx->db, *fx->prov),
               "searcher");
    return fx;
  }

  // Durability cost of the ingest loop alone (delta over it, excluding
  // schema-setup commits), printed under every experiment header so the
  // storage price of capture is always visible next to the result. The
  // fixture runs sync=false (it measures CPU/layout), so the fsync
  // columns are only printed when a fixture variant actually syncs;
  // bench_wal_commit is the experiment that models fsync cost.
  static void ReportIngestDurability(const storage::PagerStats& before,
                                     const storage::PagerStats& after,
                                     double seconds) {
    uint64_t fsyncs = after.fsyncs - before.fsyncs;
    uint64_t bytes_synced = after.bytes_synced - before.bytes_synced;
    if (fsyncs == 0 && bytes_synced == 0) {
      std::printf(
          "ingest durability: %llu commits, %llu pages written, %.2fs "
          "(sync off; fsync cost modeled in bench_wal_commit)\n",
          (unsigned long long)(after.commits - before.commits),
          (unsigned long long)(after.pages_written - before.pages_written),
          seconds);
      return;
    }
    std::printf(
        "ingest durability: %llu commits, %llu pages written, %llu fsyncs, "
        "%llu bytes synced, %.2fs\n",
        (unsigned long long)(after.commits - before.commits),
        (unsigned long long)(after.pages_written - before.pages_written),
        (unsigned long long)fsyncs, (unsigned long long)bytes_synced,
        seconds);
  }
};

// ------------------------------------------------------------ reporting

inline void Header(const std::string& id, const std::string& title,
                   const std::string& paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("paper claim: %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
}

inline void Row(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

// Blank separator line (avoids -Wformat-zero-length on Row("")).
inline void Blank() { std::printf("\n"); }

struct Percentiles {
  double p50 = 0, p90 = 0, p99 = 0, max = 0, mean = 0;
};

// Emits one latency-style distribution as the flat keys bench_diff.py
// gates: <prefix>_p50, _p90, _p99, _max, _mean.
inline void MetricPercentiles(const std::string& prefix,
                              const Percentiles& p) {
  Metric(prefix + "_p50", p.p50);
  Metric(prefix + "_p90", p.p90);
  Metric(prefix + "_p99", p.p99);
  Metric(prefix + "_max", p.max);
  Metric(prefix + "_mean", p.mean);
}

// Same flat keys, sourced from a registry histogram the engine recorded
// into (obs/metrics.hpp) — the bench-side window onto the process-wide
// instruments. `count` is included so a silently empty histogram (an
// instrumentation regression) is visible in the diff.
inline void MetricObsHistogram(const std::string& prefix,
                               const obs::Histogram& h) {
  const obs::Histogram::Snapshot s = h.snapshot();
  Metric(prefix + "_count", static_cast<double>(s.count));
  Metric(prefix + "_p50", s.p50);
  Metric(prefix + "_p90", s.p90);
  Metric(prefix + "_p99", s.p99);
  Metric(prefix + "_max", static_cast<double>(s.max));
  Metric(prefix + "_mean", s.mean);
}

// The process-wide engine histograms benches most often report. The
// registry find-or-creates, so these are safe to call even before the
// engine first records (count = 0 then).
inline obs::Histogram& CommitLatencyHistogram() {
  return *obs::MetricsRegistry::Global().GetHistogram(
      "bp_commit_us", "",
      "End-to-end Pager::Commit latency (us), both durability modes");
}
inline obs::Histogram& QueryLatencyHistogram(const char* family) {
  return *obs::MetricsRegistry::Global().GetHistogram(
      "bp_query_us", std::string("family=\"") + family + "\"",
      "One-shot query latency by family (us)");
}

inline Percentiles ComputePercentiles(std::vector<double> samples) {
  Percentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * (samples.size() - 1));
    return samples[i];
  };
  out.p50 = at(0.50);
  out.p90 = at(0.90);
  out.p99 = at(0.99);
  out.max = samples.back();
  for (double s : samples) out.mean += s;
  out.mean /= static_cast<double>(samples.size());
  return out;
}

// Mean reciprocal rank helpers for the quality benches.
inline double ReciprocalRank(const std::vector<search::RankedPage>& pages,
                             const std::string& url) {
  for (size_t i = 0; i < pages.size(); ++i) {
    if (pages[i].url == url) return 1.0 / static_cast<double>(i + 1);
  }
  return 0.0;
}

}  // namespace bp::bench
