// S1 — Multi-profile service: shard workers must scale fsync overlap,
// and the handle cache must serve more profiles than it keeps open.
//
// Two phases:
//
//   throughput — 8 profiles (chosen so they spread evenly over 1/2/4
//        shards), 4 capture threads, MemEnv with a simulated 400us
//        device fsync (slept, not spun — a blocked fsync yields the
//        core), every profile database on sync WAL with strict
//        per-event durability (ingest batch 1, group window 1), so the
//        workload is fsync-bound the way loss-averse capture is. One
//        worker serializes every profile's fsyncs; four workers
//        overlap them (the sleeps overlap even on one core, which is
//        exactly the property a committer-per-shard buys). Handles are
//        pre-warmed so the measurement is steady-state ingest, not
//        database creation. Timed to full durability (Drain).
//
//   cache sweep — one worker, 8 profiles swept in contiguous blocks
//        through a 4-handle cache, 3 sweeps. Sequential distinct
//        profiles through an LRU smaller than the working set is the
//        classic worst case: EVERY block acquisition must miss, so the
//        open/reopen/eviction counters have closed forms —
//        opens = P*sweeps, reopens = P*(sweeps-1), evictions =
//        opens - cap — independent of how the worker batches the
//        queue. Those exact counts are the regression gate; the cache
//        hit rate (pops landing on an already-open handle) is
//        batch-boundary-dependent and reported as information only.
//
// Acceptance targets: >= 2x aggregate ingest throughput from 1 to 4
// workers at 8 profiles, and the cache-sweep counters matching their
// closed forms exactly.
#include <thread>

#include "bench/common.hpp"
#include "service/provenance_service.hpp"
#include "storage/env.hpp"
#include "util/hash.hpp"

namespace {

using namespace bp;
using namespace bp::bench;

constexpr uint32_t kSyncCostUs = 400;  // consumer-flash-class fsync
constexpr int kProfiles = 8;
constexpr int kCaptureThreads = 4;
constexpr const char* kRoot = "/bench-service";

// Profile names filling each (hash % 4) residue twice, so the set
// spreads 8/0, 4/4, and 2/2/2/2 over 1, 2, and 4 workers (the router
// is hash % workers, and balance mod 4 implies balance mod 2).
std::vector<std::string> BalancedProfiles() {
  std::vector<std::string> out;
  std::vector<int> residue_counts(4, 0);
  for (int i = 0; out.size() < kProfiles; ++i) {
    std::string name = "prof" + std::to_string(i);
    size_t residue = util::Fnv1a64(name) % 4;
    if (residue_counts[residue] < kProfiles / 4) {
      ++residue_counts[residue];
      out.push_back(std::move(name));
    }
  }
  return out;
}

capture::VisitEvent MakeVisit(const std::string& profile, int i) {
  capture::VisitEvent v;
  v.time = util::Days(1) + static_cast<util::TimeMs>(i) * 250;
  v.tab = 1;
  v.visit_id = static_cast<uint64_t>(i) + 1;
  v.url = "https://" + profile + ".example/page/" + std::to_string(i % 500);
  v.title = "capture stream page";
  v.action = capture::NavigationAction::kTyped;
  return v;
}

service::ServiceOptions ThroughputOptions(size_t workers,
                                          storage::MemEnv* env) {
  service::ServiceOptions options;
  options.workers = workers;
  options.max_live_handles = 16;  // no cache churn in this phase
  options.queue_capacity = 4096;
  options.db.db.env = env;
  options.db.db.sync = true;
  options.db.db.wal_group_commit = 1;  // every commit pays the device
  options.db.ingest_batch = 1;         // strict per-event durability
  return options;
}

struct RunResult {
  double events_per_sec = 0;
  Percentiles enqueue_us;  // per-event latency the capture thread paid
  service::ServiceStats stats;
};

RunResult RunThroughput(size_t workers, int per_profile,
                        const std::vector<std::string>& profiles) {
  storage::MemEnv env;
  env.set_sync_cost_us(kSyncCostUs);
  // Sleep (don't busy-wait) during the simulated fsync: a real fsync
  // blocks in the kernel and frees the core, and that yielded time is
  // precisely what independent shard committers overlap.
  env.set_sync_sleeps(true);
  auto svc = MustOk(
      service::ProvenanceService::Create(kRoot, ThroughputOptions(workers,
                                                                  &env)),
      "create service");

  // Pre-warm: open every profile's handle outside the timed window so
  // the measurement is steady-state ingest, not database creation.
  for (const std::string& profile : profiles) {
    MustOk(svc->Ingest(profile, MakeVisit(profile, 0)), "warm");
  }
  MustOk(svc->Drain(), "warm drain");

  // Each capture thread owns two profiles and alternates between them,
  // so per-profile event order is single-writer at the source.
  std::vector<std::vector<double>> latencies(kCaptureThreads);
  util::Stopwatch total;
  std::vector<std::thread> capture_threads;
  for (int t = 0; t < kCaptureThreads; ++t) {
    capture_threads.emplace_back([&, t] {
      latencies[t].reserve(2 * static_cast<size_t>(per_profile));
      for (int i = 1; i <= per_profile; ++i) {
        for (int own = 0; own < 2; ++own) {
          const std::string& profile = profiles[2 * t + own];
          util::Stopwatch call;
          MustOk(svc->Ingest(profile, MakeVisit(profile, i)), "ingest");
          latencies[t].push_back(call.ElapsedMs() * 1000.0);
        }
      }
    });
  }
  for (std::thread& t : capture_threads) t.join();
  MustOk(svc->Drain(), "drain");
  const double seconds = total.ElapsedMs() / 1000.0;

  RunResult r;
  r.events_per_sec = static_cast<double>(kCaptureThreads) * 2 * per_profile /
                     seconds;
  std::vector<double> all;
  for (auto& samples : latencies) {
    all.insert(all.end(), samples.begin(), samples.end());
  }
  r.enqueue_us = ComputePercentiles(std::move(all));
  r.stats = svc->Stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Init(argc, argv, "bench_service");
  const int per_profile = State().smoke ? 300 : 1500;
  const std::vector<std::string> profiles = BalancedProfiles();

  Header("S1", "multi-profile service: shard workers over profile databases",
         "one shared committer fleet scales capture across profiles");
  Row("%d profiles x %d capture threads, %d events/profile, MemEnv with "
      "%uus simulated fsync, sync WAL, per-event commits",
      kProfiles, kCaptureThreads, per_profile, kSyncCostUs);
  Blank();
  Row("%-8s %14s %9s %16s %16s", "workers", "events/s", "speedup",
      "enqueue p50 (us)", "enqueue p99 (us)");

  double base = 0;
  double speedup_at_4 = 0;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    RunResult r = RunThroughput(workers, per_profile, profiles);
    if (workers == 1) base = r.events_per_sec;
    const double speedup = r.events_per_sec / base;
    if (workers == 4) speedup_at_4 = speedup;
    Row("%-8zu %14.0f %8.2fx %16.1f %16.1f", workers, r.events_per_sec,
        speedup, r.enqueue_us.p50, r.enqueue_us.p99);
    const std::string suffix = "_w" + std::to_string(workers);
    Metric("service_events_per_sec" + suffix, r.events_per_sec);
    Metric("service_speedup" + suffix, speedup);
    MetricPercentiles("enqueue_us" + suffix, r.enqueue_us);
    if (workers == 4) {
      Metric("max_queue_depth_w4", static_cast<double>(r.stats.max_queue_depth));
      Metric("blocked_enqueues_w4",
             static_cast<double>(r.stats.blocked_enqueues));
    }
  }
  const bool throughput_pass = speedup_at_4 >= 2.0;

  // ---- cache sweep (deterministic counters) -------------------------
  const int kSweeps = 3;
  const int kCap = 4;
  const int kPerBlock = 6;
  storage::MemEnv sweep_env;
  service::ServiceOptions sweep_options;
  sweep_options.workers = 1;
  sweep_options.max_live_handles = kCap;
  sweep_options.db.db.env = &sweep_env;
  auto sweep_svc = MustOk(
      service::ProvenanceService::Create(kRoot, sweep_options), "sweep");
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    for (const std::string& profile : profiles) {
      for (int k = 0; k < kPerBlock; ++k) {
        MustOk(sweep_svc->Ingest(profile, MakeVisit(profile,
                                                    sweep * kPerBlock + k)),
               "sweep ingest");
      }
    }
    MustOk(sweep_svc->Drain(), "sweep drain");
  }
  service::ServiceStats sweep_stats = sweep_svc->Stats();
  const uint64_t want_opens = uint64_t{kProfiles} * kSweeps;
  const uint64_t want_reopens = uint64_t{kProfiles} * (kSweeps - 1);
  const uint64_t want_evictions = want_opens - kCap;
  const double hit_rate =
      static_cast<double>(sweep_stats.handle_hits) /
      static_cast<double>(sweep_stats.handle_hits + sweep_stats.handle_misses);
  const bool sweep_pass = sweep_stats.opens == want_opens &&
                          sweep_stats.reopens == want_reopens &&
                          sweep_stats.evictions == want_evictions &&
                          sweep_stats.live_handles == uint64_t{kCap};
  Blank();
  Row("cache sweep: %d profiles x %d sweeps through a %d-handle cache: "
      "%llu opens (want %llu), %llu reopens (want %llu), %llu evictions "
      "(want %llu), hit rate %.2f",
      kProfiles, kSweeps, kCap, (unsigned long long)sweep_stats.opens,
      (unsigned long long)want_opens, (unsigned long long)sweep_stats.reopens,
      (unsigned long long)want_reopens,
      (unsigned long long)sweep_stats.evictions,
      (unsigned long long)want_evictions, hit_rate);
  Metric("cache_opens", static_cast<double>(sweep_stats.opens));
  Metric("cache_reopens", static_cast<double>(sweep_stats.reopens));
  Metric("cache_evictions", static_cast<double>(sweep_stats.evictions));
  Metric("cache_hit_rate", hit_rate);

  // The engine's own record of every Ingest above, through the
  // process-wide registry histogram — the instrumentation cross-check.
  MetricObsHistogram("obs_service_ingest_us",
                     *obs::MetricsRegistry::Global().GetHistogram(
                         "bp_service_ingest_us",
                         std::string("service=\"") + kRoot + "\"", ""));

  Blank();
  Row("acceptance (>= 2x aggregate ingest 1 -> 4 workers): %s (%.2fx)",
      throughput_pass ? "PASS" : "FAIL", speedup_at_4);
  Row("acceptance (cache sweep counters match closed forms): %s",
      sweep_pass ? "PASS" : "FAIL");
  int json_status = Finish();
  return (throughput_pass && sweep_pass) ? json_status : 1;
}
