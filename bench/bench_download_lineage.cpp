// E7 — Download lineage (use case 2.4).
//
// Paper: the user wants "starting from a known location, the sequence of
// actions that resulted in the download" (first recognizable ancestor),
// and "find all descendants of this page that are downloads".
//
// Three measurements: (a) the planted malware chain resolves to the
// familiar portal and the descendant query finds both downloads; (b) on
// the 79-day fixture, the fraction of real downloads whose nearest page
// ancestor matches the simulator's ground-truth chain; (c) ancestor-BFS
// latency as the referral chain grows.
#include "bench/common.hpp"
#include "capture/bus.hpp"
#include "search/lineage.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  Init(argc, argv, "bench_download_lineage");

  Header("E7", "download lineage: recognizable ancestor + descendant downloads",
         "path query returns the first ancestor the user is likely to "
         "recognize; descendant query finds every download from an "
         "untrusted page");

  // (a) Planted malware chain, on its own store for exact assertions.
  {
    storage::MemEnv env;
    storage::DbOptions db_opts;
    db_opts.env = &env;
    db_opts.sync = false;
    auto db = MustOk(storage::Db::Open("mal.db", db_opts), "db");
    auto store = MustOk(prov::ProvStore::Open(*db, {}), "prov");
    capture::ProvenanceRecorder recorder(*store);
    capture::EventBus bus;
    bus.Subscribe(&recorder);
    sim::MalwareScenario scenario = sim::MakeMalwareScenario();
    MustOk(bus.PublishAll(scenario.events), "ingest");

    auto report = MustOk(
        search::TraceDownload(
            *store, recorder.download_map().at(scenario.download_id), {}),
        "trace");
    Row("planted chain: download %s", scenario.download_target.c_str());
    Row("  expected recognizable ancestor: %s",
        scenario.portal_url.c_str());
    Row("  found:                          %s  (%s)",
        report.recognizable_url.c_str(),
        report.recognizable_url == scenario.portal_url ? "MATCH"
                                                       : "MISMATCH");
    Row("  action path (%zu steps):", report.path.size());
    for (const auto& step : report.path) {
      Row("    -> %s", step.label.c_str());
    }
    auto descendants = MustOk(
        search::DescendantDownloads(*store, scenario.untrusted_url), "desc");
    Row("  downloads descending from %s: %zu (expected 2)",
        scenario.untrusted_url.c_str(), descendants.downloads.size());
    for (const auto& d : descendants.downloads) {
      Row("    -> %s (depth %u)", d.target_path.c_str(), d.depth);
    }
  }

  // (b) Ground-truth agreement on the realistic fixture.
  auto fx = HistoryFixture::Build({});
  int checked = 0, nearest_match = 0, recognizable_found = 0;
  std::vector<double> latencies;
  for (const auto& episode : fx->out.downloads) {
    auto it = fx->prov_recorder->download_map().find(episode.download_id);
    if (it == fx->prov_recorder->download_map().end()) continue;
    ++checked;
    // Nearest page ancestor (threshold 1) must equal the last chain page.
    search::LineageOptions options;
    options.min_visit_count = 1;
    util::Stopwatch watch;
    auto report =
        MustOk(search::TraceDownload(*fx->prov, it->second, options),
               "trace");
    latencies.push_back(watch.ElapsedMs());
    if (report.found_recognizable && !episode.referral_chain_urls.empty() &&
        report.recognizable_url == episode.referral_chain_urls.back()) {
      ++nearest_match;
    }
    // Default threshold: does a recognizable (>=5 visits) ancestor exist?
    auto familiar =
        MustOk(search::TraceDownload(*fx->prov, it->second, {}), "trace2");
    if (familiar.found_recognizable) ++recognizable_found;
  }
  Percentiles p = ComputePercentiles(latencies);
  MetricPercentiles("trace_ms", p);
  Metric("trace_p50_ms", p.p50);  // legacy name, kept for baseline diffs
  Metric("downloads_traced", checked);
  Metric("nearest_match", nearest_match);
  Blank();
  Row("79-day fixture: %d downloads traced", checked);
  Row("  nearest ancestor equals ground-truth trigger page: %d/%d",
      nearest_match, checked);
  Row("  recognizable (>=5 visits) ancestor found:          %d/%d",
      recognizable_found, checked);
  Row("  trace latency ms: p50 %.2f  p90 %.2f  max %.2f", p.p50, p.p90,
      p.max);

  // (c) Latency vs chain length (synthetic straight chains).
  Blank();
  Row("%12s %12s %14s", "chain hops", "trace ms", "ancestors seen");
  for (int hops : {2, 4, 8, 16, 32, 64}) {
    storage::MemEnv env;
    storage::DbOptions db_opts;
    db_opts.env = &env;
    db_opts.sync = false;
    auto db = MustOk(storage::Db::Open("chain.db", db_opts), "db");
    auto store = MustOk(prov::ProvStore::Open(*db, {}), "prov");
    prov::NodeId prev = 0;
    for (int i = 0; i < hops; ++i) {
      prev = MustOk(store->RecordVisit(
                        util::StrFormat("http://hop%d.example/", i), "hop",
                        i == 0 ? prov::EdgeKind::kTyped
                               : prov::EdgeKind::kLink,
                        prev, 1000 + i * 1000, 1),
                    "visit");
    }
    auto download = MustOk(
        store->RecordDownload("http://end.example/f.zip", "/tmp/f.zip",
                              prev, 999999),
        "download");
    search::LineageOptions options;
    options.min_visit_count = 100;  // force a full-ancestry walk
    util::Stopwatch watch;
    auto report =
        MustOk(search::TraceDownload(*store, download, options), "trace");
    Row("%12d %12.3f %14llu", hops, watch.ElapsedMs(),
        (unsigned long long)report.ancestors_scanned);
  }
  Blank();
  Row("(latency grows linearly with chain length and stays well under");
  Row(" the 200ms envelope at realistic depths)");
  return Finish();
}
