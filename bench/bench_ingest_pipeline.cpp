// A1 — Asynchronous ingest pipeline: capture must never stall.
//
// The paper's feasibility argument is that provenance capture rides
// along with normal browsing. This bench puts a number on the two write
// paths at 1/2/4 capture threads on MemEnv with a simulated 100us
// device fsync (the bench_wal_commit device model), WAL + the facade's
// default group-commit window:
//
//   sync  — every capture thread calls ProvenanceDb::Ingest: one storage
//           transaction per event, serialized on the writer mutex, fsync
//           cadence fixed by the group-commit window.
//   async — every capture thread calls IngestAsync (a bounded-queue
//           push); the background committer coalesces pending events
//           into batched transactions and adaptively group-commits.
//
// Both runs are timed end to end INCLUDING the final durability barrier
// (Sync / Drain), so the comparison is honest about where the work
// went. Alongside throughput, the per-call latency the capture thread
// actually experiences (p99) is reported — the number that decides
// whether the browser UI hitches.
//
// Acceptance target: async >= 2x sync sustained throughput at 4 capture
// threads.
#include <thread>

#include "bench/common.hpp"
#include "prov/provenance_db.hpp"
#include "storage/env.hpp"

namespace {

using namespace bp;
using namespace bp::bench;

constexpr uint32_t kSyncCostUs = 100;  // cheap-SSD fsync

capture::VisitEvent MakeVisit(int thread, int i) {
  capture::VisitEvent v;
  v.time = util::Days(1) + static_cast<util::TimeMs>(i) * 250;
  v.tab = static_cast<uint64_t>(thread) + 1;
  v.visit_id = static_cast<uint64_t>(thread) * 10000000 + i + 1;
  v.url = "https://t" + std::to_string(thread) + ".example/page/" +
          std::to_string(i % 500);
  v.title = "capture stream page";
  v.action = capture::NavigationAction::kTyped;
  return v;
}

std::vector<std::vector<capture::BrowserEvent>> MakeStreams(
    int threads, int per_thread) {
  std::vector<std::vector<capture::BrowserEvent>> streams(threads);
  for (int t = 0; t < threads; ++t) {
    streams[t].reserve(per_thread);
    for (int i = 0; i < per_thread; ++i) {
      streams[t].push_back(MakeVisit(t, i));
    }
  }
  return streams;
}

struct RunResult {
  double events_per_sec = 0;
  Percentiles call_us;  // per-event latency the capture thread paid
  capture::PipelineStats pipeline;
  uint64_t group_commits = 0;
  uint64_t fsyncs = 0;
};

// One configuration of the write-domain sweep: async ingest plus the
// background index-maintenance lane, on a simulated device whose fsync
// BLOCKS (sleeps) — so two streams fsyncing from two threads genuinely
// overlap, exactly like two files on a real disk.
struct DomainRunResult {
  double events_per_sec = 0;
  storage::DomainStats graph;  // stream 0: ingest commits
  storage::DomainStats text;   // stream 1: index refreshes
  uint64_t fsync_overlaps = 0;
  uint64_t fsyncs = 0;
  uint64_t maintenance_runs = 0;
  uint64_t early_flushes = 0;
};

constexpr uint32_t kDeviceSyncUs = 20000;  // budget-flash (SD/eMMC-class) fsync

// The sweep browses fresh pages (every URL unique): each maintenance
// pass has new documents to index, so the refresh lane carries real
// commits instead of no-op flushes — the load the text domain exists to
// absorb.
std::vector<std::vector<capture::BrowserEvent>> MakeFreshStreams(
    int threads, int per_thread) {
  std::vector<std::vector<capture::BrowserEvent>> streams(threads);
  for (int t = 0; t < threads; ++t) {
    streams[t].reserve(per_thread);
    for (int i = 0; i < per_thread; ++i) {
      capture::VisitEvent v;
      v.time = util::Days(1) + static_cast<util::TimeMs>(i) * 250;
      v.tab = static_cast<uint64_t>(t) + 1;
      v.visit_id = static_cast<uint64_t>(t) * 10000000 + i + 1;
      v.url = "https://t" + std::to_string(t) + ".example/article/" +
              std::to_string(i);
      v.title = "fresh page " + std::to_string(i) +
                " provenance capture index refresh";
      v.action = capture::NavigationAction::kTyped;
      streams[t].push_back(v);
    }
  }
  return streams;
}

DomainRunResult RunDomainSweep(uint32_t write_domains, int threads,
                               int per_thread) {
  storage::MemEnv env;
  env.set_sync_cost_us(kDeviceSyncUs);
  env.set_sync_sleeps(true);  // blocked-in-fsync: overlap is possible
  prov::ProvenanceDb::Options options;
  options.db.env = &env;
  options.db.write_domains = write_domains;
  // Tight window so the ingest lane fsyncs every other batch; the
  // refresh lane commits once per maintenance pass (never fills its
  // window) and is made durable by the maintenance thread OUTSIDE the
  // writer mutex — the overlap the domain split exists to create. The
  // 1-domain run is the identical workload on a single stream: the
  // refresh commits land between the ingest commits and every fsync
  // serializes on that one file.
  options.db.wal_group_commit = 2;
  options.ingest_batch = 32;
  options.async.index_maintenance = true;
  // Refresh as eagerly as the maintenance lane allows: search results
  // stay fresh, and the 1-domain run pays the full price of interleaving
  // refresh commits into the ingest lane's group-commit window.
  options.async.index_min_backlog = 1;
  auto db =
      MustOk(prov::ProvenanceDb::Open("domains.db", options), "open");

  auto streams = MakeFreshStreams(threads, per_thread);
  util::Stopwatch total;
  std::vector<std::thread> capture_threads;
  for (int t = 0; t < threads; ++t) {
    capture_threads.emplace_back([&, t] {
      for (const capture::BrowserEvent& event : streams[t]) {
        MustOk(db->IngestAsync(event).status(), "enqueue");
      }
    });
  }
  for (std::thread& t : capture_threads) t.join();
  // Let the committer drain the burst at its own cadence. Calling
  // Drain() here would plant the flush barrier while the queue is still
  // deep, forcing a group close (and an fsync) after every batch — a
  // degenerate mode that hides the group-commit window entirely. Wait
  // for the commits, then barrier once for the durability tail.
  const uint64_t total_events =
      static_cast<uint64_t>(threads) * static_cast<uint64_t>(per_thread);
  util::Stopwatch commit_wait;
  while (db->pipeline_stats().committed < total_events) {
    // A sticky committer error stops `committed` short; fall through to
    // Drain, which reports it, instead of spinning forever.
    if (commit_wait.ElapsedMs() > 120'000.0) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  MustOk(db->Drain(), "drain");
  const double seconds = total.ElapsedMs() / 1000.0;

  DomainRunResult r;
  r.events_per_sec =
      static_cast<double>(threads) * per_thread / seconds;
  r.graph = db->db().pager().domain_stats(storage::kGraphDomain);
  r.text = db->db().pager().domain_stats(storage::kTextDomain);
  const storage::PagerStats stats = db->db().pager().stats();
  r.fsync_overlaps = stats.fsync_overlaps;
  r.fsyncs = stats.fsyncs;
  r.maintenance_runs = db->pipeline_stats().maintenance_runs;
  r.early_flushes = db->pipeline_stats().early_flushes;
  return r;
}

RunResult Run(bool async, int threads, int per_thread) {
  storage::MemEnv env;
  env.set_sync_cost_us(kSyncCostUs);
  prov::ProvenanceDb::Options options;
  options.db.env = &env;
  options.async.enabled = async;  // sync baseline: no committer at all
  auto db = MustOk(prov::ProvenanceDb::Open("ingest.db", options), "open");

  auto streams = MakeStreams(threads, per_thread);
  std::vector<std::vector<double>> latencies(threads);
  const storage::PagerStats before = db->db().pager().stats();

  util::Stopwatch total;
  std::vector<std::thread> capture_threads;
  for (int t = 0; t < threads; ++t) {
    capture_threads.emplace_back([&, t] {
      latencies[t].reserve(streams[t].size());
      for (const capture::BrowserEvent& event : streams[t]) {
        util::Stopwatch call;
        if (async) {
          MustOk(db->IngestAsync(event).status(), "enqueue");
        } else {
          MustOk(db->Ingest(event), "ingest");
        }
        // Sub-us precision: an uncontended enqueue is a few hundred ns,
        // and a truncated-to-zero p50 would make the latency gate
        // meaningless.
        latencies[t].push_back(call.ElapsedMs() * 1000.0);
      }
    });
  }
  for (std::thread& t : capture_threads) t.join();
  // Same finish line for both paths: everything durable.
  if (async) {
    MustOk(db->Drain(), "drain");
  } else {
    MustOk(db->Sync(), "sync");
  }
  const double seconds = total.ElapsedMs() / 1000.0;
  const storage::PagerStats after = db->db().pager().stats();

  RunResult r;
  r.events_per_sec =
      static_cast<double>(threads) * per_thread / seconds;
  std::vector<double> all;
  for (auto& per_thread_samples : latencies) {
    all.insert(all.end(), per_thread_samples.begin(),
               per_thread_samples.end());
  }
  r.call_us = ComputePercentiles(std::move(all));
  r.pipeline = db->pipeline_stats();
  r.group_commits = after.group_commits - before.group_commits;
  r.fsyncs = after.fsyncs - before.fsyncs;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Init(argc, argv, "bench_ingest_pipeline");
  const int per_thread = State().smoke ? 1000 : 5000;
  Header("A1", "async ingest pipeline: capture threads vs the write path",
         "capture never stalls; async >= 2x sync throughput at 4 threads");
  Row("%d events/thread, MemEnv with %uus simulated fsync, WAL group "
      "window 8, ingest batch 256, timed to full durability",
      per_thread, kSyncCostUs);
  Blank();
  Row("%-8s %14s %14s %9s %16s %16s", "threads", "sync ev/s",
      "async ev/s", "speedup", "sync p99 (us)", "enqueue p99 (us)");

  bool pass = false;
  double speedup_at_4 = 0;
  for (int threads : {1, 2, 4}) {
    RunResult sync = Run(/*async=*/false, threads, per_thread);
    RunResult async = Run(/*async=*/true, threads, per_thread);
    const double speedup = async.events_per_sec / sync.events_per_sec;
    if (threads == 4) {
      speedup_at_4 = speedup;
      pass = speedup >= 2.0;
    }
    Row("%-8d %14.0f %14.0f %8.2fx %16.1f %16.1f", threads,
        sync.events_per_sec, async.events_per_sec, speedup,
        sync.call_us.p99, async.call_us.p99);
    const std::string suffix = "_t" + std::to_string(threads);
    Metric("sync_events_per_sec" + suffix, sync.events_per_sec);
    Metric("async_events_per_sec" + suffix, async.events_per_sec);
    Metric("async_speedup" + suffix, speedup);
    // Full tail-latency families (bench_diff.py gates the t4 enqueue
    // p50/p99 at a loose tolerance): the capture thread's experience.
    MetricPercentiles("sync_call_us" + suffix, sync.call_us);
    MetricPercentiles("enqueue_us" + suffix, async.call_us);
    if (threads == 4) {
      // The pipeline's own accounting for the heaviest configuration:
      // how much the committer coalesced and how the adaptive group
      // commit behaved.
      Metric("coalesced_txns_t4",
             static_cast<double>(async.pipeline.coalesced_txns));
      Metric("batches_t4", static_cast<double>(async.pipeline.batches));
      Metric("max_queue_depth_t4",
             static_cast<double>(async.pipeline.max_queue_depth));
      Metric("mean_queue_depth_t4", async.pipeline.mean_queue_depth);
      Metric("early_flushes_t4",
             static_cast<double>(async.pipeline.early_flushes));
      Metric("group_commits_t4",
             static_cast<double>(async.group_commits));
      Metric("async_fsyncs_t4", static_cast<double>(async.fsyncs));
      Row("  t4 async: %llu batches (%llu coalesced), queue depth "
          "max %llu / mean %.1f, %llu group commits, %llu fsyncs",
          (unsigned long long)async.pipeline.batches,
          (unsigned long long)async.pipeline.coalesced_txns,
          (unsigned long long)async.pipeline.max_queue_depth,
          async.pipeline.mean_queue_depth,
          (unsigned long long)async.group_commits,
          (unsigned long long)async.fsyncs);
    }
  }
  // ------------------------------------------- write-domain sweep
  // Same capture workload, async + background index maintenance, on a
  // BLOCKING simulated device (fsync sleeps 400us): one WAL stream vs
  // the partitioned layout where index refreshes ride their own stream
  // and fsync from the maintenance thread, overlapped with the ingest
  // committer's group commits.
  Blank();
  Row("write-domain sweep (4 capture threads, async + index "
      "maintenance, %uus blocking fsync, group window 2, batch 32):",
      kDeviceSyncUs);
  DomainRunResult one = RunDomainSweep(/*write_domains=*/1, 4, per_thread);
  DomainRunResult two = RunDomainSweep(/*write_domains=*/2, 4, per_thread);
  const double domain_speedup =
      one.events_per_sec > 0 ? two.events_per_sec / one.events_per_sec
                             : 0.0;
  Row("  1 domain : %12.0f ev/s  (%llu fsyncs, 0 overlapped, "
      "%llu maintenance passes)",
      one.events_per_sec, (unsigned long long)one.fsyncs,
      (unsigned long long)one.maintenance_runs);
  Row("  2 domains: %12.0f ev/s  (%llu fsyncs, %llu overlapped, "
      "%llu maintenance passes)  %.2fx",
      two.events_per_sec, (unsigned long long)two.fsyncs,
      (unsigned long long)two.fsync_overlaps,
      (unsigned long long)two.maintenance_runs, domain_speedup);
  Row("  2-domain streams: graph %llu txns / %llu wal bytes / %llu "
      "fsyncs, text %llu txns / %llu wal bytes / %llu fsyncs",
      (unsigned long long)two.graph.commits,
      (unsigned long long)two.graph.wal_bytes,
      (unsigned long long)two.graph.fsyncs,
      (unsigned long long)two.text.commits,
      (unsigned long long)two.text.wal_bytes,
      (unsigned long long)two.text.fsyncs);
  Row("  2-domain group commits: graph %llu, text %llu; pipeline early "
      "flushes %llu",
      (unsigned long long)two.graph.group_commits,
      (unsigned long long)two.text.group_commits,
      (unsigned long long)two.early_flushes);
  Metric("domains1_events_per_sec", one.events_per_sec);
  Metric("domains2_events_per_sec", two.events_per_sec);
  Metric("domain_split_speedup", domain_speedup);
  Metric("domains2_graph_commits", static_cast<double>(two.graph.commits));
  Metric("domains2_graph_wal_bytes",
         static_cast<double>(two.graph.wal_bytes));
  Metric("domains2_graph_fsyncs", static_cast<double>(two.graph.fsyncs));
  Metric("domains2_text_commits", static_cast<double>(two.text.commits));
  Metric("domains2_text_wal_bytes",
         static_cast<double>(two.text.wal_bytes));
  Metric("domains2_text_fsyncs", static_cast<double>(two.text.fsyncs));
  Metric("domains2_fsync_overlaps",
         static_cast<double>(two.fsync_overlaps));
  Metric("domains2_maintenance_runs",
         static_cast<double>(two.maintenance_runs));
  // The split only helps if BOTH streams carried commits and their
  // fsyncs actually overlapped.
  const bool domains_pass = domain_speedup >= 1.5 &&
                            two.text.commits > 0 &&
                            two.fsync_overlaps > 0;

  Blank();
  // The engine's own view of the same runs, through the process-wide
  // registry histograms (accumulated over every async Run above): the
  // cross-check that the obs instrumentation actually recorded.
  MetricObsHistogram("obs_enqueue_us",
                     *obs::MetricsRegistry::Global().GetHistogram(
                         "bp_ingest_enqueue_us", "", ""));
  MetricObsHistogram("obs_commit_batch_us",
                     *obs::MetricsRegistry::Global().GetHistogram(
                         "bp_ingest_commit_batch_us", "", ""));
  MetricObsHistogram("obs_batch_events",
                     *obs::MetricsRegistry::Global().GetHistogram(
                         "bp_ingest_batch_events", "", ""));
  Row("acceptance (async >= 2x sync at 4 capture threads): %s (%.2fx)",
      pass ? "PASS" : "FAIL", speedup_at_4);
  Row("acceptance (2-domain async >= 1.5x 1-domain at 4 threads, "
      "overlapped fsyncs observed): %s (%.2fx, %llu overlaps)",
      domains_pass ? "PASS" : "FAIL", domain_speedup,
      (unsigned long long)two.fsync_overlaps);
  int json_status = Finish();
  return pass && domains_pass ? json_status : 1;
}
