// A1 — Asynchronous ingest pipeline: capture must never stall.
//
// The paper's feasibility argument is that provenance capture rides
// along with normal browsing. This bench puts a number on the two write
// paths at 1/2/4 capture threads on MemEnv with a simulated 100us
// device fsync (the bench_wal_commit device model), WAL + the facade's
// default group-commit window:
//
//   sync  — every capture thread calls ProvenanceDb::Ingest: one storage
//           transaction per event, serialized on the writer mutex, fsync
//           cadence fixed by the group-commit window.
//   async — every capture thread calls IngestAsync (a bounded-queue
//           push); the background committer coalesces pending events
//           into batched transactions and adaptively group-commits.
//
// Both runs are timed end to end INCLUDING the final durability barrier
// (Sync / Drain), so the comparison is honest about where the work
// went. Alongside throughput, the per-call latency the capture thread
// actually experiences (p99) is reported — the number that decides
// whether the browser UI hitches.
//
// Acceptance target: async >= 2x sync sustained throughput at 4 capture
// threads.
#include <thread>

#include "bench/common.hpp"
#include "prov/provenance_db.hpp"
#include "storage/env.hpp"

namespace {

using namespace bp;
using namespace bp::bench;

constexpr uint32_t kSyncCostUs = 100;  // cheap-SSD fsync

capture::VisitEvent MakeVisit(int thread, int i) {
  capture::VisitEvent v;
  v.time = util::Days(1) + static_cast<util::TimeMs>(i) * 250;
  v.tab = static_cast<uint64_t>(thread) + 1;
  v.visit_id = static_cast<uint64_t>(thread) * 10000000 + i + 1;
  v.url = "https://t" + std::to_string(thread) + ".example/page/" +
          std::to_string(i % 500);
  v.title = "capture stream page";
  v.action = capture::NavigationAction::kTyped;
  return v;
}

std::vector<std::vector<capture::BrowserEvent>> MakeStreams(
    int threads, int per_thread) {
  std::vector<std::vector<capture::BrowserEvent>> streams(threads);
  for (int t = 0; t < threads; ++t) {
    streams[t].reserve(per_thread);
    for (int i = 0; i < per_thread; ++i) {
      streams[t].push_back(MakeVisit(t, i));
    }
  }
  return streams;
}

struct RunResult {
  double events_per_sec = 0;
  Percentiles call_us;  // per-event latency the capture thread paid
  capture::PipelineStats pipeline;
  uint64_t group_commits = 0;
  uint64_t fsyncs = 0;
};

RunResult Run(bool async, int threads, int per_thread) {
  storage::MemEnv env;
  env.set_sync_cost_us(kSyncCostUs);
  prov::ProvenanceDb::Options options;
  options.db.env = &env;
  options.async.enabled = async;  // sync baseline: no committer at all
  auto db = MustOk(prov::ProvenanceDb::Open("ingest.db", options), "open");

  auto streams = MakeStreams(threads, per_thread);
  std::vector<std::vector<double>> latencies(threads);
  const storage::PagerStats before = db->db().pager().stats();

  util::Stopwatch total;
  std::vector<std::thread> capture_threads;
  for (int t = 0; t < threads; ++t) {
    capture_threads.emplace_back([&, t] {
      latencies[t].reserve(streams[t].size());
      for (const capture::BrowserEvent& event : streams[t]) {
        util::Stopwatch call;
        if (async) {
          MustOk(db->IngestAsync(event).status(), "enqueue");
        } else {
          MustOk(db->Ingest(event), "ingest");
        }
        // Sub-us precision: an uncontended enqueue is a few hundred ns,
        // and a truncated-to-zero p50 would make the latency gate
        // meaningless.
        latencies[t].push_back(call.ElapsedMs() * 1000.0);
      }
    });
  }
  for (std::thread& t : capture_threads) t.join();
  // Same finish line for both paths: everything durable.
  if (async) {
    MustOk(db->Drain(), "drain");
  } else {
    MustOk(db->Sync(), "sync");
  }
  const double seconds = total.ElapsedMs() / 1000.0;
  const storage::PagerStats after = db->db().pager().stats();

  RunResult r;
  r.events_per_sec =
      static_cast<double>(threads) * per_thread / seconds;
  std::vector<double> all;
  for (auto& per_thread_samples : latencies) {
    all.insert(all.end(), per_thread_samples.begin(),
               per_thread_samples.end());
  }
  r.call_us = ComputePercentiles(std::move(all));
  r.pipeline = db->pipeline_stats();
  r.group_commits = after.group_commits - before.group_commits;
  r.fsyncs = after.fsyncs - before.fsyncs;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Init(argc, argv, "bench_ingest_pipeline");
  const int per_thread = State().smoke ? 1000 : 5000;
  Header("A1", "async ingest pipeline: capture threads vs the write path",
         "capture never stalls; async >= 2x sync throughput at 4 threads");
  Row("%d events/thread, MemEnv with %uus simulated fsync, WAL group "
      "window 8, ingest batch 256, timed to full durability",
      per_thread, kSyncCostUs);
  Blank();
  Row("%-8s %14s %14s %9s %16s %16s", "threads", "sync ev/s",
      "async ev/s", "speedup", "sync p99 (us)", "enqueue p99 (us)");

  bool pass = false;
  double speedup_at_4 = 0;
  for (int threads : {1, 2, 4}) {
    RunResult sync = Run(/*async=*/false, threads, per_thread);
    RunResult async = Run(/*async=*/true, threads, per_thread);
    const double speedup = async.events_per_sec / sync.events_per_sec;
    if (threads == 4) {
      speedup_at_4 = speedup;
      pass = speedup >= 2.0;
    }
    Row("%-8d %14.0f %14.0f %8.2fx %16.1f %16.1f", threads,
        sync.events_per_sec, async.events_per_sec, speedup,
        sync.call_us.p99, async.call_us.p99);
    const std::string suffix = "_t" + std::to_string(threads);
    Metric("sync_events_per_sec" + suffix, sync.events_per_sec);
    Metric("async_events_per_sec" + suffix, async.events_per_sec);
    Metric("async_speedup" + suffix, speedup);
    // Full tail-latency families (bench_diff.py gates the t4 enqueue
    // p50/p99 at a loose tolerance): the capture thread's experience.
    MetricPercentiles("sync_call_us" + suffix, sync.call_us);
    MetricPercentiles("enqueue_us" + suffix, async.call_us);
    if (threads == 4) {
      // The pipeline's own accounting for the heaviest configuration:
      // how much the committer coalesced and how the adaptive group
      // commit behaved.
      Metric("coalesced_txns_t4",
             static_cast<double>(async.pipeline.coalesced_txns));
      Metric("batches_t4", static_cast<double>(async.pipeline.batches));
      Metric("max_queue_depth_t4",
             static_cast<double>(async.pipeline.max_queue_depth));
      Metric("mean_queue_depth_t4", async.pipeline.mean_queue_depth);
      Metric("early_flushes_t4",
             static_cast<double>(async.pipeline.early_flushes));
      Metric("group_commits_t4",
             static_cast<double>(async.group_commits));
      Metric("async_fsyncs_t4", static_cast<double>(async.fsyncs));
      Row("  t4 async: %llu batches (%llu coalesced), queue depth "
          "max %llu / mean %.1f, %llu group commits, %llu fsyncs",
          (unsigned long long)async.pipeline.batches,
          (unsigned long long)async.pipeline.coalesced_txns,
          (unsigned long long)async.pipeline.max_queue_depth,
          async.pipeline.mean_queue_depth,
          (unsigned long long)async.group_commits,
          (unsigned long long)async.fsyncs);
    }
  }
  Blank();
  // The engine's own view of the same runs, through the process-wide
  // registry histograms (accumulated over every async Run above): the
  // cross-check that the obs instrumentation actually recorded.
  MetricObsHistogram("obs_enqueue_us",
                     *obs::MetricsRegistry::Global().GetHistogram(
                         "bp_ingest_enqueue_us", "", ""));
  MetricObsHistogram("obs_commit_batch_us",
                     *obs::MetricsRegistry::Global().GetHistogram(
                         "bp_ingest_commit_batch_us", "", ""));
  MetricObsHistogram("obs_batch_events",
                     *obs::MetricsRegistry::Global().GetHistogram(
                         "bp_ingest_batch_events", "", ""));
  Row("acceptance (async >= 2x sync at 4 capture threads): %s (%.2fx)",
      pass ? "PASS" : "FAIL", speedup_at_4);
  int json_status = Finish();
  return pass ? json_status : 1;
}
