// W1 — Commit durability cost: rollback journal vs write-ahead log.
//
// The paper's capture workload is a sustained stream of tiny
// transactions (every page load, download, and edit). The rollback
// journal pays two fsyncs and a full before-image rewrite per commit;
// the WAL pays one sequential append, and group commit shares one fsync
// across a window of commits. This bench measures both on MemEnv with a
// simulated 100us device sync (so wall-clock reflects fsync COUNT, the
// way a real disk would) and reports the pager's own durability
// accounting next to the throughput.
//
// Acceptance target: WAL with group window >= 8 sustains >= 3x the
// commits/sec of the journal at sync=true.
#include "bench/common.hpp"
#include "storage/btree.hpp"
#include "storage/db.hpp"
#include "storage/env.hpp"
#include "util/serde.hpp"

namespace {

using namespace bp;
using namespace bp::bench;

constexpr uint32_t kSyncCostUs = 100;  // cheap-SSD fsync
constexpr int kTxns = 2000;
constexpr int kPutsPerTxn = 2;

struct RunResult {
  double commits_per_sec = 0;
  double fsyncs_per_txn = 0;
  double synced_kb_per_txn = 0;
  double txns_per_group = 0;  // commits / group_commits (WAL amortization)
};

RunResult RunCommitStream(storage::DurabilityMode mode,
                          uint32_t group_commit) {
  storage::MemEnv env;
  env.set_sync_cost_us(kSyncCostUs);
  storage::DbOptions opts;
  opts.env = &env;
  opts.sync = true;
  opts.durability = mode;
  opts.wal_group_commit = group_commit;
  auto db = MustOk(storage::Db::Open("w1.db", opts), "open");
  auto* tree = MustOk(db->CreateTree("t"), "tree");

  const storage::PagerStats before = db->pager().stats();
  uint64_t key = 0;
  std::string value(100, 'v');
  util::Stopwatch watch;
  for (int t = 0; t < kTxns; ++t) {
    MustOk(db->Begin(), "begin");
    for (int i = 0; i < kPutsPerTxn; ++i) {
      MustOk(tree->Put(util::OrderedKeyU64(key++), value), "put");
    }
    MustOk(db->Commit(), "commit");
  }
  double seconds = watch.ElapsedMs() / 1000.0;
  const storage::PagerStats after = db->pager().stats();

  RunResult r;
  r.commits_per_sec = kTxns / seconds;
  r.fsyncs_per_txn =
      static_cast<double>(after.fsyncs - before.fsyncs) / kTxns;
  r.synced_kb_per_txn =
      static_cast<double>(after.bytes_synced - before.bytes_synced) /
      1024.0 / kTxns;
  uint64_t groups = after.group_commits - before.group_commits;
  r.txns_per_group = groups == 0 ? 0.0 : static_cast<double>(kTxns) / groups;
  return r;
}

// Provenance ingest through ProvStore::IngestBatch: the capture-path
// shape of the same comparison.
double RunProvIngest(storage::DurabilityMode mode, uint32_t group_commit,
                     size_t events_per_batch) {
  storage::MemEnv env;
  env.set_sync_cost_us(kSyncCostUs);
  storage::DbOptions opts;
  opts.env = &env;
  opts.sync = true;
  opts.durability = mode;
  opts.wal_group_commit = group_commit;
  auto db = MustOk(storage::Db::Open("w1p.db", opts), "open");
  auto prov = MustOk(prov::ProvStore::Open(*db, {}), "prov");

  constexpr int kVisits = 1500;
  util::Stopwatch watch;
  int done = 0;
  while (done < kVisits) {
    prov::ProvStore::IngestBatch batch(*prov);
    for (size_t i = 0; i < events_per_batch && done < kVisits;
         ++i, ++done) {
      auto visit = prov->RecordVisit(
          "https://example.org/page/" + std::to_string(done % 200),
          "title", prov::EdgeKind::kLink, 0, done * 1000, done % 7);
      MustOk(visit.status(), "visit");
    }
    MustOk(batch.Commit(), "batch commit");
  }
  return kVisits / (watch.ElapsedMs() / 1000.0);
}

}  // namespace

int main(int argc, char** argv) {
  Init(argc, argv, "bench_wal_commit");
  Header("W1", "commit durability: rollback journal vs WAL group commit",
         "WAL group commit (window >= 8) >= 3x journal commits/sec");

  Row("%d txns x %d puts, MemEnv with %uus simulated fsync, sync=true",
      kTxns, kPutsPerTxn, kSyncCostUs);
  Blank();

  RunResult journal =
      RunCommitStream(storage::DurabilityMode::kRollbackJournal, 1);
  Row("%-26s %12s %12s %14s %10s", "mode", "commits/s", "fsyncs/txn",
      "synced KB/txn", "vs journal");
  Row("%-26s %12.0f %12.2f %14.2f %9.2fx", "journal",
      journal.commits_per_sec, journal.fsyncs_per_txn,
      journal.synced_kb_per_txn, 1.0);
  Metric("journal_commits_per_sec", journal.commits_per_sec);

  bool pass = false;
  for (uint32_t window : {1u, 8u, 64u}) {
    RunResult wal = RunCommitStream(storage::DurabilityMode::kWal, window);
    double speedup = wal.commits_per_sec / journal.commits_per_sec;
    if (window >= 8 && speedup >= 3.0) pass = true;
    Row("%-26s %12.0f %12.2f %14.2f %9.2fx",
        util::StrFormat("wal (group window %u)", window).c_str(),
        wal.commits_per_sec, wal.fsyncs_per_txn, wal.synced_kb_per_txn,
        speedup);
    Metric(util::StrFormat("wal_group%u_commits_per_sec", window),
           wal.commits_per_sec);
    Metric(util::StrFormat("wal_group%u_txns_per_group", window),
           wal.txns_per_group);
  }
  Blank();
  Row("acceptance (wal window >= 8 at >= 3x journal): %s",
      pass ? "PASS" : "FAIL");

  Blank();
  Row("provenance ingest (ProvStore::IngestBatch, 1500 visits):");
  Row("%-34s %14s", "configuration", "visits/s");
  for (size_t batch : {size_t{1}, size_t{8}, size_t{64}}) {
    double journal_rate = RunProvIngest(
        storage::DurabilityMode::kRollbackJournal, 1, batch);
    double wal_rate = RunProvIngest(storage::DurabilityMode::kWal, 8, batch);
    Row("%-34s %14.0f",
        util::StrFormat("journal, batch %zu", batch).c_str(), journal_rate);
    Row("%-34s %14.0f  (%.2fx)",
        util::StrFormat("wal+group8, batch %zu", batch).c_str(), wal_rate,
        wal_rate / journal_rate);
  }
  Blank();
  // Engine-side distributions accumulated across every run above, from
  // the process-wide registry: per-commit latency, per-fsync device
  // time, and how many commits each group fsync amortized.
  MetricObsHistogram("obs_commit_us", CommitLatencyHistogram());
  MetricObsHistogram("obs_wal_fsync_us",
                     *obs::MetricsRegistry::Global().GetHistogram(
                         "bp_wal_fsync_us", "", ""));
  MetricObsHistogram("obs_group_commit_txns",
                     *obs::MetricsRegistry::Global().GetHistogram(
                         "bp_wal_group_commit_txns", "", ""));
  int json_status = Finish();
  return pass ? json_status : 1;
}
