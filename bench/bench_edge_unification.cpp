// E9 — Section 3.2 ablation: redirect / inner-content edge unification.
//
// Paper: "Redirects and inner content are a special case; although they
// are link-like relationships, unlike other edges they are not generated
// as the result of a user action... personalization algorithms may wish
// to exclude or otherwise ignore them."
//
// On a redirect-heavy web, contextual search runs with and without the
// automatic-edge filter; reports retrieval quality (MRR against the
// simulator's clicked pages), expansion size, and latency.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  Init(argc, argv, "bench_edge_unification");

  Header("E9", "edge unification: ignoring redirect/embed edges in "
               "personalization",
         "excluding non-user-action edges tightens neighborhoods without "
         "losing retrieval quality");

  FixtureOptions options;
  options.redirect_fraction = 0.18;  // redirect-heavy web
  auto fx = HistoryFixture::Build(options);

  Row("history: %llu nodes, %llu edges (redirect-heavy web)",
      (unsigned long long)*fx->prov->NodeCount(),
      (unsigned long long)*fx->prov->EdgeCount());
  Blank();
  Row("%-26s %8s %10s %10s %12s", "condition", "MRR", "recall@10",
      "avg ms", "avg results");

  for (bool unify : {true, false}) {
    double mrr = 0;
    int hits = 0, n = 0;
    double total_ms = 0;
    double total_results = 0;
    for (const auto& episode : fx->out.searches) {
      if (episode.clicked_visit == 0) continue;
      if (n >= 50) break;
      ++n;
      search::ContextualSearchOptions copts;
      copts.unify_automatic_edges = unify;
      util::Stopwatch watch;
      auto result =
          MustOk(fx->searcher->ContextualSearch(episode.query, copts),
                 "search");
      total_ms += watch.ElapsedMs();
      total_results += static_cast<double>(result.pages.size());
      double rr = ReciprocalRank(result.pages, episode.clicked_url);
      mrr += rr;
      if (rr > 0) ++hits;
    }
    Row("%-26s %8.3f %9.1f%% %10.2f %12.1f",
        unify ? "unified (skip auto edges)" : "raw (follow all edges)",
        mrr / n, 100.0 * hits / n, total_ms / n, total_results / n);
    Metric(unify ? "unified_mrr" : "raw_mrr", mrr / n);
    Metric(unify ? "unified_avg_ms" : "raw_avg_ms", total_ms / n);
  }
  Blank();
  Row("(unified expansion should match or beat raw quality while doing");
  Row(" less work — redirects and embeds add nodes, not user context)");
  // Commit-latency distribution from the engine's registry (populated
  // by the fixture ingest): instrumentation liveness cross-check.
  MetricObsHistogram("obs_commit_us", CommitLatencyHistogram());
  return Finish();
}
