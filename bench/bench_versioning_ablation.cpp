// E8 — Section 3.1 ablation: node versioning vs edge time-stamping.
//
// Paper: "Versioning nodes (pages) is a common cycle-breaking technique
// and is used by PASS. However, time stamping edges (links) can also
// break cycles... Firefox stores its time stamps as instances of link
// traversals, because in Firefox general page queries are more common
// than link queries. However, this can make it difficult to run link
// queries and by extension graph algorithms, because many records of a
// given link traversal may exist."
//
// Same 79-day stream under both policies; reports store size, node/edge
// counts, ingest time, and the two query shapes the paper contrasts:
// page-centric ("all views of this URL") and link-centric ("distinct
// traversals A->B with their times").
#include <unordered_set>

#include "bench/common.hpp"
#include "graph/algo.hpp"

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  Init(argc, argv, "bench_versioning_ablation");

  Header("E8", "versioning policy ablation: node-versioning vs "
               "edge-timestamping",
         "node versioning eases link/graph queries at higher node count; "
         "edge timestamping (Firefox's layout) shrinks the graph but "
         "complicates link queries");

  Row("%-22s %10s %10s %12s %10s %12s %12s", "policy", "nodes", "edges",
      "prov bytes", "ingest s", "page-q ms", "link-q ms");

  for (prov::VersionPolicy policy :
       {prov::VersionPolicy::kVersionNodes,
        prov::VersionPolicy::kTimestampEdges}) {
    FixtureOptions options;
    options.policy = policy;
    auto fx = HistoryFixture::Build(options);
    auto space = MustOk(fx->db->Space(), "space");

    // Sample URLs that actually got traversed (cursor scan: non-page
    // nodes cost a kind check, never an attr decode).
    std::vector<std::string> urls;
    graph::NodeCursor nodes = fx->prov->graph().Nodes();
    for (; nodes.Valid() && urls.size() < 50; nodes.Next()) {
      if (nodes.node().kind() !=
          static_cast<uint32_t>(prov::NodeKind::kPage)) {
        continue;
      }
      auto attrs = MustOk(nodes.node().attrs(), "page attrs");
      if (attrs.IntOr(prov::kAttrVisitCount, 0) >= 3) {
        urls.emplace_back(attrs.StringOr(prov::kAttrUrl, ""));
      }
    }
    MustOk(nodes.status(), "collect urls");

    // Page-centric query: all views of a URL (+ their open times where
    // available).
    util::Stopwatch page_watch;
    for (const std::string& url : urls) {
      auto page = MustOk(fx->prov->PageForUrl(url), "page");
      auto views = MustOk(fx->prov->ViewsOfPage(page), "views");
      for (graph::NodeId view : views) {
        (void)MustOk(fx->prov->graph().GetNode(view), "node");
      }
    }
    double page_ms = page_watch.ElapsedMs() / urls.size();

    // Link-centric query: distinct navigation targets of the URL with
    // per-traversal times (deduplicating "many records of a given link").
    util::Stopwatch link_watch;
    for (const std::string& url : urls) {
      auto page = MustOk(fx->prov->PageForUrl(url), "page");
      auto views = MustOk(fx->prov->ViewsOfPage(page), "views");
      std::unordered_set<graph::NodeId> distinct_targets;
      uint64_t traversals = 0;
      for (graph::NodeId view : views) {
        graph::EdgeCursor edges =
            fx->prov->graph().Edges(view, graph::Direction::kOut);
        for (; edges.Valid(); edges.Next()) {
          if (!prov::IsNavigationEdge(
                  static_cast<prov::EdgeKind>(edges.edge().kind()))) {
            continue;
          }
          ++traversals;
          // Resolve the target to its canonical page so the dedup is
          // policy-independent.
          auto target = fx->prov->PageOfView(edges.edge().dst());
          if (target.ok()) distinct_targets.insert(*target);
        }
        MustOk(edges.status(), "edges");
      }
      (void)traversals;
    }
    double link_ms = link_watch.ElapsedMs() / urls.size();

    const char* policy_name =
        policy == prov::VersionPolicy::kVersionNodes ? "version-nodes"
                                                     : "timestamp-edges";
    Row("%-22s %10llu %10llu %12s %10.2f %12.3f %12.3f", policy_name,
        (unsigned long long)*fx->prov->NodeCount(),
        (unsigned long long)*fx->prov->EdgeCount(),
        util::HumanBytes(space.BytesForPrefix("prov.")).c_str(),
        fx->ingest_seconds, page_ms, link_ms);
    Metric(std::string(policy_name) + "_page_query_ms", page_ms);
    Metric(std::string(policy_name) + "_link_query_ms", link_ms);
  }
  Blank();
  Row("(expected shape: timestamp-edges stores far fewer nodes; "
      "version-nodes pays storage for cheap, uniform graph queries — the "
      "trade-off section 3.1 describes)");
  // Commit-latency distribution from the engine's registry (populated
  // by every policy's ingest): instrumentation liveness cross-check.
  MetricObsHistogram("obs_commit_us", CommitLatencyHistogram());
  return Finish();
}
