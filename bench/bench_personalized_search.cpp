// E5 — Personalizing web search without disclosing history (use case
// 2.2).
//
// Paper: the gardener searching "rosebud" wants flowers, not Citizen
// Kane; the browser can supplement the query ("rosebud flower") using
// provenance, "without giving information about the user to the search
// engine".
//
// The vocabulary plants ambiguous terms shared between topic pairs. For
// each ambiguous term the simulated user actually searched, we ask the
// engine for the plain vs augmented query and measure the rank of the
// first result matching the user's primary topic — plus an audit of the
// bytes disclosed to the engine.
#include "bench/common.hpp"
#include "search/personalize.hpp"
#include "text/tokenizer.hpp"

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  Init(argc, argv, "bench_personalized_search");

  Header("E5", "personalized web search via provenance query augmentation",
         "engine sees only e.g. \"rosebud flower\"; results match the "
         "user's intent; zero history rows leave the machine");

  auto fx = HistoryFixture::Build({});
  const uint32_t primary = fx->out.primary_topic;
  Row("user's primary topic: %u", primary);

  // Ambiguous terms the user searched while in their primary topic.
  std::vector<std::string> probes;
  for (const auto& episode : fx->out.searches) {
    if (episode.topic != primary) continue;
    for (const std::string& term : text::Tokenize(episode.query)) {
      if (fx->vocab.TopicsOf(term).size() > 1 &&
          std::find(probes.begin(), probes.end(), term) == probes.end()) {
        probes.push_back(term);
      }
    }
  }
  if (probes.size() > 12) probes.resize(12);
  Row("ambiguous probe terms found in user's own searches: %zu",
      probes.size());
  Blank();

  auto rank_of_primary = [&](const std::vector<std::string>& terms) {
    auto results = fx->web.Search(terms, 10);
    for (size_t i = 0; i < results.size(); ++i) {
      if (fx->web.page(results[i].page).topic == primary) {
        return static_cast<int>(i + 1);
      }
    }
    return 0;  // not in top 10
  };

  Row("%-18s %-34s %10s %10s %9s", "query", "augmented as", "plain rank",
      "aug rank", "disclosed");
  double plain_sum = 0, aug_sum = 0;
  int n = 0, plain_top1 = 0, aug_top1 = 0;
  for (const std::string& probe : probes) {
    auto result =
        MustOk(search::PersonalizeQuery(*fx->searcher, probe, {}),
               "personalize");
    int plain = rank_of_primary({probe});
    std::vector<std::string> aug_terms = text::Tokenize(
        result.AugmentedQuery());
    int augmented = rank_of_primary(aug_terms);
    // Rank 0 (absent) counts as 11 for averaging.
    plain_sum += plain == 0 ? 11 : plain;
    aug_sum += augmented == 0 ? 11 : augmented;
    if (plain == 1) ++plain_top1;
    if (augmented == 1) ++aug_top1;
    ++n;
    Row("%-18s %-34s %10d %10d %8zuB", probe.c_str(),
        result.AugmentedQuery().c_str(), plain, augmented,
        result.DisclosedBytes());
  }
  if (n > 0) {
    Blank();
    Row("mean rank of first primary-topic result: plain %.2f -> augmented "
        "%.2f (lower is better)",
        plain_sum / n, aug_sum / n);
    Row("top-1 rate: plain %d/%d -> augmented %d/%d", plain_top1, n,
        aug_top1, n);
    Metric("plain_mean_rank", plain_sum / n);
    Metric("augmented_mean_rank", aug_sum / n);
  }
  Blank();
  Row("privacy audit: information sent to the engine = the augmented query");
  Row("string only; history rows disclosed: 0 (all mining ran locally)");
  // Commit-latency distribution from the engine's registry (populated
  // by the fixture ingest): instrumentation liveness cross-check.
  MetricObsHistogram("obs_commit_us", CommitLatencyHistogram());
  return Finish();
}
