// E4 — Contextual history search quality (use case 2.1).
//
// Paper: a textual history search for "rosebud" returns the web-search
// page but not Citizen Kane; a provenance-aware search returns it,
// because it "descends from the search term rosebud".
//
// Two evaluations: (a) the planted rosebud scenario embedded in 79 days
// of realistic noise; (b) the simulator's own search episodes (query ->
// page the user actually clicked), scored by MRR and recall@10 for the
// textual baseline vs the provenance reranker.
#include "bench/common.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  Init(argc, argv, "bench_contextual_search");

  Header("E4", "contextual history search: textual vs provenance rerank",
         "provenance search returns the descendant page (Citizen Kane) "
         "that textual search cannot");

  auto fx = HistoryFixture::Build({});

  // (a) Plant the rosebud episode inside the noisy history.
  sim::RosebudScenario planted =
      sim::MakeRosebudScenario(util::Days(40) + util::Hours(3));
  {
    capture::EventBus bus;
    bus.Subscribe(fx->places_recorder.get());
    bus.Subscribe(fx->prov_recorder.get());
    MustOk(bus.PublishAll(planted.events), "plant rosebud");
    MustOk(fx->searcher->IndexNewPages(), "reindex");
  }

  auto rank_of = [](const std::vector<search::RankedPage>& pages,
                    const std::string& url) -> int {
    for (size_t i = 0; i < pages.size(); ++i) {
      if (pages[i].url == url) return static_cast<int>(i + 1);
    }
    return 0;
  };

  auto textual = MustOk(fx->searcher->TextualSearch(planted.query, 10),
                        "textual rosebud");
  auto contextual =
      MustOk(fx->searcher->ContextualSearch(planted.query, {}),
             "contextual rosebud");
  Row("planted scenario: history search for \"%s\"",
      planted.query.c_str());
  Row("  rank of %s", planted.target_url.c_str());
  Row("    textual baseline : %s",
      rank_of(textual.pages, planted.target_url) == 0
          ? "not returned (paper: baseline misses it)"
          : util::StrFormat("#%d", rank_of(textual.pages,
                                           planted.target_url))
                .c_str());
  int prank = rank_of(contextual.pages, planted.target_url);
  Row("    provenance-aware : %s",
      prank == 0 ? "NOT RETURNED (unexpected)"
                 : util::StrFormat("#%d (paper: returned with substantial "
                                   "weight)",
                                   prank)
                       .c_str());

  // (b) Simulator search episodes.
  double text_mrr = 0, prov_mrr = 0;
  int text_hits = 0, prov_hits = 0, n = 0;
  for (const auto& episode : fx->out.searches) {
    if (episode.clicked_visit == 0) continue;
    if (n >= 60) break;
    ++n;
    auto t = MustOk(fx->searcher->TextualSearch(episode.query, 10), "t");
    auto c =
        MustOk(fx->searcher->ContextualSearch(episode.query, {}), "c");
    double tr = ReciprocalRank(t.pages, episode.clicked_url);
    double cr = ReciprocalRank(c.pages, episode.clicked_url);
    text_mrr += tr;
    prov_mrr += cr;
    if (tr > 0) ++text_hits;
    if (cr > 0) ++prov_hits;
  }
  text_mrr /= n;
  prov_mrr /= n;
  Blank();
  Row("simulated episodes (query -> page the user clicked), n=%d:", n);
  Row("%-24s %10s %12s", "condition", "MRR", "recall@10");
  Row("%-24s %10.3f %11.1f%%", "textual baseline", text_mrr,
      100.0 * text_hits / n);
  Row("%-24s %10.3f %11.1f%%", "provenance rerank", prov_mrr,
      100.0 * prov_hits / n);
  Metric("textual_mrr", text_mrr);
  Metric("provenance_mrr", prov_mrr);
  Metric("provenance_recall_at_10", 100.0 * prov_hits / n);
  Blank();
  Row("(provenance rerank should dominate or match on both metrics)");
  // Commit-latency distribution from the engine's registry (populated
  // by the fixture ingest): instrumentation liveness cross-check.
  MetricObsHistogram("obs_commit_us", CommitLatencyHistogram());
  return Finish();
}
