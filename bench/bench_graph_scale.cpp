// E2 — History graph scale over time.
//
// Paper (section 3): "This graph can be reasonably large; one author's
// history has accumulated more than 25,000 nodes over the past 79 days."
//
// Sweeps simulated days and reports provenance node/edge counts, store
// bytes, and ingest throughput. At 79 days the node count should land in
// the paper's >25k regime. A second section microbenchmarks
// GraphStore::Degree, which counts adjacency cells per leaf
// (BTree::CountRange) instead of decoding every adjacency row.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  Init(argc, argv, "bench_graph_scale");

  Header("E2", "history graph scale vs days of browsing",
         "> 25,000 nodes accumulated in 79 days");

  std::unique_ptr<HistoryFixture> largest;
  Row("%6s %10s %10s %10s %12s %12s", "days", "visits", "nodes", "edges",
      "prov bytes", "events/sec");
  // Under --smoke every sweep point would build the same capped fixture;
  // one point carries all the signal CI needs.
  std::vector<uint32_t> day_sweep{10u, 20u, 40u, 79u, 158u};
  if (State().smoke) day_sweep = {79u};
  for (uint32_t days : day_sweep) {
    FixtureOptions options;
    options.days = days;
    auto fx = HistoryFixture::Build(options);
    auto space = MustOk(fx->db->Space(), "space");
    const double events_per_sec =
        fx->ingest_seconds > 0
            ? static_cast<double>(fx->out.events.size()) / fx->ingest_seconds
            : 0.0;
    Row("%6u %10llu %10llu %10llu %12s %12.0f", days,
        (unsigned long long)fx->out.total_visits,
        (unsigned long long)*fx->prov->NodeCount(),
        (unsigned long long)*fx->prov->EdgeCount(),
        util::HumanBytes(space.BytesForPrefix("prov.")).c_str(),
        events_per_sec);
    if (days == 79u) {  // in smoke runs the fixture is days-capped
      Metric("nodes_day79", static_cast<double>(*fx->prov->NodeCount()));
      Metric("edges_day79", static_cast<double>(*fx->prov->EdgeCount()));
      Metric("ingest_events_per_sec", events_per_sec);
    }
    largest = std::move(fx);
  }
  Blank();
  Row("(the 79-day row reproduces the paper's >25k-node scale)");

  // ---- Degree microbench: cursor counting vs row decode.
  //
  // Degree answers "how connected is this node" on hot paths (expansion
  // ordering, hub detection). CountRange counts whole leaves by their
  // cell headers and binary-searches only the boundary leaves; the
  // decode path walks an EdgeCursor and materializes nothing. Both
  // numbers below answer every node of the largest fixture.
  {
    graph::GraphStore& graph = largest->prov->graph();
    const uint64_t node_count = *largest->prov->NodeCount();

    uint64_t total_degree_fast = 0;
    util::Stopwatch fast_watch;
    for (graph::NodeId node = 1; node <= node_count; ++node) {
      total_degree_fast +=
          MustOk(graph.Degree(node, graph::Direction::kOut), "degree");
      total_degree_fast +=
          MustOk(graph.Degree(node, graph::Direction::kIn), "degree");
    }
    const double fast_ms = fast_watch.ElapsedMs();

    uint64_t total_degree_scan = 0;
    util::Stopwatch scan_watch;
    for (graph::NodeId node = 1; node <= node_count; ++node) {
      for (auto dir : {graph::Direction::kOut, graph::Direction::kIn}) {
        graph::EdgeCursor cur = graph.Edges(node, dir);
        for (; cur.Valid(); cur.Next()) ++total_degree_scan;
        MustOk(cur.status(), "degree scan");
      }
    }
    const double scan_ms = scan_watch.ElapsedMs();
    BP_CHECK(total_degree_fast == total_degree_scan,
             "Degree disagrees with adjacency scan");

    Blank();
    Row("Degree for all %llu nodes, both directions (%llu adjacency rows):",
        (unsigned long long)node_count,
        (unsigned long long)total_degree_fast);
    Row("  CountRange (leaf cell counting):  %8.1f ms", fast_ms);
    Row("  EdgeCursor (decode every row):    %8.1f ms", scan_ms);
    Row("  speedup: %.1fx", fast_ms > 0 ? scan_ms / fast_ms : 0.0);
    Metric("degree_countrange_ms", fast_ms);
    Metric("degree_scan_ms", scan_ms);
    Metric("degree_speedup", fast_ms > 0 ? scan_ms / fast_ms : 0.0);
  }
  // Commit-latency distribution from the engine's registry (populated
  // by the 79-day ingest above): instrumentation liveness cross-check.
  MetricObsHistogram("obs_commit_us", CommitLatencyHistogram());
  return Finish();
}
