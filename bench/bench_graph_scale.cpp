// E2 — History graph scale over time.
//
// Paper (section 3): "This graph can be reasonably large; one author's
// history has accumulated more than 25,000 nodes over the past 79 days."
//
// Sweeps simulated days and reports provenance node/edge counts, store
// bytes, and ingest throughput. At 79 days the node count should land in
// the paper's >25k regime.
#include "bench/common.hpp"

int main() {
  using namespace bp;
  using namespace bp::bench;

  Header("E2", "history graph scale vs days of browsing",
         "> 25,000 nodes accumulated in 79 days");

  Row("%6s %10s %10s %10s %12s %12s", "days", "visits", "nodes", "edges",
      "prov bytes", "events/sec");
  for (uint32_t days : {10u, 20u, 40u, 79u, 158u}) {
    FixtureOptions options;
    options.days = days;
    auto fx = HistoryFixture::Build(options);
    auto space = MustOk(fx->db->Space(), "space");
    const double events_per_sec =
        fx->ingest_seconds > 0
            ? static_cast<double>(fx->out.events.size()) / fx->ingest_seconds
            : 0.0;
    Row("%6u %10llu %10llu %10llu %12s %12.0f", days,
        (unsigned long long)fx->out.total_visits,
        (unsigned long long)*fx->prov->NodeCount(),
        (unsigned long long)*fx->prov->EdgeCount(),
        util::HumanBytes(space.BytesForPrefix("prov.")).c_str(),
        events_per_sec);
  }
  Blank();
  Row("(the 79-day row reproduces the paper's >25k-node scale)");
  return 0;
}
