// E14 — Versioned buffer pool microbenchmarks.
//
// The shared pool is the hot path of every snapshot read, so its raw
// costs matter: a hit must be cheap enough to beat re-reading a page
// from the OS, eviction must be O(evicted), and the striped locks must
// actually let concurrent readers through. Four sections:
//
//   hit          — resident set, 100% hits (the steady state of a warm
//                  read path);
//   miss+insert  — unique keys forever, constant eviction at budget
//                  (cold scans / thrash floor);
//   pin churn    — hit + hold + release, with a pinned working set the
//                  evictor must skip (live PageView traffic);
//   contention   — 1/2/4/8 threads hammering one pool, uniform keys
//                  (shared-shard scaling; the per-snapshot caches this
//                  pool replaced serialized every reader on one mutex).
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "storage/buffer_pool.hpp"

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  using storage::BufferPool;
  using storage::BufferPoolStats;
  using storage::kPageSize;
  using storage::PageImageKey;
  Init(argc, argv, "bench_buffer_pool");

  Header("E14", "shared buffer pool: hit/miss/eviction/pin/contention",
         "(engineering bench; pool must outrun per-snapshot caches)");

  const uint64_t scale = State().smoke ? 1 : 8;
  auto image = [](char fill) {
    return std::make_shared<const std::string>(kPageSize, fill);
  };
  auto key = [](uint64_t i) {
    return PageImageKey{/*owner=*/1, static_cast<storage::PageId>(i),
                        /*generation=*/0, /*offset=*/i * 16};
  };

  // ------------------------------------------------------------- hits
  {
    const uint64_t kResident = 1024;
    const uint64_t kLookups = scale * 2'000'000;
    BufferPool pool(kResident * 2 * kPageSize);
    for (uint64_t i = 0; i < kResident; ++i) {
      (void)pool.Insert(key(i), image('r'));
    }
    // Per-lookup cost sampled per block (timing every lookup would
    // dominate the thing measured): the distribution catches shard-map
    // outliers a mean would hide.
    const uint64_t kBlock = 10'000;
    std::vector<double> block_ns;
    block_ns.reserve(kLookups / kBlock);
    util::Stopwatch watch;
    uint64_t found = 0;
    for (uint64_t start = 0; start < kLookups; start += kBlock) {
      util::Stopwatch block;
      for (uint64_t i = start; i < start + kBlock; ++i) {
        found += pool.Lookup(key(i % kResident)) != nullptr;
      }
      block_ns.push_back(1000.0 * static_cast<double>(block.ElapsedUs()) /
                         static_cast<double>(kBlock));
    }
    const double ms = watch.ElapsedMs();
    BP_CHECK(found == kLookups, "every resident lookup must hit");
    const double per_sec = 1000.0 * static_cast<double>(kLookups) / ms;
    const Percentiles lookup_ns = ComputePercentiles(std::move(block_ns));
    Row("hit:         %9llu lookups in %7.1f ms  (%12.0f hits/s, "
        "%.0f/%.0f ns p50/p99)",
        (unsigned long long)kLookups, ms, per_sec, lookup_ns.p50,
        lookup_ns.p99);
    Metric("hit_lookups_per_sec", per_sec);
    MetricPercentiles("hit_lookup_ns", lookup_ns);
  }

  // ----------------------------------------------------- miss + insert
  {
    const uint64_t kInserts = scale * 200'000;
    BufferPool pool(BufferPool::kShards * 16 * kPageSize);
    util::Stopwatch watch;
    for (uint64_t i = 0; i < kInserts; ++i) {
      // One image per insert: the allocation is part of the real miss
      // path (and a shared payload would read as pinned to the evictor).
      (void)pool.Insert(key(i), image('m'));
    }
    const double ms = watch.ElapsedMs();
    BufferPoolStats stats = pool.stats();
    const double per_sec = 1000.0 * static_cast<double>(kInserts) / ms;
    Row("miss+insert: %9llu inserts in %7.1f ms  (%12.0f inserts/s, "
        "%llu evictions)",
        (unsigned long long)kInserts, ms, per_sec,
        (unsigned long long)stats.evictions);
    BP_CHECK(stats.evictions > 0, "budget must have forced eviction");
    BP_CHECK(stats.bytes <= pool.byte_budget(),
             "insert path must hold the byte budget");
    Metric("insert_evict_per_sec", per_sec);
    Metric("insert_evictions", static_cast<double>(stats.evictions));
  }

  // --------------------------------------------------------- pin churn
  {
    const uint64_t kOps = scale * 1'000'000;
    const uint64_t kResident = 512;
    BufferPool pool(kResident * kPageSize);  // tight: evictor runs often
    std::vector<std::shared_ptr<const std::string>> pins;
    for (uint64_t i = 0; i < kResident / 2; ++i) {
      pins.push_back(pool.Insert(key(i), image('p')));  // pinned half
    }
    util::Stopwatch watch;
    std::shared_ptr<const std::string> held;
    for (uint64_t i = 0; i < kOps; ++i) {
      const uint64_t k = kResident / 2 + i % kResident;  // unpinned keys
      held = pool.Lookup(key(k));
      if (held == nullptr) held = pool.Insert(key(k), image('c'));
      // `held` drops at the next iteration: a one-op pin lifetime.
    }
    const double ms = watch.ElapsedMs();
    BufferPoolStats stats = pool.stats();
    for (auto& pin : pins) {
      BP_CHECK(pin != nullptr && pin->front() == 'p',
               "pinned images must survive the churn");
    }
    const double per_sec = 1000.0 * static_cast<double>(kOps) / ms;
    Row("pin churn:   %9llu ops     in %7.1f ms  (%12.0f ops/s, "
        "%llu pinned skips)",
        (unsigned long long)kOps, ms, per_sec,
        (unsigned long long)stats.pinned_skips);
    Metric("pin_churn_ops_per_sec", per_sec);
  }

  // ----------------------------------------------- counter striping
  {
    // The pager bumps a stats counter on every pool hit. PR 8 packed
    // those counters as adjacent atomics (several per cache line) and
    // bumped with fetch_add — and the hit-lookup p99 regressed +37%
    // whenever OTHER pager threads bumped neighboring counters. The
    // pager now stripes each single-writer counter into its own
    // 64-byte cell and bumps with a plain load/store. Both layouts are
    // replicated here (the real structs are private to the Pager) and
    // measured on the same path: pool hit + one counter bump, while
    // three noise threads hammer the NEIGHBORING counters of the same
    // stats object — the false-sharing traffic the stripe removes.
    struct PackedStats {           // PR 8 shape: one line holds several
      std::atomic<uint64_t> c[9];
    };
    struct StripedCell {
      alignas(64) std::atomic<uint64_t> v{0};
    };
    struct StripedStats {          // this PR: cell per counter
      StripedCell c[9];
    };
    static PackedStats packed;     // static: no stack-line luck
    static StripedStats striped;

    const uint64_t kResident = 1024;
    const uint64_t kLookups = scale * 1'000'000;
    const uint64_t kBlock = 10'000;
    BufferPool pool(kResident * 2 * kPageSize);
    for (uint64_t i = 0; i < kResident; ++i) {
      (void)pool.Insert(key(i), image('l'));
    }

    // layout == 0: packed + fetch_add; layout == 1: striped + store.
    auto run = [&](int layout) {
      std::atomic<bool> stop{false};
      std::vector<std::thread> noise;
      for (int n = 1; n <= 3; ++n) {
        noise.emplace_back([&, n] {
          while (!stop.load(std::memory_order_relaxed)) {
            if (layout == 0) {
              packed.c[n].fetch_add(1, std::memory_order_relaxed);
            } else {
              striped.c[n].v.store(
                  striped.c[n].v.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
            }
          }
        });
      }
      std::vector<double> block_ns;
      block_ns.reserve(kLookups / kBlock);
      uint64_t found = 0;
      for (uint64_t start = 0; start < kLookups; start += kBlock) {
        util::Stopwatch block;
        for (uint64_t i = start; i < start + kBlock; ++i) {
          found += pool.Lookup(key(i % kResident)) != nullptr;
          if (layout == 0) {
            packed.c[0].fetch_add(1, std::memory_order_relaxed);
          } else {
            striped.c[0].v.store(
                striped.c[0].v.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
          }
        }
        block_ns.push_back(1000.0 *
                           static_cast<double>(block.ElapsedUs()) /
                           static_cast<double>(kBlock));
      }
      stop.store(true, std::memory_order_relaxed);
      for (std::thread& t : noise) t.join();
      BP_CHECK(found == kLookups, "every resident lookup must hit");
      return ComputePercentiles(std::move(block_ns));
    };

    Blank();
    const Percentiles packed_ns = run(/*layout=*/0);
    const Percentiles striped_ns = run(/*layout=*/1);
    // Gate on p50: the locked-RMW-vs-plain-store gap is deterministic
    // there, while the block p99 also absorbs scheduler preemption from
    // the noise threads (it is reported, and tracked, but not gated).
    const double p50_speedup =
        striped_ns.p50 > 0 ? packed_ns.p50 / striped_ns.p50 : 0.0;
    Row("counter layout (hit + stat bump, 3 neighbor-counter noise "
        "threads):");
    Row("  packed  (PR 8): %6.0f/%6.0f ns p50/p99", packed_ns.p50,
        packed_ns.p99);
    Row("  striped (cell): %6.0f/%6.0f ns p50/p99  (p50 %.2fx faster)",
        striped_ns.p50, striped_ns.p99, p50_speedup);
    MetricPercentiles("hit_bump_packed_ns", packed_ns);
    MetricPercentiles("hit_bump_striped_ns", striped_ns);
    Metric("counter_stripe_p50_speedup", p50_speedup);
    BP_CHECK(p50_speedup > 1.0,
             "striped cells must beat packed counters under neighbor "
             "traffic");
  }

  // -------------------------------------------------------- contention
  {
    Blank();
    Row("contention (uniform keys over a resident set, lookup-or-insert):");
    const uint64_t kResident = 4096;
    const uint64_t kOpsPerThread = scale * 500'000;
    double ops_at_1 = 0;
    for (int threads : {1, 2, 4, 8}) {
      BufferPool pool(kResident * 2 * kPageSize);
      for (uint64_t i = 0; i < kResident; ++i) {
        (void)pool.Insert(key(i), image('s'));
      }
      std::atomic<uint64_t> bad{0};
      std::vector<std::thread> workers;
      workers.reserve(threads);
      util::Stopwatch watch;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          // Per-thread stride decorrelates the walks without RNG cost.
          uint64_t at = static_cast<uint64_t>(t) * 7919;
          for (uint64_t i = 0; i < kOpsPerThread; ++i) {
            at = (at + 12289) % kResident;
            if (pool.Lookup(key(at)) == nullptr) bad.fetch_add(1);
          }
        });
      }
      for (std::thread& w : workers) w.join();
      const double ms = watch.ElapsedMs();
      BP_CHECK(bad.load() == 0, "resident set must stay resident");
      const double total =
          static_cast<double>(kOpsPerThread) * threads;
      const double per_sec = 1000.0 * total / ms;
      if (threads == 1) ops_at_1 = per_sec;
      Row("  %d thread%s: %12.0f lookups/s  (%.2fx single-thread)",
          threads, threads == 1 ? " " : "s", per_sec,
          ops_at_1 > 0 ? per_sec / ops_at_1 : 0.0);
      Metric(util::StrFormat("contention_lookups_per_sec_%d", threads),
             per_sec);
    }
  }

  return Finish();
}
