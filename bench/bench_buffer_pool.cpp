// E14 — Versioned buffer pool microbenchmarks.
//
// The shared pool is the hot path of every snapshot read, so its raw
// costs matter: a hit must be cheap enough to beat re-reading a page
// from the OS, eviction must be O(evicted), and the striped locks must
// actually let concurrent readers through. Four sections:
//
//   hit          — resident set, 100% hits (the steady state of a warm
//                  read path);
//   miss+insert  — unique keys forever, constant eviction at budget
//                  (cold scans / thrash floor);
//   pin churn    — hit + hold + release, with a pinned working set the
//                  evictor must skip (live PageView traffic);
//   contention   — 1/2/4/8 threads hammering one pool, uniform keys
//                  (shared-shard scaling; the per-snapshot caches this
//                  pool replaced serialized every reader on one mutex).
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "storage/buffer_pool.hpp"

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  using storage::BufferPool;
  using storage::BufferPoolStats;
  using storage::kPageSize;
  using storage::PageImageKey;
  Init(argc, argv, "bench_buffer_pool");

  Header("E14", "shared buffer pool: hit/miss/eviction/pin/contention",
         "(engineering bench; pool must outrun per-snapshot caches)");

  const uint64_t scale = State().smoke ? 1 : 8;
  auto image = [](char fill) {
    return std::make_shared<const std::string>(kPageSize, fill);
  };
  auto key = [](uint64_t i) {
    return PageImageKey{/*owner=*/1, static_cast<storage::PageId>(i),
                        /*generation=*/0, /*offset=*/i * 16};
  };

  // ------------------------------------------------------------- hits
  {
    const uint64_t kResident = 1024;
    const uint64_t kLookups = scale * 2'000'000;
    BufferPool pool(kResident * 2 * kPageSize);
    for (uint64_t i = 0; i < kResident; ++i) {
      (void)pool.Insert(key(i), image('r'));
    }
    // Per-lookup cost sampled per block (timing every lookup would
    // dominate the thing measured): the distribution catches shard-map
    // outliers a mean would hide.
    const uint64_t kBlock = 10'000;
    std::vector<double> block_ns;
    block_ns.reserve(kLookups / kBlock);
    util::Stopwatch watch;
    uint64_t found = 0;
    for (uint64_t start = 0; start < kLookups; start += kBlock) {
      util::Stopwatch block;
      for (uint64_t i = start; i < start + kBlock; ++i) {
        found += pool.Lookup(key(i % kResident)) != nullptr;
      }
      block_ns.push_back(1000.0 * static_cast<double>(block.ElapsedUs()) /
                         static_cast<double>(kBlock));
    }
    const double ms = watch.ElapsedMs();
    BP_CHECK(found == kLookups, "every resident lookup must hit");
    const double per_sec = 1000.0 * static_cast<double>(kLookups) / ms;
    const Percentiles lookup_ns = ComputePercentiles(std::move(block_ns));
    Row("hit:         %9llu lookups in %7.1f ms  (%12.0f hits/s, "
        "%.0f/%.0f ns p50/p99)",
        (unsigned long long)kLookups, ms, per_sec, lookup_ns.p50,
        lookup_ns.p99);
    Metric("hit_lookups_per_sec", per_sec);
    MetricPercentiles("hit_lookup_ns", lookup_ns);
  }

  // ----------------------------------------------------- miss + insert
  {
    const uint64_t kInserts = scale * 200'000;
    BufferPool pool(BufferPool::kShards * 16 * kPageSize);
    util::Stopwatch watch;
    for (uint64_t i = 0; i < kInserts; ++i) {
      // One image per insert: the allocation is part of the real miss
      // path (and a shared payload would read as pinned to the evictor).
      (void)pool.Insert(key(i), image('m'));
    }
    const double ms = watch.ElapsedMs();
    BufferPoolStats stats = pool.stats();
    const double per_sec = 1000.0 * static_cast<double>(kInserts) / ms;
    Row("miss+insert: %9llu inserts in %7.1f ms  (%12.0f inserts/s, "
        "%llu evictions)",
        (unsigned long long)kInserts, ms, per_sec,
        (unsigned long long)stats.evictions);
    BP_CHECK(stats.evictions > 0, "budget must have forced eviction");
    BP_CHECK(stats.bytes <= pool.byte_budget(),
             "insert path must hold the byte budget");
    Metric("insert_evict_per_sec", per_sec);
    Metric("insert_evictions", static_cast<double>(stats.evictions));
  }

  // --------------------------------------------------------- pin churn
  {
    const uint64_t kOps = scale * 1'000'000;
    const uint64_t kResident = 512;
    BufferPool pool(kResident * kPageSize);  // tight: evictor runs often
    std::vector<std::shared_ptr<const std::string>> pins;
    for (uint64_t i = 0; i < kResident / 2; ++i) {
      pins.push_back(pool.Insert(key(i), image('p')));  // pinned half
    }
    util::Stopwatch watch;
    std::shared_ptr<const std::string> held;
    for (uint64_t i = 0; i < kOps; ++i) {
      const uint64_t k = kResident / 2 + i % kResident;  // unpinned keys
      held = pool.Lookup(key(k));
      if (held == nullptr) held = pool.Insert(key(k), image('c'));
      // `held` drops at the next iteration: a one-op pin lifetime.
    }
    const double ms = watch.ElapsedMs();
    BufferPoolStats stats = pool.stats();
    for (auto& pin : pins) {
      BP_CHECK(pin != nullptr && pin->front() == 'p',
               "pinned images must survive the churn");
    }
    const double per_sec = 1000.0 * static_cast<double>(kOps) / ms;
    Row("pin churn:   %9llu ops     in %7.1f ms  (%12.0f ops/s, "
        "%llu pinned skips)",
        (unsigned long long)kOps, ms, per_sec,
        (unsigned long long)stats.pinned_skips);
    Metric("pin_churn_ops_per_sec", per_sec);
  }

  // ----------------------------------------------- counter striping
  {
    // The pager bumps a stats counter on every pool hit. PR 8 packed
    // those counters as adjacent atomics (several per cache line) and
    // bumped with fetch_add — and the hit-lookup p99 regressed +37%
    // whenever OTHER pager threads bumped neighboring counters. The
    // pager now stripes each single-writer counter into its own
    // 64-byte cell and bumps with a plain load/store. Both layouts are
    // replicated here (the real structs are private to the Pager) and
    // measured on the same path: pool hit + one counter bump, while
    // three noise threads hammer the NEIGHBORING counters of the same
    // stats object — the false-sharing traffic the stripe removes.
    struct PackedStats {           // PR 8 shape: one line holds several
      std::atomic<uint64_t> c[9];
    };
    struct StripedCell {
      alignas(64) std::atomic<uint64_t> v{0};
    };
    struct StripedStats {          // this PR: cell per counter
      StripedCell c[9];
    };
    static PackedStats packed;     // static: no stack-line luck
    static StripedStats striped;

    const uint64_t kResident = 1024;
    const uint64_t kLookups = scale * 1'000'000;
    const uint64_t kBlock = 10'000;
    BufferPool pool(kResident * 2 * kPageSize);
    for (uint64_t i = 0; i < kResident; ++i) {
      (void)pool.Insert(key(i), image('l'));
    }

    // layout == 0: packed + fetch_add; layout == 1: striped + store.
    auto run = [&](int layout) {
      std::atomic<bool> stop{false};
      std::vector<std::thread> noise;
      for (int n = 1; n <= 3; ++n) {
        noise.emplace_back([&, n] {
          while (!stop.load(std::memory_order_relaxed)) {
            if (layout == 0) {
              packed.c[n].fetch_add(1, std::memory_order_relaxed);
            } else {
              striped.c[n].v.store(
                  striped.c[n].v.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
            }
          }
        });
      }
      std::vector<double> block_ns;
      block_ns.reserve(kLookups / kBlock);
      uint64_t found = 0;
      for (uint64_t start = 0; start < kLookups; start += kBlock) {
        util::Stopwatch block;
        for (uint64_t i = start; i < start + kBlock; ++i) {
          found += pool.Lookup(key(i % kResident)) != nullptr;
          if (layout == 0) {
            packed.c[0].fetch_add(1, std::memory_order_relaxed);
          } else {
            striped.c[0].v.store(
                striped.c[0].v.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
          }
        }
        block_ns.push_back(1000.0 *
                           static_cast<double>(block.ElapsedUs()) /
                           static_cast<double>(kBlock));
      }
      stop.store(true, std::memory_order_relaxed);
      for (std::thread& t : noise) t.join();
      BP_CHECK(found == kLookups, "every resident lookup must hit");
      return ComputePercentiles(std::move(block_ns));
    };

    Blank();
    const Percentiles packed_ns = run(/*layout=*/0);
    const Percentiles striped_ns = run(/*layout=*/1);
    // Gate on p50: the locked-RMW-vs-plain-store gap is deterministic
    // there, while the block p99 also absorbs scheduler preemption from
    // the noise threads (it is reported, and tracked, but not gated).
    const double p50_speedup =
        striped_ns.p50 > 0 ? packed_ns.p50 / striped_ns.p50 : 0.0;
    Row("counter layout (hit + stat bump, 3 neighbor-counter noise "
        "threads):");
    Row("  packed  (PR 8): %6.0f/%6.0f ns p50/p99", packed_ns.p50,
        packed_ns.p99);
    Row("  striped (cell): %6.0f/%6.0f ns p50/p99  (p50 %.2fx faster)",
        striped_ns.p50, striped_ns.p99, p50_speedup);
    MetricPercentiles("hit_bump_packed_ns", packed_ns);
    MetricPercentiles("hit_bump_striped_ns", striped_ns);
    Metric("counter_stripe_p50_speedup", p50_speedup);
    BP_CHECK(p50_speedup > 1.0,
             "striped cells must beat packed counters under neighbor "
             "traffic");
  }

  // ------------------------------------------------- cold tier (diet)
  {
    Blank();
    // Compression=fast: evictions demote into the compressed in-memory
    // cold tier, and a miss that lands there decompresses on pin
    // instead of paying a device read. The loop drives a steady state —
    // every insert evicts (and demotes) at the budget, every lookup
    // targets a key old enough to have left the hot tier but young
    // enough to still be cold — and times the decompress-on-pin path.
    // The comparison constant is the modeled flash read the cold hit
    // replaces (MemEnv::set_read_cost_us territory, ~20us; see
    // bench_wal_commit for the device model).
    const double kModeledDeviceReadUs = 20.0;
    const uint64_t kResident = 512;  // pages of budget, hot + cold
    const uint64_t kOps = scale * 100'000;
    storage::compress::CompressionOptions fast;
    fast.mode = storage::compress::CompressionOptions::Mode::kFast;
    BufferPool pool(kResident * kPageSize, fast);
    // Compressible page images: a text-like repeating pattern, distinct
    // per page so promoted frames are checkable.
    auto cold_image = [](uint64_t i) {
      std::string page;
      page.reserve(kPageSize);
      const std::string unit =
          "url=https://site-" + std::to_string(i % 97) + ".example/path/" +
          std::to_string(i) + "&visit=" + std::to_string(i * 31) + ";";
      while (page.size() < kPageSize) {
        page.append(unit.substr(0, kPageSize - page.size()));
      }
      return std::make_shared<const std::string>(std::move(page));
    };
    // Warm up to steady state, then pick the lookup lag from the
    // observed tier split: past the hot tier, middle of the cold LRU.
    const uint64_t kWarmup = kResident * 3;
    for (uint64_t i = 0; i < kWarmup; ++i) {
      (void)pool.Insert(key(i), cold_image(i));
    }
    BufferPoolStats warm = pool.stats();
    BP_CHECK(warm.cold_frames > 0, "budget pressure must demote frames");
    const uint64_t lag = warm.frames + warm.cold_frames / 2;
    const uint64_t kBlock = 1'000;
    std::vector<double> block_ns;
    block_ns.reserve(kOps / kBlock);
    uint64_t promoted = 0;
    for (uint64_t start = 0; start < kOps; start += kBlock) {
      util::Stopwatch block;
      for (uint64_t i = start; i < start + kBlock; ++i) {
        const uint64_t at = kWarmup + i;
        (void)pool.Insert(key(at), cold_image(at));
        auto hit = pool.Lookup(key(at - lag));
        promoted += hit != nullptr;
      }
      // Block time covers insert+demote+lookup; the lookup share is
      // isolated below via the stats histogram proxy (cold hit count)
      // and the pure-decompress timing in the row after.
      block_ns.push_back(1000.0 * static_cast<double>(block.ElapsedUs()) /
                         static_cast<double>(kBlock));
    }
    BufferPoolStats stats = pool.stats();
    BP_CHECK(stats.cold_hits > kOps / 2,
             "lagged lookups must mostly land in the cold tier");
    // Pure decompress-on-pin cost: demote a fresh set, then time ONLY
    // the cold lookups (each key touched once; every lookup is a cold
    // hit or a miss, misses are checked out).
    const uint64_t kProbe = State().smoke ? 2'000 : 20'000;
    BufferPool probe_pool(kResident * kPageSize, fast);
    for (uint64_t i = 0; i < kProbe + kResident; ++i) {
      (void)probe_pool.Insert(key(i), cold_image(i));
    }
    BufferPoolStats probe_before = probe_pool.stats();
    const uint64_t probe_lag = probe_before.frames +
                               probe_before.cold_frames / 2;
    std::vector<double> pin_us;
    pin_us.reserve(256);
    uint64_t probe_hits = 0;
    // Walk from the middle of the cold LRU toward its young end: each
    // promotion cold-evicts the OLDEST frames, so walking young keeps
    // the probe ahead of the eviction frontier (late probes may still
    // miss; misses simply drop out of the sample).
    for (uint64_t i = 0; i < probe_before.cold_frames / 2; ++i) {
      const uint64_t at = kProbe + kResident - 1 - probe_lag + i;
      util::Stopwatch one;
      auto hit = probe_pool.Lookup(key(at));
      const double us = static_cast<double>(one.ElapsedUs());
      if (hit != nullptr) {
        ++probe_hits;
        pin_us.push_back(us);
        BP_CHECK(hit->size() == kPageSize,
                 "promoted frame must be a full page");
      }
    }
    BufferPoolStats probe_after = probe_pool.stats();
    BP_CHECK(probe_after.cold_hits - probe_before.cold_hits == probe_hits,
             "probe lookups must be cold hits, not hot hits");
    BP_CHECK(probe_hits > 0, "probe must land in the cold tier");
    const Percentiles pin = ComputePercentiles(std::move(pin_us));
    const Percentiles churn_ns = ComputePercentiles(std::move(block_ns));
    Row("cold tier (compression=fast, %llu-page budget):",
        (unsigned long long)kResident);
    Row("  steady state: %llu hot + %llu cold frames, %s cold of %s total",
        (unsigned long long)stats.frames,
        (unsigned long long)stats.cold_frames,
        util::HumanBytes(stats.cold_bytes).c_str(),
        util::HumanBytes(stats.bytes).c_str());
    Row("  churn: %llu demotions, %llu cold hits, %llu cold evictions "
        "(%.0f/%.0f ns insert+pin p50/p99)",
        (unsigned long long)stats.cold_demotions,
        (unsigned long long)stats.cold_hits,
        (unsigned long long)stats.cold_evictions, churn_ns.p50,
        churn_ns.p99);
    Row("  decompress-on-pin: %.1f/%.1f us p50/p99 over %llu cold hits "
        "(modeled device read: %.0f us)",
        pin.p50, pin.p99, (unsigned long long)probe_hits,
        kModeledDeviceReadUs);
    BP_CHECK(pin.p50 < kModeledDeviceReadUs,
             "a cold-tier pin must beat the device read it replaces");
    Metric("cold_demotions", static_cast<double>(stats.cold_demotions));
    Metric("cold_hits", static_cast<double>(stats.cold_hits));
    Metric("cold_bytes", static_cast<double>(stats.cold_bytes));
    MetricPercentiles("cold_churn_ns", churn_ns);
    MetricPercentiles("cold_pin_us", pin);
    Metric("cold_pin_vs_device_read_x",
           pin.p50 > 0 ? kModeledDeviceReadUs / pin.p50 : 0.0);
    MetricObsHistogram(
        "obs_bp_compress_us",
        *obs::MetricsRegistry::Global().GetHistogram(
            "bp_compress_us", "",
            "Cold-tier demotion compress latency (us)"));
    MetricObsHistogram(
        "obs_bp_decompress_us",
        *obs::MetricsRegistry::Global().GetHistogram(
            "bp_decompress_us", "",
            "Main-file compressed page frame decode latency (us)"));
  }

  // -------------------------------------------------------- contention
  {
    Blank();
    Row("contention (uniform keys over a resident set, lookup-or-insert):");
    const uint64_t kResident = 4096;
    const uint64_t kOpsPerThread = scale * 500'000;
    double ops_at_1 = 0;
    for (int threads : {1, 2, 4, 8}) {
      BufferPool pool(kResident * 2 * kPageSize);
      for (uint64_t i = 0; i < kResident; ++i) {
        (void)pool.Insert(key(i), image('s'));
      }
      std::atomic<uint64_t> bad{0};
      std::vector<std::thread> workers;
      workers.reserve(threads);
      util::Stopwatch watch;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          // Per-thread stride decorrelates the walks without RNG cost.
          uint64_t at = static_cast<uint64_t>(t) * 7919;
          for (uint64_t i = 0; i < kOpsPerThread; ++i) {
            at = (at + 12289) % kResident;
            if (pool.Lookup(key(at)) == nullptr) bad.fetch_add(1);
          }
        });
      }
      for (std::thread& w : workers) w.join();
      const double ms = watch.ElapsedMs();
      BP_CHECK(bad.load() == 0, "resident set must stay resident");
      const double total =
          static_cast<double>(kOpsPerThread) * threads;
      const double per_sec = 1000.0 * total / ms;
      if (threads == 1) ops_at_1 = per_sec;
      Row("  %d thread%s: %12.0f lookups/s  (%.2fx single-thread)",
          threads, threads == 1 ? " " : "s", per_sec,
          ops_at_1 > 0 ? per_sec / ops_at_1 : 0.0);
      Metric(util::StrFormat("contention_lookups_per_sec_%d", threads),
             per_sec);
    }
  }

  return Finish();
}
