// E14 — Versioned buffer pool microbenchmarks.
//
// The shared pool is the hot path of every snapshot read, so its raw
// costs matter: a hit must be cheap enough to beat re-reading a page
// from the OS, eviction must be O(evicted), and the striped locks must
// actually let concurrent readers through. Four sections:
//
//   hit          — resident set, 100% hits (the steady state of a warm
//                  read path);
//   miss+insert  — unique keys forever, constant eviction at budget
//                  (cold scans / thrash floor);
//   pin churn    — hit + hold + release, with a pinned working set the
//                  evictor must skip (live PageView traffic);
//   contention   — 1/2/4/8 threads hammering one pool, uniform keys
//                  (shared-shard scaling; the per-snapshot caches this
//                  pool replaced serialized every reader on one mutex).
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "storage/buffer_pool.hpp"

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  using storage::BufferPool;
  using storage::BufferPoolStats;
  using storage::kPageSize;
  using storage::PageImageKey;
  Init(argc, argv, "bench_buffer_pool");

  Header("E14", "shared buffer pool: hit/miss/eviction/pin/contention",
         "(engineering bench; pool must outrun per-snapshot caches)");

  const uint64_t scale = State().smoke ? 1 : 8;
  auto image = [](char fill) {
    return std::make_shared<const std::string>(kPageSize, fill);
  };
  auto key = [](uint64_t i) {
    return PageImageKey{/*owner=*/1, static_cast<storage::PageId>(i),
                        /*generation=*/0, /*offset=*/i * 16};
  };

  // ------------------------------------------------------------- hits
  {
    const uint64_t kResident = 1024;
    const uint64_t kLookups = scale * 2'000'000;
    BufferPool pool(kResident * 2 * kPageSize);
    for (uint64_t i = 0; i < kResident; ++i) {
      (void)pool.Insert(key(i), image('r'));
    }
    // Per-lookup cost sampled per block (timing every lookup would
    // dominate the thing measured): the distribution catches shard-map
    // outliers a mean would hide.
    const uint64_t kBlock = 10'000;
    std::vector<double> block_ns;
    block_ns.reserve(kLookups / kBlock);
    util::Stopwatch watch;
    uint64_t found = 0;
    for (uint64_t start = 0; start < kLookups; start += kBlock) {
      util::Stopwatch block;
      for (uint64_t i = start; i < start + kBlock; ++i) {
        found += pool.Lookup(key(i % kResident)) != nullptr;
      }
      block_ns.push_back(1000.0 * static_cast<double>(block.ElapsedUs()) /
                         static_cast<double>(kBlock));
    }
    const double ms = watch.ElapsedMs();
    BP_CHECK(found == kLookups, "every resident lookup must hit");
    const double per_sec = 1000.0 * static_cast<double>(kLookups) / ms;
    const Percentiles lookup_ns = ComputePercentiles(std::move(block_ns));
    Row("hit:         %9llu lookups in %7.1f ms  (%12.0f hits/s, "
        "%.0f/%.0f ns p50/p99)",
        (unsigned long long)kLookups, ms, per_sec, lookup_ns.p50,
        lookup_ns.p99);
    Metric("hit_lookups_per_sec", per_sec);
    MetricPercentiles("hit_lookup_ns", lookup_ns);
  }

  // ----------------------------------------------------- miss + insert
  {
    const uint64_t kInserts = scale * 200'000;
    BufferPool pool(BufferPool::kShards * 16 * kPageSize);
    util::Stopwatch watch;
    for (uint64_t i = 0; i < kInserts; ++i) {
      // One image per insert: the allocation is part of the real miss
      // path (and a shared payload would read as pinned to the evictor).
      (void)pool.Insert(key(i), image('m'));
    }
    const double ms = watch.ElapsedMs();
    BufferPoolStats stats = pool.stats();
    const double per_sec = 1000.0 * static_cast<double>(kInserts) / ms;
    Row("miss+insert: %9llu inserts in %7.1f ms  (%12.0f inserts/s, "
        "%llu evictions)",
        (unsigned long long)kInserts, ms, per_sec,
        (unsigned long long)stats.evictions);
    BP_CHECK(stats.evictions > 0, "budget must have forced eviction");
    BP_CHECK(stats.bytes <= pool.byte_budget(),
             "insert path must hold the byte budget");
    Metric("insert_evict_per_sec", per_sec);
    Metric("insert_evictions", static_cast<double>(stats.evictions));
  }

  // --------------------------------------------------------- pin churn
  {
    const uint64_t kOps = scale * 1'000'000;
    const uint64_t kResident = 512;
    BufferPool pool(kResident * kPageSize);  // tight: evictor runs often
    std::vector<std::shared_ptr<const std::string>> pins;
    for (uint64_t i = 0; i < kResident / 2; ++i) {
      pins.push_back(pool.Insert(key(i), image('p')));  // pinned half
    }
    util::Stopwatch watch;
    std::shared_ptr<const std::string> held;
    for (uint64_t i = 0; i < kOps; ++i) {
      const uint64_t k = kResident / 2 + i % kResident;  // unpinned keys
      held = pool.Lookup(key(k));
      if (held == nullptr) held = pool.Insert(key(k), image('c'));
      // `held` drops at the next iteration: a one-op pin lifetime.
    }
    const double ms = watch.ElapsedMs();
    BufferPoolStats stats = pool.stats();
    for (auto& pin : pins) {
      BP_CHECK(pin != nullptr && pin->front() == 'p',
               "pinned images must survive the churn");
    }
    const double per_sec = 1000.0 * static_cast<double>(kOps) / ms;
    Row("pin churn:   %9llu ops     in %7.1f ms  (%12.0f ops/s, "
        "%llu pinned skips)",
        (unsigned long long)kOps, ms, per_sec,
        (unsigned long long)stats.pinned_skips);
    Metric("pin_churn_ops_per_sec", per_sec);
  }

  // -------------------------------------------------------- contention
  {
    Blank();
    Row("contention (uniform keys over a resident set, lookup-or-insert):");
    const uint64_t kResident = 4096;
    const uint64_t kOpsPerThread = scale * 500'000;
    double ops_at_1 = 0;
    for (int threads : {1, 2, 4, 8}) {
      BufferPool pool(kResident * 2 * kPageSize);
      for (uint64_t i = 0; i < kResident; ++i) {
        (void)pool.Insert(key(i), image('s'));
      }
      std::atomic<uint64_t> bad{0};
      std::vector<std::thread> workers;
      workers.reserve(threads);
      util::Stopwatch watch;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          // Per-thread stride decorrelates the walks without RNG cost.
          uint64_t at = static_cast<uint64_t>(t) * 7919;
          for (uint64_t i = 0; i < kOpsPerThread; ++i) {
            at = (at + 12289) % kResident;
            if (pool.Lookup(key(at)) == nullptr) bad.fetch_add(1);
          }
        });
      }
      for (std::thread& w : workers) w.join();
      const double ms = watch.ElapsedMs();
      BP_CHECK(bad.load() == 0, "resident set must stay resident");
      const double total =
          static_cast<double>(kOpsPerThread) * threads;
      const double per_sec = 1000.0 * total / ms;
      if (threads == 1) ops_at_1 = per_sec;
      Row("  %d thread%s: %12.0f lookups/s  (%.2fx single-thread)",
          threads, threads == 1 ? " " : "s", per_sec,
          ops_at_1 > 0 ? per_sec / ops_at_1 : 0.0);
      Metric(util::StrFormat("contention_lookups_per_sec_%d", threads),
             per_sec);
    }
  }

  return Finish();
}
