// E10 — Section 3.2: "second-class citizens" and metadata sparsity.
//
// Paper: "when the user moves from page to page by typing in the
// location bar, most browsers will not record a relationship... So
// ironically, if a user often takes advantage of advanced navigation
// features such as Firefox's smart location bar, she will generate
// sparsely connected metadata."
//
// Simulates a regular user and a power user (heavy location-bar /
// bookmark navigation); measures, in both schemas: the fraction of
// visits with no recorded referrer and the success rate of download
// lineage (Places: walking from_visit; provenance: TraceDownload).
#include "bench/common.hpp"
#include "search/lineage.hpp"

namespace {

struct SchemaStats {
  uint64_t visits = 0;
  uint64_t orphans = 0;  // visits with no incoming relationship
  int lineage_attempts = 0;
  int lineage_success = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  Init(argc, argv, "bench_connectivity");

  Header("E10", "second-class relationships: orphaned visits and lineage "
                "success",
         "heavy location-bar users generate sparsely connected metadata "
         "in Places; the provenance schema keeps the graph connected");

  Row("%-12s %-12s %14s %20s", "user", "schema", "orphan visits",
      "download lineage ok");

  for (bool power_user : {false, true}) {
    FixtureOptions options;
    options.user_overridden = true;
    options.user = sim::UserConfig{};
    if (power_user) {
      // The paper's "advanced navigation features" user.
      options.user.p_typed_url = 0.30;
      options.user.p_bookmark_click = 0.15;
      options.user.p_follow_link = 0.20;
      options.user.p_search = 0.10;
    }
    auto fx = HistoryFixture::Build(options);

    // --- Places ---
    SchemaStats places;
    MustOk(fx->places->ForEachVisit(
               [&](uint64_t, const places::VisitRow& row) {
                 ++places.visits;
                 if (row.from_visit == 0) ++places.orphans;
                 return true;
               }),
           "places scan");
    // Lineage by from_visit walk: succeed when we reach a place with >= 5
    // visits before the chain dead-ends.
    MustOk(fx->places->ForEachDownload(
               [&](uint64_t, const places::DownloadRow& row) {
                 if (places.lineage_attempts >= 40) return false;
                 ++places.lineage_attempts;
                 // Find the latest visit of the source place and walk.
                 if (row.place_id == 0) return true;
                 auto visits = fx->places->VisitsForPlace(row.place_id);
                 if (!visits.ok() || visits->empty()) return true;
                 uint64_t visit_id = visits->back();
                 for (int hop = 0; hop < 64 && visit_id != 0; ++hop) {
                   auto visit = fx->places->GetVisit(visit_id);
                   if (!visit.ok()) break;
                   auto place = fx->places->GetPlace(visit->place_id);
                   if (place.ok() && place->visit_count >= 5) {
                     ++places.lineage_success;
                     return true;
                   }
                   visit_id = visit->from_visit;  // 0 stops the walk
                 }
                 return true;
               }),
           "places lineage");

    // --- Provenance --- (cursor read path; attrs never decoded)
    SchemaStats prov_stats;
    graph::NodeCursor nodes = fx->prov->graph().Nodes();
    for (; nodes.Valid(); nodes.Next()) {
      if (nodes.node().kind() !=
          static_cast<uint32_t>(prov::NodeKind::kVisit)) {
        continue;
      }
      ++prov_stats.visits;
      uint64_t in_actions = 0;
      graph::EdgeCursor edges =
          fx->prov->graph().Edges(nodes.node().id(), graph::Direction::kIn);
      for (; edges.Valid(); edges.Next()) {
        if (edges.edge().kind() !=
            static_cast<uint32_t>(prov::EdgeKind::kInstanceOf)) {
          ++in_actions;
        }
      }
      MustOk(edges.status(), "prov scan");
      if (in_actions == 0) ++prov_stats.orphans;
    }
    MustOk(nodes.status(), "prov scan");
    for (const auto& episode : fx->out.downloads) {
      if (prov_stats.lineage_attempts >= 40) break;
      auto it =
          fx->prov_recorder->download_map().find(episode.download_id);
      if (it == fx->prov_recorder->download_map().end()) continue;
      ++prov_stats.lineage_attempts;
      auto report =
          MustOk(search::TraceDownload(*fx->prov, it->second, {}), "trace");
      if (report.found_recognizable) ++prov_stats.lineage_success;
    }

    const char* user_label = power_user ? "power" : "regular";
    Row("%-12s %-12s %13.1f%% %17d/%d", user_label, "places",
        100.0 * static_cast<double>(places.orphans) /
            static_cast<double>(places.visits),
        places.lineage_success, places.lineage_attempts);
    Row("%-12s %-12s %13.1f%% %17d/%d", user_label, "provenance",
        100.0 * static_cast<double>(prov_stats.orphans) /
            static_cast<double>(prov_stats.visits),
        prov_stats.lineage_success, prov_stats.lineage_attempts);
    Metric(std::string(user_label) + "_places_orphan_pct",
           100.0 * static_cast<double>(places.orphans) /
               static_cast<double>(places.visits));
    Metric(std::string(user_label) + "_prov_orphan_pct",
           100.0 * static_cast<double>(prov_stats.orphans) /
               static_cast<double>(prov_stats.visits));
  }
  Blank();
  Row("(expected shape: Places orphan rate grows sharply for the power");
  Row(" user and its lineage walks dead-end; provenance orphan rate stays");
  Row(" low — only true session starts — and lineage keeps working)");
  // Commit-latency distribution from the engine's registry (populated
  // by both users' ingests): instrumentation liveness cross-check.
  MetricObsHistogram("obs_commit_us", CommitLatencyHistogram());
  return Finish();
}
