// E6 — Time-contextual history search (use case 2.3).
//
// Paper: "A history search for 'wine associated with plane tickets' is
// both natural to the user and likely to return the desired result" —
// because users recall what else was on screen, and the provenance store
// (unlike Firefox) records page closes, so "open simultaneously" is
// answerable.
//
// Sweeps the number of decoy wine pages; reports the rank of the
// remembered page under plain text search vs the time-contextual query,
// and repeats with close recording disabled (the Firefox condition).
#include "bench/common.hpp"
#include "capture/bus.hpp"
#include "search/time_context.hpp"
#include "sim/scenario.hpp"
#include "storage/env.hpp"

namespace {

struct Condition {
  bool record_closes;
  const char* name;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  Init(argc, argv, "bench_time_contextual");

  Header("E6", "time-contextual search: \"wine associated with plane tickets\"",
         "the co-open page ranks first; without close timestamps the "
         "association is lost (every page 'always open')");

  Row("%7s %-22s %12s %14s %12s", "decoys", "condition", "text rank",
      "time-ctx rank", "co-open set");

  for (int decoys : {6, 14, 30, 60}) {
    for (Condition cond : {Condition{true, "with closes (ours)"},
                           Condition{false, "no closes (Firefox)"}}) {
      storage::MemEnv env;
      storage::DbOptions db_opts;
      db_opts.env = &env;
      db_opts.sync = false;
      auto db = MustOk(storage::Db::Open("wine.db", db_opts), "db");
      prov::ProvOptions popts;
      popts.record_close_times = cond.record_closes;
      auto store = MustOk(prov::ProvStore::Open(*db, popts), "prov");
      capture::ProvenanceRecorder recorder(*store);
      capture::EventBus bus;
      bus.Subscribe(&recorder);
      sim::WineScenario scenario = sim::MakeWineScenario(decoys);
      MustOk(bus.PublishAll(scenario.events), "ingest");
      auto searcher =
          MustOk(search::HistorySearcher::Open(*db, *store), "searcher");

      // The scenario plants decoys + decoys/2 wine pages; keep the pool
      // large enough that every one is a candidate.
      const size_t pool = static_cast<size_t>(decoys) * 2 + 10;
      auto textual = MustOk(
          searcher->TextualSearch(scenario.wine_query, pool), "text");
      int text_rank = 0;
      for (size_t i = 0; i < textual.pages.size(); ++i) {
        if (textual.pages[i].url == scenario.target_url) {
          text_rank = static_cast<int>(i + 1);
          break;
        }
      }

      search::TimeContextOptions options;
      options.k = pool;
      options.candidate_pool = pool;
      auto timed = MustOk(
          search::TimeContextualSearch(*searcher, scenario.wine_query,
                                       scenario.context_query, options),
          "timectx");
      int time_rank = 0;
      int co_open = 0;
      for (size_t i = 0; i < timed.matches.size(); ++i) {
        if (timed.matches[i].co_open) ++co_open;
        if (timed.matches[i].page.url == scenario.target_url) {
          time_rank = static_cast<int>(i + 1);
        }
      }
      Row("%7d %-22s %12d %14d %12d", decoys, cond.name, text_rank,
          time_rank, co_open);
      Metric(util::StrFormat("%s_decoys%d_time_rank",
                             cond.record_closes ? "with_closes"
                                                : "no_closes",
                             decoys),
             time_rank);
    }
  }
  Blank();
  Row("(with closes: time-ctx rank should be 1 and exactly one page");
  Row(" co-open; without closes the co-open set balloons and the rank");
  Row(" reverts toward the text baseline — section 3.2's point)");
  // Commit-latency distribution from the engine's registry (populated
  // by the fixture ingest): instrumentation liveness cross-check.
  MetricObsHistogram("obs_commit_us", CommitLatencyHistogram());
  return Finish();
}
