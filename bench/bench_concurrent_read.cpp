// E12 — Concurrent snapshot readers against a live capture stream.
//
// The paper pitches provenance as a browser-wide service: capture keeps
// writing while history search and forensics read. The old engine was
// strictly single-threaded, so every query waited behind the in-flight
// capture batch (and stalled the next one). This bench measures what
// the snapshot read path buys:
//
//   serialized baseline — one thread alternates one 1024-event capture
//   batch with one contextual search (the single-threaded engine's
//   admission pattern under sustained capture: a query waits for the
//   batch, the next batch waits for the query);
//
//   concurrent — a dedicated writer thread ingests the same batches
//   continuously while N reader threads run contextual searches against
//   snapshot views (each reader refreshes its view every 16 queries).
//
// Reported: aggregate read throughput at 1/2/4/8 readers vs. the
// baseline, plus the writer's event throughput in each mode. Target
// (>= 4 cores): >= 2x aggregate read throughput at 4 readers. Even on
// one core the concurrent engine wins, because reads no longer spend
// most of their wall clock waiting behind capture batches.
#include <atomic>
#include <cmath>
#include <chrono>
#include <thread>

#include "bench/common.hpp"
#include "prov/provenance_db.hpp"

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  Init(argc, argv, "bench_concurrent_read");

  Header("E12", "concurrent snapshot readers with a live writer",
         "query load runs against a live capture stream (sections 2, 5)");

  // ------------------------------------------------------------ fixture
  const uint32_t days = State().smoke ? 2 : 40;
  util::Rng rng(2009);
  sim::Vocabulary vocab = sim::Vocabulary::Create(rng, {});
  sim::WebGraph web = sim::WebGraph::Generate(rng, {}, vocab);
  sim::UserConfig user;
  user.seed = 2010;
  user.days = days;
  sim::SimOutput out = sim::BrowserSim(web, user).Run();
  // A second simulated stream feeds the live writer during measurement.
  sim::UserConfig reserve_user;
  reserve_user.seed = 2110;
  reserve_user.days = days;
  sim::SimOutput reserve = sim::BrowserSim(web, reserve_user).Run();

  storage::MemEnv env;
  prov::ProvenanceDb::Options options;
  options.db.env = &env;
  options.db.sync = false;  // measuring CPU/concurrency, not fsync
  auto db = MustOk(prov::ProvenanceDb::Open("concurrent.db", options),
                   "open facade");
  MustOk(db->IngestAll(out.events), "base ingest");
  Row("history: %zu base events over %u days, %zu reserve events",
      out.events.size(), days, reserve.events.size());

  std::vector<std::string> queries;
  for (const auto& episode : out.searches) {
    queries.push_back(episode.query);
    if (queries.size() >= 32) break;
  }
  if (queries.empty()) queries.push_back("page");
  MustOk(db->Search(queries[0]).status(), "warm-up query");

  constexpr size_t kBatchEvents = 1024;
  constexpr int kViewRefresh = 16;  // queries per snapshot view
  const double measure_ms = State().smoke ? 500 : 2000;
  // The fixture runs sync=false (CPU is what's measured), so each batch
  // models the group-commit fsync the capture path pays on real
  // hardware as device time: the committing thread blocks ~2 ms, in
  // BOTH modes. The serialized engine's queued query waits that out;
  // snapshot readers keep running through it — which is half the point.
  constexpr auto kModeledSync = std::chrono::milliseconds(2);

  size_t reserve_pos = 0;  // writer-only cursor over the reserve stream
  auto ingest_batch = [&] {
    {
      prov::ProvenanceDb::Batch batch(*db);
      for (size_t i = 0; i < kBatchEvents; ++i) {
        MustOk(db->Ingest(reserve.events[reserve_pos]), "live ingest");
        reserve_pos = (reserve_pos + 1) % reserve.events.size();
      }
      MustOk(batch.Commit(), "live commit");
    }
    std::this_thread::sleep_for(kModeledSync);
  };

  // ------------------------------------------------- serialized baseline
  //
  // Every phase keeps ingesting, so the history grows throughout the
  // run and later phases answer queries over a larger graph. The
  // baseline is therefore measured twice — before and after the
  // concurrent phases — and drift-corrected with the geometric mean, so
  // neither side benefits from running on the smallest database.
  auto measure_serialized = [&](const char* label) {
    uint64_t reads = 0, batches = 0;
    util::Stopwatch watch;
    while (watch.ElapsedMs() < measure_ms) {
      ingest_batch();
      ++batches;
      MustOk(db->Search(queries[reads % queries.size()]).status(),
             "baseline query");
      ++reads;
    }
    const double s = watch.ElapsedMs() / 1000.0;
    const double qps = static_cast<double>(reads) / s;
    Row("serialized baseline (%s): %7.1f reads/s  %9.0f events/s "
        "(reads wait behind capture batches)",
        label, qps, static_cast<double>(batches) * kBatchEvents / s);
    return qps;
  };
  const double baseline_first = measure_serialized("pre ");

  // --------------------------------------------------- concurrent modes
  double qps_at_4 = 0;
  std::vector<std::pair<int, double>> qps_by_readers;
  for (int readers : {1, 2, 4, 8}) {
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> read_errors{0};

    std::vector<std::thread> pool;
    pool.reserve(readers);
    for (int r = 0; r < readers; ++r) {
      pool.emplace_back([&, r] {
        uint64_t local = 0;
        while (!stop.load(std::memory_order_acquire)) {
          auto view = db->BeginSnapshot();
          if (!view.ok()) {
            read_errors.fetch_add(1);
            return;
          }
          for (int q = 0; q < kViewRefresh &&
                          !stop.load(std::memory_order_acquire);
               ++q) {
            auto hits =
                view->Search(queries[(r + local) % queries.size()]);
            if (!hits.ok()) {
              read_errors.fetch_add(1);
              return;
            }
            ++local;
            reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }

    uint64_t batches = 0;
    util::Stopwatch watch;
    while (watch.ElapsedMs() < measure_ms) {
      // Readers slip their (brief) snapshot refresh in between batches
      // and during the modeled sync; the queries themselves never take
      // the writer lock.
      ingest_batch();
      ++batches;
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& t : pool) t.join();
    const double s = watch.ElapsedMs() / 1000.0;
    BP_CHECK(read_errors.load() == 0, "reader queries failed");

    const double qps = static_cast<double>(reads.load()) / s;
    const double eps = static_cast<double>(batches) * kBatchEvents / s;
    if (readers == 4) qps_at_4 = qps;
    qps_by_readers.emplace_back(readers, qps);
    Row("%d reader thread%s:          %7.1f reads/s  %9.0f events/s",
        readers, readers == 1 ? " " : "s", qps, eps);
    Metric(util::StrFormat("qps_threads_%d", readers), qps);
    Metric(util::StrFormat("writer_events_per_sec_%d", readers), eps);
  }

  const double baseline_last = measure_serialized("post");
  const double baseline_qps = std::sqrt(baseline_first * baseline_last);
  Metric("baseline_serialized_qps_pre", baseline_first);
  Metric("baseline_serialized_qps_post", baseline_last);
  Metric("baseline_serialized_qps", baseline_qps);

  Blank();
  Row("drift-corrected serialized baseline: %.1f reads/s "
      "(geomean of pre/post)", baseline_qps);
  for (const auto& [readers, qps] : qps_by_readers) {
    Row("  %d reader%s: %.2fx baseline read throughput", readers,
        readers == 1 ? " " : "s", baseline_qps > 0 ? qps / baseline_qps : 0);
  }
  const double speedup = baseline_qps > 0 ? qps_at_4 / baseline_qps : 0;
  Metric("speedup_4_readers", speedup);
  Blank();
  Row("aggregate read throughput at 4 readers: %.2fx the serialized "
      "baseline (target on >= 4 cores: >= 2x)",
      speedup);
  return Finish();
}
