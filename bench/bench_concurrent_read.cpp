// E12 — Concurrent snapshot readers against a live capture stream.
//
// The paper pitches provenance as a browser-wide service: capture keeps
// writing while history search and forensics read. The old engine was
// strictly single-threaded, so every query waited behind the in-flight
// capture batch (and stalled the next one). This bench measures what
// the snapshot read path buys, and what the shared buffer pool adds on
// top of it. Both cache designs run the IDENTICAL phase sequence on
// their own fresh database (serialized pre, reader sweep, serialized
// post), so the numbers at each reader count are directly comparable:
//
//   serialized baseline — one thread alternates one 1024-event capture
//   batch with one contextual search (the single-threaded engine's
//   admission pattern under sustained capture: a query waits for the
//   batch, the next batch waits for the query);
//
//   private caches (pool_bytes = 0) — N reader threads run contextual
//   searches against snapshot views (each refreshes its view every 16
//   queries) while a dedicated writer ingests continuously; every view
//   carries its own copy-on-read cache, so each refresh cold-reads the
//   working set and readers hold duplicate copies of identical page
//   images (the pre-pool engine);
//
//   shared pool — the same sweep with the versioned buffer pool: views
//   share one set of frames keyed by page image identity, the writer
//   publishes committed pages at commit, refreshes re-warm from the
//   pool instead of re-copying, and memory stays deduplicated no
//   matter how many readers run.
//
// Reported: aggregate read throughput at 1/2/4/8 readers for both
// designs, the pool-over-private ratio (acceptance at 4 readers:
// >= 1.5x), the drift-corrected serialized-baseline speedup, and the
// pool's hit/miss counters.
#include <atomic>
#include <cmath>
#include <chrono>
#include <thread>

#include "bench/common.hpp"
#include "prov/provenance_db.hpp"

int main(int argc, char** argv) {
  using namespace bp;
  using namespace bp::bench;
  Init(argc, argv, "bench_concurrent_read");

  Header("E12", "concurrent snapshot readers with a live writer",
         "query load runs against a live capture stream (sections 2, 5)");

  // ------------------------------------------------------------ fixture
  const uint32_t days = State().smoke ? 2 : 40;
  util::Rng rng(2009);
  sim::Vocabulary vocab = sim::Vocabulary::Create(rng, {});
  sim::WebGraph web = sim::WebGraph::Generate(rng, {}, vocab);
  sim::UserConfig user;
  user.seed = 2010;
  user.days = days;
  sim::SimOutput out = sim::BrowserSim(web, user).Run();
  // A second simulated stream feeds the live writer during measurement.
  sim::UserConfig reserve_user;
  reserve_user.seed = 2110;
  reserve_user.days = days;
  sim::SimOutput reserve = sim::BrowserSim(web, reserve_user).Run();
  Row("history: %zu base events over %u days, %zu reserve events",
      out.events.size(), days, reserve.events.size());

  std::vector<std::string> queries;
  for (const auto& episode : out.searches) {
    queries.push_back(episode.query);
    if (queries.size() >= 32) break;
  }
  if (queries.empty()) queries.push_back("page");

  constexpr size_t kBatchEvents = 1024;
  constexpr int kViewRefresh = 16;  // queries per snapshot view
  const double measure_ms = State().smoke ? 400 : 2000;
  // The fixture runs sync=false (CPU is what's measured), so each batch
  // models the group-commit fsync the capture path pays on real
  // hardware as device time: the committing thread blocks ~2 ms, in
  // ALL modes. The serialized engine's queued query waits that out;
  // snapshot readers keep running through it — which is half the point.
  constexpr auto kModeledSync = std::chrono::milliseconds(2);

  struct ConfigResult {
    std::vector<std::pair<int, double>> qps_by_readers;
    double qps_at_4 = 0;
    std::vector<std::pair<int, double>> oneshot_by_readers;
    double oneshot_at_4 = 0;
    double serialized_qps = 0;  // geomean of pre/post
    storage::PagerStats stats;
  };
  // Device time charged per cache-cold page read during the one-shot
  // sweep (NVMe-class 4 KiB random read), same modeling technique as
  // kModeledSync: MemEnv reads are otherwise free, which hides exactly
  // the cost the buffer pool removes.
  constexpr uint32_t kColdReadUs = 20;

  auto run_config = [&](const char* label, size_t pool_bytes) {
    storage::MemEnv env;  // fresh world per configuration
    prov::ProvenanceDb::Options options;
    options.db.env = &env;
    options.db.sync = false;  // measuring CPU/concurrency, not fsync
    options.db.pool_bytes = pool_bytes;
    // The one-shot sweep queries run against whatever has committed
    // (no read-your-writes drain): its readers are other threads with
    // no tickets of their own to wait for.
    options.async.drain_before_query = false;
    auto db = MustOk(prov::ProvenanceDb::Open("concurrent.db", options),
                     "open facade");
    MustOk(db->IngestAll(out.events), "base ingest");
    MustOk(db->Search(queries[0]).status(), "warm-up query");
    std::vector<prov::NodeId> downloads;
    for (const auto& episode : out.downloads) {
      auto it = db->recorder().download_map().find(episode.download_id);
      if (it != db->recorder().download_map().end()) {
        downloads.push_back(it->second);
      }
      if (downloads.size() >= 32) break;
    }

    size_t reserve_pos = 0;
    auto ingest_batch = [&] {
      {
        prov::ProvenanceDb::Batch batch(*db);
        for (size_t i = 0; i < kBatchEvents; ++i) {
          MustOk(db->Ingest(reserve.events[reserve_pos]), "live ingest");
          reserve_pos = (reserve_pos + 1) % reserve.events.size();
        }
        MustOk(batch.Commit(), "live commit");
      }
      std::this_thread::sleep_for(kModeledSync);
    };

    // Serialized baseline. Every phase keeps ingesting, so the history
    // grows throughout the run and later phases answer queries over a
    // larger graph; the baseline is measured before AND after the
    // concurrent sweep and drift-corrected with the geometric mean.
    auto measure_serialized = [&](const char* phase) {
      uint64_t reads = 0, batches = 0;
      util::Stopwatch watch;
      while (watch.ElapsedMs() < measure_ms) {
        ingest_batch();
        ++batches;
        MustOk(db->Search(queries[reads % queries.size()]).status(),
               "baseline query");
        ++reads;
      }
      const double s = watch.ElapsedMs() / 1000.0;
      const double qps = static_cast<double>(reads) / s;
      Row("%s, serialized (%s):   %7.1f reads/s  %9.0f events/s",
          label, phase, qps,
          static_cast<double>(batches) * kBatchEvents / s);
      return qps;
    };

    ConfigResult result;
    const double baseline_first = measure_serialized("pre ");
    for (int readers : {1, 2, 4, 8}) {
      std::atomic<bool> stop{false};
      std::atomic<uint64_t> reads{0};
      std::atomic<uint64_t> read_errors{0};

      std::vector<std::thread> pool;
      pool.reserve(readers);
      for (int r = 0; r < readers; ++r) {
        pool.emplace_back([&, r] {
          uint64_t local = 0;
          while (!stop.load(std::memory_order_acquire)) {
            auto view = db->BeginSnapshot();
            if (!view.ok()) {
              read_errors.fetch_add(1);
              return;
            }
            for (int q = 0; q < kViewRefresh &&
                            !stop.load(std::memory_order_acquire);
                 ++q) {
              auto hits =
                  view->Search(queries[(r + local) % queries.size()]);
              if (!hits.ok()) {
                read_errors.fetch_add(1);
                return;
              }
              ++local;
              reads.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }

      uint64_t batches = 0;
      util::Stopwatch watch;
      while (watch.ElapsedMs() < measure_ms) {
        // Readers slip their (brief) snapshot refresh in between
        // batches and during the modeled sync; the queries themselves
        // never take the writer lock.
        ingest_batch();
        ++batches;
      }
      stop.store(true, std::memory_order_release);
      for (std::thread& t : pool) t.join();
      const double s = watch.ElapsedMs() / 1000.0;
      BP_CHECK(read_errors.load() == 0, "reader queries failed");

      const double qps = static_cast<double>(reads.load()) / s;
      const double eps = static_cast<double>(batches) * kBatchEvents / s;
      if (readers == 4) result.qps_at_4 = qps;
      result.qps_by_readers.emplace_back(readers, qps);
      Row("%s, %d reader thread%s: %7.1f reads/s  %9.0f events/s",
          label, readers, readers == 1 ? " " : "s", qps, eps);
    }
    // One-shot forensics sweep: N threads fire TraceDownload one-shots
    // (fresh snapshot per call — the facade's cross-thread default)
    // against a live paced capture stream, with cache-cold page reads
    // charged kColdReadUs of device time. The per-snapshot-cache design
    // re-reads each query's working set at device price every time; the
    // shared pool pays it once. The writer is paced (IngestAsync at a
    // browsing-burst rate, committed by the pipeline's own thread)
    // rather than flat-out: a firehose writer measures lock handoff,
    // not the read path.
    if (!downloads.empty()) {
      env.set_read_cost_us(kColdReadUs);
      const uint64_t kEventsPerSecond = 2000;
      for (int readers : {1, 2, 4, 8}) {
        std::atomic<bool> stop{false};
        std::atomic<uint64_t> reads{0};
        std::atomic<uint64_t> read_errors{0};

        std::thread writer([&] {
          size_t at = 0;
          while (!stop.load(std::memory_order_acquire)) {
            for (uint64_t i = 0; i < kEventsPerSecond / 100; ++i) {
              MustOk(db->IngestAsync(reserve.events[at]).status(),
                     "paced ingest");
              at = (at + 1) % reserve.events.size();
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
          }
        });
        std::vector<std::thread> pool;
        pool.reserve(readers);
        for (int r = 0; r < readers; ++r) {
          pool.emplace_back([&, r] {
            uint64_t local = 0;
            while (!stop.load(std::memory_order_acquire)) {
              auto report = db->TraceDownload(
                  downloads[(r + local) % downloads.size()]);
              if (!report.ok()) {
                read_errors.fetch_add(1);
                return;
              }
              ++local;
              reads.fetch_add(1, std::memory_order_relaxed);
            }
          });
        }
        util::Stopwatch watch;
        while (watch.ElapsedMs() < measure_ms) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        stop.store(true, std::memory_order_release);
        writer.join();
        for (std::thread& t : pool) t.join();
        BP_CHECK(read_errors.load() == 0, "one-shot queries failed");
        const double qps =
            static_cast<double>(reads.load()) / (watch.ElapsedMs() / 1000.0);
        if (readers == 4) result.oneshot_at_4 = qps;
        result.oneshot_by_readers.emplace_back(readers, qps);
        Row("%s, %d one-shot reader%s: %7.1f reads/s",
            label, readers, readers == 1 ? " " : "s", qps);
      }
      env.set_read_cost_us(0);
      MustOk(db->Drain(), "drain paced ingest");
    }

    const double baseline_last = measure_serialized("post");
    result.serialized_qps = std::sqrt(baseline_first * baseline_last);
    result.stats = db->storage_stats();
    return result;
  };

  Blank();
  ConfigResult private_caches = run_config("private caches", 0);
  Blank();
  ConfigResult pooled = run_config("shared pool   ", size_t{64} << 20);

  for (const auto& [readers, qps] : private_caches.qps_by_readers) {
    Metric(util::StrFormat("private_qps_threads_%d", readers), qps);
  }
  for (const auto& [readers, qps] : pooled.qps_by_readers) {
    Metric(util::StrFormat("qps_threads_%d", readers), qps);
  }
  for (const auto& [readers, qps] : private_caches.oneshot_by_readers) {
    Metric(util::StrFormat("private_oneshot_qps_threads_%d", readers), qps);
  }
  for (const auto& [readers, qps] : pooled.oneshot_by_readers) {
    Metric(util::StrFormat("oneshot_qps_threads_%d", readers), qps);
  }
  Metric("baseline_serialized_qps", pooled.serialized_qps);

  Blank();
  Row("pool: %llu hits, %llu misses, %llu evictions, %llu frames "
      "(%llu KiB) resident",
      (unsigned long long)pooled.stats.pool_hits,
      (unsigned long long)pooled.stats.pool_misses,
      (unsigned long long)pooled.stats.pool_evictions,
      (unsigned long long)pooled.stats.pool_frames,
      (unsigned long long)(pooled.stats.pool_bytes / 1024));
  Metric("pool_hits", static_cast<double>(pooled.stats.pool_hits));
  Metric("pool_misses", static_cast<double>(pooled.stats.pool_misses));
  Metric("pool_evictions",
         static_cast<double>(pooled.stats.pool_evictions));
  // Registry view of the one-shot sweeps (both configs accumulate into
  // the process-wide bp_query_us{family="trace_download"} histogram):
  // tail latency for the forensics one-shots under a live writer.
  MetricObsHistogram("obs_query_trace_us",
                     QueryLatencyHistogram("trace_download"));

  Blank();
  Row("drift-corrected serialized baseline: %.1f reads/s (pooled: %.1f)",
      private_caches.serialized_qps, pooled.serialized_qps);
  for (size_t i = 0; i < pooled.qps_by_readers.size(); ++i) {
    const auto& [readers, qps] = pooled.qps_by_readers[i];
    const double vs_private =
        private_caches.qps_by_readers[i].second > 0
            ? qps / private_caches.qps_by_readers[i].second
            : 0;
    Row("  %d reader%s: %.2fx serialized baseline, %.2fx private caches",
        readers, readers == 1 ? " " : "s",
        pooled.serialized_qps > 0 ? qps / pooled.serialized_qps : 0,
        vs_private);
    Metric(util::StrFormat("pool_over_private_%d", readers), vs_private);
  }
  for (size_t i = 0; i < pooled.oneshot_by_readers.size(); ++i) {
    const auto& [readers, qps] = pooled.oneshot_by_readers[i];
    const double vs_private =
        private_caches.oneshot_by_readers[i].second > 0
            ? qps / private_caches.oneshot_by_readers[i].second
            : 0;
    Row("  %d one-shot reader%s: %.2fx private caches", readers,
        readers == 1 ? " " : "s", vs_private);
    Metric(util::StrFormat("oneshot_pool_over_private_%d", readers),
           vs_private);
  }
  const double speedup = pooled.serialized_qps > 0
                             ? pooled.qps_at_4 / pooled.serialized_qps
                             : 0;
  const double pool_gain = private_caches.qps_at_4 > 0
                               ? pooled.qps_at_4 / private_caches.qps_at_4
                               : 0;
  const double oneshot_gain =
      private_caches.oneshot_at_4 > 0
          ? pooled.oneshot_at_4 / private_caches.oneshot_at_4
          : 0;
  Metric("speedup_4_readers", speedup);
  Metric("pool_over_private_4_readers", pool_gain);
  Metric("oneshot_pool_over_private_4_readers", oneshot_gain);
  Blank();
  Row("at 4 readers: %.2fx the serialized baseline (target >= 2x on >= 4 "
      "cores); view readers %.2fx private caches; one-shot readers %.2fx "
      "private caches (acceptance: >= 1.5x)",
      speedup, pool_gain, oneshot_gain);
  return Finish();
}
