// E11 — Storage-engine microbenchmarks.
//
// Substrate soundness for every experiment above: B+tree point ops and
// scans, transaction commit, overflow values, snapshot reads, and
// inverted-index postings. Not a paper claim per se — it grounds the
// latency results by showing where the time goes.
//
// Ported to the shared bench harness (--json/--smoke, BENCH_*.json)
// like every other bench, so CI smoke-runs it per commit and the
// metrics land in the perf-trajectory artifacts; google-benchmark is no
// longer required.
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "storage/btree.hpp"
#include "storage/db.hpp"
#include "storage/env.hpp"
#include "storage/snapshot.hpp"
#include "text/index.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace {

using namespace bp;
using bp::bench::Metric;
using bp::bench::MustOk;
using bp::bench::Row;

struct EngineFixture {
  storage::MemEnv env;
  std::unique_ptr<storage::Db> db;
  storage::BTree* tree = nullptr;

  explicit EngineFixture(size_t preload = 0) {
    storage::DbOptions opts;
    opts.env = &env;
    opts.sync = false;
    // The production capture configuration (and the one that supports
    // snapshots).
    opts.durability = storage::DurabilityMode::kWal;
    db = MustOk(storage::Db::Open("bench.db", opts), "open db");
    tree = MustOk(db->CreateTree("t"), "create tree");
    util::Rng rng(1);
    for (size_t i = 0; i < preload; ++i) {
      MustOk(tree->Put(util::OrderedKeyU64(rng.NextU64()),
                       std::string(64, 'v')),
             "preload");
    }
  }
};

// Runs `op` `iters` times and reports ops/sec plus per-op microseconds.
void Bench(const char* name, uint64_t iters, uint64_t items_per_iter,
           const std::function<void(uint64_t)>& op) {
  util::Stopwatch watch;
  for (uint64_t i = 0; i < iters; ++i) op(i);
  const double ms = watch.ElapsedMs();
  const double items =
      static_cast<double>(iters) * static_cast<double>(items_per_iter);
  const double per_sec = items / (ms / 1000.0);
  Row("%-32s %12.0f ops/s  %10.3f us/op", name, per_sec,
      ms * 1000.0 / items);
  Metric(std::string(name) + "_ops_per_sec", per_sec);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bp::bench;
  Init(argc, argv, "bench_storage_engine");

  Header("E11", "storage-engine microbenchmarks",
         "substrate soundness: where the query/capture time goes");

  const uint64_t n = State().smoke ? 4000 : 40000;
  const size_t kPreload = State().smoke ? 10000 : 30000;

  {
    EngineFixture fx;
    uint64_t key = 0;
    std::string value(64, 'v');
    Bench("btree_put_sequential", n, 1, [&](uint64_t) {
      MustOk(fx.tree->Put(util::OrderedKeyU64(key++), value), "put");
    });
  }
  {
    EngineFixture fx;
    util::Rng rng(2);
    std::string value(64, 'v');
    Bench("btree_put_random", n, 1, [&](uint64_t) {
      MustOk(fx.tree->Put(util::OrderedKeyU64(rng.NextU64()), value),
             "put");
    });
  }
  {
    EngineFixture fx(kPreload);
    // Re-derive the preloaded keys.
    util::Rng rng(1);
    std::vector<std::string> keys;
    keys.reserve(kPreload);
    for (size_t i = 0; i < kPreload; ++i) {
      keys.push_back(util::OrderedKeyU64(rng.NextU64()));
    }
    Bench("btree_get_hit", n, 1, [&](uint64_t i) {
      MustOk(fx.tree->Get(keys[i % keys.size()]).status(), "get");
    });

    Bench("btree_scan_100", n / 20, 100, [&](uint64_t) {
      int rows = 0;
      storage::BTree::Cursor cur = fx.tree->NewCursor();
      for (cur.SeekFirst(); cur.Valid() && rows < 100; cur.Next()) ++rows;
      MustOk(cur.status(), "scan");
    });

    // The same point reads through a snapshot: what the concurrent
    // read path costs per op (snapshot page cache + shared pages).
    auto snap = MustOk(fx.db->BeginRead(), "snapshot");
    storage::BTree frozen = fx.tree->BoundAt(*snap);
    Bench("btree_get_hit_snapshot", n, 1, [&](uint64_t i) {
      MustOk(frozen.Get(keys[i % keys.size()]).status(), "snap get");
    });
    Bench("snapshot_open_close", State().smoke ? 2000 : 20000, 1,
          [&](uint64_t) {
            MustOk(fx.db->BeginRead().status(), "begin read");
          });
  }
  {
    EngineFixture fx;
    const std::string big(65536, 'x');
    uint64_t key = 0;
    Bench("overflow_roundtrip_64k", n / 40, 1, [&](uint64_t) {
      std::string k = util::OrderedKeyU64(key++ % 64);
      MustOk(fx.tree->Put(k, big), "overflow put");
      MustOk(fx.tree->Get(k).status(), "overflow get");
    });
  }
  {
    EngineFixture fx;
    uint64_t key = 0;
    std::string value(64, 'v');
    Bench("txn_commit_64_puts", n / 64, 64, [&](uint64_t) {
      MustOk(fx.db->Begin(), "begin");
      for (int i = 0; i < 64; ++i) {
        MustOk(fx.tree->Put(util::OrderedKeyU64(key++), value), "put");
      }
      MustOk(fx.db->Commit(), "commit");
    });
  }
  {
    storage::MemEnv env;
    storage::DbOptions opts;
    opts.env = &env;
    opts.sync = false;
    auto db = MustOk(storage::Db::Open("idx.db", opts), "open idx db");
    auto index =
        MustOk(text::InvertedIndex::Open(*db, "ix"), "open index");
    util::Rng rng(3);
    std::vector<std::string> vocabulary;
    for (int i = 0; i < 500; ++i) {
      vocabulary.push_back("term" + std::to_string(i));
    }
    text::DocId doc = 1;
    Bench("postings_append_and_search", n / 4, 1, [&](uint64_t) {
      std::vector<std::string> tokens;
      for (int i = 0; i < 12; ++i) {
        tokens.push_back(vocabulary[rng.Zipf(vocabulary.size(), 1.1)]);
      }
      MustOk(index->AddDocument(doc++, tokens), "add doc");
      if (doc % 64 == 0) {
        MustOk(index->Search({tokens[0]}, 10).status(), "search");
      }
    });
  }

  // Per-commit latency distribution from the pager's own registry
  // histogram (every Put/Commit above funnels through Pager::Commit):
  // the tail the mean us/op rows can't show.
  MetricObsHistogram("obs_commit_us", CommitLatencyHistogram());

  return Finish();
}
