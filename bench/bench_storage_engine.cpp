// E11 — Storage-engine microbenchmarks (google-benchmark).
//
// Substrate soundness for every experiment above: B+tree point ops and
// scans, transaction commit, overflow values, adjacency-range scans, and
// inverted-index postings. Not a paper claim per se — it grounds the
// latency results by showing where the time goes.
#include <benchmark/benchmark.h>

#include "storage/btree.hpp"
#include "storage/db.hpp"
#include "storage/env.hpp"
#include "text/index.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace {

using namespace bp;

struct EngineFixture {
  storage::MemEnv env;
  std::unique_ptr<storage::Db> db;
  storage::BTree* tree = nullptr;

  explicit EngineFixture(size_t preload = 0) {
    storage::DbOptions opts;
    opts.env = &env;
    opts.sync = false;
    db = std::move(*storage::Db::Open("bench.db", opts));
    tree = *db->CreateTree("t");
    util::Rng rng(1);
    for (size_t i = 0; i < preload; ++i) {
      (void)tree->Put(util::OrderedKeyU64(rng.NextU64()),
                      std::string(64, 'v'));
    }
  }
};

void BM_BTreePutSequential(benchmark::State& state) {
  EngineFixture fx;
  uint64_t key = 0;
  std::string value(64, 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.tree->Put(util::OrderedKeyU64(key++), value).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreePutSequential);

void BM_BTreePutRandom(benchmark::State& state) {
  EngineFixture fx;
  util::Rng rng(2);
  std::string value(64, 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.tree->Put(util::OrderedKeyU64(rng.NextU64()), value).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreePutRandom);

void BM_BTreeGetHit(benchmark::State& state) {
  EngineFixture fx(static_cast<size_t>(state.range(0)));
  // Re-derive the preloaded keys.
  util::Rng rng(1);
  std::vector<std::string> keys;
  for (int64_t i = 0; i < state.range(0); ++i) {
    keys.push_back(util::OrderedKeyU64(rng.NextU64()));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.tree->Get(keys[i++ % keys.size()]).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeGetHit)->Arg(1000)->Arg(30000);

void BM_BTreeScan100(benchmark::State& state) {
  EngineFixture fx(30000);
  for (auto _ : state) {
    int n = 0;
    (void)fx.tree->ForEach([&](std::string_view, std::string_view) {
      return ++n < 100;
    });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_BTreeScan100);

void BM_OverflowValueRoundTrip(benchmark::State& state) {
  EngineFixture fx;
  std::string big(static_cast<size_t>(state.range(0)), 'x');
  uint64_t key = 0;
  for (auto _ : state) {
    std::string k = util::OrderedKeyU64(key++ % 64);
    benchmark::DoNotOptimize(fx.tree->Put(k, big).ok());
    benchmark::DoNotOptimize(fx.tree->Get(k).ok());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_OverflowValueRoundTrip)->Arg(4096)->Arg(65536);

void BM_TransactionCommit(benchmark::State& state) {
  EngineFixture fx;
  uint64_t key = 0;
  std::string value(64, 'v');
  for (auto _ : state) {
    (void)fx.db->Begin();
    for (int i = 0; i < state.range(0); ++i) {
      (void)fx.tree->Put(util::OrderedKeyU64(key++), value);
    }
    (void)fx.db->Commit();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TransactionCommit)->Arg(1)->Arg(64);

void BM_PostingsAppendAndSearch(benchmark::State& state) {
  storage::MemEnv env;
  storage::DbOptions opts;
  opts.env = &env;
  opts.sync = false;
  auto db = std::move(*storage::Db::Open("idx.db", opts));
  auto index = std::move(*text::InvertedIndex::Open(*db, "ix"));
  util::Rng rng(3);
  std::vector<std::string> vocabulary;
  for (int i = 0; i < 500; ++i) {
    vocabulary.push_back("term" + std::to_string(i));
  }
  text::DocId doc = 1;
  for (auto _ : state) {
    std::vector<std::string> tokens;
    for (int i = 0; i < 12; ++i) {
      tokens.push_back(vocabulary[rng.Zipf(vocabulary.size(), 1.1)]);
    }
    (void)index->AddDocument(doc++, tokens);
    if (doc % 64 == 0) {
      benchmark::DoNotOptimize(index->Search({tokens[0]}, 10).ok());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PostingsAppendAndSearch);

}  // namespace

BENCHMARK_MAIN();
