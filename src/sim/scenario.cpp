#include "sim/scenario.hpp"

#include "util/strings.hpp"

namespace bp::sim {

using capture::BookmarkAddEvent;
using capture::CloseEvent;
using capture::DownloadEvent;
using capture::FormSubmitEvent;
using capture::NavigationAction;
using capture::SearchEvent;
using capture::VisitEvent;

uint64_t ScenarioBuilder::Visit(uint64_t tab, std::string url,
                                std::string title,
                                NavigationAction action, uint64_t referrer,
                                uint64_t search_id, uint64_t bookmark_id,
                                uint64_t form_id) {
  VisitEvent visit;
  visit.time = now_;
  visit.tab = tab;
  visit.visit_id = next_id_++;
  visit.url = std::move(url);
  visit.title = std::move(title);
  visit.action = action;
  visit.referrer_visit = referrer;
  visit.search_id = search_id;
  visit.bookmark_id = bookmark_id;
  visit.form_id = form_id;
  events_.push_back(visit);
  return visit.visit_id;
}

uint64_t ScenarioBuilder::Search(uint64_t tab, std::string query,
                                 uint64_t from_visit) {
  SearchEvent search;
  search.time = now_;
  search.tab = tab;
  search.search_id = next_id_++;
  search.query = std::move(query);
  search.from_visit = from_visit;
  events_.push_back(search);
  return search.search_id;
}

uint64_t ScenarioBuilder::BookmarkAdd(std::string url, std::string title,
                                      uint64_t from_visit) {
  BookmarkAddEvent add;
  add.time = now_;
  add.bookmark_id = next_id_++;
  add.url = std::move(url);
  add.title = std::move(title);
  add.from_visit = from_visit;
  events_.push_back(add);
  return add.bookmark_id;
}

uint64_t ScenarioBuilder::Download(std::string url, std::string target,
                                   uint64_t from_visit) {
  DownloadEvent download;
  download.time = now_;
  download.download_id = next_id_++;
  download.url = std::move(url);
  download.target_path = std::move(target);
  download.from_visit = from_visit;
  events_.push_back(download);
  return download.download_id;
}

uint64_t ScenarioBuilder::FormSubmit(std::string summary,
                                     uint64_t from_visit) {
  FormSubmitEvent form;
  form.time = now_;
  form.form_id = next_id_++;
  form.from_visit = from_visit;
  form.field_summary = std::move(summary);
  events_.push_back(form);
  return form.form_id;
}

void ScenarioBuilder::Close(uint64_t tab, uint64_t visit) {
  events_.push_back(CloseEvent{now_, tab, visit});
}

RosebudScenario MakeRosebudScenario(TimeMs start) {
  RosebudScenario scenario;
  ScenarioBuilder b(start);

  // The user searches the web for "rosebud"...
  uint64_t search = b.Search(1, scenario.query);
  b.Wait(util::Seconds(1));
  scenario.results_url = "https://search.example/results?q=rosebud";
  uint64_t results =
      b.Visit(1, scenario.results_url, "rosebud - search results",
              NavigationAction::kSearchResult, 0, search);
  // ... and navigates to a result. Crucially, the film page's own title
  // and URL do not contain the search term.
  b.Wait(util::Seconds(8));
  scenario.target_url = "http://films.example/citizen-kane";
  scenario.target_title = "citizen kane 1941 film";
  scenario.target_visit =
      b.Visit(1, scenario.target_url, scenario.target_title,
              NavigationAction::kLink, results);
  b.Wait(util::Minutes(4));
  b.Close(1, scenario.target_visit);

  scenario.events = std::move(b.events());
  return scenario;
}

GardenerScenario MakeGardenerScenario(int episodes, TimeMs start) {
  GardenerScenario scenario;
  ScenarioBuilder b(start);
  // Any horticulture word from the context pages' titles or URLs is a
  // correct augmentation (the paper's example picks "flower").
  scenario.expected_context_terms = {"flower", "garden", "pruning",
                                     "roses",  "guide",  "beds",
                                     "soil",   "rose",   "care"};
  for (int e = 0; e < episodes; ++e) {
    // The gardener's rosebud searches land on horticulture pages whose
    // titles carry the flower-context vocabulary.
    uint64_t search = b.Search(1, scenario.ambiguous_query);
    b.Wait(util::Seconds(1));
    uint64_t results = b.Visit(
        1, "https://search.example/results?q=rosebud",
        "rosebud - search results", NavigationAction::kSearchResult, 0,
        search);
    b.Wait(util::Seconds(5));
    std::string url = util::StrFormat(
        "http://garden-%d.example/rose-care/p%d", e, e);
    std::string title = util::StrFormat(
        "flower garden pruning roses guide %d", e);
    uint64_t page =
        b.Visit(1, url, title, NavigationAction::kLink, results);
    b.Wait(util::Minutes(3));
    // She often reads a second flower page from there.
    uint64_t follow = b.Visit(
        1, util::StrFormat("http://garden-%d.example/flower-beds", e),
        "flower beds and garden soil", NavigationAction::kLink, page);
    b.Wait(util::Minutes(2));
    b.Close(1, follow);
    b.Wait(util::Hours(20));
  }
  scenario.events = std::move(b.events());
  return scenario;
}

WineScenario MakeWineScenario(int decoys, TimeMs start) {
  WineScenario scenario;
  ScenarioBuilder b(start);

  // Decoy wine pages at unrelated times.
  for (int d = 0; d < decoys; ++d) {
    std::string url =
        util::StrFormat("http://wine-blog.example/notes/%d", d);
    scenario.decoy_wine_urls.push_back(url);
    uint64_t visit = b.Visit(
        1, url, util::StrFormat("wine tasting notes %d", d),
        NavigationAction::kTyped);
    b.Wait(util::Minutes(2));
    b.Close(1, visit);
    b.Wait(util::Hours(7));
  }

  // The episode she remembers: wine page open WHILE booking flights.
  uint64_t flights = b.Visit(2, "http://airline.example/booking",
                             "plane tickets flight booking",
                             NavigationAction::kTyped);
  b.Wait(util::Minutes(1));
  scenario.target_url = "http://vineyard.example/rare-bottle";
  uint64_t wine = b.Visit(1, scenario.target_url,
                          "rare wine bottle vintage",
                          NavigationAction::kTyped);
  b.Wait(util::Minutes(9));  // both open together
  b.Close(1, wine);
  b.Wait(util::Minutes(2));
  b.Close(2, flights);

  // More decoys afterwards.
  b.Wait(util::Hours(30));
  for (int d = 0; d < decoys / 2; ++d) {
    std::string url =
        util::StrFormat("http://wine-shop.example/cellar/%d", d);
    scenario.decoy_wine_urls.push_back(url);
    uint64_t visit = b.Visit(
        1, url, util::StrFormat("wine cellar catalog %d", d),
        NavigationAction::kTyped);
    b.Wait(util::Minutes(3));
    b.Close(1, visit);
    b.Wait(util::Hours(9));
  }

  scenario.events = std::move(b.events());
  return scenario;
}

MalwareScenario MakeMalwareScenario(int portal_visits, TimeMs start) {
  MalwareScenario scenario;
  ScenarioBuilder b(start);
  scenario.portal_url = "http://news-portal.example/front";

  // Build recognizability: the user visits the portal daily.
  uint64_t portal = 0;
  for (int v = 0; v < portal_visits - 1; ++v) {
    portal = b.Visit(1, scenario.portal_url, "daily news portal",
                     NavigationAction::kTyped);
    b.Wait(util::Minutes(5));
    b.Close(1, portal);
    b.Wait(util::Hours(22));
  }

  // The infection chain: portal -> shortener redirect -> unfamiliar blog
  // -> "codec" download.
  portal = b.Visit(1, scenario.portal_url, "daily news portal",
                   NavigationAction::kTyped);
  b.Wait(util::Seconds(30));
  uint64_t shortener =
      b.Visit(1, "http://sh.example/x9k2", "",
              NavigationAction::kLink, portal);
  b.Wait(util::Seconds(1));
  scenario.untrusted_url = "http://free-codecs.example/player";
  uint64_t sketchy = b.Visit(1, scenario.untrusted_url,
                             "free video codec player download",
                             NavigationAction::kRedirect, shortener);
  b.Wait(util::Seconds(20));
  uint64_t installer_page =
      b.Visit(1, "http://free-codecs.example/player/get",
              "download installer here", NavigationAction::kLink, sketchy);
  b.Wait(util::Seconds(10));
  scenario.download_target = "/home/user/Downloads/codec-installer.exe";
  scenario.download_id =
      b.Download("http://free-codecs.example/files/codec-installer.exe",
                 scenario.download_target, installer_page);
  scenario.chain_urls = {scenario.portal_url, "http://sh.example/x9k2",
                         scenario.untrusted_url,
                         "http://free-codecs.example/player/get"};

  // A second download descending from the same untrusted page, days
  // later (for the "find all downloads descending from it" query).
  b.Wait(util::Days(2));
  uint64_t sketchy_again = b.Visit(1, scenario.untrusted_url,
                                   "free video codec player download",
                                   NavigationAction::kTyped);
  b.Wait(util::Seconds(15));
  uint64_t extras = b.Visit(1, "http://free-codecs.example/extras",
                            "bonus packs", NavigationAction::kLink,
                            sketchy_again);
  b.Wait(util::Seconds(5));
  scenario.second_download_id =
      b.Download("http://free-codecs.example/files/bonus-pack.exe",
                 "/home/user/Downloads/bonus-pack.exe", extras);
  b.Close(1, extras);

  scenario.events = std::move(b.events());
  return scenario;
}

}  // namespace bp::sim
