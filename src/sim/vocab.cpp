#include "sim/vocab.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace bp::sim {

using util::Rng;

namespace {

// Pseudo-word generator: alternating consonant/vowel clusters, 2-4
// syllables. Deterministic per RNG stream, collision-free enough that
// duplicates within a topic are simply re-rolled.
const char* const kOnsets[] = {"b",  "br", "c",  "cl", "d",  "dr", "f",
                               "fl", "g",  "gr", "h",  "j",  "k",  "l",
                               "m",  "n",  "p",  "pl", "qu", "r",  "s",
                               "st", "t",  "tr", "v",  "w",  "z"};
const char* const kVowels[] = {"a", "e", "i", "o", "u", "ai", "ea", "ou"};

std::string MakeWord(Rng& rng) {
  const size_t syllables = 2 + rng.Uniform(3);
  std::string word;
  for (size_t s = 0; s < syllables; ++s) {
    word += kOnsets[rng.Uniform(std::size(kOnsets))];
    word += kVowels[rng.Uniform(std::size(kVowels))];
  }
  return word;
}

}  // namespace

Vocabulary Vocabulary::Create(Rng& rng, const VocabConfig& config) {
  BP_REQUIRE(config.topics >= 1);
  BP_REQUIRE(config.shared_fraction >= 0.0 && config.shared_fraction < 1.0);
  Vocabulary vocab;
  vocab.topics_.resize(config.topics);

  // Unique base terms per topic.
  std::unordered_map<std::string, uint32_t> claimed;
  for (uint32_t t = 0; t < config.topics; ++t) {
    Rng topic_rng = rng.Fork(1000 + t);
    auto& terms = vocab.topics_[t];
    while (terms.size() < config.terms_per_topic) {
      std::string word = MakeWord(topic_rng);
      if (claimed.emplace(word, t).second) {
        terms.push_back(word);
      }
    }
  }

  // Ambiguity: pair topic t with topic (t+1) mod n and replace the tail
  // of t's term list with words from its partner's head — those words
  // now genuinely occur in both topics' pages.
  if (config.topics >= 2 && config.shared_fraction > 0.0) {
    const size_t shared =
        std::max<size_t>(1, static_cast<size_t>(config.terms_per_topic *
                                                config.shared_fraction));
    for (uint32_t t = 0; t < config.topics; ++t) {
      uint32_t partner = (t + 1) % config.topics;
      for (size_t i = 0; i < shared; ++i) {
        // Partner's "household" words (low indexes) are the most
        // interesting collisions; skip index 0 to keep each topic's very
        // top term unambiguous.
        const std::string& borrowed = vocab.topics_[partner][1 + i];
        vocab.topics_[t][config.terms_per_topic - 1 - i] = borrowed;
      }
    }
  }

  for (uint32_t t = 0; t < config.topics; ++t) {
    for (const std::string& term : vocab.topics_[t]) {
      auto& list = vocab.term_topics_[term];
      if (std::find(list.begin(), list.end(), t) == list.end()) {
        list.push_back(t);
      }
    }
  }
  for (const auto& [term, topics] : vocab.term_topics_) {
    if (topics.size() > 1) vocab.ambiguous_[term] = topics;
  }
  return vocab;
}

std::vector<uint32_t> Vocabulary::TopicsOf(const std::string& term) const {
  auto it = term_topics_.find(term);
  if (it == term_topics_.end()) return {};
  return it->second;
}

std::vector<std::string> Vocabulary::SampleTerms(Rng& rng, uint32_t topic,
                                                 size_t n) const {
  const auto& terms = topics_.at(topic);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(terms[rng.Zipf(terms.size(), 1.1)]);
  }
  return out;
}

std::string Vocabulary::MakeTitle(Rng& rng, uint32_t topic) const {
  const size_t words = 2 + rng.Uniform(3);
  std::string title;
  for (const std::string& term : SampleTerms(rng, topic, words)) {
    if (!title.empty()) title += ' ';
    title += term;
  }
  return title;
}

}  // namespace bp::sim
