#include "sim/web.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/require.hpp"
#include "util/strings.hpp"

namespace bp::sim {

using util::Rng;

WebGraph WebGraph::Generate(Rng& rng, const WebConfig& config,
                            const Vocabulary& vocab) {
  WebGraph web;
  web.vocab_ = &vocab;
  web.topic_pages_.resize(vocab.topic_count());

  // ---- pages ----
  for (uint32_t topic = 0; topic < vocab.topic_count(); ++topic) {
    Rng topic_rng = rng.Fork(7000 + topic);
    for (uint32_t site = 0; site < config.sites_per_topic; ++site) {
      // Site hostname from the topic's top terms.
      std::string host = util::StrFormat(
          "%s-%u.example",
          vocab.TopicTerms(topic)[site % vocab.TopicTerms(topic).size()]
              .c_str(),
          site);
      for (uint32_t p = 0; p < config.pages_per_site; ++p) {
        SimPage page;
        page.topic = topic;
        page.site = topic * config.sites_per_topic + site;
        page.title = vocab.MakeTitle(topic_rng, topic);
        std::string slug;
        for (char c : page.title) slug += c == ' ' ? '-' : c;
        page.url = util::StrFormat("http://%s/%s/p%u", host.c_str(),
                                   slug.c_str(), p);
        page.content_terms = vocab.SampleTerms(topic_rng, topic, 20);
        page.popularity = 1.0 / (1.0 + topic_rng.Exponential(0.5));
        if (topic_rng.Bernoulli(config.download_page_fraction)) {
          page.has_download = true;
          page.download_url =
              util::StrFormat("http://%s/files/%s-v%u.zip", host.c_str(),
                              page.content_terms[0].c_str(),
                              (unsigned)topic_rng.Uniform(9) + 1);
        }
        if (topic_rng.Bernoulli(config.form_page_fraction)) {
          page.has_form = true;
        }
        if (topic_rng.Bernoulli(config.embed_fraction)) {
          size_t n = 1 + topic_rng.Uniform(3);
          for (size_t e = 0; e < n; ++e) {
            page.embed_urls.push_back(util::StrFormat(
                "http://cdn-%u.example/img/%s-%zu.png", topic,
                page.content_terms[e % page.content_terms.size()].c_str(),
                e));
          }
        }
        PageIndex index = static_cast<PageIndex>(web.pages_.size());
        web.pages_.push_back(std::move(page));
        web.topic_pages_[topic].push_back(index);
      }
    }
  }

  // ---- links ----
  for (PageIndex i = 0; i < web.pages_.size(); ++i) {
    SimPage& page = web.pages_[i];
    Rng link_rng = rng.Fork(90000 + i);
    const auto& same_topic = web.topic_pages_[page.topic];
    const uint32_t n_links =
        config.min_links +
        static_cast<uint32_t>(
            link_rng.Uniform(config.max_links - config.min_links + 1));
    std::unordered_set<PageIndex> chosen;
    for (uint32_t l = 0; l < n_links; ++l) {
      PageIndex target;
      if (link_rng.Bernoulli(config.cross_topic_link_prob)) {
        target = static_cast<PageIndex>(
            link_rng.Uniform(web.pages_.size()));
      } else if (link_rng.Bernoulli(config.cross_site_link_prob)) {
        target = same_topic[link_rng.Uniform(same_topic.size())];
      } else {
        // Same site: site pages are contiguous.
        PageIndex base = i - (i % config.pages_per_site);
        target = base + static_cast<PageIndex>(
                            link_rng.Uniform(config.pages_per_site));
      }
      if (target != i && chosen.insert(target).second) {
        page.links.push_back(target);
      }
    }
  }

  // ---- redirects ----
  // A fraction of pages becomes pure redirectors in front of a same-topic
  // target (tracking/shortener hops).
  for (uint32_t topic = 0; topic < vocab.topic_count(); ++topic) {
    Rng redirect_rng = rng.Fork(130000 + topic);
    const auto& pages = web.topic_pages_[topic];
    for (PageIndex index : pages) {
      if (!redirect_rng.Bernoulli(config.redirect_page_fraction)) continue;
      SimPage& page = web.pages_[index];
      PageIndex target = pages[redirect_rng.Uniform(pages.size())];
      if (target == index) continue;
      page.redirect_target = target;
      page.has_download = false;
      page.has_form = false;
      page.embed_urls.clear();
      page.url = util::StrFormat("http://go-%u.example/r/%u", topic, index);
      page.title = "";  // redirectors have no user-visible title
    }
  }

  // ---- engine index ----
  for (PageIndex i = 0; i < web.pages_.size(); ++i) {
    const SimPage& page = web.pages_[i];
    if (page.redirect_target.has_value()) continue;  // engine skips them
    std::unordered_set<std::string> seen;
    for (const std::string& term : page.content_terms) {
      if (seen.insert(term).second) web.term_index_[term].push_back(i);
    }
  }
  for (PageIndex i = 0; i < web.pages_.size(); ++i) {
    web.by_url_[web.pages_[i].url] = i;
  }
  return web;
}

std::optional<PageIndex> WebGraph::FindByUrl(const std::string& url) const {
  auto it = by_url_.find(url);
  if (it == by_url_.end()) return std::nullopt;
  return it->second;
}

std::vector<SearchResult> WebGraph::Search(
    const std::vector<std::string>& query_terms, size_t k) const {
  std::unordered_map<PageIndex, double> scores;
  for (const std::string& term : query_terms) {
    auto it = term_index_.find(term);
    if (it == term_index_.end()) continue;
    // Fewer matching pages -> more specific term -> higher weight.
    const double idf = 1.0 / (1.0 + std::log(1.0 + it->second.size()));
    for (PageIndex p : it->second) {
      const SimPage& page = pages_[p];
      double title_bonus =
          page.title.find(term) != std::string::npos ? 3.0 : 1.0;
      scores[p] += idf * title_bonus * page.popularity;
    }
  }
  std::vector<SearchResult> ranked;
  ranked.reserve(scores.size());
  for (const auto& [page, score] : scores) {
    ranked.push_back(SearchResult{page, score});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.page < b.page;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::string WebGraph::ResultsUrl(const std::string& query) {
  std::string escaped;
  for (char c : query) escaped += c == ' ' ? '+' : c;
  return "https://search.example/results?q=" + escaped;
}

PageIndex WebGraph::SamplePageInTopic(Rng& rng, uint32_t topic) const {
  const auto& pages = topic_pages_.at(topic);
  BP_REQUIRE(!pages.empty());
  // Zipf over the topic's pages: users revisit a few favorites.
  return pages[rng.Zipf(pages.size(), 1.2)];
}

}  // namespace bp::sim
