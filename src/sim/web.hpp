// Synthetic web: sites, pages, links, redirects, embedded content,
// downloadable resources, and a search engine.
//
// This stands in for the real web the paper's author browsed for 79
// days. It reproduces the structural features the experiments need:
// topic-clustered link neighborhoods, redirect hops in front of pages,
// embedded content fetched alongside top-level pages, download links at
// the end of referral chains, and an engine whose result pages link to
// content pages (the "rosebud -> Citizen Kane" shape).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/vocab.hpp"
#include "util/rng.hpp"

namespace bp::sim {

using PageIndex = uint32_t;
constexpr PageIndex kNoPageIndex = UINT32_MAX;

struct SimPage {
  std::string url;
  std::string title;
  uint32_t topic = 0;
  uint32_t site = 0;
  std::vector<std::string> content_terms;  // body text (for the engine)
  std::vector<PageIndex> links;            // outgoing hyperlinks
  // When set, visiting this page immediately redirects to `target`.
  std::optional<PageIndex> redirect_target;
  std::vector<std::string> embed_urls;  // images/iframes loaded with it
  bool has_download = false;
  std::string download_url;  // resource URL when has_download
  bool has_form = false;     // page with a submittable form
  double popularity = 1.0;   // global engine-side prior
};

struct WebConfig {
  uint32_t sites_per_topic = 6;
  uint32_t pages_per_site = 40;
  double redirect_page_fraction = 0.06;
  double download_page_fraction = 0.05;
  double form_page_fraction = 0.05;
  double embed_fraction = 0.3;  // pages that pull embedded content
  uint32_t min_links = 3;
  uint32_t max_links = 8;
  double cross_site_link_prob = 0.15;  // link leaves the site
  double cross_topic_link_prob = 0.05; // ... and the topic
};

struct SearchResult {
  PageIndex page = kNoPageIndex;
  double score = 0.0;
};

class WebGraph {
 public:
  static WebGraph Generate(util::Rng& rng, const WebConfig& config,
                           const Vocabulary& vocab);

  const SimPage& page(PageIndex index) const { return pages_.at(index); }
  size_t page_count() const { return pages_.size(); }
  const Vocabulary& vocab() const { return *vocab_; }

  std::optional<PageIndex> FindByUrl(const std::string& url) const;

  // The search engine: ranks pages by query-term matches in title (x3)
  // and content, scaled by global popularity. Deterministic.
  std::vector<SearchResult> Search(
      const std::vector<std::string>& query_terms, size_t k) const;

  // URL of the engine's results page for a query string.
  static std::string ResultsUrl(const std::string& query);

  // A page the engine would rank well for `topic` (used by the user
  // model to pick navigation targets).
  PageIndex SamplePageInTopic(util::Rng& rng, uint32_t topic) const;

  // Pages of one topic (indexes).
  const std::vector<PageIndex>& TopicPages(uint32_t topic) const {
    return topic_pages_.at(topic);
  }

 private:
  std::vector<SimPage> pages_;
  std::vector<std::vector<PageIndex>> topic_pages_;
  std::unordered_map<std::string, PageIndex> by_url_;
  // term -> pages containing it (engine's index).
  std::unordered_map<std::string, std::vector<PageIndex>> term_index_;
  const Vocabulary* vocab_ = nullptr;
};

}  // namespace bp::sim
