// Topic vocabulary for the synthetic web.
//
// Terms are pronounceable pseudo-words generated deterministically per
// topic. A configurable fraction of terms is *shared* between topic
// pairs — ambiguous words like the paper's "rosebud", which names both a
// sled (movies) and a flower (gardening). The personalized-web-search
// experiment (E5) needs such collisions to exist by construction.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace bp::sim {

struct VocabConfig {
  uint32_t topics = 8;
  uint32_t terms_per_topic = 120;
  // Fraction of each topic's terms drawn from a global ambiguous pool
  // shared with one partner topic.
  double shared_fraction = 0.05;
};

class Vocabulary {
 public:
  static Vocabulary Create(util::Rng& rng, const VocabConfig& config);

  uint32_t topic_count() const { return static_cast<uint32_t>(topics_.size()); }
  const std::vector<std::string>& TopicTerms(uint32_t topic) const {
    return topics_.at(topic);
  }

  // Terms appearing in more than one topic, with the topics they span.
  const std::unordered_map<std::string, std::vector<uint32_t>>&
  ambiguous_terms() const {
    return ambiguous_;
  }

  // All topics a term belongs to (empty if unknown).
  std::vector<uint32_t> TopicsOf(const std::string& term) const;

  // Draws n terms from a topic (Zipf-weighted: low-index terms are the
  // topic's "household words").
  std::vector<std::string> SampleTerms(util::Rng& rng, uint32_t topic,
                                       size_t n) const;

  // A human-ish page title for a topic: 2-4 sampled terms.
  std::string MakeTitle(util::Rng& rng, uint32_t topic) const;

 private:
  std::vector<std::vector<std::string>> topics_;
  std::unordered_map<std::string, std::vector<uint32_t>> term_topics_;
  std::unordered_map<std::string, std::vector<uint32_t>> ambiguous_;
};

}  // namespace bp::sim
