// BrowserSim: a tabbed browser driven by a stochastic user model,
// emitting the BrowserEvent stream the recorders ingest.
//
// The user has topical interests; sessions arrive over simulated days;
// within a session the user searches, clicks results and links, types
// URLs, opens tabs, bookmarks, fills forms, and downloads files. Redirect
// hops and embedded content fire automatically on navigation, exactly the
// "not generated as the result of a user action" edges of section 3.2.
//
// Everything is deterministic in the seed. Ground truth for the quality
// experiments (which page a search "meant", the true referral chain of a
// download) is recorded as episodes alongside the stream.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "capture/events.hpp"
#include "sim/web.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace bp::sim {

using capture::BrowserEvent;
using util::TimeMs;

struct UserConfig {
  uint64_t seed = 42;
  // Defaults are calibrated so 79 days yields >25,000 provenance nodes —
  // the scale the paper reports for one author's history.
  uint32_t days = 79;
  double sessions_per_day = 4.5;
  double actions_per_session_mean = 32.0;
  double dwell_seconds_mean = 25.0;

  // Interest concentration: probability mass on the user's top topic;
  // the rest spreads geometrically over other topics.
  double primary_topic_share = 0.45;

  // Per-action probabilities (renormalized by availability).
  double p_follow_link = 0.42;
  double p_search = 0.16;
  double p_typed_url = 0.10;
  double p_new_tab_link = 0.08;
  double p_switch_tab = 0.08;
  double p_bookmark_add = 0.04;
  double p_bookmark_click = 0.05;
  double p_download = 0.04;
  double p_form_submit = 0.03;

  double p_click_search_result = 0.9;  // click some result after a search
  uint32_t max_open_tabs = 6;
  // Fraction of tabs the user bothers to close at session end (the rest
  // linger "open", as real users do).
  double session_end_close_fraction = 0.7;
};

// Ground-truth episode records for the quality benches.
struct SearchEpisode {
  uint64_t search_id = 0;
  std::string query;
  uint64_t results_visit = 0;
  uint64_t clicked_visit = 0;     // 0 if no click
  std::string clicked_url;        // the page the user "meant"
  uint32_t topic = 0;
};

struct DownloadEpisode {
  uint64_t download_id = 0;
  std::string resource_url;
  std::vector<std::string> referral_chain_urls;  // root ... trigger page
  std::vector<uint64_t> referral_chain_visits;
};

struct SimOutput {
  std::vector<BrowserEvent> events;
  std::vector<SearchEpisode> searches;
  std::vector<DownloadEpisode> downloads;
  uint32_t primary_topic = 0;
  // Visits that were open simultaneously for a while (tab id -> periods
  // are recoverable from the event stream; this counts them).
  uint64_t total_visits = 0;
};

class BrowserSim {
 public:
  BrowserSim(const WebGraph& web, UserConfig config);

  // Runs the whole simulation and returns the stream + ground truth.
  SimOutput Run();

 private:
  struct Tab {
    uint64_t id = 0;
    uint64_t current_visit = 0;          // stream visit id
    PageIndex current_page = kNoPageIndex;
    std::vector<uint64_t> chain_visits;  // session referral chain
    std::vector<std::string> chain_urls;
  };

  struct Bookmark {
    uint64_t id = 0;
    PageIndex page = kNoPageIndex;
  };

  // Emits a visit (resolving redirects and firing embeds); returns the
  // stream visit id of the finally displayed page.
  uint64_t EmitVisit(Tab& tab, PageIndex page,
                     capture::NavigationAction action, uint64_t referrer,
                     uint64_t search_id, uint64_t bookmark_id,
                     uint64_t form_id);
  void EmitClose(Tab& tab);
  void SessionActions(TimeMs session_start);
  void DoSearch(Tab& tab);
  uint32_t SampleTopic();
  TimeMs Dwell();

  const WebGraph& web_;
  UserConfig config_;
  util::Rng rng_;
  SimOutput out_;

  TimeMs now_ = 0;
  uint64_t next_visit_id_ = 1;
  uint64_t next_search_id_ = 1;
  uint64_t next_bookmark_id_ = 1;
  uint64_t next_download_id_ = 1;
  uint64_t next_form_id_ = 1;
  uint64_t next_tab_id_ = 1;

  std::vector<Tab> tabs_;
  size_t active_tab_ = 0;
  std::vector<Bookmark> bookmarks_;
  std::vector<double> topic_weights_;
};

}  // namespace bp::sim
