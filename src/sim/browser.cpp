#include "sim/browser.hpp"

#include <algorithm>

#include "text/tokenizer.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace bp::sim {

using capture::BookmarkAddEvent;
using capture::CloseEvent;
using capture::DownloadEvent;
using capture::FormSubmitEvent;
using capture::NavigationAction;
using capture::SearchEvent;
using capture::VisitEvent;
using util::Rng;

BrowserSim::BrowserSim(const WebGraph& web, UserConfig config)
    : web_(web), config_(config), rng_(config.seed) {
  const uint32_t topics = web_.vocab().topic_count();
  out_.primary_topic = static_cast<uint32_t>(rng_.Uniform(topics));
  topic_weights_.assign(topics, 0.0);
  double rest = 1.0 - config_.primary_topic_share;
  for (uint32_t t = 0; t < topics; ++t) {
    if (t == out_.primary_topic) {
      topic_weights_[t] = config_.primary_topic_share;
    } else {
      topic_weights_[t] = rest / (topics - 1);
    }
  }
}

uint32_t BrowserSim::SampleTopic() {
  return static_cast<uint32_t>(rng_.PickWeighted(topic_weights_));
}

TimeMs BrowserSim::Dwell() {
  return static_cast<TimeMs>(
             rng_.Exponential(1.0 / config_.dwell_seconds_mean) * 1000.0) +
         500;
}

uint64_t BrowserSim::EmitVisit(Tab& tab, PageIndex page_index,
                               NavigationAction action, uint64_t referrer,
                               uint64_t search_id, uint64_t bookmark_id,
                               uint64_t form_id) {
  // Close the view previously displayed in this tab (navigation away).
  if (tab.current_visit != 0) {
    out_.events.push_back(
        CloseEvent{now_, tab.id, tab.current_visit});
  }

  // Follow redirect hops (bounded: synthetic redirectors never chain more
  // than a few).
  PageIndex current = page_index;
  uint64_t prev = referrer;
  NavigationAction current_action = action;
  for (int hop = 0; hop < 4; ++hop) {
    const SimPage& page = web_.page(current);
    VisitEvent visit;
    visit.time = now_;
    visit.tab = tab.id;
    visit.visit_id = next_visit_id_++;
    visit.url = page.url;
    visit.title = page.title;
    visit.action = current_action;
    visit.referrer_visit = prev;
    visit.search_id = search_id;
    visit.bookmark_id = bookmark_id;
    visit.form_id = form_id;
    out_.events.push_back(visit);
    ++out_.total_visits;
    prev = visit.visit_id;

    if (!page.redirect_target.has_value()) {
      // Embedded content loads with the page (hidden visits).
      for (const std::string& embed : page.embed_urls) {
        VisitEvent sub;
        sub.time = now_;
        sub.tab = tab.id;
        sub.visit_id = next_visit_id_++;
        sub.url = embed;
        sub.title = "";
        sub.action = NavigationAction::kEmbed;
        sub.referrer_visit = prev;
        out_.events.push_back(sub);
        ++out_.total_visits;
        // Embeds close immediately with their own load.
        out_.events.push_back(CloseEvent{now_, tab.id, sub.visit_id});
      }
      tab.current_visit = prev;
      tab.current_page = current;
      tab.chain_visits.push_back(prev);
      tab.chain_urls.push_back(page.url);
      return prev;
    }
    current = *page.redirect_target;
    current_action = NavigationAction::kRedirect;
    search_id = bookmark_id = form_id = 0;
    now_ += 120;  // redirect round-trip
  }
  // Redirect loop fallback: land on the last page reached.
  tab.current_visit = prev;
  tab.current_page = current;
  return prev;
}

void BrowserSim::EmitClose(Tab& tab) {
  if (tab.current_visit != 0) {
    out_.events.push_back(CloseEvent{now_, tab.id, tab.current_visit});
    tab.current_visit = 0;
  }
}

void BrowserSim::DoSearch(Tab& tab) {
  const uint32_t topic = SampleTopic();
  // Query: 1-2 topic terms.
  std::vector<std::string> terms =
      web_.vocab().SampleTerms(rng_, topic, 1 + rng_.Uniform(2));
  std::string query = util::Join(terms, " ");

  SearchEvent search;
  search.time = now_;
  search.tab = tab.id;
  search.search_id = next_search_id_++;
  search.query = query;
  search.from_visit = tab.current_visit;
  out_.events.push_back(search);

  // Results page visit.
  auto results = web_.Search(terms, 10);
  now_ += 300;
  VisitEvent results_visit;
  results_visit.time = now_;
  results_visit.tab = tab.id;
  results_visit.visit_id = next_visit_id_++;
  results_visit.url = WebGraph::ResultsUrl(query);
  results_visit.title = query + " - search results";
  results_visit.action = NavigationAction::kSearchResult;
  results_visit.referrer_visit = tab.current_visit;
  results_visit.search_id = search.search_id;
  if (tab.current_visit != 0) {
    out_.events.push_back(CloseEvent{now_, tab.id, tab.current_visit});
  }
  out_.events.push_back(results_visit);
  ++out_.total_visits;
  tab.current_visit = results_visit.visit_id;
  tab.current_page = kNoPageIndex;
  tab.chain_visits.push_back(results_visit.visit_id);
  tab.chain_urls.push_back(results_visit.url);

  SearchEpisode episode;
  episode.search_id = search.search_id;
  episode.query = query;
  episode.results_visit = results_visit.visit_id;
  episode.topic = topic;

  // Click a result (usually).
  if (!results.empty() && rng_.Bernoulli(config_.p_click_search_result)) {
    // Users prefer top results; among same-topic results even more so.
    size_t pick = rng_.Zipf(results.size(), 1.3);
    PageIndex target = results[pick].page;
    now_ += Dwell();
    uint64_t clicked =
        EmitVisit(tab, target, NavigationAction::kLink,
                  results_visit.visit_id, 0, 0, 0);
    episode.clicked_visit = clicked;
    episode.clicked_url = web_.page(target).url;
  }
  out_.searches.push_back(std::move(episode));
}

void BrowserSim::SessionActions(TimeMs session_start) {
  now_ = session_start;

  // Session begins in a fresh tab via search, typed URL, or bookmark.
  tabs_.push_back(Tab{next_tab_id_++, 0, kNoPageIndex, {}, {}});
  active_tab_ = tabs_.size() - 1;
  {
    Tab& tab = tabs_[active_tab_];
    double roll = rng_.UniformReal();
    if (!bookmarks_.empty() && roll < 0.25) {
      const Bookmark& bm = bookmarks_[rng_.Uniform(bookmarks_.size())];
      EmitVisit(tab, bm.page, NavigationAction::kBookmark, 0, 0, bm.id, 0);
    } else if (roll < 0.55) {
      EmitVisit(tab, web_.SamplePageInTopic(rng_, SampleTopic()),
                NavigationAction::kTyped, 0, 0, 0, 0);
    } else {
      DoSearch(tab);
    }
  }

  const int actions =
      1 + rng_.Poisson(config_.actions_per_session_mean);
  for (int a = 0; a < actions; ++a) {
    now_ += Dwell();
    Tab& tab = tabs_[active_tab_];
    const SimPage* page =
        tab.current_page == kNoPageIndex ? nullptr : &web_.page(tab.current_page);

    // Build the availability-weighted action distribution.
    enum Action {
      kFollow,
      kSearch,
      kTyped,
      kNewTab,
      kSwitchTab,
      kBookmarkAdd,
      kBookmarkClick,
      kDownload,
      kForm,
    };
    double weights[] = {
        (page != nullptr && !page->links.empty()) ? config_.p_follow_link : 0,
        config_.p_search,
        config_.p_typed_url,
        (page != nullptr && !page->links.empty() &&
         tabs_.size() < config_.max_open_tabs)
            ? config_.p_new_tab_link
            : 0,
        tabs_.size() > 1 ? config_.p_switch_tab : 0,
        (page != nullptr) ? config_.p_bookmark_add : 0,
        !bookmarks_.empty() ? config_.p_bookmark_click : 0,
        (page != nullptr && page->has_download) ? config_.p_download * 8
                                                : 0,
        (page != nullptr && page->has_form) ? config_.p_form_submit * 6 : 0,
    };
    switch (static_cast<Action>(rng_.PickWeighted(weights))) {
      case kFollow: {
        PageIndex target = page->links[rng_.Uniform(page->links.size())];
        EmitVisit(tab, target, NavigationAction::kLink, tab.current_visit,
                  0, 0, 0);
        break;
      }
      case kSearch:
        DoSearch(tab);
        break;
      case kTyped: {
        // Typed navigation: prior page relationship exists (same tab)
        // and IS reported in the stream; Places will drop it.
        EmitVisit(tab, web_.SamplePageInTopic(rng_, SampleTopic()),
                  NavigationAction::kTyped, tab.current_visit, 0, 0, 0);
        break;
      }
      case kNewTab: {
        PageIndex target = page->links[rng_.Uniform(page->links.size())];
        uint64_t opener = tab.current_visit;
        tabs_.push_back(Tab{next_tab_id_++, 0, kNoPageIndex, {}, {}});
        active_tab_ = tabs_.size() - 1;
        EmitVisit(tabs_[active_tab_], target, NavigationAction::kNewTab,
                  opener, 0, 0, 0);
        break;
      }
      case kSwitchTab:
        active_tab_ = rng_.Uniform(tabs_.size());
        break;
      case kBookmarkAdd: {
        BookmarkAddEvent add;
        add.time = now_;
        add.bookmark_id = next_bookmark_id_++;
        add.url = page->url;
        add.title = page->title;
        add.from_visit = tab.current_visit;
        out_.events.push_back(add);
        bookmarks_.push_back(Bookmark{add.bookmark_id, tab.current_page});
        break;
      }
      case kBookmarkClick: {
        const Bookmark& bm = bookmarks_[rng_.Uniform(bookmarks_.size())];
        EmitVisit(tab, bm.page, NavigationAction::kBookmark, 0, 0, bm.id,
                  0);
        break;
      }
      case kDownload: {
        DownloadEvent dl;
        dl.time = now_;
        dl.download_id = next_download_id_++;
        dl.url = page->download_url;
        dl.target_path = "/home/user/Downloads/" +
                         page->download_url.substr(
                             page->download_url.rfind('/') + 1);
        dl.from_visit = tab.current_visit;
        out_.events.push_back(dl);

        DownloadEpisode episode;
        episode.download_id = dl.download_id;
        episode.resource_url = dl.url;
        episode.referral_chain_urls = tab.chain_urls;
        episode.referral_chain_visits = tab.chain_visits;
        out_.downloads.push_back(std::move(episode));
        break;
      }
      case kForm: {
        FormSubmitEvent form;
        form.time = now_;
        form.form_id = next_form_id_++;
        form.from_visit = tab.current_visit;
        form.field_summary = util::StrFormat(
            "%s=%s", page->content_terms[0].c_str(),
            web_.vocab().SampleTerms(rng_, page->topic, 1)[0].c_str());
        out_.events.push_back(form);
        // The form produces a same-site result page.
        PageIndex target =
            page->links.empty()
                ? tab.current_page
                : page->links[rng_.Uniform(page->links.size())];
        now_ += 400;
        EmitVisit(tab, target, NavigationAction::kFormResult,
                  tab.current_visit, 0, 0, form.form_id);
        break;
      }
    }
  }

  // Session end: close most tabs.
  for (size_t t = tabs_.size(); t-- > 0;) {
    if (rng_.Bernoulli(config_.session_end_close_fraction)) {
      EmitClose(tabs_[t]);
      tabs_.erase(tabs_.begin() + static_cast<long>(t));
    } else {
      // Keep the tab but forget its chain across sessions.
      tabs_[t].chain_visits.clear();
      tabs_[t].chain_urls.clear();
    }
  }
  if (tabs_.size() > config_.max_open_tabs) tabs_.resize(config_.max_open_tabs);
  active_tab_ = tabs_.empty() ? 0 : tabs_.size() - 1;
}

SimOutput BrowserSim::Run() {
  for (uint32_t day = 0; day < config_.days; ++day) {
    const int sessions = rng_.Poisson(config_.sessions_per_day);
    TimeMs day_start = util::Days(day) + util::Hours(8);
    TimeMs cursor = day_start;
    for (int s = 0; s < sessions; ++s) {
      cursor += static_cast<TimeMs>(
          rng_.Exponential(1.0 / 3.0) * util::kMsPerHour);
      SessionActions(cursor);
      cursor = std::max(cursor, now_) + util::Minutes(5);
    }
  }
  // Events are produced in time order by construction; enforce it anyway
  // (cheap stable sort) so consumers can rely on monotonic time.
  std::stable_sort(out_.events.begin(), out_.events.end(),
                   [](const BrowserEvent& a, const BrowserEvent& b) {
                     return capture::EventTime(a) < capture::EventTime(b);
                   });
  return std::move(out_);
}

}  // namespace bp::sim
