// Planted scenarios: hand-constructed event streams reproducing the four
// use-case narratives of Section 2 with exact ground truth. The quality
// benches run them embedded in realistic simulator noise; the integration
// tests run them alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capture/events.hpp"
#include "util/time.hpp"

namespace bp::sim {

using capture::BrowserEvent;
using util::TimeMs;

// Low-level helper for scripting event streams by hand.
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(TimeMs start = util::Days(1),
                           uint64_t first_id = 1000000)
      : now_(start), next_id_(first_id) {}

  // Advances the clock.
  ScenarioBuilder& Wait(TimeMs delta) {
    now_ += delta;
    return *this;
  }
  TimeMs now() const { return now_; }

  // Emitters return the stream id they assigned.
  uint64_t Visit(uint64_t tab, std::string url, std::string title,
                 capture::NavigationAction action, uint64_t referrer = 0,
                 uint64_t search_id = 0, uint64_t bookmark_id = 0,
                 uint64_t form_id = 0);
  uint64_t Search(uint64_t tab, std::string query, uint64_t from_visit = 0);
  uint64_t BookmarkAdd(std::string url, std::string title,
                       uint64_t from_visit);
  uint64_t Download(std::string url, std::string target,
                    uint64_t from_visit);
  uint64_t FormSubmit(std::string summary, uint64_t from_visit);
  void Close(uint64_t tab, uint64_t visit);

  std::vector<BrowserEvent>& events() { return events_; }

 private:
  TimeMs now_;
  uint64_t next_id_;
  std::vector<BrowserEvent> events_;
};

// --- Use case 2.1: contextual history search -------------------------
// Searches "rosebud", clicks through the results page to the Citizen
// Kane article (whose own text does NOT contain "rosebud"). target_url
// is what a provenance-aware history search for "rosebud" must find.
struct RosebudScenario {
  std::vector<BrowserEvent> events;
  std::string query = "rosebud";
  std::string results_url;
  std::string target_url;   // the Citizen Kane page
  std::string target_title;
  uint64_t target_visit = 0;
};
RosebudScenario MakeRosebudScenario(TimeMs start = util::Days(1));

// --- Use case 2.2: personalizing web search ---------------------------
// A gardener's history: searches that pair "rosebud" with flower pages.
// A provenance-aware browser should learn to augment the ambiguous query
// "rosebud" with "flower"-context terms.
struct GardenerScenario {
  std::vector<BrowserEvent> events;
  std::string ambiguous_query = "rosebud";
  // Terms that occur on the pages the gardener reached via rosebud
  // searches; a good augmentation picks one of these.
  std::vector<std::string> expected_context_terms;
};
GardenerScenario MakeGardenerScenario(int episodes = 4,
                                      TimeMs start = util::Days(1));

// --- Use case 2.3: time-contextual history search ---------------------
// The wine page seen while booking plane tickets, plus decoy wine pages
// at other times.
struct WineScenario {
  std::vector<BrowserEvent> events;
  std::string wine_query = "wine";
  std::string context_query = "plane tickets";
  std::string target_url;  // the wine page co-open with plane tickets
  std::vector<std::string> decoy_wine_urls;
};
WineScenario MakeWineScenario(int decoys = 6, TimeMs start = util::Days(1));

// --- Use case 2.4: download lineage ------------------------------------
// A familiar portal (visited many times) leads through a redirect and an
// unfamiliar page to a malicious download; a second download descends
// from the same untrusted page.
struct MalwareScenario {
  std::vector<BrowserEvent> events;
  std::string portal_url;     // the recognizable ancestor
  std::string untrusted_url;  // the page to query descendants of
  std::string download_target;
  uint64_t download_id = 0;
  uint64_t second_download_id = 0;
  std::vector<std::string> chain_urls;  // portal ... trigger
};
MalwareScenario MakeMalwareScenario(int portal_visits = 8,
                                    TimeMs start = util::Days(1));

}  // namespace bp::sim
