#include "text/tokenizer.hpp"

#include <array>
#include <unordered_set>

namespace bp::text {

namespace {

const std::unordered_set<std::string_view>& StopwordSet() {
  static const auto* kSet = new std::unordered_set<std::string_view>{
      "a",    "an",   "and",  "are",  "as",   "at",    "be",   "by",
      "for",  "from", "has",  "he",   "in",   "is",    "it",   "its",
      "of",   "on",   "or",   "that", "the",  "to",    "was",  "were",
      "will", "with", "this", "but",  "they", "have",  "had",  "what",
      "when", "where",
      // URL plumbing that would otherwise dominate every document:
      "http", "https", "www", "com",  "org",  "net",   "html", "htm",
      "php",  "index", "id",  "page"};
  return *kSet;
}

}  // namespace

bool IsStopword(std::string_view word) {
  return StopwordSet().count(word) > 0;
}

std::vector<std::string> Tokenize(std::string_view input) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (current.size() >= 2 && !IsStopword(current)) {
      tokens.push_back(current);
    }
    current.clear();
  };
  for (char c : input) {
    if (c >= 'a' && c <= 'z') {
      current.push_back(c);
    } else if (c >= 'A' && c <= 'Z') {
      current.push_back(static_cast<char>(c - 'A' + 'a'));
    } else if (c >= '0' && c <= '9') {
      current.push_back(c);
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::unordered_map<std::string, uint32_t> TermCounts(
    std::string_view input) {
  std::unordered_map<std::string, uint32_t> counts;
  for (std::string& token : Tokenize(input)) {
    ++counts[std::move(token)];
  }
  return counts;
}

}  // namespace bp::text
