// Tokenization for history text: page titles, URLs, search queries.
//
// Lowercases, splits on any non-alphanumeric byte (which also breaks
// URLs into their meaningful components: host words, path words, query
// terms), drops one-character tokens and a small stopword list. ASCII
// only by design: the simulator emits ASCII and the storage layer treats
// terms as opaque bytes, so a full Unicode pipeline would add nothing to
// the experiments.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bp::text {

// True for words too common to carry signal ("the", "and", "http", ...).
bool IsStopword(std::string_view word);

// Tokenize free text or a URL into normalized terms (order preserved,
// duplicates kept — term frequency matters to scoring).
std::vector<std::string> Tokenize(std::string_view input);

// Tokenize and count: term -> occurrences.
std::unordered_map<std::string, uint32_t> TermCounts(std::string_view input);

}  // namespace bp::text
