// Persistent inverted index with BM25 / TF-IDF ranking.
//
// This is the textual history-search baseline ("a browser with textual
// history search will return the web search page for rosebud, because
// that page contains the search term in both its title and URL") that
// the provenance-aware algorithms rerank and augment.
//
// Layout (namespaced trees in the shared Db):
//   <ns>.terms : term -> postings blob (varint count, then per entry:
//                delta-varint doc id, varint term frequency)
//   <ns>.docs  : big-endian doc id -> varint token count
//   <ns>.meta  : "stats" -> (varint total docs, varint total tokens)
//
// Writes buffer in memory and merge into the trees on Flush() (documents
// arrive one page visit at a time, but terms repeat heavily; buffering
// turns O(tokens) read-modify-writes into one merge per distinct term).
// Queries flush implicitly. Documents are append-only, matching browser
// history; there is no document deletion.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/db.hpp"
#include "util/status.hpp"

namespace bp::text {

using DocId = uint64_t;

struct Posting {
  DocId doc = 0;
  uint32_t tf = 0;
};

struct ScoredDoc {
  DocId doc = 0;
  double score = 0.0;
};

struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

class InvertedIndex {
 public:
  // Opens (creating if needed) the index named `ns` inside `db`.
  static util::Result<std::unique_ptr<InvertedIndex>> Open(storage::Db& db,
                                                           std::string ns);

  // A read-only handle on the same index whose postings, document
  // lengths, and BM25 corpus stats all resolve through `snap` — the
  // snapshot-isolated search path. Documents buffered but not yet
  // Flush()ed at snapshot time are invisible (flush before snapshotting
  // to make them searchable); AddDocument/Flush on the returned handle
  // are contract violations. `snap` must outlive the handle.
  util::Result<std::unique_ptr<InvertedIndex>> AtSnapshot(
      const storage::Snapshot& snap) const;
  bool snapshot_bound() const { return bound_trees_.bound(); }

  // Indexes a document's tokens (use text::Tokenize). A document id must
  // be added at most once; re-adding merges term frequencies.
  util::Status AddDocument(DocId doc, const std::vector<std::string>& tokens);

  // Merges buffered postings into the persistent trees.
  util::Status Flush();

  // Re-reads the persisted corpus stats, discarding the cached copies.
  // For callers whose surrounding transaction rolled back after a
  // Flush: the trees reverted, so the cached totals must too.
  util::Status ReloadStats() { return LoadStats(); }

  // BM25-ranked disjunctive (OR) search over the query tokens. Returns up
  // to `k` documents, highest score first (ties by doc id).
  util::Result<std::vector<ScoredDoc>> Search(
      const std::vector<std::string>& query_tokens, size_t k);

  // Raw postings access (flushes first). `fn` returns false to stop.
  util::Status ForEachPosting(std::string_view term,
                              const std::function<bool(const Posting&)>& fn);

  // Number of documents containing `term` (flushes first).
  util::Result<uint64_t> DocumentFrequency(std::string_view term);

  util::Result<uint64_t> DocumentCount();

  // Inverse document frequency under BM25+1 smoothing; 0 for unseen terms.
  util::Result<double> Idf(std::string_view term);

  Bm25Params& params() { return params_; }

 private:
  InvertedIndex(storage::Db& db, std::string ns)
      : db_(db), ns_(std::move(ns)) {}

  util::Status LoadStats();
  util::Status SaveStats();

  storage::Db& db_;
  std::string ns_;
  storage::BTree* terms_tree_ = nullptr;
  storage::BTree* docs_tree_ = nullptr;
  storage::BTree* meta_tree_ = nullptr;
  // Snapshot-bound handles (AtSnapshot): the tree pointers above point
  // into this owned storage instead of the Db's live handles.
  storage::BoundTrees bound_trees_;

  // Buffered, not yet flushed: term -> postings (sorted by doc at flush).
  std::map<std::string, std::vector<Posting>, std::less<>> pending_;
  std::map<DocId, uint64_t> pending_doc_lengths_;

  uint64_t total_docs_ = 0;
  uint64_t total_tokens_ = 0;
  bool stats_loaded_ = false;
  Bm25Params params_;
};

}  // namespace bp::text
