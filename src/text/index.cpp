#include "text/index.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "storage/compress.hpp"
#include "storage/pager.hpp"
#include "util/require.hpp"
#include "util/serde.hpp"
#include "util/strings.hpp"

namespace bp::text {

using storage::AutoTxn;
using util::OrderedKeyU64;
using util::Reader;
using util::Result;
using util::Status;
using util::Writer;

namespace {

const std::string kStatsKey = "stats";

// Postings blobs are delta+varint pairs: doc ids (sorted) as gaps, tf
// verbatim. The byte format lives in storage::compress so the storage
// diet shares one hardened integer codec; it is byte-identical to the
// hand-rolled encoding earlier revisions wrote, so existing databases
// read back unchanged.
std::string EncodePostings(const std::vector<Posting>& postings) {
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  pairs.reserve(postings.size());
  for (const Posting& p : postings) pairs.emplace_back(p.doc, p.tf);
  return storage::compress::EncodeDeltaPairs(pairs);
}

Result<std::vector<Posting>> DecodePostings(std::string_view blob) {
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  BP_RETURN_IF_ERROR(storage::compress::DecodeDeltaPairs(blob, &pairs));
  std::vector<Posting> postings;
  postings.reserve(pairs.size());
  for (const auto& [doc, tf] : pairs) {
    postings.push_back(Posting{doc, static_cast<uint32_t>(tf)});
  }
  return postings;
}

// Merge-add: both inputs sorted by doc; same doc sums tf.
std::vector<Posting> MergePostings(const std::vector<Posting>& a,
                                   const std::vector<Posting>& b) {
  std::vector<Posting> out;
  out.reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].doc < b[j].doc)) {
      out.push_back(a[i++]);
    } else if (i >= a.size() || b[j].doc < a[i].doc) {
      out.push_back(b[j++]);
    } else {
      out.push_back(Posting{a[i].doc, a[i].tf + b[j].tf});
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<InvertedIndex>> InvertedIndex::Open(storage::Db& db,
                                                           std::string ns) {
  std::unique_ptr<InvertedIndex> index(
      new InvertedIndex(db, std::move(ns)));
  BP_ASSIGN_OR_RETURN(index->terms_tree_,
                      db.OpenOrCreateTree(index->ns_ + ".terms"));
  BP_ASSIGN_OR_RETURN(index->docs_tree_,
                      db.OpenOrCreateTree(index->ns_ + ".docs"));
  BP_ASSIGN_OR_RETURN(index->meta_tree_,
                      db.OpenOrCreateTree(index->ns_ + ".meta"));
  BP_RETURN_IF_ERROR(index->LoadStats());
  return index;
}

Result<std::unique_ptr<InvertedIndex>> InvertedIndex::AtSnapshot(
    const storage::Snapshot& snap) const {
  std::unique_ptr<InvertedIndex> view(new InvertedIndex(db_, ns_));
  view->terms_tree_ = view->bound_trees_.Bind(snap, terms_tree_);
  view->docs_tree_ = view->bound_trees_.Bind(snap, docs_tree_);
  view->meta_tree_ = view->bound_trees_.Bind(snap, meta_tree_);
  view->params_ = params_;
  // Corpus stats come from the snapshot's meta tree, NOT the live
  // cached members — the writer updates those concurrently.
  BP_RETURN_IF_ERROR(view->LoadStats());
  return view;
}

Status InvertedIndex::LoadStats() {
  auto blob = meta_tree_->Get(kStatsKey);
  if (blob.ok()) {
    Reader r(*blob);
    total_docs_ = r.ReadVarint64();
    total_tokens_ = r.ReadVarint64();
    BP_RETURN_IF_ERROR(r.Finish());
  } else if (!blob.status().IsNotFound()) {
    return blob.status();
  }
  stats_loaded_ = true;
  return Status::Ok();
}

Status InvertedIndex::SaveStats() {
  Writer w;
  w.PutVarint64(total_docs_);
  w.PutVarint64(total_tokens_);
  return meta_tree_->Put(kStatsKey, w.data());
}

Status InvertedIndex::AddDocument(DocId doc,
                                  const std::vector<std::string>& tokens) {
  BP_REQUIRE(!snapshot_bound(), "AddDocument on a snapshot-bound index");
  BP_REQUIRE(doc != 0, "doc id 0 is reserved");
  std::unordered_map<std::string_view, uint32_t> counts;
  for (const std::string& token : tokens) ++counts[token];
  for (const auto& [term, tf] : counts) {
    auto it = pending_.find(term);
    if (it == pending_.end()) {
      it = pending_.emplace(std::string(term), std::vector<Posting>{}).first;
    }
    it->second.push_back(Posting{doc, tf});
  }
  pending_doc_lengths_[doc] += tokens.size();
  return Status::Ok();
}

Status InvertedIndex::Flush() {
  // Bound handles have nothing pending by construction (AddDocument is
  // rejected), so the implicit Flush in every query is a no-op there.
  if (pending_.empty() && pending_doc_lengths_.empty()) return Status::Ok();
  // Index writes ride the text write domain: with partitioned domains
  // their WAL frames land on stream 1, so an index refresh's fsync can
  // overlap the ingest committer's fsync on stream 0 (single-domain
  // pagers route this back to domain 0; see Pager::Begin).
  AutoTxn txn(db_.pager(), storage::kTextDomain);

  for (auto& [term, postings] : pending_) {
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) {
                return a.doc < b.doc;
              });
    // Collapse duplicate docs within the buffer.
    std::vector<Posting> merged_buffer;
    for (const Posting& p : postings) {
      if (!merged_buffer.empty() && merged_buffer.back().doc == p.doc) {
        merged_buffer.back().tf += p.tf;
      } else {
        merged_buffer.push_back(p);
      }
    }
    std::vector<Posting> existing;
    auto blob = terms_tree_->Get(term);
    if (blob.ok()) {
      BP_ASSIGN_OR_RETURN(existing, DecodePostings(*blob));
    } else if (!blob.status().IsNotFound()) {
      return blob.status();
    }
    std::vector<Posting> merged = MergePostings(existing, merged_buffer);
    BP_RETURN_IF_ERROR(terms_tree_->Put(term, EncodePostings(merged)));
  }

  for (const auto& [doc, length] : pending_doc_lengths_) {
    uint64_t stored = 0;
    auto blob = docs_tree_->Get(OrderedKeyU64(doc));
    if (blob.ok()) {
      Reader r(*blob);
      stored = r.ReadVarint64();
      BP_RETURN_IF_ERROR(r.Finish());
    } else if (blob.status().IsNotFound()) {
      ++total_docs_;
    } else {
      return blob.status();
    }
    Writer w;
    w.PutVarint64(stored + length);
    BP_RETURN_IF_ERROR(docs_tree_->Put(OrderedKeyU64(doc), w.data()));
    total_tokens_ += length;
  }

  BP_RETURN_IF_ERROR(SaveStats());
  BP_RETURN_IF_ERROR(txn.Commit());
  pending_.clear();
  pending_doc_lengths_.clear();
  return Status::Ok();
}

Status InvertedIndex::ForEachPosting(
    std::string_view term, const std::function<bool(const Posting&)>& fn) {
  BP_RETURN_IF_ERROR(Flush());
  auto blob = terms_tree_->Get(term);
  if (!blob.ok()) {
    return blob.status().IsNotFound() ? Status::Ok() : blob.status();
  }
  BP_ASSIGN_OR_RETURN(std::vector<Posting> postings, DecodePostings(*blob));
  for (const Posting& p : postings) {
    if (!fn(p)) break;
  }
  return Status::Ok();
}

Result<uint64_t> InvertedIndex::DocumentFrequency(std::string_view term) {
  BP_RETURN_IF_ERROR(Flush());
  auto blob = terms_tree_->Get(term);
  if (!blob.ok()) {
    if (blob.status().IsNotFound()) return uint64_t{0};
    return blob.status();
  }
  Reader r(*blob);
  return r.ReadVarint64();
}

Result<uint64_t> InvertedIndex::DocumentCount() {
  BP_RETURN_IF_ERROR(Flush());
  return total_docs_;
}

Result<double> InvertedIndex::Idf(std::string_view term) {
  BP_ASSIGN_OR_RETURN(uint64_t df, DocumentFrequency(term));
  if (df == 0 || total_docs_ == 0) return 0.0;
  double n = static_cast<double>(total_docs_);
  double d = static_cast<double>(df);
  return std::log((n - d + 0.5) / (d + 0.5) + 1.0);
}

Result<std::vector<ScoredDoc>> InvertedIndex::Search(
    const std::vector<std::string>& query_tokens, size_t k) {
  BP_RETURN_IF_ERROR(Flush());
  if (total_docs_ == 0 || query_tokens.empty() || k == 0) {
    return std::vector<ScoredDoc>{};
  }
  const double avg_len =
      static_cast<double>(total_tokens_) / static_cast<double>(total_docs_);

  // Deduplicate query terms; repeated query terms add their weight once
  // per occurrence (standard bag-of-words query).
  std::unordered_map<std::string_view, uint32_t> query_counts;
  for (const std::string& t : query_tokens) ++query_counts[t];

  std::unordered_map<DocId, double> scores;
  std::unordered_map<DocId, double> doc_len_cache;
  for (const auto& [term, qtf] : query_counts) {
    BP_ASSIGN_OR_RETURN(double idf, Idf(term));
    if (idf <= 0.0) continue;
    BP_RETURN_IF_ERROR(ForEachPosting(term, [&](const Posting& p) {
      auto it = doc_len_cache.find(p.doc);
      if (it == doc_len_cache.end()) {
        double len = avg_len;
        auto blob = docs_tree_->Get(OrderedKeyU64(p.doc));
        if (blob.ok()) {
          Reader r(*blob);
          len = static_cast<double>(r.ReadVarint64());
        }
        it = doc_len_cache.emplace(p.doc, len).first;
      }
      const double tf = static_cast<double>(p.tf);
      const double norm =
          params_.k1 * (1.0 - params_.b + params_.b * it->second / avg_len);
      scores[p.doc] +=
          qtf * idf * (tf * (params_.k1 + 1.0)) / (tf + norm);
      return true;
    }));
  }

  std::vector<ScoredDoc> ranked;
  ranked.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    ranked.push_back(ScoredDoc{doc, score});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace bp::text
