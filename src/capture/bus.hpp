// EventBus: fans a browser-event stream out to recorders.
//
// The storage-overhead experiment depends on both recorders seeing the
// SAME stream; the bus is the single point of delivery.
#pragma once

#include <vector>

#include "capture/events.hpp"
#include "util/status.hpp"

namespace bp::capture {

// A consumer of browser events (PlacesRecorder, ProvenanceRecorder, ...).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual util::Status OnEvent(const BrowserEvent& event) = 0;
};

class EventBus {
 public:
  // Sinks are not owned; they must outlive the bus.
  void Subscribe(EventSink* sink) { sinks_.push_back(sink); }

  // Delivers to every sink; stops and reports the first failure.
  util::Status Publish(const BrowserEvent& event) {
    for (EventSink* sink : sinks_) {
      BP_RETURN_IF_ERROR(sink->OnEvent(event));
    }
    return util::Status::Ok();
  }

  util::Status PublishAll(const std::vector<BrowserEvent>& events) {
    for (const BrowserEvent& event : events) {
      BP_RETURN_IF_ERROR(Publish(event));
    }
    return util::Status::Ok();
  }

 private:
  std::vector<EventSink*> sinks_;
};

}  // namespace bp::capture
