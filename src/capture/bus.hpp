// EventBus: fans a browser-event stream out to recorders.
//
// The storage-overhead experiment depends on both recorders seeing the
// SAME stream; the bus is the single point of delivery.
//
// A sink may consume events synchronously (the recorders commit into
// storage before returning) or hand them off without blocking — the
// AsyncSink adapter in capture/pipeline.hpp forwards OnEvent into the
// bounded ingest queue, so a bus on a capture thread never waits on a
// storage transaction or an fsync.
#pragma once

#include <utility>
#include <vector>

#include "capture/events.hpp"
#include "util/status.hpp"

namespace bp::capture {

// A consumer of browser events (PlacesRecorder, ProvenanceRecorder, ...).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual util::Status OnEvent(const BrowserEvent& event) = 0;
};

class EventBus {
 public:
  // Sinks are not owned; they must outlive the bus.
  void Subscribe(EventSink* sink) { sinks_.push_back(sink); }
  size_t sink_count() const { return sinks_.size(); }

  // Delivers `event` to EVERY sink — a failing sink does not starve the
  // ones after it — then returns the first error. Stopping mid-fan-out
  // would silently diverge the recorders' streams: the sinks before the
  // failure would have seen one more event than the sinks after it,
  // breaking the "same stream" invariant the storage-overhead comparison
  // rests on. A sink that errors therefore misses nothing relative to
  // its peers for THIS event; the caller decides (via the returned
  // status) whether the stream as a whole continues.
  util::Status Publish(const BrowserEvent& event) {
    util::Status first;
    for (EventSink* sink : sinks_) {
      util::Status status = sink->OnEvent(event);
      if (first.ok() && !status.ok()) first = std::move(status);
    }
    return first;
  }

  // Publishes in order; stops after (fully fanning out) the first event
  // on which any sink failed, and returns that error.
  util::Status PublishAll(const std::vector<BrowserEvent>& events) {
    for (const BrowserEvent& event : events) {
      BP_RETURN_IF_ERROR(Publish(event));
    }
    return util::Status::Ok();
  }

 private:
  std::vector<EventSink*> sinks_;
};

}  // namespace bp::capture
