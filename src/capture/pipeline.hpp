// IngestPipeline: the staged, asynchronous write path.
//
// Capture threads must never stall on storage — the paper's feasibility
// claim is that provenance capture rides along with normal browsing.
// The pipeline decouples capture from commit:
//
//   capture threads --Enqueue--> [bounded MPSC queue] --> committer thread
//                                                          |  coalesces whatever
//                                                          |  is pending (up to
//                                                          |  max_batch) into ONE
//                                                          v  storage transaction
//                                                        CommitFn / SyncFn
//
// Enqueue is a mutex-protected queue push (no storage work, no fsync);
// it returns a monotonically increasing Ticket. A single background
// committer drains the queue in adaptive batches: under load it
// coalesces up to `max_batch` events per storage transaction and lets
// the storage layer's group-commit window amortize fsyncs, and when the
// queue runs dry (or a Flush barrier is waiting) it calls SyncFn to
// close the group early — so tail latency collapses at low event rates
// instead of waiting for a fixed group to fill.
//
// Durability acknowledgment is a watermark: Flush(ticket) blocks until
// every event up to `ticket` is DURABLE (committed and fsynced), Drain()
// is Flush(last enqueued). A committer error is sticky: the batch it
// failed on (and everything queued behind it) is dropped, and the error
// surfaces on every subsequent Enqueue/Flush — acknowledged tickets stay
// acknowledged, unacknowledged ones report the failure.
//
// Backpressure on a full queue is a policy: kBlock parks the capture
// thread until the committer frees space (lossless), kReject returns
// BudgetExhausted immediately (lossy, never blocks capture).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "capture/bus.hpp"
#include "capture/events.hpp"
#include "util/mutex.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace bp::obs {
class Gauge;
class Histogram;
}  // namespace bp::obs

namespace bp::capture {

enum class BackpressurePolicy : uint8_t {
  kBlock,   // Enqueue waits for queue space (capture is lossless)
  kReject,  // Enqueue returns BudgetExhausted on a full queue (no stall)
};

struct PipelineOptions {
  // Events the queue holds before backpressure applies.
  size_t queue_capacity = 4096;
  // Events coalesced into one storage transaction per committer pass.
  size_t max_batch = 256;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
};

// Counters the pipeline maintains about itself (storage-side costs live
// in storage::PagerStats; the two meet in bench_ingest_pipeline's JSON).
struct PipelineStats {
  uint64_t enqueued = 0;        // tickets handed out
  uint64_t committed = 0;       // events whose transaction committed
  uint64_t batches = 0;         // storage transactions the committer ran
  uint64_t coalesced_txns = 0;  // batches that carried more than 1 event
  uint64_t early_flushes = 0;   // groups closed early (queue dry / Flush)
  uint64_t rejected = 0;        // kReject refusals on a full queue
  uint64_t blocked_enqueues = 0;  // kBlock waits on a full queue
  uint64_t max_queue_depth = 0;   // deepest the queue ever got
  uint64_t maintenance_runs = 0;  // maintenance-lane invocations
  // Mean depth over samples taken at BOTH transition points — after
  // every enqueue and after every batch pop — so bursts the committer
  // drains between enqueues and idle stretches both weigh in (sampling
  // only at pops overstated the mean under bursty load: pops see the
  // queue at its fullest).
  double mean_queue_depth = 0;
};

class IngestPipeline {
 public:
  // 1-based, dense: the Nth enqueued event holds ticket N. 0 = "nothing".
  using Ticket = uint64_t;

  // Commits `events` as ONE storage transaction. `backlog` is how many
  // events were still queued behind this batch when it was popped (0
  // means the committer is about to go idle — sizing input for adaptive
  // policies). Returns whether every commit so far is durable (e.g. the
  // commit filled and flushed the storage group-commit window); when
  // false, the pipeline calls SyncFn before acknowledging watermarks.
  using CommitFn = std::function<util::Result<bool>(
      std::vector<BrowserEvent>&& events, size_t backlog)>;
  // Makes every committed event durable now (closes a partially filled
  // group-commit window).
  using SyncFn = std::function<util::Status()>;
  // Optional maintenance lane: runs on its OWN thread, woken after every
  // committed batch (wakeups coalesce into one pending flag, so a slow
  // maintenance pass absorbs any number of batches). The callable
  // decides for itself whether there is enough backlog to act on (e.g.
  // ProvenanceDb refreshes the text index only past index_min_backlog)
  // and must synchronize its storage access like CommitFn — the point of
  // the separate thread is that the DURABILITY part (fsyncing the text
  // domain's WAL stream) runs outside the writer mutex and overlaps the
  // committer's own fsync on the ingest domain. Errors are sticky,
  // exactly like committer errors.
  using MaintenanceFn = std::function<util::Status()>;

  // Starts the committer thread (and, with a non-null MaintenanceFn,
  // the maintenance thread). The callables run ON those threads and
  // must synchronize their storage access themselves (ProvenanceDb
  // passes closures that take its writer mutex).
  IngestPipeline(PipelineOptions options, CommitFn commit, SyncFn sync)
      : IngestPipeline(std::move(options), std::move(commit),
                       std::move(sync), nullptr) {}
  IngestPipeline(PipelineOptions options, CommitFn commit, SyncFn sync,
                 MaintenanceFn maintenance);
  // Drains what it can (a final implicit Flush of the last enqueued
  // ticket; skipped once a sticky error latched), then joins.
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  // Non-blocking under kBlock until the queue fills; never commits
  // inline. Returns the event's ticket, the sticky committer error, or
  // BudgetExhausted (kReject, queue full).
  util::Result<Ticket> Enqueue(const BrowserEvent& event) BP_EXCLUDES(mu_);

  // Blocks until every event up to `ticket` is durable, or returns the
  // sticky error if the committer failed before reaching it. Tickets
  // beyond the last enqueued are clamped (Flush(UINT64_MAX) == Drain).
  util::Status Flush(Ticket ticket) BP_EXCLUDES(mu_);
  // Barrier over everything enqueued so far.
  util::Status Drain() BP_EXCLUDES(mu_) { return Flush(UINT64_MAX); }

  // Most recent ticket handed out (0 before the first Enqueue).
  Ticket last_enqueued() const BP_EXCLUDES(mu_);
  // Highest ticket acknowledged durable.
  Ticket durable_ticket() const BP_EXCLUDES(mu_);
  // The sticky committer status (Ok until a commit or sync fails).
  util::Status status() const BP_EXCLUDES(mu_);
  PipelineStats stats() const BP_EXCLUDES(mu_);

 private:
  void CommitterLoop() BP_EXCLUDES(mu_);
  void MaintenanceLoop() BP_EXCLUDES(mu_);
  // Committer must wake to close the group early: something committed
  // is not yet durable and a Flush barrier (or shutdown) wants it.
  bool SyncWantedLocked() const BP_REQUIRES(mu_) {
    return status_.ok() && durable_ < committed_ && flush_target_ > durable_;
  }

  const PipelineOptions options_;
  const CommitFn commit_;
  const SyncFn sync_;
  const MaintenanceFn maintenance_;  // null = no maintenance lane

  mutable util::Mutex mu_;
  std::condition_variable work_cv_;   // wakes the committer
  std::condition_variable space_cv_;  // wakes producers blocked on space
  std::condition_variable ack_cv_;    // wakes Flush/Drain waiters
  std::condition_variable maint_cv_;  // wakes the maintenance thread
  std::deque<BrowserEvent> queue_ BP_GUARDED_BY(mu_);
  Ticket next_ticket_ BP_GUARDED_BY(mu_) = 1;  // next Enqueue's ticket
  Ticket popped_ BP_GUARDED_BY(mu_) = 0;     // last handed to committer
  Ticket committed_ BP_GUARDED_BY(mu_) = 0;  // last txn-committed
  Ticket durable_ BP_GUARDED_BY(mu_) = 0;    // last known durable
  Ticket flush_target_ BP_GUARDED_BY(mu_) = 0;  // highest Flush() wait
  util::Status status_ BP_GUARDED_BY(mu_);      // sticky committer error
  bool stop_ BP_GUARDED_BY(mu_) = false;
  // Maintenance wakeups coalesce: any number of batch commits while a
  // pass is in flight collapse into one more pending pass.
  bool maint_pending_ BP_GUARDED_BY(mu_) = false;
  PipelineStats stats_ BP_GUARDED_BY(mu_);
  uint64_t depth_samples_ BP_GUARDED_BY(mu_) = 0;
  uint64_t depth_sum_ BP_GUARDED_BY(mu_) = 0;

  // Observability (src/obs): process-wide stage-latency histograms and
  // the live queue-depth gauge, fetched once at construction.
  // Registry-owned; no unregistration needed (instruments are eternal).
  obs::Histogram* enqueue_latency_us_ = nullptr;
  obs::Histogram* commit_batch_latency_us_ = nullptr;
  obs::Histogram* sync_latency_us_ = nullptr;
  obs::Histogram* batch_events_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  // Declared last: start after every member above is initialized.
  std::thread maintenance_thread_;  // running iff maintenance_ != null
  std::thread committer_;
};

// EventSink adapter: lets an EventBus feed a pipeline directly, so an
// instrumented browser's bus fans out to the Places baseline AND the
// async provenance path in one Publish. OnEvent forwards to the enqueue
// function and returns its status (under kReject backpressure a full
// queue surfaces as BudgetExhausted to the bus caller; the sticky
// pipeline error surfaces the same way).
class AsyncSink : public EventSink {
 public:
  using EnqueueFn = std::function<util::Status(const BrowserEvent&)>;
  explicit AsyncSink(EnqueueFn enqueue) : enqueue_(std::move(enqueue)) {}

  util::Status OnEvent(const BrowserEvent& event) override {
    return enqueue_(event);
  }

 private:
  EnqueueFn enqueue_;
};

}  // namespace bp::capture
