#include "capture/recorders.hpp"

#include "util/strings.hpp"

namespace bp::capture {

using util::Status;

TimeMs EventTime(const BrowserEvent& event) {
  return std::visit([](const auto& e) { return e.time; }, event);
}

std::string DescribeEvent(const BrowserEvent& event) {
  struct Visitor {
    std::string operator()(const VisitEvent& e) const {
      return util::StrFormat("visit #%llu %s (tab %llu)",
                             (unsigned long long)e.visit_id, e.url.c_str(),
                             (unsigned long long)e.tab);
    }
    std::string operator()(const CloseEvent& e) const {
      return util::StrFormat("close #%llu", (unsigned long long)e.visit_id);
    }
    std::string operator()(const SearchEvent& e) const {
      return util::StrFormat("search \"%s\"", e.query.c_str());
    }
    std::string operator()(const BookmarkAddEvent& e) const {
      return util::StrFormat("bookmark %s", e.url.c_str());
    }
    std::string operator()(const DownloadEvent& e) const {
      return util::StrFormat("download %s -> %s", e.url.c_str(),
                             e.target_path.c_str());
    }
    std::string operator()(const FormSubmitEvent& e) const {
      return util::StrFormat("form submit [%s]", e.field_summary.c_str());
    }
  };
  return std::visit(Visitor{}, event);
}

// -------------------------------------------------------- PlacesRecorder

namespace {

places::VisitType ToVisitType(NavigationAction action) {
  switch (action) {
    case NavigationAction::kLink: return places::VisitType::kLink;
    case NavigationAction::kTyped: return places::VisitType::kTyped;
    case NavigationAction::kBookmark: return places::VisitType::kBookmark;
    case NavigationAction::kEmbed: return places::VisitType::kEmbed;
    case NavigationAction::kRedirect:
      return places::VisitType::kRedirectTemporary;
    case NavigationAction::kNewTab:
      // Firefox records a plain LINK visit for "open in new tab".
      return places::VisitType::kLink;
    case NavigationAction::kReload: return places::VisitType::kReload;
    case NavigationAction::kFormResult: return places::VisitType::kLink;
    case NavigationAction::kSearchResult: return places::VisitType::kLink;
  }
  return places::VisitType::kLink;
}

// Places records the referrer chain only for in-page causes. Typed,
// bookmark, and new-tab arrivals lose it (the paper's central gap).
bool PlacesKeepsReferrer(NavigationAction action) {
  switch (action) {
    case NavigationAction::kLink:
    case NavigationAction::kEmbed:
    case NavigationAction::kRedirect:
    case NavigationAction::kFormResult:
    case NavigationAction::kSearchResult:
      return true;
    case NavigationAction::kTyped:
    case NavigationAction::kBookmark:
    case NavigationAction::kNewTab:
    case NavigationAction::kReload:
      return false;
  }
  return false;
}

prov::EdgeKind ToEdgeKind(NavigationAction action) {
  switch (action) {
    case NavigationAction::kLink: return prov::EdgeKind::kLink;
    case NavigationAction::kTyped: return prov::EdgeKind::kTyped;
    case NavigationAction::kBookmark:
      // The navigation edge itself; the bookmark-click edge is added
      // separately from the bookmark node.
      return prov::EdgeKind::kLink;
    case NavigationAction::kEmbed: return prov::EdgeKind::kEmbed;
    case NavigationAction::kRedirect: return prov::EdgeKind::kRedirect;
    case NavigationAction::kNewTab: return prov::EdgeKind::kNewTab;
    case NavigationAction::kReload: return prov::EdgeKind::kReload;
    case NavigationAction::kFormResult: return prov::EdgeKind::kLink;
    case NavigationAction::kSearchResult: return prov::EdgeKind::kLink;
  }
  return prov::EdgeKind::kLink;
}

}  // namespace

Status PlacesRecorder::OnEvent(const BrowserEvent& event) {
  struct Visitor {
    PlacesRecorder& self;
    Status operator()(const VisitEvent& e) const { return self.OnVisit(e); }
    Status operator()(const CloseEvent&) const {
      return Status::Ok();  // Firefox does not record closes
    }
    Status operator()(const SearchEvent& e) const {
      return self.store_.AddInput(e.query, e.time);
    }
    Status operator()(const BookmarkAddEvent& e) const {
      return self.store_.AddBookmark(e.url, e.title, e.time).status();
    }
    Status operator()(const DownloadEvent& e) const {
      return self.store_.AddDownload(e.url, e.target_path, e.time).status();
    }
    Status operator()(const FormSubmitEvent& e) const {
      // Firefox form history: field contents only, no lineage.
      return self.store_.AddInput(e.field_summary, e.time);
    }
  };
  return std::visit(Visitor{*this}, event);
}

Status PlacesRecorder::OnVisit(const VisitEvent& event) {
  uint64_t from_visit = 0;
  if (PlacesKeepsReferrer(event.action) && event.referrer_visit != 0) {
    auto it = visit_map_.find(event.referrer_visit);
    if (it != visit_map_.end()) from_visit = it->second;
  }
  BP_ASSIGN_OR_RETURN(
      uint64_t visit_id,
      store_.AddVisit(event.url, event.title, ToVisitType(event.action),
                      from_visit, event.time));
  visit_map_[event.visit_id] = visit_id;
  return Status::Ok();
}

// ---------------------------------------------------- ProvenanceRecorder

Status ProvenanceRecorder::OnEvent(const BrowserEvent& event) {
  struct Visitor {
    ProvenanceRecorder& self;
    Status operator()(const VisitEvent& e) const { return self.OnVisit(e); }
    Status operator()(const CloseEvent& e) const {
      auto it = self.visit_map_.find(e.visit_id);
      if (it == self.visit_map_.end()) return Status::Ok();
      return self.store_.RecordClose(it->second, e.time);
    }
    Status operator()(const SearchEvent& e) const {
      prov::NodeId from = 0;
      auto it = self.visit_map_.find(e.from_visit);
      if (it != self.visit_map_.end()) from = it->second;
      BP_ASSIGN_OR_RETURN(prov::NodeId issue,
                          self.store_.RecordSearch(e.query, from, e.time));
      self.search_map_[e.search_id] = issue;
      return Status::Ok();
    }
    Status operator()(const BookmarkAddEvent& e) const {
      prov::NodeId from = 0;
      auto it = self.visit_map_.find(e.from_visit);
      if (it != self.visit_map_.end()) from = it->second;
      BP_ASSIGN_OR_RETURN(
          prov::NodeId bookmark,
          self.store_.RecordBookmarkAdd(e.title, from, e.time));
      self.bookmark_map_[e.bookmark_id] = bookmark;
      return Status::Ok();
    }
    Status operator()(const DownloadEvent& e) const {
      prov::NodeId from = 0;
      auto it = self.visit_map_.find(e.from_visit);
      if (it != self.visit_map_.end()) from = it->second;
      BP_ASSIGN_OR_RETURN(
          prov::NodeId download,
          self.store_.RecordDownload(e.url, e.target_path, from, e.time));
      self.download_map_[e.download_id] = download;
      return Status::Ok();
    }
    Status operator()(const FormSubmitEvent& e) const {
      prov::NodeId from = 0;
      auto it = self.visit_map_.find(e.from_visit);
      if (it != self.visit_map_.end()) from = it->second;
      BP_ASSIGN_OR_RETURN(
          prov::NodeId form,
          self.store_.RecordFormSubmit(e.field_summary, from, e.time));
      self.form_map_[e.form_id] = form;
      return Status::Ok();
    }
  };
  return std::visit(Visitor{*this}, event);
}

Status ProvenanceRecorder::OnVisit(const VisitEvent& event) {
  prov::NodeId referrer = 0;
  if (event.referrer_visit != 0) {
    auto it = visit_map_.find(event.referrer_visit);
    if (it != visit_map_.end()) referrer = it->second;
  }
  BP_ASSIGN_OR_RETURN(
      prov::NodeId view,
      store_.RecordVisit(event.url, event.title, ToEdgeKind(event.action),
                         referrer, event.time,
                         static_cast<int64_t>(event.tab)));
  visit_map_[event.visit_id] = view;

  // Non-link causes get their dedicated lineage edges.
  if (event.action == NavigationAction::kSearchResult &&
      event.search_id != 0) {
    auto it = search_map_.find(event.search_id);
    if (it != search_map_.end()) {
      BP_RETURN_IF_ERROR(store_.LinkSearchResult(it->second, view));
    }
  }
  if (event.action == NavigationAction::kBookmark &&
      event.bookmark_id != 0) {
    auto it = bookmark_map_.find(event.bookmark_id);
    if (it != bookmark_map_.end()) {
      BP_RETURN_IF_ERROR(store_.LinkBookmarkClick(it->second, view));
    }
  }
  if (event.action == NavigationAction::kFormResult && event.form_id != 0) {
    auto it = form_map_.find(event.form_id);
    if (it != form_map_.end()) {
      BP_RETURN_IF_ERROR(store_.LinkFormResult(it->second, view));
    }
  }
  return Status::Ok();
}

}  // namespace bp::capture
