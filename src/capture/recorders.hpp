// The two history recorders.
//
// PlacesRecorder keeps what Firefox 3 keeps — and drops what Firefox
// drops. ProvenanceRecorder keeps the full provenance graph. Driving
// both from one event stream realizes the paper's comparison: same
// browsing, two schemas.
#pragma once

#include <unordered_map>

#include "capture/bus.hpp"
#include "capture/events.hpp"
#include "places/places.hpp"
#include "prov/prov_store.hpp"
#include "util/status.hpp"

namespace bp::capture {

// Baseline. Faithfully lossy:
//   - from_visit is recorded only for link / redirect / embed / form /
//     search-result navigations; typed, bookmark, and new-tab arrivals
//     get from_visit = 0 (section 3.2's "second-class citizens").
//   - Close events are dropped entirely.
//   - Searches are stored as bare input-history strings.
//   - Downloads record only their source URL.
class PlacesRecorder : public EventSink {
 public:
  explicit PlacesRecorder(places::PlacesStore& store) : store_(store) {}

  util::Status OnEvent(const BrowserEvent& event) override;

  // Stream visit id -> Places visit row id (exposed for tests).
  const std::unordered_map<uint64_t, uint64_t>& visit_map() const {
    return visit_map_;
  }

 private:
  util::Status OnVisit(const VisitEvent& event);

  places::PlacesStore& store_;
  std::unordered_map<uint64_t, uint64_t> visit_map_;
};

// The provenance-aware recorder: every event becomes nodes/edges in the
// unified graph, including the relationships Places cannot express.
class ProvenanceRecorder : public EventSink {
 public:
  explicit ProvenanceRecorder(prov::ProvStore& store) : store_(store) {}

  util::Status OnEvent(const BrowserEvent& event) override;

  // Stream visit id -> view node (visit node under node versioning,
  // page node under edge timestamping).
  const std::unordered_map<uint64_t, prov::NodeId>& visit_map() const {
    return visit_map_;
  }
  // Stream search/bookmark/download/form ids -> their nodes.
  const std::unordered_map<uint64_t, prov::NodeId>& search_map() const {
    return search_map_;
  }
  const std::unordered_map<uint64_t, prov::NodeId>& bookmark_map() const {
    return bookmark_map_;
  }
  const std::unordered_map<uint64_t, prov::NodeId>& download_map() const {
    return download_map_;
  }
  const std::unordered_map<uint64_t, prov::NodeId>& form_map() const {
    return form_map_;
  }

 private:
  util::Status OnVisit(const VisitEvent& event);

  prov::ProvStore& store_;
  std::unordered_map<uint64_t, prov::NodeId> visit_map_;
  std::unordered_map<uint64_t, prov::NodeId> search_map_;
  std::unordered_map<uint64_t, prov::NodeId> bookmark_map_;
  std::unordered_map<uint64_t, prov::NodeId> download_map_;
  std::unordered_map<uint64_t, prov::NodeId> form_map_;
};

}  // namespace bp::capture
