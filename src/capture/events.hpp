// The browser event model: what an instrumented browser emits as the
// user browses. The simulator produces these; recorders consume them.
//
// Section 3 of the paper inventories the actions: link traversals, typed
// URLs, bookmark clicks and creations, new tabs, redirects, embedded
// content, searches, form submissions, downloads, and page closes. Every
// one is represented here so the two recorders can be driven by the SAME
// stream and differ only in what they keep.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/time.hpp"

namespace bp::capture {

using util::TimeMs;

// How a page view came to be (superset of Firefox transitions; maps onto
// places::VisitType and prov::EdgeKind in the recorders).
enum class NavigationAction : uint8_t {
  kLink = 1,     // clicked a link on the referrer page
  kTyped = 2,    // typed / pasted into the location bar
  kBookmark = 3, // activated a bookmark
  kEmbed = 4,    // embedded content loaded by the referrer (image/iframe)
  kRedirect = 5, // server redirect from the referrer
  kNewTab = 6,   // opened from referrer into a new tab
  kReload = 7,
  kFormResult = 8,   // page produced by a form submission
  kSearchResult = 9, // search-engine results page for a SearchEvent
};

// One page view. `visit_id` is a stream-unique, monotonically increasing
// identifier assigned by the producer; `referrer_visit` names the view
// that caused this one (0 = none, e.g. first typed URL of a session).
struct VisitEvent {
  TimeMs time = 0;
  uint64_t tab = 0;
  uint64_t visit_id = 0;
  std::string url;
  std::string title;
  NavigationAction action = NavigationAction::kLink;
  uint64_t referrer_visit = 0;
  // Cross-references for non-link causes (0 when inapplicable):
  uint64_t search_id = 0;    // kSearchResult: the SearchEvent
  uint64_t bookmark_id = 0;  // kBookmark: the BookmarkAddEvent
  uint64_t form_id = 0;      // kFormResult: the FormSubmitEvent
};

// The view left the display (tab closed or navigated away).
struct CloseEvent {
  TimeMs time = 0;
  uint64_t tab = 0;
  uint64_t visit_id = 0;
};

// The user submitted a search query (results arrive as a VisitEvent with
// action kSearchResult and matching search_id).
struct SearchEvent {
  TimeMs time = 0;
  uint64_t tab = 0;
  uint64_t search_id = 0;
  std::string query;
  uint64_t from_visit = 0;  // view the user was on when searching
};

struct BookmarkAddEvent {
  TimeMs time = 0;
  uint64_t bookmark_id = 0;
  std::string url;
  std::string title;
  uint64_t from_visit = 0;  // view being bookmarked
};

struct DownloadEvent {
  TimeMs time = 0;
  uint64_t download_id = 0;
  std::string url;          // resource URL
  std::string target_path;  // where it was saved
  uint64_t from_visit = 0;  // view the download was triggered from
};

// The user submitted a form (result arrives as a VisitEvent with action
// kFormResult and matching form_id).
struct FormSubmitEvent {
  TimeMs time = 0;
  uint64_t form_id = 0;
  uint64_t from_visit = 0;
  std::string field_summary;  // e.g. "destination=paris date=2009-02-23"
};

using BrowserEvent =
    std::variant<VisitEvent, CloseEvent, SearchEvent, BookmarkAddEvent,
                 DownloadEvent, FormSubmitEvent>;

// Time of any event.
TimeMs EventTime(const BrowserEvent& event);

// Short human-readable description (debugging, examples).
std::string DescribeEvent(const BrowserEvent& event);

}  // namespace bp::capture
