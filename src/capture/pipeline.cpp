#include "capture/pipeline.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace bp::capture {

using util::Result;
using util::Status;

IngestPipeline::IngestPipeline(PipelineOptions options, CommitFn commit,
                               SyncFn sync, MaintenanceFn maintenance)
    : options_([&] {
        PipelineOptions o = options;
        o.queue_capacity = std::max<size_t>(1, o.queue_capacity);
        o.max_batch = std::max<size_t>(1, o.max_batch);
        return o;
      }()),
      commit_(std::move(commit)),
      sync_(std::move(sync)),
      maintenance_(std::move(maintenance)) {
  // Check before the committer starts: the thread calls these blindly.
  BP_CHECK(commit_ != nullptr && sync_ != nullptr);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  enqueue_latency_us_ = reg.GetHistogram(
      "bp_ingest_enqueue_us", "",
      "Capture-side Enqueue latency (us), including backpressure waits");
  commit_batch_latency_us_ = reg.GetHistogram(
      "bp_ingest_commit_batch_us", "",
      "Committer batch transaction latency (us)");
  sync_latency_us_ = reg.GetHistogram(
      "bp_ingest_sync_us", "", "Adaptive group-close sync latency (us)");
  batch_events_ = reg.GetHistogram(
      "bp_ingest_batch_events", "",
      "Events coalesced per committer storage transaction");
  queue_depth_gauge_ = reg.GetGauge("bp_ingest_queue_depth", "",
                                    "Events waiting in the ingest queue");
  if (maintenance_ != nullptr) {
    maintenance_thread_ = std::thread([this] { MaintenanceLoop(); });
  }
  committer_ = std::thread([this] { CommitterLoop(); });
}

IngestPipeline::~IngestPipeline() {
  {
    util::MutexLock lock(mu_);
    stop_ = true;
    // Shutdown behaves like a final Drain: the committer empties the
    // queue and closes the group before exiting (unless a sticky error
    // already made that impossible), and the maintenance lane finishes
    // any pass it still owes before joining.
    flush_target_ = next_ticket_ - 1;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  committer_.join();
  // After the committer exits: no new maintenance wakeups can arrive,
  // so the maintenance thread drains its last pending pass and stops.
  maint_cv_.notify_all();
  if (maintenance_thread_.joinable()) maintenance_thread_.join();
}

Result<IngestPipeline::Ticket> IngestPipeline::Enqueue(
    const BrowserEvent& event) {
  obs::ScopedTimerUs timer(enqueue_latency_us_);
  if (std::this_thread::get_id() == committer_.get_id()) {
    // A sink fed back into its own pipeline (e.g. async_sink()
    // subscribed to the bus the committer publishes to) would
    // re-enqueue every event it commits — an infinite loop that, under
    // kBlock backpressure, deadlocks the committer against itself the
    // moment the queue fills. Refuse instead of wedging.
    return Status::FailedPrecondition(
        "Enqueue from the committer thread: a sink is feeding the "
        "pipeline back into itself");
  }
  util::MutexLock lock(mu_);
  if (!status_.ok()) return status_;
  if (stop_) return Status::Aborted("ingest pipeline is shutting down");
  if (queue_.size() >= options_.queue_capacity) {
    if (options_.backpressure == BackpressurePolicy::kReject) {
      ++stats_.rejected;
      return Status::BudgetExhausted(util::StrFormat(
          "ingest queue full (%zu events)", options_.queue_capacity));
    }
    ++stats_.blocked_enqueues;
    // Explicit wait loop (not the predicate overload): the analysis
    // checks a predicate lambda as its own function, where mu_ is not
    // visibly held — see util/mutex.hpp.
    while (queue_.size() >= options_.queue_capacity && status_.ok() &&
           !stop_) {
      space_cv_.wait(lock.native());
    }
    if (!status_.ok()) return status_;
    if (stop_) return Status::Aborted("ingest pipeline is shutting down");
  }
  queue_.push_back(event);
  Ticket ticket = next_ticket_++;
  ++stats_.enqueued;
  stats_.max_queue_depth =
      std::max<uint64_t>(stats_.max_queue_depth, queue_.size());
  // Depth is sampled at both transition points (here and at batch pop):
  // see PipelineStats::mean_queue_depth.
  ++depth_samples_;
  depth_sum_ += queue_.size();
  queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
  work_cv_.notify_one();
  return ticket;
}

Status IngestPipeline::Flush(Ticket ticket) {
  util::MutexLock lock(mu_);
  ticket = std::min(ticket, next_ticket_ - 1);
  if (durable_ >= ticket) return Status::Ok();  // already acknowledged
  if (!status_.ok()) return status_;
  flush_target_ = std::max(flush_target_, ticket);
  work_cv_.notify_one();
  while (durable_ < ticket && status_.ok()) {
    ack_cv_.wait(lock.native());
  }
  return durable_ >= ticket ? Status::Ok() : status_;
}

IngestPipeline::Ticket IngestPipeline::last_enqueued() const {
  util::MutexLock lock(mu_);
  return next_ticket_ - 1;
}

IngestPipeline::Ticket IngestPipeline::durable_ticket() const {
  util::MutexLock lock(mu_);
  return durable_;
}

Status IngestPipeline::status() const {
  util::MutexLock lock(mu_);
  return status_;
}

PipelineStats IngestPipeline::stats() const {
  util::MutexLock lock(mu_);
  PipelineStats out = stats_;
  out.mean_queue_depth =
      depth_samples_ == 0
          ? 0.0
          : static_cast<double>(depth_sum_) /
                static_cast<double>(depth_samples_);
  return out;
}

void IngestPipeline::CommitterLoop() {
  util::MutexLock lock(mu_);
  for (;;) {
    while (!(stop_ || !queue_.empty() || SyncWantedLocked())) {
      work_cv_.wait(lock.native());
    }

    if (!queue_.empty() && status_.ok()) {
      // Adaptive batch: take whatever is pending, up to the cap, into
      // one storage transaction — a deep queue amortizes per-commit
      // cost, a queue of one stays a low-latency single-event commit.
      const size_t n = std::min(queue_.size(), options_.max_batch);
      std::vector<BrowserEvent> batch;
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      const Ticket batch_last = popped_ + n;
      popped_ = batch_last;
      const size_t backlog = queue_.size();
      ++depth_samples_;
      depth_sum_ += backlog;
      queue_depth_gauge_->Set(static_cast<int64_t>(backlog));
      batch_events_->Record(n);
      space_cv_.notify_all();

      lock.Unlock();
      Result<bool> durable = false;
      {
        obs::ScopedTimerUs batch_timer(commit_batch_latency_us_);
        obs::ScopedSpan span("pipeline.commit_batch");
        durable = commit_(std::move(batch), backlog);
      }
      lock.Lock();

      if (!durable.ok()) {
        status_ = durable.status();
      } else {
        committed_ = batch_last;
        ++stats_.batches;
        stats_.committed += n;
        if (n > 1) ++stats_.coalesced_txns;
        if (*durable) durable_ = committed_;
        if (maintenance_ != nullptr) {
          // Wake the maintenance lane; wakeups coalesce into one
          // pending pass, so a slow pass absorbs a burst of batches.
          maint_pending_ = true;
          maint_cv_.notify_one();
        }
      }
    }

    // Adaptive group close: the storage group-commit window is a
    // CEILING. When the queue runs dry — or a Flush barrier (including
    // shutdown) is waiting — make the committed tail durable now
    // instead of letting it sit until the window fills.
    if (status_.ok() && durable_ < committed_ &&
        (queue_.empty() || flush_target_ > durable_)) {
      lock.Unlock();
      Status synced;
      {
        obs::ScopedTimerUs sync_timer(sync_latency_us_);
        obs::ScopedSpan span("pipeline.sync");
        synced = sync_();
      }
      lock.Lock();
      if (!synced.ok()) {
        status_ = synced;
      } else {
        durable_ = committed_;
        ++stats_.early_flushes;
      }
    }

    if (!status_.ok() && !queue_.empty()) {
      // Sticky failure: nothing behind the failed batch will ever
      // commit. Drop the backlog so blocked producers stop waiting for
      // space that would never drain; their events are reported lost
      // through the sticky status, never silently.
      queue_.clear();
      popped_ = next_ticket_ - 1;
      space_cv_.notify_all();
    }
    ack_cv_.notify_all();

    if (stop_ && (queue_.empty() || !status_.ok())) return;
  }
}

void IngestPipeline::MaintenanceLoop() {
  util::MutexLock lock(mu_);
  for (;;) {
    // Explicit wait loop for the same thread-safety-analysis reason as
    // Enqueue's (see util/mutex.hpp).
    while (!stop_ && !maint_pending_) {
      maint_cv_.wait(lock.native());
    }
    if (maint_pending_) {
      maint_pending_ = false;
      if (status_.ok()) {
        lock.Unlock();
        obs::ScopedSpan span("pipeline.maintenance");
        Status maintained = maintenance_();
        lock.Lock();
        ++stats_.maintenance_runs;
        if (!maintained.ok() && status_.ok()) {
          // Maintenance failures are as sticky as committer failures:
          // the storage layer underneath is in an unknown state, so
          // stop acknowledging work against it.
          status_ = maintained;
          queue_.clear();
          popped_ = next_ticket_ - 1;
          space_cv_.notify_all();
          ack_cv_.notify_all();
        }
      }
    }
    if (stop_ && !maint_pending_) return;
  }
}

}  // namespace bp::capture
