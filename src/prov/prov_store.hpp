// ProvStore: the provenance-aware history store.
//
// Wraps a GraphStore with the browser-provenance schema (prov/schema.hpp)
// and maintains its invariants during ingestion:
//
//   - Canonical page nodes are deduplicated by URL; under the
//     node-versioning policy every page view adds a fresh kVisit node
//     linked kInstanceOf to its page, and navigation edges connect visit
//     instances — the graph is acyclic by construction because every
//     edge points either at a brand-new node or at a sink-kind canonical
//     node (kPage, kSearchTerm, kDownload).
//   - Under the edge-timestamping policy navigation edges connect
//     canonical page nodes directly and carry a `time` attribute; the
//     structural graph may contain cycles, but no time-respecting walk
//     does (edge times strictly increase along a user's traversal).
//   - Open/close times live on visit nodes (node policy), giving the
//     co-open relation of section 3.2 via an interval index.
//
// Trees are namespaced "prov." so the storage-overhead experiment can
// compare against "places.".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/algo.hpp"
#include "graph/interval_index.hpp"
#include "graph/store.hpp"
#include "prov/schema.hpp"
#include "storage/pager.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace bp::prov {

using graph::NodeId;
using util::TimeMs;

struct ProvOptions {
  VersionPolicy policy = VersionPolicy::kVersionNodes;
  // Section 3.2 ablation: when false, close events are ignored — visits
  // never close, and time-contextual queries degrade exactly the way the
  // paper says Firefox does ("every page is always open").
  bool record_close_times = true;
};

class ProvStore {
 public:
  static util::Result<std::unique_ptr<ProvStore>> Open(storage::Db& db,
                                                       ProvOptions options);

  // A read-only handle on the same provenance store whose every lookup
  // — graph cursors, URL/term indexes, visit intervals — resolves
  // through `snap`: the snapshot-isolated query path (safe on a reader
  // thread while this live store keeps ingesting). Record*/Link* on the
  // returned store are contract violations. The handle carries its own
  // interval-index cache, built lazily from the snapshot and valid for
  // the handle's whole lifetime (a frozen view never invalidates).
  // `snap` and this store must outlive the handle.
  std::unique_ptr<ProvStore> AtSnapshot(const storage::Snapshot& snap) const;
  bool snapshot_bound() const { return bound_trees_.bound(); }

  // Groups many Record*/Link* calls into ONE storage transaction (each
  // call's own AutoTxn composes into it). Capture is bursty — a page
  // load emits several events back to back — and per-event transactions
  // pay the full durability cost every time; a batch pays it once. With
  // the database opened in DurabilityMode::kWal and wal_group_commit >
  // 1, adjacent batches additionally share a single log fsync, which is
  // the cheap sustained-ingest path the paper's capture workload needs.
  //
  //   { prov::ProvStore::IngestBatch batch(*store);
  //     ... store->RecordVisit(...); store->RecordClose(...); ...
  //     BP_RETURN_IF_ERROR(batch.Commit()); }
  //
  // Destruction without Commit rolls the whole batch back. This is also
  // the unit of work of ProvenanceDb's async ingest committer: each
  // drained queue batch becomes exactly one IngestBatch, so a batch of
  // asynchronously captured events is all-or-nothing on disk.
  class IngestBatch {
   public:
    explicit IngestBatch(ProvStore& store) : txn_(store.db_.pager()) {}
    util::Status Commit() { return txn_.Commit(); }
    // Whether destruction without Commit actually rolls back (false for
    // a batch nested inside an outer transaction).
    bool owns_transaction() const { return txn_.owns(); }

   private:
    storage::AutoTxn txn_;
  };

  // ------------------------------------------------------- ingestion
  //
  // RecordVisit returns the node representing this page view: a fresh
  // kVisit node (node policy) or the canonical kPage node (edge policy).
  // `referrer` is the node returned for the causing view (0 = none).
  util::Result<NodeId> RecordVisit(std::string_view url,
                                   std::string_view title, EdgeKind action,
                                   NodeId referrer, TimeMs time,
                                   int64_t tab);

  // Marks the visit closed (tab closed / navigated away). No-op under
  // the edge policy or when record_close_times is off.
  util::Status RecordClose(NodeId visit, TimeMs time);

  // A search issued from `from_visit` (0 if typed into a fresh tab).
  // Creates/updates the canonical term node and a fresh issuance node.
  // Returns the issuance node; link the results page to it with
  // LinkSearchResult.
  util::Result<NodeId> RecordSearch(std::string_view query,
                                    NodeId from_visit, TimeMs time);
  util::Status LinkSearchResult(NodeId search_issue, NodeId results_visit);

  util::Result<NodeId> RecordBookmarkAdd(std::string_view title,
                                         NodeId from_visit, TimeMs time);
  // The visit produced by activating a bookmark.
  util::Status LinkBookmarkClick(NodeId bookmark, NodeId visit);

  util::Result<NodeId> RecordDownload(std::string_view source_url,
                                      std::string_view target_path,
                                      NodeId from_visit, TimeMs time);

  util::Result<NodeId> RecordFormSubmit(std::string_view summary,
                                        NodeId from_visit, TimeMs time);
  util::Status LinkFormResult(NodeId form, NodeId results_visit);

  // ---------------------------------------------------------- lookup
  //
  // All lookups run on the cursor read path; the optional `stats` sink
  // accumulates the rows they touch into a caller's QueryStats.
  util::Result<NodeId> PageForUrl(std::string_view url) const;
  util::Result<NodeId> TermForQuery(std::string_view query) const;

  // Canonical page of a view node. Node policy: follows kInstanceOf;
  // edge policy: identity.
  util::Result<NodeId> PageOfView(NodeId view,
                                  graph::QueryStats* stats = nullptr) const;

  // All visit instances of a page, ascending by node id (== by time).
  // Edge policy: returns {page} itself.
  util::Result<std::vector<NodeId>> ViewsOfPage(
      NodeId page, graph::QueryStats* stats = nullptr) const;

  // Visit nodes whose [open, close) span overlaps the query span (node
  // policy only — the edge policy cannot answer this, which is the
  // point of the E8 ablation). Built lazily; invalidated by ingestion.
  util::Result<const graph::IntervalIndex*> VisitIntervals();

  // ------------------------------------------------------ integrity
  // Node policy: structural acyclicity. Edge policy: every navigation
  // edge carries a time attribute.
  util::Result<bool> CheckInvariants() const;

  graph::GraphStore& graph() { return *graph_; }
  const graph::GraphStore& graph() const { return *graph_; }
  const ProvOptions& options() const { return options_; }

  // Nodes/edges created so far (cheap counters for benches).
  util::Result<uint64_t> NodeCount() const { return graph_->NodeCount(); }
  util::Result<uint64_t> EdgeCount() const { return graph_->EdgeCount(); }

 private:
  ProvStore(storage::Db& db, ProvOptions options)
      : db_(db), options_(options) {}

  util::Result<NodeId> UpsertPage(std::string_view url,
                                  std::string_view title);
  util::Result<NodeId> UpsertTerm(std::string_view query);

  storage::Db& db_;
  ProvOptions options_;
  std::unique_ptr<graph::GraphStore> graph_;
  storage::BTree* url_index_ = nullptr;   // url -> page node
  storage::BTree* term_index_ = nullptr;  // query -> term node
  // Snapshot-bound handles (AtSnapshot): the index pointers above point
  // into this owned storage instead of the Db's live handles.
  storage::BoundTrees bound_trees_;

  // Lazily built visit-interval index. Shared + immutable once built,
  // so AtSnapshot handles can adopt a still-valid live cache instead of
  // re-scanning every visit node per view (ingestion invalidates only
  // the live store's flag; adopters keep their reference).
  std::shared_ptr<const graph::IntervalIndex> interval_cache_;
  bool interval_cache_valid_ = false;
};

}  // namespace bp::prov
