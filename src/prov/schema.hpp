// The unified browser-provenance schema (the paper's core contribution).
//
// Section 3.4: "Our idealized vision of browser metadata is a single,
// homogeneous provenance graph store that describes and relates every
// kind of history object." Every history object is a graph node; every
// browser action that derives one object from another is an edge.
#pragma once

#include <cstdint>
#include <string_view>

namespace bp::prov {

enum class NodeKind : uint32_t {
  kPage = 1,        // canonical page (one per URL); attrs: url, title,
                    // visit_count. A sink: no outgoing edges.
  kVisit = 2,       // one page-visit instance (node-versioning policy);
                    // attrs: open, close, tab, transition.
  kBookmark = 3,    // attrs: title, added.
  kDownload = 4,    // attrs: url, target, time. A sink.
  kSearchTerm = 5,  // canonical query string; attrs: query, use_count.
                    // A sink (instances point to it).
  kSearchIssue = 6, // one issuance of a search; attrs: time.
  kFormSubmission = 7,  // attrs: summary, time.
};

enum class EdgeKind : uint32_t {
  // Navigation actions (visit -> visit under node versioning;
  // page -> page with a `time` attribute under edge timestamping).
  kLink = 1,    // link click
  kTyped = 2,   // location-bar typing — the relationship Places drops
  kRedirect = 3,
  kEmbed = 4,   // top-level page -> embedded content
  kNewTab = 5,  // opened in a new tab from this page
  kReload = 6,

  // Identity / versioning.
  kInstanceOf = 7,      // visit -> its canonical page
  kTermInstanceOf = 8,  // search issuance -> canonical search term

  // Search lineage (section 3.3: search terms are "concise, conceptual,
  // user-generated descriptors that are in the lineage of the page they
  // generate and that page's descendants").
  kSearchIssue = 9,   // visit where the search was typed -> issuance
  kSearchResult = 10, // issuance -> results-page visit

  // Bookmarks as first-class provenance objects.
  kBookmarkFrom = 11,  // visit where the bookmark was created -> bookmark
  kBookmarkClick = 12, // bookmark -> visit it produced

  // Downloads and forms.
  kDownloadFrom = 13,  // visit -> download fetched from it
  kFormFrom = 14,      // visit carrying the form -> submission
  kFormResult = 15,    // submission -> resulting page visit
};

// Attribute keys (single source of truth for spelling).
inline constexpr std::string_view kAttrUrl = "url";
inline constexpr std::string_view kAttrTitle = "title";
inline constexpr std::string_view kAttrVisitCount = "visit_count";
inline constexpr std::string_view kAttrOpen = "open";
inline constexpr std::string_view kAttrClose = "close";
inline constexpr std::string_view kAttrTab = "tab";
inline constexpr std::string_view kAttrTransition = "transition";
inline constexpr std::string_view kAttrTime = "time";
inline constexpr std::string_view kAttrQuery = "query";
inline constexpr std::string_view kAttrUseCount = "use_count";
inline constexpr std::string_view kAttrAdded = "added";
inline constexpr std::string_view kAttrTarget = "target";
inline constexpr std::string_view kAttrSummary = "summary";

// Section 3.1: two cycle-breaking schemes for the versioned history
// graph. kVersionNodes creates a new visit node per page view (PASS
// style); kTimestampEdges keeps one node per page and versions the
// *links*, "creating a traversal order among edges" — Firefox's own
// choice, which the paper notes makes link queries and graph algorithms
// harder. Both are implemented so the trade-off can be measured (E8).
enum class VersionPolicy {
  kVersionNodes,
  kTimestampEdges,
};

// True for navigation-action edge kinds (the ones affected by policy).
constexpr bool IsNavigationEdge(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kLink:
    case EdgeKind::kTyped:
    case EdgeKind::kRedirect:
    case EdgeKind::kEmbed:
    case EdgeKind::kNewTab:
    case EdgeKind::kReload:
      return true;
    default:
      return false;
  }
}

// Section 3.2: redirects and inner content "are not generated as the
// result of a user action"; personalization algorithms may want to skip
// them (edge unification, measured by E9).
constexpr bool IsAutomaticEdge(EdgeKind kind) {
  return kind == EdgeKind::kRedirect || kind == EdgeKind::kEmbed;
}

std::string_view NodeKindName(NodeKind kind);
std::string_view EdgeKindName(EdgeKind kind);

}  // namespace bp::prov
