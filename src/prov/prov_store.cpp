#include "prov/prov_store.hpp"

#include "storage/pager.hpp"
#include "storage/table.hpp"
#include "util/require.hpp"
#include "util/serde.hpp"

namespace bp::prov {

using graph::AttrMap;
using graph::Direction;
using graph::Edge;
using graph::Node;
using storage::AutoTxn;
using storage::Index;
using util::Result;
using util::Status;

std::string_view NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kPage: return "page";
    case NodeKind::kVisit: return "visit";
    case NodeKind::kBookmark: return "bookmark";
    case NodeKind::kDownload: return "download";
    case NodeKind::kSearchTerm: return "search_term";
    case NodeKind::kSearchIssue: return "search_issue";
    case NodeKind::kFormSubmission: return "form_submission";
  }
  return "unknown";
}

std::string_view EdgeKindName(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kLink: return "link";
    case EdgeKind::kTyped: return "typed";
    case EdgeKind::kRedirect: return "redirect";
    case EdgeKind::kEmbed: return "embed";
    case EdgeKind::kNewTab: return "new_tab";
    case EdgeKind::kReload: return "reload";
    case EdgeKind::kInstanceOf: return "instance_of";
    case EdgeKind::kTermInstanceOf: return "term_instance_of";
    case EdgeKind::kSearchIssue: return "search_issue";
    case EdgeKind::kSearchResult: return "search_result";
    case EdgeKind::kBookmarkFrom: return "bookmark_from";
    case EdgeKind::kBookmarkClick: return "bookmark_click";
    case EdgeKind::kDownloadFrom: return "download_from";
    case EdgeKind::kFormFrom: return "form_from";
    case EdgeKind::kFormResult: return "form_result";
  }
  return "unknown";
}

Result<std::unique_ptr<ProvStore>> ProvStore::Open(storage::Db& db,
                                                   ProvOptions options) {
  std::unique_ptr<ProvStore> store(new ProvStore(db, options));
  BP_ASSIGN_OR_RETURN(store->graph_, graph::GraphStore::Open(db, "prov"));
  BP_ASSIGN_OR_RETURN(store->url_index_,
                      db.OpenOrCreateTree("prov.url_index"));
  BP_ASSIGN_OR_RETURN(store->term_index_,
                      db.OpenOrCreateTree("prov.term_index"));
  return store;
}

std::unique_ptr<ProvStore> ProvStore::AtSnapshot(
    const storage::Snapshot& snap) const {
  std::unique_ptr<ProvStore> view(new ProvStore(db_, options_));
  view->graph_ =
      std::make_unique<graph::GraphStore>(graph_->AtSnapshot(snap));
  view->url_index_ = view->bound_trees_.Bind(snap, url_index_);
  view->term_index_ = view->bound_trees_.Bind(snap, term_index_);
  // A still-valid live interval cache equals the committed state the
  // snapshot froze (ingestion invalidates it, and mid-transaction
  // callers may have uncommitted visits the cache must not leak into),
  // so adopt it instead of re-scanning every visit node per view.
  if (interval_cache_valid_ && !db_.pager().InTransaction()) {
    view->interval_cache_ = interval_cache_;
    view->interval_cache_valid_ = true;
  }
  return view;
}

Result<NodeId> ProvStore::UpsertPage(std::string_view url,
                                     std::string_view title) {
  Index index(url_index_);
  BP_ASSIGN_OR_RETURN(NodeId found, index.FirstEqual(url));
  if (found != 0) {
    BP_ASSIGN_OR_RETURN(Node page, graph_->GetNode(found));
    page.attrs.SetInt(kAttrVisitCount,
                      page.attrs.IntOr(kAttrVisitCount, 0) + 1);
    if (!title.empty()) {
      page.attrs.SetString(kAttrTitle, std::string(title));
    }
    BP_RETURN_IF_ERROR(graph_->PutNode(page));
    return found;
  }
  AttrMap attrs;
  attrs.SetString(kAttrUrl, std::string(url));
  attrs.SetString(kAttrTitle, std::string(title));
  attrs.SetInt(kAttrVisitCount, 1);
  BP_ASSIGN_OR_RETURN(
      NodeId id,
      graph_->AddNode(static_cast<uint32_t>(NodeKind::kPage), attrs));
  BP_RETURN_IF_ERROR(index.Add(url, id));
  return id;
}

Result<NodeId> ProvStore::UpsertTerm(std::string_view query) {
  Index index(term_index_);
  BP_ASSIGN_OR_RETURN(NodeId found, index.FirstEqual(query));
  if (found != 0) {
    BP_ASSIGN_OR_RETURN(Node term, graph_->GetNode(found));
    term.attrs.SetInt(kAttrUseCount,
                      term.attrs.IntOr(kAttrUseCount, 0) + 1);
    BP_RETURN_IF_ERROR(graph_->PutNode(term));
    return found;
  }
  AttrMap attrs;
  attrs.SetString(kAttrQuery, std::string(query));
  attrs.SetInt(kAttrUseCount, 1);
  BP_ASSIGN_OR_RETURN(
      NodeId id,
      graph_->AddNode(static_cast<uint32_t>(NodeKind::kSearchTerm), attrs));
  BP_RETURN_IF_ERROR(index.Add(query, id));
  return id;
}

Result<NodeId> ProvStore::RecordVisit(std::string_view url,
                                      std::string_view title,
                                      EdgeKind action, NodeId referrer,
                                      TimeMs time, int64_t tab) {
  BP_REQUIRE(!snapshot_bound(), "RecordVisit on a snapshot-bound store");
  BP_REQUIRE(IsNavigationEdge(action),
             "RecordVisit takes a navigation edge kind");
  interval_cache_valid_ = false;
  AutoTxn txn(db_.pager());
  BP_ASSIGN_OR_RETURN(NodeId page, UpsertPage(url, title));

  NodeId view;
  if (options_.policy == VersionPolicy::kVersionNodes) {
    AttrMap attrs;
    attrs.SetInt(kAttrOpen, time);
    attrs.SetInt(kAttrTab, tab);
    attrs.SetInt(kAttrTransition, static_cast<int64_t>(action));
    BP_ASSIGN_OR_RETURN(
        view,
        graph_->AddNode(static_cast<uint32_t>(NodeKind::kVisit), attrs));
    BP_RETURN_IF_ERROR(
        graph_
            ->AddEdge(view, page,
                      static_cast<uint32_t>(EdgeKind::kInstanceOf), {})
            .status());
    if (referrer != 0) {
      AttrMap edge_attrs;
      edge_attrs.SetInt(kAttrTime, time);
      BP_RETURN_IF_ERROR(graph_
                             ->AddEdge(referrer, view,
                                       static_cast<uint32_t>(action),
                                       edge_attrs)
                             .status());
    }
  } else {
    // Edge-timestamping: the page node is the view; each traversal is an
    // edge instance carrying its time (Firefox's layout, section 3.1).
    view = page;
    if (referrer != 0) {
      AttrMap edge_attrs;
      edge_attrs.SetInt(kAttrTime, time);
      edge_attrs.SetInt(kAttrTab, tab);
      BP_RETURN_IF_ERROR(graph_
                             ->AddEdge(referrer, view,
                                       static_cast<uint32_t>(action),
                                       edge_attrs)
                             .status());
    }
  }
  BP_RETURN_IF_ERROR(txn.Commit());
  return view;
}

Status ProvStore::RecordClose(NodeId visit, TimeMs time) {
  BP_REQUIRE(!snapshot_bound(), "RecordClose on a snapshot-bound store");
  if (options_.policy != VersionPolicy::kVersionNodes ||
      !options_.record_close_times) {
    return Status::Ok();
  }
  interval_cache_valid_ = false;
  BP_ASSIGN_OR_RETURN(Node node, graph_->GetNode(visit));
  if (node.kind != static_cast<uint32_t>(NodeKind::kVisit)) {
    return Status::InvalidArgument("RecordClose: not a visit node");
  }
  node.attrs.SetInt(kAttrClose, time);
  return graph_->PutNode(node);
}

Result<NodeId> ProvStore::RecordSearch(std::string_view query,
                                       NodeId from_visit, TimeMs time) {
  BP_REQUIRE(!snapshot_bound(), "RecordSearch on a snapshot-bound store");
  interval_cache_valid_ = false;
  AutoTxn txn(db_.pager());
  BP_ASSIGN_OR_RETURN(NodeId term, UpsertTerm(query));
  AttrMap attrs;
  attrs.SetInt(kAttrTime, time);
  BP_ASSIGN_OR_RETURN(NodeId issue,
                      graph_->AddNode(
                          static_cast<uint32_t>(NodeKind::kSearchIssue),
                          attrs));
  BP_RETURN_IF_ERROR(
      graph_
          ->AddEdge(issue, term,
                    static_cast<uint32_t>(EdgeKind::kTermInstanceOf), {})
          .status());
  if (from_visit != 0) {
    BP_RETURN_IF_ERROR(
        graph_
            ->AddEdge(from_visit, issue,
                      static_cast<uint32_t>(EdgeKind::kSearchIssue), {})
            .status());
  }
  BP_RETURN_IF_ERROR(txn.Commit());
  return issue;
}

Status ProvStore::LinkSearchResult(NodeId search_issue,
                                   NodeId results_visit) {
  BP_REQUIRE(!snapshot_bound(), "LinkSearchResult on a snapshot-bound store");
  return graph_
      ->AddEdge(search_issue, results_visit,
                static_cast<uint32_t>(EdgeKind::kSearchResult), {})
      .status();
}

Result<NodeId> ProvStore::RecordBookmarkAdd(std::string_view title,
                                            NodeId from_visit,
                                            TimeMs time) {
  BP_REQUIRE(!snapshot_bound(), "RecordBookmarkAdd on a snapshot-bound store");
  AutoTxn txn(db_.pager());
  AttrMap attrs;
  attrs.SetString(kAttrTitle, std::string(title));
  attrs.SetInt(kAttrAdded, time);
  BP_ASSIGN_OR_RETURN(
      NodeId bookmark,
      graph_->AddNode(static_cast<uint32_t>(NodeKind::kBookmark), attrs));
  if (from_visit != 0) {
    BP_RETURN_IF_ERROR(
        graph_
            ->AddEdge(from_visit, bookmark,
                      static_cast<uint32_t>(EdgeKind::kBookmarkFrom), {})
            .status());
  }
  BP_RETURN_IF_ERROR(txn.Commit());
  return bookmark;
}

Status ProvStore::LinkBookmarkClick(NodeId bookmark, NodeId visit) {
  BP_REQUIRE(!snapshot_bound(), "LinkBookmarkClick on a snapshot-bound store");
  return graph_
      ->AddEdge(bookmark, visit,
                static_cast<uint32_t>(EdgeKind::kBookmarkClick), {})
      .status();
}

Result<NodeId> ProvStore::RecordDownload(std::string_view source_url,
                                         std::string_view target_path,
                                         NodeId from_visit, TimeMs time) {
  BP_REQUIRE(!snapshot_bound(), "RecordDownload on a snapshot-bound store");
  AutoTxn txn(db_.pager());
  AttrMap attrs;
  attrs.SetString(kAttrUrl, std::string(source_url));
  attrs.SetString(kAttrTarget, std::string(target_path));
  attrs.SetInt(kAttrTime, time);
  BP_ASSIGN_OR_RETURN(
      NodeId download,
      graph_->AddNode(static_cast<uint32_t>(NodeKind::kDownload), attrs));
  if (from_visit != 0) {
    BP_RETURN_IF_ERROR(
        graph_
            ->AddEdge(from_visit, download,
                      static_cast<uint32_t>(EdgeKind::kDownloadFrom), {})
            .status());
  }
  BP_RETURN_IF_ERROR(txn.Commit());
  return download;
}

Result<NodeId> ProvStore::RecordFormSubmit(std::string_view summary,
                                           NodeId from_visit, TimeMs time) {
  BP_REQUIRE(!snapshot_bound(), "RecordFormSubmit on a snapshot-bound store");
  AutoTxn txn(db_.pager());
  AttrMap attrs;
  attrs.SetString(kAttrSummary, std::string(summary));
  attrs.SetInt(kAttrTime, time);
  BP_ASSIGN_OR_RETURN(
      NodeId form,
      graph_->AddNode(
          static_cast<uint32_t>(NodeKind::kFormSubmission), attrs));
  if (from_visit != 0) {
    BP_RETURN_IF_ERROR(
        graph_
            ->AddEdge(from_visit, form,
                      static_cast<uint32_t>(EdgeKind::kFormFrom), {})
            .status());
  }
  BP_RETURN_IF_ERROR(txn.Commit());
  return form;
}

Status ProvStore::LinkFormResult(NodeId form, NodeId results_visit) {
  BP_REQUIRE(!snapshot_bound(), "LinkFormResult on a snapshot-bound store");
  return graph_
      ->AddEdge(form, results_visit,
                static_cast<uint32_t>(EdgeKind::kFormResult), {})
      .status();
}

Result<NodeId> ProvStore::PageForUrl(std::string_view url) const {
  Index index(url_index_);
  BP_ASSIGN_OR_RETURN(NodeId found, index.FirstEqual(url));
  if (found == 0) return Status::NotFound("no page node for url");
  return found;
}

Result<NodeId> ProvStore::TermForQuery(std::string_view query) const {
  Index index(term_index_);
  BP_ASSIGN_OR_RETURN(NodeId found, index.FirstEqual(query));
  if (found == 0) return Status::NotFound("no term node for query");
  return found;
}

Result<NodeId> ProvStore::PageOfView(NodeId view,
                                     graph::QueryStats* stats) const {
  if (options_.policy == VersionPolicy::kTimestampEdges) return view;
  graph::EdgeCursor cur =
      graph_->Edges(view, Direction::kOut, stats);
  for (; cur.Valid(); cur.Next()) {
    if (cur.edge().kind() == static_cast<uint32_t>(EdgeKind::kInstanceOf)) {
      return cur.edge().dst();
    }
  }
  BP_RETURN_IF_ERROR(cur.status());
  return Status::NotFound("view has no canonical page");
}

Result<std::vector<NodeId>> ProvStore::ViewsOfPage(
    NodeId page, graph::QueryStats* stats) const {
  if (options_.policy == VersionPolicy::kTimestampEdges) {
    return std::vector<NodeId>{page};
  }
  std::vector<NodeId> views;
  graph::EdgeCursor cur = graph_->Edges(page, Direction::kIn, stats);
  for (; cur.Valid(); cur.Next()) {
    if (cur.edge().kind() == static_cast<uint32_t>(EdgeKind::kInstanceOf)) {
      views.push_back(cur.edge().src());
    }
  }
  BP_RETURN_IF_ERROR(cur.status());
  return views;
}

Result<const graph::IntervalIndex*> ProvStore::VisitIntervals() {
  if (options_.policy != VersionPolicy::kVersionNodes) {
    return Status::FailedPrecondition(
        "visit intervals require the node-versioning policy (section 3.1: "
        "edge timestamping keeps no per-visit open/close state)");
  }
  if (!interval_cache_valid_) {
    std::vector<graph::IntervalIndex::Entry> entries;
    graph::NodeCursor cur = graph_->Nodes();
    for (; cur.Valid(); cur.Next()) {
      if (cur.node().kind() != static_cast<uint32_t>(NodeKind::kVisit)) {
        continue;
      }
      BP_ASSIGN_OR_RETURN(graph::AttrMap attrs, cur.node().attrs());
      util::TimeSpan span;
      span.open = attrs.IntOr(kAttrOpen, 0);
      span.close = attrs.IntOr(kAttrClose, util::kTimeMax);
      entries.push_back({span, cur.node().id()});
    }
    BP_RETURN_IF_ERROR(cur.status());
    // Build into a fresh index and only then publish it: the published
    // object is immutable, so AtSnapshot handles may share it.
    auto built = std::make_shared<graph::IntervalIndex>();
    built->Build(std::move(entries));
    interval_cache_ = std::move(built);
    interval_cache_valid_ = true;
  }
  return interval_cache_.get();
}

Result<bool> ProvStore::CheckInvariants() const {
  // Integrity audit, so decode EVERY edge's attributes — the cursor
  // read path skips attr decode by design, which would otherwise let a
  // corrupt attr section hide behind a valid varint prefix. Edge
  // policy additionally requires a timestamp on every navigation edge
  // (logical acyclicity comes from time-respecting traversal).
  graph::EdgeCursor cur = graph_->Edges();
  for (; cur.Valid(); cur.Next()) {
    BP_ASSIGN_OR_RETURN(graph::AttrMap attrs, cur.edge().attrs());
    if (options_.policy == VersionPolicy::kTimestampEdges &&
        IsNavigationEdge(static_cast<EdgeKind>(cur.edge().kind())) &&
        !attrs.GetInt(kAttrTime).has_value()) {
      return false;
    }
  }
  BP_RETURN_IF_ERROR(cur.status());
  if (options_.policy == VersionPolicy::kVersionNodes) {
    return graph::IsAcyclic(*graph_);
  }
  return true;
}

}  // namespace bp::prov
