// ProvenanceDb: the one supported way to stand the system up.
//
// Owns the whole stack — storage engine (Db), provenance store, event
// bus + recorder, and the history searcher — behind a single
// Open(path, Options), and exposes the paper's query surface directly:
//
//   auto db = prov::ProvenanceDb::Open("history.db", options);
//   BP_RETURN_IF_ERROR((*db)->IngestAll(session.events()));
//   auto hits = (*db)->Search("rosebud");
//   auto lineage = (*db)->TraceDownload(download_node);
//
// Every query result carries the QueryStats its cursors accumulated.
// The text index is refreshed lazily: ingestion marks it stale and the
// next text-backed query re-indexes the new pages, so bursts of capture
// never pay indexing latency inline.
//
// Concurrency model: capture threads -> bounded queue -> ONE committer
// thread, N snapshot readers. The preferred write path is IngestAsync:
// a non-blocking enqueue into the ingest pipeline, whose background
// committer coalesces pending events into adaptive batches — one
// storage transaction each, group-committed under load, fsynced
// immediately when the queue runs dry. Flush(ticket)/Drain() are the
// durability barriers; read-your-writes for queries is preserved by
// draining before one-shot queries and BeginSnapshot (see
// Options::async.drain_before_query). The synchronous Ingest/IngestAll/
// Batch path remains for callers that want commit-on-return semantics;
// both paths serialize on the same internal writer mutex, so they
// interleave at transaction granularity.
//
// One-shot query methods may be called from any thread, and every
// one-shot query under WAL durability runs against a fresh snapshot —
// so queries from other threads never observe a half-applied batch and
// never block behind each other, only behind snapshot creation. For
// query bursts that should share one consistent view (paging through
// results, multi-query forensics, repeated TimeContext against one
// interval index), BeginSnapshot() hands out a SnapshotView that pins
// the commit horizon once; its queries run with NO locking at all,
// fully in parallel with ingestion and each other (one SnapshotView per
// reader thread — the view itself is single-threaded, the snapshot
// layer below is what's shared). Destroy every SnapshotView before the
// ProvenanceDb.
//
// The owned EventBus is exposed so additional sinks (e.g. the Places
// baseline recorder used by the storage-overhead experiment) can ride
// the same stream; Publish delivers to every sink before reporting the
// first error, keeping those streams identical.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "capture/bus.hpp"
#include "capture/pipeline.hpp"
#include "capture/recorders.hpp"
#include "prov/prov_store.hpp"
#include "search/history_search.hpp"
#include "search/lineage.hpp"
#include "search/personalize.hpp"
#include "search/time_context.hpp"
#include "storage/db.hpp"
#include "storage/snapshot.hpp"
#include "util/mutex.hpp"
#include "util/require.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace bp::obs {
class Histogram;
}  // namespace bp::obs

namespace bp::prov {

class ProvenanceDb {
 public:
  struct Options {
    // Storage knobs (env, cache, durability, buffer pool). The default
    // WAL + group commit configuration is the sustained-capture path;
    // pass a MemEnv via db.env for tests and examples. The shared
    // versioned buffer pool behind every snapshot read is sized by
    // db.pool_bytes (0 disables it; db.buffer_pool shares one pool —
    // one global byte budget — across several databases). Hit/miss
    // counters surface through storage_stats() and per-query
    // QueryStats.
    storage::DbOptions db;
    // Schema knobs (versioning policy, close-time recording).
    ProvOptions prov;
    // Events per storage transaction: IngestAll's chunk size AND the
    // async committer's coalescing cap (PipelineOptions::max_batch).
    size_t ingest_batch = 256;

    // Asynchronous ingest pipeline (IngestAsync / Flush / Drain).
    struct AsyncOptions {
      // When false, no committer thread is started and IngestAsync
      // returns FailedPrecondition; the synchronous paths are
      // unaffected.
      bool enabled = true;
      // Events the queue buffers before backpressure applies.
      size_t queue_capacity = 4096;
      // Full-queue policy: kBlock parks the capture thread (lossless);
      // kReject returns BudgetExhausted without blocking.
      capture::BackpressurePolicy backpressure =
          capture::BackpressurePolicy::kBlock;
      // Read-your-writes: one-shot queries and BeginSnapshot first
      // drain the pipeline up to the last enqueued ticket, so an
      // IngestAsync immediately followed by a query behaves like the
      // synchronous path. Turn off to let queries run against whatever
      // has committed (lower query latency under sustained ingest).
      bool drain_before_query = true;
      // Background index maintenance lane: a second pipeline thread,
      // woken after every committed ingest batch, refreshes the lazy
      // text index in its own write-domain transaction (WAL stream 1)
      // and fsyncs that stream OUTSIDE the writer mutex — so the index
      // refresh's fsync overlaps the ingest committer's fsync on
      // stream 0 instead of serializing behind it. Queries keep their
      // lazy refresh as a backstop; this just moves the work off the
      // query path. Requires async.enabled; no-op when the database
      // was opened with a single write domain.
      bool index_maintenance = false;
      // Backlog gate: skip a maintenance pass until at least this many
      // events have been ingested since the last index refresh (avoids
      // re-walking the index trees for every tiny batch).
      size_t index_min_backlog = 1024;
    };
    AsyncOptions async;

    Options() {
      db.durability = storage::DurabilityMode::kWal;
      db.wal_group_commit = 8;
      // Partitioned write domains: graph/prov/places commits ride
      // stream 0, lazy text-index refreshes stream 1 (see
      // storage/pager.hpp). Single-stream layouts remain readable; set
      // to 1 to get the pre-partitioned behavior.
      db.write_domains = 2;
    }
  };

  // Opens (creating if needed) the full stack at `path`. Rejects
  // unusable options up front (InvalidArgument on ingest_batch == 0, or
  // async.queue_capacity == 0 with async enabled) instead of letting
  // them misbehave downstream.
  static util::Result<std::unique_ptr<ProvenanceDb>> Open(
      const std::string& path, Options options = {});

  // Explicit clean shutdown: drains the async pipeline, joins the
  // committer, checkpoints (WAL mode: folds the log into the database
  // file), and releases every resource — including this database's
  // frames in a shared buffer pool — without waiting for the
  // destructor. This is what lets a handle cache (service layer) evict
  // a database deterministically instead of relying on destructor
  // ordering, and it surfaces the errors a destructor would swallow
  // (the first of: drain failure, checkpoint failure).
  //
  // Preconditions: no open Batch, no live SnapshotView, and — like the
  // destructor — no concurrent calls on this instance. Returns
  // FailedPrecondition (and closes nothing) when a Batch or snapshot is
  // still open.
  //
  // Post-Close contract: Close() again is Ok (idempotent); every
  // ingestion, query, snapshot, and durability method returns
  // FailedPrecondition("ProvenanceDb is closed"); storage_stats()
  // keeps returning the final pre-close counters; DebugDump() still
  // works (the registry is process-wide). Reopening the same path is
  // supported and sees everything committed before the Close.
  util::Status Close();

  ~ProvenanceDb();
  ProvenanceDb(const ProvenanceDb&) = delete;
  ProvenanceDb& operator=(const ProvenanceDb&) = delete;

  // ----------------------------------------------------- ingestion
  //
  // Two write paths share one committed stream:
  //
  //   IngestAsync  — non-blocking enqueue; the background committer
  //                  batches, commits, and adaptively group-commits.
  //                  This is the capture path: a browser thread pays a
  //                  queue push, never a storage transaction.
  //   Ingest/IngestAll/Batch — synchronous; committed (though with
  //                  group commit not necessarily fsynced) on return.

  // Ticket identifying one asynchronously ingested event; pass it to
  // Flush to wait for durability. Tickets are dense and monotone.
  using IngestTicket = capture::IngestPipeline::Ticket;

  // Enqueues the event for the background committer and returns its
  // ticket without touching storage. On a full queue the configured
  // backpressure policy applies (block vs. BudgetExhausted). A prior
  // committer failure is sticky and is returned here and from Flush —
  // acknowledged events are never affected, unacknowledged events after
  // the failure point are dropped, never silently half-applied.
  util::Result<IngestTicket> IngestAsync(const capture::BrowserEvent& event);

  // Blocks until every event up to `ticket` is durable (committed AND
  // fsynced — stronger than synchronous Ingest under group commit).
  // Do not call inside an open Batch: the committer needs the writer
  // lock the Batch holds.
  util::Status Flush(IngestTicket ticket);
  // Barrier over everything enqueued so far: Flush(last ticket).
  util::Status Drain();

  // The sticky committer status (Ok until an async commit/sync failed).
  util::Status pipeline_status() const;
  // Queue-depth / coalescing counters (zeroed struct when async is off).
  capture::PipelineStats pipeline_stats() const;
  // An EventSink forwarding to IngestAsync — subscribe it to an external
  // EventBus to feed capture straight into the pipeline (null when
  // async is disabled). The PlacesRecorder comparison can ride the same
  // external bus; this facade's own bus stays on the committer thread.
  capture::EventSink* async_sink() { return async_sink_.get(); }

  // Publishes one event to every subscribed sink.
  util::Status Ingest(const capture::BrowserEvent& event);

  // Publishes all events, `ingest_batch` per storage transaction (with
  // WAL group commit, adjacent batches additionally share an fsync).
  util::Status IngestAll(const std::vector<capture::BrowserEvent>& events);

  // Groups many Ingest calls into one storage transaction, holding the
  // facade's writer lock for its whole lifetime (snapshot readers keep
  // running; other writers and one-shot queries wait). Destruction
  // without Commit rolls the batch back.
  //
  //   { prov::ProvenanceDb::Batch batch(*db);
  //     ... db->Ingest(...); db->Ingest(...); ...
  //     BP_RETURN_IF_ERROR(batch.Commit()); }
  class Batch {
   public:
    // Contract violation (throws) on a closed database: the batch
    // would have no storage to compose into.
    explicit Batch(ProvenanceDb& db)
        : db_(CheckOpenForBatch(db)),
          lock_(db.mu_),
          watermark_(db.searcher_->indexed_watermark()),
          inner_(*db.store_) {
      // While any user Batch is open, queries skip the read-your-writes
      // drain: the committer needs mu_ (held right here) to make
      // progress, so a same-thread drain would deadlock — and mid-batch
      // queries want the live read-your-own-writes path anyway.
      db_.user_batches_.fetch_add(1, std::memory_order_release);
    }
    util::Status Commit() {
      util::Status status = inner_.Commit();
      committed_ = status.ok();
      return status;
    }
    // Destruction without Commit rolls the storage back (when this
    // batch owns the transaction). A mid-batch text query may have
    // indexed the batch's pages (RefreshIndex composes into the open
    // transaction), so the searcher's watermark and cached corpus stats
    // now cover rolled-back node ids; schedule their restore for the
    // next RefreshIndex — it must run AFTER the rollback, which member
    // destruction order puts after this body.
    ~Batch() {
      if (!committed_ && inner_.owns_transaction()) {
        db_.ScheduleIndexRestore(watermark_);
      }
      db_.user_batches_.fetch_sub(1, std::memory_order_release);
    }

   private:
    ProvenanceDb& db_;
    util::RecursiveMutexLock lock_;
    graph::NodeId watermark_;
    bool committed_ = false;
    ProvStore::IngestBatch inner_;
  };

  // -------------------------------------------------- read snapshots
  //
  // A frozen, fully consistent view of everything committed so far,
  // exposing the complete query surface. Queries on a view never block
  // and are never blocked by the writer; results are identical no
  // matter how much is ingested after BeginSnapshot. Use one view per
  // reader thread; keep views short-lived under sustained ingest (live
  // snapshots pin WAL frames and defer checkpoints). Must be destroyed
  // before the ProvenanceDb.
  class SnapshotView {
   public:
    SnapshotView(SnapshotView&&) = default;
    SnapshotView& operator=(SnapshotView&&) = default;

    // The commit horizon this view observes.
    uint64_t commit_seq() const { return snap_->commit_seq(); }

    // The paper's query surface, frozen at commit_seq(). Semantics and
    // stats match the ProvenanceDb methods of the same names.
    util::Result<search::ContextualSearchResult> Search(
        const std::string& query,
        const search::ContextualSearchOptions& options = {});
    util::Result<search::ContextualSearchResult> TextualSearch(
        const std::string& query, size_t k = 10);
    util::Result<search::PersonalizationResult> Personalize(
        const std::string& query,
        const search::PersonalizeOptions& options = {});
    util::Result<search::TimeContextResult> TimeContext(
        const std::string& primary_query, const std::string& context_query,
        const search::TimeContextOptions& options = {});
    util::Result<search::LineageReport> TraceDownload(
        graph::NodeId download,
        const search::LineageOptions& options = {});
    util::Result<search::DescendantReport> DescendantDownloads(
        const std::string& url, const search::LineageOptions& options = {});

    // Raw graph cursors over the frozen view.
    graph::EdgeCursor Edges(graph::NodeId node, graph::Direction dir,
                            graph::QueryStats* stats = nullptr) const;
    graph::EdgeCursor Edges(graph::QueryStats* stats = nullptr) const;
    graph::NodeCursor Nodes(graph::NodeId min_id = 1,
                            graph::QueryStats* stats = nullptr) const;

    // Layer access (all snapshot-bound, read-only).
    const ProvStore& store() const { return *store_; }
    const storage::Snapshot& snapshot() const { return *snap_; }

   private:
    friend class ProvenanceDb;
    SnapshotView() = default;

    // Destruction order matters: the bound clones read through snap_,
    // so snap_ (declared first) must be destroyed last.
    std::unique_ptr<storage::Snapshot> snap_;
    std::unique_ptr<ProvStore> store_;
    std::unique_ptr<search::HistorySearcher> searcher_;
  };

  // Opens a snapshot of everything committed so far (draining the
  // ingest pipeline first when drain_before_query is on, then
  // refreshing the text index, so the frozen view is fully searchable
  // and covers every event already IngestAsync'd).
  // FailedPrecondition in journal mode (it rewrites the database file
  // in place) and inside an open Batch (the index refresh would
  // compose into the uncommitted batch, leaving the view silently
  // unsearchable for not-yet-indexed committed pages).
  util::Result<SnapshotView> BeginSnapshot();

  // ------------------------------------------------------ durability
  //
  // Makes every commit so far durable without waiting for the group
  // commit window to fill (-> Pager::SyncWal). No-op in journal mode,
  // where every commit is already durable on return.
  util::Status Sync();
  // Folds the write-ahead log into the database file now (->
  // Pager::Checkpoint). FailedPrecondition while snapshots are live (a
  // deferred checkpoint re-arms automatically at the next commit);
  // no-op in journal mode.
  util::Status Checkpoint();

  // ------------------------------------------------------- queries
  //
  // One-shot: each call runs against a private snapshot opened for just
  // that call (under WAL durability), so concurrent ingestion never
  // tears a result. Two cases stay on the serialized live path:
  // journal mode (no snapshots) and calls made inside an open Batch,
  // which read the batch's own uncommitted events. Prefer BeginSnapshot
  // when several queries must agree on one view or share its caches.
  //
  // Use case 2.1: provenance-aware contextual history search.
  util::Result<search::ContextualSearchResult> Search(
      const std::string& query,
      const search::ContextualSearchOptions& options = {});
  // The textual baseline (BM25 only), for comparison.
  util::Result<search::ContextualSearchResult> TextualSearch(
      const std::string& query, size_t k = 10);
  // Use case 2.2: private query expansion from the user's own history.
  util::Result<search::PersonalizationResult> Personalize(
      const std::string& query, const search::PersonalizeOptions& options = {});
  // Use case 2.3: co-open boosting ("wine associated with plane tickets").
  util::Result<search::TimeContextResult> TimeContext(
      const std::string& primary_query, const std::string& context_query,
      const search::TimeContextOptions& options = {});
  // Use case 2.4: first recognizable ancestor of a download.
  util::Result<search::LineageReport> TraceDownload(
      graph::NodeId download, const search::LineageOptions& options = {});
  // Use case 2.4: all downloads descending from an (untrusted) page.
  util::Result<search::DescendantReport> DescendantDownloads(
      const std::string& url, const search::LineageOptions& options = {});

  // ------------------------------------------------------ statistics
  //
  // One coherent storage counter set: commits, cache and buffer-pool
  // hit/miss/eviction counts, resident pool bytes, WAL/fsync cost (see
  // storage::PagerStats). Cheap; safe from any thread.
  storage::PagerStats storage_stats() {
    util::RecursiveMutexLock lock(mu_);
    if (closed_.load(std::memory_order_acquire)) return final_stats_;
    return db_->pager().stats();
  }

  // -------------------------------------------------- observability
  //
  // One-stop debug export of the whole engine: every registry
  // instrument — the process-wide latency histograms (WAL commit/fsync,
  // ingest stages, per-family query latency) plus each live subsystem's
  // counters, exported through pull collectors — and the slow-span ring
  // (obs/trace.hpp). DebugDump() is JSON (schema "bp-metrics-v1",
  // validated in CI against scripts/metrics_schema.json);
  // DebugDumpText() is Prometheus-style text. Safe from any thread;
  // both are dump-time exports that take no hot-path locks.
  std::string DebugDump() const;
  std::string DebugDumpText() const;

  // --------------------------------------------------- layer access
  //
  // The facade is the supported entry point; the layers stay reachable
  // for experiments, benches, and tests.
  storage::Db& db() { return *db_; }
  ProvStore& store() { return *store_; }
  search::HistorySearcher& searcher() { return *searcher_; }
  // Stream-id -> node mappings for events ingested through this facade.
  const capture::ProvenanceRecorder& recorder() const { return *recorder_; }
  // Subscribe additional sinks; they see exactly the ingested stream.
  capture::EventBus& bus() { return bus_; }

 private:
  ProvenanceDb() = default;

  // The post-Close error every operation returns (see Close()).
  static util::Status ClosedError() {
    return util::Status::FailedPrecondition("ProvenanceDb is closed");
  }
  // Batch's constructor guard: using a closed database is a caller bug.
  static ProvenanceDb& CheckOpenForBatch(ProvenanceDb& db) {
    BP_REQUIRE(!db.closed_.load(std::memory_order_acquire),
               "Batch on a closed ProvenanceDb");
    return db;
  }

  // Re-indexes pages added since the last text-backed query, first
  // undoing index state left behind by a rolled-back Batch.
  util::Status RefreshIndex() BP_REQUIRES(mu_);
  // Called by ~Batch on rollback; mu_ is held (the Batch holds it —
  // destructor bodies are outside the analysis, hence no caller check).
  void ScheduleIndexRestore(graph::NodeId watermark) BP_REQUIRES(mu_) {
    if (restore_watermark_ > watermark) restore_watermark_ = watermark;
    index_stale_ = true;
  }
  // BeginSnapshot body; mu_ must already be held. Graph-only one-shot
  // queries pass with_searcher=false to skip the text-index refresh
  // and the searcher bind (lineage never touches the text index).
  util::Result<SnapshotView> BeginSnapshotLocked(bool with_searcher)
      BP_REQUIRES(mu_);
  // True when one-shot queries should run on a private snapshot: WAL
  // durability and no open Batch (mid-batch queries keep the live,
  // read-your-own-writes path).
  bool UseSnapshotQueriesLocked() const BP_REQUIRES(mu_);

  // Read-your-writes for queries: drains the ingest pipeline so events
  // already IngestAsync'd are committed before the query opens its
  // view. Skipped when async is off, drain_before_query is off, or a
  // user Batch is open (see Batch's constructor). A drain failure is
  // the committer's sticky error — it surfaces on the next
  // IngestAsync/Flush; the query proceeds against what committed.
  void MaybeDrainForQuery() {
    if (pipeline_ == nullptr || !drain_before_query_ ||
        user_batches_.load(std::memory_order_acquire) > 0) {
      return;
    }
    (void)pipeline_->Drain();
  }

  // The one-shot dispatch every query method shares: after the
  // read-your-writes drain (which must happen BEFORE the lock — the
  // committer takes mu_ per batch), under the writer lock either open a
  // private snapshot and run `on_view` against it UNLOCKED (the
  // concurrent path), or run `on_live` while still holding the lock
  // (journal mode / mid-batch). Both callables return the same Result
  // type; on_live is responsible for RefreshIndex when the query is
  // text-backed.
  template <typename ViewFn, typename LiveFn>
  auto OneShot(bool with_searcher, ViewFn&& on_view, LiveFn&& on_live)
      -> decltype(on_live()) {
    MaybeDrainForQuery();
    util::RecursiveMutexLock lock(mu_);
    if (closed_.load(std::memory_order_acquire)) return ClosedError();
    if (UseSnapshotQueriesLocked()) {
      auto view = BeginSnapshotLocked(with_searcher);
      if (!view.ok()) return view.status();
      lock.Unlock();
      return on_view(*view);
    }
    return on_live();
  }

  // Serializes writers (ingestion, index refresh, snapshot creation,
  // durability controls) against each other. Recursive because Batch
  // holds it across user Ingest calls. Queries on an open SnapshotView
  // never take it.
  util::RecursiveMutex mu_;

  std::string path_;  // database path: the `db` label on exported samples
  // Set by Close() (under mu_; atomic so lock-free entry points —
  // IngestAsync, Batch's guard — can read it). Once true, every member
  // below except final_stats_ may be null.
  std::atomic<bool> closed_{false};
  // The last stats() before teardown; what storage_stats() reports
  // after Close.
  storage::PagerStats final_stats_;
  std::unique_ptr<storage::Db> db_;
  std::unique_ptr<ProvStore> store_;
  std::unique_ptr<capture::ProvenanceRecorder> recorder_;
  capture::EventBus bus_;
  std::unique_ptr<search::HistorySearcher> searcher_;
  size_t ingest_batch_ = 256;
  bool index_stale_ BP_GUARDED_BY(mu_) = false;
  // Events ingested since the last index refresh — the maintenance
  // lane's backlog gate (see AsyncOptions::index_min_backlog).
  size_t stale_events_ BP_GUARDED_BY(mu_) = 0;
  size_t index_min_backlog_ = 1024;
  // Watermark to rewind the searcher to before the next re-index
  // (UINT64_MAX = nothing pending); set by rolled-back Batches.
  graph::NodeId restore_watermark_ BP_GUARDED_BY(mu_) = UINT64_MAX;

  // --- async ingest pipeline ---------------------------------------
  // The committer-thread callbacks behind the pipeline: one storage
  // transaction per event batch, and the adaptive group close.
  util::Result<bool> CommitEventBatch(
      std::vector<capture::BrowserEvent>&& events, size_t backlog);
  util::Status SyncPipeline();
  // Maintenance-lane callback (async.index_maintenance): refreshes the
  // text index under mu_ — the refresh transaction rides the TEXT write
  // domain (WAL stream 1) — then fsyncs that stream OUTSIDE mu_, so the
  // fsync overlaps the committer's stream-0 group commit. Gated on
  // index_min_backlog_ events since the last refresh.
  util::Status MaintainIndex();

  bool drain_before_query_ = true;
  // Open user Batches (writer lock held by a user thread); > 0 makes
  // MaybeDrainForQuery a no-op.
  std::atomic<int> user_batches_{0};
  std::unique_ptr<capture::AsyncSink> async_sink_;

  // Observability: one bp_query_us histogram per query family (labels
  // family="search" etc.), recorded by the one-shot facade methods.
  // Registry-owned, fetched once at Open.
  obs::Histogram* query_us_search_ = nullptr;
  obs::Histogram* query_us_textual_ = nullptr;
  obs::Histogram* query_us_personalize_ = nullptr;
  obs::Histogram* query_us_time_context_ = nullptr;
  obs::Histogram* query_us_trace_ = nullptr;
  obs::Histogram* query_us_descendants_ = nullptr;
  // Pull collector exporting pipeline_stats(); removed in the
  // destructor BEFORE the pipeline is torn down.
  uint64_t metrics_token_ = 0;
  // Declared last (and reset first in the destructor): joining the
  // committer must happen while every member it reaches into is alive.
  std::unique_ptr<capture::IngestPipeline> pipeline_;
};

}  // namespace bp::prov
