// ProvenanceDb: the one supported way to stand the system up.
//
// Owns the whole stack — storage engine (Db), provenance store, event
// bus + recorder, and the history searcher — behind a single
// Open(path, Options), and exposes the paper's query surface directly:
//
//   auto db = prov::ProvenanceDb::Open("history.db", options);
//   BP_RETURN_IF_ERROR((*db)->IngestAll(session.events()));
//   auto hits = (*db)->Search("rosebud");
//   auto lineage = (*db)->TraceDownload(download_node);
//
// Every query result carries the QueryStats its cursors accumulated.
// The text index is refreshed lazily: ingestion marks it stale and the
// next text-backed query re-indexes the new pages, so bursts of capture
// never pay indexing latency inline.
//
// The owned EventBus is exposed so additional sinks (e.g. the Places
// baseline recorder used by the storage-overhead experiment) can ride
// the same stream; Publish delivers to every sink before reporting the
// first error, keeping those streams identical.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "capture/bus.hpp"
#include "capture/recorders.hpp"
#include "prov/prov_store.hpp"
#include "search/history_search.hpp"
#include "search/lineage.hpp"
#include "search/personalize.hpp"
#include "search/time_context.hpp"
#include "storage/db.hpp"
#include "util/status.hpp"

namespace bp::prov {

class ProvenanceDb {
 public:
  struct Options {
    // Storage knobs (env, cache, durability). The default WAL + group
    // commit configuration is the sustained-capture path; pass a MemEnv
    // via db.env for tests and examples.
    storage::DbOptions db;
    // Schema knobs (versioning policy, close-time recording).
    ProvOptions prov;
    // Events per storage transaction in IngestAll.
    size_t ingest_batch = 256;

    Options() {
      db.durability = storage::DurabilityMode::kWal;
      db.wal_group_commit = 8;
    }
  };

  // Opens (creating if needed) the full stack at `path`.
  static util::Result<std::unique_ptr<ProvenanceDb>> Open(
      const std::string& path, Options options = {});

  ~ProvenanceDb();
  ProvenanceDb(const ProvenanceDb&) = delete;
  ProvenanceDb& operator=(const ProvenanceDb&) = delete;

  // ----------------------------------------------------- ingestion

  // Publishes one event to every subscribed sink.
  util::Status Ingest(const capture::BrowserEvent& event);

  // Publishes all events, `ingest_batch` per storage transaction (with
  // WAL group commit, adjacent batches additionally share an fsync).
  util::Status IngestAll(const std::vector<capture::BrowserEvent>& events);

  // Groups many Ingest calls into one storage transaction. Destruction
  // without Commit rolls the batch back.
  //
  //   { prov::ProvenanceDb::Batch batch(*db);
  //     ... db->Ingest(...); db->Ingest(...); ...
  //     BP_RETURN_IF_ERROR(batch.Commit()); }
  class Batch {
   public:
    explicit Batch(ProvenanceDb& db) : inner_(*db.store_) {}
    util::Status Commit() { return inner_.Commit(); }

   private:
    ProvStore::IngestBatch inner_;
  };

  // ------------------------------------------------------- queries
  //
  // Use case 2.1: provenance-aware contextual history search.
  util::Result<search::ContextualSearchResult> Search(
      const std::string& query,
      const search::ContextualSearchOptions& options = {});
  // The textual baseline (BM25 only), for comparison.
  util::Result<search::ContextualSearchResult> TextualSearch(
      const std::string& query, size_t k = 10);
  // Use case 2.2: private query expansion from the user's own history.
  util::Result<search::PersonalizationResult> Personalize(
      const std::string& query, const search::PersonalizeOptions& options = {});
  // Use case 2.3: co-open boosting ("wine associated with plane tickets").
  util::Result<search::TimeContextResult> TimeContext(
      const std::string& primary_query, const std::string& context_query,
      const search::TimeContextOptions& options = {});
  // Use case 2.4: first recognizable ancestor of a download.
  util::Result<search::LineageReport> TraceDownload(
      graph::NodeId download, const search::LineageOptions& options = {});
  // Use case 2.4: all downloads descending from an (untrusted) page.
  util::Result<search::DescendantReport> DescendantDownloads(
      const std::string& url, const search::LineageOptions& options = {});

  // --------------------------------------------------- layer access
  //
  // The facade is the supported entry point; the layers stay reachable
  // for experiments, benches, and tests.
  storage::Db& db() { return *db_; }
  ProvStore& store() { return *store_; }
  search::HistorySearcher& searcher() { return *searcher_; }
  // Stream-id -> node mappings for events ingested through this facade.
  const capture::ProvenanceRecorder& recorder() const { return *recorder_; }
  // Subscribe additional sinks; they see exactly the ingested stream.
  capture::EventBus& bus() { return bus_; }

 private:
  ProvenanceDb() = default;

  // Re-indexes pages added since the last text-backed query.
  util::Status RefreshIndex();

  std::unique_ptr<storage::Db> db_;
  std::unique_ptr<ProvStore> store_;
  std::unique_ptr<capture::ProvenanceRecorder> recorder_;
  capture::EventBus bus_;
  std::unique_ptr<search::HistorySearcher> searcher_;
  size_t ingest_batch_ = 256;
  bool index_stale_ = false;
};

}  // namespace bp::prov
