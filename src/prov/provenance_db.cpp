#include "prov/provenance_db.hpp"

#include <algorithm>

namespace bp::prov {

using util::Result;
using util::Status;

Result<std::unique_ptr<ProvenanceDb>> ProvenanceDb::Open(
    const std::string& path, Options options) {
  std::unique_ptr<ProvenanceDb> out(new ProvenanceDb());
  out->ingest_batch_ = std::max<size_t>(1, options.ingest_batch);
  BP_ASSIGN_OR_RETURN(out->db_, storage::Db::Open(path, options.db));
  BP_ASSIGN_OR_RETURN(out->store_,
                      ProvStore::Open(*out->db_, options.prov));
  out->recorder_ =
      std::make_unique<capture::ProvenanceRecorder>(*out->store_);
  out->bus_.Subscribe(out->recorder_.get());
  BP_ASSIGN_OR_RETURN(out->searcher_,
                      search::HistorySearcher::Open(*out->db_, *out->store_));
  return out;
}

ProvenanceDb::~ProvenanceDb() = default;

Status ProvenanceDb::Ingest(const capture::BrowserEvent& event) {
  index_stale_ = true;
  return bus_.Publish(event);
}

Status ProvenanceDb::IngestAll(
    const std::vector<capture::BrowserEvent>& events) {
  for (size_t start = 0; start < events.size(); start += ingest_batch_) {
    const size_t end = std::min(events.size(), start + ingest_batch_);
    Batch batch(*this);
    for (size_t i = start; i < end; ++i) {
      BP_RETURN_IF_ERROR(Ingest(events[i]));
    }
    BP_RETURN_IF_ERROR(batch.Commit());
  }
  return Status::Ok();
}

Status ProvenanceDb::RefreshIndex() {
  if (!index_stale_) return Status::Ok();
  BP_RETURN_IF_ERROR(searcher_->IndexNewPages());
  index_stale_ = false;
  return Status::Ok();
}

Result<search::ContextualSearchResult> ProvenanceDb::Search(
    const std::string& query,
    const search::ContextualSearchOptions& options) {
  BP_RETURN_IF_ERROR(RefreshIndex());
  return searcher_->ContextualSearch(query, options);
}

Result<search::ContextualSearchResult> ProvenanceDb::TextualSearch(
    const std::string& query, size_t k) {
  BP_RETURN_IF_ERROR(RefreshIndex());
  return searcher_->TextualSearch(query, k);
}

Result<search::PersonalizationResult> ProvenanceDb::Personalize(
    const std::string& query, const search::PersonalizeOptions& options) {
  BP_RETURN_IF_ERROR(RefreshIndex());
  return search::PersonalizeQuery(*searcher_, query, options);
}

Result<search::TimeContextResult> ProvenanceDb::TimeContext(
    const std::string& primary_query, const std::string& context_query,
    const search::TimeContextOptions& options) {
  BP_RETURN_IF_ERROR(RefreshIndex());
  return search::TimeContextualSearch(*searcher_, primary_query,
                                      context_query, options);
}

Result<search::LineageReport> ProvenanceDb::TraceDownload(
    graph::NodeId download, const search::LineageOptions& options) {
  return search::TraceDownload(*store_, download, options);
}

Result<search::DescendantReport> ProvenanceDb::DescendantDownloads(
    const std::string& url, const search::LineageOptions& options) {
  return search::DescendantDownloads(*store_, url, options);
}

}  // namespace bp::prov
