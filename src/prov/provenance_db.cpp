#include "prov/provenance_db.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/strings.hpp"

namespace bp::prov {

using util::Result;
using util::Status;

Result<std::unique_ptr<ProvenanceDb>> ProvenanceDb::Open(
    const std::string& path, Options options) {
  // Validate up front: these zeros used to be silently coerced (or
  // worse, wedge the pipeline downstream); an explicit error at Open is
  // the only moment the caller is certainly looking.
  if (options.ingest_batch == 0) {
    return Status::InvalidArgument(
        "Options::ingest_batch must be >= 1 (events per storage "
        "transaction)");
  }
  if (options.async.enabled && options.async.queue_capacity == 0) {
    return Status::InvalidArgument(
        "Options::async.queue_capacity must be >= 1 when the async "
        "pipeline is enabled");
  }
  // An injected pool and a pool size that disagree is a configuration
  // contradiction, not a preference: the injected pool's budget always
  // wins, so a caller that set both to different values is mistaken
  // about one of them. pool_bytes = 0 means "defer to the injected
  // pool" (as does leaving it equal to the pool's budget).
  if (options.db.buffer_pool != nullptr && options.db.pool_bytes != 0 &&
      options.db.pool_bytes != options.db.buffer_pool->byte_budget()) {
    return Status::InvalidArgument(util::StrFormat(
        "Options::db.pool_bytes (%zu) disagrees with the injected "
        "db.buffer_pool's byte budget (%zu); set pool_bytes to 0 (or to "
        "the pool's budget) when sharing a pool",
        options.db.pool_bytes, options.db.buffer_pool->byte_budget()));
  }
  std::unique_ptr<ProvenanceDb> out(new ProvenanceDb());
  out->path_ = path;
  out->ingest_batch_ = options.ingest_batch;
  BP_ASSIGN_OR_RETURN(out->db_, storage::Db::Open(path, options.db));
  BP_ASSIGN_OR_RETURN(out->store_,
                      ProvStore::Open(*out->db_, options.prov));
  out->recorder_ =
      std::make_unique<capture::ProvenanceRecorder>(*out->store_);
  out->bus_.Subscribe(out->recorder_.get());
  BP_ASSIGN_OR_RETURN(out->searcher_,
                      search::HistorySearcher::Open(*out->db_, *out->store_));

  // Per-family one-shot query latency histograms: one bp_query_us
  // distribution per query family, shared process-wide (the family
  // label is the axis; per-database attribution is what the `db` label
  // on collector samples is for).
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  auto family_hist = [&reg](const char* family) {
    return reg.GetHistogram(
        "bp_query_us", std::string("family=\"") + family + "\"",
        "One-shot query latency by family (us)");
  };
  out->query_us_search_ = family_hist("search");
  out->query_us_textual_ = family_hist("textual_search");
  out->query_us_personalize_ = family_hist("personalize");
  out->query_us_time_context_ = family_hist("time_context");
  out->query_us_trace_ = family_hist("trace_download");
  out->query_us_descendants_ = family_hist("descendant_downloads");

  // Stand the async pipeline up LAST: its committer thread reaches into
  // every member above from the moment it starts.
  out->drain_before_query_ = options.async.drain_before_query;
  out->index_min_backlog_ = options.async.index_min_backlog;
  if (options.async.enabled) {
    capture::PipelineOptions popts;
    popts.queue_capacity = options.async.queue_capacity;
    popts.max_batch = out->ingest_batch_;
    popts.backpressure = options.async.backpressure;
    ProvenanceDb* raw = out.get();
    out->async_sink_ = std::make_unique<capture::AsyncSink>(
        [raw](const capture::BrowserEvent& event) {
          util::Result<IngestTicket> ticket = raw->IngestAsync(event);
          return ticket.ok() ? util::Status::Ok() : ticket.status();
        });
    capture::IngestPipeline::MaintenanceFn maintenance;
    if (options.async.index_maintenance) {
      maintenance = [raw] { return raw->MaintainIndex(); };
    }
    out->pipeline_ = std::make_unique<capture::IngestPipeline>(
        popts,
        [raw](std::vector<capture::BrowserEvent>&& events, size_t backlog) {
          return raw->CommitEventBatch(std::move(events), backlog);
        },
        [raw] { return raw->SyncPipeline(); }, std::move(maintenance));
    // Export the pipeline's own counters at dump time (the Pager
    // registers its collector itself in Pager::Open). Safe raw capture:
    // the destructor removes the collector before touching pipeline_.
    out->metrics_token_ = reg.AddCollector([raw](obs::CollectionSink& sink) {
      const capture::PipelineStats p = raw->pipeline_stats();
      const std::string labels = "db=\"" + raw->path_ + "\"";
      sink.Counter("bp_ingest_enqueued", labels,
                   "Events accepted into the ingest queue", p.enqueued);
      sink.Counter("bp_ingest_committed", labels,
                   "Events whose transaction committed", p.committed);
      sink.Counter("bp_ingest_batches", labels,
                   "Storage transactions the committer ran", p.batches);
      sink.Counter("bp_ingest_coalesced_txns", labels,
                   "Batches carrying more than one event", p.coalesced_txns);
      sink.Counter("bp_ingest_early_flushes", labels,
                   "Group-commit windows closed early", p.early_flushes);
      sink.Counter("bp_ingest_rejected", labels,
                   "Enqueues refused on a full queue", p.rejected);
      sink.Counter("bp_ingest_blocked_enqueues", labels,
                   "Enqueues that waited on a full queue",
                   p.blocked_enqueues);
      sink.Gauge("bp_ingest_max_queue_depth", labels,
                 "Deepest the ingest queue ever got", p.max_queue_depth);
      sink.Gauge("bp_ingest_mean_queue_depth", labels,
                 "Mean queue depth over enqueue/pop samples",
                 p.mean_queue_depth);
      sink.Counter("bp_ingest_maintenance_runs", labels,
                   "Background index-maintenance passes", p.maintenance_runs);
    });
  }
  return out;
}

ProvenanceDb::~ProvenanceDb() {
  // Detach from the metrics registry first: RemoveCollector blocks out
  // in-flight dumps, so no dump can reach pipeline_ mid-teardown.
  if (metrics_token_ != 0) {
    obs::MetricsRegistry::Global().RemoveCollector(metrics_token_);
  }
  // Join the committer (draining what it can) before any member it
  // reaches into goes away. After an explicit Close() both of the
  // above are already done and every reset below is a no-op.
  pipeline_.reset();
}

Status ProvenanceDb::Close() {
  if (closed_.load(std::memory_order_acquire)) return Status::Ok();
  // Refuse while state the teardown would invalidate is still live.
  // Checked before any irreversible step so a refused Close leaves a
  // fully working database.
  {
    util::RecursiveMutexLock lock(mu_);
    if (db_->pager().InTransaction()) {
      return Status::FailedPrecondition(
          "Close inside an open Batch: commit or roll it back first");
    }
    if (db_->pager().live_snapshots() > 0) {
      return Status::FailedPrecondition(
          "Close with live SnapshotViews: destroy every view first");
    }
  }
  // Drain the pipeline OUTSIDE mu_ (the committer takes it per batch),
  // then join the committer and detach the collector — the same
  // sequence as the destructor, but with the drain's verdict kept.
  Status drain_status;
  if (pipeline_ != nullptr) drain_status = pipeline_->Drain();
  if (metrics_token_ != 0) {
    obs::MetricsRegistry::Global().RemoveCollector(metrics_token_);
    metrics_token_ = 0;
  }
  pipeline_.reset();
  async_sink_.reset();

  util::RecursiveMutexLock lock(mu_);
  // Fold the log into the database file now (no-op in journal mode).
  // ~Pager would do this too, but here the error surfaces — and on
  // failure the log simply stays behind for the next Open to replay,
  // so closing remains safe to continue.
  Status checkpoint_status;
  if (db_->pager().durability() == storage::DurabilityMode::kWal) {
    checkpoint_status = db_->pager().Checkpoint();
  }
  final_stats_ = db_->pager().stats();
  closed_.store(true, std::memory_order_release);
  // Teardown in dependency order; ~Pager releases this database's
  // frames from a shared buffer pool (BufferPool::DropOwner).
  searcher_.reset();
  bus_ = capture::EventBus();  // drop the raw recorder pointer first
  recorder_.reset();
  store_.reset();
  db_.reset();
  if (!drain_status.ok()) return drain_status;
  return checkpoint_status;
}

// ------------------------------------------------------ async ingest

Result<ProvenanceDb::IngestTicket> ProvenanceDb::IngestAsync(
    const capture::BrowserEvent& event) {
  if (closed_.load(std::memory_order_acquire)) return ClosedError();
  if (pipeline_ == nullptr) {
    return Status::FailedPrecondition(
        "async ingest is disabled (Options::async.enabled = false)");
  }
  return pipeline_->Enqueue(event);
}

Status ProvenanceDb::Flush(IngestTicket ticket) {
  if (closed_.load(std::memory_order_acquire)) return ClosedError();
  if (pipeline_ == nullptr) return Status::Ok();  // nothing is buffered
  return pipeline_->Flush(ticket);
}

Status ProvenanceDb::Drain() {
  if (closed_.load(std::memory_order_acquire)) return ClosedError();
  if (pipeline_ == nullptr) return Status::Ok();
  return pipeline_->Drain();
}

Status ProvenanceDb::pipeline_status() const {
  return pipeline_ == nullptr ? Status::Ok() : pipeline_->status();
}

capture::PipelineStats ProvenanceDb::pipeline_stats() const {
  return pipeline_ == nullptr ? capture::PipelineStats{}
                              : pipeline_->stats();
}

// Committer thread: one storage transaction for the whole batch. The
// writer lock is held end to end, so no query can interleave — which is
// why, unlike the user-facing Batch, a rollback here needs no searcher
// index restore (nothing can have indexed the doomed pages).
Result<bool> ProvenanceDb::CommitEventBatch(
    std::vector<capture::BrowserEvent>&& events, size_t backlog) {
  (void)backlog;  // batch size already adapted by the pipeline's pop
  util::RecursiveMutexLock lock(mu_);
  ProvStore::IngestBatch batch(*store_);
  for (const capture::BrowserEvent& event : events) {
    Status published = bus_.Publish(event);
    if (!published.ok()) {
      // ~IngestBatch rolls the whole transaction back: the batch is
      // all-or-nothing, so a mid-batch sink failure never leaves a
      // half-applied event group behind.
      return published;
    }
  }
  index_stale_ = true;
  stale_events_ += events.size();
  Status committed = batch.Commit();
  if (!committed.ok()) {
    // Commit marks the AutoTxn retired before the pager runs, so a
    // failed pager commit leaves the transaction open; roll it back so
    // the pager is usable when the sticky error is later cleared by a
    // reopen.
    if (db_->pager().InTransaction()) (void)db_->pager().Rollback();
    return committed;
  }
  // Durable already? True when the commit filled and flushed the
  // group-commit window (or the mode has no durability lag).
  return db_->pager().durability() != storage::DurabilityMode::kWal ||
         db_->pager().unsynced_commits() == 0;
}

// Deliberately NOT under mu_: FlushPending only takes the pager's
// per-domain stream mutexes (WalWriter::Sync is the cross-thread half
// of the WAL protocol), so the committer's group-close fsync can
// overlap a maintenance-lane refresh running under mu_ — and the
// maintenance fsync of stream 1 can overlap this one on stream 0.
// Ack correctness is untouched: FlushPending syncs EVERY domain, and
// any commit sequenced before the committer's last batch is visible to
// its unsynced-count loads (the committer held mu_ for that batch
// after the earlier commit released it).
Status ProvenanceDb::SyncPipeline() {
  return db_->pager().FlushPending().status();
}

Status ProvenanceDb::Ingest(const capture::BrowserEvent& event) {
  util::RecursiveMutexLock lock(mu_);
  if (closed_.load(std::memory_order_acquire)) return ClosedError();
  index_stale_ = true;
  ++stale_events_;
  return bus_.Publish(event);
}

Status ProvenanceDb::IngestAll(
    const std::vector<capture::BrowserEvent>& events) {
  if (closed_.load(std::memory_order_acquire)) return ClosedError();
  for (size_t start = 0; start < events.size(); start += ingest_batch_) {
    const size_t end = std::min(events.size(), start + ingest_batch_);
    Batch batch(*this);
    for (size_t i = start; i < end; ++i) {
      BP_RETURN_IF_ERROR(Ingest(events[i]));
    }
    BP_RETURN_IF_ERROR(batch.Commit());
  }
  return Status::Ok();
}

Status ProvenanceDb::RefreshIndex() {
  if (restore_watermark_ != UINT64_MAX) {
    // A Batch rolled back after a mid-batch query indexed its pages:
    // rewind past the rolled-back node ids (now reusable) and re-read
    // the reverted corpus stats before indexing anything new.
    BP_RETURN_IF_ERROR(searcher_->RestoreIndexState(restore_watermark_));
    restore_watermark_ = UINT64_MAX;
  }
  if (!index_stale_) return Status::Ok();
  BP_RETURN_IF_ERROR(searcher_->IndexNewPages());
  index_stale_ = false;
  stale_events_ = 0;
  return Status::Ok();
}

// Maintenance thread (async.index_maintenance): the refresh transaction
// itself runs under mu_ like any writer — InvertedIndex::Flush routes
// its WAL frames to the TEXT domain's stream — but the durability step
// happens AFTER mu_ is released, so this thread's fsync of stream 1
// overlaps the committer's group-commit fsync of stream 0. On a
// single-stream database the domain sync below is a no-op (nothing was
// routed to stream 1) and the refresh rides the next ack like any
// other commit.
Status ProvenanceDb::MaintainIndex() {
  {
    util::RecursiveMutexLock lock(mu_);
    if (closed_.load(std::memory_order_acquire)) return Status::Ok();
    if (!index_stale_ || stale_events_ < index_min_backlog_) {
      return Status::Ok();  // not enough backlog to be worth a pass
    }
    BP_RETURN_IF_ERROR(RefreshIndex());
  }
  // Close() joins this thread (via the pipeline) before db_ is torn
  // down, so the unlocked access is safe.
  return db_->pager().SyncWalDomain(storage::kTextDomain);
}

Status ProvenanceDb::Sync() {
  util::RecursiveMutexLock lock(mu_);
  if (closed_.load(std::memory_order_acquire)) return ClosedError();
  return db_->pager().SyncWal();
}

Status ProvenanceDb::Checkpoint() {
  util::RecursiveMutexLock lock(mu_);
  if (closed_.load(std::memory_order_acquire)) return ClosedError();
  if (db_->pager().durability() != storage::DurabilityMode::kWal) {
    return Status::Ok();  // nothing to fold: the db file is current
  }
  return db_->pager().Checkpoint();
}

// ------------------------------------------------------- snapshots

Result<ProvenanceDb::SnapshotView> ProvenanceDb::BeginSnapshotLocked(
    bool with_searcher) {
  SnapshotView view;
  if (with_searcher) {
    // Index first so text search over the frozen view covers everything
    // committed so far. Graph-only callers skip this: lineage queries
    // never touch the text index, and the header promises indexing
    // latency is paid only by text-backed queries.
    BP_RETURN_IF_ERROR(RefreshIndex());
  }
  BP_ASSIGN_OR_RETURN(view.snap_, db_->pager().BeginRead());
  view.store_ = store_->AtSnapshot(*view.snap_);
  if (with_searcher) {
    BP_ASSIGN_OR_RETURN(view.searcher_,
                        searcher_->AtSnapshot(*view.snap_, *view.store_));
  }
  return view;
}

Result<ProvenanceDb::SnapshotView> ProvenanceDb::BeginSnapshot() {
  // Read-your-writes: everything IngestAsync'd so far must be inside
  // the frozen view (must run before the lock; the committer takes it).
  MaybeDrainForQuery();
  util::RecursiveMutexLock lock(mu_);
  if (closed_.load(std::memory_order_acquire)) return ClosedError();
  if (db_->pager().InTransaction()) {
    // A snapshot here could not keep the "fully searchable" promise:
    // the index refresh would compose into the open batch (uncommitted,
    // so invisible to the snapshot), silently hiding committed pages
    // the stale index has not covered yet. Refuse instead.
    return Status::FailedPrecondition(
        "BeginSnapshot inside an open Batch: take the snapshot before "
        "the batch or after it commits");
  }
  return BeginSnapshotLocked(/*with_searcher=*/true);
}

namespace {

// Runs `fn` and folds the page-level work the snapshot performed during
// it (shared-pool hits vs. log/database fetches) into the result's
// QueryStats. Deltas, not totals, so attribution stays per-query even
// on a long-lived SnapshotView answering many queries.
template <typename Fn>
auto WithPageStats(const storage::Snapshot& snap, Fn&& fn)
    -> decltype(fn()) {
  const storage::SnapshotStats before = snap.stats();
  auto result = fn();
  if (result.ok()) {
    const storage::SnapshotStats after = snap.stats();
    result.value().stats.pool_hits += after.pool_hits - before.pool_hits;
    result.value().stats.pages_fetched +=
        after.pages_read - before.pages_read;
  }
  return result;
}

}  // namespace

// One-shot queries use a private snapshot when one is available AND
// honest: WAL durability only (journal mode rewrites the database file
// in place), and not inside an open Batch — a snapshot excludes the
// batch's uncommitted events, but a caller querying mid-batch expects
// to read their own writes, so that case stays on the serialized live
// path (which the held lock makes safe).
bool ProvenanceDb::UseSnapshotQueriesLocked() const {
  return db_->pager().durability() == storage::DurabilityMode::kWal &&
         !db_->pager().InTransaction();
}

Result<search::ContextualSearchResult> ProvenanceDb::SnapshotView::Search(
    const std::string& query,
    const search::ContextualSearchOptions& options) {
  return WithPageStats(*snap_, [&] {
    return searcher_->ContextualSearch(query, options);
  });
}

Result<search::ContextualSearchResult>
ProvenanceDb::SnapshotView::TextualSearch(const std::string& query,
                                          size_t k) {
  return WithPageStats(*snap_,
                       [&] { return searcher_->TextualSearch(query, k); });
}

Result<search::PersonalizationResult> ProvenanceDb::SnapshotView::Personalize(
    const std::string& query, const search::PersonalizeOptions& options) {
  return WithPageStats(*snap_, [&] {
    return search::PersonalizeQuery(*searcher_, query, options);
  });
}

Result<search::TimeContextResult> ProvenanceDb::SnapshotView::TimeContext(
    const std::string& primary_query, const std::string& context_query,
    const search::TimeContextOptions& options) {
  return WithPageStats(*snap_, [&] {
    return search::TimeContextualSearch(*searcher_, primary_query,
                                        context_query, options);
  });
}

Result<search::LineageReport> ProvenanceDb::SnapshotView::TraceDownload(
    graph::NodeId download, const search::LineageOptions& options) {
  return WithPageStats(*snap_, [&] {
    return search::TraceDownload(*store_, download, options);
  });
}

Result<search::DescendantReport>
ProvenanceDb::SnapshotView::DescendantDownloads(
    const std::string& url, const search::LineageOptions& options) {
  return WithPageStats(*snap_, [&] {
    return search::DescendantDownloads(*store_, url, options);
  });
}

graph::EdgeCursor ProvenanceDb::SnapshotView::Edges(
    graph::NodeId node, graph::Direction dir,
    graph::QueryStats* stats) const {
  return store_->graph().Edges(node, dir, stats);
}

graph::EdgeCursor ProvenanceDb::SnapshotView::Edges(
    graph::QueryStats* stats) const {
  return store_->graph().Edges(stats);
}

graph::NodeCursor ProvenanceDb::SnapshotView::Nodes(
    graph::NodeId min_id, graph::QueryStats* stats) const {
  return store_->graph().Nodes(min_id, stats);
}

// --------------------------------------------------- one-shot queries
//
// All six dispatch through OneShot (provenance_db.hpp): under WAL
// durability each call opens a private snapshot — the lock is held
// only while the snapshot is created, and the query itself runs
// against the frozen view, concurrently with ingestion and other
// readers. Journal mode and mid-batch calls run the live path under
// the lock — the pre-snapshot behavior.

Result<search::ContextualSearchResult> ProvenanceDb::Search(
    const std::string& query,
    const search::ContextualSearchOptions& options) {
  obs::ScopedTimerUs timer(query_us_search_);
  obs::ScopedSpan span("query.search");
  return OneShot(
      /*with_searcher=*/true,
      [&](SnapshotView& view) { return view.Search(query, options); },
      [&]() -> Result<search::ContextualSearchResult> {
        // OneShot invokes this while holding mu_; the analysis checks
        // lambda bodies as separate functions, so restate that here.
        mu_.AssertHeld();
        BP_RETURN_IF_ERROR(RefreshIndex());
        return searcher_->ContextualSearch(query, options);
      });
}

Result<search::ContextualSearchResult> ProvenanceDb::TextualSearch(
    const std::string& query, size_t k) {
  obs::ScopedTimerUs timer(query_us_textual_);
  obs::ScopedSpan span("query.textual_search");
  return OneShot(
      /*with_searcher=*/true,
      [&](SnapshotView& view) { return view.TextualSearch(query, k); },
      [&]() -> Result<search::ContextualSearchResult> {
        mu_.AssertHeld();  // held by OneShot (see Search above)
        BP_RETURN_IF_ERROR(RefreshIndex());
        return searcher_->TextualSearch(query, k);
      });
}

Result<search::PersonalizationResult> ProvenanceDb::Personalize(
    const std::string& query, const search::PersonalizeOptions& options) {
  obs::ScopedTimerUs timer(query_us_personalize_);
  obs::ScopedSpan span("query.personalize");
  return OneShot(
      /*with_searcher=*/true,
      [&](SnapshotView& view) { return view.Personalize(query, options); },
      [&]() -> Result<search::PersonalizationResult> {
        mu_.AssertHeld();  // held by OneShot (see Search above)
        BP_RETURN_IF_ERROR(RefreshIndex());
        return search::PersonalizeQuery(*searcher_, query, options);
      });
}

Result<search::TimeContextResult> ProvenanceDb::TimeContext(
    const std::string& primary_query, const std::string& context_query,
    const search::TimeContextOptions& options) {
  obs::ScopedTimerUs timer(query_us_time_context_);
  obs::ScopedSpan span("query.time_context");
  return OneShot(
      /*with_searcher=*/true,
      [&](SnapshotView& view) {
        return view.TimeContext(primary_query, context_query, options);
      },
      [&]() -> Result<search::TimeContextResult> {
        mu_.AssertHeld();  // held by OneShot (see Search above)
        BP_RETURN_IF_ERROR(RefreshIndex());
        return search::TimeContextualSearch(*searcher_, primary_query,
                                            context_query, options);
      });
}

Result<search::LineageReport> ProvenanceDb::TraceDownload(
    graph::NodeId download, const search::LineageOptions& options) {
  obs::ScopedTimerUs timer(query_us_trace_);
  obs::ScopedSpan span("query.trace_download");
  return OneShot(
      /*with_searcher=*/false,
      [&](SnapshotView& view) {
        return view.TraceDownload(download, options);
      },
      [&]() -> Result<search::LineageReport> {
        return search::TraceDownload(*store_, download, options);
      });
}

Result<search::DescendantReport> ProvenanceDb::DescendantDownloads(
    const std::string& url, const search::LineageOptions& options) {
  obs::ScopedTimerUs timer(query_us_descendants_);
  obs::ScopedSpan span("query.descendant_downloads");
  return OneShot(
      /*with_searcher=*/false,
      [&](SnapshotView& view) {
        return view.DescendantDownloads(url, options);
      },
      [&]() -> Result<search::DescendantReport> {
        return search::DescendantDownloads(*store_, url, options);
      });
}

// --------------------------------------------------- observability

std::string ProvenanceDb::DebugDump() const {
  return "{\n  \"schema\": \"bp-metrics-v1\",\n  \"metrics\": " +
         obs::MetricsRegistry::Global().DumpJsonMetricsArray() + ",\n  " +
         obs::Tracer::Global().DumpJsonSpans() + "\n}\n";
}

std::string ProvenanceDb::DebugDumpText() const {
  return obs::MetricsRegistry::Global().DumpText();
}

}  // namespace bp::prov
