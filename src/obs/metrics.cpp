#include "obs/metrics.hpp"

#include <bit>
#include <chrono>
#include <cmath>

#include "util/strings.hpp"

namespace bp::obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// JSON string escaping for names/labels/help (they may carry quotes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  // %.17g round-trips doubles; integers stay integer-looking.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return util::StrFormat("%lld", static_cast<long long>(v));
  }
  return util::StrFormat("%.17g", v);
}

}  // namespace

// ------------------------------------------------------------- Counter

size_t Counter::StripeIndex() {
  // One stripe per thread, assigned round-robin at first use: cheaper
  // and better-spread than hashing the thread id on every Add.
  static std::atomic<size_t> next{0};
  thread_local size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

// ----------------------------------------------------------- Histogram

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  // exponent >= 3 since value >= kSubBuckets = 2^3. The top 4 bits of
  // the value (leading one + 3 sub-bucket bits) pick the bucket.
  const int exponent = 63 - std::countl_zero(value);
  const uint64_t mantissa = value >> (exponent - 3);  // in [8, 16)
  return static_cast<size_t>(exponent - 3) * kSubBuckets +
         static_cast<size_t>(mantissa);
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < 2 * kSubBuckets) return index;  // width-1 buckets
  const int block = static_cast<int>(index / kSubBuckets);  // >= 2
  const uint64_t mantissa = kSubBuckets + index % kSubBuckets;
  return mantissa << (block - 1);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < 2 * kSubBuckets) return index + 1;
  const int block = static_cast<int>(index / kSubBuckets);
  return BucketLowerBound(index) + (uint64_t{1} << (block - 1));
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample (1-based), nearest-rank definition.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      const uint64_t lo = BucketLowerBound(i);
      const uint64_t hi = BucketUpperBound(i);
      const double mid = (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
      // The true sample cannot exceed the recorded max.
      const double cap = static_cast<double>(max());
      return mid < cap ? mid : cap;
    }
  }
  // Racing records moved count ahead of the buckets; the max is the
  // best remaining estimate.
  return static_cast<double>(max());
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count();
  s.sum = sum();
  s.max = max();
  s.mean = mean();
  s.p50 = Quantile(0.50);
  s.p90 = Quantile(0.90);
  s.p99 = Quantile(0.99);
  return s;
}

ScopedTimerUs::ScopedTimerUs(Histogram* h) : h_(h) {
  if (h_ != nullptr) start_ns_ = NowNs();
}

ScopedTimerUs::~ScopedTimerUs() {
  if (h_ != nullptr) h_->Record((NowNs() - start_ns_) / 1000);
}

// ------------------------------------------------------ MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: instruments are recorded into from arbitrary
  // threads up to process exit (static destruction order is unknowable).
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Instrument* MetricsRegistry::FindOrCreate(
    const std::string& name, const std::string& labels,
    const std::string& help, Kind kind) {
  const std::string key = name + "{" + labels + "}";
  util::MutexLock lock(mu_);
  auto it = instruments_.find(key);
  if (it != instruments_.end()) return it->second.get();
  auto inst = std::make_unique<Instrument>();
  inst->name = name;
  inst->labels = labels;
  inst->help = help;
  inst->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      inst->counter = std::make_unique<obs::Counter>();
      break;
    case Kind::kGauge:
      inst->gauge = std::make_unique<obs::Gauge>();
      break;
    case Kind::kHistogram:
      inst->histogram = std::make_unique<obs::Histogram>();
      break;
  }
  Instrument* raw = inst.get();
  instruments_.emplace(key, std::move(inst));
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels,
                                     const std::string& help) {
  return FindOrCreate(name, labels, help, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels,
                                 const std::string& help) {
  return FindOrCreate(name, labels, help, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& labels,
                                         const std::string& help) {
  return FindOrCreate(name, labels, help, Kind::kHistogram)->histogram.get();
}

uint64_t MetricsRegistry::AddCollector(CollectFn collect) {
  util::MutexLock lock(collector_mu_);
  uint64_t token = next_collector_++;
  collectors_.emplace(token, std::move(collect));
  return token;
}

void MetricsRegistry::RemoveCollector(uint64_t token) {
  util::MutexLock lock(collector_mu_);
  collectors_.erase(token);
}

std::vector<CollectedSample> MetricsRegistry::Collect() const {
  // Collectors run while collector_mu_ is held, so RemoveCollector
  // cannot return while a dump is still calling into the instance being
  // torn down — that is what makes "remove before destroy" sufficient.
  // collector_mu_ is distinct from mu_ so collectors may call back into
  // Get*/FindOrCreate; they must not Add/RemoveCollector (self-deadlock).
  util::MutexLock lock(collector_mu_);
  CollectionSink sink;
  for (const auto& [token, fn] : collectors_) fn(sink);
  return std::move(sink.samples);
}

std::string MetricsRegistry::DumpJsonMetricsArray() const {
  std::string out = "[";
  bool first = true;
  auto entry_head = [&](const std::string& name, const std::string& labels,
                        const std::string& help, const char* type) {
    out += first ? "\n" : ",\n";
    first = false;
    out += util::StrFormat(
        "    {\"name\": \"%s\", \"type\": \"%s\", \"labels\": \"%s\", "
        "\"help\": \"%s\"",
        JsonEscape(name).c_str(), type, JsonEscape(labels).c_str(),
        JsonEscape(help).c_str());
  };

  {
    util::MutexLock lock(mu_);
    for (const auto& [key, inst] : instruments_) {
      switch (inst->kind) {
        case Kind::kCounter:
          entry_head(inst->name, inst->labels, inst->help, "counter");
          out += util::StrFormat(
              ", \"value\": %llu}",
              (unsigned long long)inst->counter->value());
          break;
        case Kind::kGauge:
          entry_head(inst->name, inst->labels, inst->help, "gauge");
          out += util::StrFormat(", \"value\": %lld}",
                                 (long long)inst->gauge->value());
          break;
        case Kind::kHistogram: {
          Histogram::Snapshot s = inst->histogram->snapshot();
          entry_head(inst->name, inst->labels, inst->help, "histogram");
          out += util::StrFormat(
              ", \"count\": %llu, \"sum\": %llu, \"max\": %llu, "
              "\"mean\": %s, \"p50\": %s, \"p90\": %s, \"p99\": %s}",
              (unsigned long long)s.count, (unsigned long long)s.sum,
              (unsigned long long)s.max, JsonNumber(s.mean).c_str(),
              JsonNumber(s.p50).c_str(), JsonNumber(s.p90).c_str(),
              JsonNumber(s.p99).c_str());
          break;
        }
      }
    }
  }
  for (const CollectedSample& s : Collect()) {
    entry_head(s.name, s.labels, s.help,
               s.kind == CollectedSample::Kind::kCounter ? "counter"
                                                         : "gauge");
    out += util::StrFormat(", \"value\": %s}", JsonNumber(s.value).c_str());
  }
  out += "\n  ]";
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  return "{\n  \"schema\": \"bp-metrics-v1\",\n  \"metrics\": " +
         DumpJsonMetricsArray() + "\n}\n";
}

std::string MetricsRegistry::DumpText() const {
  std::string out;
  auto header = [&](const std::string& name, const std::string& help,
                    const char* type) {
    if (!help.empty()) out += "# HELP " + name + " " + help + "\n";
    out += std::string("# TYPE ") + name + " " + type + "\n";
  };
  auto sample = [&](const std::string& name, const std::string& labels,
                    const std::string& extra_label, const std::string& value) {
    out += name;
    if (!labels.empty() || !extra_label.empty()) {
      out += "{" + labels;
      if (!labels.empty() && !extra_label.empty()) out += ",";
      out += extra_label + "}";
    }
    out += " " + value + "\n";
  };

  {
    util::MutexLock lock(mu_);
    for (const auto& [key, inst] : instruments_) {
      switch (inst->kind) {
        case Kind::kCounter:
          header(inst->name, inst->help, "counter");
          sample(inst->name, inst->labels, "",
                 util::StrFormat("%llu",
                                 (unsigned long long)inst->counter->value()));
          break;
        case Kind::kGauge:
          header(inst->name, inst->help, "gauge");
          sample(inst->name, inst->labels, "",
                 util::StrFormat("%lld", (long long)inst->gauge->value()));
          break;
        case Kind::kHistogram: {
          Histogram::Snapshot s = inst->histogram->snapshot();
          header(inst->name, inst->help, "summary");
          sample(inst->name, inst->labels, "quantile=\"0.5\"",
                 JsonNumber(s.p50));
          sample(inst->name, inst->labels, "quantile=\"0.9\"",
                 JsonNumber(s.p90));
          sample(inst->name, inst->labels, "quantile=\"0.99\"",
                 JsonNumber(s.p99));
          sample(inst->name + "_sum", inst->labels, "",
                 util::StrFormat("%llu", (unsigned long long)s.sum));
          sample(inst->name + "_count", inst->labels, "",
                 util::StrFormat("%llu", (unsigned long long)s.count));
          sample(inst->name + "_max", inst->labels, "",
                 util::StrFormat("%llu", (unsigned long long)s.max));
          break;
        }
      }
    }
  }
  for (const CollectedSample& s : Collect()) {
    header(s.name, s.help,
           s.kind == CollectedSample::Kind::kCounter ? "counter" : "gauge");
    sample(s.name, s.labels, "", JsonNumber(s.value));
  }
  return out;
}

}  // namespace bp::obs
