// Lightweight hot-path tracing: scoped spans on a thread-local stack,
// with a process-wide ring buffer of recent SLOW spans.
//
// A ScopedSpan costs two steady-clock reads and two thread-local writes
// — cheap enough to leave on in production around operation-granularity
// scopes (a commit, a query, a checkpoint; not per page). When a span's
// duration crosses the tracer's threshold it is pushed, with its name,
// nesting depth, and enclosing span's name, into a fixed-size ring: the
// "slow-op log" DebugDump exposes, answering "what was the engine doing
// during that p99 spike" without a profiler attached.
//
//   { obs::ScopedSpan span("pager.commit");
//     ... }                       // recorded iff it ran >= threshold
//
//   obs::Tracer::Global().set_slow_threshold_us(500);
//   for (const obs::SlowSpan& s : obs::Tracer::Global().SlowSpans()) ...
//
// Spans nested deeper than kMaxDepth are timed but never recorded
// (depth is clamped, never UB). The ring is mutex-protected — only slow
// spans (rare by definition) ever take the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace bp::obs {

struct SlowSpan {
  std::string name;
  std::string parent;    // enclosing span's name, "" at top level
  uint64_t duration_us = 0;
  uint64_t end_ns = 0;   // steady-clock end time (ordering key)
  uint32_t depth = 0;    // 0 = top level
};

class Tracer {
 public:
  static constexpr size_t kRingCapacity = 256;
  static constexpr size_t kMaxDepth = 16;

  static Tracer& Global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Spans at least this long are kept in the ring. Default 1ms — an
  // operation that slow is worth a log line in a latency-sensitive
  // capture path. 0 records every span (tests, examples).
  void set_slow_threshold_us(uint64_t us) {
    threshold_us_.store(us, std::memory_order_relaxed);
  }
  uint64_t slow_threshold_us() const {
    return threshold_us_.load(std::memory_order_relaxed);
  }

  // The retained slow spans, oldest first. Thread-safe.
  std::vector<SlowSpan> SlowSpans() const BP_EXCLUDES(mu_);
  void Clear() BP_EXCLUDES(mu_);

  // {"slow_span_threshold_us": N, "slow_spans": [ {...}, ... ]} body —
  // composed into ProvenanceDb::DebugDump.
  std::string DumpJsonSpans() const BP_EXCLUDES(mu_);

 private:
  friend class ScopedSpan;
  void RecordSlow(SlowSpan span) BP_EXCLUDES(mu_);

  std::atomic<uint64_t> threshold_us_{1000};
  mutable util::Mutex mu_;
  std::vector<SlowSpan> ring_ BP_GUARDED_BY(mu_);  // capped: kRingCapacity
  size_t next_ BP_GUARDED_BY(mu_) = 0;      // ring cursor once full
  uint64_t dropped_ BP_GUARDED_BY(mu_) = 0; // overwritten once full
};

class ScopedSpan {
 public:
  // `name` must outlive the span (string literals in practice).
  explicit ScopedSpan(const char* name, Tracer* tracer = &Tracer::Global());
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  uint64_t start_ns_;
  uint32_t depth_;  // this span's level on the thread-local stack
};

}  // namespace bp::obs
