#include "obs/trace.hpp"

#include <chrono>

#include "util/strings.hpp"

namespace bp::obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The active span names of this thread, innermost last. Fixed-size: a
// span past kMaxDepth is timed but not stacked (depth clamped).
struct SpanStack {
  const char* names[Tracer::kMaxDepth] = {};
  uint32_t depth = 0;
};

SpanStack& ThreadStack() {
  thread_local SpanStack stack;
  return stack;
}

}  // namespace

Tracer& Tracer::Global() {
  // Leaked for the same reason as MetricsRegistry::Global: spans may
  // close on arbitrary threads during process teardown.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::RecordSlow(SlowSpan span) {
  util::MutexLock lock(mu_);
  if (ring_.size() < kRingCapacity) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[next_] = std::move(span);
  next_ = (next_ + 1) % kRingCapacity;
  ++dropped_;
}

std::vector<SlowSpan> Tracer::SlowSpans() const {
  util::MutexLock lock(mu_);
  std::vector<SlowSpan> out;
  out.reserve(ring_.size());
  // Oldest first: once the ring wrapped, next_ points at the oldest.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::Clear() {
  util::MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

std::string Tracer::DumpJsonSpans() const {
  uint64_t dropped;
  std::vector<SlowSpan> spans;
  {
    util::MutexLock lock(mu_);
    dropped = dropped_;
  }
  spans = SlowSpans();
  std::string out = util::StrFormat(
      "\"slow_span_threshold_us\": %llu, \"slow_spans_dropped\": %llu, "
      "\"slow_spans\": [",
      (unsigned long long)slow_threshold_us(), (unsigned long long)dropped);
  for (size_t i = 0; i < spans.size(); ++i) {
    const SlowSpan& s = spans[i];
    out += util::StrFormat(
        "%s\n    {\"name\": \"%s\", \"parent\": \"%s\", "
        "\"duration_us\": %llu, \"depth\": %u}",
        i == 0 ? "" : ",", s.name.c_str(), s.parent.c_str(),
        (unsigned long long)s.duration_us, s.depth);
  }
  out += spans.empty() ? "]" : "\n  ]";
  return out;
}

ScopedSpan::ScopedSpan(const char* name, Tracer* tracer)
    : tracer_(tracer), name_(name), start_ns_(NowNs()) {
  SpanStack& stack = ThreadStack();
  depth_ = stack.depth;
  if (stack.depth < Tracer::kMaxDepth) stack.names[stack.depth] = name;
  ++stack.depth;
}

ScopedSpan::~ScopedSpan() {
  SpanStack& stack = ThreadStack();
  --stack.depth;
  const uint64_t duration_us = (NowNs() - start_ns_) / 1000;
  if (duration_us < tracer_->slow_threshold_us()) return;
  SlowSpan span;
  span.name = name_;
  if (depth_ > 0 && depth_ <= Tracer::kMaxDepth) {
    span.parent = stack.names[depth_ - 1];
  }
  span.duration_us = duration_us;
  span.end_ns = start_ns_ + duration_us * 1000;
  span.depth = depth_;
  tracer_->RecordSlow(std::move(span));
}

}  // namespace bp::obs
