// Process-wide metrics: one registry of named instruments behind every
// subsystem's counters, so a deployment (or a bench, or DebugDump) sees
// the whole engine through a single exporter instead of hand-collecting
// per-subsystem stat structs.
//
// Three instrument kinds, all safe to record from any thread and cheap
// enough for hot paths:
//
//   Counter   — monotone. Lock-striped: increments land on one of
//               kStripes cache-line-padded relaxed atomics chosen by the
//               calling thread, so concurrent capture threads never
//               bounce one cache line; value() folds the stripes.
//   Gauge     — last-written level (queue depth, resident bytes).
//   Histogram — log-bucketed latency/size distribution. Buckets are
//               exact below kSubBuckets and then kSubBuckets linear
//               sub-buckets per power of two, so any recorded value
//               lands in a bucket whose width is at most 1/kSubBuckets
//               of its lower bound: quantile estimates (bucket
//               midpoints) are within ±1/(2*kSubBuckets) = ±6.25%
//               relative error of the true sample quantile. Recording
//               is a handful of relaxed atomic adds — no lock, no
//               allocation.
//
// Registration is by (name, labels): the first caller creates the
// instrument, later callers get the same pointer, and pointers stay
// valid for the life of the registry (instruments are never removed).
// Subsystems that already keep per-instance snapshot structs
// (PagerStats, PipelineStats, ...) fold into the registry through
// COLLECTORS: a callback registered per instance that reports current
// values at dump time — one source of truth for exporters without
// double-counting on the hot path.
//
// Exporters: DumpJson() (machine-readable, schema "bp-metrics-v1",
// validated in CI against scripts/metrics_schema.json) and DumpText()
// (Prometheus-style text: counters/gauges as samples, histograms as
// summaries with quantile labels). ProvenanceDb::DebugDump() wraps both
// with the slow-span log (obs/trace.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace bp::obs {

// ------------------------------------------------------------- Counter

class Counter {
 public:
  static constexpr size_t kStripes = 8;

  // Relaxed add onto this thread's stripe. Monotone: n is unsigned.
  void Add(uint64_t n = 1) {
    cells_[StripeIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  // Sum over the stripes. Concurrent adds may or may not be included
  // (each stripe is read atomically; the fold is not a snapshot).
  uint64_t value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  static size_t StripeIndex();

  std::array<Cell, kStripes> cells_;
};

// --------------------------------------------------------------- Gauge

class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// ----------------------------------------------------------- Histogram

class Histogram {
 public:
  // 8 sub-buckets per power of two: bucket width <= lower_bound / 8.
  static constexpr uint64_t kSubBuckets = 8;
  static constexpr size_t kBucketCount = 61 * kSubBuckets + kSubBuckets;

  // The bucket a value lands in, and the bucket's inclusive lower /
  // exclusive upper bound. Exposed for the bucket-boundary tests.
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketUpperBound(size_t index);  // exclusive

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  // Estimate of the q-quantile (q in [0, 1]): the midpoint of the
  // bucket holding the ceil(q * count)-th sample, clamped to the
  // recorded max. Within ±1/(2*kSubBuckets) relative error of the true
  // sample quantile. 0 when empty. Concurrent-record safe (the walk
  // reads each bucket atomically; a racing Record may or may not be
  // counted).
  double Quantile(double q) const;

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    double mean = 0;
    double p50 = 0, p90 = 0, p99 = 0;
  };
  Snapshot snapshot() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
};

// Records the elapsed wall time of a scope into a histogram, in
// microseconds. Null histogram = no-op (instrumentation off).
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram* h);
  ~ScopedTimerUs();
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram* h_;
  uint64_t start_ns_ = 0;
};

// ------------------------------------------------------ MetricsRegistry

// One sample a collector reports at dump time. `labels` is the
// Prometheus label body without braces (e.g. `db="history.db"`), empty
// for none.
struct CollectedSample {
  enum class Kind { kCounter, kGauge };
  std::string name;
  std::string labels;
  std::string help;
  Kind kind = Kind::kCounter;
  double value = 0;
};

// The sink a collector writes into (see MetricsRegistry::AddCollector).
class CollectionSink {
 public:
  void Counter(std::string name, std::string labels, std::string help,
               double value) {
    samples.push_back({std::move(name), std::move(labels), std::move(help),
                       CollectedSample::Kind::kCounter, value});
  }
  void Gauge(std::string name, std::string labels, std::string help,
             double value) {
    samples.push_back({std::move(name), std::move(labels), std::move(help),
                       CollectedSample::Kind::kGauge, value});
  }

  std::vector<CollectedSample> samples;
};

class MetricsRegistry {
 public:
  // The process-wide registry every subsystem records into. Tests may
  // construct private registries.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by (name, labels). The returned pointer is stable
  // for the registry's lifetime; `help` is kept from the first caller.
  Counter* GetCounter(const std::string& name, const std::string& labels,
                      const std::string& help) BP_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& labels,
                  const std::string& help) BP_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, const std::string& labels,
                          const std::string& help) BP_EXCLUDES(mu_);

  // Pull-model bridge for subsystems that keep per-instance snapshot
  // structs: `collect` runs at every dump and reports current values.
  // Returns a token for RemoveCollector — an instance MUST remove its
  // collector before it is destroyed (RemoveCollector blocks until any
  // in-flight dump has finished running the callback, so removal makes
  // teardown safe). Collectors may create/record instruments but must
  // not call Add/RemoveCollector themselves.
  using CollectFn = std::function<void(CollectionSink&)>;
  uint64_t AddCollector(CollectFn collect) BP_EXCLUDES(collector_mu_);
  void RemoveCollector(uint64_t token) BP_EXCLUDES(collector_mu_);

  // {"schema": "bp-metrics-v1", "metrics": [ {...}, ... ]}. Each entry
  // carries name/type/labels/help plus value (counter, gauge) or
  // count/sum/max/mean/p50/p90/p99 (histogram).
  std::string DumpJson() const BP_EXCLUDES(mu_, collector_mu_);
  // The metrics array alone (no wrapper object) — DebugDump composes it
  // with the slow-span log.
  std::string DumpJsonMetricsArray() const BP_EXCLUDES(mu_, collector_mu_);
  // Prometheus-style text: HELP/TYPE comments, counters and gauges as
  // plain samples, histograms as summaries (quantile label + _sum,
  // _count, _max).
  std::string DumpText() const BP_EXCLUDES(mu_, collector_mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instrument {
    std::string name;
    std::string labels;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument* FindOrCreate(const std::string& name, const std::string& labels,
                           const std::string& help, Kind kind)
      BP_EXCLUDES(mu_);
  std::vector<CollectedSample> Collect() const
      BP_EXCLUDES(mu_, collector_mu_);

  mutable util::Mutex mu_;
  // Keyed by name + "{" + labels + "}" so label variants coexist;
  // ordered so dumps are deterministic.
  std::map<std::string, std::unique_ptr<Instrument>> instruments_
      BP_GUARDED_BY(mu_);
  // Separate lock so collectors can call back into Get* (which takes
  // mu_) while a dump holds collector_mu_ — hence the declared order:
  // collector_mu_ first, mu_ inside it, never the reverse.
  mutable util::Mutex collector_mu_ BP_ACQUIRED_BEFORE(mu_);
  std::map<uint64_t, CollectFn> collectors_ BP_GUARDED_BY(collector_mu_);
  uint64_t next_collector_ BP_GUARDED_BY(collector_mu_) = 1;
};

}  // namespace bp::obs
