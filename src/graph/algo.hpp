// Graph algorithms over GraphStore.
//
// Section 3 of the paper observes that although browser history is a
// graph, "there are no graph algorithms applied to the history in any
// modern browser", and Section 4 implements the use cases with exactly
// these primitives: breadth-first ancestor/descendant traversal (download
// lineage), neighborhood expansion "similar to web search algorithms such
// as Kleinberg's HITS" (contextual history search), and predicate path
// queries ("find the first ancestor of this file that the user is likely
// to recognize").
//
// Every traversal accepts a QueryBudget, making it an anytime algorithm:
// on budget exhaustion it stops expanding and reports truncated=true with
// best-so-far results — the mechanism behind the paper's "queries ...
// can be bound to that time" claim.
//
// All traversals run on the cursor read path (graph/cursor.hpp): edges
// are pulled through EdgeCursor as lazily-decoded EdgeRefs (no AttrMap
// materialization unless a filter asks for it), and every result carries
// the QueryStats the traversal accumulated.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/cursor.hpp"
#include "graph/store.hpp"
#include "util/budget.hpp"
#include "util/status.hpp"

namespace bp::graph {

// Filter deciding which edges a traversal may cross. Default: all. The
// argument is a lazily-decoded EdgeRef — filters on src/dst/kind are
// free; call attrs() only when the decision genuinely needs attributes.
using EdgeFilter = std::function<bool(const EdgeRef&)>;

struct TraversalOptions {
  Direction direction = Direction::kOut;
  // Maximum hops from the start node (0 = just the start).
  uint32_t max_depth = UINT32_MAX;
  // Stop after visiting this many nodes (start included).
  uint64_t max_nodes = UINT64_MAX;
  EdgeFilter edge_filter;  // empty = accept all
  util::QueryBudget* budget = nullptr;  // optional; not owned
};

struct VisitRecord {
  NodeId node = 0;
  uint32_t depth = 0;
  // Edge and node through which `node` was first reached (0 for start).
  EdgeId via_edge = 0;
  NodeId via_node = 0;
};

struct TraversalResult {
  std::vector<VisitRecord> visits;  // BFS order; visits[0] is the start
  bool truncated = false;           // budget/max_nodes stopped expansion
  QueryStats stats;

  // Reconstructs the path start -> ... -> node (node ids), or empty when
  // `node` was not visited.
  std::vector<NodeId> PathTo(NodeId node) const;
};

// Breadth-first traversal from `start` following `direction` edges.
// Direction::kIn walks ancestors (provenance lineage), kOut descendants.
util::Result<TraversalResult> Bfs(const GraphStore& store, NodeId start,
                                  const TraversalOptions& options);

// First node (nearest by hop count, excluding the start) satisfying
// `predicate`, or nullopt if none reachable within the options' bounds.
// This is the paper's "first recognizable ancestor" path query.
util::Result<std::optional<VisitRecord>> FindFirst(
    const GraphStore& store, NodeId start, const TraversalOptions& options,
    const std::function<bool(const Node&)>& predicate);

// Shortest path start -> goal (in hops, respecting direction/filter);
// empty vector when unreachable.
util::Result<std::vector<NodeId>> ShortestPath(
    const GraphStore& store, NodeId start, NodeId goal,
    const TraversalOptions& options);

// ------------------------------------------------------------ subgraph

// An in-memory snapshot of a neighborhood, on which iterative algorithms
// (HITS, PageRank) run without touching the store per iteration.
struct Subgraph {
  std::vector<NodeId> nodes;                       // index -> node id
  std::unordered_map<NodeId, uint32_t> index_of;   // node id -> index
  // Adjacency by local index; parallel edges preserved.
  std::vector<std::vector<uint32_t>> out;
  std::vector<std::vector<uint32_t>> in;
  bool truncated = false;
  QueryStats stats;

  size_t size() const { return nodes.size(); }
  bool Contains(NodeId id) const { return index_of.count(id) > 0; }
};

// Materializes the union of bounded-depth neighborhoods around `seeds`,
// following edges in BOTH directions (context spreads along links
// regardless of orientation), but recording orientation in the adjacency
// lists. The edge filter applies to inclusion.
util::Result<Subgraph> BuildNeighborhood(const GraphStore& store,
                                         const std::vector<NodeId>& seeds,
                                         uint32_t max_depth,
                                         uint64_t max_nodes,
                                         const EdgeFilter& filter = {},
                                         util::QueryBudget* budget = nullptr);

// --------------------------------------------------------- iterative

struct HitsScores {
  // Parallel to Subgraph::nodes.
  std::vector<double> hub;
  std::vector<double> authority;
  int iterations = 0;
};

// Kleinberg's HITS on a materialized subgraph. Converges when the L1
// change drops below `epsilon` or after `max_iterations`.
HitsScores Hits(const Subgraph& graph, int max_iterations = 50,
                double epsilon = 1e-9);

// Personalized PageRank with restart distribution concentrated on
// `seeds` (uniform over them). Treats edges as directed (out links).
// Dangling mass is redistributed to the restart vector.
std::vector<double> PersonalizedPageRank(const Subgraph& graph,
                                         const std::vector<NodeId>& seeds,
                                         double damping = 0.85,
                                         int max_iterations = 60,
                                         double epsilon = 1e-10);

// ------------------------------------------------- neighborhood weights

struct DecayExpansion {
  std::unordered_map<NodeId, double> weights;
  bool truncated = false;
  QueryStats stats;
};

// Decay-weighted neighborhood expansion: every node reachable from a
// seed within `max_depth` (either direction) receives
// sum over seeds of (decay ^ hop distance). This is the Shah-style
// relevance spreading used by contextual history search (use case 2.1).
util::Result<DecayExpansion> ExpandWithDecay(
    const GraphStore& store, const std::vector<std::pair<NodeId, double>>&
        weighted_seeds,
    uint32_t max_depth, double decay, const EdgeFilter& filter = {},
    util::QueryBudget* budget = nullptr);

// --------------------------------------------------------------- cycles

// True when adding edge src->dst would close a directed cycle (i.e. src
// is reachable FROM dst via out-edges). Used by the provenance layer's
// DAG maintenance.
util::Result<bool> WouldCreateCycle(const GraphStore& store, NodeId src,
                                    NodeId dst,
                                    const EdgeFilter& filter = {});

// Full-graph acyclicity check (Kahn's algorithm over an edge-filtered
// view); intended for tests and integrity audits.
util::Result<bool> IsAcyclic(const GraphStore& store,
                             const EdgeFilter& filter = {});

}  // namespace bp::graph
