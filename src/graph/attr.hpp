// Typed attributes on graph nodes and edges.
//
// The paper's unified provenance store keeps heterogeneous objects (page
// visits, bookmarks, downloads, search terms) as homogeneous graph nodes
// distinguished only by kind and attributes, so the attribute system is
// what carries each object's schema.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/serde.hpp"
#include "util/status.hpp"

namespace bp::graph {

using AttrValue = std::variant<int64_t, double, bool, std::string>;

// Small ordered attribute map. Insertion keeps keys sorted so encodings
// are canonical (equal maps encode to equal bytes).
class AttrMap {
 public:
  AttrMap() = default;

  void Set(std::string_view key, AttrValue value);
  void SetInt(std::string_view key, int64_t v) { Set(key, AttrValue(v)); }
  void SetDouble(std::string_view key, double v) { Set(key, AttrValue(v)); }
  void SetBool(std::string_view key, bool v) { Set(key, AttrValue(v)); }
  void SetString(std::string_view key, std::string v) {
    Set(key, AttrValue(std::move(v)));
  }

  const AttrValue* Find(std::string_view key) const;
  std::optional<int64_t> GetInt(std::string_view key) const;
  std::optional<double> GetDouble(std::string_view key) const;
  std::optional<bool> GetBool(std::string_view key) const;
  std::optional<std::string_view> GetString(std::string_view key) const;

  // Returns the value or `fallback` when absent / of a different type.
  int64_t IntOr(std::string_view key, int64_t fallback) const {
    return GetInt(key).value_or(fallback);
  }
  std::string_view StringOr(std::string_view key,
                            std::string_view fallback) const {
    auto v = GetString(key);
    return v.has_value() ? *v : fallback;
  }

  bool Remove(std::string_view key);
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<std::pair<std::string, AttrValue>>& entries() const {
    return entries_;
  }

  void Encode(util::Writer& w) const;
  static util::Result<AttrMap> Decode(util::Reader& r);

  friend bool operator==(const AttrMap& a, const AttrMap& b) {
    return a.entries_ == b.entries_;
  }

 private:
  std::vector<std::pair<std::string, AttrValue>> entries_;
};

}  // namespace bp::graph
