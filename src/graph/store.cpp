#include "graph/store.hpp"

#include "storage/pager.hpp"
#include "util/require.hpp"
#include "util/serde.hpp"

namespace bp::storage {

// Row codecs live in bp::storage so Table<Row> finds them.
template <>
struct RowCodec<graph::GraphStore::NodeRec> {
  static void Encode(const graph::GraphStore::NodeRec& row,
                     util::Writer& w) {
    w.PutVarint64(row.kind);
    row.attrs.Encode(w);
  }
  static util::Result<graph::GraphStore::NodeRec> Decode(util::Reader& r) {
    graph::GraphStore::NodeRec row;
    row.kind = static_cast<uint32_t>(r.ReadVarint64());
    BP_ASSIGN_OR_RETURN(row.attrs, graph::AttrMap::Decode(r));
    return row;
  }
};

template <>
struct RowCodec<graph::GraphStore::EdgeRec> {
  static void Encode(const graph::GraphStore::EdgeRec& row,
                     util::Writer& w) {
    w.PutVarint64(row.src);
    w.PutVarint64(row.dst);
    w.PutVarint64(row.kind);
    row.attrs.Encode(w);
  }
  static util::Result<graph::GraphStore::EdgeRec> Decode(util::Reader& r) {
    graph::GraphStore::EdgeRec row;
    row.src = r.ReadVarint64();
    row.dst = r.ReadVarint64();
    row.kind = static_cast<uint32_t>(r.ReadVarint64());
    BP_ASSIGN_OR_RETURN(row.attrs, graph::AttrMap::Decode(r));
    return row;
  }
};

}  // namespace bp::storage

namespace bp::graph {

using storage::AutoTxn;
using storage::Table;
using util::OrderedKeyU64Pair;
using util::Result;
using util::Status;

Result<std::unique_ptr<GraphStore>> GraphStore::Open(storage::Db& db,
                                                     std::string ns) {
  std::unique_ptr<GraphStore> store(new GraphStore(db, std::move(ns)));
  BP_ASSIGN_OR_RETURN(store->nodes_tree_,
                      db.OpenOrCreateTree(store->ns_ + ".nodes"));
  BP_ASSIGN_OR_RETURN(store->edges_tree_,
                      db.OpenOrCreateTree(store->ns_ + ".edges"));
  BP_ASSIGN_OR_RETURN(store->out_tree_,
                      db.OpenOrCreateTree(store->ns_ + ".out"));
  BP_ASSIGN_OR_RETURN(store->in_tree_,
                      db.OpenOrCreateTree(store->ns_ + ".in"));
  return store;
}

GraphStore GraphStore::AtSnapshot(const storage::Snapshot& snap) const {
  GraphStore view(db_, ns_);
  view.nodes_tree_ = view.bound_trees_.Bind(snap, nodes_tree_);
  view.edges_tree_ = view.bound_trees_.Bind(snap, edges_tree_);
  view.out_tree_ = view.bound_trees_.Bind(snap, out_tree_);
  view.in_tree_ = view.bound_trees_.Bind(snap, in_tree_);
  return view;
}

Result<NodeId> GraphStore::AddNode(uint32_t kind, AttrMap attrs) {
  BP_REQUIRE(!snapshot_bound(), "AddNode on a snapshot-bound graph");
  Table<NodeRec> nodes(nodes_tree_);
  return nodes.Insert(NodeRec{kind, std::move(attrs)});
}

Result<Node> GraphStore::GetNode(NodeId id) const {
  Table<NodeRec> nodes(nodes_tree_);
  BP_ASSIGN_OR_RETURN(NodeRec rec, nodes.Get(id));
  return Node{id, rec.kind, std::move(rec.attrs)};
}

Status GraphStore::PutNode(const Node& node) {
  BP_REQUIRE(!snapshot_bound(), "PutNode on a snapshot-bound graph");
  Table<NodeRec> nodes(nodes_tree_);
  BP_ASSIGN_OR_RETURN(bool exists, nodes.Contains(node.id));
  if (!exists) {
    return Status::NotFound("PutNode: no such node");
  }
  return nodes.Put(node.id, NodeRec{node.kind, node.attrs});
}

Result<bool> GraphStore::HasNode(NodeId id) const {
  Table<NodeRec> nodes(nodes_tree_);
  return nodes.Contains(id);
}

Result<EdgeId> GraphStore::AddEdge(NodeId src, NodeId dst, uint32_t kind,
                                   AttrMap attrs) {
  BP_REQUIRE(!snapshot_bound(), "AddEdge on a snapshot-bound graph");
  BP_ASSIGN_OR_RETURN(bool has_src, HasNode(src));
  BP_ASSIGN_OR_RETURN(bool has_dst, HasNode(dst));
  if (!has_src || !has_dst) {
    return Status::FailedPrecondition("AddEdge: endpoint does not exist");
  }
  AutoTxn txn(db_.pager());
  Table<EdgeRec> edges(edges_tree_);
  BP_ASSIGN_OR_RETURN(EdgeId id,
                      edges.Insert(EdgeRec{src, dst, kind, std::move(attrs)}));
  BP_RETURN_IF_ERROR(out_tree_->Put(OrderedKeyU64Pair(src, id), {}));
  BP_RETURN_IF_ERROR(in_tree_->Put(OrderedKeyU64Pair(dst, id), {}));
  BP_RETURN_IF_ERROR(txn.Commit());
  return id;
}

Result<Edge> GraphStore::GetEdge(EdgeId id) const {
  Table<EdgeRec> edges(edges_tree_);
  BP_ASSIGN_OR_RETURN(EdgeRec rec, edges.Get(id));
  return Edge{id, rec.src, rec.dst, rec.kind, std::move(rec.attrs)};
}

Status GraphStore::PutEdge(const Edge& edge) {
  BP_REQUIRE(!snapshot_bound(), "PutEdge on a snapshot-bound graph");
  Table<EdgeRec> edges(edges_tree_);
  BP_ASSIGN_OR_RETURN(EdgeRec old, edges.Get(edge.id));
  BP_REQUIRE(old.src == edge.src && old.dst == edge.dst,
             "PutEdge cannot rewire endpoints; delete and re-add");
  return edges.Put(edge.id, EdgeRec{edge.src, edge.dst, edge.kind,
                                    edge.attrs});
}

Status GraphStore::DeleteEdge(EdgeId id) {
  BP_REQUIRE(!snapshot_bound(), "DeleteEdge on a snapshot-bound graph");
  Table<EdgeRec> edges(edges_tree_);
  BP_ASSIGN_OR_RETURN(EdgeRec rec, edges.Get(id));
  AutoTxn txn(db_.pager());
  BP_RETURN_IF_ERROR(out_tree_->Delete(OrderedKeyU64Pair(rec.src, id)));
  BP_RETURN_IF_ERROR(in_tree_->Delete(OrderedKeyU64Pair(rec.dst, id)));
  BP_RETURN_IF_ERROR(edges.Delete(id));
  return txn.Commit();
}

EdgeCursor GraphStore::Edges(NodeId node, Direction dir,
                             QueryStats* stats) const {
  const storage::BTree* tree =
      dir == Direction::kOut ? out_tree_ : in_tree_;
  return EdgeCursor(tree, edges_tree_, node, stats);
}

EdgeCursor GraphStore::Edges(QueryStats* stats) const {
  return EdgeCursor(edges_tree_, stats);
}

NodeCursor GraphStore::Nodes(NodeId min_id, QueryStats* stats) const {
  return NodeCursor(nodes_tree_, min_id, stats);
}

Result<NodeRef> GraphStore::GetNodeRef(NodeId id, QueryStats* stats) const {
  BP_ASSIGN_OR_RETURN(std::string row,
                      nodes_tree_->Get(util::OrderedKeyU64(id)));
  if (stats != nullptr) ++stats->rows_scanned;
  NodeRef ref;
  BP_RETURN_IF_ERROR(ref.Assign(id, std::move(row)));
  return ref;
}

Result<EdgeRef> GraphStore::GetEdgeRef(EdgeId id, QueryStats* stats) const {
  BP_ASSIGN_OR_RETURN(std::string row,
                      edges_tree_->Get(util::OrderedKeyU64(id)));
  if (stats != nullptr) ++stats->rows_scanned;
  EdgeRef ref;
  BP_RETURN_IF_ERROR(ref.Assign(id, std::move(row)));
  return ref;
}

Result<uint64_t> GraphStore::Degree(NodeId node, Direction dir) const {
  storage::BTree* tree = dir == Direction::kOut ? out_tree_ : in_tree_;
  std::string lo = OrderedKeyU64Pair(node, 0);
  std::string hi =
      node == UINT64_MAX ? std::string{} : OrderedKeyU64Pair(node + 1, 0);
  return tree->CountRange(lo, hi);
}

Status GraphStore::ForEachEdge(
    NodeId node, Direction dir,
    const std::function<bool(const Edge&)>& fn) const {
  EdgeCursor cur = Edges(node, dir);
  for (; cur.Valid(); cur.Next()) {
    BP_ASSIGN_OR_RETURN(Edge edge, cur.edge().Materialize());
    if (!fn(edge)) break;
  }
  return cur.status();
}

Status GraphStore::ForEachNode(
    const std::function<bool(const Node&)>& fn) const {
  NodeCursor cur = Nodes();
  for (; cur.Valid(); cur.Next()) {
    BP_ASSIGN_OR_RETURN(Node node, cur.node().Materialize());
    if (!fn(node)) break;
  }
  return cur.status();
}

Status GraphStore::ForEachEdge(
    const std::function<bool(const Edge&)>& fn) const {
  EdgeCursor cur = Edges();
  for (; cur.Valid(); cur.Next()) {
    BP_ASSIGN_OR_RETURN(Edge edge, cur.edge().Materialize());
    if (!fn(edge)) break;
  }
  return cur.status();
}

Result<uint64_t> GraphStore::NodeCount() const {
  Table<NodeRec> nodes(nodes_tree_);
  return nodes.Count();
}

Result<uint64_t> GraphStore::EdgeCount() const {
  Table<EdgeRec> edges(edges_tree_);
  return edges.Count();
}

}  // namespace bp::graph
