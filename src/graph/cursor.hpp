// Cursor-based read path for the property graph.
//
// Every graph query used to thread std::function callbacks from
// BTree::ForEach up through GraphStore::ForEachEdge, paying a
// type-erased call plus a full row decode (AttrMap included) per edge
// and smuggling early-exit and errors through captured state. Cursors
// invert that: the caller pulls, early exit is `break`, errors surface
// once via status(), and decode is lazy — EdgeRef/NodeRef expose
// src/dst/kind (resp. kind) straight from the varint prefix of the
// encoded row and only materialize the AttrMap on demand, which is the
// win on high-degree nodes whose traversals filter on kind alone.
//
// Work accounting: every cursor bumps a QueryStats (shared by all the
// use-case queries) so each query result reports how much of the store
// it touched.
//
// Snapshot reads: these cursors take whatever BTree handles they are
// given. Handed the live trees (GraphStore::Edges/Nodes on the live
// store) they read the pager's current state; handed snapshot-bound
// trees (GraphStore::AtSnapshot) every page they touch resolves through
// the storage::Snapshot — same cursor code, frozen view, safe on reader
// threads while the writer commits.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "graph/attr.hpp"
#include "storage/btree.hpp"
#include "util/budget.hpp"
#include "util/serde.hpp"
#include "util/status.hpp"

namespace bp::graph {

using NodeId = uint64_t;
using EdgeId = uint64_t;

struct Node {
  NodeId id = 0;
  uint32_t kind = 0;
  AttrMap attrs;
};

struct Edge {
  EdgeId id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  uint32_t kind = 0;
  AttrMap attrs;
};

enum class Direction { kOut, kIn };

// Work performed by a cursor-based query. Returned (populated) by every
// traversal and use-case query so callers can see what a query cost —
// the paper's "bound to that time" claim needs the denominator.
struct QueryStats {
  uint64_t rows_scanned = 0;    // storage rows read (adjacency + records)
  uint64_t edges_expanded = 0;  // edges considered by traversal logic
  uint64_t nodes_visited = 0;   // nodes popped/visited by traversals
  uint64_t budget_used = 0;     // QueryBudget units charged
  // Page-level cost under WAL snapshot reads: images served from the
  // shared buffer pool vs. fetched from the log/database file. Zero on
  // the live (journal / mid-batch) path, where pages go through the
  // writer cache instead (PagerStats).
  uint64_t pool_hits = 0;
  uint64_t pages_fetched = 0;   // pool misses: log/database file reads

  QueryStats& operator+=(const QueryStats& other) {
    rows_scanned += other.rows_scanned;
    edges_expanded += other.edges_expanded;
    nodes_visited += other.nodes_visited;
    budget_used += other.budget_used;
    pool_hits += other.pool_hits;
    pages_fetched += other.pages_fetched;
    return *this;
  }
  std::string ToString() const;
};

// Accumulates the budget units a query charged into its QueryStats on
// every exit path. Budgets are often shared across the stages of one
// user-facing query, so the delta over the scope is what this stage
// used. A null budget makes the scope a no-op.
//
// When the stats live inside a local that is returned by value into a
// Result<T>, the move happens BEFORE this destructor runs — call
// Flush() just before such a return so the delta lands in the live
// object (the destructor then adds nothing).
class BudgetScope {
 public:
  BudgetScope(util::QueryBudget* budget, QueryStats* stats)
      : budget_(budget), stats_(stats),
        start_(budget != nullptr ? budget->used() : 0) {}
  ~BudgetScope() { Flush(); }
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

  // Folds the delta so far into the stats; further charges start a new
  // delta, so a Flush followed by the destructor double-counts nothing.
  void Flush() {
    if (budget_ == nullptr) return;
    stats_->budget_used += budget_->used() - start_;
    start_ = budget_->used();
  }

 private:
  util::QueryBudget* budget_;
  QueryStats* stats_;
  uint64_t start_;
};

// A lazily-decoded edge: id/src/dst/kind come from the fixed varint
// prefix of the encoded row; the AttrMap bytes are kept raw until
// attrs() or Materialize() asks for them.
class EdgeRef {
 public:
  EdgeRef() = default;

  EdgeId id() const { return id_; }
  NodeId src() const { return src_; }
  NodeId dst() const { return dst_; }
  uint32_t kind() const { return kind_; }
  // The node on the far side when iterating edges of a node: dst for
  // out-edges, src for in-edges.
  NodeId neighbor(Direction dir) const {
    return dir == Direction::kOut ? dst_ : src_;
  }

  // Decodes the attribute map (the expensive part) on demand.
  util::Result<AttrMap> attrs() const;
  util::Result<Edge> Materialize() const;

 private:
  friend class EdgeCursor;
  friend class GraphStore;
  util::Status Assign(EdgeId id, std::string row);

  EdgeId id_ = 0;
  NodeId src_ = 0;
  NodeId dst_ = 0;
  uint32_t kind_ = 0;
  std::string row_;        // full encoded row
  size_t attr_offset_ = 0; // where the AttrMap bytes start in row_
};

// A lazily-decoded node (kind from the varint prefix, attrs on demand).
class NodeRef {
 public:
  NodeRef() = default;

  NodeId id() const { return id_; }
  uint32_t kind() const { return kind_; }
  util::Result<AttrMap> attrs() const;
  util::Result<Node> Materialize() const;

 private:
  friend class NodeCursor;
  friend class GraphStore;
  util::Status Assign(NodeId id, std::string row);

  NodeId id_ = 0;
  uint32_t kind_ = 0;
  std::string row_;
  size_t attr_offset_ = 0;
};

// Iterates edges — either the adjacency of one node in one direction
// (ascending edge id) or the whole edge table. Obtained from
// GraphStore::Edges.
//
//   for (EdgeCursor cur = store.Edges(n, Direction::kOut, &stats);
//        cur.Valid(); cur.Next()) {
//     const EdgeRef& e = cur.edge();
//     ...
//   }
//   BP_RETURN_IF_ERROR(cur.status());
class EdgeCursor {
 public:
  EdgeCursor() = default;

  // Adjacency of `node`: `adjacency` is the (node id, edge id) tree for
  // the wanted direction, `edges` the edge-record table's tree.
  EdgeCursor(const storage::BTree* adjacency, const storage::BTree* edges,
             NodeId node, QueryStats* stats);
  // Full scan of the edge table.
  EdgeCursor(const storage::BTree* edges, QueryStats* stats);

  bool Valid() const { return valid_; }
  void Next();
  // Current edge; Valid() must be true. The reference is reused by
  // Next(), so copy what must outlive the step.
  const EdgeRef& edge() const { return ref_; }
  const util::Status& status() const { return status_; }

 private:
  void Load();
  void Fail(util::Status status);
  void Count(uint64_t rows);

  const storage::BTree* edges_ = nullptr;
  storage::BTree::Cursor cur_;  // over the adjacency tree or edge table
  bool adjacency_ = false;
  EdgeRef ref_;
  bool valid_ = false;
  util::Status status_;
  QueryStats* stats_ = nullptr;
};

// Iterates nodes in ascending id order, optionally from a starting id —
// incremental consumers (e.g. the text indexer's watermark) seek
// straight to the first unseen node instead of scanning from the top.
class NodeCursor {
 public:
  NodeCursor() = default;
  NodeCursor(const storage::BTree* nodes, NodeId min_id, QueryStats* stats);

  bool Valid() const { return valid_; }
  void Next();
  const NodeRef& node() const { return ref_; }
  const util::Status& status() const { return status_; }

 private:
  void Load();
  void Count(uint64_t rows);

  storage::BTree::Cursor cur_;
  NodeRef ref_;
  bool valid_ = false;
  util::Status status_;
  QueryStats* stats_ = nullptr;
};

}  // namespace bp::graph
