#include "graph/attr.hpp"

#include <algorithm>
#include <iterator>

namespace bp::graph {

using util::Reader;
using util::Result;
using util::Status;
using util::Writer;

namespace {

constexpr uint8_t kTagInt = 0;
constexpr uint8_t kTagDouble = 1;
constexpr uint8_t kTagBool = 2;
constexpr uint8_t kTagString = 3;

// Attribute keys recur on every node/edge, so well-known keys encode as a
// single byte (schema keys from prov/schema.hpp plus common generics).
// Appending to this list is a compatible change; reordering is not.
constexpr std::string_view kWellKnownKeys[] = {
    "url",   "title", "visit_count", "open",      "close",
    "tab",   "transition", "time",   "query",     "use_count",
    "added", "target",     "summary"};

int WellKnownIndex(std::string_view key) {
  for (size_t i = 0; i < std::size(kWellKnownKeys); ++i) {
    if (kWellKnownKeys[i] == key) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

void AttrMap::Set(std::string_view key, AttrValue value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
  if (it != entries_.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    entries_.insert(it, {std::string(key), std::move(value)});
  }
}

const AttrValue* AttrMap::Find(std::string_view key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
  if (it != entries_.end() && it->first == key) return &it->second;
  return nullptr;
}

std::optional<int64_t> AttrMap::GetInt(std::string_view key) const {
  const AttrValue* v = Find(key);
  if (v == nullptr) return std::nullopt;
  if (const int64_t* i = std::get_if<int64_t>(v)) return *i;
  return std::nullopt;
}

std::optional<double> AttrMap::GetDouble(std::string_view key) const {
  const AttrValue* v = Find(key);
  if (v == nullptr) return std::nullopt;
  if (const double* d = std::get_if<double>(v)) return *d;
  // Int attributes are usable where doubles are expected.
  if (const int64_t* i = std::get_if<int64_t>(v)) {
    return static_cast<double>(*i);
  }
  return std::nullopt;
}

std::optional<bool> AttrMap::GetBool(std::string_view key) const {
  const AttrValue* v = Find(key);
  if (v == nullptr) return std::nullopt;
  if (const bool* b = std::get_if<bool>(v)) return *b;
  return std::nullopt;
}

std::optional<std::string_view> AttrMap::GetString(
    std::string_view key) const {
  const AttrValue* v = Find(key);
  if (v == nullptr) return std::nullopt;
  if (const std::string* s = std::get_if<std::string>(v)) {
    return std::string_view(*s);
  }
  return std::nullopt;
}

bool AttrMap::Remove(std::string_view key) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
  if (it != entries_.end() && it->first == key) {
    entries_.erase(it);
    return true;
  }
  return false;
}

void AttrMap::Encode(Writer& w) const {
  w.PutVarint64(entries_.size());
  for (const auto& [key, value] : entries_) {
    // Key: 0 = explicit string follows; n > 0 = well-known key n-1.
    int wk = WellKnownIndex(key);
    if (wk >= 0) {
      w.PutVarint64(static_cast<uint64_t>(wk) + 1);
    } else {
      w.PutVarint64(0);
      w.PutString(key);
    }
    if (const int64_t* i = std::get_if<int64_t>(&value)) {
      w.PutU8(kTagInt);
      w.PutSignedVarint64(*i);
    } else if (const double* d = std::get_if<double>(&value)) {
      w.PutU8(kTagDouble);
      w.PutDouble(*d);
    } else if (const bool* b = std::get_if<bool>(&value)) {
      w.PutU8(kTagBool);
      w.PutU8(*b ? 1 : 0);
    } else {
      w.PutU8(kTagString);
      w.PutString(std::get<std::string>(value));
    }
  }
}

Result<AttrMap> AttrMap::Decode(Reader& r) {
  AttrMap map;
  uint64_t n = r.ReadVarint64();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t key_code = r.ReadVarint64();
    std::string key;
    if (key_code == 0) {
      key = std::string(r.ReadString());
    } else if (key_code <= std::size(kWellKnownKeys)) {
      key = std::string(kWellKnownKeys[key_code - 1]);
    } else {
      return Status::Corruption("unknown well-known attribute key");
    }
    uint8_t tag = r.ReadU8();
    switch (tag) {
      case kTagInt:
        map.Set(key, AttrValue(r.ReadSignedVarint64()));
        break;
      case kTagDouble:
        map.Set(key, AttrValue(r.ReadDouble()));
        break;
      case kTagBool:
        map.Set(key, AttrValue(r.ReadU8() != 0));
        break;
      case kTagString:
        map.Set(key, AttrValue(std::string(r.ReadString())));
        break;
      default:
        return Status::Corruption("unknown attribute tag");
    }
    if (!r.ok()) return Status::Corruption("truncated attribute map");
  }
  return map;
}

}  // namespace bp::graph
