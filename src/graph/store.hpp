// GraphStore: a persistent property graph over the storage engine.
//
// Nodes and edges are typed (integer `kind` plus an AttrMap) and both
// directions of every edge are indexed, so ancestor queries (in-edges)
// and descendant queries (out-edges) are symmetric — the capability the
// paper's download-lineage use case depends on.
//
// Trees used (namespaced by `ns` so several graphs can share a Db and so
// SpaceReport can attribute bytes per schema):
//   <ns>.nodes : node id -> (kind, attrs)
//   <ns>.edges : edge id -> (src, dst, kind, attrs)
//   <ns>.out   : (src node id, edge id) -> ""   adjacency
//   <ns>.in    : (dst node id, edge id) -> ""   reverse adjacency
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "graph/attr.hpp"
#include "storage/db.hpp"
#include "storage/table.hpp"
#include "util/status.hpp"

namespace bp::graph {

using NodeId = uint64_t;
using EdgeId = uint64_t;

struct Node {
  NodeId id = 0;
  uint32_t kind = 0;
  AttrMap attrs;
};

struct Edge {
  EdgeId id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  uint32_t kind = 0;
  AttrMap attrs;
};

enum class Direction { kOut, kIn };

class GraphStore {
 public:
  // Opens (creating if needed) the graph named `ns` inside `db`. The Db
  // must outlive the store.
  static util::Result<std::unique_ptr<GraphStore>> Open(storage::Db& db,
                                                        std::string ns);

  util::Result<NodeId> AddNode(uint32_t kind, AttrMap attrs = {});
  util::Result<Node> GetNode(NodeId id) const;
  util::Status PutNode(const Node& node);  // updates kind/attrs in place
  util::Result<bool> HasNode(NodeId id) const;

  // Adds an edge; both endpoints must exist.
  util::Result<EdgeId> AddEdge(NodeId src, NodeId dst, uint32_t kind,
                               AttrMap attrs = {});
  util::Result<Edge> GetEdge(EdgeId id) const;
  util::Status PutEdge(const Edge& edge);  // kind/attrs only (not src/dst)
  util::Status DeleteEdge(EdgeId id);

  // Edges leaving (kOut) or entering (kIn) `node`, in edge-id order.
  // `fn` returns false to stop early.
  util::Status ForEachEdge(NodeId node, Direction dir,
                           const std::function<bool(const Edge&)>& fn) const;

  // Degree in the given direction (counts edges, not distinct neighbors).
  util::Result<uint64_t> Degree(NodeId node, Direction dir) const;

  util::Status ForEachNode(
      const std::function<bool(const Node&)>& fn) const;
  util::Status ForEachEdge(const std::function<bool(const Edge&)>& fn) const;

  util::Result<uint64_t> NodeCount() const;
  util::Result<uint64_t> EdgeCount() const;

  storage::Db& db() { return db_; }
  const std::string& ns() const { return ns_; }

 private:
  struct NodeRec {
    uint32_t kind = 0;
    AttrMap attrs;
  };
  struct EdgeRec {
    NodeId src = 0;
    NodeId dst = 0;
    uint32_t kind = 0;
    AttrMap attrs;
  };
  friend struct storage::RowCodec<NodeRec>;
  friend struct storage::RowCodec<EdgeRec>;

  GraphStore(storage::Db& db, std::string ns) : db_(db), ns_(std::move(ns)) {}

  storage::Db& db_;
  std::string ns_;
  storage::BTree* nodes_tree_ = nullptr;
  storage::BTree* edges_tree_ = nullptr;
  storage::BTree* out_tree_ = nullptr;
  storage::BTree* in_tree_ = nullptr;
};

}  // namespace bp::graph
