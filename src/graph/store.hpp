// GraphStore: a persistent property graph over the storage engine.
//
// Nodes and edges are typed (integer `kind` plus an AttrMap) and both
// directions of every edge are indexed, so ancestor queries (in-edges)
// and descendant queries (out-edges) are symmetric — the capability the
// paper's download-lineage use case depends on.
//
// Trees used (namespaced by `ns` so several graphs can share a Db and so
// SpaceReport can attribute bytes per schema):
//   <ns>.nodes : node id -> (kind, attrs)
//   <ns>.edges : edge id -> (src, dst, kind, attrs)
//   <ns>.out   : (src node id, edge id) -> ""   adjacency
//   <ns>.in    : (dst node id, edge id) -> ""   reverse adjacency
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/attr.hpp"
#include "graph/cursor.hpp"
#include "storage/db.hpp"
#include "storage/table.hpp"
#include "util/status.hpp"

namespace bp::graph {

class GraphStore {
 public:
  // Opens (creating if needed) the graph named `ns` inside `db`. The Db
  // must outlive the store.
  static util::Result<std::unique_ptr<GraphStore>> Open(storage::Db& db,
                                                        std::string ns);

  // A read-only handle on the SAME graph whose every read (cursors,
  // point lookups, Degree, counts) resolves through `snap` — the
  // snapshot-isolated query path. Safe to use from a reader thread
  // while this (live) store keeps ingesting; mutations on the returned
  // store are contract violations. `snap` and this store must outlive
  // the returned handle and every cursor obtained from it.
  GraphStore AtSnapshot(const storage::Snapshot& snap) const;
  bool snapshot_bound() const { return bound_trees_.bound(); }

  util::Result<NodeId> AddNode(uint32_t kind, AttrMap attrs = {});
  util::Result<Node> GetNode(NodeId id) const;
  util::Status PutNode(const Node& node);  // updates kind/attrs in place
  util::Result<bool> HasNode(NodeId id) const;

  // Adds an edge; both endpoints must exist.
  util::Result<EdgeId> AddEdge(NodeId src, NodeId dst, uint32_t kind,
                               AttrMap attrs = {});
  util::Result<Edge> GetEdge(EdgeId id) const;
  util::Status PutEdge(const Edge& edge);  // kind/attrs only (not src/dst)
  util::Status DeleteEdge(EdgeId id);

  // ------------------------------------------------------- cursors
  //
  // The supported read path. Cursors decode lazily (see graph/cursor.hpp)
  // and bump `stats` (when given) with the rows they touch.

  // Edges leaving (kOut) or entering (kIn) `node`, ascending edge id.
  EdgeCursor Edges(NodeId node, Direction dir,
                   QueryStats* stats = nullptr) const;
  // Every edge, ascending edge id.
  EdgeCursor Edges(QueryStats* stats = nullptr) const;
  // Every node with id >= `min_id`, ascending.
  NodeCursor Nodes(NodeId min_id = 1, QueryStats* stats = nullptr) const;

  // Lazily-decoded point lookups (kind without AttrMap materialization).
  util::Result<NodeRef> GetNodeRef(NodeId id,
                                   QueryStats* stats = nullptr) const;
  util::Result<EdgeRef> GetEdgeRef(EdgeId id,
                                   QueryStats* stats = nullptr) const;

  // Degree in the given direction (counts edges, not distinct neighbors).
  // Counts adjacency cells per leaf (BTree::CountRange) without decoding
  // a single edge row.
  util::Result<uint64_t> Degree(NodeId node, Direction dir) const;

  // ------------------------------------------- deprecated callbacks
  //
  // Thin wrappers over the cursors, kept for external callers; they
  // materialize a full Edge/Node per row, which the cursor path avoids.
  util::Status ForEachEdge(NodeId node, Direction dir,
                           const std::function<bool(const Edge&)>& fn) const;
  util::Status ForEachNode(
      const std::function<bool(const Node&)>& fn) const;
  util::Status ForEachEdge(const std::function<bool(const Edge&)>& fn) const;

  util::Result<uint64_t> NodeCount() const;
  util::Result<uint64_t> EdgeCount() const;

  storage::Db& db() { return db_; }
  const std::string& ns() const { return ns_; }

 private:
  struct NodeRec {
    uint32_t kind = 0;
    AttrMap attrs;
  };
  struct EdgeRec {
    NodeId src = 0;
    NodeId dst = 0;
    uint32_t kind = 0;
    AttrMap attrs;
  };
  friend struct storage::RowCodec<NodeRec>;
  friend struct storage::RowCodec<EdgeRec>;

  GraphStore(storage::Db& db, std::string ns) : db_(db), ns_(std::move(ns)) {}

  storage::Db& db_;
  std::string ns_;
  storage::BTree* nodes_tree_ = nullptr;
  storage::BTree* edges_tree_ = nullptr;
  storage::BTree* out_tree_ = nullptr;
  storage::BTree* in_tree_ = nullptr;
  // Snapshot-bound handles (AtSnapshot): the tree pointers above point
  // into this owned storage instead of the Db's live handles.
  storage::BoundTrees bound_trees_;
};

}  // namespace bp::graph
