// IntervalIndex: static interval tree over [open, close) time spans.
//
// Section 3.2: "most browsers do not capture the time relationship
// between pages that are open simultaneously ... The simple addition of a
// corresponding close to each page visit enables queries on time
// relationships." The provenance schema stores open/close times on visit
// nodes; this index answers "which visits were open during [a, b)" and
// "which visits overlap visit X" — the primitive behind time-contextual
// history search (use case 2.3).
//
// Build once over the visit set (O(n log n)), query in O(log n + k).
// Entries still open use close == util::kTimeMax.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/time.hpp"

namespace bp::graph {

class IntervalIndex {
 public:
  struct Entry {
    util::TimeSpan span;
    uint64_t payload = 0;  // caller-defined (e.g. visit node id)
  };

  IntervalIndex() = default;
  explicit IntervalIndex(std::vector<Entry> entries) { Build(std::move(entries)); }

  // Replaces the index contents.
  void Build(std::vector<Entry> entries);

  // Payloads of all entries whose span overlaps `query` (half-open
  // semantics), in unspecified order.
  std::vector<uint64_t> Overlapping(util::TimeSpan query) const;

  // Payloads of entries containing time t.
  std::vector<uint64_t> At(util::TimeMs t) const {
    return Overlapping(util::TimeSpan{t, t + 1});
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  struct Node {
    util::TimeMs center = 0;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
    // Entries crossing `center`, sorted by open ascending and (separately)
    // by close descending; indexes into entries_.
    std::vector<uint32_t> by_open;
    std::vector<uint32_t> by_close;
  };

  std::unique_ptr<Node> BuildNode(std::vector<uint32_t> items);
  void Query(const Node* node, util::TimeSpan query,
             std::vector<uint64_t>* out) const;

  std::vector<Entry> entries_;
  std::unique_ptr<Node> root_;
};

}  // namespace bp::graph
