#include "graph/cursor.hpp"

#include <utility>

#include "util/strings.hpp"

namespace bp::graph {

using util::Result;
using util::Status;

std::string QueryStats::ToString() const {
  std::string out = util::StrFormat(
      "rows=%llu edges=%llu nodes=%llu budget=%llu",
      (unsigned long long)rows_scanned, (unsigned long long)edges_expanded,
      (unsigned long long)nodes_visited, (unsigned long long)budget_used);
  if (pool_hits > 0 || pages_fetched > 0) {
    out += util::StrFormat(" pool_hits=%llu pages_fetched=%llu",
                           (unsigned long long)pool_hits,
                           (unsigned long long)pages_fetched);
  }
  return out;
}

// ------------------------------------------------------------- EdgeRef

Status EdgeRef::Assign(EdgeId id, std::string row) {
  row_ = std::move(row);
  util::Reader r(row_);
  id_ = id;
  src_ = r.ReadVarint64();
  dst_ = r.ReadVarint64();
  kind_ = static_cast<uint32_t>(r.ReadVarint64());
  if (!r.ok()) return Status::Corruption("malformed edge row");
  attr_offset_ = r.position();
  return Status::Ok();
}

Result<AttrMap> EdgeRef::attrs() const {
  util::Reader r(std::string_view(row_).substr(attr_offset_));
  BP_ASSIGN_OR_RETURN(AttrMap attrs, AttrMap::Decode(r));
  BP_RETURN_IF_ERROR(r.Finish());
  return attrs;
}

Result<Edge> EdgeRef::Materialize() const {
  BP_ASSIGN_OR_RETURN(AttrMap attrs, this->attrs());
  return Edge{id_, src_, dst_, kind_, std::move(attrs)};
}

// ------------------------------------------------------------- NodeRef

Status NodeRef::Assign(NodeId id, std::string row) {
  row_ = std::move(row);
  util::Reader r(row_);
  id_ = id;
  kind_ = static_cast<uint32_t>(r.ReadVarint64());
  if (!r.ok()) return Status::Corruption("malformed node row");
  attr_offset_ = r.position();
  return Status::Ok();
}

Result<AttrMap> NodeRef::attrs() const {
  util::Reader r(std::string_view(row_).substr(attr_offset_));
  BP_ASSIGN_OR_RETURN(AttrMap attrs, AttrMap::Decode(r));
  BP_RETURN_IF_ERROR(r.Finish());
  return attrs;
}

Result<Node> NodeRef::Materialize() const {
  BP_ASSIGN_OR_RETURN(AttrMap attrs, this->attrs());
  return Node{id_, kind_, std::move(attrs)};
}

// ---------------------------------------------------------- EdgeCursor

EdgeCursor::EdgeCursor(const storage::BTree* adjacency,
                       const storage::BTree* edges, NodeId node,
                       QueryStats* stats)
    : edges_(edges), cur_(adjacency->NewCursor()), adjacency_(true),
      stats_(stats) {
  cur_.SeekPrefix(util::OrderedKeyU64(node));
  Load();
}

EdgeCursor::EdgeCursor(const storage::BTree* edges, QueryStats* stats)
    : edges_(edges), cur_(edges->NewCursor()), adjacency_(false),
      stats_(stats) {
  cur_.SeekFirst();
  Load();
}

void EdgeCursor::Fail(Status status) {
  status_ = std::move(status);
  valid_ = false;
}

void EdgeCursor::Count(uint64_t rows) {
  if (stats_ != nullptr) stats_->rows_scanned += rows;
}

void EdgeCursor::Next() {
  if (!valid_) return;
  cur_.Next();
  Load();
}

void EdgeCursor::Load() {
  valid_ = false;
  while (cur_.Valid()) {
    if (adjacency_) {
      // Adjacency entry: (node id, edge id) -> "". The record itself
      // lives in the edge table.
      const EdgeId edge_id =
          util::DecodeOrderedKeyU64(cur_.key().substr(8));
      auto row = edges_->Get(util::OrderedKeyU64(edge_id));
      if (!row.ok()) {
        // An adjacency entry without its record is an engine bug or disk
        // damage, not a user-visible NotFound.
        return Fail(row.status().IsNotFound()
                        ? Status::Corruption(
                              "adjacency entry without edge record")
                        : row.status());
      }
      Count(2);  // adjacency entry + edge record
      Status assigned = ref_.Assign(edge_id, *std::move(row));
      if (!assigned.ok()) return Fail(std::move(assigned));
    } else {
      const uint64_t id = util::DecodeOrderedKeyU64(cur_.key());
      if (id == 0) {  // table allocator cell
        cur_.Next();
        continue;
      }
      Count(1);
      Status assigned = ref_.Assign(id, std::string(cur_.value()));
      if (!assigned.ok()) return Fail(std::move(assigned));
    }
    valid_ = true;
    return;
  }
  if (!cur_.status().ok()) Fail(cur_.status());
}

// ---------------------------------------------------------- NodeCursor

NodeCursor::NodeCursor(const storage::BTree* nodes, NodeId min_id,
                       QueryStats* stats)
    : cur_(nodes->NewCursor()), stats_(stats) {
  cur_.Seek(util::OrderedKeyU64(std::max<NodeId>(min_id, 1)));
  Load();
}

void NodeCursor::Count(uint64_t rows) {
  if (stats_ != nullptr) stats_->rows_scanned += rows;
}

void NodeCursor::Next() {
  if (!valid_) return;
  cur_.Next();
  Load();
}

void NodeCursor::Load() {
  valid_ = false;
  while (cur_.Valid()) {
    const uint64_t id = util::DecodeOrderedKeyU64(cur_.key());
    if (id == 0) {  // table allocator cell
      cur_.Next();
      continue;
    }
    Count(1);
    Status assigned = ref_.Assign(id, std::string(cur_.value()));
    if (!assigned.ok()) {
      status_ = std::move(assigned);
      return;
    }
    valid_ = true;
    return;
  }
  if (!cur_.status().ok()) status_ = cur_.status();
}

}  // namespace bp::graph
