#include "graph/interval_index.hpp"

#include <algorithm>

namespace bp::graph {

using util::TimeMs;
using util::TimeSpan;

void IntervalIndex::Build(std::vector<Entry> entries) {
  entries_ = std::move(entries);
  std::vector<uint32_t> items(entries_.size());
  for (uint32_t i = 0; i < items.size(); ++i) items[i] = i;
  root_ = items.empty() ? nullptr : BuildNode(std::move(items));
}

std::unique_ptr<IntervalIndex::Node> IntervalIndex::BuildNode(
    std::vector<uint32_t> items) {
  if (items.empty()) return nullptr;
  auto node = std::make_unique<Node>();

  // Center on the median interval midpoint for balance. kTimeMax closes
  // (still-open visits) would skew midpoints, so clamp them to the open
  // endpoint for centering purposes only.
  std::vector<TimeMs> mids;
  mids.reserve(items.size());
  for (uint32_t i : items) {
    const TimeSpan& s = entries_[i].span;
    TimeMs close = s.close == util::kTimeMax ? s.open : s.close;
    mids.push_back(s.open + (close - s.open) / 2);
  }
  std::nth_element(mids.begin(), mids.begin() + mids.size() / 2, mids.end());
  node->center = mids[mids.size() / 2];

  std::vector<uint32_t> left_items;
  std::vector<uint32_t> right_items;
  for (uint32_t i : items) {
    const TimeSpan& s = entries_[i].span;
    if (s.close != util::kTimeMax && s.close <= node->center) {
      // Entirely left of center (half-open: close <= center misses it).
      left_items.push_back(i);
    } else if (s.open > node->center) {
      right_items.push_back(i);
    } else {
      node->by_open.push_back(i);
    }
  }

  // Degenerate guard: if everything landed on one side (possible with
  // pathological data), keep them at this node to guarantee progress.
  if (node->by_open.empty() &&
      (left_items.empty() || right_items.empty())) {
    node->by_open = left_items.empty() ? std::move(right_items)
                                       : std::move(left_items);
    left_items.clear();
    right_items.clear();
  }

  node->by_close = node->by_open;
  std::sort(node->by_open.begin(), node->by_open.end(),
            [this](uint32_t a, uint32_t b) {
              return entries_[a].span.open < entries_[b].span.open;
            });
  std::sort(node->by_close.begin(), node->by_close.end(),
            [this](uint32_t a, uint32_t b) {
              return entries_[a].span.close > entries_[b].span.close;
            });

  node->left = BuildNode(std::move(left_items));
  node->right = BuildNode(std::move(right_items));
  return node;
}

std::vector<uint64_t> IntervalIndex::Overlapping(TimeSpan query) const {
  std::vector<uint64_t> out;
  if (query.open < query.close) Query(root_.get(), query, &out);
  return out;
}

void IntervalIndex::Query(const Node* node, TimeSpan query,
                          std::vector<uint64_t>* out) const {
  if (node == nullptr) return;

  if (query.open <= node->center && node->center < query.close) {
    // The query straddles the center: every entry here overlaps.
    for (uint32_t i : node->by_open) out->push_back(entries_[i].payload);
    Query(node->left.get(), query, out);
    Query(node->right.get(), query, out);
    return;
  }

  if (query.close <= node->center) {
    // Query lies left of center: an entry here overlaps iff it opens
    // before the query closes (all entries span the center, to the right
    // of the query's end).
    for (uint32_t i : node->by_open) {
      if (entries_[i].span.open >= query.close) break;
      if (entries_[i].span.Overlaps(query)) {
        out->push_back(entries_[i].payload);
      }
    }
    Query(node->left.get(), query, out);
  } else {
    // Query lies right of center: an entry overlaps iff it closes after
    // the query opens.
    for (uint32_t i : node->by_close) {
      if (entries_[i].span.close <= query.open) break;
      if (entries_[i].span.Overlaps(query)) {
        out->push_back(entries_[i].payload);
      }
    }
    Query(node->right.get(), query, out);
  }
}

}  // namespace bp::graph
