#include "graph/algo.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <unordered_set>

#include "util/require.hpp"

namespace bp::graph {

using util::QueryBudget;
using util::Result;
using util::Status;

std::vector<NodeId> TraversalResult::PathTo(NodeId node) const {
  std::unordered_map<NodeId, NodeId> parent;
  parent.reserve(visits.size());
  bool found = false;
  for (const VisitRecord& v : visits) {
    parent[v.node] = v.via_node;
    if (v.node == node) found = true;
  }
  if (!found) return {};
  std::vector<NodeId> path;
  NodeId cur = node;
  while (true) {
    path.push_back(cur);
    NodeId up = parent.at(cur);
    if (up == cur || up == 0) break;  // start nodes link to themselves/0
    cur = up;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

namespace {

bool PassesFilter(const EdgeFilter& filter, const EdgeRef& edge) {
  return !filter || filter(edge);
}

// Shared BFS core. `expand_both` traverses edges in both directions
// (used by neighborhood building); otherwise only options.direction.
// on_visit returns false to stop the whole traversal.
Status BfsCore(const GraphStore& store, NodeId start,
               const TraversalOptions& options, bool expand_both,
               bool* truncated, QueryStats* stats,
               const std::function<bool(const VisitRecord&)>& on_visit) {
  BP_ASSIGN_OR_RETURN(bool exists, store.HasNode(start));
  if (!exists) return Status::NotFound("Bfs: start node does not exist");

  BudgetScope budget_scope(options.budget, stats);
  std::unordered_set<NodeId> seen{start};
  std::deque<VisitRecord> queue{VisitRecord{start, 0, 0, start}};
  uint64_t visited = 0;
  *truncated = false;

  while (!queue.empty()) {
    VisitRecord rec = queue.front();
    queue.pop_front();

    if (options.budget != nullptr && !options.budget->Charge()) {
      *truncated = true;
      break;
    }
    if (visited >= options.max_nodes) {
      *truncated = true;
      break;
    }
    ++visited;
    ++stats->nodes_visited;
    if (!on_visit(rec)) return Status::Ok();
    if (rec.depth >= options.max_depth) continue;

    auto enqueue = [&](Direction dir) -> Status {
      EdgeCursor cur = store.Edges(rec.node, dir, stats);
      for (; cur.Valid(); cur.Next()) {
        const EdgeRef& edge = cur.edge();
        ++stats->edges_expanded;
        if (!PassesFilter(options.edge_filter, edge)) continue;
        NodeId next = edge.neighbor(dir);
        if (seen.insert(next).second) {
          queue.push_back(
              VisitRecord{next, rec.depth + 1, edge.id(), rec.node});
        }
      }
      return cur.status();
    };

    if (expand_both) {
      BP_RETURN_IF_ERROR(enqueue(Direction::kOut));
      BP_RETURN_IF_ERROR(enqueue(Direction::kIn));
    } else {
      BP_RETURN_IF_ERROR(enqueue(options.direction));
    }
  }
  if (!queue.empty()) *truncated = true;
  return Status::Ok();
}

}  // namespace

Result<TraversalResult> Bfs(const GraphStore& store, NodeId start,
                            const TraversalOptions& options) {
  TraversalResult result;
  BP_RETURN_IF_ERROR(BfsCore(store, start, options, /*expand_both=*/false,
                             &result.truncated, &result.stats,
                             [&](const VisitRecord& rec) {
                               result.visits.push_back(rec);
                               return true;
                             }));
  return result;
}

Result<std::optional<VisitRecord>> FindFirst(
    const GraphStore& store, NodeId start, const TraversalOptions& options,
    const std::function<bool(const Node&)>& predicate) {
  std::optional<VisitRecord> found;
  Status inner;
  bool truncated = false;
  QueryStats stats;
  BP_RETURN_IF_ERROR(BfsCore(
      store, start, options, /*expand_both=*/false, &truncated, &stats,
      [&](const VisitRecord& rec) {
        if (rec.node == start) return true;  // exclude the start itself
        auto node = store.GetNode(rec.node);
        if (!node.ok()) {
          inner = node.status();
          return false;
        }
        if (predicate(*node)) {
          found = rec;
          return false;
        }
        return true;
      }));
  BP_RETURN_IF_ERROR(inner);
  return found;
}

Result<std::vector<NodeId>> ShortestPath(const GraphStore& store,
                                         NodeId start, NodeId goal,
                                         const TraversalOptions& options) {
  TraversalResult result;
  bool reached = false;
  BP_RETURN_IF_ERROR(BfsCore(store, start, options, /*expand_both=*/false,
                             &result.truncated, &result.stats,
                             [&](const VisitRecord& rec) {
                               result.visits.push_back(rec);
                               if (rec.node == goal) {
                                 reached = true;
                                 return false;
                               }
                               return true;
                             }));
  if (!reached) return std::vector<NodeId>{};
  return result.PathTo(goal);
}

Result<Subgraph> BuildNeighborhood(const GraphStore& store,
                                   const std::vector<NodeId>& seeds,
                                   uint32_t max_depth, uint64_t max_nodes,
                                   const EdgeFilter& filter,
                                   QueryBudget* budget) {
  Subgraph graph;
  auto add_node = [&](NodeId id) -> uint32_t {
    auto it = graph.index_of.find(id);
    if (it != graph.index_of.end()) return it->second;
    uint32_t index = static_cast<uint32_t>(graph.nodes.size());
    graph.nodes.push_back(id);
    graph.index_of.emplace(id, index);
    graph.out.emplace_back();
    graph.in.emplace_back();
    return index;
  };

  // Multi-source BFS over undirected connectivity.
  std::deque<std::pair<NodeId, uint32_t>> queue;
  std::unordered_set<NodeId> seen;
  for (NodeId seed : seeds) {
    BP_ASSIGN_OR_RETURN(bool exists, store.HasNode(seed));
    if (!exists) continue;
    if (seen.insert(seed).second) {
      add_node(seed);
      queue.push_back({seed, 0});
    }
  }

  BudgetScope budget_scope(budget, &graph.stats);
  while (!queue.empty()) {
    auto [node, depth] = queue.front();
    queue.pop_front();
    if (budget != nullptr && !budget->Charge()) {
      graph.truncated = true;
      break;
    }
    ++graph.stats.nodes_visited;
    if (depth >= max_depth) continue;

    for (Direction dir : {Direction::kOut, Direction::kIn}) {
      EdgeCursor cur = store.Edges(node, dir, &graph.stats);
      for (; cur.Valid(); cur.Next()) {
        const EdgeRef& edge = cur.edge();
        ++graph.stats.edges_expanded;
        if (!PassesFilter(filter, edge)) continue;
        NodeId next = edge.neighbor(dir);
        if (seen.count(next) == 0) {
          if (graph.nodes.size() >= max_nodes) {
            graph.truncated = true;
            continue;  // keep scanning for edges among known nodes
          }
          seen.insert(next);
          add_node(next);
          queue.push_back({next, depth + 1});
        }
      }
      BP_RETURN_IF_ERROR(cur.status());
    }
  }

  // Second pass: record directed adjacency among included nodes only.
  // (Done separately so edges to nodes admitted later are not missed.)
  for (uint32_t i = 0; i < graph.nodes.size(); ++i) {
    EdgeCursor cur = store.Edges(graph.nodes[i], Direction::kOut,
                                 &graph.stats);
    for (; cur.Valid(); cur.Next()) {
      const EdgeRef& edge = cur.edge();
      if (!PassesFilter(filter, edge)) continue;
      auto it = graph.index_of.find(edge.dst());
      if (it == graph.index_of.end()) continue;
      graph.out[i].push_back(it->second);
      graph.in[it->second].push_back(i);
    }
    BP_RETURN_IF_ERROR(cur.status());
  }
  budget_scope.Flush();  // before `graph` moves into the Result
  return graph;
}

HitsScores Hits(const Subgraph& graph, int max_iterations, double epsilon) {
  const size_t n = graph.size();
  HitsScores scores;
  scores.hub.assign(n, 1.0);
  scores.authority.assign(n, 1.0);
  if (n == 0) return scores;

  std::vector<double> new_auth(n), new_hub(n);
  for (int iter = 0; iter < max_iterations; ++iter) {
    // authority(v) = sum of hub(u) over in-neighbors u.
    for (size_t v = 0; v < n; ++v) {
      double sum = 0;
      for (uint32_t u : graph.in[v]) sum += scores.hub[u];
      new_auth[v] = sum;
    }
    // hub(u) = sum of authority(v) over out-neighbors v.
    for (size_t u = 0; u < n; ++u) {
      double sum = 0;
      for (uint32_t v : graph.out[u]) sum += new_auth[v];
      new_hub[u] = sum;
    }
    auto normalize = [n](std::vector<double>& v) {
      double norm = 0;
      for (double x : v) norm += x * x;
      norm = std::sqrt(norm);
      if (norm > 0) {
        for (double& x : v) x /= norm;
      }
    };
    normalize(new_auth);
    normalize(new_hub);

    double delta = 0;
    for (size_t i = 0; i < n; ++i) {
      delta += std::abs(new_auth[i] - scores.authority[i]) +
               std::abs(new_hub[i] - scores.hub[i]);
    }
    scores.authority = new_auth;
    scores.hub = new_hub;
    scores.iterations = iter + 1;
    if (delta < epsilon) break;
  }
  return scores;
}

std::vector<double> PersonalizedPageRank(const Subgraph& graph,
                                         const std::vector<NodeId>& seeds,
                                         double damping, int max_iterations,
                                         double epsilon) {
  const size_t n = graph.size();
  std::vector<double> rank(n, 0.0);
  if (n == 0) return rank;

  std::vector<double> restart(n, 0.0);
  size_t live_seeds = 0;
  for (NodeId seed : seeds) {
    auto it = graph.index_of.find(seed);
    if (it != graph.index_of.end()) {
      restart[it->second] += 1.0;
      ++live_seeds;
    }
  }
  if (live_seeds == 0) {
    // No seed in the subgraph: fall back to uniform restart.
    std::fill(restart.begin(), restart.end(), 1.0 / n);
  } else {
    for (double& r : restart) r /= static_cast<double>(live_seeds);
  }

  rank = restart;
  std::vector<double> next(n);
  for (int iter = 0; iter < max_iterations; ++iter) {
    double dangling = 0;
    for (size_t u = 0; u < n; ++u) {
      if (graph.out[u].empty()) dangling += rank[u];
    }
    for (size_t v = 0; v < n; ++v) {
      next[v] = (1.0 - damping) * restart[v] + damping * dangling * restart[v];
    }
    for (size_t u = 0; u < n; ++u) {
      if (graph.out[u].empty()) continue;
      double share = damping * rank[u] / graph.out[u].size();
      for (uint32_t v : graph.out[u]) next[v] += share;
    }
    double delta = 0;
    for (size_t i = 0; i < n; ++i) delta += std::abs(next[i] - rank[i]);
    rank.swap(next);
    if (delta < epsilon) break;
  }
  return rank;
}

Result<DecayExpansion> ExpandWithDecay(
    const GraphStore& store,
    const std::vector<std::pair<NodeId, double>>& weighted_seeds,
    uint32_t max_depth, double decay, const EdgeFilter& filter,
    QueryBudget* budget) {
  BP_REQUIRE(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
  DecayExpansion result;
  BudgetScope budget_scope(budget, &result.stats);

  // Per-seed BFS: a node's contribution from one seed uses its shortest
  // hop distance to that seed; contributions from distinct seeds add.
  for (const auto& [seed, seed_weight] : weighted_seeds) {
    BP_ASSIGN_OR_RETURN(bool exists, store.HasNode(seed));
    if (!exists) continue;
    std::unordered_set<NodeId> seen{seed};
    std::deque<std::pair<NodeId, uint32_t>> queue{{seed, 0}};
    while (!queue.empty()) {
      auto [node, depth] = queue.front();
      queue.pop_front();
      if (budget != nullptr && !budget->Charge()) {
        result.truncated = true;
        break;
      }
      ++result.stats.nodes_visited;
      result.weights[node] += seed_weight * std::pow(decay, depth);
      if (depth >= max_depth) continue;
      for (Direction dir : {Direction::kOut, Direction::kIn}) {
        EdgeCursor cur = store.Edges(node, dir, &result.stats);
        for (; cur.Valid(); cur.Next()) {
          const EdgeRef& edge = cur.edge();
          ++result.stats.edges_expanded;
          if (!PassesFilter(filter, edge)) continue;
          NodeId next = edge.neighbor(dir);
          if (seen.insert(next).second) {
            queue.push_back({next, depth + 1});
          }
        }
        BP_RETURN_IF_ERROR(cur.status());
      }
    }
  }
  budget_scope.Flush();  // before `result` moves into the Result
  return result;
}

Result<bool> WouldCreateCycle(const GraphStore& store, NodeId src,
                              NodeId dst, const EdgeFilter& filter) {
  if (src == dst) return true;  // self loop
  BP_ASSIGN_OR_RETURN(bool exists, store.HasNode(dst));
  if (!exists) return false;
  TraversalOptions options;
  options.direction = Direction::kOut;
  options.edge_filter = filter;
  bool reachable = false;
  bool truncated = false;
  QueryStats stats;
  BP_RETURN_IF_ERROR(BfsCore(store, dst, options, /*expand_both=*/false,
                             &truncated, &stats,
                             [&](const VisitRecord& rec) {
                               if (rec.node == src) {
                                 reachable = true;
                                 return false;
                               }
                               return true;
                             }));
  return reachable;
}

Result<bool> IsAcyclic(const GraphStore& store, const EdgeFilter& filter) {
  // Kahn's algorithm on the filtered edge view.
  std::unordered_map<NodeId, uint64_t> in_degree;
  {
    NodeCursor cur = store.Nodes();
    for (; cur.Valid(); cur.Next()) {
      in_degree.emplace(cur.node().id(), 0);
    }
    BP_RETURN_IF_ERROR(cur.status());
  }
  {
    EdgeCursor cur = store.Edges();
    for (; cur.Valid(); cur.Next()) {
      const EdgeRef& edge = cur.edge();
      if (!PassesFilter(filter, edge)) continue;
      ++in_degree[edge.dst()];
    }
    BP_RETURN_IF_ERROR(cur.status());
  }

  std::deque<NodeId> ready;
  for (const auto& [node, deg] : in_degree) {
    if (deg == 0) ready.push_back(node);
  }
  uint64_t removed = 0;
  while (!ready.empty()) {
    NodeId node = ready.front();
    ready.pop_front();
    ++removed;
    EdgeCursor cur = store.Edges(node, Direction::kOut);
    for (; cur.Valid(); cur.Next()) {
      const EdgeRef& edge = cur.edge();
      if (!PassesFilter(filter, edge)) continue;
      if (--in_degree[edge.dst()] == 0) ready.push_back(edge.dst());
    }
    BP_RETURN_IF_ERROR(cur.status());
  }
  return removed == in_degree.size();
}

}  // namespace bp::graph
