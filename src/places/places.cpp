#include "places/places.hpp"

#include <algorithm>

#include "storage/pager.hpp"
#include "util/require.hpp"
#include "util/serde.hpp"
#include "util/strings.hpp"

namespace bp::storage {

template <>
struct RowCodec<places::PlaceRow> {
  static void Encode(const places::PlaceRow& row, util::Writer& w) {
    w.PutString(row.url);
    w.PutString(row.title);
    w.PutSignedVarint64(row.visit_count);
    w.PutU8(static_cast<uint8_t>((row.typed ? 1 : 0) |
                                 (row.hidden ? 2 : 0)));
    w.PutSignedVarint64(row.last_visit);
  }
  static util::Result<places::PlaceRow> Decode(util::Reader& r) {
    places::PlaceRow row;
    row.url = std::string(r.ReadString());
    row.title = std::string(r.ReadString());
    row.visit_count = r.ReadSignedVarint64();
    uint8_t flags = r.ReadU8();
    row.typed = (flags & 1) != 0;
    row.hidden = (flags & 2) != 0;
    row.last_visit = r.ReadSignedVarint64();
    return row;
  }
};

template <>
struct RowCodec<places::VisitRow> {
  static void Encode(const places::VisitRow& row, util::Writer& w) {
    w.PutVarint64(row.place_id);
    w.PutVarint64(row.from_visit);
    w.PutSignedVarint64(row.date);
    w.PutU8(static_cast<uint8_t>(row.type));
  }
  static util::Result<places::VisitRow> Decode(util::Reader& r) {
    places::VisitRow row;
    row.place_id = r.ReadVarint64();
    row.from_visit = r.ReadVarint64();
    row.date = r.ReadSignedVarint64();
    row.type = static_cast<places::VisitType>(r.ReadU8());
    return row;
  }
};

template <>
struct RowCodec<places::BookmarkRow> {
  static void Encode(const places::BookmarkRow& row, util::Writer& w) {
    w.PutVarint64(row.place_id);
    w.PutString(row.title);
    w.PutSignedVarint64(row.added);
  }
  static util::Result<places::BookmarkRow> Decode(util::Reader& r) {
    places::BookmarkRow row;
    row.place_id = r.ReadVarint64();
    row.title = std::string(r.ReadString());
    row.added = r.ReadSignedVarint64();
    return row;
  }
};

template <>
struct RowCodec<places::InputRow> {
  static void Encode(const places::InputRow& row, util::Writer& w) {
    w.PutString(row.input);
    w.PutSignedVarint64(row.use_count);
    w.PutSignedVarint64(row.last_used);
  }
  static util::Result<places::InputRow> Decode(util::Reader& r) {
    places::InputRow row;
    row.input = std::string(r.ReadString());
    row.use_count = r.ReadSignedVarint64();
    row.last_used = r.ReadSignedVarint64();
    return row;
  }
};

template <>
struct RowCodec<places::DownloadRow> {
  static void Encode(const places::DownloadRow& row, util::Writer& w) {
    w.PutString(row.source_url);
    w.PutString(row.target_path);
    w.PutVarint64(row.place_id);
    w.PutSignedVarint64(row.start);
  }
  static util::Result<places::DownloadRow> Decode(util::Reader& r) {
    places::DownloadRow row;
    row.source_url = std::string(r.ReadString());
    row.target_path = std::string(r.ReadString());
    row.place_id = r.ReadVarint64();
    row.start = r.ReadSignedVarint64();
    return row;
  }
};

}  // namespace bp::storage

namespace bp::places {

using storage::AutoTxn;
using storage::Index;
using storage::Table;
using util::Result;
using util::Status;

Result<std::unique_ptr<PlacesStore>> PlacesStore::Open(storage::Db& db) {
  std::unique_ptr<PlacesStore> store(new PlacesStore(db));
  BP_ASSIGN_OR_RETURN(store->places_tree_,
                      db.OpenOrCreateTree("places.places"));
  BP_ASSIGN_OR_RETURN(store->visits_tree_,
                      db.OpenOrCreateTree("places.visits"));
  BP_ASSIGN_OR_RETURN(store->bookmarks_tree_,
                      db.OpenOrCreateTree("places.bookmarks"));
  BP_ASSIGN_OR_RETURN(store->input_tree_,
                      db.OpenOrCreateTree("places.inputhistory"));
  BP_ASSIGN_OR_RETURN(store->downloads_tree_,
                      db.OpenOrCreateTree("places.downloads"));
  BP_ASSIGN_OR_RETURN(store->url_index_tree_,
                      db.OpenOrCreateTree("places.url_index"));
  BP_ASSIGN_OR_RETURN(store->visits_by_place_tree_,
                      db.OpenOrCreateTree("places.visits_by_place"));
  return store;
}

Result<uint64_t> PlacesStore::UpsertPlace(std::string_view url,
                                          std::string_view title,
                                          VisitType type, TimeMs date) {
  Table<PlaceRow> places(places_tree_);
  const bool hidden_type =
      type == VisitType::kEmbed || type == VisitType::kRedirectPermanent ||
      type == VisitType::kRedirectTemporary;

  auto existing = PlaceIdForUrl(url);
  if (existing.ok()) {
    BP_ASSIGN_OR_RETURN(PlaceRow row, places.Get(*existing));
    ++row.visit_count;
    if (!title.empty()) row.title = std::string(title);
    if (type == VisitType::kTyped) row.typed = true;
    if (!hidden_type) row.hidden = false;
    row.last_visit = std::max(row.last_visit, date);
    BP_RETURN_IF_ERROR(places.Put(*existing, row));
    return *existing;
  }
  if (!existing.status().IsNotFound()) return existing.status();

  PlaceRow row;
  row.url = std::string(url);
  row.title = std::string(title);
  row.visit_count = 1;
  row.typed = type == VisitType::kTyped;
  row.hidden = hidden_type;
  row.last_visit = date;
  BP_ASSIGN_OR_RETURN(uint64_t id, places.Insert(row));
  Index url_index(url_index_tree_);
  BP_RETURN_IF_ERROR(url_index.Add(url, id));
  return id;
}

Result<uint64_t> PlacesStore::AddVisit(std::string_view url,
                                       std::string_view title,
                                       VisitType type, uint64_t from_visit,
                                       TimeMs date) {
  AutoTxn txn(db_.pager());
  BP_ASSIGN_OR_RETURN(uint64_t place_id,
                      UpsertPlace(url, title, type, date));
  Table<VisitRow> visits(visits_tree_);
  BP_ASSIGN_OR_RETURN(uint64_t visit_id,
                      visits.Insert(VisitRow{place_id, from_visit, date,
                                             type}));
  BP_RETURN_IF_ERROR(visits_by_place_tree_->Put(
      util::OrderedKeyU64Pair(place_id, visit_id), {}));
  BP_RETURN_IF_ERROR(txn.Commit());
  return visit_id;
}

Result<uint64_t> PlacesStore::AddBookmark(std::string_view url,
                                          std::string_view title,
                                          TimeMs added) {
  AutoTxn txn(db_.pager());
  // Bookmarking does not count as a visit, but the place row must exist;
  // Firefox inserts a hidden, zero-visit place in that case.
  uint64_t place_id;
  auto existing = PlaceIdForUrl(url);
  if (existing.ok()) {
    place_id = *existing;
  } else if (existing.status().IsNotFound()) {
    Table<PlaceRow> places(places_tree_);
    PlaceRow row;
    row.url = std::string(url);
    row.title = std::string(title);
    row.visit_count = 0;
    row.last_visit = 0;
    BP_ASSIGN_OR_RETURN(place_id, places.Insert(row));
    Index url_index(url_index_tree_);
    BP_RETURN_IF_ERROR(url_index.Add(url, place_id));
  } else {
    return existing.status();
  }
  Table<BookmarkRow> bookmarks(bookmarks_tree_);
  BP_ASSIGN_OR_RETURN(
      uint64_t id,
      bookmarks.Insert(BookmarkRow{place_id, std::string(title), added}));
  BP_RETURN_IF_ERROR(txn.Commit());
  return id;
}

Status PlacesStore::AddInput(std::string_view input, TimeMs used) {
  // moz_inputhistory keys on the input string; model it the same way by
  // scanning for an existing row (input history stays small in practice).
  Table<InputRow> inputs(input_tree_);
  uint64_t found_id = 0;
  InputRow found;
  BP_RETURN_IF_ERROR(inputs.ForEach([&](uint64_t id, const InputRow& row) {
    if (row.input == input) {
      found_id = id;
      found = row;
      return false;
    }
    return true;
  }));
  if (found_id != 0) {
    ++found.use_count;
    found.last_used = std::max(found.last_used, used);
    return inputs.Put(found_id, found);
  }
  return inputs.Insert(InputRow{std::string(input), 1, used}).status();
}

Result<uint64_t> PlacesStore::AddDownload(std::string_view source_url,
                                          std::string_view target_path,
                                          TimeMs start) {
  uint64_t place_id = 0;
  auto place = PlaceIdForUrl(source_url);
  if (place.ok()) {
    place_id = *place;
  } else if (!place.status().IsNotFound()) {
    return place.status();
  }
  Table<DownloadRow> downloads(downloads_tree_);
  return downloads.Insert(DownloadRow{std::string(source_url),
                                      std::string(target_path), place_id,
                                      start});
}

Result<uint64_t> PlacesStore::PlaceIdForUrl(std::string_view url) const {
  Index url_index(url_index_tree_);
  uint64_t found = 0;
  BP_RETURN_IF_ERROR(url_index.ForEachEqual(url, [&](uint64_t id) {
    found = id;
    return false;
  }));
  if (found == 0) return Status::NotFound("no place for url");
  return found;
}

Result<PlaceRow> PlacesStore::GetPlace(uint64_t place_id) const {
  Table<PlaceRow> places(places_tree_);
  return places.Get(place_id);
}

Result<VisitRow> PlacesStore::GetVisit(uint64_t visit_id) const {
  Table<VisitRow> visits(visits_tree_);
  return visits.Get(visit_id);
}

Result<std::vector<uint64_t>> PlacesStore::VisitsForPlace(
    uint64_t place_id) const {
  std::vector<uint64_t> out;
  std::string lo = util::OrderedKeyU64Pair(place_id, 0);
  std::string hi = util::OrderedKeyU64Pair(place_id + 1, 0);
  BP_RETURN_IF_ERROR(visits_by_place_tree_->ForEachRange(
      lo, hi, [&](std::string_view key, std::string_view) {
        out.push_back(util::DecodeOrderedKeyU64(key.substr(8)));
        return true;
      }));
  return out;
}

Status PlacesStore::ForEachPlace(
    const std::function<bool(uint64_t, const PlaceRow&)>& fn) const {
  Table<PlaceRow> places(places_tree_);
  return places.ForEach(fn);
}

Status PlacesStore::ForEachVisit(
    const std::function<bool(uint64_t, const VisitRow&)>& fn) const {
  Table<VisitRow> visits(visits_tree_);
  return visits.ForEach(fn);
}

Status PlacesStore::ForEachDownload(
    const std::function<bool(uint64_t, const DownloadRow&)>& fn) const {
  Table<DownloadRow> downloads(downloads_tree_);
  return downloads.ForEach(fn);
}

Status PlacesStore::ForEachBookmark(
    const std::function<bool(uint64_t, const BookmarkRow&)>& fn) const {
  Table<BookmarkRow> bookmarks(bookmarks_tree_);
  return bookmarks.ForEach(fn);
}

Status PlacesStore::ForEachInput(
    const std::function<bool(uint64_t, const InputRow&)>& fn) const {
  Table<InputRow> inputs(input_tree_);
  return inputs.ForEach(fn);
}

Result<uint64_t> PlacesStore::PlaceCount() const {
  Table<PlaceRow> places(places_tree_);
  return places.Count();
}

Result<uint64_t> PlacesStore::VisitCount() const {
  Table<VisitRow> visits(visits_tree_);
  return visits.Count();
}

namespace {

// Firefox frecency: points for a visit = recency bucket weight scaled by
// a transition bonus; frecency = visit_count * average points over the
// sampled (most recent) visits.
double RecencyBucketWeight(TimeMs age) {
  if (age <= util::Days(4)) return 100.0;
  if (age <= util::Days(14)) return 70.0;
  if (age <= util::Days(31)) return 50.0;
  if (age <= util::Days(90)) return 30.0;
  return 10.0;
}

double TransitionBonus(VisitType type) {
  switch (type) {
    case VisitType::kTyped: return 2.0;
    case VisitType::kBookmark: return 1.75;
    case VisitType::kLink: return 1.0;
    case VisitType::kDownload: return 1.0;
    case VisitType::kFramedLink: return 0.3;
    case VisitType::kEmbed:
    case VisitType::kRedirectPermanent:
    case VisitType::kRedirectTemporary:
    case VisitType::kReload: return 0.0;
  }
  return 0.0;
}

constexpr size_t kFrecencySampleSize = 10;

}  // namespace

Result<double> PlacesStore::Frecency(uint64_t place_id, TimeMs now) const {
  BP_ASSIGN_OR_RETURN(PlaceRow place, GetPlace(place_id));
  BP_ASSIGN_OR_RETURN(std::vector<uint64_t> visit_ids,
                      VisitsForPlace(place_id));
  if (visit_ids.empty()) return 0.0;

  // Most recent visits: visit ids ascend with time of insertion.
  size_t sample =
      std::min(kFrecencySampleSize, visit_ids.size());
  double points = 0.0;
  Table<VisitRow> visits(visits_tree_);
  for (size_t i = visit_ids.size() - sample; i < visit_ids.size(); ++i) {
    BP_ASSIGN_OR_RETURN(VisitRow visit, visits.Get(visit_ids[i]));
    points += RecencyBucketWeight(now - visit.date) *
              TransitionBonus(visit.type);
  }
  return static_cast<double>(place.visit_count) * points /
         static_cast<double>(sample);
}

Result<std::vector<PlaceMatch>> PlacesStore::AutocompleteSearch(
    std::string_view query, size_t k, TimeMs now) const {
  std::vector<std::string> needles;
  for (const std::string& part : util::Split(util::ToLower(query), ' ')) {
    needles.push_back(part);
  }
  std::vector<PlaceMatch> matches;
  BP_RETURN_IF_ERROR(ForEachPlace([&](uint64_t id, const PlaceRow& place) {
    if (place.hidden) return true;
    std::string haystack = util::ToLower(place.url + " " + place.title);
    for (const std::string& needle : needles) {
      if (haystack.find(needle) == std::string::npos) return true;
    }
    matches.push_back(PlaceMatch{id, place, 0.0});
    return true;
  }));
  for (PlaceMatch& match : matches) {
    auto frecency = Frecency(match.place_id, now);
    BP_RETURN_IF_ERROR(frecency.status());
    match.frecency = *frecency;
  }
  std::sort(matches.begin(), matches.end(),
            [](const PlaceMatch& a, const PlaceMatch& b) {
              if (a.frecency != b.frecency) return a.frecency > b.frecency;
              return a.place_id < b.place_id;
            });
  if (matches.size() > k) matches.resize(k);
  return matches;
}

}  // namespace bp::places
