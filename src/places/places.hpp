// PlacesStore: a faithful model of the Firefox 3 "Places" history schema
// — the baseline the paper measures its provenance schema against.
//
// What Places records (and what we reproduce):
//   - moz_places rows: one per URL, with title, visit count, typed flag,
//     last visit date, and on-demand frecency.
//   - moz_historyvisits rows: one per visit, with place, date, visit
//     type (the Firefox "transition" table the paper cites), and
//     from_visit — the referring visit.
//   - moz_bookmarks, moz_inputhistory (typed inputs / form autocomplete),
//     and a downloads table (Firefox 3 kept these in annotations).
//
// What Places deliberately does NOT record — the gaps Section 3 of the
// paper builds its case on — is reproduced too:
//   - from_visit is 0 for typed, bookmark, and new-tab navigations ("when
//     the user moves from page to page by typing in the location bar,
//     most browsers will not record a relationship").
//   - No close timestamps ("from the perspective of Firefox history,
//     every page is always open").
//   - Search queries land in input history as bare strings with no link
//     to the result pages they generated.
//   - Downloads record a source URL but no referral chain.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/db.hpp"
#include "storage/table.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace bp::places {

using util::TimeMs;

// Firefox nsINavHistoryService transition types.
enum class VisitType : uint8_t {
  kLink = 1,
  kTyped = 2,
  kBookmark = 3,
  kEmbed = 4,
  kRedirectPermanent = 5,
  kRedirectTemporary = 6,
  kDownload = 7,
  kFramedLink = 8,
  kReload = 9,
};

struct PlaceRow {
  std::string url;
  std::string title;
  int64_t visit_count = 0;
  bool typed = false;   // ever reached by typing
  bool hidden = false;  // embed/redirect-only places (Firefox hides them)
  TimeMs last_visit = 0;
};

struct VisitRow {
  uint64_t place_id = 0;
  uint64_t from_visit = 0;  // 0 = no recorded referrer
  TimeMs date = 0;
  VisitType type = VisitType::kLink;
};

struct BookmarkRow {
  uint64_t place_id = 0;
  std::string title;
  TimeMs added = 0;
};

struct InputRow {
  std::string input;
  int64_t use_count = 0;
  TimeMs last_used = 0;
};

struct DownloadRow {
  std::string source_url;
  std::string target_path;
  uint64_t place_id = 0;  // the source page, when it is in history
  TimeMs start = 0;
};

// An autocomplete / history-search result.
struct PlaceMatch {
  uint64_t place_id = 0;
  PlaceRow place;
  double frecency = 0.0;
};

class PlacesStore {
 public:
  // Opens (creating if needed) the Places tables in `db` under the
  // "places." tree namespace.
  static util::Result<std::unique_ptr<PlacesStore>> Open(storage::Db& db);

  // Records a visit, upserting the place row. `from_visit` must follow
  // Firefox semantics: callers pass 0 for typed/bookmark/new-tab
  // navigations (see PlacesRecorder). Returns the new visit id.
  util::Result<uint64_t> AddVisit(std::string_view url,
                                  std::string_view title, VisitType type,
                                  uint64_t from_visit, TimeMs date);

  util::Result<uint64_t> AddBookmark(std::string_view url,
                                     std::string_view title, TimeMs added);

  // Typed-input / search-box history (moz_inputhistory): bare strings.
  util::Status AddInput(std::string_view input, TimeMs used);

  util::Result<uint64_t> AddDownload(std::string_view source_url,
                                     std::string_view target_path,
                                     TimeMs start);

  // ------------------------------------------------------------ lookup
  util::Result<uint64_t> PlaceIdForUrl(std::string_view url) const;
  util::Result<PlaceRow> GetPlace(uint64_t place_id) const;
  util::Result<VisitRow> GetVisit(uint64_t visit_id) const;
  util::Result<std::vector<uint64_t>> VisitsForPlace(uint64_t place_id) const;

  util::Status ForEachPlace(
      const std::function<bool(uint64_t id, const PlaceRow&)>& fn) const;
  util::Status ForEachVisit(
      const std::function<bool(uint64_t id, const VisitRow&)>& fn) const;
  util::Status ForEachDownload(
      const std::function<bool(uint64_t id, const DownloadRow&)>& fn) const;
  util::Status ForEachBookmark(
      const std::function<bool(uint64_t id, const BookmarkRow&)>& fn) const;
  util::Status ForEachInput(
      const std::function<bool(uint64_t id, const InputRow&)>& fn) const;

  util::Result<uint64_t> PlaceCount() const;
  util::Result<uint64_t> VisitCount() const;

  // --------------------------------------------------------- frecency
  // Firefox's ranking heuristic: recency-bucketed, transition-weighted
  // points from the most recent visits, scaled by total visit count.
  util::Result<double> Frecency(uint64_t place_id, TimeMs now) const;

  // "Smart location bar" search: every query token must appear as a
  // substring of the URL or title (case-insensitive); results ranked by
  // frecency. This is a full scan, as in Firefox (SQLite LIKE).
  util::Result<std::vector<PlaceMatch>> AutocompleteSearch(
      std::string_view query, size_t k, TimeMs now) const;

 private:
  explicit PlacesStore(storage::Db& db) : db_(db) {}

  util::Result<uint64_t> UpsertPlace(std::string_view url,
                                     std::string_view title, VisitType type,
                                     TimeMs date);

  storage::Db& db_;
  storage::BTree* places_tree_ = nullptr;
  storage::BTree* visits_tree_ = nullptr;
  storage::BTree* bookmarks_tree_ = nullptr;
  storage::BTree* input_tree_ = nullptr;
  storage::BTree* downloads_tree_ = nullptr;
  storage::BTree* url_index_tree_ = nullptr;
  storage::BTree* visits_by_place_tree_ = nullptr;
};

}  // namespace bp::places
