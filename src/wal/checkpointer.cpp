#include "wal/checkpointer.hpp"

#include "util/serde.hpp"

namespace bp::wal {

using storage::File;
using storage::kPageSize;
using util::Result;
using util::Status;

Result<CheckpointResult> Checkpointer::Fold(Env* env, File* db_file,
                                            const std::string& wal_path,
                                            bool sync) {
  CheckpointResult result;
  auto contents = WalReader::ReadCommitted(env, wal_path);
  if (!contents.ok()) {
    if (contents.status().IsNotFound()) return result;  // nothing to fold
    return contents.status();
  }
  if (contents->commits == 0) return result;

  for (const auto& [id, image] : contents->pages) {
    BP_RETURN_IF_ERROR(
        db_file->Write(uint64_t{id} * kPageSize, image));
    ++result.pages_folded;
    result.bytes_written += image.size();
  }
  if (sync) {
    BP_RETURN_IF_ERROR(db_file->Sync());
    result.synced_db = true;
  }
  result.ran = true;
  result.commits = contents->commits;
  result.page_count = contents->last_page_count;
  return result;
}

}  // namespace bp::wal
