#include "wal/checkpointer.hpp"

#include <map>

#include "util/serde.hpp"

namespace bp::wal {

using storage::File;
using storage::kPageSize;
using storage::PageId;
using storage::compress::CompressionOptions;
using util::Result;
using util::Status;

namespace {

// Writes one committed page image into its main-file slot, compressed
// when the policy allows. Page 0 (the header) is always written raw:
// Open reads it before any frame decoder is in play. Compressed frames
// are zero-padded to the slot — the file stays a kPageSize array (and
// refolding identical images rewrites byte-identical slots, keeping
// folds idempotent); the saved bytes are the hole-punchable tail,
// tracked in the result counters.
Status WriteImage(File* db_file, PageId id, const std::string& image,
                  const CompressionOptions& compression,
                  CheckpointResult* result) {
  if (id != 0 && compression.enabled()) {
    std::string frame = storage::compress::MaybeCompressPage(compression,
                                                             image);
    if (!frame.empty()) {
      ++result->pages_compressed;
      result->compressed_bytes += frame.size();
      result->raw_bytes_replaced += image.size();
      frame.resize(kPageSize, '\0');
      BP_RETURN_IF_ERROR(db_file->Write(uint64_t{id} * kPageSize, frame));
      ++result->pages_folded;
      result->bytes_written += frame.size();
      return Status::Ok();
    }
  }
  BP_RETURN_IF_ERROR(db_file->Write(uint64_t{id} * kPageSize, image));
  ++result->pages_folded;
  result->bytes_written += image.size();
  return Status::Ok();
}

}  // namespace

Result<CheckpointResult> Checkpointer::Fold(
    Env* env, File* db_file, const std::string& wal_path, bool sync,
    const CompressionOptions& compression) {
  CheckpointResult result;
  auto contents = WalReader::ReadCommitted(env, wal_path);
  if (!contents.ok()) {
    if (contents.status().IsNotFound()) return result;  // nothing to fold
    return contents.status();
  }
  if (contents->commits == 0) return result;

  for (const auto& [id, image] : contents->pages) {
    BP_RETURN_IF_ERROR(WriteImage(db_file, id, image, compression, &result));
  }
  if (sync) {
    BP_RETURN_IF_ERROR(db_file->Sync());
    result.synced_db = true;
  }
  result.ran = true;
  result.commits = contents->commits;
  result.last_commit_seq = contents->last_commit_seq;
  result.page_count = contents->last_page_count;
  return result;
}

Result<CheckpointResult> Checkpointer::FoldStreams(
    Env* env, File* db_file, const std::vector<std::string>& stream_paths,
    bool sync, const CompressionOptions& compression) {
  CheckpointResult result;

  std::vector<WalContents> streams;
  for (const auto& path : stream_paths) {
    auto contents = WalReader::ReadCommitted(env, path);
    if (!contents.ok()) {
      if (contents.status().IsNotFound()) continue;  // stream never created
      return contents.status();
    }
    streams.push_back(std::move(*contents));
  }
  if (streams.empty()) return result;

  // B: everything at or below the highest base across streams is
  // already in the database file.
  uint64_t base = 0;
  for (const auto& s : streams) base = std::max(base, s.base_seq);

  // Merge the per-stream transaction subsequences into one total order.
  // Every database-wide commit sequence lands in exactly one stream, so
  // the merged keys are unique; a torn stream header (base_seq read as
  // 0, no transactions) merges nothing and cannot lower B below another
  // stream's base.
  std::map<uint64_t, const WalTxn*> merged;
  for (const auto& s : streams) {
    for (const auto& txn : s.txns) {
      if (txn.commit_seq > base) merged[txn.commit_seq] = &txn;
    }
  }

  // Replay while contiguous: the first missing sequence is a lost
  // stream tail; everything above it is discarded with it.
  uint64_t next = base + 1;
  const WalTxn* last_applied = nullptr;
  std::map<PageId, const std::string*> latest;  // collapse rewrites
  for (const auto& [seq, txn] : merged) {
    if (seq != next) break;
    for (const auto& [id, image] : txn->pages) latest[id] = &image;
    last_applied = txn;
    ++result.commits;
    ++next;
  }
  if (last_applied == nullptr) return result;

  for (const auto& [id, image] : latest) {
    BP_RETURN_IF_ERROR(WriteImage(db_file, id, *image, compression, &result));
  }
  if (sync) {
    BP_RETURN_IF_ERROR(db_file->Sync());
    result.synced_db = true;
  }
  result.ran = true;
  result.last_commit_seq = last_applied->commit_seq;
  result.page_count = last_applied->page_count;
  return result;
}

}  // namespace bp::wal
