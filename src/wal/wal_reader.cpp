#include "wal/wal_reader.hpp"

#include <utility>

#include "util/hash.hpp"
#include "util/serde.hpp"

namespace bp::wal {

using storage::File;
using storage::kPageSize;
using util::Reader;
using util::Result;
using util::Status;

Result<WalContents> WalReader::ReadCommitted(Env* env,
                                             const std::string& path) {
  if (!env->Exists(path)) return Status::NotFound("no wal: " + path);
  BP_ASSIGN_OR_RETURN(std::unique_ptr<File> file, env->Open(path));
  BP_ASSIGN_OR_RETURN(uint64_t size, file->Size());

  WalContents out;
  if (size < kWalFileHeaderBytes) {
    // Crash before even the header landed; an empty log.
    out.torn_tail = size > 0;
    return out;
  }

  std::string raw;
  BP_RETURN_IF_ERROR(file->Read(0, size, &raw));
  Reader header(std::string_view(raw).substr(0, kWalFileHeaderBytes));
  uint32_t magic = header.ReadU32();
  uint32_t version = header.ReadU32();
  uint32_t page_size = header.ReadU32();
  header.ReadU64();  // salt (fixed; chain seeds from kWalSalt)
  uint32_t stream_id = header.ReadU32();
  uint64_t base_seq = header.ReadU64();
  if (magic != kWalMagic || version != kWalVersion ||
      page_size != kPageSize) {
    return Status::Corruption("bad wal header: " + path);
  }
  out.stream_id = stream_id;
  out.base_seq = base_seq;
  out.valid_bytes = kWalFileHeaderBytes;

  // Page images of the transaction currently being scanned; promoted to
  // out.pages / out.txns when (and only when) its commit frame validates.
  std::map<PageId, std::string> pending;
  uint64_t chain = kWalSalt;
  uint64_t expected_lsn = 1;
  size_t pos = kWalFileHeaderBytes;
  while (pos < raw.size()) {
    size_t remaining = raw.size() - pos;
    if (remaining < kWalFrameHeaderBytes + kWalFrameTrailerBytes) {
      out.torn_tail = true;
      break;
    }
    Reader r(std::string_view(raw).substr(pos));
    uint8_t type = r.ReadU8();
    uint8_t stream = r.ReadU8();
    PageId page_id = r.ReadU32();
    uint64_t lsn = r.ReadU64();
    uint32_t payload_len = r.ReadU32();
    size_t frame_bytes = FrameBytes(payload_len);
    bool shape_ok =
        remaining >= frame_bytes && lsn == expected_lsn &&
        stream == static_cast<uint8_t>(stream_id) &&
        ((type == static_cast<uint8_t>(FrameType::kPageImage) &&
          payload_len == kPageSize) ||
         (type == static_cast<uint8_t>(FrameType::kCommit) &&
          payload_len == kWalCommitPayloadBytes));
    if (!shape_ok) {
      out.torn_tail = true;
      break;
    }
    std::string_view payload = r.ReadRaw(payload_len);
    uint64_t stored_checksum = r.ReadU64();
    std::string_view body(raw.data() + pos,
                          kWalFrameHeaderBytes + payload_len);
    uint64_t computed = util::Fnv1a64(body, chain);
    if (!r.ok() || computed != stored_checksum) {
      out.torn_tail = true;
      break;
    }

    chain = computed;
    expected_lsn = lsn + 1;
    ++out.frames;
    pos += frame_bytes;
    out.valid_bytes = pos;

    if (type == static_cast<uint8_t>(FrameType::kPageImage)) {
      pending[page_id] = std::string(payload);
    } else {
      Reader c(payload);
      uint64_t commit_seq = c.ReadU64();
      uint32_t page_count = c.ReadU32();
      WalTxn txn;
      txn.commit_seq = commit_seq;
      txn.page_count = page_count;
      txn.pages = pending;  // copy: aggregate view still wants the images
      for (auto& [id, image] : pending) {
        out.pages[id] = std::move(image);
      }
      pending.clear();
      out.txns.push_back(std::move(txn));
      out.last_commit_seq = commit_seq;
      out.last_page_count = page_count;
      ++out.commits;
    }
  }
  // `pending` — page images whose commit frame never landed — is dropped:
  // that transaction did not happen.
  return out;
}

}  // namespace bp::wal
