// WalWriter: append side of the write-ahead log.
//
// Usage per transaction (driven by the Pager):
//   for each dirty page: offset = writer.AddPage(id, bytes);
//   writer.CommitTxn(commit_seq, page_count);
//   if (group window full) writer.Sync();
//
// AddPage buffers frames in memory; CommitTxn appends the buffered page
// frames plus a commit frame to the file in ONE File::Write call, so a
// commit is a single sequential append. Sync() is separate so the caller
// can coalesce several committed transactions into one fsync (group
// commit). Everything written by CommitTxn is immediately visible to
// ReadPayload (the pager reads evicted pages back out of the log);
// durability, not visibility, is what Sync() adds.
//
// Threading: deliberately lock-free and UNANNOTATED (no capability
// attributes from util/thread_annotations.hpp). Every mutating method
// (AddPage/CommitTxn/AbandonTxn/Sync/ResetToHeader) and the size
// accessors belong to the pager's single writer thread — the same
// external contract the Pager's own unguarded write-path members rely
// on, enforced one layer up by the serialization on ProvenanceDb's
// writer mutex. The one cross-thread entry point, ReadPayload, is
// const, touches no writer-side members, and is made safe by the
// per-file reader/writer lock inside File (see storage/env.hpp) plus
// the pager's rule that checkpoint truncation never runs while a
// snapshot is live. Adding a mutex here would annotate away a data
// race that cannot occur while taxing every commit append.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "storage/env.hpp"
#include "util/serde.hpp"
#include "wal/wal_format.hpp"

namespace bp::wal {

using storage::Env;
using storage::File;
using storage::PageId;

class WalWriter {
 public:
  // Opens `path`, truncating any previous contents and writing a fresh
  // file header. Recovery (wal_reader + checkpointer) must run BEFORE
  // construction; an existing log is assumed already folded into the
  // database file.
  static util::Result<std::unique_ptr<WalWriter>> Open(Env* env,
                                                       std::string path);

  // Buffers one page-image frame for the transaction being committed.
  // Returns the file offset the payload will occupy once CommitTxn
  // appends it (valid only if CommitTxn succeeds).
  uint64_t AddPage(PageId id, std::string_view data);

  // Appends the buffered page frames and a commit frame. No fsync.
  util::Status CommitTxn(uint64_t commit_seq, uint32_t page_count);

  // Drops buffered frames without writing (transaction rolled back
  // between AddPage and CommitTxn — cannot happen today, defensive).
  void AbandonTxn();

  // Fsyncs the file if any bytes were appended since the last sync.
  // Returns the number of bytes this call made durable (0 = no-op).
  util::Result<uint64_t> Sync();

  // Truncates back to the file header after a checkpoint folded the log
  // into the database file. Resets the checksum chain and LSN counter.
  util::Status ResetToHeader();

  // Reads `n` payload bytes at `offset` (as returned by AddPage).
  // Thread-safe against concurrent CommitTxn appends (File::Read at
  // already-written offsets; see storage/env.hpp) — this is how
  // snapshots read pinned frames while the writer keeps logging. NOT
  // safe against ResetToHeader, which truncates; the pager only
  // checkpoints when no snapshot is live.
  util::Status ReadPayload(uint64_t offset, size_t n, std::string* out) const;

  // Total file bytes (header + appended frames).
  uint64_t SizeBytes() const { return file_bytes_; }
  uint64_t bytes_since_sync() const { return file_bytes_ - synced_bytes_; }
  uint64_t next_lsn() const { return next_lsn_; }

 private:
  WalWriter(std::unique_ptr<File> file, std::string path)
      : file_(std::move(file)), path_(std::move(path)) {}

  void AppendFrame(FrameType type, PageId page_id, std::string_view payload);

  std::unique_ptr<File> file_;
  std::string path_;
  util::Writer buffer_;        // frames of the in-flight transaction
  uint64_t file_bytes_ = 0;    // committed file length
  uint64_t synced_bytes_ = 0;  // file length at last fsync
  uint64_t next_lsn_ = 1;
  uint64_t chain_checksum_ = kWalSalt;    // durable chain state
  uint64_t pending_checksum_ = kWalSalt;  // chain incl. buffered frames
  uint64_t pending_lsn_ = 1;
};

}  // namespace bp::wal
