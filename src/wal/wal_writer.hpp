// WalWriter: append side of one write-ahead log stream.
//
// Usage per transaction (driven by the Pager):
//   for each dirty page: offset = writer.AddPage(id, bytes);
//   writer.CommitTxn(commit_seq, page_count);
//   if (group window full) writer.Sync();
//
// AddPage buffers frames in memory; CommitTxn appends the buffered page
// frames plus a commit frame to the file in ONE File::Write call, so a
// commit is a single sequential append. Sync() is separate so the caller
// can coalesce several committed transactions into one fsync (group
// commit). Everything written by CommitTxn is immediately visible to
// ReadPayload (the pager reads evicted pages back out of the log);
// durability, not visibility, is what Sync() adds.
//
// Threading: the append side (AddPage/CommitTxn/AbandonTxn and the size
// accessors) belongs to the pager's single writer thread — enforced one
// layer up by the serialization on ProvenanceDb's writer mutex, the same
// external contract the Pager's own unguarded write-path members rely
// on. Sync(), however, may be called from a DIFFERENT thread than the
// one appending (the index-maintenance lane fsyncs its domain's stream
// while the ingest committer keeps appending to another — and, at drain
// barriers, to this one): CommitTxn publishes the committed length with
// a release store and Sync reads it with an acquire load, so a sync
// covers exactly the commits whose Write completed before it started.
// Concurrent Sync calls on the SAME stream must be serialized by the
// caller (the Pager's per-domain mutex); synced_bytes_ is only touched
// under that external lock. ReadPayload is const, touches no writer-side
// members, and is made safe by the per-file reader/writer lock inside
// File (see storage/env.hpp) plus the pager's rule that checkpoint
// truncation never runs while a snapshot is live.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "storage/env.hpp"
#include "util/serde.hpp"
#include "wal/wal_format.hpp"

namespace bp::wal {

using storage::Env;
using storage::File;
using storage::PageId;

class WalWriter {
 public:
  // Opens `path`, truncating any previous contents and writing a fresh
  // file header carrying `stream_id` and `base_seq` (the commit
  // sequence the main database file already contains — recovery skips
  // commit frames at or below the highest base across streams).
  // Recovery (wal_reader + checkpointer) must run BEFORE construction;
  // an existing log is assumed already folded into the database file.
  static util::Result<std::unique_ptr<WalWriter>> Open(Env* env,
                                                       std::string path,
                                                       uint32_t stream_id = 0,
                                                       uint64_t base_seq = 0);

  // Buffers one page-image frame for the transaction being committed.
  // Returns the file offset the payload will occupy once CommitTxn
  // appends it (valid only if CommitTxn succeeds).
  uint64_t AddPage(PageId id, std::string_view data);

  // Appends the buffered page frames and a commit frame. No fsync.
  util::Status CommitTxn(uint64_t commit_seq, uint32_t page_count);

  // Drops buffered frames without writing (transaction rolled back
  // between AddPage and CommitTxn — cannot happen today, defensive).
  void AbandonTxn();

  // Fsyncs the file if any bytes were committed since the last sync.
  // Returns the number of bytes this call made durable (0 = no-op).
  // Callable from a non-append thread (see header comment); concurrent
  // Syncs of one stream must be serialized by the caller.
  util::Result<uint64_t> Sync();

  // Truncates to a fresh file header carrying `base_seq` after a
  // checkpoint folded the log into the database file. Resets the
  // checksum chain and LSN counter. Append-thread only, and never
  // concurrent with Sync (the pager holds every domain mutex across a
  // checkpoint).
  util::Status ResetToHeader(uint64_t base_seq);

  // Reads `n` payload bytes at `offset` (as returned by AddPage).
  // Thread-safe against concurrent CommitTxn appends (File::Read at
  // already-written offsets; see storage/env.hpp) — this is how
  // snapshots read pinned frames while the writer keeps logging. NOT
  // safe against ResetToHeader, which truncates; the pager only
  // checkpoints when no snapshot is live.
  util::Status ReadPayload(uint64_t offset, size_t n, std::string* out) const;

  // Total file bytes (header + appended frames). Append-thread only.
  uint64_t SizeBytes() const { return file_bytes_; }
  uint64_t bytes_since_sync() const {
    return file_bytes_ - synced_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t next_lsn() const { return next_lsn_; }
  uint32_t stream_id() const { return stream_id_; }
  // Committed (appended) file length, header included. Thread-safe.
  uint64_t committed_bytes() const {
    return committed_bytes_.load(std::memory_order_relaxed);
  }

 private:
  WalWriter(std::unique_ptr<File> file, std::string path, uint32_t stream_id)
      : file_(std::move(file)),
        path_(std::move(path)),
        stream_id_(stream_id) {}

  void AppendFrame(FrameType type, PageId page_id, std::string_view payload);
  util::Status WriteHeader(uint64_t base_seq);

  std::unique_ptr<File> file_;
  std::string path_;
  const uint32_t stream_id_;
  util::Writer buffer_;      // frames of the in-flight transaction
  uint64_t file_bytes_ = 0;  // committed file length (append thread)
  // Committed file length as published to Sync: stored with release
  // order after the File::Write of each commit, loaded with acquire by
  // Sync — possibly on another thread.
  std::atomic<uint64_t> committed_bytes_{0};
  // File length at last fsync. Only touched by Sync/ResetToHeader,
  // serialized by the caller (per-domain mutex / checkpoint exclusivity);
  // atomic so bytes_since_sync() on the append thread reads tear-free.
  std::atomic<uint64_t> synced_bytes_{0};
  uint64_t next_lsn_ = 1;
  uint64_t chain_checksum_ = kWalSalt;    // durable chain state
  uint64_t pending_checksum_ = kWalSalt;  // chain incl. buffered frames
  uint64_t pending_lsn_ = 1;
};

}  // namespace bp::wal
