// On-disk format of a write-ahead log stream.
//
// A database owns one WAL stream per WRITE DOMAIN (stream 0 lives at
// <db path>.wal, stream N at <db path>.walN). Each stream is a
// sequential, checksummed redo log with its own LSN sequence and its own
// chained checksum. A committing transaction appends one kPageImage
// frame per dirty page followed by a kCommit frame — all to the stream
// its write domain owns, in a single File::Write; durability costs at
// most one fsync per stream (and, with group commit, one fsync per
// *window* of transactions).
//
// Layout:
//   file header:  magic u32 | version u32 | page_size u32 | salt u64 |
//                 stream_id u32 | base_seq u64
//   frame header: type u8 | stream u8 | page_id u32 | lsn u64 |
//                 payload_len u32
//   frame:        header | payload bytes | checksum u64
//
// The checksum is FNV-1a over the frame header + payload, *seeded with
// the previous frame's checksum* (the first frame is seeded with the
// file header's salt). Chaining means a frame only validates if every
// frame before it validated, so a reader can treat the first bad or
// torn frame as the end of the log — exactly the property crash
// recovery needs: a crash at any byte boundary leaves a valid committed
// prefix *of that stream*.
//
// kCommit frames carry (commit_seq u64, page_count u32). commit_seq is
// drawn from the database-wide commit clock, so the union of all
// streams' commit frames forms one total order; each stream carries a
// subsequence of it. `base_seq` records the commit sequence the main
// database file already contained when the stream was (re)created —
// recovery skips commit frames at or below the highest base across
// streams, then replays the merged sequence while it stays contiguous
// (see Checkpointer::FoldStreams). The per-frame stream byte must match
// the header's stream_id; a frame from another stream ends the log like
// any other corruption.
//
// Page images that are not followed by a commit frame belong to a
// transaction whose fsync never completed; recovery ignores them.
#pragma once

#include <cstdint>

#include "storage/page.hpp"

namespace bp::wal {

constexpr uint32_t kWalMagic = 0x4250574c;  // "BPWL"
constexpr uint32_t kWalVersion = 2;         // 2: stream id + base seq

// Fixed seed for the first frame's checksum chain. A per-file random salt
// would guard against reading frames from a *previous* WAL incarnation,
// but the log is truncated to its header after every checkpoint, so stale
// frames cannot be observed through this Env API.
constexpr uint64_t kWalSalt = 0x77616c2d73616c74ULL;  // "wal-salt"

constexpr size_t kWalFileHeaderBytes = 4 + 4 + 4 + 8 + 4 + 8;
constexpr size_t kWalFrameHeaderBytes = 1 + 1 + 4 + 8 + 4;
constexpr size_t kWalFrameTrailerBytes = 8;  // checksum

enum class FrameType : uint8_t {
  kPageImage = 1,
  kCommit = 2,
};

// Payload of a kCommit frame: commit_seq u64 | page_count u32.
constexpr size_t kWalCommitPayloadBytes = 8 + 4;

inline constexpr size_t FrameBytes(size_t payload_len) {
  return kWalFrameHeaderBytes + payload_len + kWalFrameTrailerBytes;
}

}  // namespace bp::wal
