// On-disk format of the write-ahead log (<db path>.wal).
//
// The WAL is a sequential, checksummed redo log. A committing transaction
// appends one kPageImage frame per dirty page followed by a kCommit frame,
// all in a single File::Write; durability costs at most one fsync (and,
// with group commit, one fsync per *window* of transactions).
//
// Layout:
//   file header:  magic u32 | version u32 | page_size u32 | salt u64
//   frame header: type u8 | page_id u32 | lsn u64 | payload_len u32
//   frame:        header | payload bytes | checksum u64
//
// The checksum is FNV-1a over the frame header + payload, *seeded with
// the previous frame's checksum* (the first frame is seeded with the file
// header's salt). Chaining means a frame only validates if every frame
// before it validated, so a reader can treat the first bad or torn frame
// as the end of the log — exactly the property crash recovery needs: a
// crash at any byte boundary leaves a valid committed prefix.
//
// kCommit frames carry (commit_seq u64, page_count u32). Page images that
// are not followed by a commit frame belong to a transaction whose fsync
// never completed; recovery ignores them.
#pragma once

#include <cstdint>

#include "storage/page.hpp"

namespace bp::wal {

constexpr uint32_t kWalMagic = 0x4250574c;  // "BPWL"
constexpr uint32_t kWalVersion = 1;

// Fixed seed for the first frame's checksum chain. A per-file random salt
// would guard against reading frames from a *previous* WAL incarnation,
// but the log is truncated to its header after every checkpoint, so stale
// frames cannot be observed through this Env API.
constexpr uint64_t kWalSalt = 0x77616c2d73616c74ULL;  // "wal-salt"

constexpr size_t kWalFileHeaderBytes = 4 + 4 + 4 + 8;
constexpr size_t kWalFrameHeaderBytes = 1 + 4 + 8 + 4;
constexpr size_t kWalFrameTrailerBytes = 8;  // checksum

enum class FrameType : uint8_t {
  kPageImage = 1,
  kCommit = 2,
};

// Payload of a kCommit frame: commit_seq u64 | page_count u32.
constexpr size_t kWalCommitPayloadBytes = 8 + 4;

inline constexpr size_t FrameBytes(size_t payload_len) {
  return kWalFrameHeaderBytes + payload_len + kWalFrameTrailerBytes;
}

}  // namespace bp::wal
