// Checkpointer: folds the committed contents of a write-ahead log back
// into the main database file.
//
// Protocol (both call sites follow it; Fold only does step 2):
//   1. The caller makes sure the log is durable (WalWriter::Sync) — the
//      log must always be AHEAD of the database file, otherwise a crash
//      could leave the database holding pages from a transaction the log
//      does not know committed.
//   2. Fold() writes the latest committed image of every page in the log
//      into the database file, then fsyncs it (when sync=true).
//   3. The caller retires the log (WalWriter::ResetToHeader at runtime,
//      Env::Remove during open-time recovery). A crash between 2 and 3
//      is harmless: folding is idempotent, the next open refolds.
//
// Used at two points: Pager::Open (crash recovery = a fold of whatever
// committed prefix survives) and at runtime when the log crosses the
// size threshold or the pager closes cleanly.
#pragma once

#include <cstdint>
#include <string>

#include "storage/env.hpp"
#include "wal/wal_reader.hpp"

namespace bp::wal {

struct CheckpointResult {
  bool ran = false;            // false: no log / no committed frames
  uint64_t pages_folded = 0;
  uint64_t bytes_written = 0;
  uint64_t commits = 0;        // committed transactions folded
  uint32_t page_count = 0;     // database page count after the fold
  bool synced_db = false;
};

class Checkpointer {
 public:
  // Folds committed frames of `wal_path` into `db_file` (step 2 above).
  static util::Result<CheckpointResult> Fold(Env* env,
                                             storage::File* db_file,
                                             const std::string& wal_path,
                                             bool sync);
};

}  // namespace bp::wal
