// Checkpointer: folds the committed contents of write-ahead log
// streams back into the main database file.
//
// Protocol (both call sites follow it; Fold/FoldStreams only do step 2):
//   1. The caller makes sure the log is durable (WalWriter::Sync) — the
//      log must always be AHEAD of the database file, otherwise a crash
//      could leave the database holding pages from a transaction the log
//      does not know committed. (During open-time crash recovery there
//      is nothing to sync: whatever survived IS the log.)
//   2. Fold()/FoldStreams() write committed page images from the log(s)
//      into the database file, then fsync it (when sync=true; a caller
//      that wants to append its own header patch to the same fsync
//      passes sync=false and syncs the db file itself).
//   3. The caller retires the log(s) (WalWriter::ResetToHeader at
//      runtime, Env::Remove during open-time recovery) — only AFTER the
//      fold is durable. A crash between 2 and 3 is harmless: folding is
//      idempotent, the next open refolds (and a stream removed early by
//      a crash mid-step-3 at most re-creates a gap above the already-
//      durable fold, which folds nothing).
//
// FoldStreams merges several domain streams into ONE total order:
//   B = max(base_seq over present streams)   — everything at or below B
//       is already in the database file (base_seq records the commit
//       sequence the db contained when the stream was (re)created);
//   replay merged commit sequences B+1, B+2, ... while contiguous —
//       every database-wide commit sequence lands in exactly one
//       stream, so a missing sequence means some stream lost its tail
//       in a crash; transactions above the gap may depend on pages
//       (allocations, freelist, header) from the missing one and are
//       discarded with it. The surviving prefix is the highest
//       MUTUALLY CONSISTENT merged sequence across all streams.
//
// Used at two points: Pager::Open (crash recovery = a fold of whatever
// committed prefix survives) and at runtime when the logs cross the
// size threshold or the pager closes cleanly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/compress.hpp"
#include "storage/env.hpp"
#include "wal/wal_reader.hpp"

namespace bp::wal {

struct CheckpointResult {
  bool ran = false;  // false: no log / no committed frames
  uint64_t pages_folded = 0;
  uint64_t bytes_written = 0;
  uint64_t commits = 0;          // committed transactions folded
  uint64_t last_commit_seq = 0;  // highest merged sequence folded
  uint32_t page_count = 0;       // database page count after the fold
  bool synced_db = false;
  // Compression accounting (zero when folding uncompressed): pages
  // whose slot got a compressed frame, the physical frame bytes those
  // slots hold, and the raw page bytes they replace.
  uint64_t pages_compressed = 0;
  uint64_t compressed_bytes = 0;
  uint64_t raw_bytes_replaced = 0;
};

class Checkpointer {
 public:
  // Folds committed frames of the single stream `wal_path` into
  // `db_file` (step 2 above). When `compression` is enabled, eligible
  // pages (never page 0 — the header is read before any decoder exists)
  // are folded as self-describing compressed frames, zero-padded to the
  // page slot; incompressible pages (ratio floor) stay raw. Folding is
  // still idempotent: refolding the same images rewrites byte-identical
  // slots.
  static util::Result<CheckpointResult> Fold(
      Env* env, storage::File* db_file, const std::string& wal_path,
      bool sync, const storage::compress::CompressionOptions& compression =
                     storage::compress::CompressionOptions{
                         storage::compress::CompressionOptions::Mode::kOff});

  // Folds the merged, mutually consistent prefix of several domain
  // streams into `db_file` (see file header). Missing stream files are
  // skipped; a Corruption from any present stream's file header is
  // propagated. `compression` as for Fold.
  static util::Result<CheckpointResult> FoldStreams(
      Env* env, storage::File* db_file,
      const std::vector<std::string>& stream_paths, bool sync,
      const storage::compress::CompressionOptions& compression =
          storage::compress::CompressionOptions{
              storage::compress::CompressionOptions::Mode::kOff});
};

}  // namespace bp::wal
