#include "wal/wal_writer.hpp"

#include "util/hash.hpp"
#include "util/require.hpp"

namespace bp::wal {

using util::Result;
using util::Status;
using util::Writer;

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env,
                                                   std::string path) {
  BP_ASSIGN_OR_RETURN(std::unique_ptr<File> file, env->Open(path));
  BP_RETURN_IF_ERROR(file->Truncate(0));
  Writer w;
  w.PutU32(kWalMagic);
  w.PutU32(kWalVersion);
  w.PutU32(storage::kPageSize);
  w.PutU64(kWalSalt);
  BP_CHECK(w.size() == kWalFileHeaderBytes);
  BP_RETURN_IF_ERROR(file->Write(0, w.data()));

  std::unique_ptr<WalWriter> writer(
      new WalWriter(std::move(file), std::move(path)));
  writer->file_bytes_ = kWalFileHeaderBytes;
  writer->synced_bytes_ = 0;  // the header itself is not yet durable
  return writer;
}

void WalWriter::AppendFrame(FrameType type, PageId page_id,
                            std::string_view payload) {
  size_t frame_start = buffer_.size();
  buffer_.PutU8(static_cast<uint8_t>(type));
  buffer_.PutU32(page_id);
  buffer_.PutU64(pending_lsn_++);
  buffer_.PutU32(static_cast<uint32_t>(payload.size()));
  buffer_.PutRaw(payload);
  std::string_view body(buffer_.data().data() + frame_start,
                        buffer_.size() - frame_start);
  pending_checksum_ = util::Fnv1a64(body, pending_checksum_);
  buffer_.PutU64(pending_checksum_);
}

uint64_t WalWriter::AddPage(PageId id, std::string_view data) {
  BP_REQUIRE(data.size() == storage::kPageSize,
             "WAL page frames carry whole pages");
  uint64_t payload_offset =
      file_bytes_ + buffer_.size() + kWalFrameHeaderBytes;
  AppendFrame(FrameType::kPageImage, id, data);
  return payload_offset;
}

Status WalWriter::CommitTxn(uint64_t commit_seq, uint32_t page_count) {
  Writer payload;
  payload.PutU64(commit_seq);
  payload.PutU32(page_count);
  AppendFrame(FrameType::kCommit, storage::kNoPage, payload.data());

  BP_RETURN_IF_ERROR(file_->Write(file_bytes_, buffer_.data()));
  file_bytes_ += buffer_.size();
  chain_checksum_ = pending_checksum_;
  next_lsn_ = pending_lsn_;
  buffer_.Clear();
  return Status::Ok();
}

void WalWriter::AbandonTxn() {
  buffer_.Clear();
  pending_checksum_ = chain_checksum_;
  pending_lsn_ = next_lsn_;
}

Result<uint64_t> WalWriter::Sync() {
  BP_CHECK(buffer_.size() == 0, "Sync with an uncommitted buffered txn");
  if (file_bytes_ == synced_bytes_) return uint64_t{0};
  BP_RETURN_IF_ERROR(file_->Sync());
  uint64_t made_durable = file_bytes_ - synced_bytes_;
  synced_bytes_ = file_bytes_;
  return made_durable;
}

Status WalWriter::ResetToHeader() {
  BP_CHECK(buffer_.size() == 0, "checkpoint during a buffered txn");
  BP_RETURN_IF_ERROR(file_->Truncate(kWalFileHeaderBytes));
  file_bytes_ = kWalFileHeaderBytes;
  synced_bytes_ = std::min(synced_bytes_, file_bytes_);
  chain_checksum_ = kWalSalt;
  pending_checksum_ = kWalSalt;
  next_lsn_ = 1;
  pending_lsn_ = 1;
  return Status::Ok();
}

Status WalWriter::ReadPayload(uint64_t offset, size_t n,
                              std::string* out) const {
  return file_->Read(offset, n, out);
}

}  // namespace bp::wal
