#include "wal/wal_writer.hpp"

#include "util/hash.hpp"
#include "util/require.hpp"

namespace bp::wal {

using util::Result;
using util::Status;
using util::Writer;

Status WalWriter::WriteHeader(uint64_t base_seq) {
  Writer w;
  w.PutU32(kWalMagic);
  w.PutU32(kWalVersion);
  w.PutU32(storage::kPageSize);
  w.PutU64(kWalSalt);
  w.PutU32(stream_id_);
  w.PutU64(base_seq);
  BP_CHECK(w.size() == kWalFileHeaderBytes);
  return file_->Write(0, w.data());
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env, std::string path,
                                                   uint32_t stream_id,
                                                   uint64_t base_seq) {
  BP_ASSIGN_OR_RETURN(std::unique_ptr<File> file, env->Open(path));
  BP_RETURN_IF_ERROR(file->Truncate(0));
  std::unique_ptr<WalWriter> writer(
      new WalWriter(std::move(file), std::move(path), stream_id));
  BP_RETURN_IF_ERROR(writer->WriteHeader(base_seq));
  writer->file_bytes_ = kWalFileHeaderBytes;
  writer->committed_bytes_.store(kWalFileHeaderBytes,
                                 std::memory_order_relaxed);
  // The header itself is not yet durable.
  writer->synced_bytes_.store(0, std::memory_order_relaxed);
  return writer;
}

void WalWriter::AppendFrame(FrameType type, PageId page_id,
                            std::string_view payload) {
  size_t frame_start = buffer_.size();
  buffer_.PutU8(static_cast<uint8_t>(type));
  buffer_.PutU8(static_cast<uint8_t>(stream_id_));
  buffer_.PutU32(page_id);
  buffer_.PutU64(pending_lsn_++);
  buffer_.PutU32(static_cast<uint32_t>(payload.size()));
  buffer_.PutRaw(payload);
  std::string_view body(buffer_.data().data() + frame_start,
                        buffer_.size() - frame_start);
  pending_checksum_ = util::Fnv1a64(body, pending_checksum_);
  buffer_.PutU64(pending_checksum_);
}

uint64_t WalWriter::AddPage(PageId id, std::string_view data) {
  BP_REQUIRE(data.size() == storage::kPageSize,
             "WAL page frames carry whole pages");
  uint64_t payload_offset =
      file_bytes_ + buffer_.size() + kWalFrameHeaderBytes;
  AppendFrame(FrameType::kPageImage, id, data);
  return payload_offset;
}

Status WalWriter::CommitTxn(uint64_t commit_seq, uint32_t page_count) {
  Writer payload;
  payload.PutU64(commit_seq);
  payload.PutU32(page_count);
  AppendFrame(FrameType::kCommit, storage::kNoPage, payload.data());

  BP_RETURN_IF_ERROR(file_->Write(file_bytes_, buffer_.data()));
  file_bytes_ += buffer_.size();
  // Release-publish the new committed length so a Sync on another
  // thread that observes it also observes the File::Write above.
  committed_bytes_.store(file_bytes_, std::memory_order_release);
  chain_checksum_ = pending_checksum_;
  next_lsn_ = pending_lsn_;
  buffer_.Clear();
  return Status::Ok();
}

void WalWriter::AbandonTxn() {
  buffer_.Clear();
  pending_checksum_ = chain_checksum_;
  pending_lsn_ = next_lsn_;
}

Result<uint64_t> WalWriter::Sync() {
  // Snapshot the committed length first: commits that land after this
  // load are NOT counted as durable even if the fsync happens to cover
  // them — conservative, and what the caller's unsynced-commit
  // accounting assumes.
  uint64_t committed = committed_bytes_.load(std::memory_order_acquire);
  uint64_t synced = synced_bytes_.load(std::memory_order_relaxed);
  if (committed == synced) return uint64_t{0};
  BP_RETURN_IF_ERROR(file_->Sync());
  synced_bytes_.store(committed, std::memory_order_relaxed);
  return committed - synced;
}

Status WalWriter::ResetToHeader(uint64_t base_seq) {
  BP_CHECK(buffer_.size() == 0, "checkpoint during a buffered txn");
  BP_RETURN_IF_ERROR(file_->Truncate(0));
  BP_RETURN_IF_ERROR(WriteHeader(base_seq));
  file_bytes_ = kWalFileHeaderBytes;
  committed_bytes_.store(file_bytes_, std::memory_order_relaxed);
  // The rewritten header is not durable yet; force the next Sync to
  // fsync it.
  synced_bytes_.store(0, std::memory_order_relaxed);
  chain_checksum_ = kWalSalt;
  pending_checksum_ = kWalSalt;
  next_lsn_ = 1;
  pending_lsn_ = 1;
  return Status::Ok();
}

Status WalWriter::ReadPayload(uint64_t offset, size_t n,
                              std::string* out) const {
  return file_->Read(offset, n, out);
}

}  // namespace bp::wal
