// WalReader: scan side of one write-ahead log stream, used by crash
// recovery and the checkpointer.
//
// The reader walks frames from the start of the file, verifying the
// chained checksum, and STOPS at the first invalid frame — torn tail,
// bad checksum, wrong stream byte, or garbage. Everything after that
// point is treated as if it were never written (it is a crashed
// append). Page images are only surfaced once their transaction's
// kCommit frame has validated; trailing images with no commit frame are
// discarded.
//
// A scan yields both the stream's aggregate committed state (latest
// image per page — what a single-stream fold needs) and the per-
// transaction breakdown (`txns`, ordered by commit sequence — what the
// multi-stream merged fold needs to interleave transactions from
// several streams into one total order; see Checkpointer::FoldStreams).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "storage/env.hpp"
#include "wal/wal_format.hpp"

namespace bp::wal {

using storage::Env;
using storage::PageId;

// One committed transaction as recovered from a stream scan.
struct WalTxn {
  uint64_t commit_seq = 0;
  uint32_t page_count = 0;  // database page count as of this commit
  std::map<PageId, std::string> pages;
};

// The committed state recovered from a log scan.
struct WalContents {
  // Latest committed image of every page present in the log.
  std::map<PageId, std::string> pages;
  // Every committed transaction, in log (= commit sequence) order.
  std::vector<WalTxn> txns;
  uint32_t stream_id = 0;   // from the file header
  uint64_t base_seq = 0;    // from the file header
  uint64_t last_commit_seq = 0;
  uint32_t last_page_count = 0;
  uint64_t commits = 0;
  uint64_t frames = 0;       // valid frames, committed or not
  uint64_t valid_bytes = 0;  // header + every validated frame
  bool torn_tail = false;    // scan stopped before end-of-file
};

class WalReader {
 public:
  // Scans <path>. Returns NotFound when the file does not exist, and
  // Corruption only when the FILE HEADER is malformed (a bad header means
  // this is not a WAL we wrote; a bad frame is an expected crash artifact
  // and just ends the scan with torn_tail=true).
  static util::Result<WalContents> ReadCommitted(Env* env,
                                                 const std::string& path);
};

}  // namespace bp::wal
