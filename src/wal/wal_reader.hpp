// WalReader: scan side of the write-ahead log, used by crash recovery
// and the checkpointer.
//
// The reader walks frames from the start of the file, verifying the
// chained checksum, and STOPS at the first invalid frame — torn tail,
// bad checksum, or garbage. Everything after that point is treated as
// if it were never written (it is a crashed append). Page images are
// only surfaced once their transaction's kCommit frame has validated;
// trailing images with no commit frame are discarded.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "storage/env.hpp"
#include "wal/wal_format.hpp"

namespace bp::wal {

using storage::Env;
using storage::PageId;

// The committed state recovered from a log scan.
struct WalContents {
  // Latest committed image of every page present in the log.
  std::map<PageId, std::string> pages;
  uint64_t last_commit_seq = 0;
  uint32_t last_page_count = 0;
  uint64_t commits = 0;
  uint64_t frames = 0;          // valid frames, committed or not
  uint64_t valid_bytes = 0;     // header + every validated frame
  bool torn_tail = false;       // scan stopped before end-of-file
};

class WalReader {
 public:
  // Scans <path>. Returns NotFound when the file does not exist, and
  // Corruption only when the FILE HEADER is malformed (a bad header means
  // this is not a WAL we wrote; a bad frame is an expected crash artifact
  // and just ends the scan with torn_tail=true).
  static util::Result<WalContents> ReadCommitted(Env* env,
                                                 const std::string& path);
};

}  // namespace bp::wal
