// ProvenanceService: many profile databases behind one process.
//
// The paper's engine is per-profile — one ProvenanceDb per browser
// profile (or per user on a shared machine). A deployment that hosts
// many profiles cannot afford one committer thread and one page-cache
// budget per profile, so the service multiplexes them:
//
//   capture threads ──Ingest(profile, event)──▶ shard router
//        │                                          │
//        │                 stable hash(profile) % N │
//        ▼                                          ▼
//   [worker 0]   [worker 1]   ...   [worker N-1]     (one thread each,
//    bounded      bounded            bounded          owns ingest and
//    queue        queue              queue            commit for its
//        │            │                  │            shard's profiles)
//        └────────────┴──────────────────┘
//                     │ open-on-demand, pinned while in use
//                     ▼
//            handle cache (LRU, max_live_handles)
//                     │
//        ┌────────────┼──────────────────┐
//        ▼            ▼                  ▼
//   profile0.db   profile1.db   ...  profileK.db     (K can exceed the
//        └────────────┴──────────────────┘            live-handle cap)
//                     │
//                     ▼
//        one shared BufferPool byte budget
//
// Shard router. A profile's id hashes (FNV-1a, stable across runs and
// platforms) onto one of N workers; every event for that profile is
// committed by that worker's thread, so per-profile event order is
// preserved and a profile's database never sees two writers. Profile
// databases are therefore opened with the async pipeline DISABLED —
// the shard worker IS the committer; N workers replace what would
// otherwise be one committer thread per open database.
//
// Handle cache. Handles open on demand and live in an intrusive LRU
// capped at max_live_handles. Eviction takes the coldest UNPINNED
// handle and closes it cleanly through ProvenanceDb::Close() — drain,
// checkpoint, release of its frames in the shared buffer pool — so a
// reopened profile recovers everything committed. A handle is pinned
// (like a buffer-pool frame) while a worker commits into it and for
// the whole lifetime of a WithSnapshot view; pinned handles are
// spared, which makes the cap soft: when live readers pin more than
// max_live_handles, the cache grows past the cap rather than failing.
//
// Backpressure. Each worker's queue is bounded (queue_capacity);
// kBlock parks the capture thread until the worker catches up
// (lossless), kReject returns BudgetExhausted immediately — the
// service-level saturation signal. A worker's commit failure is
// sticky, exactly like the single-db ingest pipeline: acknowledged
// events are unaffected, later Ingest/Flush on that shard return the
// error.
//
// Memory. Every profile database shares ONE BufferPool (one global
// byte budget) via DbOptions::buffer_pool injection; the service
// creates the pool when the caller did not supply one.
//
// Lock order: a worker's mu and the registry mu_ are never held
// together (pop queue → release → acquire handle → release → commit
// unlocked), so the two layers cannot deadlock. The registry mu_ is
// also never held across ProvenanceDb::Open or Close — both take the
// metrics registry's collector lock (under which dumps call this
// service's collector, which takes mu_) and both do disk I/O. An
// entry whose database is mid-open or mid-close is marked busy and
// later acquirers wait on a CV instead; eviction picks its victims
// under mu_ but closes them unlocked.
//
//   service::ServiceOptions options;
//   options.workers = 4;
//   options.max_live_handles = 8;
//   auto svc = service::ProvenanceService::Create("/profiles", options);
//   (*svc)->Ingest("alice", event);
//   (*svc)->WithSnapshot("alice", [&](prov::ProvenanceDb::SnapshotView& v) {
//     auto hits = v.Search("rosebud");
//     ...
//     return util::Status::Ok();
//   });
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "capture/events.hpp"
#include "capture/pipeline.hpp"
#include "prov/provenance_db.hpp"
#include "storage/buffer_pool.hpp"
#include "util/mutex.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace bp::obs {
class Histogram;
}  // namespace bp::obs

namespace bp::service {

struct ServiceOptions {
  // Shard workers: each owns a thread committing its shard's profiles.
  size_t workers = 2;
  // Live-handle cap for the LRU cache (soft while handles are pinned).
  size_t max_live_handles = 8;
  // Events each worker's queue buffers before backpressure applies.
  size_t queue_capacity = 4096;
  // Full-queue policy: kBlock parks the capture thread (lossless);
  // kReject returns BudgetExhausted without blocking.
  capture::BackpressurePolicy backpressure =
      capture::BackpressurePolicy::kBlock;
  // Template for every profile database the service opens. The service
  // overrides async.enabled (always false — the shard worker is the
  // committer) and db.buffer_pool (shared across all profiles; created
  // from db.db.pool_bytes when left null). Everything else — env,
  // durability, group commit, ingest_batch — applies per profile.
  prov::ProvenanceDb::Options db;
};

// Aggregate service counters (see Stats()).
struct ServiceStats {
  // Handle cache.
  uint64_t live_handles = 0;    // open right now
  uint64_t handle_hits = 0;     // acquisitions served by an open handle
  uint64_t handle_misses = 0;   // acquisitions that had to open
  uint64_t opens = 0;           // databases opened (first opens + reopens)
  uint64_t reopens = 0;         // opens of a previously evicted profile
  uint64_t evictions = 0;       // handles closed by LRU pressure
  // Ingest.
  uint64_t enqueued = 0;        // events accepted into worker queues
  uint64_t committed = 0;       // events handed to storage by workers
  uint64_t rejected = 0;        // kReject refusals (BudgetExhausted)
  uint64_t blocked_enqueues = 0;  // kBlock waits on a full queue
  // Per-shard queue depth right now, indexed by shard; and the deepest
  // any shard's queue has ever been.
  std::vector<uint64_t> queue_depths;
  uint64_t max_queue_depth = 0;
};

class ProvenanceService {
 public:
  // Stands the service up at `root`: profile `p` lives at
  // `<root>/p.db`. Rejects unusable options (InvalidArgument on empty
  // root, workers == 0, max_live_handles == 0, or queue_capacity == 0)
  // and anything ProvenanceDb::Open would reject in the per-profile
  // template. Worker threads start immediately.
  static util::Result<std::unique_ptr<ProvenanceService>> Create(
      const std::string& root, ServiceOptions options = {});

  // Drains every worker, closes every handle, unregisters metrics.
  // Like ProvenanceDb, destruction must not race other calls.
  ~ProvenanceService();
  ProvenanceService(const ProvenanceService&) = delete;
  ProvenanceService& operator=(const ProvenanceService&) = delete;

  // Routes `event` to `profile`'s shard worker and returns once it is
  // queued (not committed — Flush is the barrier). InvalidArgument on
  // an invalid profile id (see ValidProfileId); BudgetExhausted when
  // the shard's queue is full under kReject; the shard's sticky error
  // after a commit or open failure. Any thread may call this
  // concurrently.
  util::Status Ingest(const std::string& profile,
                      const capture::BrowserEvent& event);

  // Blocks until everything enqueued for `profile`'s SHARD before this
  // call has been handed to storage (the barrier is per worker, which
  // is what makes it a read-your-writes barrier for the profile).
  // Returns the shard's sticky error, if any; Aborted when shutdown
  // cut the wait short with events still queued (they never reached
  // storage).
  util::Status Flush(const std::string& profile);
  // Flush over every shard.
  util::Status Drain();

  // Read-your-writes snapshot query: flushes `profile`'s shard, pins
  // the profile's handle (opening it on demand — a pinned handle
  // cannot be evicted, so the view's pages stay reachable), opens a
  // SnapshotView and runs `fn` against it. The view dies before the
  // pin is released; do not stash it. `fn` runs on the calling thread
  // with no service lock held, fully in parallel with ingestion.
  util::Status WithSnapshot(
      const std::string& profile,
      const std::function<util::Status(prov::ProvenanceDb::SnapshotView&)>&
          fn);

  // Aggregate counters; safe from any thread, takes each lock briefly.
  ServiceStats Stats();

  size_t workers() const { return workers_.size(); }
  // The shard worker `profile` routes to (stable across runs).
  size_t ShardOf(const std::string& profile) const;
  // The shared pool behind every profile database.
  const std::shared_ptr<storage::BufferPool>& buffer_pool() const {
    return pool_;
  }

 private:
  // One cached profile database. Entries are map-owned (stable
  // addresses); the intrusive LRU links thread through OPEN entries
  // only. All fields are guarded by the registry mu_ — spelled with an
  // AssertHeld in the helpers rather than BP_GUARDED_BY because the
  // guarding mutex lives in the enclosing service, not the entry.
  struct Entry {
    std::string profile;
    std::unique_ptr<prov::ProvenanceDb> db;  // null = not open
    size_t pins = 0;
    // An Open or Close for this entry is in flight on some thread with
    // mu_ RELEASED (both calls take the metrics registry's collector
    // lock and do disk I/O, so they must not run under mu_). While set,
    // only that thread may touch `db`; acquirers wait on handle_cv_.
    bool busy = false;
    bool ever_opened = false;  // distinguishes opens from reopens
    Entry* prev = nullptr;     // intrusive LRU; head = MRU
    Entry* next = nullptr;
  };

  // One shard: a bounded queue and the thread that drains it.
  struct Worker {
    util::Mutex mu;
    std::condition_variable work_cv;   // queue went non-empty / stop
    std::condition_variable space_cv;  // queue has room again / stop
    std::condition_variable ack_cv;    // committed advanced
    std::deque<std::pair<std::string, capture::BrowserEvent>> queue
        BP_GUARDED_BY(mu);
    uint64_t enqueued BP_GUARDED_BY(mu) = 0;
    uint64_t committed BP_GUARDED_BY(mu) = 0;
    uint64_t rejected BP_GUARDED_BY(mu) = 0;
    uint64_t blocked_enqueues BP_GUARDED_BY(mu) = 0;
    uint64_t max_depth BP_GUARDED_BY(mu) = 0;
    util::Status status BP_GUARDED_BY(mu);  // sticky first failure
    bool stop BP_GUARDED_BY(mu) = false;
    std::thread thread;  // set once at Create, joined at destruction
  };

  ProvenanceService() = default;

  // Shard worker main loop: pop everything pending, group by profile
  // (first-appearance order, so commit order follows enqueue order),
  // commit group by group through pinned handles.
  void WorkerLoop(Worker& worker);
  // Commits one batch; called by WorkerLoop with no lock held.
  // Returns the first failure (handle open or IngestAll).
  util::Status CommitBatch(
      std::vector<std::pair<std::string, capture::BrowserEvent>>&& batch);

  // Intrusive LRU surgery over registry entries; mirrors the buffer
  // pool's list. Callers hold mu_ (which guards the sentinel and every
  // link these touch).
  static void Unlink(Entry* entry);
  static void LinkFront(Entry& sentinel, Entry* entry);

  // Pins (opening on demand) `profile`'s handle. The returned entry
  // stays valid until ReleaseHandle; its db is non-null. May evict the
  // coldest unpinned handle(s) to respect max_live_handles; eviction
  // failures are the VICTIM's, never the acquirer's — they go to the
  // victim's shard as its sticky status, and the acquisition succeeds.
  util::Result<Entry*> AcquireHandle(const std::string& profile)
      BP_EXCLUDES(mu_);
  void ReleaseHandle(Entry* entry) BP_EXCLUDES(mu_);
  // Unlinks coldest unpinned handles until live_handles_ is within the
  // cap (or only pinned/busy handles remain — the cap is soft), marks
  // them busy, and returns them for CloseVictims. Selection counts
  // against live_handles_ immediately so concurrent acquirers see the
  // cache as already shrunk.
  std::vector<Entry*> PickVictimsLocked() BP_REQUIRES(mu_);
  // Closes picked victims with NO service lock held (Close removes
  // metrics collectors — see the lock-order note above). A Close
  // error becomes the victim profile's shard sticky status; the
  // victim's data is committed up to the failure and the next reopen
  // re-arms the checkpoint.
  void CloseVictims(const std::vector<Entry*>& victims) BP_EXCLUDES(mu_);
  // Records `status` as the sticky error of `profile`'s shard (first
  // failure wins). Caller must not hold that worker's mu.
  void RecordShardError(const std::string& profile,
                        const util::Status& status) BP_EXCLUDES(mu_);

  // Profile ids become filenames (<root>/<id>.db) and metric label
  // values: reject empty ids, path separators, '..', double quotes,
  // and control characters so an id can neither escape the service
  // root nor corrupt a label string.
  static bool ValidProfileId(const std::string& profile);

  std::string PathFor(const std::string& profile) const {
    return root_ + "/" + profile + ".db";
  }

  std::string root_;
  ServiceOptions options_;
  std::shared_ptr<storage::BufferPool> pool_;

  // ---- handle registry -----------------------------------------------
  util::Mutex mu_;
  std::condition_variable handle_cv_;  // an entry's busy flag cleared
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_
      BP_GUARDED_BY(mu_);
  Entry lru_ BP_GUARDED_BY(mu_);  // sentinel: next = MRU, prev = coldest
  uint64_t live_handles_ BP_GUARDED_BY(mu_) = 0;
  uint64_t handle_hits_ BP_GUARDED_BY(mu_) = 0;
  uint64_t handle_misses_ BP_GUARDED_BY(mu_) = 0;
  uint64_t opens_ BP_GUARDED_BY(mu_) = 0;
  uint64_t reopens_ BP_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ BP_GUARDED_BY(mu_) = 0;

  // ---- shard workers -------------------------------------------------
  std::vector<std::unique_ptr<Worker>> workers_;

  // ---- observability -------------------------------------------------
  // Enqueue latency (includes kBlock waits), recorded by Ingest.
  obs::Histogram* ingest_us_ = nullptr;
  uint64_t metrics_token_ = 0;  // pull collector; removed in dtor
};

}  // namespace bp::service
