#include "service/provenance_service.hpp"

#include <algorithm>
#include <iterator>

#include "obs/metrics.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace bp::service {

using util::Result;
using util::Status;

void ProvenanceService::Unlink(Entry* entry) {
  entry->prev->next = entry->next;
  entry->next->prev = entry->prev;
  entry->prev = nullptr;
  entry->next = nullptr;
}

void ProvenanceService::LinkFront(Entry& sentinel, Entry* entry) {
  entry->next = sentinel.next;
  entry->prev = &sentinel;
  sentinel.next->prev = entry;
  sentinel.next = entry;
}

Result<std::unique_ptr<ProvenanceService>> ProvenanceService::Create(
    const std::string& root, ServiceOptions options) {
  if (root.empty()) {
    return Status::InvalidArgument("service root path must be non-empty");
  }
  if (options.workers == 0) {
    return Status::InvalidArgument("ServiceOptions::workers must be >= 1");
  }
  if (options.max_live_handles == 0) {
    return Status::InvalidArgument(
        "ServiceOptions::max_live_handles must be >= 1");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument(
        "ServiceOptions::queue_capacity must be >= 1");
  }
  // Mirror ProvenanceDb::Open's template validation here, so a bad
  // per-profile template fails at Create instead of at the first
  // (possibly much later) handle open on a worker thread.
  if (options.db.ingest_batch == 0) {
    return Status::InvalidArgument(
        "ServiceOptions::db.ingest_batch must be >= 1");
  }
  if (options.db.db.buffer_pool != nullptr &&
      options.db.db.pool_bytes != 0 &&
      options.db.db.pool_bytes !=
          options.db.db.buffer_pool->byte_budget()) {
    return Status::InvalidArgument(util::StrFormat(
        "ServiceOptions::db.db.pool_bytes (%zu) disagrees with the "
        "injected buffer pool's byte budget (%zu); set pool_bytes to 0 "
        "(or to the pool's budget) when sharing a pool",
        options.db.db.pool_bytes,
        options.db.db.buffer_pool->byte_budget()));
  }

  auto svc = std::unique_ptr<ProvenanceService>(new ProvenanceService());
  svc->root_ = root;
  svc->options_ = std::move(options);
  // The shard worker is the committer: a per-profile pipeline thread
  // would multiply committers by open handles for no added overlap.
  svc->options_.db.async.enabled = false;
  // One byte budget across every profile: adopt the caller's shared
  // pool or create one from the template's pool_bytes.
  if (svc->options_.db.db.buffer_pool != nullptr) {
    svc->pool_ = svc->options_.db.db.buffer_pool;
  } else if (svc->options_.db.db.pool_bytes > 0) {
    svc->pool_ =
        std::make_shared<storage::BufferPool>(svc->options_.db.db.pool_bytes);
  }
  svc->options_.db.db.buffer_pool = svc->pool_;
  // Normalize so the per-profile opens on worker threads see an
  // agreeing (pool, pool_bytes) pair whatever the template said.
  svc->options_.db.db.pool_bytes =
      svc->pool_ != nullptr ? svc->pool_->byte_budget() : 0;

  {
    util::MutexLock lock(svc->mu_);
    svc->lru_.prev = &svc->lru_;
    svc->lru_.next = &svc->lru_;
  }

  auto& reg = obs::MetricsRegistry::Global();
  svc->ingest_us_ = reg.GetHistogram(
      "bp_service_ingest_us", "service=\"" + root + "\"",
      "Service enqueue latency, including blocking backpressure (us)");

  for (size_t i = 0; i < svc->options_.workers; ++i) {
    svc->workers_.push_back(std::make_unique<Worker>());
  }
  ProvenanceService* raw = svc.get();
  svc->metrics_token_ = reg.AddCollector([raw](obs::CollectionSink& sink) {
    // Runs at dump time under the registry's collector lock. Stats()
    // takes mu_ and each worker's mu briefly — safe only because the
    // service never acquires the collector lock (via ProvenanceDb
    // Open/Close) while holding either; see the lock-order note in
    // the header.
    ServiceStats stats = raw->Stats();
    const std::string labels = "service=\"" + raw->root_ + "\"";
    sink.Gauge("bp_service_live_handles", labels,
               "Profile databases open right now",
               static_cast<double>(stats.live_handles));
    sink.Counter("bp_service_handle_hits", labels,
                 "Handle acquisitions served by an open handle",
                 static_cast<double>(stats.handle_hits));
    sink.Counter("bp_service_handle_misses", labels,
                 "Handle acquisitions that had to open",
                 static_cast<double>(stats.handle_misses));
    sink.Counter("bp_service_handle_opens", labels,
                 "Profile databases opened (first opens + reopens)",
                 static_cast<double>(stats.opens));
    sink.Counter("bp_service_handle_reopens", labels,
                 "Opens of a previously evicted profile",
                 static_cast<double>(stats.reopens));
    sink.Counter("bp_service_handle_evictions", labels,
                 "Handles closed by LRU pressure",
                 static_cast<double>(stats.evictions));
    sink.Counter("bp_service_enqueued", labels,
                 "Events accepted into worker queues",
                 static_cast<double>(stats.enqueued));
    sink.Counter("bp_service_committed", labels,
                 "Events handed to storage by shard workers",
                 static_cast<double>(stats.committed));
    sink.Counter("bp_service_rejected", labels,
                 "Full-queue rejections (BudgetExhausted)",
                 static_cast<double>(stats.rejected));
    sink.Counter("bp_service_blocked_enqueues", labels,
                 "Enqueues that blocked on a full queue",
                 static_cast<double>(stats.blocked_enqueues));
    sink.Gauge("bp_service_max_queue_depth", labels,
               "Deepest any shard queue has been",
               static_cast<double>(stats.max_queue_depth));
    for (size_t shard = 0; shard < stats.queue_depths.size(); ++shard) {
      sink.Gauge("bp_service_queue_depth",
                 labels + ",shard=\"" + std::to_string(shard) + "\"",
                 "Shard queue depth right now",
                 static_cast<double>(stats.queue_depths[shard]));
    }
  });

  for (auto& worker : svc->workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([raw, w] { raw->WorkerLoop(*w); });
  }
  return svc;
}

ProvenanceService::~ProvenanceService() {
  // Stop accepting dump callbacks into a dying instance first;
  // RemoveCollector blocks until any in-flight dump has finished.
  if (metrics_token_ != 0) {
    obs::MetricsRegistry::Global().RemoveCollector(metrics_token_);
  }
  // Stop the workers. The loop drains its queue before honoring stop,
  // so everything accepted by Ingest reaches storage (lossless).
  for (auto& worker : workers_) {
    util::MutexLock lock(worker->mu);
    worker->stop = true;
    worker->work_cv.notify_all();
    worker->space_cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Close every live handle cleanly (checkpoint + shared-pool frame
  // release). Close errors are swallowed here exactly as a destructor
  // chain would swallow them; call Drain() first to observe failures.
  // Handles are moved out under mu_ and closed unlocked, keeping the
  // never-hold-mu_-across-Close discipline even in teardown.
  std::vector<std::unique_ptr<prov::ProvenanceDb>> open;
  {
    util::MutexLock lock(mu_);
    for (auto& [profile, entry] : entries_) {
      if (entry->db != nullptr) open.push_back(std::move(entry->db));
    }
  }
  for (auto& db : open) (void)db->Close();
}

size_t ProvenanceService::ShardOf(const std::string& profile) const {
  // FNV-1a is stable across runs, platforms, and library versions —
  // a profile's shard (and therefore its event order) never migrates.
  return util::Fnv1a64(profile) % workers_.size();
}

bool ProvenanceService::ValidProfileId(const std::string& profile) {
  if (profile.empty()) return false;
  if (profile.find("..") != std::string::npos) return false;
  for (char c : profile) {
    if (c == '/' || c == '\\' || c == '"' ||
        static_cast<unsigned char>(c) < 0x20) {
      return false;
    }
  }
  return true;
}

namespace {
Status InvalidProfileId() {
  return Status::InvalidArgument(
      "profile id must be non-empty and free of path separators, '..', "
      "quotes, and control characters");
}
}  // namespace

Status ProvenanceService::Ingest(const std::string& profile,
                                 const capture::BrowserEvent& event) {
  if (!ValidProfileId(profile)) return InvalidProfileId();
  obs::ScopedTimerUs timer(ingest_us_);
  Worker& w = *workers_[ShardOf(profile)];
  util::MutexLock lock(w.mu);
  if (!w.status.ok()) return w.status;  // sticky shard failure
  if (w.queue.size() >= options_.queue_capacity) {
    if (options_.backpressure == capture::BackpressurePolicy::kReject) {
      ++w.rejected;
      return Status::BudgetExhausted("service shard queue is full");
    }
    ++w.blocked_enqueues;
    while (w.queue.size() >= options_.queue_capacity && !w.stop &&
           w.status.ok()) {
      w.space_cv.wait(lock.native());
    }
    if (w.stop) return Status::Aborted("ProvenanceService is shutting down");
    if (!w.status.ok()) return w.status;
  }
  w.queue.emplace_back(profile, event);
  ++w.enqueued;
  w.max_depth = std::max<uint64_t>(w.max_depth, w.queue.size());
  w.work_cv.notify_one();
  return Status::Ok();
}

Status ProvenanceService::Flush(const std::string& profile) {
  if (!ValidProfileId(profile)) return InvalidProfileId();
  Worker& w = *workers_[ShardOf(profile)];
  util::MutexLock lock(w.mu);
  // Worker-level barrier: everything enqueued on this shard before the
  // call — a superset of the profile's own events, which is what makes
  // it a read-your-writes barrier for the profile. `committed` advances
  // even past a failed batch (the failure goes to `status` instead), so
  // this wait cannot hang on an error.
  const uint64_t target = w.enqueued;
  while (w.committed < target && !w.stop) {
    w.ack_cv.wait(lock.native());
  }
  if (!w.status.ok()) return w.status;
  if (w.committed < target) {
    // Shutdown cut the wait short: these events were never handed to
    // storage, so an Ok here would be a false durability claim.
    return Status::Aborted("ProvenanceService is shutting down");
  }
  return Status::Ok();
}

Status ProvenanceService::Drain() {
  Status first;
  for (auto& worker : workers_) {
    Worker& w = *worker;
    util::MutexLock lock(w.mu);
    const uint64_t target = w.enqueued;
    while (w.committed < target && !w.stop) {
      w.ack_cv.wait(lock.native());
    }
    Status result = !w.status.ok() ? w.status
                    : w.committed < target
                        ? Status::Aborted("ProvenanceService is shutting down")
                        : Status::Ok();
    if (!result.ok() && first.ok()) first = result;
  }
  return first;
}

Status ProvenanceService::WithSnapshot(
    const std::string& profile,
    const std::function<Status(prov::ProvenanceDb::SnapshotView&)>& fn) {
  // Read-your-writes: the profile's shard commits everything enqueued
  // before this call, then the snapshot freezes it.
  BP_RETURN_IF_ERROR(Flush(profile));
  Result<Entry*> entry = AcquireHandle(profile);
  if (!entry.ok()) return entry.status();
  Entry* e = *entry;
  Status out;
  {
    // The pin taken above is what keeps `e->db` alive and un-evicted
    // for the view's whole lifetime; the view must die before it.
    Result<prov::ProvenanceDb::SnapshotView> view = e->db->BeginSnapshot();
    if (!view.ok()) {
      out = view.status();
    } else {
      out = fn(*view);
    }
  }
  ReleaseHandle(e);
  return out;
}

ServiceStats ProvenanceService::Stats() {
  ServiceStats out;
  {
    util::MutexLock lock(mu_);
    out.live_handles = live_handles_;
    out.handle_hits = handle_hits_;
    out.handle_misses = handle_misses_;
    out.opens = opens_;
    out.reopens = reopens_;
    out.evictions = evictions_;
  }
  for (auto& worker : workers_) {
    Worker& w = *worker;
    util::MutexLock lock(w.mu);
    out.queue_depths.push_back(w.queue.size());
    out.enqueued += w.enqueued;
    out.committed += w.committed;
    out.rejected += w.rejected;
    out.blocked_enqueues += w.blocked_enqueues;
    out.max_queue_depth = std::max(out.max_queue_depth, w.max_depth);
  }
  return out;
}

void ProvenanceService::WorkerLoop(Worker& worker) {
  for (;;) {
    std::vector<std::pair<std::string, capture::BrowserEvent>> batch;
    {
      util::MutexLock lock(worker.mu);
      while (worker.queue.empty() && !worker.stop) {
        worker.work_cv.wait(lock.native());
      }
      if (worker.queue.empty() && worker.stop) return;
      batch.assign(std::make_move_iterator(worker.queue.begin()),
                   std::make_move_iterator(worker.queue.end()));
      worker.queue.clear();
    }
    const uint64_t n = batch.size();
    Status status = CommitBatch(std::move(batch));
    {
      util::MutexLock lock(worker.mu);
      // Advance the watermark even on failure (Flush returns the sticky
      // status; it must not hang), and keep only the FIRST failure —
      // later batches may partially succeed but the shard is poisoned.
      worker.committed += n;
      if (!status.ok() && worker.status.ok()) worker.status = status;
      worker.space_cv.notify_all();
      worker.ack_cv.notify_all();
    }
  }
}

Status ProvenanceService::CommitBatch(
    std::vector<std::pair<std::string, capture::BrowserEvent>>&& batch) {
  // Group by profile in FIRST-APPEARANCE order — not map order — so
  // commit order follows enqueue order and a run's handle-cache churn
  // is deterministic for a deterministic enqueue sequence.
  std::vector<std::pair<std::string, std::vector<capture::BrowserEvent>>>
      groups;
  std::unordered_map<std::string, size_t> index;
  for (auto& [profile, event] : batch) {
    auto [it, inserted] = index.emplace(profile, groups.size());
    if (inserted) groups.emplace_back(profile, std::vector<capture::BrowserEvent>());
    groups[it->second].second.push_back(std::move(event));
  }
  // One profile's failure (open or commit) must not strand the other
  // profiles' already-accepted events: keep committing, report the
  // first error as the shard's sticky status.
  Status first;
  for (auto& [profile, events] : groups) {
    Result<Entry*> entry = AcquireHandle(profile);
    if (!entry.ok()) {
      if (first.ok()) first = entry.status();
      continue;
    }
    Status status = (*entry)->db->IngestAll(events);
    ReleaseHandle(*entry);
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

Result<ProvenanceService::Entry*> ProvenanceService::AcquireHandle(
    const std::string& profile) {
  util::MutexLock lock(mu_);
  auto it = entries_.find(profile);
  Entry* entry;
  if (it == entries_.end()) {
    auto owned = std::make_unique<Entry>();
    owned->profile = profile;
    entry = owned.get();
    entries_.emplace(profile, std::move(owned));
  } else {
    entry = it->second.get();
  }
  for (;;) {
    // Busy is checked BEFORE db: a mid-close victim still has a
    // non-null db but is already off the LRU list — pinning it would
    // resurrect a dying handle (and Unlink would walk null links).
    // Wait out the open (we'll hit when it lands) or close (we'll
    // reopen once it is done) in flight on another thread.
    if (entry->busy) {
      handle_cv_.wait(lock.native());
      continue;
    }
    if (entry->db != nullptr) {
      ++handle_hits_;
      ++entry->pins;
      Unlink(entry);
      LinkFront(lru_, entry);
      return entry;
    }
    break;
  }
  ++handle_misses_;
  entry->busy = true;
  // Open with mu_ RELEASED: Open registers metrics collectors (the
  // registry's collector lock, under which dumps call back into
  // Stats() → mu_) and replays the profile's WAL from disk — holding
  // mu_ here would both deadlock against a concurrent dump and
  // serialize every other profile's handle traffic behind the I/O.
  // The busy flag keeps this entry ours while the lock is down; the
  // map never erases entries, so the pointer stays valid.
  lock.Unlock();
  Result<std::unique_ptr<prov::ProvenanceDb>> db =
      prov::ProvenanceDb::Open(PathFor(profile), options_.db);
  lock.Lock();
  entry->busy = false;
  handle_cv_.notify_all();
  if (!db.ok()) return db.status();
  entry->db = std::move(*db);
  ++opens_;
  if (entry->ever_opened) ++reopens_;
  entry->ever_opened = true;
  ++entry->pins;
  ++live_handles_;
  LinkFront(lru_, entry);
  // Our pin spares the new handle; victims' close failures go to their
  // own shards (RecordShardError), never to this acquisition — an
  // unrelated profile's trouble must not fail this profile's commit.
  std::vector<Entry*> victims = PickVictimsLocked();
  lock.Unlock();
  CloseVictims(victims);
  return entry;
}

void ProvenanceService::ReleaseHandle(Entry* entry) {
  std::vector<Entry*> victims;
  {
    util::MutexLock lock(mu_);
    --entry->pins;
    // The cache may be over its (soft) cap because everything was
    // pinned; shrink back as pins drop.
    victims = PickVictimsLocked();
  }
  CloseVictims(victims);
}

std::vector<ProvenanceService::Entry*> ProvenanceService::PickVictimsLocked() {
  std::vector<Entry*> victims;
  while (live_handles_ > options_.max_live_handles) {
    Entry* victim = lru_.prev;
    while (victim != &lru_ && victim->pins > 0) victim = victim->prev;
    if (victim == &lru_) break;  // only pinned handles left: cap is soft
    Unlink(victim);
    --live_handles_;
    ++evictions_;
    // Claim the entry for the unlocked Close; acquirers of this profile
    // now wait on handle_cv_ until CloseVictims clears the flag.
    victim->busy = true;
    victims.push_back(victim);
  }
  return victims;
}

void ProvenanceService::CloseVictims(const std::vector<Entry*>& victims) {
  for (Entry* victim : victims) {
    // Clean close: drain (trivial — async is off), checkpoint, release
    // shared-pool frames, remove the db's metrics collectors. Run with
    // no service lock held — RemoveCollector blocks on in-flight dumps,
    // and dumps call this service's collector. The entry stays in the
    // map so a later acquisition reopens (and is counted as a reopen).
    Status status = victim->db->Close();
    if (!status.ok()) RecordShardError(victim->profile, status);
    util::MutexLock lock(mu_);
    victim->db.reset();
    victim->busy = false;
    handle_cv_.notify_all();
  }
}

void ProvenanceService::RecordShardError(const std::string& profile,
                                         const Status& status) {
  Worker& w = *workers_[ShardOf(profile)];
  util::MutexLock lock(w.mu);
  if (w.status.ok()) w.status = status;
  // Wake kBlock waiters (their wait loop exits on a sticky error).
  w.space_cv.notify_all();
}

}  // namespace bp::service
