#include "storage/snapshot.hpp"

#include "util/require.hpp"
#include "util/strings.hpp"
#include "wal/wal_writer.hpp"

namespace bp::storage {

using util::Result;
using util::Status;

Snapshot::~Snapshot() {
  if (pager_ != nullptr) pager_->ReleaseSnapshot();
}

Result<std::shared_ptr<const std::string>> Snapshot::ReadPage(
    PageId id) const {
  if (id >= page_count_) {
    return Status::Corruption(util::StrFormat(
        "snapshot read of page %u past its page count %u", id,
        page_count_));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(id);
    if (it != cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  // Copy-on-read, outside the cache lock: concurrent first reads of the
  // same page both fetch; the loser's insert is a no-op.
  auto page = std::make_shared<std::string>();
  auto wal_hit = wal_index_->find(id);
  if (wal_hit != wal_index_->end()) {
    // Latest committed image as of this snapshot lives in the log. The
    // log only grows while snapshots are live (checkpoint truncation is
    // deferred), so the frozen offset is still the bytes we froze.
    BP_RETURN_IF_ERROR(
        pager_->wal_->ReadPayload(wal_hit->second, kPageSize, page.get()));
  } else if (id < main_file_pages_) {
    // The main database file is only rewritten by checkpoints, which
    // cannot run while this snapshot is live.
    BP_RETURN_IF_ERROR(
        pager_->file_->Read(uint64_t{id} * kPageSize, kPageSize,
                            page.get()));
  } else {
    // Committed state can only reference pages that were checkpointed
    // into the main file or logged; anything else is damage.
    return Status::Corruption(util::StrFormat(
        "snapshot page %u is in neither the log nor the database file",
        id));
  }
  pages_read_.fetch_add(1, std::memory_order_relaxed);

  std::shared_ptr<const std::string> out = std::move(page);
  std::lock_guard<std::mutex> lock(mu_);
  if (cache_.size() < cache_cap_) {
    auto [it, inserted] = cache_.emplace(id, out);
    if (!inserted) out = it->second;
  }
  return out;
}

}  // namespace bp::storage
