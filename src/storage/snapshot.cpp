#include "storage/snapshot.hpp"

#include "obs/metrics.hpp"
#include "storage/compress.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"
#include "wal/wal_writer.hpp"

namespace bp::storage {

using util::Result;
using util::Status;

Snapshot::~Snapshot() {
  if (pager_ != nullptr) pager_->ReleaseSnapshot(stats());
}

Result<std::shared_ptr<const std::string>> Snapshot::ReadPage(
    PageId id) const {
  if (id >= page_count_) {
    return Status::Corruption(util::StrFormat(
        "snapshot read of page %u past its page count %u", id,
        page_count_));
  }

  // L1: the frame this snapshot already resolved (one u32 map find —
  // the per-fetch fast path the B+tree read loop lives on; a memoized
  // page already passed the source checks below on its first fetch).
  {
    util::MutexLock lock(mu_);
    auto it = cache_.find(id);
    if (it != cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  // Resolve the page to its frozen image source, which doubles as its
  // identity in the shared pool: the WAL offset names one immutable
  // byte image, and main-file images are versioned by the checkpoint
  // generation (both frozen for this snapshot's lifetime).
  auto wal_hit = wal_index_->find(id);
  const bool in_wal = wal_hit != wal_index_->end();
  if (!in_wal && id >= main_file_pages_) {
    // Committed state can only reference pages that were checkpointed
    // into the main file or logged; anything else is damage.
    return Status::Corruption(util::StrFormat(
        "snapshot page %u is in neither the log nor the database file",
        id));
  }

  // Stream-resident images are versioned by the owning STREAM's
  // generation (the slot's offsets are what checkpoint truncation
  // recycles); main-file ones by the main-file generation.
  const uint32_t generation =
      in_wal ? domain_generation_[SlotStream(wal_hit->second)]
             : main_generation_;
  PageImageKey key{pool_owner_, id, generation,
                   in_wal ? wal_hit->second : kMainFileImage};
  if (pool_ != nullptr) {
    if (std::shared_ptr<const std::string> image = pool_->Lookup(key)) {
      pool_hits_.fetch_add(1, std::memory_order_relaxed);
      util::MutexLock lock(mu_);
      if (cache_.size() < cache_cap_) cache_.emplace(id, image);
      return image;
    }
  }

  // Copy-on-read, outside any lock: concurrent first reads of the same
  // page both fetch; the pool adopts one winner (the loser's copy dies),
  // the fallback cache keeps whichever inserted first.
  auto page = std::make_shared<std::string>();
  if (in_wal) {
    // Latest committed image as of this snapshot lives in the slot's
    // domain stream. A stream only grows while snapshots are live
    // (checkpoint truncation is deferred), so the frozen offset is
    // still the bytes we froze.
    const uint64_t slot = wal_hit->second;
    BP_RETURN_IF_ERROR(
        pager_->domains_[SlotStream(slot)].wal->ReadPayload(
            SlotOffset(slot), kPageSize, page.get()));
  } else {
    // The main database file is only rewritten by checkpoints, which
    // cannot run while this snapshot is live.
    BP_RETURN_IF_ERROR(
        pager_->file_->Read(uint64_t{id} * kPageSize, kPageSize,
                            page.get()));
    // Checkpointed slots may hold a compressed frame (self-describing,
    // checksummed — storage/compress.hpp). Decode BEFORE memoizing or
    // publishing: pool images are always raw pages (the pool compresses
    // into its own cold tier), and the writer trusts pooled images.
    if (compress::LooksLikeFrame(*page)) {
      obs::ScopedTimerUs decode_timer(pager_->decompress_latency_us_);
      std::string raw;
      BP_RETURN_IF_ERROR(compress::Decompress(*page, &raw));
      if (raw.size() != kPageSize) {
        return Status::Corruption(util::StrFormat(
            "snapshot page %u: compressed frame decodes to %zu bytes", id,
            raw.size()));
      }
      *page = std::move(raw);
      decompress_reads_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  pages_read_.fetch_add(1, std::memory_order_relaxed);

  std::shared_ptr<const std::string> out = std::move(page);
  if (pool_ != nullptr) {
    // The pool adopts one winner per image; memoize whatever it keeps.
    out = pool_->Insert(key, std::move(out));
  }
  util::MutexLock lock(mu_);
  if (cache_.size() < cache_cap_) {
    auto [it, inserted] = cache_.emplace(id, out);
    if (!inserted) out = it->second;
  }
  return out;
}

}  // namespace bp::storage
