// Snapshot: a consistent, immutable read view of a WAL-mode database.
//
// BeginRead() freezes the committed state at a commit sequence number —
// plus, with partitioned write domains, the per-domain commit-sequence
// vector — along with the page count, catalog root, and a frozen copy
// of the WAL index (page id -> stream slot of the latest committed
// image <= that commit; the slot names the owning domain's log stream
// and the offset within it). Reads resolve, in order, against
//
//   1. the snapshot's own L1 memo — a map from page id to the frame
//      this snapshot already resolved. A frozen view's page -> image
//      mapping never changes, so memoizing is free correctness-wise,
//      and the memo holds POINTERS into pool frames, not copies: it
//      restores the old private-cache hit cost (one u32 map find)
//      without duplicating a single page byte,
//   2. the pager's shared versioned buffer pool (storage/buffer_pool
//      .hpp), keyed by page image identity — (page, generation, WAL
//      offset) for log-resident images, (page, generation) for
//      main-file ones — so every snapshot observing the same image of
//      a page shares ONE frame, repeated one-shot queries run warm,
//      and the writer's committed pages arrive pre-published,
//   3. the write-ahead log at the frozen offset (the log is append-only
//      between checkpoints, so offsets recorded at snapshot time stay
//      valid no matter how far the writer has advanced), and
//   4. the main database file (stable while snapshots are live, because
//      checkpointing — the only writer of that file in WAL mode — is
//      deferred until every snapshot is released).
//
// A log/database read (a pool miss) is inserted back into the pool for
// every later reader. When the pool is disabled (PagerOptions::
// pool_bytes = 0), the L1 holds private page copies soft-capped at
// cache_pages — the pre-pool behavior — and past that cap reads stay
// read-through (correct, just uncached).
//
// The writer's in-memory page cache is never consulted, so uncommitted
// transaction state and post-snapshot commits are invisible by
// construction; there is no copy-out when the writer dirties a page.
//
// Thread safety: a Snapshot is safe to share across reader threads
// (the pool is sharded; the fallback cache takes the snapshot's own
// mutex), and any number of snapshots may be read while the single
// writer keeps committing. A snapshot must be released before its
// Pager closes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "storage/pager.hpp"
#include "util/mutex.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace bp::storage {

// SnapshotStats is defined in storage/pager.hpp (the pager aggregates
// released snapshots' counters into PagerStats).

class Snapshot {
 public:
  ~Snapshot();
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  // The latest committed page image of `id` as of this snapshot.
  // Thread-safe. The returned bytes (exactly kPageSize) stay valid for
  // as long as the caller holds the shared_ptr, even past the snapshot.
  util::Result<std::shared_ptr<const std::string>> ReadPage(PageId id) const
      BP_EXCLUDES(mu_);

  // Committed state this snapshot observes. commit_seq is the merged
  // (database-wide) sequence; domain_commit_seq pins the newest
  // sequence per write domain's stream — together the LSN vector the
  // snapshot was frozen at.
  uint64_t commit_seq() const { return commit_seq_; }
  uint64_t domain_commit_seq(WriteDomain domain) const {
    return domain < kMaxWriteDomains ? domain_commit_seq_[domain] : 0;
  }
  uint32_t page_count() const { return page_count_; }
  PageId catalog_root() const { return catalog_root_; }

  SnapshotStats stats() const {
    SnapshotStats out;
    out.pages_read = pages_read_.load(std::memory_order_relaxed);
    out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    out.pool_hits = pool_hits_.load(std::memory_order_relaxed);
    out.decompress_reads =
        decompress_reads_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  friend class Pager;
  Snapshot() = default;

  Pager* pager_ = nullptr;
  uint64_t commit_seq_ = 0;
  // Per-domain commit sequences at freeze time (the snapshot's LSN
  // vector; see Pager's file header).
  std::array<uint64_t, kMaxWriteDomains> domain_commit_seq_{};
  uint32_t page_count_ = 0;
  PageId catalog_root_ = kNoPage;
  // Pages <= this are served from the main database file when absent
  // from the frozen WAL index.
  uint32_t main_file_pages_ = 0;
  // Checkpoint generations at freeze time (pool image keys; constant
  // while the snapshot lives, because checkpoints are deferred):
  // main-file images are versioned by main_generation_, stream-resident
  // ones by their stream's entry in domain_generation_.
  uint32_t main_generation_ = 0;
  std::array<uint32_t, kMaxWriteDomains> domain_generation_{};
  // Frozen view of the WAL index (page id -> stream slot, see
  // MakeWalSlot), shared with the pager's published state (immutable
  // once published; republished, not mutated).
  std::shared_ptr<const std::unordered_map<PageId, uint64_t>> wal_index_;

  // The pager's shared versioned buffer pool; null when disabled.
  std::shared_ptr<BufferPool> pool_;
  uint32_t pool_owner_ = 0;

  // L1 memo: page -> resolved frame. With a pool these are pointers
  // into shared pool frames (no byte duplication; holding them pins the
  // working set against eviction); without one they are private page
  // copies. Soft-capped: past `cache_cap_` pages reads stay
  // read-through (correct, just uncached).
  mutable util::Mutex mu_;
  mutable std::unordered_map<PageId, std::shared_ptr<const std::string>>
      cache_ BP_GUARDED_BY(mu_);
  size_t cache_cap_ = 0;  // frozen at BeginRead; read lock-free

  mutable std::atomic<uint64_t> pages_read_{0};
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> pool_hits_{0};
  mutable std::atomic<uint64_t> decompress_reads_{0};
};

// Read-only view of one page from either source: a pinned frame of the
// live pager (writer-side reads) or a shared-ownership snapshot page
// (reader-side). This is what the B+tree read path traffics in.
class PageView {
 public:
  PageView() = default;
  explicit PageView(PageRef live) : live_(std::move(live)) {}
  explicit PageView(std::shared_ptr<const std::string> snap)
      : snap_(std::move(snap)) {}

  bool valid() const { return live_.valid() || snap_ != nullptr; }
  const char* data() const {
    return snap_ != nullptr ? snap_->data() : live_.data();
  }

 private:
  PageRef live_;
  std::shared_ptr<const std::string> snap_;
};

}  // namespace bp::storage
