#include "storage/env.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "util/mutex.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"
#include "util/thread_annotations.hpp"

namespace bp::storage {

namespace {

Status ErrnoStatus(const char* op, const std::string& name) {
  return Status::IoError(
      util::StrFormat("%s %s: %s", op, name.c_str(), std::strerror(errno)));
}

class PosixFile : public File {
 public:
  PosixFile(int fd, std::string name) : fd_(fd), name_(std::move(name)) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->resize(n);
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, out->data() + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread", name_);
      }
      if (r == 0) {
        return done == 0 ? Status::OutOfRange("read past EOF: " + name_)
                         : Status::IoError("short read: " + name_);
      }
      done += static_cast<size_t>(r);
    }
    return Status::Ok();
  }

  Status Write(uint64_t offset, std::string_view data) override {
    size_t done = 0;
    while (done < data.size()) {
      ssize_t w = ::pwrite(fd_, data.data() + done, data.size() - done,
                           static_cast<off_t>(offset + done));
      if (w < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pwrite", name_);
      }
      done += static_cast<size_t>(w);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", name_);
    return Status::Ok();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("ftruncate", name_);
    }
    return Status::Ok();
  }

  Result<uint64_t> Size() const override {
    off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) return ErrnoStatus("lseek", name_);
    return static_cast<uint64_t>(end);
  }

 private:
  int fd_;
  std::string name_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<File>> Open(const std::string& name) override {
    int fd = ::open(name.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) return ErrnoStatus("open", name);
    return {std::unique_ptr<File>(new PosixFile(fd, name))};
  }

  Status Remove(const std::string& name) override {
    if (::unlink(name.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("unlink", name);
    }
    return Status::Ok();
  }

  bool Exists(const std::string& name) const override {
    return ::access(name.c_str(), F_OK) == 0;
  }
};

}  // namespace

// Env-wide state every open MemFile can reach. shared_ptr so handles
// outliving the env (legal for content, see MemEnv::files_) stay safe.
// The op log is single-writer-thread by contract (crash-injection
// tests drive one writer); everything else here is safe to touch from
// any thread.
struct MemEnv::Shared {
  bool logging = false;
  std::vector<MemEnvOp> ops;
  // The cost knobs and sync_count are atomic: tests and benches flip
  // them (and read the counter) mid-run while worker threads are
  // inside Sync/Read.
  std::atomic<uint32_t> sync_cost_us{0};
  std::atomic<bool> sync_sleeps{false};
  std::atomic<uint64_t> sync_count{0};
  std::atomic<uint32_t> read_cost_us{0};
};

// One file's bytes plus a PER-FILE mutex making content access
// thread-safe (reads shared, writes exclusive), so snapshot readers
// share files with the single writer the way PosixFile's per-fd
// pread/pwrite does — a WAL append never blocks a reader's page read
// from the database file.
struct MemEnv::FileContent {
  util::SharedMutex mu;
  std::string data BP_GUARDED_BY(mu);
};

namespace {

class MemFile : public File {
 public:
  MemFile(std::shared_ptr<MemEnv::FileContent> content, std::string name,
          std::shared_ptr<MemEnv::Shared> shared)
      : content_(std::move(content)),
        name_(std::move(name)),
        shared_(std::move(shared)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    {
      util::ReaderMutexLock lock(content_->mu);
      const std::string& c = content_->data;
      if (offset >= c.size()) {
        return Status::OutOfRange("read past EOF: " + name_);
      }
      if (offset + n > c.size()) return Status::IoError("short read (mem)");
      out->assign(c, offset, n);
    }
    const uint32_t cost =
        shared_->read_cost_us.load(std::memory_order_relaxed);
    if (cost > 0) {
      // Busy-wait outside the content lock (see Sync below): models the
      // device time a cache-cold random read costs on real hardware,
      // charged to the reading thread only.
      auto until = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(cost);
      while (std::chrono::steady_clock::now() < until) {
      }
    }
    return Status::Ok();
  }

  Status Write(uint64_t offset, std::string_view data) override {
    util::WriterMutexLock lock(content_->mu);
    if (shared_->logging) {
      shared_->ops.push_back(MemEnvOp{MemEnvOp::Kind::kWrite, name_, offset,
                                      std::string(data), 0});
    }
    std::string& c = content_->data;
    if (offset + data.size() > c.size()) c.resize(offset + data.size());
    c.replace(offset, data.size(), data);
    return Status::Ok();
  }

  Status Sync() override {
    shared_->sync_count.fetch_add(1, std::memory_order_relaxed);
    const uint32_t cost =
        shared_->sync_cost_us.load(std::memory_order_relaxed);
    if (cost > 0) {
      if (shared_->sync_sleeps.load(std::memory_order_relaxed)) {
        // Yield the core for the duration, like a thread blocked in a
        // real fsync — lets independent committers overlap their syncs
        // even on a single-core machine.
        std::this_thread::sleep_for(std::chrono::microseconds(cost));
      } else {
        // Busy-wait (steady clock) so MemEnv benchmarks charge
        // wall-clock time per fsync the way a real device would,
        // deterministically and without involving the scheduler.
        auto until = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(cost);
        while (std::chrono::steady_clock::now() < until) {
        }
      }
    }
    return Status::Ok();
  }

  Status Truncate(uint64_t size) override {
    util::WriterMutexLock lock(content_->mu);
    if (shared_->logging) {
      shared_->ops.push_back(
          MemEnvOp{MemEnvOp::Kind::kTruncate, name_, 0, {}, size});
    }
    content_->data.resize(size);
    return Status::Ok();
  }

  Result<uint64_t> Size() const override {
    util::ReaderMutexLock lock(content_->mu);
    return static_cast<uint64_t>(content_->data.size());
  }

 private:
  std::shared_ptr<MemEnv::FileContent> content_;
  std::string name_;
  std::shared_ptr<MemEnv::Shared> shared_;
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv env;
  return &env;
}

MemEnv::MemEnv() : shared_(std::make_shared<Shared>()) {}

Result<std::unique_ptr<File>> MemEnv::Open(const std::string& name) {
  util::MutexLock lock(files_mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    it = files_.emplace(name, std::make_shared<FileContent>()).first;
  }
  return {std::unique_ptr<File>(new MemFile(it->second, name, shared_))};
}

Status MemEnv::Remove(const std::string& name) {
  util::MutexLock lock(files_mu_);
  if (shared_->logging && files_.count(name) > 0) {
    shared_->ops.push_back(
        MemEnvOp{MemEnvOp::Kind::kRemove, name, 0, {}, 0});
  }
  files_.erase(name);
  return Status::Ok();
}

bool MemEnv::Exists(const std::string& name) const {
  util::MutexLock lock(files_mu_);
  return files_.count(name) > 0;
}

std::map<std::string, std::string> MemEnv::SnapshotAll() const {
  util::MutexLock lock(files_mu_);
  std::map<std::string, std::string> out;
  for (const auto& [name, content] : files_) {
    util::ReaderMutexLock lock2(content->mu);
    out[name] = content->data;
  }
  return out;
}

void MemEnv::RestoreAll(const std::map<std::string, std::string>& snapshot) {
  util::MutexLock lock(files_mu_);
  files_.clear();
  for (const auto& [name, content] : snapshot) {
    auto file = std::make_shared<FileContent>();
    file->data = content;
    files_[name] = std::move(file);
  }
}

void MemEnv::StartOpLog() {
  shared_->ops.clear();
  shared_->logging = true;
}

std::vector<MemEnvOp> MemEnv::StopOpLog() {
  shared_->logging = false;
  return std::move(shared_->ops);
}

size_t MemEnv::OpLogSize() const { return shared_->ops.size(); }

Status MemEnv::ApplyOps(const std::vector<MemEnvOp>& ops, size_t count,
                        int64_t partial_bytes_of_last) {
  BP_REQUIRE(count <= ops.size());
  BP_REQUIRE(partial_bytes_of_last < 0 || count < ops.size(),
             "partial op requires ops[count] to exist");
  // Replay through regular handles so the replay itself is not logged
  // twice (logging is normally off here anyway).
  auto apply = [&](const MemEnvOp& op, int64_t limit) -> Status {
    switch (op.kind) {
      case MemEnvOp::Kind::kWrite: {
        BP_ASSIGN_OR_RETURN(std::unique_ptr<File> f, Open(op.file));
        std::string_view data = op.data;
        if (limit >= 0) data = data.substr(0, static_cast<size_t>(limit));
        return f->Write(op.offset, data);
      }
      case MemEnvOp::Kind::kTruncate: {
        BP_ASSIGN_OR_RETURN(std::unique_ptr<File> f, Open(op.file));
        return f->Truncate(op.size);
      }
      case MemEnvOp::Kind::kRemove:
        return Remove(op.file);
    }
    return Status::Ok();
  };
  for (size_t i = 0; i < count; ++i) {
    BP_RETURN_IF_ERROR(apply(ops[i], -1));
  }
  if (partial_bytes_of_last >= 0) {
    BP_RETURN_IF_ERROR(apply(ops[count], partial_bytes_of_last));
  }
  return Status::Ok();
}

void MemEnv::set_sync_cost_us(uint32_t us) {
  shared_->sync_cost_us.store(us, std::memory_order_relaxed);
}

void MemEnv::set_sync_sleeps(bool sleeps) {
  shared_->sync_sleeps.store(sleeps, std::memory_order_relaxed);
}

void MemEnv::set_read_cost_us(uint32_t us) {
  shared_->read_cost_us.store(us, std::memory_order_relaxed);
}

uint64_t MemEnv::sync_count() const { return shared_->sync_count; }

}  // namespace bp::storage
