// Block compression codecs for the storage engine.
//
// Every compressed blob is a self-describing *frame*:
//
//   [magic u32][codec u8][raw_size u32][payload_size u32][checksum u64]
//   [payload bytes ...]
//
// (21-byte header, little-endian, FNV-1a 64 checksum over the payload.)
// Frames are self-identifying so a reader handed either a raw page image
// or a compressed one can tell them apart: raw B-tree pages start with a
// type byte in {1,2,3} and the magic's first byte is none of those, and
// a frame is only trusted after its checksum verifies — a ~2^-96
// accidental-collision bar. Truncated or bit-flipped frames decode to
// Corruption, never to an out-of-bounds read.
//
// Codecs:
//   kNone     — payload is the raw bytes (used for tests / passthrough).
//   kLz       — LZ4-style byte window codec: greedy hash-table matcher,
//               (literal-run, match) token stream, 64 KiB offset window.
//   kIntDelta — payload interprets the raw bytes as a little-endian u64
//               array and stores zig-zag deltas as varints. raw_size must
//               be a multiple of 8.
//
// The inverted index's postings blobs use the same delta+varint scheme
// through EncodeDeltaPairs/DecodeDeltaPairs (sorted keys as gaps, values
// verbatim) — frameless, since the B-tree value is already length-framed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace bp::storage::compress {

enum class Codec : uint8_t {
  kNone = 0,
  kLz = 1,
  kIntDelta = 2,
};

inline constexpr uint32_t kFrameMagic = 0x42504346;  // "FCPB" on disk
inline constexpr size_t kFrameHeaderSize = 21;

struct FrameInfo {
  Codec codec = Codec::kNone;
  uint32_t raw_size = 0;
  // Total frame footprint: header + payload. For a padded page slot this
  // is the physical (hole-punchable) size, not the slot size. u64 so a
  // hostile payload_size field cannot wrap the sum.
  uint64_t stored_size = 0;
};

// Encodes `raw` as a frame with the given codec. Always succeeds (kLz
// falls back to literal runs on incompressible input; the caller applies
// any ratio policy). Precondition (BP_REQUIRE): kIntDelta needs
// raw.size() % 8 == 0.
std::string Compress(Codec codec, std::string_view raw);

// Decodes a frame produced by Compress. `data` may carry trailing bytes
// past the payload (page slots are zero-padded to the page size); they
// are ignored. Returns Corruption on bad magic, unknown codec, short
// input, checksum mismatch, or malformed payload.
util::Status Decompress(std::string_view data, std::string* out);

// Cheap header peek: true iff `data` begins with the frame magic.
bool LooksLikeFrame(std::string_view data);

// Parses the header only (no checksum verification). Corruption if the
// magic/codec/sizes are implausible for `data`.
util::Result<FrameInfo> Inspect(std::string_view data);

// --- integer sequence codec (postings and friends) ---------------------

// varint(count), then per pair: varint(key - prev_key), varint(value).
// Keys must be non-decreasing. No frame header; the caller owns framing.
std::string EncodeDeltaPairs(
    const std::vector<std::pair<uint64_t, uint64_t>>& pairs);

// Hardened inverse: the count is untrusted until proven payload-backed
// (each pair needs >= 2 bytes), so a flipped count byte cannot drive an
// unbounded reserve. Returns Corruption on truncation/overflow/trailing
// bytes.
util::Status DecodeDeltaPairs(
    std::string_view blob, std::vector<std::pair<uint64_t, uint64_t>>* out);

// --- policy ------------------------------------------------------------

struct CompressionOptions {
  enum class Mode : uint8_t { kOff = 0, kFast = 1 };

  // Default comes from the BP_COMPRESSION environment variable ("fast"
  // or "on" or "1" -> kFast) so the full test suite can run compressed
  // without per-test plumbing; unset means kOff.
  Mode mode = DefaultMode();

  // A compressed page is kept only when frame_size <= ratio_floor *
  // raw_size; otherwise the raw bytes are stored. Filters incompressible
  // pages whose frames would just add header overhead.
  double ratio_floor = 0.875;

  static Mode DefaultMode();
  bool enabled() const { return mode == Mode::kFast; }
};

// Applies the ratio policy: returns the kLz frame for `page` when
// compression is on and the frame clears the floor, else an empty string
// (meaning: store the raw bytes).
std::string MaybeCompressPage(const CompressionOptions& options,
                              std::string_view page);

}  // namespace bp::storage::compress
