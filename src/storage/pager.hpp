// Pager: page cache + transactions + crash recovery.
//
// The database file is an array of kPageSize pages. Page 0 holds the
// header (magic, page count, freelist, catalog root). All reads and
// writes go through pinned page references; mutations are transactional.
//
// Two durability modes (PagerOptions::durability):
//
// kRollbackJournal (SQLite journal mode; 2 fsyncs per commit):
//   1. During a transaction, dirty pages live only in the cache; the
//      first mutation of each pre-existing page captures its before-image.
//   2. Commit: write all before-images to <path>.journal, fsync it, then
//      write the dirty pages to the database file, fsync it, then remove
//      the journal. A crash before the journal fsync leaves the database
//      untouched; a crash after it is rolled back on the next Open by
//      replaying before-images and truncating to the journaled page count.
//   3. Rollback: restore before-images in cache; nothing reached the file.
//
// kWal (write-ahead log; 1 fsync per commit, or per GROUP of commits):
//   1. Commit appends the dirty pages plus a commit record to the log
//      stream of the transaction's WRITE DOMAIN (see below) in one
//      sequential write (see wal/wal_format.hpp) and fsyncs that
//      stream — the database file is not touched at all. With
//      wal_group_commit = N, the fsync is deferred until N transactions
//      have committed on that stream, so N commits share one fsync; a
//      crash may lose the tail of not-yet-synced transactions but
//      always recovers a consistent committed prefix (each transaction
//      stays atomic).
//   2. Reads hit the page cache; on a miss the latest committed version
//      is fetched from the owning log stream (wal_index_) or, failing
//      that, the database file.
//   3. A checkpoint — when the logs cross wal_checkpoint_bytes in
//      total, and at clean close — folds the latest committed pages of
//      EVERY stream back into the database file in merged commit-
//      sequence order, fsyncs it, and truncates the logs. Pager::Open
//      replays whatever committed prefix of each stream survives a
//      crash and intersects them to the highest mutually consistent
//      merged sequence (see wal/checkpointer.hpp).
//
// WRITE DOMAINS (kWal only): the write path is partitioned into up to
// kMaxWriteDomains domains — kGraphDomain (graph/prov/places B-trees)
// and kTextDomain (the lazily-refreshed text index) — each owning its
// own WAL stream, group-commit window, and fsync clock. Transactions
// are still serialized (single writer), and all domains share one page
// space, freelist, and catalog; what parallelizes is DURABILITY: two
// threads may fsync two streams concurrently (the ingest committer on
// the graph stream, the index-maintenance lane on the text stream), so
// neither waits behind the other's device latency. One database-wide
// commit clock (commit_seq_) stamps every commit, so the union of the
// streams is a single total order; snapshots pin a VECTOR of per-domain
// commit sequences (Snapshot::domain_commit_seq) alongside the merged
// one.
//
// Pick kRollbackJournal for read-mostly workloads with rare, large
// transactions; pick kWal for sustained bursty ingest (the browser
// provenance capture path), where commit latency is dominated by fsync
// count and group commit amortizes it. Either mode recovers a database
// left behind by the other (Open runs both recoveries), so the mode is
// a per-open choice, not a file-format commitment.
//
// Concurrency model: single writer, snapshot readers. Every mutating
// entry point (Begin/Commit/Rollback, GetMutable, Allocate, Free,
// Checkpoint) and the live read path (Get) belong to ONE writer thread
// at a time (serialized one layer up). The sync-only entry points
// (SyncWal, FlushPending, SyncWalDomain) may additionally be called
// from a non-writer thread — each stream's fsync state is serialized by
// its domain mutex, and the WalWriter publishes committed bytes
// atomically (see wal/wal_writer.hpp). Concurrent reads go through
// BeginRead() (kWal only), which returns a Snapshot — an immutable view
// of the committed state at a commit sequence number (see
// storage/snapshot.hpp). Snapshots are safe against a concurrently
// committing writer: commits only append to the logs, and checkpointing
// (the one operation that rewrites bytes a snapshot may still need) is
// DEFERRED while any snapshot is live. All snapshots must be released
// before the pager closes.
//
// LOCK ORDER: commit_mu_ -> domains_[0].mu -> domains_[1].mu (domain
// mutexes by ascending id; commit_mu_ first when both are needed —
// enforced by BP_ACQUIRED_BEFORE on commit_mu_). Never acquire
// commit_mu_ while holding a domain mutex.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/buffer_pool.hpp"
#include "storage/compress.hpp"
#include "storage/env.hpp"
#include "storage/page.hpp"
#include "util/mutex.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace bp::obs {
class CollectionSink;
class Histogram;
}  // namespace bp::obs

namespace bp::wal {
class WalWriter;
}  // namespace bp::wal

namespace bp::storage {

enum class DurabilityMode {
  kRollbackJournal,  // before-images to <path>.journal; 2 fsyncs/commit
  kWal,              // redo log to <path>.wal[N]; <= 1 fsync/commit
};

// A write domain names the WAL stream a transaction commits to (kWal
// only; see the file header). Domain 0 is the default for every
// transaction that does not ask otherwise.
using WriteDomain = uint32_t;
inline constexpr WriteDomain kGraphDomain = 0;  // graph/prov/places
inline constexpr WriteDomain kTextDomain = 1;   // inverted text index
inline constexpr uint32_t kMaxWriteDomains = 2;

// wal_index_ slot encoding: stream id in the top byte, log offset in
// the low 56 bits. kMainFileImage (all ones) can never collide with a
// real slot — it would need stream 255 at the maximum offset.
inline constexpr uint64_t MakeWalSlot(WriteDomain stream, uint64_t offset) {
  return (uint64_t{stream} << 56) | offset;
}
inline constexpr WriteDomain SlotStream(uint64_t slot) {
  return static_cast<WriteDomain>(slot >> 56);
}
inline constexpr uint64_t SlotOffset(uint64_t slot) {
  return slot & ((uint64_t{1} << 56) - 1);
}

struct PagerOptions {
  Env* env = Env::Posix();
  // Soft cap on cached pages; clean unpinned pages are evicted LRU beyond
  // it. Dirty pages are never evicted (they spill at commit).
  size_t cache_pages = 4096;
  // When false, skips fsync (faster tests/benches; crash safety off).
  bool sync = true;
  DurabilityMode durability = DurabilityMode::kRollbackJournal;
  // kWal only: CEILING on the number of committed transactions that
  // share one log fsync, per domain stream. 1 = every commit is durable
  // on return; N > 1 trades a bounded durability lag (never
  // consistency) for up to N× fewer fsyncs. Commit fsyncs when the
  // window fills; a caller that knows the write stream went idle closes
  // a partial window early with FlushPending() (the async ingest
  // committer's adaptive group commit).
  uint32_t wal_group_commit = 1;
  // kWal only: checkpoint (fold all log streams into the database file)
  // once the streams exceed this size in total.
  uint64_t wal_checkpoint_bytes = 4 << 20;
  // kWal only: number of write domains (clamped to
  // [1, kMaxWriteDomains]). 1 keeps the classic single-stream layout;
  // 2 gives the text index its own stream so index-maintenance fsyncs
  // overlap ingest fsyncs. Journal mode always behaves as 1.
  uint32_t write_domains = 1;
  // Byte budget of the versioned buffer pool the read path shares (all
  // snapshots + the live pager; see storage/buffer_pool.hpp). Replaces
  // the per-snapshot soft caps. 0 disables the pool: snapshots fall
  // back to a private copy-on-read cache capped at cache_pages, and
  // live misses always hit the log/database file.
  size_t pool_bytes = 32 << 20;
  // When set, this pager joins an existing pool (several databases
  // sharing one global byte budget) instead of creating its own from
  // pool_bytes. Keys carry a per-pager owner id, so pagers never alias.
  std::shared_ptr<BufferPool> buffer_pool;
  // kWal only: publish each commit's page images into the pool as they
  // are logged, so reader misses on hot, freshly written pages (tree
  // roots, the catalog) disappear. Costs one page copy per dirty page
  // per commit; turn off for write-only workloads.
  bool pool_publish_on_commit = true;
  // Page compression (see storage/compress.hpp). With mode=kFast,
  // checkpoints fold eligible pages into compressed frames (the WAL hot
  // path stays raw), and the buffer pool demotes evicted frames into a
  // compressed cold tier. Default mode comes from the BP_COMPRESSION
  // environment variable; unset means off.
  compress::CompressionOptions compression;
};

// Read-path counters of one Snapshot (storage/snapshot.hpp): where its
// page reads were served from. Folded into PagerStats when the
// snapshot is released.
struct SnapshotStats {
  uint64_t pages_read = 0;  // log/database file reads (missed everywhere)
  uint64_t cache_hits = 0;  // L1: the snapshot's own memo
  uint64_t pool_hits = 0;   // L2: the shared versioned buffer pool
  // Main-file reads that decoded a compressed checkpoint frame.
  uint64_t decompress_reads = 0;
};

struct PagerStats {
  uint64_t commits = 0;
  uint64_t rollbacks = 0;
  uint64_t pages_written = 0;
  uint64_t pages_read = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t evictions = 0;
  // Durability cost, counted in BOTH durability modes: fsync calls
  // issued, and the bytes each fsync made durable (0 when sync=false —
  // nothing is made durable).
  uint64_t fsyncs = 0;
  uint64_t bytes_synced = 0;
  // kWal only.
  uint64_t wal_frames = 0;   // page images appended to the logs
  uint64_t checkpoints = 0;  // threshold + close-time folds
  // Group-commit windows closed (each retired >= 1 committed txn): by
  // filling the wal_group_commit ceiling, by FlushPending/SyncWal, or
  // at checkpoint/close. fsyncs / group_commits is the amortization the
  // window actually achieved.
  uint64_t group_commits = 0;
  // Stream fsyncs that started while another stream's fsync was still
  // in flight — the overlap the write-domain split exists to create.
  // Always 0 with one domain.
  uint64_t fsync_overlaps = 0;
  // Shared buffer pool, aggregated over every consumer of the pool this
  // pager belongs to (snapshots, the live read path, and — when
  // PagerOptions::buffer_pool is shared — other pagers). All zero when
  // the pool is disabled (pool_bytes = 0).
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;
  uint64_t pool_bytes = 0;   // resident image bytes right now
  uint64_t pool_frames = 0;  // resident frames right now
  // Pool bytes currently pinned by live readers (see BufferPoolStats).
  uint64_t pool_pinned_bytes = 0;
  // Compressed cold tier of the pool (all zero with compression off):
  // evictions demoted into compressed frames, pool misses rescued by
  // decompressing a cold frame, cold frames aged out entirely, and the
  // tier's resident footprint (counted inside pool_bytes' budget).
  uint64_t pool_cold_demotions = 0;
  uint64_t pool_cold_hits = 0;
  uint64_t pool_cold_evictions = 0;
  uint64_t pool_cold_bytes = 0;
  uint64_t pool_cold_frames = 0;
  // Checkpoint compression (compression=fast): pages folded as
  // compressed frames, the physical frame bytes written for them, the
  // raw bytes those frames replace, and reads (live + snapshot) that
  // decoded a compressed main-file page.
  uint64_t compressed_pages = 0;
  uint64_t compressed_bytes = 0;
  uint64_t compressible_raw_bytes = 0;
  uint64_t decompress_reads = 0;
  // Snapshot read-path totals, folded in as each snapshot is released
  // (live snapshots report through their own SnapshotStats until then):
  // log/database reads, L1 memo hits, and shared-pool hits issued by
  // snapshot readers.
  uint64_t snapshot_pages_read = 0;
  uint64_t snapshot_cache_hits = 0;
  uint64_t snapshot_pool_hits = 0;
};

// Per-write-domain counters (kWal only; all zero for inactive domains).
struct DomainStats {
  uint64_t commits = 0;          // transactions committed to this stream
  uint64_t wal_frames = 0;       // page images appended to this stream
  uint64_t wal_bytes = 0;        // committed stream bytes (incl. header)
  uint64_t fsyncs = 0;           // fsyncs issued on this stream
  uint64_t bytes_synced = 0;     // bytes those fsyncs made durable
  uint64_t group_commits = 0;    // group-commit windows closed
  uint64_t last_commit_seq = 0;  // newest merged seq on this stream
};

class Pager;
class Snapshot;

namespace internal {
struct Frame {
  PageId id = kNoPage;
  std::string data;  // exactly kPageSize bytes
  int pins = 0;
  bool dirty = false;
  // Intrusive LRU list links (head = MRU); see Pager::lru_. Eviction
  // pops from the cold end instead of scanning and sorting every frame.
  Frame* lru_prev = nullptr;
  Frame* lru_next = nullptr;
};
}  // namespace internal

// RAII pinned view of one page. Obtained from Pager::Get (read-only) or
// Pager::GetMutable (writable, dirties the page). Movable, not copyable.
class PageRef {
 public:
  PageRef() = default;
  PageRef(Pager* pager, internal::Frame* frame, bool writable);
  ~PageRef();

  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  bool valid() const { return frame_ != nullptr; }
  PageId id() const;
  const char* data() const;
  // Precondition: acquired via GetMutable.
  char* mutable_data();

 private:
  Pager* pager_ = nullptr;
  internal::Frame* frame_ = nullptr;
  bool writable_ = false;
};

class Pager {
 public:
  // Opens (creating or recovering as needed) the database at `path`.
  static util::Result<std::unique_ptr<Pager>> Open(std::string path,
                                                   PagerOptions options);
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // --- transactions -------------------------------------------------
  // `domain` routes the transaction's commit to that domain's WAL
  // stream (clamped to the configured write_domains; journal mode
  // ignores it). The domain changes which stream pays the fsync, never
  // what the transaction may touch: all domains share one page space.
  util::Status Begin(WriteDomain domain = kGraphDomain);
  util::Status Commit();
  util::Status Rollback();
  bool InTransaction() const { return in_txn_; }

  // --- page access ---------------------------------------------------
  util::Result<PageRef> Get(PageId id);
  // Requires an open transaction.
  util::Result<PageRef> GetMutable(PageId id);

  // Allocates a zeroed page (freelist first, else grows the file).
  // Requires an open transaction.
  util::Result<PageId> Allocate();
  // Returns a page to the freelist. Requires an open transaction.
  util::Status Free(PageId id);

  // --- header fields -------------------------------------------------
  uint32_t page_count() const { return page_count_; }
  uint32_t freelist_length() const { return freelist_count_; }
  PageId catalog_root() const { return catalog_root_; }
  util::Status SetCatalogRoot(PageId root);

  // Point-in-time statistics: the pager's own counters plus (when a
  // pool is attached) the shared buffer pool's, folded into the pool_*
  // fields — one coherent set for benches and facade reporting.
  PagerStats stats() const BP_EXCLUDES(commit_mu_);

  // Per-domain counters (all zero for inactive domains / journal mode).
  // Thread-safe.
  DomainStats domain_stats(WriteDomain domain) const;

  // Number of active write domains (1 in journal mode).
  uint32_t write_domains() const { return write_domains_; }

  // The shared versioned buffer pool (null when pool_bytes was 0 and no
  // pool was injected). Snapshots resolve through it; several pagers
  // may share one instance via PagerOptions::buffer_pool.
  const std::shared_ptr<BufferPool>& buffer_pool() const { return pool_; }

  // Monotone counter bumped by every page mutation (GetMutable) and by
  // Rollback. Open cursors snapshot it to detect interleaved writes: an
  // unchanged counter guarantees their (page, slot) position is still
  // exact; a changed one makes them re-seek by key.
  uint64_t change_count() const { return change_count_; }

  // Total bytes the database file occupies (page_count * kPageSize).
  uint64_t FileBytes() const {
    return static_cast<uint64_t>(page_count_) * kPageSize;
  }

  // Physical bytes page `id` occupies on disk: the compressed frame's
  // header+payload when its checkpoint slot holds one (the slot is
  // still padded to kPageSize, but only the frame bytes are live — the
  // hole-punch model), kPageSize otherwise (raw slot, WAL-resident, or
  // not yet folded). Writer thread only (peeks the main file).
  uint64_t OnDiskPageBytes(PageId id) const;

  // Test hook: when set, Commit() stops right after the journal fsync and
  // returns Aborted — simulating a crash between journal and database
  // writes. The next Open() must recover.
  void set_crash_after_journal_for_testing(bool v) {
    crash_after_journal_ = v;
  }

  // kWal only: makes every commit on EVERY domain stream durable
  // (flushes partially filled group-commit windows). This is the
  // acknowledgment barrier: an acked commit requires every EARLIER
  // merged sequence durable too — recovery truncates at the first gap —
  // so ack paths always sync all domains. No-op in journal mode or when
  // nothing is pending. Safe from a non-writer thread.
  util::Status SyncWal();

  // kWal only: makes commits on ONE domain stream durable. This is the
  // non-ack window sync (the index-maintenance lane flushing its own
  // stream); it must not be used to acknowledge durability to a caller
  // — see SyncWal. Safe from a non-writer thread.
  util::Status SyncWalDomain(WriteDomain domain);

  // Adaptive group-commit hook: closes partially filled windows ONLY
  // when committed transactions are actually awaiting fsync, and says
  // so. The async ingest committer calls this whenever its queue runs
  // dry, which collapses tail latency at low event rates while the
  // wal_group_commit ceiling still amortizes fsyncs under load. Returns
  // whether a flush ran (false: journal mode or nothing pending).
  // Syncs ALL domains (it is an ack path, like SyncWal).
  util::Result<bool> FlushPending();

  // Committed transactions whose log records await the next fsync,
  // totaled across domains (always 0 in journal mode, where every
  // commit is durable on return). Thread-safe.
  uint32_t unsynced_commits() const;
  // Same, for one domain. Thread-safe.
  uint32_t unsynced_commits(WriteDomain domain) const;

  // kWal only: forces a checkpoint now (normally driven by
  // wal_checkpoint_bytes and clean close). Folds ALL domain streams in
  // merged commit-sequence order. FailedPrecondition when a
  // transaction is open or live snapshots still pin WAL frames.
  util::Status Checkpoint() BP_EXCLUDES(commit_mu_);

  DurabilityMode durability() const { return options_.durability; }

  // --- snapshots (read transactions) ---------------------------------
  //
  // Freezes the committed state as of now — the merged commit sequence
  // number, the per-domain commit-sequence vector, page count, catalog
  // root, and the stream slots of every committed page still living in
  // a write-ahead log — into an immutable view that any number of
  // reader threads can read while this (single-writer) pager keeps
  // committing. kWal only: the logs are the device that makes
  // committed history immutable; journal mode rewrites the database
  // file in place at every commit and returns FailedPrecondition.
  // Thread-safe (may be called off the writer thread). While snapshots
  // are live, checkpoints are deferred and the logs grow; release
  // snapshots promptly under sustained ingest.
  util::Result<std::unique_ptr<Snapshot>> BeginRead() BP_EXCLUDES(commit_mu_);

  // Snapshots currently alive (they pin WAL frames and defer
  // checkpoints). Thread-safe.
  uint32_t live_snapshots() const BP_EXCLUDES(commit_mu_);

 private:
  friend class PageRef;
  friend class Snapshot;

  // Out of line: members include unique_ptr<wal::WalWriter>, which is an
  // incomplete type here.
  Pager(std::string path, PagerOptions options);

  // One write domain's stream state (see the file header). The mutex
  // serializes fsyncs of the stream against each other and against
  // checkpoint truncation; appends are serialized one layer up by the
  // single-writer contract and hand off to a (possibly different)
  // syncing thread through WalWriter's atomic committed-bytes.
  // LOCK ORDER: commit_mu_ before any domain mutex; domain mutexes by
  // ascending id (see BP_ACQUIRED_BEFORE on commit_mu_).
  struct WalDomain {
    std::unique_ptr<wal::WalWriter> wal;  // null: domain inactive
    util::Mutex mu;
    // Committed transactions on this stream not yet fsynced. Released
    // by the committing thread after the stream append, acquired by the
    // syncing thread before it snapshots committed bytes — so a sync
    // that observes N pending commits observes their appended bytes.
    std::atomic<uint32_t> unsynced_commits{0};
    // Newest merged commit sequence on this stream (writer thread;
    // published under commit_mu_ for snapshots).
    uint64_t last_commit_seq = 0;
    // Pool image-key generation for this stream's WAL offsets; bumped
    // when a checkpoint truncates the stream (offset reuse). Writer
    // thread; snapshots read the published copy.
    uint32_t generation = 0;
    // Per-domain counters (see DomainStats). fetch_add: the fsync-side
    // ones are bumped from whichever thread syncs the stream.
    std::atomic<uint64_t> stat_commits{0};
    std::atomic<uint64_t> stat_wal_frames{0};
    std::atomic<uint64_t> stat_fsyncs{0};
    std::atomic<uint64_t> stat_bytes_synced{0};
    std::atomic<uint64_t> stat_group_commits{0};
  };

  // True when the pager runs in WAL mode (domain 0 always owns a
  // stream then).
  bool wal_mode() const { return domains_[0].wal != nullptr; }

  // Publish the current committed state into published_ under
  // commit_mu_ so BeginRead (any thread) sees either the pre- or
  // post-commit state, never a torn mix. Writer thread only.
  // PublishCommittedState rebuilds the published WAL index from
  // scratch (Open, checkpoint); PublishCommitDelta applies just one
  // commit's page slots, copying the map only when a live snapshot
  // still shares it — so commits without snapshot pressure publish in
  // O(dirty pages), not O(index).
  void PublishCommittedState() BP_EXCLUDES(commit_mu_);
  void PublishCommitDelta(
      const std::vector<std::pair<PageId, uint64_t>>& offsets)
      BP_EXCLUDES(commit_mu_);
  // Copies the committed header fields (and, when non-null, the given
  // index) into published_ — commit_mu_ must already be held, and now
  // the compiler checks that.
  void PublishLocked(
      std::shared_ptr<std::unordered_map<PageId, uint64_t>> index)
      BP_REQUIRES(commit_mu_);
  void ReleaseSnapshot(const SnapshotStats& final_stats)
      BP_EXCLUDES(commit_mu_);

  util::Status InitializeNewDb();
  util::Status LoadHeader();
  std::string SerializedHeader() const;
  util::Status WriteHeaderToFrame();
  util::Status RecoverFromJournal();
  util::Status RecoverFromWal();
  util::Status CommitViaJournal(const std::vector<internal::Frame*>& dirty);
  util::Status CommitViaWal(const std::vector<internal::Frame*>& dirty);
  util::Status MaybeCheckpoint();
  std::string JournalPath() const { return path_ + ".journal"; }
  // Stream 0 keeps the classic <path>.wal name; stream N is <path>.walN.
  std::string WalPath(WriteDomain domain = 0) const {
    return domain == 0 ? path_ + ".wal"
                       : path_ + ".wal" + std::to_string(domain);
  }

  // Fsyncs one stream's committed-but-unsynced transactions; the
  // caller holds that domain's mutex (checked for the WalDomain& it
  // passes).
  util::Status SyncDomainLocked(WalDomain& dom) BP_REQUIRES(dom.mu);

  util::Result<internal::Frame*> FetchFrame(PageId id);
  void JournalBeforeImage(internal::Frame& frame);
  void Unpin(internal::Frame* frame);
  void MaybeEvict();

  // --- intrusive LRU over frames_ (writer cache) ---------------------
  void LruTouch(internal::Frame* frame);
  void LruRemove(internal::Frame* frame);

  // --- buffer pool (WAL mode; writer thread only) --------------------
  // The image key of `id`'s latest COMMITTED image, resolvable by any
  // reader: stream slot when the image lives in a log, main-file key
  // when checkpointed. false when the page has no committed image yet
  // (allocated this transaction) or the pool is off.
  bool CommittedImageKey(PageId id, PageImageKey* key) const;
  // Publishes a clean committed image (copy or move) into the pool.
  void PublishToPool(const PageImageKey& key, std::string&& image);

  // Registry collector body: exports stats() as bp_pager_* / bp_pool_* /
  // bp_snapshot_* samples labeled with this pager's database path, plus
  // per-domain bp_pager_domain_* samples labeled with domain="N".
  void CollectMetrics(obs::CollectionSink& sink) const;

  std::string path_;
  PagerOptions options_;
  std::unique_ptr<File> file_;

  std::unordered_map<PageId, std::unique_ptr<internal::Frame>> frames_;
  internal::Frame lru_;  // sentinel: lru_.lru_next = MRU end
  uint64_t change_count_ = 0;

  // Shared versioned buffer pool (see storage/buffer_pool.hpp). Null
  // when disabled. Only consulted in WAL mode: journal mode rewrites
  // main-file pages in place at every commit, which would invalidate
  // main-file image keys mid-generation.
  std::shared_ptr<BufferPool> pool_;
  uint32_t pool_owner_ = 0;
  // Checkpoint generation for MAIN-FILE image keys: bumped by every
  // checkpoint that folded pages (the only operation that rewrites the
  // main database file in WAL mode). WAL-resident keys use the owning
  // domain's generation instead (WalDomain::generation). Writer
  // thread; snapshots read the published copies.
  uint32_t main_generation_ = 0;

  // Cached header fields (persisted in page 0).
  uint32_t page_count_ = 0;
  PageId freelist_head_ = kNoPage;
  uint32_t freelist_count_ = 0;
  PageId catalog_root_ = kNoPage;
  uint64_t commit_seq_ = 0;

  // Transaction state.
  bool in_txn_ = false;
  WriteDomain txn_domain_ = kGraphDomain;
  // Before-images of pre-existing pages dirtied in this transaction.
  std::unordered_map<PageId, std::string> before_images_;
  // Pages allocated in this transaction (no before-image; rollback drops).
  std::unordered_map<PageId, bool> fresh_pages_;
  uint32_t txn_orig_page_count_ = 0;
  // Pages physically valid in the main database file. In journal mode
  // this tracks page_count_ at the last commit; in WAL mode it only
  // advances at checkpoints — committed pages beyond it live in the
  // logs and are fetched through wal_index_.
  uint32_t main_file_pages_ = 0;

  // --- WAL state (kWal mode only) ------------------------------------
  // Active domain count (1..kMaxWriteDomains; 1 in journal mode).
  uint32_t write_domains_ = 1;
  // Domain streams, indexed by WriteDomain. Inactive domains have a
  // null writer but a valid (never contended) mutex, so lock-order
  // code can treat the array uniformly.
  WalDomain domains_[kMaxWriteDomains];
  // page id -> slot (stream | offset, see MakeWalSlot) of its latest
  // committed image across all streams.
  std::unordered_map<PageId, uint64_t> wal_index_;
  // The (page, slot) pairs of the most recent WAL commit; what
  // PublishCommitDelta applies to the published index.
  std::vector<std::pair<PageId, uint64_t>> last_commit_offsets_;
  // Merged commit sequence recovered from the streams at Open (what
  // Open bumps commit_seq_ to when the folded header predates it).
  uint64_t recovered_commit_seq_ = 0;
  // Streams whose fsync is in flight right now; a sync that starts
  // while this is nonzero is an overlap (stats_.fsync_overlaps).
  std::atomic<uint32_t> fsyncs_in_flight_{0};

  // --- snapshot support ----------------------------------------------
  // The committed state as readers may observe it. Guarded by
  // commit_mu_. The wal_index map is mutated in place only while no
  // snapshot shares it (use_count == 1 under the lock); once a
  // snapshot holds a reference the next publish copies instead, so
  // every snapshot's view stays immutable.
  struct PublishedState {
    uint64_t commit_seq = 0;
    // Newest commit sequence per domain stream (the snapshot LSN
    // vector).
    std::array<uint64_t, kMaxWriteDomains> domain_commit_seq{};
    uint32_t page_count = 0;
    PageId catalog_root = kNoPage;
    uint32_t main_file_pages = 0;
    uint32_t main_generation = 0;  // main-file pool image keys
    // Per-domain generations for WAL-resident pool image keys.
    std::array<uint32_t, kMaxWriteDomains> domain_generation{};
    std::shared_ptr<std::unordered_map<PageId, uint64_t>> wal_index;
  };
  // LOCK ORDER (S6): commit_mu_ strictly before either domain mutex;
  // domain mutexes by ascending id (no annotation can relate two
  // elements of a member array, so that half of the order is enforced
  // by convention: every multi-domain path iterates d = 0, 1).
  mutable util::Mutex commit_mu_
      BP_ACQUIRED_BEFORE(domains_[0].mu, domains_[1].mu);
  PublishedState published_ BP_GUARDED_BY(commit_mu_);
  uint32_t live_snapshots_ BP_GUARDED_BY(commit_mu_) = 0;
  // Totals folded in by ReleaseSnapshot.
  SnapshotStats retired_snapshot_stats_ BP_GUARDED_BY(commit_mu_);

  bool crash_after_journal_ = false;

  // One hot counter, alone on its cache line — the same cell shape
  // obs::Counter stripes over. Single-writer: mutations are serialized
  // by the pager's single-writer contract, so Inc() is a plain
  // load+store (no lock-prefixed RMW — PR 8's fetch_add here cost +37%
  // on hit-lookup p99); the atomic only makes cross-thread stats()
  // reads tear-free, and the alignment keeps a metrics dump reading
  // one counter from bouncing the line another increment is writing.
  struct alignas(64) StatCell {
    std::atomic<uint64_t> v{0};
    void Inc(uint64_t n = 1) {
      v.store(v.load(std::memory_order_relaxed) + n,
              std::memory_order_relaxed);
    }
    uint64_t load() const { return v.load(std::memory_order_relaxed); }
  };
  // Writer-side counters. The StatCell block is single-writer (see
  // above); the trailing plain atomics are bumped with real fetch_add
  // because stream fsyncs — and so these counters — can run on a
  // non-writer thread (SyncWalDomain), concurrently with each other.
  struct AtomicPagerStats {
    StatCell commits;
    StatCell rollbacks;
    StatCell pages_written;
    StatCell pages_read;
    StatCell cache_hits;
    StatCell cache_misses;
    StatCell evictions;
    StatCell wal_frames;
    StatCell checkpoints;
    StatCell compressed_pages;
    StatCell compressed_bytes;
    StatCell compressible_raw_bytes;
    StatCell decompress_reads;
    // Multi-thread counters (fsync paths), on their own line.
    struct alignas(64) {
      std::atomic<uint64_t> fsyncs{0};
      std::atomic<uint64_t> bytes_synced{0};
      std::atomic<uint64_t> group_commits{0};
      std::atomic<uint64_t> fsync_overlaps{0};
    } sync;
  };
  AtomicPagerStats stats_;

  // --- observability (src/obs) ---------------------------------------
  // Process-wide histograms shared by every pager (latency is a
  // process-level distribution; per-instance counters go through the
  // collector instead). Fetched once at Open; registry-owned.
  obs::Histogram* commit_latency_us_ = nullptr;
  obs::Histogram* fsync_latency_us_ = nullptr;
  obs::Histogram* group_commit_txns_ = nullptr;
  obs::Histogram* checkpoint_latency_us_ = nullptr;
  obs::Histogram* decompress_latency_us_ = nullptr;
  uint64_t metrics_token_ = 0;  // collector handle; removed in ~Pager
};

// Begins a transaction when none is open; a no-op when the caller already
// holds one (the operation then composes into the outer transaction,
// whatever that transaction's write domain — a nested AutoTxn never
// re-routes). The destructor ROLLS BACK an owned, uncommitted
// transaction, so any early error return undoes partial mutations;
// success paths must end with `return txn.Commit();`.
//
// Note: when an operation fails inside an outer transaction, the partial
// mutations stay in that transaction — the outer caller must Rollback.
class AutoTxn {
 public:
  explicit AutoTxn(Pager& pager) : AutoTxn(pager, kGraphDomain) {}
  AutoTxn(Pager& pager, WriteDomain domain) : pager_(pager) {
    if (!pager_.InTransaction()) {
      begin_status_ = pager_.Begin(domain);
      owns_ = begin_status_.ok();
    }
  }
  ~AutoTxn() {
    if (owns_ && !committed_) {
      // Rollback of in-memory state cannot fail in ways the destructor
      // could meaningfully handle.
      (void)pager_.Rollback();
    }
  }
  AutoTxn(const AutoTxn&) = delete;
  AutoTxn& operator=(const AutoTxn&) = delete;

  // Commits when owned; reports a failed Begin; no-op when nested.
  util::Status Commit() {
    if (!begin_status_.ok()) return begin_status_;
    if (!owns_) return util::Status::Ok();
    committed_ = true;
    return pager_.Commit();
  }

  // True when this AutoTxn opened the transaction (so its destruction
  // without Commit really rolls back; a nested AutoTxn never does).
  bool owns() const { return owns_; }

 private:
  Pager& pager_;
  util::Status begin_status_;
  bool owns_ = false;
  bool committed_ = false;
};

}  // namespace bp::storage
