// Pager: page cache + transactions + crash recovery.
//
// The database file is an array of kPageSize pages. Page 0 holds the
// header (magic, page count, freelist, catalog root). All reads and
// writes go through pinned page references; mutations are transactional.
//
// Two durability modes (PagerOptions::durability):
//
// kRollbackJournal (SQLite journal mode; 2 fsyncs per commit):
//   1. During a transaction, dirty pages live only in the cache; the
//      first mutation of each pre-existing page captures its before-image.
//   2. Commit: write all before-images to <path>.journal, fsync it, then
//      write the dirty pages to the database file, fsync it, then remove
//      the journal. A crash before the journal fsync leaves the database
//      untouched; a crash after it is rolled back on the next Open by
//      replaying before-images and truncating to the journaled page count.
//   3. Rollback: restore before-images in cache; nothing reached the file.
//
// kWal (write-ahead log; 1 fsync per commit, or per GROUP of commits):
//   1. Commit appends the dirty pages plus a commit record to <path>.wal
//      in one sequential write (see wal/wal_format.hpp) and fsyncs the
//      log — the database file is not touched at all. With
//      wal_group_commit = N, the fsync is deferred until N transactions
//      have committed, so N commits share one fsync; a crash may lose
//      the tail of not-yet-synced transactions but always recovers a
//      consistent committed prefix (each transaction stays atomic).
//   2. Reads hit the page cache; on a miss the latest committed version
//      is fetched from the log (wal_index_) or, failing that, the
//      database file.
//   3. A checkpoint — when the log crosses wal_checkpoint_bytes, and at
//      clean close — folds the latest committed pages back into the
//      database file, fsyncs it, and truncates the log. Pager::Open
//      replays whatever committed prefix of the log survives a crash,
//      stopping at the first torn or bad-checksum frame.
//
// Pick kRollbackJournal for read-mostly workloads with rare, large
// transactions; pick kWal for sustained bursty ingest (the browser
// provenance capture path), where commit latency is dominated by fsync
// count and group commit amortizes it. Either mode recovers a database
// left behind by the other (Open runs both recoveries), so the mode is
// a per-open choice, not a file-format commitment.
//
// Concurrency model: single writer, snapshot readers. Every mutating
// entry point (Begin/Commit/Rollback, GetMutable, Allocate, Free,
// SyncWal, Checkpoint) and the live read path (Get) belong to ONE
// writer thread. Concurrent reads go through BeginRead() (kWal only),
// which returns a Snapshot — an immutable view of the committed state
// at a commit sequence number (see storage/snapshot.hpp). Snapshots
// are safe against a concurrently committing writer: commits only
// append to the log, and checkpointing (the one operation that
// rewrites bytes a snapshot may still need) is DEFERRED while any
// snapshot is live. All snapshots must be released before the pager
// closes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/buffer_pool.hpp"
#include "storage/env.hpp"
#include "storage/page.hpp"
#include "util/mutex.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace bp::obs {
class CollectionSink;
class Histogram;
}  // namespace bp::obs

namespace bp::wal {
class WalWriter;
}  // namespace bp::wal

namespace bp::storage {

enum class DurabilityMode {
  kRollbackJournal,  // before-images to <path>.journal; 2 fsyncs/commit
  kWal,              // redo log to <path>.wal; <= 1 fsync/commit
};

struct PagerOptions {
  Env* env = Env::Posix();
  // Soft cap on cached pages; clean unpinned pages are evicted LRU beyond
  // it. Dirty pages are never evicted (they spill at commit).
  size_t cache_pages = 4096;
  // When false, skips fsync (faster tests/benches; crash safety off).
  bool sync = true;
  DurabilityMode durability = DurabilityMode::kRollbackJournal;
  // kWal only: CEILING on the number of committed transactions that
  // share one log fsync. 1 = every commit is durable on return; N > 1
  // trades a bounded durability lag (never consistency) for up to N×
  // fewer fsyncs. Commit fsyncs when the window fills; a caller that
  // knows the write stream went idle closes a partial window early with
  // FlushPending() (the async ingest committer's adaptive group commit).
  uint32_t wal_group_commit = 1;
  // kWal only: checkpoint (fold log into the database file) once the log
  // exceeds this size.
  uint64_t wal_checkpoint_bytes = 4 << 20;
  // Byte budget of the versioned buffer pool the read path shares (all
  // snapshots + the live pager; see storage/buffer_pool.hpp). Replaces
  // the per-snapshot soft caps. 0 disables the pool: snapshots fall
  // back to a private copy-on-read cache capped at cache_pages, and
  // live misses always hit the log/database file.
  size_t pool_bytes = 32 << 20;
  // When set, this pager joins an existing pool (several databases
  // sharing one global byte budget) instead of creating its own from
  // pool_bytes. Keys carry a per-pager owner id, so pagers never alias.
  std::shared_ptr<BufferPool> buffer_pool;
  // kWal only: publish each commit's page images into the pool as they
  // are logged, so reader misses on hot, freshly written pages (tree
  // roots, the catalog) disappear. Costs one page copy per dirty page
  // per commit; turn off for write-only workloads.
  bool pool_publish_on_commit = true;
};

// Read-path counters of one Snapshot (storage/snapshot.hpp): where its
// page reads were served from. Folded into PagerStats when the
// snapshot is released.
struct SnapshotStats {
  uint64_t pages_read = 0;  // log/database file reads (missed everywhere)
  uint64_t cache_hits = 0;  // L1: the snapshot's own memo
  uint64_t pool_hits = 0;   // L2: the shared versioned buffer pool
};

struct PagerStats {
  uint64_t commits = 0;
  uint64_t rollbacks = 0;
  uint64_t pages_written = 0;
  uint64_t pages_read = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t evictions = 0;
  // Durability cost, counted in BOTH durability modes: fsync calls
  // issued, and the bytes each fsync made durable (0 when sync=false —
  // nothing is made durable).
  uint64_t fsyncs = 0;
  uint64_t bytes_synced = 0;
  // kWal only.
  uint64_t wal_frames = 0;   // page images appended to the log
  uint64_t checkpoints = 0;  // threshold + close-time folds
  // Group-commit windows closed (each retired >= 1 committed txn): by
  // filling the wal_group_commit ceiling, by FlushPending/SyncWal, or
  // at checkpoint/close. fsyncs / group_commits is the amortization the
  // window actually achieved.
  uint64_t group_commits = 0;
  // Shared buffer pool, aggregated over every consumer of the pool this
  // pager belongs to (snapshots, the live read path, and — when
  // PagerOptions::buffer_pool is shared — other pagers). All zero when
  // the pool is disabled (pool_bytes = 0).
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;
  uint64_t pool_bytes = 0;   // resident image bytes right now
  uint64_t pool_frames = 0;  // resident frames right now
  // Pool bytes currently pinned by live readers (see BufferPoolStats).
  uint64_t pool_pinned_bytes = 0;
  // Snapshot read-path totals, folded in as each snapshot is released
  // (live snapshots report through their own SnapshotStats until then):
  // log/database reads, L1 memo hits, and shared-pool hits issued by
  // snapshot readers.
  uint64_t snapshot_pages_read = 0;
  uint64_t snapshot_cache_hits = 0;
  uint64_t snapshot_pool_hits = 0;
};

class Pager;
class Snapshot;

namespace internal {
struct Frame {
  PageId id = kNoPage;
  std::string data;  // exactly kPageSize bytes
  int pins = 0;
  bool dirty = false;
  // Intrusive LRU list links (head = MRU); see Pager::lru_. Eviction
  // pops from the cold end instead of scanning and sorting every frame.
  Frame* lru_prev = nullptr;
  Frame* lru_next = nullptr;
};
}  // namespace internal

// RAII pinned view of one page. Obtained from Pager::Get (read-only) or
// Pager::GetMutable (writable, dirties the page). Movable, not copyable.
class PageRef {
 public:
  PageRef() = default;
  PageRef(Pager* pager, internal::Frame* frame, bool writable);
  ~PageRef();

  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  bool valid() const { return frame_ != nullptr; }
  PageId id() const;
  const char* data() const;
  // Precondition: acquired via GetMutable.
  char* mutable_data();

 private:
  Pager* pager_ = nullptr;
  internal::Frame* frame_ = nullptr;
  bool writable_ = false;
};

class Pager {
 public:
  // Opens (creating or recovering as needed) the database at `path`.
  static util::Result<std::unique_ptr<Pager>> Open(std::string path,
                                                   PagerOptions options);
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // --- transactions -------------------------------------------------
  util::Status Begin();
  util::Status Commit();
  util::Status Rollback();
  bool InTransaction() const { return in_txn_; }

  // --- page access ---------------------------------------------------
  util::Result<PageRef> Get(PageId id);
  // Requires an open transaction.
  util::Result<PageRef> GetMutable(PageId id);

  // Allocates a zeroed page (freelist first, else grows the file).
  // Requires an open transaction.
  util::Result<PageId> Allocate();
  // Returns a page to the freelist. Requires an open transaction.
  util::Status Free(PageId id);

  // --- header fields -------------------------------------------------
  uint32_t page_count() const { return page_count_; }
  uint32_t freelist_length() const { return freelist_count_; }
  PageId catalog_root() const { return catalog_root_; }
  util::Status SetCatalogRoot(PageId root);

  // Point-in-time statistics: the pager's own counters plus (when a
  // pool is attached) the shared buffer pool's, folded into the pool_*
  // fields — one coherent set for benches and facade reporting.
  PagerStats stats() const BP_EXCLUDES(commit_mu_);

  // The shared versioned buffer pool (null when pool_bytes was 0 and no
  // pool was injected). Snapshots resolve through it; several pagers
  // may share one instance via PagerOptions::buffer_pool.
  const std::shared_ptr<BufferPool>& buffer_pool() const { return pool_; }

  // Monotone counter bumped by every page mutation (GetMutable) and by
  // Rollback. Open cursors snapshot it to detect interleaved writes: an
  // unchanged counter guarantees their (page, slot) position is still
  // exact; a changed one makes them re-seek by key.
  uint64_t change_count() const { return change_count_; }

  // Total bytes the database file occupies (page_count * kPageSize).
  uint64_t FileBytes() const {
    return static_cast<uint64_t>(page_count_) * kPageSize;
  }

  // Test hook: when set, Commit() stops right after the journal fsync and
  // returns Aborted — simulating a crash between journal and database
  // writes. The next Open() must recover.
  void set_crash_after_journal_for_testing(bool v) {
    crash_after_journal_ = v;
  }

  // kWal only: makes every commit so far durable (flushes a partially
  // filled group-commit window) without waiting for the window to fill.
  // No-op in journal mode or when nothing is pending.
  util::Status SyncWal();

  // Adaptive group-commit hook: closes a partially filled window ONLY
  // when committed transactions are actually awaiting fsync, and says
  // so. The async ingest committer calls this whenever its queue runs
  // dry, which collapses tail latency at low event rates while the
  // wal_group_commit ceiling still amortizes fsyncs under load. Returns
  // whether a flush ran (false: journal mode or nothing pending).
  util::Result<bool> FlushPending();

  // Committed transactions whose log records await the next fsync
  // (always 0 in journal mode, where every commit is durable on
  // return). Writer thread only.
  uint32_t unsynced_commits() const { return wal_unsynced_commits_; }

  // kWal only: forces a checkpoint now (normally driven by
  // wal_checkpoint_bytes and clean close). FailedPrecondition when a
  // transaction is open or live snapshots still pin WAL frames.
  util::Status Checkpoint() BP_EXCLUDES(commit_mu_);

  DurabilityMode durability() const { return options_.durability; }

  // --- snapshots (read transactions) ---------------------------------
  //
  // Freezes the committed state as of now — commit sequence number,
  // page count, catalog root, and the offsets of every committed page
  // still living in the write-ahead log — into an immutable view that
  // any number of reader threads can read while this (single-writer)
  // pager keeps committing. kWal only: the log is the device that makes
  // committed history immutable; journal mode rewrites the database
  // file in place at every commit and returns FailedPrecondition.
  // Thread-safe (may be called off the writer thread). While snapshots
  // are live, checkpoints are deferred and the log grows; release
  // snapshots promptly under sustained ingest.
  util::Result<std::unique_ptr<Snapshot>> BeginRead() BP_EXCLUDES(commit_mu_);

  // Snapshots currently alive (they pin WAL frames and defer
  // checkpoints). Thread-safe.
  uint32_t live_snapshots() const BP_EXCLUDES(commit_mu_);

 private:
  friend class PageRef;
  friend class Snapshot;

  // Out of line: members include unique_ptr<wal::WalWriter>, which is an
  // incomplete type here.
  Pager(std::string path, PagerOptions options);

  // Publish the current committed state into published_ under
  // commit_mu_ so BeginRead (any thread) sees either the pre- or
  // post-commit state, never a torn mix. Writer thread only.
  // PublishCommittedState rebuilds the published WAL index from
  // scratch (Open, checkpoint); PublishCommitDelta applies just one
  // commit's page offsets, copying the map only when a live snapshot
  // still shares it — so commits without snapshot pressure publish in
  // O(dirty pages), not O(index).
  void PublishCommittedState() BP_EXCLUDES(commit_mu_);
  void PublishCommitDelta(
      const std::vector<std::pair<PageId, uint64_t>>& offsets)
      BP_EXCLUDES(commit_mu_);
  // Copies the committed header fields (and, when non-null, the given
  // index) into published_ — commit_mu_ must already be held, and now
  // the compiler checks that.
  void PublishLocked(
      std::shared_ptr<std::unordered_map<PageId, uint64_t>> index)
      BP_REQUIRES(commit_mu_);
  void ReleaseSnapshot(const SnapshotStats& final_stats)
      BP_EXCLUDES(commit_mu_);

  util::Status InitializeNewDb();
  util::Status LoadHeader();
  std::string SerializedHeader() const;
  util::Status WriteHeaderToFrame();
  util::Status RecoverFromJournal();
  util::Status RecoverFromWal();
  util::Status CommitViaJournal(const std::vector<internal::Frame*>& dirty);
  util::Status CommitViaWal(const std::vector<internal::Frame*>& dirty);
  util::Status MaybeCheckpoint();
  std::string JournalPath() const { return path_ + ".journal"; }
  std::string WalPath() const { return path_ + ".wal"; }

  util::Result<internal::Frame*> FetchFrame(PageId id);
  void JournalBeforeImage(internal::Frame& frame);
  void Unpin(internal::Frame* frame);
  void MaybeEvict();

  // --- intrusive LRU over frames_ (writer cache) ---------------------
  void LruTouch(internal::Frame* frame);
  void LruRemove(internal::Frame* frame);

  // --- buffer pool (WAL mode; writer thread only) --------------------
  // The image key of `id`'s latest COMMITTED image, resolvable by any
  // reader: WAL offset when the image lives in the log, main-file key
  // when checkpointed. false when the page has no committed image yet
  // (allocated this transaction) or the pool is off.
  bool CommittedImageKey(PageId id, PageImageKey* key) const;
  // Publishes a clean committed image (copy or move) into the pool.
  void PublishToPool(const PageImageKey& key, std::string&& image);

  // Registry collector body: exports stats() as bp_pager_* / bp_pool_* /
  // bp_snapshot_* samples labeled with this pager's database path.
  void CollectMetrics(obs::CollectionSink& sink) const;

  std::string path_;
  PagerOptions options_;
  std::unique_ptr<File> file_;

  std::unordered_map<PageId, std::unique_ptr<internal::Frame>> frames_;
  internal::Frame lru_;  // sentinel: lru_.lru_next = MRU end
  uint64_t change_count_ = 0;

  // Shared versioned buffer pool (see storage/buffer_pool.hpp). Null
  // when disabled. Only consulted in WAL mode: journal mode rewrites
  // main-file pages in place at every commit, which would invalidate
  // main-file image keys mid-generation.
  std::shared_ptr<BufferPool> pool_;
  uint32_t pool_owner_ = 0;
  // Checkpoint generation: versions main-file images and disambiguates
  // reused WAL offsets across checkpoints. Bumped by every checkpoint
  // that folded pages. Writer thread; snapshots read the published copy.
  uint32_t generation_ = 0;

  // Cached header fields (persisted in page 0).
  uint32_t page_count_ = 0;
  PageId freelist_head_ = kNoPage;
  uint32_t freelist_count_ = 0;
  PageId catalog_root_ = kNoPage;
  uint64_t commit_seq_ = 0;

  // Transaction state.
  bool in_txn_ = false;
  // Before-images of pre-existing pages dirtied in this transaction.
  std::unordered_map<PageId, std::string> before_images_;
  // Pages allocated in this transaction (no before-image; rollback drops).
  std::unordered_map<PageId, bool> fresh_pages_;
  uint32_t txn_orig_page_count_ = 0;
  // Pages physically valid in the main database file. In journal mode
  // this tracks page_count_ at the last commit; in WAL mode it only
  // advances at checkpoints — committed pages beyond it live in the
  // log and are fetched through wal_index_.
  uint32_t main_file_pages_ = 0;

  // --- WAL state (kWal mode only) ------------------------------------
  std::unique_ptr<wal::WalWriter> wal_;
  // page id -> file offset of its latest committed image in the log.
  std::unordered_map<PageId, uint64_t> wal_index_;
  // Committed transactions whose log records are not yet fsynced.
  uint32_t wal_unsynced_commits_ = 0;
  // The (page, log offset) pairs of the most recent WAL commit; what
  // PublishCommitDelta applies to the published index.
  std::vector<std::pair<PageId, uint64_t>> last_commit_offsets_;

  // --- snapshot support ----------------------------------------------
  // The committed state as readers may observe it. Guarded by
  // commit_mu_. The wal_index map is mutated in place only while no
  // snapshot shares it (use_count == 1 under the lock); once a
  // snapshot holds a reference the next publish copies instead, so
  // every snapshot's view stays immutable.
  struct PublishedState {
    uint64_t commit_seq = 0;
    uint32_t page_count = 0;
    PageId catalog_root = kNoPage;
    uint32_t main_file_pages = 0;
    uint32_t generation = 0;  // checkpoint generation (pool image keys)
    std::shared_ptr<std::unordered_map<PageId, uint64_t>> wal_index;
  };
  mutable util::Mutex commit_mu_;
  PublishedState published_ BP_GUARDED_BY(commit_mu_);
  uint32_t live_snapshots_ BP_GUARDED_BY(commit_mu_) = 0;
  // Totals folded in by ReleaseSnapshot.
  SnapshotStats retired_snapshot_stats_ BP_GUARDED_BY(commit_mu_);

  bool crash_after_journal_ = false;
  // Writer-side counters, mutated only by the single writer thread but
  // copied by stats() from arbitrary threads (the metrics collector
  // dumps while a commit is mid-flight). Atomics make those copies
  // tear-free; the writer's ++/+= updates need no cross-field ordering, so
  // stats() reads relaxed. Fields mirror the first section of
  // PagerStats (pool_*/snapshot_* are filled in from their own sources
  // at read time).
  struct AtomicPagerStats {
    std::atomic<uint64_t> commits{0};
    std::atomic<uint64_t> rollbacks{0};
    std::atomic<uint64_t> pages_written{0};
    std::atomic<uint64_t> pages_read{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> fsyncs{0};
    std::atomic<uint64_t> bytes_synced{0};
    std::atomic<uint64_t> wal_frames{0};
    std::atomic<uint64_t> checkpoints{0};
    std::atomic<uint64_t> group_commits{0};
  };
  AtomicPagerStats stats_;

  // --- observability (src/obs) ---------------------------------------
  // Process-wide histograms shared by every pager (latency is a
  // process-level distribution; per-instance counters go through the
  // collector instead). Fetched once at Open; registry-owned.
  obs::Histogram* commit_latency_us_ = nullptr;
  obs::Histogram* fsync_latency_us_ = nullptr;
  obs::Histogram* group_commit_txns_ = nullptr;
  obs::Histogram* checkpoint_latency_us_ = nullptr;
  uint64_t metrics_token_ = 0;  // collector handle; removed in ~Pager
};

// Begins a transaction when none is open; a no-op when the caller already
// holds one (the operation then composes into the outer transaction).
// The destructor ROLLS BACK an owned, uncommitted transaction, so any
// early error return undoes partial mutations; success paths must end
// with `return txn.Commit();`.
//
// Note: when an operation fails inside an outer transaction, the partial
// mutations stay in that transaction — the outer caller must Rollback.
class AutoTxn {
 public:
  explicit AutoTxn(Pager& pager) : pager_(pager) {
    if (!pager_.InTransaction()) {
      begin_status_ = pager_.Begin();
      owns_ = begin_status_.ok();
    }
  }
  ~AutoTxn() {
    if (owns_ && !committed_) {
      // Rollback of in-memory state cannot fail in ways the destructor
      // could meaningfully handle.
      (void)pager_.Rollback();
    }
  }
  AutoTxn(const AutoTxn&) = delete;
  AutoTxn& operator=(const AutoTxn&) = delete;

  // Commits when owned; reports a failed Begin; no-op when nested.
  util::Status Commit() {
    if (!begin_status_.ok()) return begin_status_;
    if (!owns_) return util::Status::Ok();
    committed_ = true;
    return pager_.Commit();
  }

  // True when this AutoTxn opened the transaction (so its destruction
  // without Commit really rolls back; a nested AutoTxn never does).
  bool owns() const { return owns_; }

 private:
  Pager& pager_;
  util::Status begin_status_;
  bool owns_ = false;
  bool committed_ = false;
};

}  // namespace bp::storage
