// Disk-resident B+tree over the pager.
//
// Keys and values are arbitrary byte strings ordered lexicographically
// (callers use util::OrderedKeyU64 and friends for numeric components).
// Values larger than the inline cell budget spill to an overflow-page
// chain, so values are unbounded; keys are capped at kMaxKeySize.
//
// Structure: slotted pages. Leaves carry (key, value) cells and are
// doubly linked for range scans; interior nodes carry (separator, child)
// cells plus a rightmost child, where child subtrees hold keys <= their
// separator. The root page id is stable for the life of the tree: when
// the root splits its content moves to fresh children and the root is
// rewritten in place, so the catalog never needs updating after create.
//
// Deletion frees emptied pages and collapses empty interior nodes but
// does not rebalance underfull siblings — the workloads here (history
// stores) are append-mostly, so partial space reuse via the freelist is
// the right cost/complexity point. Mutating the tree invalidates open
// cursors.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "storage/pager.hpp"
#include "util/status.hpp"

namespace bp::storage {

constexpr size_t kMaxKeySize = 512;

struct TreeStats {
  uint64_t leaf_pages = 0;
  uint64_t interior_pages = 0;
  uint64_t overflow_pages = 0;
  uint64_t cells = 0;       // live leaf cells (== record count)
  uint64_t key_bytes = 0;   // sum of live key lengths
  uint64_t value_bytes = 0; // sum of live value lengths (incl. overflow)
  uint32_t depth = 0;       // 1 = root-only

  uint64_t TotalPages() const {
    return leaf_pages + interior_pages + overflow_pages;
  }
  uint64_t TotalBytes() const { return TotalPages() * kPageSize; }
};

class BTree {
 public:
  // Allocates an empty tree (a single leaf root). Must run inside an open
  // transaction; the returned root id is what the catalog persists.
  static util::Result<PageId> Create(Pager& pager);

  BTree(Pager& pager, PageId root) : pager_(pager), root_(root) {}

  // Inserts or replaces. Key must be non-empty and <= kMaxKeySize.
  util::Status Put(std::string_view key, std::string_view value);

  // NotFound when absent.
  util::Result<std::string> Get(std::string_view key) const;

  util::Result<bool> Contains(std::string_view key) const;

  // NotFound when absent.
  util::Status Delete(std::string_view key);

  // Frees every page of the tree including the root (used by DropTree).
  // The tree must not be used afterwards.
  util::Status FreeAllPages();

  // Full scan in key order. `fn` returns false to stop early.
  util::Status ForEach(
      const std::function<bool(std::string_view key,
                               std::string_view value)>& fn) const;

  // Scan all entries whose key starts with `prefix`, in key order.
  util::Status ForEachPrefix(
      std::string_view prefix,
      const std::function<bool(std::string_view key,
                               std::string_view value)>& fn) const;

  // Scan keys in [lo, hi). Empty `hi` means "to the end".
  util::Status ForEachRange(
      std::string_view lo, std::string_view hi,
      const std::function<bool(std::string_view key,
                               std::string_view value)>& fn) const;

  util::Result<uint64_t> Count() const;
  util::Result<TreeStats> Stats() const;

  PageId root() const { return root_; }

 private:
  struct SplitResult {
    bool split = false;
    std::string separator;  // max key remaining in the original page
    PageId new_right = kNoPage;
  };
  struct DescentRef {
    PageId page = kNoPage;
    // Index of the followed child cell, or == ncells for the rightmost
    // (aux) child.
    uint32_t ref_index = 0;
  };

  util::Result<SplitResult> InsertRec(PageId page_id, std::string_view key,
                                      std::string_view value);
  util::Status SplitRootIfNeeded(const SplitResult& split);

  util::Result<PageId> WriteOverflowChain(std::string_view value);
  util::Result<std::string> ReadOverflowChain(PageId first,
                                              uint64_t total_len) const;
  util::Status FreeOverflowChain(PageId first);
  util::Status FreeLeafCellPayload(std::string_view cell);

  util::Result<PageId> LeafForKey(std::string_view key,
                                  std::vector<DescentRef>* path) const;

  Pager& pager_;
  PageId root_;
};

}  // namespace bp::storage
