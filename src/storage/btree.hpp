// Disk-resident B+tree over the pager.
//
// Keys and values are arbitrary byte strings ordered lexicographically
// (callers use util::OrderedKeyU64 and friends for numeric components).
// Values larger than the inline cell budget spill to an overflow-page
// chain, so values are unbounded; keys are capped at kMaxKeySize.
//
// Structure: slotted pages. Leaves carry (key, value) cells and are
// doubly linked for range scans; interior nodes carry (separator, child)
// cells plus a rightmost child, where child subtrees hold keys <= their
// separator. The root page id is stable for the life of the tree: when
// the root splits its content moves to fresh children and the root is
// rewritten in place, so the catalog never needs updating after create.
//
// Deletion frees emptied pages and collapses empty interior nodes but
// does not rebalance underfull siblings — the workloads here (history
// stores) are append-mostly, so partial space reuse via the freelist is
// the right cost/complexity point.
//
// Reads go through Cursor (Seek/SeekPrefix/Next): a cursor remembers its
// (leaf page, slot) position plus a stamp of the pager's change
// counter, so steady-state iteration is a slot increment, and any
// interleaved write downgrades the next advance to a by-key re-seek —
// cursors survive mutation of the tree (including deletion of the entry
// under them) instead of being invalidated. The ForEach* callbacks are
// retained as thin wrappers over a cursor.
//
// Snapshot reads: BoundAt(snapshot) returns a read-only handle to the
// SAME tree (root ids are stable for a tree's lifetime) whose every
// page fetch resolves through the storage::Snapshot instead of the live
// pager. Bound handles are safe to read from any thread while the
// single writer keeps committing, mutations on them are contract
// violations, and their cursors never re-seek — a frozen view cannot
// change under them, so the change-counter downgrade is a live-cursor
// legacy the snapshot path skips entirely.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/pager.hpp"
#include "storage/snapshot.hpp"
#include "util/status.hpp"

namespace bp::storage {

constexpr size_t kMaxKeySize = 512;

struct TreeStats {
  uint64_t leaf_pages = 0;
  uint64_t interior_pages = 0;
  uint64_t overflow_pages = 0;
  uint64_t cells = 0;       // live leaf cells (== record count)
  uint64_t key_bytes = 0;   // sum of live key lengths
  uint64_t value_bytes = 0; // sum of live value lengths (incl. overflow)
  // Physical bytes the tree's pages occupy in the main file: a page
  // whose checkpoint slot holds a compressed frame counts its frame
  // size (header + payload), everything else a full page. Equal to
  // TotalBytes() with compression off.
  uint64_t disk_bytes = 0;
  uint32_t depth = 0;       // 1 = root-only

  uint64_t TotalPages() const {
    return leaf_pages + interior_pages + overflow_pages;
  }
  uint64_t TotalBytes() const { return TotalPages() * kPageSize; }
};

class BTree {
 public:
  // Allocates an empty tree (a single leaf root). Must run inside an open
  // transaction; the returned root id is what the catalog persists.
  static util::Result<PageId> Create(Pager& pager);

  BTree(Pager& pager, PageId root) : pager_(pager), root_(root) {}

  // A read-only handle on this tree whose page fetches resolve through
  // `snap` (see the header comment). The snapshot must outlive the
  // returned tree and every cursor obtained from it.
  BTree BoundAt(const Snapshot& snap) const {
    return BTree(pager_, root_, &snap);
  }
  bool snapshot_bound() const { return snap_ != nullptr; }

  // Forward iterator over the tree's entries in key order.
  //
  //   BTree::Cursor cur = tree.NewCursor();
  //   for (cur.Seek(lo); cur.Valid(); cur.Next()) {
  //     ... cur.key() / cur.value() ...
  //   }
  //   BP_RETURN_IF_ERROR(cur.status());
  //
  // A storage error invalidates the cursor and is held in status(), so
  // loops stay branch-free; callers check status() once after the loop.
  // Writes interleaved with iteration (to any tree of the same pager,
  // including deleting the entry the cursor is on) are safe: the cursor
  // detects them via the pager change counter and re-seeks to the first
  // key greater than the last one returned.
  class Cursor {
   public:
    Cursor() = default;  // unpositioned; !Valid() until a Seek

    // Positions at the first entry with key >= `target` (empty target =
    // first entry). Clears any previous error and bounds.
    void Seek(std::string_view target);
    void SeekFirst() { Seek({}); }
    // Seek(prefix), then constrain iteration to keys starting with
    // `prefix`: the cursor reports !Valid() at the first key past it.
    void SeekPrefix(std::string_view prefix);
    // Seek(lo), then constrain iteration to keys < `hi` (empty hi = to
    // the end). Bounds are checked before the value is materialized, so
    // an out-of-range entry never costs an overflow-chain read.
    void SeekRange(std::string_view lo, std::string_view hi);

    void Next();
    bool Valid() const { return valid_; }

    // Current entry; Valid() must be true. The views point at cursor-owned
    // storage and survive tree mutation, but not the next Seek*/Next.
    std::string_view key() const { return key_; }
    std::string_view value() const { return value_; }

    // Ok while iterating or exhausted; the first storage error otherwise.
    const util::Status& status() const { return status_; }

    // Leaf cells decoded so far (feeds QueryStats::rows_scanned).
    uint64_t rows_scanned() const { return rows_scanned_; }

   private:
    friend class BTree;
    explicit Cursor(const BTree* tree) : tree_(tree) {}

    void SeekInternal(std::string_view target, bool exclusive);
    // Loads the cell at (leaf_, pos_), walking forward across leaves if
    // pos_ is off the end; invalidates at the end of the tree or when the
    // key leaves the prefix bound.
    void LoadOrAdvance();
    void Fail(util::Status status);

    const BTree* tree_ = nullptr;
    PageId leaf_ = kNoPage;
    uint32_t pos_ = 0;
    uint64_t change_stamp_ = 0;
    std::string key_;
    std::string value_;
    std::string bound_prefix_;  // empty = unbounded
    std::string bound_hi_;      // empty = unbounded; exclusive
    bool valid_ = false;
    util::Status status_;
    uint64_t rows_scanned_ = 0;
  };

  Cursor NewCursor() const { return Cursor(this); }

  // Inserts or replaces. Key must be non-empty and <= kMaxKeySize.
  util::Status Put(std::string_view key, std::string_view value);

  // NotFound when absent.
  util::Result<std::string> Get(std::string_view key) const;

  util::Result<bool> Contains(std::string_view key) const;

  // NotFound when absent.
  util::Status Delete(std::string_view key);

  // Frees every page of the tree including the root (used by DropTree).
  // The tree must not be used afterwards.
  util::Status FreeAllPages();

  // Full scan in key order. `fn` returns false to stop early.
  // DEPRECATED: thin wrapper over Cursor; new code should use NewCursor.
  util::Status ForEach(
      const std::function<bool(std::string_view key,
                               std::string_view value)>& fn) const;

  // Scan all entries whose key starts with `prefix`, in key order.
  // DEPRECATED: thin wrapper over Cursor; new code should use NewCursor.
  util::Status ForEachPrefix(
      std::string_view prefix,
      const std::function<bool(std::string_view key,
                               std::string_view value)>& fn) const;

  // Scan keys in [lo, hi). Empty `hi` means "to the end".
  // DEPRECATED: thin wrapper over Cursor; new code should use NewCursor.
  util::Status ForEachRange(
      std::string_view lo, std::string_view hi,
      const std::function<bool(std::string_view key,
                               std::string_view value)>& fn) const;

  // Number of keys in [lo, hi) (empty `hi` = to the end). Counts whole
  // leaves by their cell count and binary-searches only the boundary
  // leaves, so it never decodes interior rows — this is what makes
  // GraphStore::Degree O(leaves) instead of O(edges decoded).
  util::Result<uint64_t> CountRange(std::string_view lo,
                                    std::string_view hi) const;

  util::Result<uint64_t> Count() const;
  util::Result<TreeStats> Stats() const;

  PageId root() const { return root_; }

 private:
  struct SplitResult {
    bool split = false;
    std::string separator;  // max key remaining in the original page
    PageId new_right = kNoPage;
  };
  struct DescentRef {
    PageId page = kNoPage;
    // Index of the followed child cell, or == ncells for the rightmost
    // (aux) child.
    uint32_t ref_index = 0;
  };

  BTree(Pager& pager, PageId root, const Snapshot* snap)
      : pager_(pager), root_(root), snap_(snap) {}

  // The one read-path page fetch: live pager when unbound, snapshot
  // otherwise.
  util::Result<PageView> FetchPage(PageId id) const;
  // Mutation stamp cursors watch; constant (0) on the snapshot path.
  uint64_t ReadStamp() const {
    return snap_ != nullptr ? 0 : pager_.change_count();
  }

  util::Result<SplitResult> InsertRec(PageId page_id, std::string_view key,
                                      std::string_view value);
  util::Status SplitRootIfNeeded(const SplitResult& split);

  util::Result<PageId> WriteOverflowChain(std::string_view value);
  util::Result<std::string> ReadOverflowChain(PageId first,
                                              uint64_t total_len) const;
  util::Status FreeOverflowChain(PageId first);
  util::Status FreeLeafCellPayload(std::string_view cell);

  util::Result<PageId> LeafForKey(std::string_view key,
                                  std::vector<DescentRef>* path) const;

  Pager& pager_;
  PageId root_;
  const Snapshot* snap_ = nullptr;  // non-null = read-only bound handle
};

// Owns the snapshot-bound BTree clones behind a reader layer's
// AtSnapshot handle (GraphStore, ProvStore, InvertedIndex, ...): the
// layer keeps its raw BTree* members pointing into this storage and
// asks bound() instead of tracking a separate flag. Empty (bound() ==
// false) on live stores.
class BoundTrees {
 public:
  BTree* Bind(const Snapshot& snap, const BTree* tree) {
    owned_.push_back(std::make_unique<BTree>(tree->BoundAt(snap)));
    return owned_.back().get();
  }
  bool bound() const { return !owned_.empty(); }

 private:
  std::vector<std::unique_ptr<BTree>> owned_;
};

}  // namespace bp::storage
