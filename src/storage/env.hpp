// Filesystem abstraction for the storage engine.
//
// PosixEnv talks to the real filesystem; MemEnv keeps files in memory and
// is used by unit tests, property tests (including simulated crashes via
// snapshots) and benchmarks that measure CPU rather than disk.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace bp::storage {

using bp::util::Result;
using bp::util::Status;

// Random-access file handle. Not thread-safe; the engine is single-writer.
class File {
 public:
  virtual ~File() = default;

  // Read exactly `n` bytes at `offset` into *out. Reading at or past EOF
  // returns OutOfRange; a short read mid-file returns IoError.
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;

  virtual Status Write(uint64_t offset, std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Truncate(uint64_t size) = 0;
  virtual Result<uint64_t> Size() const = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  // Opens for read/write, creating when absent.
  virtual Result<std::unique_ptr<File>> Open(const std::string& name) = 0;
  virtual Status Remove(const std::string& name) = 0;
  virtual bool Exists(const std::string& name) const = 0;

  // Process-wide POSIX environment (not owned by the caller).
  static Env* Posix();
};

// In-memory environment. Multiple Open() calls on the same name share
// content (as with a real filesystem), so a "reopened database" sees the
// bytes the previous handle wrote.
class MemEnv : public Env {
 public:
  Result<std::unique_ptr<File>> Open(const std::string& name) override;
  Status Remove(const std::string& name) override;
  bool Exists(const std::string& name) const override;

  // Crash simulation support: capture the byte-exact state of every file,
  // and restore it later — as if the machine lost power at the moment of
  // the snapshot and rebooted.
  std::map<std::string, std::string> SnapshotAll() const;
  void RestoreAll(const std::map<std::string, std::string>& snapshot);

 private:
  // shared_ptr: open handles keep content alive across Remove (POSIX
  // unlink semantics).
  std::map<std::string, std::shared_ptr<std::string>> files_;
};

}  // namespace bp::storage
