// Filesystem abstraction for the storage engine.
//
// PosixEnv talks to the real filesystem; MemEnv keeps files in memory and
// is used by unit tests, property tests (including simulated crashes via
// snapshots) and benchmarks that measure CPU rather than disk.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace bp::storage {

using bp::util::Result;
using bp::util::Status;

// Random-access file handle. Concurrent Read calls, and Reads
// concurrent with Writes to non-overlapping ranges, are safe (PosixFile
// uses pread/pwrite; MemFile takes a per-file reader/writer lock) —
// this is what lets snapshot readers share the database and log files
// with the single writer. Everything else (Truncate, overlapping
// writes) remains single-threaded writer territory.
class File {
 public:
  virtual ~File() = default;

  // Read exactly `n` bytes at `offset` into *out. Reading at or past EOF
  // returns OutOfRange; a short read mid-file returns IoError.
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;

  virtual Status Write(uint64_t offset, std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Truncate(uint64_t size) = 0;
  virtual Result<uint64_t> Size() const = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  // Opens for read/write, creating when absent.
  virtual Result<std::unique_ptr<File>> Open(const std::string& name) = 0;
  virtual Status Remove(const std::string& name) = 0;
  virtual bool Exists(const std::string& name) const = 0;

  // Process-wide POSIX environment (not owned by the caller).
  static Env* Posix();
};

// One mutating filesystem operation, as recorded by MemEnv's op log.
// Crash-injection tests replay a prefix of the log (optionally cutting
// the final write mid-way) to reconstruct the disk state a power loss at
// that exact byte boundary would have left behind.
struct MemEnvOp {
  enum class Kind { kWrite, kTruncate, kRemove };
  Kind kind = Kind::kWrite;
  std::string file;
  uint64_t offset = 0;  // kWrite
  std::string data;     // kWrite
  uint64_t size = 0;    // kTruncate
};

// In-memory environment. Multiple Open() calls on the same name share
// content (as with a real filesystem), so a "reopened database" sees the
// bytes the previous handle wrote.
class MemEnv : public Env {
 public:
  MemEnv();

  Result<std::unique_ptr<File>> Open(const std::string& name) override;
  Status Remove(const std::string& name) override;
  bool Exists(const std::string& name) const override;

  // Crash simulation support: capture the byte-exact state of every file,
  // and restore it later — as if the machine lost power at the moment of
  // the snapshot and rebooted.
  std::map<std::string, std::string> SnapshotAll() const;
  void RestoreAll(const std::map<std::string, std::string>& snapshot);

  // --- op log (crash-injection support) ------------------------------
  // While enabled, every mutating operation on any file of this env is
  // recorded. Combined with SnapshotAll/RestoreAll this lets a test
  // crash "at every prefix of the write sequence": restore the starting
  // snapshot, replay the first N ops (ApplyOps), reopen, and check
  // recovery.
  void StartOpLog();
  // Stops recording and returns the log.
  std::vector<MemEnvOp> StopOpLog();
  // Ops recorded so far (valid while logging): lets a test mark logical
  // boundaries — "state X holds once the first N ops are on disk".
  size_t OpLogSize() const;
  // Replays ops[0, count) onto this env; when partial_bytes_of_last is
  // >= 0 also applies that many leading bytes of ops[count] (a torn
  // final write).
  Status ApplyOps(const std::vector<MemEnvOp>& ops, size_t count,
                  int64_t partial_bytes_of_last = -1);

  // --- fsync accounting / modeling -----------------------------------
  // Simulated device sync latency: File::Sync busy-waits this long, so
  // wall-clock bench numbers on MemEnv reflect fsync COUNT the way a
  // real disk would. Default 0 (sync is free, as before).
  void set_sync_cost_us(uint32_t us);
  // Simulated device READ latency, charged to the reading thread on
  // every File::Read — what a cache-cold random page read costs on real
  // storage (an NVMe-class 4 KiB read is ~20 us; OS-page-cache-warm
  // MemEnv reads are otherwise free, which hides the entire cost the
  // buffer pool exists to remove). Default 0. Safe to flip mid-run.
  void set_read_cost_us(uint32_t us);
  // When true, the simulated sync latency is paid with a real sleep
  // instead of a busy-wait. A busy-wait charges the CORE, which is the
  // deterministic model for single-committer benches; a sleep yields it,
  // which is what an actual fsync does (the thread blocks in the kernel
  // and other threads run). Concurrency benches that measure overlap of
  // independent committers need the sleep model — on a one-core machine
  // busy-wait "fsyncs" can never overlap at all. Default false.
  void set_sync_sleeps(bool sleeps);
  uint64_t sync_count() const;

  // Env-wide state reachable from every open MemFile, and one file's
  // lock + bytes (implementation details; public only so env.cpp's
  // file class can name them).
  struct Shared;
  struct FileContent;

 private:
  // Guards the name table itself (file CONTENT has per-file locks in
  // FileContent). Open/Exists/Remove must be callable concurrently —
  // the service layer opens profile databases from several worker
  // threads at once, exactly as they would race on a real filesystem.
  mutable util::Mutex files_mu_;
  // shared_ptr: open handles keep content alive across Remove (POSIX
  // unlink semantics).
  std::map<std::string, std::shared_ptr<FileContent>> files_
      BP_GUARDED_BY(files_mu_);
  std::shared_ptr<Shared> shared_;
};

}  // namespace bp::storage
