// Page-level constants shared by the pager and the B+tree.
#pragma once

#include <cstdint>

namespace bp::storage {

using PageId = uint32_t;

// Page 0 is the database header; 0 therefore doubles as the "no page"
// sentinel in tree child pointers and freelist links.
constexpr PageId kNoPage = 0;

constexpr uint32_t kPageSize = 4096;

constexpr uint32_t kDbMagic = 0x42504442;       // "BPDB"
constexpr uint32_t kJournalMagic = 0x42504a4c;  // "BPJL"
constexpr uint32_t kDbVersion = 1;

}  // namespace bp::storage
