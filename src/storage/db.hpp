// Db: a named collection of B+trees in one file, with a catalog and
// per-tree space accounting. This is the embedded-database layer the
// paper gets from SQLite: the provenance and Places schemas are sets of
// named trees ("tables" and "indexes"), and the storage-overhead
// experiment (E1) compares their Space() reports.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/btree.hpp"
#include "storage/pager.hpp"
#include "util/status.hpp"

namespace bp::storage {

struct DbOptions {
  Env* env = Env::Posix();
  size_t cache_pages = 4096;
  bool sync = true;
  // See PagerOptions: kWal + wal_group_commit > 1 amortizes fsyncs
  // across bursts of small transactions (batched provenance ingest).
  DurabilityMode durability = DurabilityMode::kRollbackJournal;
  uint32_t wal_group_commit = 1;
  uint64_t wal_checkpoint_bytes = 4 << 20;
  // Partitioned write domains (WAL mode; see PagerOptions): each domain
  // owns its own log stream and group-commit clock, so committers on
  // different domains overlap their fsyncs. 1 = the single-stream
  // layout; clamped to [1, kMaxWriteDomains].
  uint32_t write_domains = 1;
  // Versioned buffer pool shared by the whole read path (WAL mode; see
  // PagerOptions). pool_bytes = 0 disables it; buffer_pool (when set)
  // joins an existing pool so several databases share one byte budget.
  size_t pool_bytes = 32 << 20;
  std::shared_ptr<BufferPool> buffer_pool;
  bool pool_publish_on_commit = true;
  // Storage diet (see PagerOptions::compression): mode=kFast compresses
  // eligible pages at checkpoint and demotes pool evictions into a
  // compressed cold tier. Defaults from BP_COMPRESSION; unset = off.
  compress::CompressionOptions compression;
};

struct SpaceEntry {
  std::string name;
  TreeStats stats;
};

struct SpaceReport {
  uint64_t file_bytes = 0;
  uint32_t total_pages = 0;
  uint32_t free_pages = 0;
  uint64_t catalog_pages = 0;
  std::vector<SpaceEntry> trees;

  // Sum of page bytes for all trees whose name starts with `prefix`
  // (schemas namespace their trees, e.g. "places.visits").
  uint64_t BytesForPrefix(std::string_view prefix) const;
};

class Db {
 public:
  // Opens or creates the database at `path`, recovering from a crashed
  // commit if a hot journal is present.
  static util::Result<std::unique_ptr<Db>> Open(const std::string& path,
                                                DbOptions options = {});

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  // Tree handles are owned by the Db and valid until DropTree or close.
  util::Result<BTree*> CreateTree(const std::string& name);
  util::Result<BTree*> OpenTree(const std::string& name);
  util::Result<BTree*> OpenOrCreateTree(const std::string& name);

  // Frees all pages of the tree and removes it from the catalog.
  util::Status DropTree(const std::string& name);

  util::Result<std::vector<std::string>> ListTrees() const;

  // Multi-operation transactions. Individual tree operations outside an
  // explicit transaction are each atomic on their own.
  util::Status Begin() { return pager_->Begin(); }
  util::Status Commit() { return pager_->Commit(); }
  util::Status Rollback() { return pager_->Rollback(); }

  // Read transaction: an immutable view of the committed state, safe to
  // read from other threads while this Db keeps writing (WAL mode only;
  // see Pager::BeginRead). Bind tree handles to it with BTree::BoundAt.
  util::Result<std::unique_ptr<Snapshot>> BeginRead() {
    return pager_->BeginRead();
  }

  util::Result<SpaceReport> Space() const;

  Pager& pager() { return *pager_; }
  const Pager& pager() const { return *pager_; }

 private:
  explicit Db(std::unique_ptr<Pager> pager) : pager_(std::move(pager)) {}

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BTree> catalog_;
  std::map<std::string, std::unique_ptr<BTree>> open_trees_;
};

}  // namespace bp::storage
