// BufferPool: a process-wide, sharded cache of immutable page images,
// shared by every snapshot (and the live pager's read path) instead of
// the per-snapshot copy-on-read caches it replaces.
//
// Identity, not recency, is the key. A frame is addressed by
// (owner, page id, generation, offset):
//
//   owner       — a process-unique id per Pager, so pagers sharing one
//                 pool (PagerOptions::buffer_pool) never alias pages;
//   generation  — the pager's checkpoint generation. A checkpoint is
//                 the only operation that rewrites the main database
//                 file in WAL mode AND the one that truncates the log
//                 (reusing its offsets), so bumping one counter at each
//                 checkpoint versions both sources at once;
//   offset      — for WAL-resident images, the log offset of the frame
//                 (the log is append-only within a generation, so the
//                 offset names exactly one byte image); kMainFileImage
//                 for images served from the main database file.
//
// Because the key names an immutable byte image, snapshots taken at
// different commit sequence numbers that observe the SAME image of a
// page resolve to the SAME frame — one copy in memory no matter how
// many snapshots or repeated one-shot queries touch it — and a cached
// frame can never go stale: a newer commit produces a new offset, a
// checkpoint a new generation, and the old key simply stops being
// asked for and ages out of the LRU.
//
// Sharding: keys hash onto kShards independent stripes, each with its
// own mutex, hash map, and intrusive LRU list, so concurrent readers
// on different pages do not serialize (the per-snapshot caches each
// funneled all of a snapshot's readers through one mutex).
//
// Eviction: a global byte budget, divided evenly across shards, is
// enforced at insert. Victims are taken from the cold end of the
// shard's LRU list; a frame whose image is still referenced outside
// the pool (use_count > 1 under the shard lock — a live PageView or a
// caller-held page) is PINNED: it is skipped (re-warmed to the MRU end
// so the scan terminates) and never evicted. Even if the budget is too
// small for the pinned set, correctness never depends on it: frames
// are shared-ownership (shared_ptr<const std::string>), so an evicted
// image stays alive and immutable for as long as any reader holds it —
// eviction only forgets, it never frees in-use bytes.
//
// Cold tier (compression=fast): instead of forgetting outright, an
// evicted frame that compresses well demotes into an in-memory COLD
// TIER of compressed frames, living inside the same byte budget
// (compressed frames count their compressed size). A pool miss checks
// the cold tier and decompresses on pin — turning what would have been
// a device read (tens of µs on the modeled flash device) into a ~1µs
// decode — then promotes the frame back to the hot tier. Cold frames
// have no readers holding them, so cold eviction (when even compressed
// bytes exceed the budget) is unconditional, oldest first; the cold
// share is additionally capped at half each shard's budget so a well-
// compressing workload cannot starve the hot tier.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "storage/compress.hpp"
#include "storage/page.hpp"

namespace bp::obs {
class Histogram;
}  // namespace bp::obs

namespace bp::storage {

// Offset sentinel for images served from the main database file (whose
// version is carried entirely by the generation).
constexpr uint64_t kMainFileImage = UINT64_MAX;

// Identity of one immutable page image (see file header).
struct PageImageKey {
  uint32_t owner = 0;
  PageId id = kNoPage;
  uint32_t generation = 0;
  uint64_t offset = kMainFileImage;

  bool operator==(const PageImageKey& other) const {
    return owner == other.owner && id == other.id &&
           generation == other.generation && offset == other.offset;
  }
};

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;       // lookups that found nothing
  uint64_t inserts = 0;      // new frames admitted
  uint64_t reinserts = 0;    // insert races resolved to the existing frame
  uint64_t evictions = 0;
  uint64_t pinned_skips = 0; // eviction scans that spared a pinned frame
  uint64_t bytes = 0;        // resident image bytes right now
  uint64_t frames = 0;       // resident frames right now
  // Bytes of frames currently referenced outside the pool (a live
  // PageView or caller-held image) — the un-evictable floor. Computed
  // by stats() with an O(frames) walk, so it is a dump-time number,
  // not a hot-path counter.
  uint64_t pinned_bytes = 0;
  // Compressed cold tier (all zero with compression off). Cold bytes
  // are counted inside `bytes` (one budget); `frames` counts the hot
  // tier only.
  uint64_t cold_demotions = 0;  // evictions demoted instead of dropped
  uint64_t cold_hits = 0;       // misses rescued by a cold decompress
  uint64_t cold_evictions = 0;  // cold frames aged out entirely
  uint64_t cold_bytes = 0;      // resident compressed bytes right now
  uint64_t cold_frames = 0;     // resident cold frames right now
};

class BufferPool {
 public:
  // `byte_budget` caps resident image bytes pool-wide (soft while
  // pinned frames exceed it), hot + cold tier together. Shard count is
  // fixed at kShards. `compression` drives the cold tier: with
  // mode=kFast, evictions demote into compressed frames (see the file
  // header); the default reads BP_COMPRESSION, unset meaning off.
  explicit BufferPool(size_t byte_budget,
                      compress::CompressionOptions compression =
                          compress::CompressionOptions{});
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // The cached image for `key`, or null. A hit re-warms the frame to
  // the MRU end of its shard. Thread-safe.
  std::shared_ptr<const std::string> Lookup(const PageImageKey& key);

  // Admits `page` (exactly kPageSize bytes) under `key` and returns the
  // resident image: `page` itself, or — when another thread raced the
  // same key in first — the already-resident frame, so concurrent first
  // readers of one page converge on a single copy. May evict cold
  // frames to stay under budget. Thread-safe.
  std::shared_ptr<const std::string> Insert(
      const PageImageKey& key, std::shared_ptr<const std::string> page);

  // Drops every unpinned frame belonging to `owner` and returns how
  // many were dropped. A closing pager calls this: its owner id is
  // never reused, so its frames can never be looked up again — without
  // the drop they would squat on the shared budget until cold-end
  // pressure happened to age them out, which matters when many
  // databases share one pool (the multi-profile service opens and
  // closes handles continuously). Pinned frames (an image some reader
  // still holds) are left behind; they evict normally once released.
  // Thread-safe.
  uint64_t DropOwner(uint32_t owner);

  // Process-unique owner id for a pager joining this (or any) pool.
  static uint32_t NextOwnerId();

  size_t byte_budget() const { return byte_budget_; }
  BufferPoolStats stats() const;

  static constexpr size_t kShards = 16;  // power of two

  // Implementation detail, public only so the annotated LRU helpers in
  // buffer_pool.cpp (file-local free functions whose BP_REQUIRES name
  // shard.mu — impossible to spell on an in-class declaration, where
  // Shard is still incomplete) can take it by reference.
  struct Frame {
    PageImageKey key;
    std::shared_ptr<const std::string> data;
    Frame* prev = nullptr;  // intrusive LRU list; head = MRU
    Frame* next = nullptr;
  };
  // A demoted frame: the compressed bytes, owned outright — nothing
  // outside the pool ever references a cold frame.
  struct ColdFrame {
    PageImageKey key;
    std::string frame;  // self-describing compressed frame
    ColdFrame* prev = nullptr;  // cold-tier LRU; head = MRU
    ColdFrame* next = nullptr;
  };
  struct Shard;

 private:
  Shard& ShardFor(const PageImageKey& key);

  const size_t byte_budget_;
  const size_t shard_budget_;
  const compress::CompressionOptions compression_;
  // Process-wide codec latency distributions (null = obs off).
  obs::Histogram* compress_us_ = nullptr;
  obs::Histogram* decompress_us_ = nullptr;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace bp::storage
