#include "storage/pager.hpp"

#include <algorithm>

#include "util/hash.hpp"
#include "util/require.hpp"
#include "util/serde.hpp"
#include "util/strings.hpp"

namespace bp::storage {

using util::Reader;
using util::Result;
using util::Status;
using util::Writer;

// ---------------------------------------------------------------- PageRef

PageRef::PageRef(Pager* pager, internal::Frame* frame, bool writable)
    : pager_(pager), frame_(frame), writable_(writable) {
  ++frame_->pins;
}

PageRef::~PageRef() {
  if (frame_ != nullptr) pager_->Unpin(frame_);
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    if (frame_ != nullptr) pager_->Unpin(frame_);
    pager_ = other.pager_;
    frame_ = other.frame_;
    writable_ = other.writable_;
    other.pager_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

PageId PageRef::id() const {
  BP_REQUIRE(valid());
  return frame_->id;
}

const char* PageRef::data() const {
  BP_REQUIRE(valid());
  return frame_->data.data();
}

char* PageRef::mutable_data() {
  BP_REQUIRE(valid() && writable_, "page not acquired via GetMutable");
  return frame_->data.data();
}

// ----------------------------------------------------------------- Pager

Result<std::unique_ptr<Pager>> Pager::Open(std::string path,
                                           PagerOptions options) {
  std::unique_ptr<Pager> pager(new Pager(std::move(path), options));
  BP_ASSIGN_OR_RETURN(pager->file_, options.env->Open(pager->path_));

  // A hot journal from a crashed commit must be rolled back before the
  // header is trusted.
  BP_RETURN_IF_ERROR(pager->RecoverFromJournal());

  BP_ASSIGN_OR_RETURN(uint64_t size, pager->file_->Size());
  if (size == 0) {
    BP_RETURN_IF_ERROR(pager->InitializeNewDb());
  } else {
    if (size % kPageSize != 0) {
      return Status::Corruption("database size is not a multiple of the "
                                "page size: " +
                                pager->path_);
    }
    BP_RETURN_IF_ERROR(pager->LoadHeader());
  }
  pager->committed_file_pages_ = pager->page_count_;
  return pager;
}

Pager::~Pager() {
  if (in_txn_) (void)Rollback();
}

Status Pager::InitializeNewDb() {
  page_count_ = 1;  // header page
  freelist_head_ = kNoPage;
  freelist_count_ = 0;
  catalog_root_ = kNoPage;
  commit_seq_ = 0;

  Writer w;
  w.PutU32(kDbMagic);
  w.PutU32(kDbVersion);
  w.PutU32(kPageSize);
  w.PutU32(page_count_);
  w.PutU32(freelist_head_);
  w.PutU32(freelist_count_);
  w.PutU32(catalog_root_);
  w.PutU64(commit_seq_);
  std::string page(std::move(w).data());
  page.resize(kPageSize, '\0');
  BP_RETURN_IF_ERROR(file_->Write(0, page));
  if (options_.sync) BP_RETURN_IF_ERROR(file_->Sync());
  return Status::Ok();
}

Status Pager::LoadHeader() {
  std::string raw;
  BP_RETURN_IF_ERROR(file_->Read(0, kPageSize, &raw));
  Reader r(raw);
  uint32_t magic = r.ReadU32();
  uint32_t version = r.ReadU32();
  uint32_t page_size = r.ReadU32();
  page_count_ = r.ReadU32();
  freelist_head_ = r.ReadU32();
  freelist_count_ = r.ReadU32();
  catalog_root_ = r.ReadU32();
  commit_seq_ = r.ReadU64();
  if (!r.ok() || magic != kDbMagic) {
    return Status::Corruption("bad database header: " + path_);
  }
  if (version != kDbVersion) {
    return Status::InvalidArgument(
        util::StrFormat("unsupported db version %u", version));
  }
  if (page_size != kPageSize) {
    return Status::InvalidArgument(
        util::StrFormat("page size mismatch: file %u, build %u", page_size,
                        kPageSize));
  }
  if (page_count_ == 0) {
    return Status::Corruption("zero page count: " + path_);
  }
  return Status::Ok();
}

Status Pager::WriteHeaderToFrame() {
  BP_ASSIGN_OR_RETURN(PageRef ref, GetMutable(0));
  Writer w;
  w.PutU32(kDbMagic);
  w.PutU32(kDbVersion);
  w.PutU32(kPageSize);
  w.PutU32(page_count_);
  w.PutU32(freelist_head_);
  w.PutU32(freelist_count_);
  w.PutU32(catalog_root_);
  w.PutU64(commit_seq_);
  const std::string& bytes = w.data();
  BP_CHECK(bytes.size() <= kPageSize);
  std::copy(bytes.begin(), bytes.end(), ref.mutable_data());
  return Status::Ok();
}

// Journal layout:
//   header: magic u32, commit_seq u64, page_size u32, orig_page_count u32,
//           entry_count u32
//   entry:  page_id u32, page bytes [kPageSize], fnv1a64 checksum u64
Status Pager::RecoverFromJournal() {
  const std::string jpath = JournalPath();
  if (!options_.env->Exists(jpath)) return Status::Ok();

  BP_ASSIGN_OR_RETURN(std::unique_ptr<File> jf, options_.env->Open(jpath));
  BP_ASSIGN_OR_RETURN(uint64_t jsize, jf->Size());

  constexpr size_t kHeaderBytes = 4 + 8 + 4 + 4 + 4;
  constexpr size_t kEntryBytes = 4 + kPageSize + 8;

  bool valid = jsize >= kHeaderBytes;
  uint32_t orig_page_count = 0;
  uint32_t entry_count = 0;
  std::string raw;
  if (valid) {
    BP_RETURN_IF_ERROR(jf->Read(0, jsize, &raw));
    Reader r(raw);
    uint32_t magic = r.ReadU32();
    r.ReadU64();  // commit_seq (informational)
    uint32_t page_size = r.ReadU32();
    orig_page_count = r.ReadU32();
    entry_count = r.ReadU32();
    valid = r.ok() && magic == kJournalMagic && page_size == kPageSize &&
            jsize >= kHeaderBytes + uint64_t{entry_count} * kEntryBytes;
  }

  if (valid && entry_count > 0) {
    // The journal was fully written (entries checksum below), which means
    // the crash happened while writing the database file: roll back.
    Reader r(raw);
    r.Skip(kHeaderBytes);
    for (uint32_t i = 0; i < entry_count && valid; ++i) {
      uint32_t page_id = r.ReadU32();
      std::string_view data = r.ReadRaw(kPageSize);
      uint64_t checksum = r.ReadU64();
      if (!r.ok() || util::Fnv1a64(data) != checksum) {
        valid = false;
        break;
      }
      BP_RETURN_IF_ERROR(
          file_->Write(uint64_t{page_id} * kPageSize, data));
    }
    if (valid) {
      BP_RETURN_IF_ERROR(
          file_->Truncate(uint64_t{orig_page_count} * kPageSize));
      if (options_.sync) BP_RETURN_IF_ERROR(file_->Sync());
    }
  }
  // Whether replayed or found incomplete (crash before the journal fsync,
  // database untouched), the journal is now obsolete.
  jf.reset();
  return options_.env->Remove(jpath);
}

Status Pager::Begin() {
  BP_REQUIRE(!in_txn_, "nested transactions are not supported");
  in_txn_ = true;
  before_images_.clear();
  fresh_pages_.clear();
  txn_orig_page_count_ = page_count_;
  return Status::Ok();
}

Status Pager::Commit() {
  BP_REQUIRE(in_txn_, "Commit outside a transaction");

  // Collect dirty frames.
  std::vector<internal::Frame*> dirty;
  for (auto& [id, frame] : frames_) {
    if (frame->dirty) dirty.push_back(frame.get());
  }
  if (dirty.empty()) {
    in_txn_ = false;
    ++stats_.commits;
    return Status::Ok();
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const internal::Frame* a, const internal::Frame* b) {
              return a->id < b->id;
            });

  // Phase 1: persist before-images so a mid-write crash can be undone.
  if (!before_images_.empty()) {
    Writer w;
    w.PutU32(kJournalMagic);
    w.PutU64(commit_seq_ + 1);
    w.PutU32(kPageSize);
    w.PutU32(txn_orig_page_count_);
    w.PutU32(static_cast<uint32_t>(before_images_.size()));
    for (const auto& [id, image] : before_images_) {
      w.PutU32(id);
      w.PutRaw(image);
      w.PutU64(util::Fnv1a64(image));
    }
    BP_ASSIGN_OR_RETURN(std::unique_ptr<File> jf,
                        options_.env->Open(JournalPath()));
    BP_RETURN_IF_ERROR(jf->Truncate(0));
    BP_RETURN_IF_ERROR(jf->Write(0, w.data()));
    if (options_.sync) BP_RETURN_IF_ERROR(jf->Sync());
  }

  if (crash_after_journal_) {
    // Simulated power loss: leave the hot journal and the (possibly
    // partially updated) database file exactly as they are.
    return Status::Aborted("simulated crash after journal sync");
  }

  // Phase 2: write dirty pages into the database file.
  ++commit_seq_;
  for (internal::Frame* frame : dirty) {
    if (frame->id == 0) {
      // Refresh the header bytes with the final committed field values.
      Writer w;
      w.PutU32(kDbMagic);
      w.PutU32(kDbVersion);
      w.PutU32(kPageSize);
      w.PutU32(page_count_);
      w.PutU32(freelist_head_);
      w.PutU32(freelist_count_);
      w.PutU32(catalog_root_);
      w.PutU64(commit_seq_);
      const std::string& bytes = w.data();
      std::copy(bytes.begin(), bytes.end(), frame->data.data());
    }
    BP_RETURN_IF_ERROR(
        file_->Write(uint64_t{frame->id} * kPageSize, frame->data));
    ++stats_.pages_written;
  }
  if (options_.sync) BP_RETURN_IF_ERROR(file_->Sync());

  // Phase 3: the commit is durable; retire the journal.
  if (!before_images_.empty()) {
    BP_RETURN_IF_ERROR(options_.env->Remove(JournalPath()));
  }

  for (internal::Frame* frame : dirty) frame->dirty = false;
  committed_file_pages_ = page_count_;
  before_images_.clear();
  fresh_pages_.clear();
  in_txn_ = false;
  ++stats_.commits;
  MaybeEvict();
  return Status::Ok();
}

Status Pager::Rollback() {
  BP_REQUIRE(in_txn_, "Rollback outside a transaction");

  // Restore before-images in cache; drop frames for pages that did not
  // exist before the transaction.
  for (auto& [id, image] : before_images_) {
    auto it = frames_.find(id);
    if (it != frames_.end()) {
      it->second->data = image;
      it->second->dirty = false;
    }
  }
  for (auto& [id, unused] : fresh_pages_) {
    (void)unused;
    auto it = frames_.find(id);
    if (it != frames_.end()) {
      BP_CHECK(it->second->pins == 0, "rolling back a pinned fresh page");
      frames_.erase(it);
    }
  }

  // Restore header fields from the (now clean) cached header frame, or
  // from disk if it was never touched.
  page_count_ = txn_orig_page_count_;
  auto hit = frames_.find(0);
  if (hit != frames_.end()) {
    Reader r(hit->second->data);
    r.Skip(4 + 4 + 4);  // magic, version, page_size
    page_count_ = r.ReadU32();
    freelist_head_ = r.ReadU32();
    freelist_count_ = r.ReadU32();
    catalog_root_ = r.ReadU32();
    commit_seq_ = r.ReadU64();
  }

  before_images_.clear();
  fresh_pages_.clear();
  in_txn_ = false;
  ++stats_.rollbacks;
  return Status::Ok();
}

Result<internal::Frame*> Pager::FetchFrame(PageId id) {
  BP_REQUIRE(id < page_count_, util::StrFormat("page %u out of range (%u)",
                                               id, page_count_));
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++stats_.cache_hits;
    it->second->lru_tick = ++lru_clock_;
    return it->second.get();
  }
  ++stats_.cache_misses;
  auto frame = std::make_unique<internal::Frame>();
  frame->id = id;
  frame->lru_tick = ++lru_clock_;
  if (id < committed_file_pages_) {
    BP_RETURN_IF_ERROR(
        file_->Read(uint64_t{id} * kPageSize, kPageSize, &frame->data));
    ++stats_.pages_read;
  } else {
    // Allocated this transaction: nothing on disk yet.
    frame->data.assign(kPageSize, '\0');
  }
  internal::Frame* raw = frame.get();
  frames_.emplace(id, std::move(frame));
  return raw;
}

Result<PageRef> Pager::Get(PageId id) {
  BP_ASSIGN_OR_RETURN(internal::Frame * frame, FetchFrame(id));
  PageRef ref(this, frame, /*writable=*/false);
  MaybeEvict();  // `frame` is pinned by `ref`, so it cannot be a victim
  return ref;
}

Result<PageRef> Pager::GetMutable(PageId id) {
  BP_REQUIRE(in_txn_, "mutation outside a transaction");
  BP_ASSIGN_OR_RETURN(internal::Frame * frame, FetchFrame(id));
  JournalBeforeImage(*frame);
  frame->dirty = true;
  return PageRef(this, frame, /*writable=*/true);
}

void Pager::JournalBeforeImage(internal::Frame& frame) {
  if (fresh_pages_.count(frame.id) > 0 ||
      before_images_.count(frame.id) > 0) {
    return;
  }
  if (frame.id >= txn_orig_page_count_) {
    fresh_pages_[frame.id] = true;
    return;
  }
  before_images_[frame.id] = frame.data;
}

Result<PageId> Pager::Allocate() {
  BP_REQUIRE(in_txn_, "Allocate outside a transaction");
  PageId id;
  if (freelist_head_ != kNoPage) {
    id = freelist_head_;
    BP_ASSIGN_OR_RETURN(PageRef ref, GetMutable(id));
    util::Reader r(std::string_view(ref.data(), kPageSize));
    freelist_head_ = r.ReadU32();
    --freelist_count_;
    std::fill(ref.mutable_data(), ref.mutable_data() + kPageSize, '\0');
  } else {
    id = page_count_;
    ++page_count_;
    // Materialize the frame now so its fresh-page status is recorded.
    BP_ASSIGN_OR_RETURN(PageRef ref, GetMutable(id));
    (void)ref;
  }
  BP_RETURN_IF_ERROR(WriteHeaderToFrame());
  return id;
}

Status Pager::Free(PageId id) {
  BP_REQUIRE(in_txn_, "Free outside a transaction");
  BP_REQUIRE(id != 0 && id < page_count_, "freeing an invalid page");
  BP_ASSIGN_OR_RETURN(PageRef ref, GetMutable(id));
  std::fill(ref.mutable_data(), ref.mutable_data() + kPageSize, '\0');
  util::Writer w;
  w.PutU32(freelist_head_);
  std::copy(w.data().begin(), w.data().end(), ref.mutable_data());
  freelist_head_ = id;
  ++freelist_count_;
  return WriteHeaderToFrame();
}

Status Pager::SetCatalogRoot(PageId root) {
  BP_REQUIRE(in_txn_, "SetCatalogRoot outside a transaction");
  catalog_root_ = root;
  return WriteHeaderToFrame();
}

void Pager::Unpin(internal::Frame* frame) {
  BP_CHECK(frame->pins > 0);
  --frame->pins;
}

void Pager::MaybeEvict() {
  if (frames_.size() <= options_.cache_pages) return;
  // Evict clean, unpinned frames in LRU order until under the cap. Dirty
  // frames must survive until commit, so the cap is soft.
  std::vector<internal::Frame*> victims;
  for (auto& [id, frame] : frames_) {
    if (frame->pins == 0 && !frame->dirty && frame->id != 0) {
      victims.push_back(frame.get());
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const internal::Frame* a, const internal::Frame* b) {
              return a->lru_tick < b->lru_tick;
            });
  for (internal::Frame* victim : victims) {
    if (frames_.size() <= options_.cache_pages) break;
    frames_.erase(victim->id);
    ++stats_.evictions;
  }
}

}  // namespace bp::storage
