#include "storage/pager.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/snapshot.hpp"
#include "util/hash.hpp"
#include "util/require.hpp"
#include "util/serde.hpp"
#include "util/strings.hpp"
#include "wal/checkpointer.hpp"
#include "wal/wal_writer.hpp"

namespace bp::storage {

using util::Reader;
using util::Result;
using util::Status;
using util::Writer;

// The multi-domain paths below are unrolled per domain (not looped) so
// the thread-safety analysis can match each MutexLock against the
// BP_REQUIRES expression of the helper it guards.
static_assert(kMaxWriteDomains == 2,
              "unrolled domain lock sites assume exactly 2 domains");

// ---------------------------------------------------------------- PageRef

PageRef::PageRef(Pager* pager, internal::Frame* frame, bool writable)
    : pager_(pager), frame_(frame), writable_(writable) {
  ++frame_->pins;
}

PageRef::~PageRef() {
  if (frame_ != nullptr) pager_->Unpin(frame_);
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    if (frame_ != nullptr) pager_->Unpin(frame_);
    pager_ = other.pager_;
    frame_ = other.frame_;
    writable_ = other.writable_;
    other.pager_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

PageId PageRef::id() const {
  BP_REQUIRE(valid());
  return frame_->id;
}

const char* PageRef::data() const {
  BP_REQUIRE(valid());
  return frame_->data.data();
}

char* PageRef::mutable_data() {
  BP_REQUIRE(valid() && writable_, "page not acquired via GetMutable");
  return frame_->data.data();
}

// ----------------------------------------------------------------- Pager

Pager::Pager(std::string path, PagerOptions options)
    : path_(std::move(path)), options_(options) {
  lru_.lru_prev = &lru_;
  lru_.lru_next = &lru_;
}

Result<std::unique_ptr<Pager>> Pager::Open(std::string path,
                                           PagerOptions options) {
  std::unique_ptr<Pager> pager(new Pager(std::move(path), options));
  BP_ASSIGN_OR_RETURN(pager->file_, options.env->Open(pager->path_));

  // Recovery runs regardless of the requested durability mode, so a
  // database left behind by a crash in EITHER mode opens correctly: a
  // hot journal from a crashed journal-mode commit is rolled back, then
  // the mutually consistent committed prefix of any surviving write-
  // ahead log streams is replayed. (The two files never coexist in
  // practice — each mode retires its own log — but recovering both is
  // cheap and makes mode switches safe.)
  BP_RETURN_IF_ERROR(pager->RecoverFromJournal());
  BP_RETURN_IF_ERROR(pager->RecoverFromWal());

  BP_ASSIGN_OR_RETURN(uint64_t size, pager->file_->Size());
  if (size == 0) {
    BP_RETURN_IF_ERROR(pager->InitializeNewDb());
  } else {
    if (size % kPageSize != 0) {
      return Status::Corruption("database size is not a multiple of the "
                                "page size: " +
                                pager->path_);
    }
    BP_RETURN_IF_ERROR(pager->LoadHeader());
  }
  // The WAL fold may have replayed transactions that never dirtied the
  // header page, leaving the on-disk commit_seq behind the commits the
  // database file now contains. Advance it so the streams created below
  // carry the true base and freshly stamped commits never collide with
  // replayed ones. (Durability of this patch is optional: if it is
  // lost, the folded data is still ahead of the restarted counter and
  // base_seq anchors recovery — sequence numbers are labels, the page
  // images are the truth.)
  if (pager->recovered_commit_seq_ > pager->commit_seq_) {
    pager->commit_seq_ = pager->recovered_commit_seq_;
    BP_RETURN_IF_ERROR(pager->file_->Write(0, pager->SerializedHeader()));
  }
  pager->main_file_pages_ = pager->page_count_;

  if (pager->options_.durability == DurabilityMode::kWal) {
    pager->write_domains_ = std::clamp<uint32_t>(
        pager->options_.write_domains, 1, kMaxWriteDomains);
    for (uint32_t d = 0; d < pager->write_domains_; ++d) {
      BP_ASSIGN_OR_RETURN(
          pager->domains_[d].wal,
          wal::WalWriter::Open(options.env, pager->WalPath(d), d,
                               pager->commit_seq_));
      pager->domains_[d].last_commit_seq = pager->commit_seq_;
    }
    // The shared versioned buffer pool serves the whole read path in
    // WAL mode. Journal mode gets none: it rewrites main-file pages in
    // place at every commit, which would stale main-file image keys
    // mid-generation (and it has no snapshots to serve anyway).
    if (options.buffer_pool != nullptr) {
      pager->pool_ = options.buffer_pool;
    } else if (options.pool_bytes > 0) {
      // The pager's compression options drive the pool's cold tier too
      // (an injected shared pool keeps whatever its creator chose).
      pager->pool_ = std::make_shared<BufferPool>(options.pool_bytes,
                                                  options.compression);
    }
    if (pager->pool_ != nullptr) {
      pager->pool_owner_ = BufferPool::NextOwnerId();
    }
  }
  pager->PublishCommittedState();

  // Observability: latency histograms are process-wide (one distribution
  // across every pager); per-instance counters export through a pull
  // collector labeled with the database path. The raw pointer in the
  // collector is safe: ~Pager removes the collector before tearing
  // anything down, and RemoveCollector blocks out in-flight dumps.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  pager->commit_latency_us_ = reg.GetHistogram(
      "bp_commit_us", "",
      "End-to-end Pager::Commit latency (us), both durability modes");
  pager->fsync_latency_us_ = reg.GetHistogram(
      "bp_wal_fsync_us", "", "WAL log fsync latency (us)");
  pager->group_commit_txns_ = reg.GetHistogram(
      "bp_wal_group_commit_txns", "",
      "Committed transactions retired per group-commit window");
  pager->checkpoint_latency_us_ = reg.GetHistogram(
      "bp_pager_checkpoint_us", "",
      "WAL checkpoint (sync + fold + log reset) latency (us)");
  pager->decompress_latency_us_ = reg.GetHistogram(
      "bp_decompress_us", "",
      "Main-file compressed page frame decode latency (us)");
  Pager* raw = pager.get();
  pager->metrics_token_ = reg.AddCollector(
      [raw](obs::CollectionSink& sink) { raw->CollectMetrics(sink); });
  return pager;
}

Pager::~Pager() {
  // First thing: detach from the metrics registry, so no dump can call
  // CollectMetrics on a pager that is mid-teardown (RemoveCollector
  // blocks until any in-flight dump finishes with the callback).
  if (metrics_token_ != 0) {
    obs::MetricsRegistry::Global().RemoveCollector(metrics_token_);
  }
  // A snapshot outliving its pager would read through dangling file
  // handles; that is a caller bug, not a recoverable condition.
  BP_CHECK(live_snapshots() == 0,
           "all snapshots must be released before the pager closes");
  if (in_txn_) (void)Rollback();
  if (wal_mode()) {
    // Clean close: make every commit durable, fold ALL streams into the
    // database file, and retire them. The streams are only removed when
    // the fold fully succeeded; on failure they stay behind as the sole
    // copy of the committed pages, and the next Open replays them.
    bool folded = Checkpoint().ok();  // Checkpoint syncs the logs first
    for (auto& dom : domains_) dom.wal.reset();
    if (folded) {
      for (uint32_t d = 0; d < kMaxWriteDomains; ++d) {
        (void)options_.env->Remove(WalPath(d));
      }
    }
  }
  // Give the shared pool its bytes back: this owner id is never reused,
  // so frames published under it are unreachable from here on — without
  // the drop they would hold budget other databases sharing the pool
  // could use (see BufferPool::DropOwner).
  if (pool_ != nullptr) pool_->DropOwner(pool_owner_);
}

Status Pager::InitializeNewDb() {
  page_count_ = 1;  // header page
  freelist_head_ = kNoPage;
  freelist_count_ = 0;
  catalog_root_ = kNoPage;
  commit_seq_ = 0;

  std::string page = SerializedHeader();
  page.resize(kPageSize, '\0');
  BP_RETURN_IF_ERROR(file_->Write(0, page));
  if (options_.sync) {
    BP_RETURN_IF_ERROR(file_->Sync());
    ++stats_.sync.fsyncs;
    stats_.sync.bytes_synced += kPageSize;
  }
  return Status::Ok();
}

Status Pager::LoadHeader() {
  std::string raw;
  BP_RETURN_IF_ERROR(file_->Read(0, kPageSize, &raw));
  Reader r(raw);
  uint32_t magic = r.ReadU32();
  uint32_t version = r.ReadU32();
  uint32_t page_size = r.ReadU32();
  page_count_ = r.ReadU32();
  freelist_head_ = r.ReadU32();
  freelist_count_ = r.ReadU32();
  catalog_root_ = r.ReadU32();
  commit_seq_ = r.ReadU64();
  if (!r.ok() || magic != kDbMagic) {
    return Status::Corruption("bad database header: " + path_);
  }
  if (version != kDbVersion) {
    return Status::InvalidArgument(
        util::StrFormat("unsupported db version %u", version));
  }
  if (page_size != kPageSize) {
    return Status::InvalidArgument(
        util::StrFormat("page size mismatch: file %u, build %u", page_size,
                        kPageSize));
  }
  if (page_count_ == 0) {
    return Status::Corruption("zero page count: " + path_);
  }
  return Status::Ok();
}

// The single serializer for the page-0 header fields; LoadHeader and
// Rollback's cached-header reload are the matching deserializers.
std::string Pager::SerializedHeader() const {
  Writer w;
  w.PutU32(kDbMagic);
  w.PutU32(kDbVersion);
  w.PutU32(kPageSize);
  w.PutU32(page_count_);
  w.PutU32(freelist_head_);
  w.PutU32(freelist_count_);
  w.PutU32(catalog_root_);
  w.PutU64(commit_seq_);
  BP_CHECK(w.size() <= kPageSize);
  return std::move(w).data();
}

Status Pager::WriteHeaderToFrame() {
  BP_ASSIGN_OR_RETURN(PageRef ref, GetMutable(0));
  std::string bytes = SerializedHeader();
  std::copy(bytes.begin(), bytes.end(), ref.mutable_data());
  return Status::Ok();
}

// Journal layout:
//   header: magic u32, commit_seq u64, page_size u32, orig_page_count u32,
//           entry_count u32
//   entry:  page_id u32, page bytes [kPageSize], fnv1a64 checksum u64
Status Pager::RecoverFromJournal() {
  const std::string jpath = JournalPath();
  if (!options_.env->Exists(jpath)) return Status::Ok();

  BP_ASSIGN_OR_RETURN(std::unique_ptr<File> jf, options_.env->Open(jpath));
  BP_ASSIGN_OR_RETURN(uint64_t jsize, jf->Size());

  constexpr size_t kHeaderBytes = 4 + 8 + 4 + 4 + 4;
  constexpr size_t kEntryBytes = 4 + kPageSize + 8;

  bool valid = jsize >= kHeaderBytes;
  uint32_t orig_page_count = 0;
  uint32_t entry_count = 0;
  std::string raw;
  if (valid) {
    BP_RETURN_IF_ERROR(jf->Read(0, jsize, &raw));
    Reader r(raw);
    uint32_t magic = r.ReadU32();
    r.ReadU64();  // commit_seq (informational)
    uint32_t page_size = r.ReadU32();
    orig_page_count = r.ReadU32();
    entry_count = r.ReadU32();
    valid = r.ok() && magic == kJournalMagic && page_size == kPageSize &&
            jsize >= kHeaderBytes + uint64_t{entry_count} * kEntryBytes;
  }

  if (valid && entry_count > 0) {
    // The journal was fully written (entries checksum below), which means
    // the crash happened while writing the database file: roll back.
    Reader r(raw);
    r.Skip(kHeaderBytes);
    for (uint32_t i = 0; i < entry_count && valid; ++i) {
      uint32_t page_id = r.ReadU32();
      std::string_view data = r.ReadRaw(kPageSize);
      uint64_t checksum = r.ReadU64();
      if (!r.ok() || util::Fnv1a64(data) != checksum) {
        valid = false;
        break;
      }
      BP_RETURN_IF_ERROR(
          file_->Write(uint64_t{page_id} * kPageSize, data));
    }
    if (valid) {
      BP_RETURN_IF_ERROR(
          file_->Truncate(uint64_t{orig_page_count} * kPageSize));
      if (options_.sync) {
        BP_RETURN_IF_ERROR(file_->Sync());
        ++stats_.sync.fsyncs;
        stats_.sync.bytes_synced += uint64_t{entry_count} * kPageSize;
      }
    }
  }
  // Whether replayed or found incomplete (crash before the journal fsync,
  // database untouched), the journal is now obsolete.
  jf.reset();
  return options_.env->Remove(jpath);
}

Status Pager::RecoverFromWal() {
  // Probe EVERY possible stream path, not just the configured
  // write_domains: the database may reopen with fewer domains than the
  // run that crashed, and a stream it does not know about may hold the
  // tail of the merged commit order.
  std::vector<std::string> paths;
  bool any = false;
  for (uint32_t d = 0; d < kMaxWriteDomains; ++d) {
    paths.push_back(WalPath(d));
    if (options_.env->Exists(paths.back())) any = true;
  }
  if (!any) return Status::Ok();

  // Fold the mutually consistent merged prefix that survived: per
  // stream, torn tails — the transaction whose fsync never finished —
  // are ignored by the reader; across streams, the merge stops at the
  // first missing commit sequence (see Checkpointer::FoldStreams).
  BP_ASSIGN_OR_RETURN(
      wal::CheckpointResult folded,
      wal::Checkpointer::FoldStreams(options_.env, file_.get(), paths,
                                     options_.sync, options_.compression));
  if (folded.synced_db) {
    ++stats_.sync.fsyncs;
    stats_.sync.bytes_synced += folded.bytes_written;
  }
  stats_.compressed_pages.Inc(folded.pages_compressed);
  stats_.compressed_bytes.Inc(folded.compressed_bytes);
  stats_.compressible_raw_bytes.Inc(folded.raw_bytes_replaced);
  recovered_commit_seq_ = folded.last_commit_seq;
  // Idempotent up to here: a crash before (or between) these Removes
  // just refolds on the next Open — the fold is already durable, so a
  // re-read of the surviving streams merges to a prefix of what this
  // fold wrote.
  for (const auto& path : paths) {
    if (options_.env->Exists(path)) {
      BP_RETURN_IF_ERROR(options_.env->Remove(path));
    }
  }
  return Status::Ok();
}

Status Pager::SyncDomainLocked(WalDomain& dom) {
  if (dom.wal == nullptr) return Status::Ok();
  // Snapshot the pending count first: the acquire pairs with the
  // committing thread's release fetch_add, so the stream bytes those
  // commits appended are visible to the Sync below. Commits that land
  // after this load stay pending for the next window.
  const uint32_t pending =
      dom.unsynced_commits.load(std::memory_order_acquire);
  if (pending == 0) return Status::Ok();
  // A window retiring >= 1 committed transaction is one group commit,
  // whether it filled to the ceiling or was closed early (FlushPending,
  // checkpoint, close). Counted even with sync=false so benches that
  // model fsync cost elsewhere still see the grouping behavior.
  ++stats_.sync.group_commits;
  dom.stat_group_commits.fetch_add(1, std::memory_order_relaxed);
  if (group_commit_txns_ != nullptr) group_commit_txns_->Record(pending);
  if (!options_.sync) {
    dom.unsynced_commits.fetch_sub(pending, std::memory_order_relaxed);
    return Status::Ok();
  }
  uint64_t made_durable;
  {
    obs::ScopedTimerUs timer(fsync_latency_us_);
    // An fsync that starts while another stream's fsync is in flight is
    // the overlap the domain split exists to create.
    if (fsyncs_in_flight_.fetch_add(1, std::memory_order_relaxed) > 0) {
      ++stats_.sync.fsync_overlaps;
    }
    util::Result<uint64_t> synced = dom.wal->Sync();
    fsyncs_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    BP_RETURN_IF_ERROR(synced.status());
    made_durable = *synced;
  }
  // Retire the window only once the fsync SUCCEEDED: a failed sync
  // leaves the counter full, so the very next commit retries instead of
  // accumulating another whole window of unsynced transactions.
  // Subtract (not store 0): commits may have landed since the load.
  dom.unsynced_commits.fetch_sub(pending, std::memory_order_relaxed);
  if (made_durable > 0) {
    ++stats_.sync.fsyncs;
    stats_.sync.bytes_synced += made_durable;
    dom.stat_fsyncs.fetch_add(1, std::memory_order_relaxed);
    dom.stat_bytes_synced.fetch_add(made_durable,
                                    std::memory_order_relaxed);
  }
  return Status::Ok();
}

Status Pager::SyncWal() {
  if (!wal_mode()) return Status::Ok();
  // Ack barrier: ALL domains, ascending id (see the lock-order note in
  // the header) — an acked commit needs every earlier merged sequence
  // durable too, and those may live on any stream.
  {
    util::MutexLock lock(domains_[0].mu);
    BP_RETURN_IF_ERROR(SyncDomainLocked(domains_[0]));
  }
  {
    util::MutexLock lock(domains_[1].mu);
    BP_RETURN_IF_ERROR(SyncDomainLocked(domains_[1]));
  }
  return Status::Ok();
}

Status Pager::SyncWalDomain(WriteDomain domain) {
  BP_REQUIRE(domain < kMaxWriteDomains, "invalid write domain");
  if (!wal_mode()) return Status::Ok();
  if (domain == 0) {
    util::MutexLock lock(domains_[0].mu);
    return SyncDomainLocked(domains_[0]);
  }
  util::MutexLock lock(domains_[1].mu);
  return SyncDomainLocked(domains_[1]);
}

Result<bool> Pager::FlushPending() {
  if (!wal_mode() || unsynced_commits() == 0) return false;
  BP_RETURN_IF_ERROR(SyncWal());
  return true;
}

uint32_t Pager::unsynced_commits() const {
  uint32_t total = 0;
  for (const WalDomain& dom : domains_) {
    total += dom.unsynced_commits.load(std::memory_order_relaxed);
  }
  return total;
}

uint32_t Pager::unsynced_commits(WriteDomain domain) const {
  BP_REQUIRE(domain < kMaxWriteDomains, "invalid write domain");
  return domains_[domain].unsynced_commits.load(std::memory_order_relaxed);
}

Status Pager::Checkpoint() {
  BP_REQUIRE(wal_mode(), "Checkpoint requires WAL durability mode");
  if (in_txn_) {
    return Status::FailedPrecondition(
        "Checkpoint during an open transaction");
  }
  // Hold commit_mu_ for the whole fold: a snapshot beginning mid-fold
  // would otherwise read the database file while the checkpointer is
  // rewriting it. BeginRead blocks for the (rare, bounded) duration.
  util::MutexLock lock(commit_mu_);
  if (live_snapshots_ > 0) {
    return Status::FailedPrecondition(
        "Checkpoint with live snapshots: they pin WAL frames; release "
        "them first (automatic checkpoints retry at the next commit)");
  }
  // Timed from here: the deferred-checkpoint early-outs above would
  // otherwise flood the histogram with near-zero samples.
  obs::ScopedTimerUs timer(checkpoint_latency_us_);
  obs::ScopedSpan span("pager.checkpoint");
  // Both domain mutexes, ascending id, held across sync + fold + reset:
  // no stream may be fsynced (by the maintenance lane) or appended
  // while its file is being folded and truncated.
  util::MutexLock lock0(domains_[0].mu);
  util::MutexLock lock1(domains_[1].mu);
  // The logs must be durable before their pages land in the database
  // file (log ahead of data): otherwise a crash could leave the
  // database with pages from a transaction no log can prove committed.
  BP_RETURN_IF_ERROR(SyncDomainLocked(domains_[0]));
  BP_RETURN_IF_ERROR(SyncDomainLocked(domains_[1]));
  std::vector<std::string> paths;
  for (uint32_t d = 0; d < write_domains_; ++d) paths.push_back(WalPath(d));
  // sync=false: the header patch below joins the fold under ONE fsync.
  BP_ASSIGN_OR_RETURN(
      wal::CheckpointResult folded,
      wal::Checkpointer::FoldStreams(options_.env, file_.get(), paths,
                                     /*sync=*/false, options_.compression));
  stats_.compressed_pages.Inc(folded.pages_compressed);
  stats_.compressed_bytes.Inc(folded.compressed_bytes);
  stats_.compressible_raw_bytes.Inc(folded.raw_bytes_replaced);
  if (folded.ran) {
    // Transactions that never dirtied the header page leave the folded
    // on-disk commit_seq stale; rewrite it from the authoritative
    // in-memory value before the fsync.
    BP_RETURN_IF_ERROR(file_->Write(0, SerializedHeader()));
    if (options_.sync) {
      BP_RETURN_IF_ERROR(file_->Sync());
      ++stats_.sync.fsyncs;
      stats_.sync.bytes_synced += folded.bytes_written;
    }
    main_file_pages_ = std::max(main_file_pages_, folded.page_count);
  }
  for (uint32_t d = 0; d < write_domains_; ++d) {
    BP_RETURN_IF_ERROR(domains_[d].wal->ResetToHeader(commit_seq_));
  }
  wal_index_.clear();
  stats_.checkpoints.Inc();
  if (folded.ran) {
    // The fold rewrote main-file pages and freed every stream's offsets
    // for reuse: new generations, so no stale pool key can ever resolve.
    ++main_generation_;
    for (uint32_t d = 0; d < write_domains_; ++d) ++domains_[d].generation;
  }
  PublishLocked(std::make_shared<std::unordered_map<PageId, uint64_t>>());
  return Status::Ok();
}

Status Pager::MaybeCheckpoint() {
  if (!wal_mode() || in_txn_ || live_snapshots() > 0) {
    // Deferred while snapshots are live; retried at the next commit.
    return Status::Ok();
  }
  uint64_t total_bytes = 0;
  for (uint32_t d = 0; d < write_domains_; ++d) {
    total_bytes += domains_[d].wal->SizeBytes();
  }
  if (total_bytes < options_.wal_checkpoint_bytes) return Status::Ok();
  Status folded = Checkpoint();
  if (folded.code() == util::StatusCode::kFailedPrecondition) {
    // A reader opened a snapshot between the check above and the
    // checkpoint taking its lock: same deferral, next commit retries.
    return Status::Ok();
  }
  return folded;
}

void Pager::PublishLocked(
    std::shared_ptr<std::unordered_map<PageId, uint64_t>> index) {
  published_.commit_seq = commit_seq_;
  published_.page_count = page_count_;
  published_.catalog_root = catalog_root_;
  published_.main_file_pages = main_file_pages_;
  published_.main_generation = main_generation_;
  for (uint32_t d = 0; d < kMaxWriteDomains; ++d) {
    published_.domain_commit_seq[d] = domains_[d].last_commit_seq;
    published_.domain_generation[d] = domains_[d].generation;
  }
  if (index != nullptr) published_.wal_index = std::move(index);
}

void Pager::PublishCommittedState() {
  util::MutexLock lock(commit_mu_);
  PublishLocked(
      std::make_shared<std::unordered_map<PageId, uint64_t>>(wal_index_));
}

void Pager::PublishCommitDelta(
    const std::vector<std::pair<PageId, uint64_t>>& offsets) {
  util::MutexLock lock(commit_mu_);
  // use_count can only grow under commit_mu_ (BeginRead) — a snapshot
  // destructor may decrement it concurrently, which at worst makes us
  // copy when in-place would have been safe.
  if (published_.wal_index == nullptr ||
      published_.wal_index.use_count() > 1) {
    PublishLocked(
        std::make_shared<std::unordered_map<PageId, uint64_t>>(wal_index_));
    return;
  }
  for (const auto& [id, slot] : offsets) {
    (*published_.wal_index)[id] = slot;
  }
  PublishLocked(nullptr);
}

util::Result<std::unique_ptr<Snapshot>> Pager::BeginRead() {
  if (!wal_mode()) {
    return Status::FailedPrecondition(
        "BeginRead requires WAL durability mode (journal mode rewrites "
        "the database file in place at every commit)");
  }
  util::MutexLock lock(commit_mu_);
  std::unique_ptr<Snapshot> snap(new Snapshot());
  snap->pager_ = this;
  snap->commit_seq_ = published_.commit_seq;
  snap->domain_commit_seq_ = published_.domain_commit_seq;
  snap->page_count_ = published_.page_count;
  snap->catalog_root_ = published_.catalog_root;
  snap->main_file_pages_ = published_.main_file_pages;
  snap->main_generation_ = published_.main_generation;
  snap->domain_generation_ = published_.domain_generation;
  snap->wal_index_ = published_.wal_index;
  snap->pool_ = pool_;
  snap->pool_owner_ = pool_owner_;
  snap->cache_cap_ = options_.cache_pages;
  ++live_snapshots_;
  return snap;
}

uint32_t Pager::live_snapshots() const {
  util::MutexLock lock(commit_mu_);
  return live_snapshots_;
}

void Pager::ReleaseSnapshot(const SnapshotStats& final_stats) {
  util::MutexLock lock(commit_mu_);
  BP_CHECK(live_snapshots_ > 0);
  --live_snapshots_;
  retired_snapshot_stats_.pages_read += final_stats.pages_read;
  retired_snapshot_stats_.cache_hits += final_stats.cache_hits;
  retired_snapshot_stats_.pool_hits += final_stats.pool_hits;
  retired_snapshot_stats_.decompress_reads += final_stats.decompress_reads;
}

Status Pager::Begin(WriteDomain domain) {
  BP_REQUIRE(!in_txn_, "nested transactions are not supported");
  in_txn_ = true;
  // Clamp instead of reject: a caller built for 2 domains keeps working
  // against a 1-domain (or journal-mode) pager, it just shares the
  // stream.
  txn_domain_ =
      wal_mode() ? std::min(domain, write_domains_ - 1) : kGraphDomain;
  before_images_.clear();
  fresh_pages_.clear();
  txn_orig_page_count_ = page_count_;
  return Status::Ok();
}

Status Pager::Commit() {
  BP_REQUIRE(in_txn_, "Commit outside a transaction");
  obs::ScopedTimerUs timer(commit_latency_us_);
  obs::ScopedSpan span("pager.commit");

  // Collect dirty frames.
  std::vector<internal::Frame*> dirty;
  for (auto& [id, frame] : frames_) {
    if (frame->dirty) dirty.push_back(frame.get());
  }
  if (dirty.empty()) {
    in_txn_ = false;
    stats_.commits.Inc();
    return Status::Ok();
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const internal::Frame* a, const internal::Frame* b) {
              return a->id < b->id;
            });

  if (options_.durability == DurabilityMode::kWal) {
    BP_RETURN_IF_ERROR(CommitViaWal(dirty));
  } else {
    BP_RETURN_IF_ERROR(CommitViaJournal(dirty));
    main_file_pages_ = page_count_;
  }

  for (internal::Frame* frame : dirty) frame->dirty = false;
  before_images_.clear();
  fresh_pages_.clear();
  in_txn_ = false;
  stats_.commits.Inc();
  MaybeEvict();

  // Make the new commit visible to BeginRead: the log write above
  // happens-before the publication, so a snapshot that observes this
  // commit_seq can read every frame slot its index names.
  if (options_.durability == DurabilityMode::kWal) {
    PublishCommitDelta(last_commit_offsets_);
  }

  // Group commit: the transaction is fully retired above BEFORE the
  // fsync is attempted, because once its commit frame is in the log it
  // IS committed — a sync failure here means durability is not yet
  // guaranteed (the caller may retry SyncWal), never that the commit
  // can be rolled back. Flushing inside CommitViaWal would let an
  // fsync error leave in_txn_ set and a later Rollback tear cached
  // pages away from the log's committed images.
  //
  // Only THIS transaction's stream is synced (its window filled); a
  // full window on one domain never drags the other domain's device
  // into the wait. This is not an ack — callers that promise
  // durability go through SyncWal/FlushPending, which sync all
  // domains so no earlier merged sequence can be lost under an acked
  // one.
  if (options_.durability == DurabilityMode::kWal &&
      unsynced_commits(txn_domain_) >= options_.wal_group_commit) {
    BP_RETURN_IF_ERROR(SyncWalDomain(txn_domain_));
  }
  // Fold the logs into the main file if they crossed the size threshold.
  return MaybeCheckpoint();
}

Status Pager::CommitViaJournal(const std::vector<internal::Frame*>& dirty) {
  // Phase 1: persist before-images so a mid-write crash can be undone.
  if (!before_images_.empty()) {
    Writer w;
    w.PutU32(kJournalMagic);
    w.PutU64(commit_seq_ + 1);
    w.PutU32(kPageSize);
    w.PutU32(txn_orig_page_count_);
    w.PutU32(static_cast<uint32_t>(before_images_.size()));
    for (const auto& [id, image] : before_images_) {
      w.PutU32(id);
      w.PutRaw(image);
      w.PutU64(util::Fnv1a64(image));
    }
    BP_ASSIGN_OR_RETURN(std::unique_ptr<File> jf,
                        options_.env->Open(JournalPath()));
    BP_RETURN_IF_ERROR(jf->Truncate(0));
    BP_RETURN_IF_ERROR(jf->Write(0, w.data()));
    if (options_.sync) {
      BP_RETURN_IF_ERROR(jf->Sync());
      ++stats_.sync.fsyncs;
      stats_.sync.bytes_synced += w.size();
    }
  }

  if (crash_after_journal_) {
    // Simulated power loss: leave the hot journal and the (possibly
    // partially updated) database file exactly as they are.
    return Status::Aborted("simulated crash after journal sync");
  }

  // Phase 2: write dirty pages into the database file.
  ++commit_seq_;
  for (internal::Frame* frame : dirty) {
    if (frame->id == 0) {
      // Refresh the header bytes with the final committed field values
      // (mid-transaction WriteHeaderToFrame calls capture intermediates).
      std::string header = SerializedHeader();
      std::copy(header.begin(), header.end(), frame->data.data());
    }
    BP_RETURN_IF_ERROR(
        file_->Write(uint64_t{frame->id} * kPageSize, frame->data));
    stats_.pages_written.Inc();
  }
  if (options_.sync) {
    BP_RETURN_IF_ERROR(file_->Sync());
    ++stats_.sync.fsyncs;
    stats_.sync.bytes_synced += dirty.size() * uint64_t{kPageSize};
  }

  // Phase 3: the commit is durable; retire the journal.
  if (!before_images_.empty()) {
    BP_RETURN_IF_ERROR(options_.env->Remove(JournalPath()));
  }
  return Status::Ok();
}

Status Pager::CommitViaWal(const std::vector<internal::Frame*>& dirty) {
  WalDomain& dom = domains_[txn_domain_];
  ++commit_seq_;
  // One page-image frame per dirty page, then the commit frame, appended
  // to the transaction's domain stream in a single sequential write.
  // The database file is not touched; that is the checkpointer's job.
  std::vector<std::pair<PageId, uint64_t>>& offsets =
      last_commit_offsets_;  // kept for PublishCommitDelta
  offsets.clear();
  offsets.reserve(dirty.size());
  for (internal::Frame* frame : dirty) {
    if (frame->id == 0) {
      // Refresh the header bytes with the final committed field values
      // (mid-transaction WriteHeaderToFrame calls capture intermediates).
      std::string header = SerializedHeader();
      std::copy(header.begin(), header.end(), frame->data.data());
    }
    offsets.emplace_back(
        frame->id,
        MakeWalSlot(txn_domain_, dom.wal->AddPage(frame->id, frame->data)));
  }
  Status appended = dom.wal->CommitTxn(commit_seq_, page_count_);
  if (!appended.ok()) {
    dom.wal->AbandonTxn();
    --commit_seq_;
    return appended;
  }
  dom.last_commit_seq = commit_seq_;
  for (const auto& [id, slot] : offsets) wal_index_[id] = slot;
  stats_.wal_frames.Inc(dirty.size());
  stats_.pages_written.Inc(dirty.size());
  dom.stat_commits.fetch_add(1, std::memory_order_relaxed);
  dom.stat_wal_frames.fetch_add(dirty.size(), std::memory_order_relaxed);
  // Release: pairs with the acquire load in SyncDomainLocked — a sync
  // (possibly on another thread) that observes this commit as pending
  // also observes its appended bytes.
  dom.unsynced_commits.fetch_add(1, std::memory_order_release);
  // Publish the freshly committed images into the shared pool, so
  // snapshot readers (and repeated one-shot queries) hit hot pages —
  // tree roots, the catalog — without ever touching the log.
  // `offsets` and `dirty` are index-aligned (built by the same loop).
  if (pool_ != nullptr && options_.pool_publish_on_commit) {
    for (size_t i = 0; i < dirty.size(); ++i) {
      PublishToPool(PageImageKey{pool_owner_, offsets[i].first,
                                 dom.generation, offsets[i].second},
                    std::string(dirty[i]->data));
    }
  }
  return Status::Ok();
}

Status Pager::Rollback() {
  BP_REQUIRE(in_txn_, "Rollback outside a transaction");

  // Restore before-images in cache; drop frames for pages that did not
  // exist before the transaction.
  for (auto& [id, image] : before_images_) {
    auto it = frames_.find(id);
    if (it != frames_.end()) {
      it->second->data = image;
      it->second->dirty = false;
    }
  }
  for (auto& [id, unused] : fresh_pages_) {
    (void)unused;
    auto it = frames_.find(id);
    if (it != frames_.end()) {
      BP_CHECK(it->second->pins == 0, "rolling back a pinned fresh page");
      LruRemove(it->second.get());
      frames_.erase(it);
    }
  }

  // Restore header fields from the (now clean) cached header frame, or
  // from disk if it was never touched.
  page_count_ = txn_orig_page_count_;
  auto hit = frames_.find(0);
  if (hit != frames_.end()) {
    Reader r(hit->second->data);
    r.Skip(4 + 4 + 4);  // magic, version, page_size
    page_count_ = r.ReadU32();
    freelist_head_ = r.ReadU32();
    freelist_count_ = r.ReadU32();
    catalog_root_ = r.ReadU32();
    commit_seq_ = r.ReadU64();
  }

  before_images_.clear();
  fresh_pages_.clear();
  in_txn_ = false;
  ++change_count_;
  stats_.rollbacks.Inc();
  return Status::Ok();
}

Result<internal::Frame*> Pager::FetchFrame(PageId id) {
  BP_REQUIRE(id < page_count_, util::StrFormat("page %u out of range (%u)",
                                               id, page_count_));
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    stats_.cache_hits.Inc();
    LruTouch(it->second.get());
    return it->second.get();
  }
  stats_.cache_misses.Inc();
  auto frame = std::make_unique<internal::Frame>();
  frame->id = id;
  // A miss can only be a clean committed page (dirty frames are never
  // evicted), so the shared pool may already hold its image — published
  // at commit, by an evicted twin, or by a snapshot reader that fetched
  // it first. Copy it out instead of touching the log/database file.
  PageImageKey pool_key;
  bool pooled = false;
  if (CommittedImageKey(id, &pool_key)) {
    if (std::shared_ptr<const std::string> image = pool_->Lookup(pool_key)) {
      frame->data = *image;
      pooled = true;
    }
  }
  if (pooled) {
    // No stats_.pages_read: the pool hit (counted in pool stats) saved
    // the storage read.
  } else if (auto wal_hit = wal_index_.find(id); wal_hit != wal_index_.end()) {
    // Latest committed version lives in a write-ahead log stream (the
    // page was evicted after a WAL commit and not yet checkpointed);
    // the slot names the stream and the offset within it.
    const uint64_t slot = wal_hit->second;
    BP_RETURN_IF_ERROR(domains_[SlotStream(slot)].wal->ReadPayload(
        SlotOffset(slot), kPageSize, &frame->data));
    stats_.pages_read.Inc();
  } else if (id < main_file_pages_) {
    BP_RETURN_IF_ERROR(
        file_->Read(uint64_t{id} * kPageSize, kPageSize, &frame->data));
    stats_.pages_read.Inc();
    // Checkpointed slots may hold a compressed frame (self-describing,
    // checksummed — see storage/compress.hpp); decode back to the raw
    // page. Handled even with compression off, so a database written
    // with compression=fast reopens under any options.
    if (compress::LooksLikeFrame(frame->data)) {
      obs::ScopedTimerUs decode_timer(decompress_latency_us_);
      std::string raw;
      BP_RETURN_IF_ERROR(compress::Decompress(frame->data, &raw));
      if (raw.size() != kPageSize) {
        return Status::Corruption(util::StrFormat(
            "page %u: compressed frame decodes to %zu bytes", id,
            raw.size()));
      }
      frame->data = std::move(raw);
      stats_.decompress_reads.Inc();
    }
  } else {
    // Allocated this transaction: nothing on disk yet.
    frame->data.assign(kPageSize, '\0');
  }
  internal::Frame* raw = frame.get();
  frames_.emplace(id, std::move(frame));
  LruTouch(raw);
  return raw;
}

Result<PageRef> Pager::Get(PageId id) {
  BP_ASSIGN_OR_RETURN(internal::Frame * frame, FetchFrame(id));
  PageRef ref(this, frame, /*writable=*/false);
  MaybeEvict();  // `frame` is pinned by `ref`, so it cannot be a victim
  return ref;
}

Result<PageRef> Pager::GetMutable(PageId id) {
  BP_REQUIRE(in_txn_, "mutation outside a transaction");
  BP_ASSIGN_OR_RETURN(internal::Frame * frame, FetchFrame(id));
  JournalBeforeImage(*frame);
  frame->dirty = true;
  ++change_count_;
  return PageRef(this, frame, /*writable=*/true);
}

void Pager::JournalBeforeImage(internal::Frame& frame) {
  if (fresh_pages_.count(frame.id) > 0 ||
      before_images_.count(frame.id) > 0) {
    return;
  }
  if (frame.id >= txn_orig_page_count_) {
    fresh_pages_[frame.id] = true;
    return;
  }
  before_images_[frame.id] = frame.data;
}

Result<PageId> Pager::Allocate() {
  BP_REQUIRE(in_txn_, "Allocate outside a transaction");
  PageId id;
  if (freelist_head_ != kNoPage) {
    id = freelist_head_;
    BP_ASSIGN_OR_RETURN(PageRef ref, GetMutable(id));
    util::Reader r(std::string_view(ref.data(), kPageSize));
    freelist_head_ = r.ReadU32();
    --freelist_count_;
    std::fill(ref.mutable_data(), ref.mutable_data() + kPageSize, '\0');
  } else {
    id = page_count_;
    ++page_count_;
    // Materialize the frame now so its fresh-page status is recorded.
    BP_ASSIGN_OR_RETURN(PageRef ref, GetMutable(id));
    (void)ref;
  }
  BP_RETURN_IF_ERROR(WriteHeaderToFrame());
  return id;
}

Status Pager::Free(PageId id) {
  BP_REQUIRE(in_txn_, "Free outside a transaction");
  BP_REQUIRE(id != 0 && id < page_count_, "freeing an invalid page");
  BP_ASSIGN_OR_RETURN(PageRef ref, GetMutable(id));
  std::fill(ref.mutable_data(), ref.mutable_data() + kPageSize, '\0');
  util::Writer w;
  w.PutU32(freelist_head_);
  std::copy(w.data().begin(), w.data().end(), ref.mutable_data());
  freelist_head_ = id;
  ++freelist_count_;
  return WriteHeaderToFrame();
}

Status Pager::SetCatalogRoot(PageId root) {
  BP_REQUIRE(in_txn_, "SetCatalogRoot outside a transaction");
  catalog_root_ = root;
  return WriteHeaderToFrame();
}

void Pager::Unpin(internal::Frame* frame) {
  BP_CHECK(frame->pins > 0);
  --frame->pins;
}

void Pager::LruTouch(internal::Frame* frame) {
  if (frame->lru_prev != nullptr) {  // already linked: unlink first
    frame->lru_prev->lru_next = frame->lru_next;
    frame->lru_next->lru_prev = frame->lru_prev;
  }
  frame->lru_next = lru_.lru_next;
  frame->lru_prev = &lru_;
  lru_.lru_next->lru_prev = frame;
  lru_.lru_next = frame;
}

void Pager::LruRemove(internal::Frame* frame) {
  if (frame->lru_prev == nullptr) return;
  frame->lru_prev->lru_next = frame->lru_next;
  frame->lru_next->lru_prev = frame->lru_prev;
  frame->lru_prev = nullptr;
  frame->lru_next = nullptr;
}

void Pager::MaybeEvict() {
  if (frames_.size() <= options_.cache_pages) return;
  // Pop clean, unpinned frames off the cold end of the intrusive LRU
  // list until under the cap — O(evicted) plus the skipped survivors,
  // not a scan-and-sort of every frame per trigger. Dirty frames must
  // survive until commit (the cap is soft); skipped survivors (pinned,
  // dirty, the header) are re-warmed to the MRU end so the walk
  // terminates and does not re-examine them next trigger.
  size_t examined = 0;
  const size_t limit = frames_.size();
  while (frames_.size() > options_.cache_pages && examined < limit) {
    internal::Frame* victim = lru_.lru_prev;
    if (victim == &lru_) break;
    ++examined;
    if (victim->pins > 0 || victim->dirty || victim->id == 0) {
      LruTouch(victim);
      continue;
    }
    // Victim caching: the evicted image is the latest committed version
    // of its page, so hand the bytes to the shared pool (a move, not a
    // copy) where snapshot readers and a later re-fetch find them.
    PageImageKey key;
    if (CommittedImageKey(victim->id, &key)) {
      PublishToPool(key, std::move(victim->data));
    }
    LruRemove(victim);
    // Copy the id out: erase(const key_type&) must not be handed a
    // reference into the node it is destroying.
    const PageId victim_id = victim->id;
    frames_.erase(victim_id);
    stats_.evictions.Inc();
  }
}

uint64_t Pager::OnDiskPageBytes(PageId id) const {
  // WAL-resident and not-yet-folded pages occupy a raw page image (in
  // the log / nothing yet); only checkpointed main-file slots can hold
  // a compressed frame.
  if (id >= main_file_pages_ || wal_index_.count(id) > 0) return kPageSize;
  std::string head;
  if (!file_->Read(uint64_t{id} * kPageSize, compress::kFrameHeaderSize,
                   &head)
           .ok()) {
    return kPageSize;
  }
  auto info = compress::Inspect(head);
  if (!info.ok()) return kPageSize;  // raw slot
  // Physical bytes = header + payload; the rest of the slot is the
  // hole-punchable zero tail. Clamp: this is accounting, not decoding,
  // so a garbled size field must not report more than the slot.
  return std::min<uint64_t>(info->stored_size, kPageSize);
}

bool Pager::CommittedImageKey(PageId id, PageImageKey* key) const {
  if (pool_ == nullptr) return false;  // also covers journal mode
  key->owner = pool_owner_;
  key->id = id;
  if (auto it = wal_index_.find(id); it != wal_index_.end()) {
    // The offset field carries the full slot, so images of the same
    // page in different streams can never alias; the generation is the
    // owning STREAM's (its offsets are what checkpoint truncation
    // recycles).
    key->generation = domains_[SlotStream(it->second)].generation;
    key->offset = it->second;
    return true;
  }
  if (id < main_file_pages_) {
    key->generation = main_generation_;
    key->offset = kMainFileImage;
    return true;
  }
  return false;  // no committed image yet (allocated this transaction)
}

void Pager::PublishToPool(const PageImageKey& key, std::string&& image) {
  (void)pool_->Insert(key,
                      std::make_shared<const std::string>(std::move(image)));
}

DomainStats Pager::domain_stats(WriteDomain domain) const {
  BP_REQUIRE(domain < kMaxWriteDomains, "invalid write domain");
  const WalDomain& dom = domains_[domain];
  DomainStats out;
  out.commits = dom.stat_commits.load(std::memory_order_relaxed);
  out.wal_frames = dom.stat_wal_frames.load(std::memory_order_relaxed);
  out.fsyncs = dom.stat_fsyncs.load(std::memory_order_relaxed);
  out.bytes_synced = dom.stat_bytes_synced.load(std::memory_order_relaxed);
  out.group_commits =
      dom.stat_group_commits.load(std::memory_order_relaxed);
  if (dom.wal != nullptr) out.wal_bytes = dom.wal->committed_bytes();
  {
    // The published copy, not dom.last_commit_seq: that member belongs
    // to the writer thread.
    util::MutexLock lock(commit_mu_);
    out.last_commit_seq = published_.domain_commit_seq[domain];
  }
  return out;
}

PagerStats Pager::stats() const {
  // Relaxed: every counter is monotone; a dump racing a commit just
  // sees a slightly stale value.
  PagerStats out;
  out.commits = stats_.commits.load();
  out.rollbacks = stats_.rollbacks.load();
  out.pages_written = stats_.pages_written.load();
  out.pages_read = stats_.pages_read.load();
  out.cache_hits = stats_.cache_hits.load();
  out.cache_misses = stats_.cache_misses.load();
  out.evictions = stats_.evictions.load();
  out.wal_frames = stats_.wal_frames.load();
  out.checkpoints = stats_.checkpoints.load();
  out.fsyncs = stats_.sync.fsyncs.load(std::memory_order_relaxed);
  out.bytes_synced = stats_.sync.bytes_synced.load(std::memory_order_relaxed);
  out.group_commits =
      stats_.sync.group_commits.load(std::memory_order_relaxed);
  out.fsync_overlaps =
      stats_.sync.fsync_overlaps.load(std::memory_order_relaxed);
  out.compressed_pages = stats_.compressed_pages.load();
  out.compressed_bytes = stats_.compressed_bytes.load();
  out.compressible_raw_bytes = stats_.compressible_raw_bytes.load();
  out.decompress_reads = stats_.decompress_reads.load();
  if (pool_ != nullptr) {
    BufferPoolStats pool = pool_->stats();
    out.pool_hits = pool.hits;
    out.pool_misses = pool.misses;
    out.pool_evictions = pool.evictions;
    out.pool_bytes = pool.bytes;
    out.pool_frames = pool.frames;
    out.pool_pinned_bytes = pool.pinned_bytes;
    out.pool_cold_demotions = pool.cold_demotions;
    out.pool_cold_hits = pool.cold_hits;
    out.pool_cold_evictions = pool.cold_evictions;
    out.pool_cold_bytes = pool.cold_bytes;
    out.pool_cold_frames = pool.cold_frames;
  }
  {
    util::MutexLock lock(commit_mu_);
    out.snapshot_pages_read = retired_snapshot_stats_.pages_read;
    out.snapshot_cache_hits = retired_snapshot_stats_.cache_hits;
    out.snapshot_pool_hits = retired_snapshot_stats_.pool_hits;
    out.decompress_reads += retired_snapshot_stats_.decompress_reads;
  }
  return out;
}

void Pager::CollectMetrics(obs::CollectionSink& sink) const {
  const PagerStats s = stats();
  const std::string labels = "db=\"" + path_ + "\"";
  auto counter = [&](const char* name, const char* help, uint64_t v) {
    sink.Counter(name, labels, help, static_cast<double>(v));
  };
  auto gauge = [&](const char* name, const char* help, uint64_t v) {
    sink.Gauge(name, labels, help, static_cast<double>(v));
  };
  counter("bp_pager_commits", "Committed transactions", s.commits);
  counter("bp_pager_rollbacks", "Rolled-back transactions", s.rollbacks);
  counter("bp_pager_pages_written", "Pages written (journal or WAL)",
          s.pages_written);
  counter("bp_pager_pages_read", "Pages fetched from log/database file",
          s.pages_read);
  counter("bp_pager_cache_hits", "Writer page-cache hits", s.cache_hits);
  counter("bp_pager_cache_misses", "Writer page-cache misses",
          s.cache_misses);
  counter("bp_pager_evictions", "Writer page-cache evictions", s.evictions);
  counter("bp_pager_fsyncs", "fsync calls issued", s.fsyncs);
  counter("bp_pager_bytes_synced", "Bytes made durable by fsync",
          s.bytes_synced);
  counter("bp_pager_wal_frames", "Page images appended to the WAL",
          s.wal_frames);
  counter("bp_pager_checkpoints", "WAL checkpoints folded", s.checkpoints);
  counter("bp_pager_group_commits", "Group-commit windows closed",
          s.group_commits);
  counter("bp_pager_fsync_overlaps",
          "Stream fsyncs that overlapped another stream's fsync",
          s.fsync_overlaps);
  counter("bp_snapshot_pages_read",
          "Snapshot reads served from log/database file",
          s.snapshot_pages_read);
  counter("bp_snapshot_cache_hits", "Snapshot L1 memo hits",
          s.snapshot_cache_hits);
  counter("bp_snapshot_pool_hits", "Snapshot shared-pool hits",
          s.snapshot_pool_hits);
  counter("bp_pager_compressed_pages",
          "Pages folded as compressed frames at checkpoint",
          s.compressed_pages);
  counter("bp_pager_compressed_bytes",
          "Physical frame bytes written for compressed pages",
          s.compressed_bytes);
  counter("bp_pager_compressible_raw_bytes",
          "Raw page bytes replaced by compressed frames",
          s.compressible_raw_bytes);
  counter("bp_pager_decompress_reads",
          "Main-file reads that decoded a compressed frame",
          s.decompress_reads);
  if (pool_ != nullptr) {
    counter("bp_pool_hits", "Buffer pool lookup hits", s.pool_hits);
    counter("bp_pool_misses", "Buffer pool lookup misses", s.pool_misses);
    counter("bp_pool_evictions", "Buffer pool frames evicted",
            s.pool_evictions);
    gauge("bp_pool_bytes", "Resident buffer pool bytes", s.pool_bytes);
    gauge("bp_pool_frames", "Resident buffer pool frames", s.pool_frames);
    gauge("bp_pool_pinned_bytes",
          "Pool bytes pinned by live readers (un-evictable floor)",
          s.pool_pinned_bytes);
    counter("bp_pool_cold_demotions",
            "Pool evictions demoted into the compressed cold tier",
            s.pool_cold_demotions);
    counter("bp_pool_cold_hits",
            "Pool misses rescued by decompressing a cold frame",
            s.pool_cold_hits);
    counter("bp_pool_cold_evictions", "Cold-tier frames aged out",
            s.pool_cold_evictions);
    gauge("bp_pool_cold_bytes", "Resident cold-tier (compressed) bytes",
          s.pool_cold_bytes);
    gauge("bp_pool_cold_frames", "Resident cold-tier frames",
          s.pool_cold_frames);
  }
  if (wal_mode()) {
    for (uint32_t d = 0; d < write_domains_; ++d) {
      const DomainStats ds = domain_stats(d);
      const std::string dlabels =
          "db=\"" + path_ + "\",domain=\"" + std::to_string(d) + "\"";
      auto dcounter = [&](const char* name, const char* help, uint64_t v) {
        sink.Counter(name, dlabels, help, static_cast<double>(v));
      };
      dcounter("bp_pager_domain_commits",
               "Transactions committed to this domain's WAL stream",
               ds.commits);
      dcounter("bp_pager_domain_wal_frames",
               "Page images appended to this domain's WAL stream",
               ds.wal_frames);
      dcounter("bp_pager_domain_wal_bytes",
               "Committed bytes in this domain's WAL stream", ds.wal_bytes);
      dcounter("bp_pager_domain_fsyncs",
               "fsyncs issued on this domain's WAL stream", ds.fsyncs);
      dcounter("bp_pager_domain_bytes_synced",
               "Bytes made durable on this domain's WAL stream",
               ds.bytes_synced);
      dcounter("bp_pager_domain_group_commits",
               "Group-commit windows closed on this domain's WAL stream",
               ds.group_commits);
      sink.Gauge("bp_pager_domain_last_commit_seq", dlabels,
                 "Newest merged commit sequence on this domain's stream",
                 static_cast<double>(ds.last_commit_seq));
    }
  }
}

}  // namespace bp::storage
