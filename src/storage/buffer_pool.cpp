#include "storage/buffer_pool.hpp"

#include "util/hash.hpp"
#include "util/require.hpp"

namespace bp::storage {

namespace {

struct KeyHash {
  size_t operator()(const PageImageKey& key) const {
    // Mix64 gives full avalanche, so ShardFor's low bits are not at the
    // mercy of aligned offsets the way a plain xor-multiply would be.
    uint64_t h = util::HashCombine(
        (uint64_t{key.owner} << 32) | key.generation,
        (uint64_t{key.id} << 1) | (key.offset == kMainFileImage));
    return static_cast<size_t>(util::HashCombine(h, key.offset));
  }
};

}  // namespace

struct BufferPool::Shard {
  std::mutex mu;
  std::unordered_map<PageImageKey, std::unique_ptr<Frame>, KeyHash> frames;
  Frame lru;  // sentinel: lru.next = MRU, lru.prev = coldest
  uint64_t bytes = 0;
  // Counters are guarded by mu (stats() locks each shard in turn).
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t reinserts = 0;
  uint64_t evictions = 0;
  uint64_t pinned_skips = 0;

  Shard() {
    lru.prev = &lru;
    lru.next = &lru;
  }
};

BufferPool::BufferPool(size_t byte_budget)
    : byte_budget_(byte_budget),
      shard_budget_(byte_budget / kShards),
      shards_(new Shard[kShards]) {}

BufferPool::~BufferPool() = default;

uint32_t BufferPool::NextOwnerId() {
  static std::atomic<uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

BufferPool::Shard& BufferPool::ShardFor(const PageImageKey& key) {
  return shards_[KeyHash{}(key) & (kShards - 1)];
}

void BufferPool::Unlink(Frame* frame) {
  frame->prev->next = frame->next;
  frame->next->prev = frame->prev;
  frame->prev = nullptr;
  frame->next = nullptr;
}

void BufferPool::LinkFront(Shard& shard, Frame* frame) {
  frame->next = shard.lru.next;
  frame->prev = &shard.lru;
  shard.lru.next->prev = frame;
  shard.lru.next = frame;
}

void BufferPool::Touch(Shard& shard, Frame* frame) {
  Unlink(frame);
  LinkFront(shard, frame);
}

std::shared_ptr<const std::string> BufferPool::Lookup(
    const PageImageKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(key);
  if (it == shard.frames.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  Touch(shard, it->second.get());
  return it->second->data;
}

std::shared_ptr<const std::string> BufferPool::Insert(
    const PageImageKey& key, std::shared_ptr<const std::string> page) {
  BP_CHECK(page != nullptr && page->size() == kPageSize,
           "pool frames are exactly one page");
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(key);
  if (it != shard.frames.end()) {
    // Another thread fetched the same image concurrently; keys name
    // immutable byte images, so the frames are identical — adopt the
    // resident one and let the caller's copy die.
    ++shard.reinserts;
    Touch(shard, it->second.get());
    return it->second->data;
  }
  auto frame = std::make_unique<Frame>();
  frame->key = key;
  frame->data = std::move(page);
  shard.bytes += frame->data->size();
  ++shard.inserts;
  LinkFront(shard, frame.get());
  std::shared_ptr<const std::string> out = frame->data;
  shard.frames.emplace(key, std::move(frame));
  EvictLocked(shard);
  return out;
}

void BufferPool::EvictLocked(Shard& shard) {
  // Walk from the cold end. Every step either evicts the frame or
  // re-warms a pinned one to the MRU end. Two bounds keep an insert
  // O(evicted) amortized even when the budget cannot be met: the scan
  // never exceeds one full pass, and it gives up after a run of
  // kMaxFruitlessProbes consecutive pinned frames — when live readers
  // pin more than the budget, burning the whole shard's LRU under the
  // lock on EVERY insert would serialize exactly the traffic the
  // shards exist to spread (the re-warmed pinned frames still migrate
  // off the cold end, so later inserts resume progress).
  constexpr size_t kMaxFruitlessProbes = 32;
  size_t examined = 0;
  size_t fruitless = 0;
  const size_t limit = shard.frames.size();
  while (shard.bytes > shard_budget_ && examined < limit &&
         fruitless < kMaxFruitlessProbes) {
    Frame* victim = shard.lru.prev;
    if (victim == &shard.lru) break;
    ++examined;
    if (victim->data.use_count() > 1) {
      // Referenced outside the pool (a live PageView or a caller-held
      // image): pinned. Never evicted; spare it and move on. use_count
      // is exact here: new references are only minted under this
      // shard's lock, so > 1 cannot turn into == 1 concurrently — at
      // worst a concurrent release makes us spare a frame one pass
      // longer than necessary.
      ++shard.pinned_skips;
      ++fruitless;
      Touch(shard, victim);
      continue;
    }
    fruitless = 0;
    shard.bytes -= victim->data->size();
    ++shard.evictions;
    Unlink(victim);
    // Copy the key out: erase(const key_type&) must not be handed a
    // reference into the node it is destroying.
    const PageImageKey victim_key = victim->key;
    shard.frames.erase(victim_key);
  }
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats out;
  for (size_t i = 0; i < kShards; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.inserts += shard.inserts;
    out.reinserts += shard.reinserts;
    out.evictions += shard.evictions;
    out.pinned_skips += shard.pinned_skips;
    out.bytes += shard.bytes;
    out.frames += shard.frames.size();
    for (const auto& [key, frame] : shard.frames) {
      if (frame->data.use_count() > 1) out.pinned_bytes += frame->data->size();
    }
  }
  return out;
}

}  // namespace bp::storage
