#include "storage/buffer_pool.hpp"

#include "obs/metrics.hpp"
#include "util/hash.hpp"
#include "util/mutex.hpp"
#include "util/require.hpp"
#include "util/thread_annotations.hpp"

namespace bp::storage {

namespace {

struct KeyHash {
  size_t operator()(const PageImageKey& key) const {
    // Mix64 gives full avalanche, so ShardFor's low bits are not at the
    // mercy of aligned offsets the way a plain xor-multiply would be.
    uint64_t h = util::HashCombine(
        (uint64_t{key.owner} << 32) | key.generation,
        (uint64_t{key.id} << 1) | (key.offset == kMainFileImage));
    return static_cast<size_t>(util::HashCombine(h, key.offset));
  }
};

}  // namespace

struct BufferPool::Shard {
  util::Mutex mu;
  std::unordered_map<PageImageKey, std::unique_ptr<Frame>, KeyHash> frames
      BP_GUARDED_BY(mu);
  // The intrusive links threaded through the frames are mu-guarded too,
  // but guarded_by cannot be spelled on Frame::prev/next (a Frame does
  // not know its shard); the sentinel annotation plus the BP_REQUIRES
  // on every function that walks the list covers them in practice.
  Frame lru BP_GUARDED_BY(mu);  // sentinel: next = MRU, prev = coldest
  // Cold tier: compressed demoted frames, same budget (shard.bytes
  // counts hot + cold together; cold_bytes is the cold share).
  std::unordered_map<PageImageKey, std::unique_ptr<ColdFrame>, KeyHash> cold
      BP_GUARDED_BY(mu);
  ColdFrame cold_lru BP_GUARDED_BY(mu);  // sentinel, same shape as lru
  uint64_t bytes BP_GUARDED_BY(mu) = 0;
  uint64_t cold_bytes BP_GUARDED_BY(mu) = 0;
  // Counters too (stats() locks each shard in turn).
  uint64_t hits BP_GUARDED_BY(mu) = 0;
  uint64_t misses BP_GUARDED_BY(mu) = 0;
  uint64_t inserts BP_GUARDED_BY(mu) = 0;
  uint64_t reinserts BP_GUARDED_BY(mu) = 0;
  uint64_t evictions BP_GUARDED_BY(mu) = 0;
  uint64_t pinned_skips BP_GUARDED_BY(mu) = 0;
  uint64_t cold_demotions BP_GUARDED_BY(mu) = 0;
  uint64_t cold_hits BP_GUARDED_BY(mu) = 0;
  uint64_t cold_evictions BP_GUARDED_BY(mu) = 0;

  Shard() {
    lru.prev = &lru;
    lru.next = &lru;
    cold_lru.prev = &cold_lru;
    cold_lru.next = &cold_lru;
  }
};

BufferPool::BufferPool(size_t byte_budget,
                       compress::CompressionOptions compression)
    : byte_budget_(byte_budget),
      shard_budget_(byte_budget / kShards),
      compression_(compression),
      shards_(new Shard[kShards]) {
  if (compression_.enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    compress_us_ = reg.GetHistogram(
        "bp_compress_us", "", "Cold-tier demotion compress latency (us)");
    decompress_us_ = reg.GetHistogram(
        "bp_decompress_us", "",
        "Main-file compressed page frame decode latency (us)");
  }
}

BufferPool::~BufferPool() = default;

uint32_t BufferPool::NextOwnerId() {
  static std::atomic<uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

BufferPool::Shard& BufferPool::ShardFor(const PageImageKey& key) {
  return shards_[KeyHash{}(key) & (kShards - 1)];
}

// LRU list surgery. File-local free functions (not members) so the
// annotations can name the shard's own mutex, which needs Shard to be a
// complete type — it never is at an in-class declaration.
namespace {

// Works on both node types (Frame and ColdFrame expose the same
// prev/next shape).
template <typename Node>
void Unlink(Node* node) {
  node->prev->next = node->next;
  node->next->prev = node->prev;
  node->prev = nullptr;
  node->next = nullptr;
}

void LinkFront(BufferPool::Shard& shard, BufferPool::Frame* frame)
    BP_REQUIRES(shard.mu) {
  frame->next = shard.lru.next;
  frame->prev = &shard.lru;
  shard.lru.next->prev = frame;
  shard.lru.next = frame;
}

void ColdLinkFront(BufferPool::Shard& shard, BufferPool::ColdFrame* frame)
    BP_REQUIRES(shard.mu) {
  frame->next = shard.cold_lru.next;
  frame->prev = &shard.cold_lru;
  shard.cold_lru.next->prev = frame;
  shard.cold_lru.next = frame;
}

// Unlinks `frame` and relinks it at the MRU end.
void Touch(BufferPool::Shard& shard, BufferPool::Frame* frame)
    BP_REQUIRES(shard.mu) {
  Unlink(frame);
  LinkFront(shard, frame);
}

// Ages out cold-tier frames, oldest first, until the shard is within
// its budget slice AND the cold tier within its half-budget cap (well-
// compressing workloads would otherwise fill the whole budget with
// tiny cold frames and starve the hot tier down to nothing).
// Unconditional: nothing outside the pool ever holds a cold frame, so
// there is no pinned state to respect.
void EvictColdUnderLock(BufferPool::Shard& shard, size_t shard_budget)
    BP_REQUIRES(shard.mu) {
  while (shard.bytes > shard_budget ||
         shard.cold_bytes > shard_budget / 2) {
    BufferPool::ColdFrame* victim = shard.cold_lru.prev;
    if (victim == &shard.cold_lru) break;
    shard.bytes -= victim->frame.size();
    shard.cold_bytes -= victim->frame.size();
    ++shard.cold_evictions;
    Unlink(victim);
    const PageImageKey victim_key = victim->key;
    shard.cold.erase(victim_key);
  }
}

// Evicts cold, unpinned frames until the shard is within its budget
// slice. With compression on, an evicted frame that compresses well is
// demoted into the cold tier instead of dropped (its compressed size
// still counts against the budget; the ratio floor guarantees each
// demotion is a net decrease, so the loop still converges).
void EvictUnderLock(BufferPool::Shard& shard, size_t shard_budget,
                    const compress::CompressionOptions& compression,
                    obs::Histogram* compress_us)
    BP_REQUIRES(shard.mu) {
  // Walk from the cold end. Every step either evicts the frame or
  // re-warms a pinned one to the MRU end. Two bounds keep an insert
  // O(evicted) amortized even when the budget cannot be met: the scan
  // never exceeds one full pass, and it gives up after a run of
  // kMaxFruitlessProbes consecutive pinned frames — when live readers
  // pin more than the budget, burning the whole shard's LRU under the
  // lock on EVERY insert would serialize exactly the traffic the
  // shards exist to spread (the re-warmed pinned frames still migrate
  // off the cold end, so later inserts resume progress).
  constexpr size_t kMaxFruitlessProbes = 32;
  size_t examined = 0;
  size_t fruitless = 0;
  const size_t limit = shard.frames.size();
  while (shard.bytes > shard_budget && examined < limit &&
         fruitless < kMaxFruitlessProbes) {
    BufferPool::Frame* victim = shard.lru.prev;
    if (victim == &shard.lru) break;
    ++examined;
    if (victim->data.use_count() > 1) {
      // Referenced outside the pool (a live PageView or a caller-held
      // image): pinned. Never evicted; spare it and move on. use_count
      // is exact here: new references are only minted under this
      // shard's lock, so > 1 cannot turn into == 1 concurrently — at
      // worst a concurrent release makes us spare a frame one pass
      // longer than necessary.
      ++shard.pinned_skips;
      ++fruitless;
      Touch(shard, victim);
      continue;
    }
    fruitless = 0;
    shard.bytes -= victim->data->size();
    ++shard.evictions;
    Unlink(victim);
    // Copy the key out: erase(const key_type&) must not be handed a
    // reference into the node it is destroying.
    const PageImageKey victim_key = victim->key;
    if (compression.enabled() && shard.cold.count(victim_key) == 0) {
      std::string cold_bytes;
      {
        obs::ScopedTimerUs timer(compress_us);
        cold_bytes = compress::MaybeCompressPage(compression, *victim->data);
      }
      if (!cold_bytes.empty()) {
        auto demoted = std::make_unique<BufferPool::ColdFrame>();
        demoted->key = victim_key;
        demoted->frame = std::move(cold_bytes);
        shard.bytes += demoted->frame.size();
        shard.cold_bytes += demoted->frame.size();
        ++shard.cold_demotions;
        ColdLinkFront(shard, demoted.get());
        shard.cold.emplace(victim_key, std::move(demoted));
      }
    }
    shard.frames.erase(victim_key);
  }
  EvictColdUnderLock(shard, shard_budget);
}

}  // namespace

std::shared_ptr<const std::string> BufferPool::Lookup(
    const PageImageKey& key) {
  Shard& shard = ShardFor(key);
  util::MutexLock lock(shard.mu);
  auto it = shard.frames.find(key);
  if (it != shard.frames.end()) {
    ++shard.hits;
    Touch(shard, it->second.get());
    return it->second->data;
  }
  auto cold_it = shard.cold.find(key);
  if (cold_it == shard.cold.end()) {
    ++shard.misses;
    return nullptr;
  }
  // Cold hit: decompress on pin and promote back to the hot tier.
  std::string raw;
  util::Status decoded;
  {
    obs::ScopedTimerUs timer(decompress_us_);
    decoded = compress::Decompress(cold_it->second->frame, &raw);
  }
  shard.bytes -= cold_it->second->frame.size();
  shard.cold_bytes -= cold_it->second->frame.size();
  Unlink(cold_it->second.get());
  shard.cold.erase(cold_it);
  if (!decoded.ok() || raw.size() != kPageSize) {
    // The checksum no longer verifies (in-memory corruption after
    // demotion). The image is a pure cache of durable bytes, so drop it
    // and report a miss — the caller re-reads the authoritative copy.
    ++shard.misses;
    return nullptr;
  }
  ++shard.cold_hits;
  auto frame = std::make_unique<Frame>();
  frame->key = key;
  frame->data = std::make_shared<const std::string>(std::move(raw));
  shard.bytes += frame->data->size();
  LinkFront(shard, frame.get());
  std::shared_ptr<const std::string> out = frame->data;
  shard.frames.emplace(key, std::move(frame));
  // `out` keeps the promoted frame's use_count above 1, so the scan
  // below sees it pinned and cannot evict what it just rebuilt.
  EvictUnderLock(shard, shard_budget_, compression_, compress_us_);
  return out;
}

std::shared_ptr<const std::string> BufferPool::Insert(
    const PageImageKey& key, std::shared_ptr<const std::string> page) {
  BP_CHECK(page != nullptr && page->size() == kPageSize,
           "pool frames are exactly one page");
  Shard& shard = ShardFor(key);
  util::MutexLock lock(shard.mu);
  auto it = shard.frames.find(key);
  if (it != shard.frames.end()) {
    // Another thread fetched the same image concurrently; keys name
    // immutable byte images, so the frames are identical — adopt the
    // resident one and let the caller's copy die.
    ++shard.reinserts;
    Touch(shard, it->second.get());
    return it->second->data;
  }
  auto frame = std::make_unique<Frame>();
  frame->key = key;
  frame->data = std::move(page);
  shard.bytes += frame->data->size();
  ++shard.inserts;
  LinkFront(shard, frame.get());
  std::shared_ptr<const std::string> out = frame->data;
  shard.frames.emplace(key, std::move(frame));
  EvictUnderLock(shard, shard_budget_, compression_, compress_us_);
  return out;
}

uint64_t BufferPool::DropOwner(uint32_t owner) {
  uint64_t dropped = 0;
  for (size_t i = 0; i < kShards; ++i) {
    Shard& shard = shards_[i];
    util::MutexLock lock(shard.mu);
    for (auto it = shard.frames.begin(); it != shard.frames.end();) {
      Frame* frame = it->second.get();
      if (frame->key.owner != owner || frame->data.use_count() > 1) {
        // Another owner's frame, or one still referenced outside the
        // pool (use_count is exact under the shard lock, same argument
        // as EvictUnderLock): leave it for the normal LRU to retire.
        ++it;
        continue;
      }
      shard.bytes -= frame->data->size();
      ++shard.evictions;
      Unlink(frame);
      it = shard.frames.erase(it);
      ++dropped;
    }
    for (auto it = shard.cold.begin(); it != shard.cold.end();) {
      // Cold frames are never pinned, so the owner's can all go.
      if (it->second->key.owner != owner) {
        ++it;
        continue;
      }
      shard.bytes -= it->second->frame.size();
      shard.cold_bytes -= it->second->frame.size();
      ++shard.cold_evictions;
      Unlink(it->second.get());
      it = shard.cold.erase(it);
      ++dropped;
    }
  }
  return dropped;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats out;
  for (size_t i = 0; i < kShards; ++i) {
    Shard& shard = shards_[i];
    util::MutexLock lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.inserts += shard.inserts;
    out.reinserts += shard.reinserts;
    out.evictions += shard.evictions;
    out.pinned_skips += shard.pinned_skips;
    out.bytes += shard.bytes;
    out.frames += shard.frames.size();
    out.cold_demotions += shard.cold_demotions;
    out.cold_hits += shard.cold_hits;
    out.cold_evictions += shard.cold_evictions;
    out.cold_bytes += shard.cold_bytes;
    out.cold_frames += shard.cold.size();
    for (const auto& [key, frame] : shard.frames) {
      if (frame->data.use_count() > 1) out.pinned_bytes += frame->data->size();
    }
  }
  return out;
}

}  // namespace bp::storage
