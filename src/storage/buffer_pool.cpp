#include "storage/buffer_pool.hpp"

#include "util/hash.hpp"
#include "util/mutex.hpp"
#include "util/require.hpp"
#include "util/thread_annotations.hpp"

namespace bp::storage {

namespace {

struct KeyHash {
  size_t operator()(const PageImageKey& key) const {
    // Mix64 gives full avalanche, so ShardFor's low bits are not at the
    // mercy of aligned offsets the way a plain xor-multiply would be.
    uint64_t h = util::HashCombine(
        (uint64_t{key.owner} << 32) | key.generation,
        (uint64_t{key.id} << 1) | (key.offset == kMainFileImage));
    return static_cast<size_t>(util::HashCombine(h, key.offset));
  }
};

}  // namespace

struct BufferPool::Shard {
  util::Mutex mu;
  std::unordered_map<PageImageKey, std::unique_ptr<Frame>, KeyHash> frames
      BP_GUARDED_BY(mu);
  // The intrusive links threaded through the frames are mu-guarded too,
  // but guarded_by cannot be spelled on Frame::prev/next (a Frame does
  // not know its shard); the sentinel annotation plus the BP_REQUIRES
  // on every function that walks the list covers them in practice.
  Frame lru BP_GUARDED_BY(mu);  // sentinel: next = MRU, prev = coldest
  uint64_t bytes BP_GUARDED_BY(mu) = 0;
  // Counters too (stats() locks each shard in turn).
  uint64_t hits BP_GUARDED_BY(mu) = 0;
  uint64_t misses BP_GUARDED_BY(mu) = 0;
  uint64_t inserts BP_GUARDED_BY(mu) = 0;
  uint64_t reinserts BP_GUARDED_BY(mu) = 0;
  uint64_t evictions BP_GUARDED_BY(mu) = 0;
  uint64_t pinned_skips BP_GUARDED_BY(mu) = 0;

  Shard() {
    lru.prev = &lru;
    lru.next = &lru;
  }
};

BufferPool::BufferPool(size_t byte_budget)
    : byte_budget_(byte_budget),
      shard_budget_(byte_budget / kShards),
      shards_(new Shard[kShards]) {}

BufferPool::~BufferPool() = default;

uint32_t BufferPool::NextOwnerId() {
  static std::atomic<uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

BufferPool::Shard& BufferPool::ShardFor(const PageImageKey& key) {
  return shards_[KeyHash{}(key) & (kShards - 1)];
}

// LRU list surgery. File-local free functions (not members) so the
// annotations can name the shard's own mutex, which needs Shard to be a
// complete type — it never is at an in-class declaration.
namespace {

void Unlink(BufferPool::Frame* frame) {
  frame->prev->next = frame->next;
  frame->next->prev = frame->prev;
  frame->prev = nullptr;
  frame->next = nullptr;
}

void LinkFront(BufferPool::Shard& shard, BufferPool::Frame* frame)
    BP_REQUIRES(shard.mu) {
  frame->next = shard.lru.next;
  frame->prev = &shard.lru;
  shard.lru.next->prev = frame;
  shard.lru.next = frame;
}

// Unlinks `frame` and relinks it at the MRU end.
void Touch(BufferPool::Shard& shard, BufferPool::Frame* frame)
    BP_REQUIRES(shard.mu) {
  Unlink(frame);
  LinkFront(shard, frame);
}

// Evicts cold, unpinned frames until the shard is within its budget
// slice.
void EvictUnderLock(BufferPool::Shard& shard, size_t shard_budget)
    BP_REQUIRES(shard.mu) {
  // Walk from the cold end. Every step either evicts the frame or
  // re-warms a pinned one to the MRU end. Two bounds keep an insert
  // O(evicted) amortized even when the budget cannot be met: the scan
  // never exceeds one full pass, and it gives up after a run of
  // kMaxFruitlessProbes consecutive pinned frames — when live readers
  // pin more than the budget, burning the whole shard's LRU under the
  // lock on EVERY insert would serialize exactly the traffic the
  // shards exist to spread (the re-warmed pinned frames still migrate
  // off the cold end, so later inserts resume progress).
  constexpr size_t kMaxFruitlessProbes = 32;
  size_t examined = 0;
  size_t fruitless = 0;
  const size_t limit = shard.frames.size();
  while (shard.bytes > shard_budget && examined < limit &&
         fruitless < kMaxFruitlessProbes) {
    BufferPool::Frame* victim = shard.lru.prev;
    if (victim == &shard.lru) break;
    ++examined;
    if (victim->data.use_count() > 1) {
      // Referenced outside the pool (a live PageView or a caller-held
      // image): pinned. Never evicted; spare it and move on. use_count
      // is exact here: new references are only minted under this
      // shard's lock, so > 1 cannot turn into == 1 concurrently — at
      // worst a concurrent release makes us spare a frame one pass
      // longer than necessary.
      ++shard.pinned_skips;
      ++fruitless;
      Touch(shard, victim);
      continue;
    }
    fruitless = 0;
    shard.bytes -= victim->data->size();
    ++shard.evictions;
    Unlink(victim);
    // Copy the key out: erase(const key_type&) must not be handed a
    // reference into the node it is destroying.
    const PageImageKey victim_key = victim->key;
    shard.frames.erase(victim_key);
  }
}

}  // namespace

std::shared_ptr<const std::string> BufferPool::Lookup(
    const PageImageKey& key) {
  Shard& shard = ShardFor(key);
  util::MutexLock lock(shard.mu);
  auto it = shard.frames.find(key);
  if (it == shard.frames.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  Touch(shard, it->second.get());
  return it->second->data;
}

std::shared_ptr<const std::string> BufferPool::Insert(
    const PageImageKey& key, std::shared_ptr<const std::string> page) {
  BP_CHECK(page != nullptr && page->size() == kPageSize,
           "pool frames are exactly one page");
  Shard& shard = ShardFor(key);
  util::MutexLock lock(shard.mu);
  auto it = shard.frames.find(key);
  if (it != shard.frames.end()) {
    // Another thread fetched the same image concurrently; keys name
    // immutable byte images, so the frames are identical — adopt the
    // resident one and let the caller's copy die.
    ++shard.reinserts;
    Touch(shard, it->second.get());
    return it->second->data;
  }
  auto frame = std::make_unique<Frame>();
  frame->key = key;
  frame->data = std::move(page);
  shard.bytes += frame->data->size();
  ++shard.inserts;
  LinkFront(shard, frame.get());
  std::shared_ptr<const std::string> out = frame->data;
  shard.frames.emplace(key, std::move(frame));
  EvictUnderLock(shard, shard_budget_);
  return out;
}

uint64_t BufferPool::DropOwner(uint32_t owner) {
  uint64_t dropped = 0;
  for (size_t i = 0; i < kShards; ++i) {
    Shard& shard = shards_[i];
    util::MutexLock lock(shard.mu);
    for (auto it = shard.frames.begin(); it != shard.frames.end();) {
      Frame* frame = it->second.get();
      if (frame->key.owner != owner || frame->data.use_count() > 1) {
        // Another owner's frame, or one still referenced outside the
        // pool (use_count is exact under the shard lock, same argument
        // as EvictUnderLock): leave it for the normal LRU to retire.
        ++it;
        continue;
      }
      shard.bytes -= frame->data->size();
      ++shard.evictions;
      Unlink(frame);
      it = shard.frames.erase(it);
      ++dropped;
    }
  }
  return dropped;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats out;
  for (size_t i = 0; i < kShards; ++i) {
    Shard& shard = shards_[i];
    util::MutexLock lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.inserts += shard.inserts;
    out.reinserts += shard.reinserts;
    out.evictions += shard.evictions;
    out.pinned_skips += shard.pinned_skips;
    out.bytes += shard.bytes;
    out.frames += shard.frames.size();
    for (const auto& [key, frame] : shard.frames) {
      if (frame->data.use_count() > 1) out.pinned_bytes += frame->data->size();
    }
  }
  return out;
}

}  // namespace bp::storage
