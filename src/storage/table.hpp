// Typed row storage and secondary indexes over B+trees.
//
// Table<Row> stores rows keyed by an auto-assigned uint64 id (big-endian
// encoded so scans return insertion order). RowCodec<Row> must be
// specialized per row type:
//
//   template <> struct RowCodec<MyRow> {
//     static void Encode(const MyRow& row, util::Writer& w);
//     static util::Result<MyRow> Decode(util::Reader& r);
//   };
//
// Index maps string keys to row ids (multi-map). Entry layout is
// key + '\0' + big-endian row id, which keeps entries grouped by key and
// ordered by id; user keys must therefore not contain NUL bytes (numeric
// composite keys should use OrderedKeyU64Pair on a raw BTree instead).
//
// Snapshot reads: Table and Index are thin typed views over a BTree, so
// constructing them over a snapshot-bound handle (BTree::BoundAt) makes
// every Get/Scan/Cursor/FirstEqual read through that storage::Snapshot —
// safe on reader threads while the writer commits — and every mutation
// a contract violation. No separate plumbing is needed here.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "storage/btree.hpp"
#include "util/require.hpp"
#include "util/serde.hpp"
#include "util/status.hpp"

namespace bp::storage {

template <typename Row>
struct RowCodec;  // specialize per row type

namespace internal {
// Row id 0 is reserved for the id-allocator cell.
inline const std::string kMetaKey = util::OrderedKeyU64(0);
}  // namespace internal

template <typename Row>
class Table {
 public:
  explicit Table(BTree* tree) : tree_(tree) {
    BP_REQUIRE(tree != nullptr);
  }

  // Appends a row, returning its assigned id (ids start at 1 and are
  // never reused).
  util::Result<uint64_t> Insert(const Row& row) {
    uint64_t id = 1;
    auto meta = tree_->Get(internal::kMetaKey);
    if (meta.ok()) {
      util::Reader r(*meta);
      id = r.ReadU64();
      BP_RETURN_IF_ERROR(r.Finish());
    } else if (!meta.status().IsNotFound()) {
      return meta.status();
    }
    BP_RETURN_IF_ERROR(Put(id, row));
    util::Writer w;
    w.PutU64(id + 1);
    BP_RETURN_IF_ERROR(tree_->Put(internal::kMetaKey, w.data()));
    return id;
  }

  util::Status Put(uint64_t id, const Row& row) {
    BP_REQUIRE(id != 0, "row id 0 is reserved");
    util::Writer w;
    RowCodec<Row>::Encode(row, w);
    return tree_->Put(util::OrderedKeyU64(id), w.data());
  }

  util::Result<Row> Get(uint64_t id) const {
    BP_ASSIGN_OR_RETURN(std::string raw,
                        tree_->Get(util::OrderedKeyU64(id)));
    util::Reader r(raw);
    BP_ASSIGN_OR_RETURN(Row row, RowCodec<Row>::Decode(r));
    BP_RETURN_IF_ERROR(r.Finish());
    return row;
  }

  util::Status Delete(uint64_t id) {
    return tree_->Delete(util::OrderedKeyU64(id));
  }

  util::Result<bool> Contains(uint64_t id) const {
    return tree_->Contains(util::OrderedKeyU64(id));
  }

  // Forward iterator over rows in id order, skipping the allocator cell.
  // Decode is lazy: row() parses the encoded bytes only when called, so
  // scans that filter on id alone never pay it.
  //
  //   for (auto cur = table.Scan(); cur.Valid(); cur.Next()) { ... }
  //   BP_RETURN_IF_ERROR(cur.status());
  class Cursor {
   public:
    Cursor() = default;

    // Positions at the first row with id >= `min_id`.
    void Seek(uint64_t min_id) {
      inner_.Seek(util::OrderedKeyU64(std::max<uint64_t>(min_id, 1)));
      SkipMeta();
    }

    void Next() {
      inner_.Next();
      SkipMeta();
    }
    bool Valid() const { return inner_.Valid(); }
    const util::Status& status() const { return inner_.status(); }
    uint64_t rows_scanned() const { return inner_.rows_scanned(); }

    uint64_t id() const { return util::DecodeOrderedKeyU64(inner_.key()); }
    std::string_view raw() const { return inner_.value(); }
    util::Result<Row> row() const {
      util::Reader r(inner_.value());
      BP_ASSIGN_OR_RETURN(Row row, RowCodec<Row>::Decode(r));
      BP_RETURN_IF_ERROR(r.Finish());
      return row;
    }

   private:
    friend class Table;
    explicit Cursor(BTree::Cursor inner) : inner_(std::move(inner)) {}
    void SkipMeta() {
      while (inner_.Valid() && inner_.key() == internal::kMetaKey) {
        inner_.Next();
      }
    }
    BTree::Cursor inner_;
  };

  // Cursor over rows with id >= `min_id` (default: all rows).
  Cursor Scan(uint64_t min_id = 1) const {
    Cursor cur(tree_->NewCursor());
    cur.Seek(min_id);
    return cur;
  }

  // In-order scan; `fn` returns false to stop. Decode failures abort the
  // scan with Corruption. DEPRECATED: thin wrapper over Scan().
  util::Status ForEach(
      const std::function<bool(uint64_t id, const Row& row)>& fn) const {
    util::Status decode_status;
    util::Status scan_status = tree_->ForEach(
        [&](std::string_view key, std::string_view value) {
          uint64_t id = util::DecodeOrderedKeyU64(key);
          if (id == 0) return true;  // allocator cell
          util::Reader r(value);
          auto row = RowCodec<Row>::Decode(r);
          if (!row.ok()) {
            decode_status = row.status();
            return false;
          }
          return fn(id, *row);
        });
    BP_RETURN_IF_ERROR(scan_status);
    return decode_status;
  }

  util::Result<uint64_t> Count() const {
    BP_ASSIGN_OR_RETURN(uint64_t n, tree_->Count());
    // Exclude the allocator cell when present.
    auto meta = tree_->Contains(internal::kMetaKey);
    BP_RETURN_IF_ERROR(meta.status());
    return *meta ? n - 1 : n;
  }

  BTree* tree() { return tree_; }

 private:
  BTree* tree_;
};

// Secondary index: string key -> set of row ids.
class Index {
 public:
  explicit Index(BTree* tree) : tree_(tree) {
    BP_REQUIRE(tree != nullptr);
  }

  util::Status Add(std::string_view key, uint64_t row_id) {
    return tree_->Put(Entry(key, row_id), {});
  }

  util::Status Remove(std::string_view key, uint64_t row_id) {
    return tree_->Delete(Entry(key, row_id));
  }

  // Smallest row id mapped to exactly `key`, or 0 when the key is absent
  // (row ids start at 1). The point-lookup path for unique indexes.
  util::Result<uint64_t> FirstEqual(std::string_view key) const {
    std::string prefix(key);
    prefix.push_back('\0');
    BTree::Cursor cur = tree_->NewCursor();
    cur.SeekPrefix(prefix);
    BP_RETURN_IF_ERROR(cur.status());
    if (!cur.Valid()) return uint64_t{0};
    return util::DecodeOrderedKeyU64(
        cur.key().substr(cur.key().size() - 8));
  }

  // Row ids for exactly `key`, ascending.
  util::Status ForEachEqual(
      std::string_view key,
      const std::function<bool(uint64_t row_id)>& fn) const {
    std::string prefix(key);
    prefix.push_back('\0');
    return tree_->ForEachPrefix(
        prefix, [&](std::string_view entry, std::string_view) {
          return fn(util::DecodeOrderedKeyU64(
              entry.substr(entry.size() - 8)));
        });
  }

  // All (key, row id) pairs whose key starts with `key_prefix`,
  // ascending by key then id.
  util::Status ForEachPrefix(
      std::string_view key_prefix,
      const std::function<bool(std::string_view key, uint64_t row_id)>& fn)
      const {
    return tree_->ForEachPrefix(
        key_prefix, [&](std::string_view entry, std::string_view) {
          BP_CHECK(entry.size() >= 9, "malformed index entry");
          std::string_view key = entry.substr(0, entry.size() - 9);
          uint64_t id =
              util::DecodeOrderedKeyU64(entry.substr(entry.size() - 8));
          return fn(key, id);
        });
  }

  util::Result<bool> Contains(std::string_view key, uint64_t row_id) const {
    return tree_->Contains(Entry(key, row_id));
  }

 private:
  static std::string Entry(std::string_view key, uint64_t row_id) {
    BP_REQUIRE(key.find('\0') == std::string_view::npos,
               "index keys must not contain NUL");
    std::string entry(key);
    entry.push_back('\0');
    entry += util::OrderedKeyU64(row_id);
    return entry;
  }

  BTree* tree_;
};

}  // namespace bp::storage
