#include "storage/btree.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/require.hpp"
#include "util/serde.hpp"
#include "util/strings.hpp"

namespace bp::storage {

using util::Reader;
using util::Result;
using util::Status;
using util::Writer;

namespace {

// ----------------------------------------------------------- page layout
//
//  0: u8  type (1 leaf, 2 interior, 3 overflow)
//  1: u8  unused
//  2: u16 ncells
//  4: u16 content_start (cells grow down from kPageSize)
//  6: u16 frag bytes (dead cell bytes; compacted on demand)
//  8: u32 aux   (leaf: next leaf | interior: rightmost child |
//                overflow: next overflow page)
// 12: u32 aux2  (leaf: prev leaf | overflow: payload byte count)
// 16: u16 cell_ptrs[ncells], then free space, then cell content.

constexpr uint8_t kTypeLeaf = 1;
constexpr uint8_t kTypeInterior = 2;
constexpr uint8_t kTypeOverflow = 3;

constexpr size_t kNodeHeader = 16;
constexpr size_t kOverflowCapacity = kPageSize - kNodeHeader;
// Encoded cells above this size spill their value to overflow pages.
// 1024 guarantees >= 2 cells per leaf even in the worst case.
constexpr size_t kMaxCellSize = 1024;

uint16_t GetU16(const char* p, size_t off) {
  return static_cast<uint16_t>(static_cast<uint8_t>(p[off]) |
                               (static_cast<uint8_t>(p[off + 1]) << 8));
}
void SetU16(char* p, size_t off, uint16_t v) {
  p[off] = static_cast<char>(v & 0xff);
  p[off + 1] = static_cast<char>(v >> 8);
}
uint32_t GetU32(const char* p, size_t off) {
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[off + i])) << (8 * i);
  }
  return v;
}
void SetU32(char* p, size_t off, uint32_t v) {
  for (size_t i = 0; i < 4; ++i) {
    p[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

uint8_t NodeType(const char* p) { return static_cast<uint8_t>(p[0]); }
uint16_t NCells(const char* p) { return GetU16(p, 2); }
uint16_t ContentStart(const char* p) { return GetU16(p, 4); }
uint16_t Frag(const char* p) { return GetU16(p, 6); }
uint32_t Aux(const char* p) { return GetU32(p, 8); }
uint32_t Aux2(const char* p) { return GetU32(p, 12); }
void SetNCells(char* p, uint16_t v) { SetU16(p, 2, v); }
void SetContentStart(char* p, uint16_t v) { SetU16(p, 4, v); }
void SetFrag(char* p, uint16_t v) { SetU16(p, 6, v); }
void SetAux(char* p, uint32_t v) { SetU32(p, 8, v); }
void SetAux2(char* p, uint32_t v) { SetU32(p, 12, v); }

void InitNode(char* p, uint8_t type) {
  std::memset(p, 0, kNodeHeader);
  p[0] = static_cast<char>(type);
  SetContentStart(p, static_cast<uint16_t>(kPageSize));
}

uint16_t CellPtr(const char* p, uint32_t i) {
  return GetU16(p, kNodeHeader + 2 * i);
}
void SetCellPtr(char* p, uint32_t i, uint16_t v) {
  SetU16(p, kNodeHeader + 2 * i, v);
}

// View of cell bytes from the cell's start to the end of the page; the
// parser knows where the cell actually ends.
std::string_view CellBytes(const char* p, uint32_t i) {
  uint16_t off = CellPtr(p, i);
  return std::string_view(p + off, kPageSize - off);
}

size_t FreeSpace(const char* p) {
  return ContentStart(p) - (kNodeHeader + 2 * size_t{NCells(p)});
}

// -------------------------------------------------------------- cells

struct LeafCell {
  std::string_view key;
  bool is_overflow = false;
  std::string_view inline_value;  // when !is_overflow
  uint64_t total_len = 0;         // when is_overflow
  PageId first_overflow = kNoPage;
  size_t size = 0;  // encoded length
};

struct InteriorCell {
  std::string_view key;
  PageId child = kNoPage;
  size_t size = 0;
};

// The page is trusted (we wrote it); corruption manifests as BP_CHECK
// failures rather than Status because it indicates an engine bug or
// on-disk damage past the checksummed journal.
LeafCell ParseLeafCell(std::string_view bytes) {
  Reader r(bytes);
  LeafCell cell;
  cell.key = r.ReadString();
  uint8_t kind = r.ReadU8();
  if (kind == 0) {
    cell.inline_value = r.ReadString();
    cell.total_len = cell.inline_value.size();
  } else {
    cell.is_overflow = true;
    cell.total_len = r.ReadVarint64();
    cell.first_overflow = r.ReadU32();
  }
  BP_CHECK(r.ok(), "malformed leaf cell");
  cell.size = r.position();
  return cell;
}

InteriorCell ParseInteriorCell(std::string_view bytes) {
  Reader r(bytes);
  InteriorCell cell;
  cell.key = r.ReadString();
  cell.child = r.ReadU32();
  BP_CHECK(r.ok(), "malformed interior cell");
  cell.size = r.position();
  return cell;
}

size_t CellSize(uint8_t page_type, std::string_view bytes) {
  return page_type == kTypeLeaf ? ParseLeafCell(bytes).size
                                : ParseInteriorCell(bytes).size;
}

std::string_view CellKey(uint8_t page_type, std::string_view bytes) {
  return page_type == kTypeLeaf ? ParseLeafCell(bytes).key
                                : ParseInteriorCell(bytes).key;
}

std::string EncodeLeafCellInline(std::string_view key,
                                 std::string_view value) {
  Writer w;
  w.PutString(key);
  w.PutU8(0);
  w.PutString(value);
  return std::move(w).data();
}

std::string EncodeLeafCellOverflow(std::string_view key, uint64_t total_len,
                                   PageId first) {
  Writer w;
  w.PutString(key);
  w.PutU8(1);
  w.PutVarint64(total_len);
  w.PutU32(first);
  return std::move(w).data();
}

std::string EncodeInteriorCell(std::string_view key, PageId child) {
  Writer w;
  w.PutString(key);
  w.PutU32(child);
  return std::move(w).data();
}

void Compact(char* p) {
  const uint8_t type = NodeType(p);
  const uint16_t n = NCells(p);
  std::vector<std::string> cells;
  cells.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string_view bytes = CellBytes(p, i);
    cells.emplace_back(bytes.substr(0, CellSize(type, bytes)));
  }
  uint16_t content = static_cast<uint16_t>(kPageSize);
  for (uint32_t i = 0; i < n; ++i) {
    content = static_cast<uint16_t>(content - cells[i].size());
    std::memcpy(p + content, cells[i].data(), cells[i].size());
    SetCellPtr(p, i, content);
  }
  SetContentStart(p, content);
  SetFrag(p, 0);
}

// Inserts `cell` as cell index `i`, compacting first if fragmentation
// permits. Returns false when the page genuinely cannot hold the cell
// (caller must split).
bool InsertCellAt(char* p, uint32_t i, std::string_view cell) {
  const size_t need = cell.size() + 2;
  if (FreeSpace(p) < need) {
    if (FreeSpace(p) + Frag(p) < need) return false;
    Compact(p);
  }
  const uint16_t n = NCells(p);
  BP_CHECK(i <= n);
  uint16_t content = static_cast<uint16_t>(ContentStart(p) - cell.size());
  std::memcpy(p + content, cell.data(), cell.size());
  SetContentStart(p, content);
  // Shift the pointer array open at i.
  std::memmove(p + kNodeHeader + 2 * (i + 1), p + kNodeHeader + 2 * i,
               2 * size_t{static_cast<uint16_t>(n - i)});
  SetCellPtr(p, i, content);
  SetNCells(p, static_cast<uint16_t>(n + 1));
  return true;
}

void RemoveCellAt(char* p, uint32_t i, size_t cell_size) {
  const uint16_t n = NCells(p);
  BP_CHECK(i < n);
  SetFrag(p, static_cast<uint16_t>(Frag(p) + cell_size));
  std::memmove(p + kNodeHeader + 2 * i, p + kNodeHeader + 2 * (i + 1),
               2 * size_t{static_cast<uint16_t>(n - i - 1)});
  SetNCells(p, static_cast<uint16_t>(n - 1));
}

// First cell index whose key is >= `key` (== ncells when none).
uint32_t LowerBound(const char* p, std::string_view key) {
  const uint8_t type = NodeType(p);
  uint32_t lo = 0;
  uint32_t hi = NCells(p);
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (CellKey(type, CellBytes(p, mid)) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child to descend into for `key`: the first separator >= key, else the
// rightmost (aux) child. ref_index == ncells denotes aux.
std::pair<uint32_t, PageId> FindChild(const char* p, std::string_view key) {
  uint32_t idx = LowerBound(p, key);
  if (idx < NCells(p)) {
    return {idx, ParseInteriorCell(CellBytes(p, idx)).child};
  }
  return {idx, Aux(p)};
}

// Rewrites the child pointer of interior cell i in place (the child is
// the trailing 4 bytes of the cell encoding).
void SetInteriorCellChild(char* p, uint32_t i, PageId child) {
  std::string_view bytes = CellBytes(p, i);
  size_t size = ParseInteriorCell(bytes).size;
  SetU32(p, CellPtr(p, i) + size - 4, child);
}

}  // namespace

// ------------------------------------------------------------ lifecycle

Result<PageView> BTree::FetchPage(PageId id) const {
  if (snap_ != nullptr) {
    BP_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> page,
                        snap_->ReadPage(id));
    return PageView(std::move(page));
  }
  BP_ASSIGN_OR_RETURN(PageRef ref, pager_.Get(id));
  return PageView(std::move(ref));
}

Result<PageId> BTree::Create(Pager& pager) {
  BP_REQUIRE(pager.InTransaction(), "BTree::Create requires a transaction");
  BP_ASSIGN_OR_RETURN(PageId root, pager.Allocate());
  BP_ASSIGN_OR_RETURN(PageRef ref, pager.GetMutable(root));
  InitNode(ref.mutable_data(), kTypeLeaf);
  return root;
}

// ------------------------------------------------------------- overflow

Result<PageId> BTree::WriteOverflowChain(std::string_view value) {
  // Build back to front so each page can point at its successor.
  PageId next = kNoPage;
  size_t nchunks = (value.size() + kOverflowCapacity - 1) / kOverflowCapacity;
  BP_CHECK(nchunks >= 1);
  for (size_t i = nchunks; i-- > 0;) {
    size_t off = i * kOverflowCapacity;
    size_t len = std::min(kOverflowCapacity, value.size() - off);
    BP_ASSIGN_OR_RETURN(PageId id, pager_.Allocate());
    BP_ASSIGN_OR_RETURN(PageRef ref, pager_.GetMutable(id));
    InitNode(ref.mutable_data(), kTypeOverflow);
    SetAux(ref.mutable_data(), next);
    SetAux2(ref.mutable_data(), static_cast<uint32_t>(len));
    std::memcpy(ref.mutable_data() + kNodeHeader, value.data() + off, len);
    next = id;
  }
  return next;
}

Result<std::string> BTree::ReadOverflowChain(PageId first,
                                             uint64_t total_len) const {
  std::string out;
  out.reserve(total_len);
  PageId page = first;
  while (page != kNoPage && out.size() < total_len) {
    BP_ASSIGN_OR_RETURN(PageView ref, FetchPage(page));
    if (NodeType(ref.data()) != kTypeOverflow) {
      return Status::Corruption("overflow chain hits a non-overflow page");
    }
    uint32_t len = Aux2(ref.data());
    out.append(ref.data() + kNodeHeader, len);
    page = Aux(ref.data());
  }
  if (out.size() != total_len) {
    return Status::Corruption(util::StrFormat(
        "overflow chain length mismatch: want %llu got %zu",
        (unsigned long long)total_len, out.size()));
  }
  return out;
}

Status BTree::FreeOverflowChain(PageId first) {
  PageId page = first;
  while (page != kNoPage) {
    PageId next;
    {
      BP_ASSIGN_OR_RETURN(PageRef ref, pager_.Get(page));
      next = Aux(ref.data());
    }
    BP_RETURN_IF_ERROR(pager_.Free(page));
    page = next;
  }
  return Status::Ok();
}

Status BTree::FreeLeafCellPayload(std::string_view cell_bytes) {
  LeafCell cell = ParseLeafCell(cell_bytes);
  if (cell.is_overflow) {
    return FreeOverflowChain(cell.first_overflow);
  }
  return Status::Ok();
}

// --------------------------------------------------------------- insert

Status BTree::Put(std::string_view key, std::string_view value) {
  BP_REQUIRE(snap_ == nullptr, "Put on a snapshot-bound tree");
  BP_REQUIRE(!key.empty(), "empty keys are not supported");
  BP_REQUIRE(key.size() <= kMaxKeySize, "key exceeds kMaxKeySize");
  AutoTxn txn(pager_);
  auto result = InsertRec(root_, key, value);
  if (!result.ok()) return result.status();
  if (result->split) {
    BP_RETURN_IF_ERROR(SplitRootIfNeeded(*result));
  }
  return txn.Commit();
}

Result<BTree::SplitResult> BTree::InsertRec(PageId page_id,
                                            std::string_view key,
                                            std::string_view value) {
  // Descend with a read-only fetch: interior pages are dirtied only when
  // a child split bubbles up into them.
  bool is_interior;
  uint32_t ref_index;
  PageId child = kNoPage;
  {
    BP_ASSIGN_OR_RETURN(PageRef peek, pager_.Get(page_id));
    is_interior = NodeType(peek.data()) == kTypeInterior;
    if (is_interior) {
      std::tie(ref_index, child) = FindChild(peek.data(), key);
    }
  }

  if (is_interior) {
    BP_CHECK(child != kNoPage, "interior node with no child for key");
    BP_ASSIGN_OR_RETURN(SplitResult child_split,
                        InsertRec(child, key, value));
    if (!child_split.split) return SplitResult{};

    BP_ASSIGN_OR_RETURN(PageRef ref, pager_.GetMutable(page_id));
    char* p = ref.mutable_data();

    // The child kept its low half; the high half moved to new_right. The
    // existing reference (whose separator still bounds the high half)
    // must point at new_right, and a new cell (separator, child) routes
    // the low half.
    if (ref_index < NCells(p)) {
      SetInteriorCellChild(p, ref_index, child_split.new_right);
    } else {
      SetAux(p, child_split.new_right);
    }
    std::string cell = EncodeInteriorCell(child_split.separator, child);
    if (InsertCellAt(p, ref_index, cell)) return SplitResult{};

    // Split this interior node: promote the byte-weighted middle cell.
    const uint16_t n = NCells(p);
    std::vector<std::string> cells;
    cells.reserve(n + 1);
    size_t total = 0;
    for (uint32_t i = 0; i < n; ++i) {
      std::string_view bytes = CellBytes(p, i);
      cells.emplace_back(bytes.substr(0, ParseInteriorCell(bytes).size));
      total += cells.back().size();
    }
    cells.insert(cells.begin() + ref_index, cell);
    total += cell.size();
    BP_CHECK(cells.size() >= 3, "interior split with too few cells");

    size_t acc = 0;
    uint32_t mid = 0;
    for (uint32_t i = 0; i < cells.size(); ++i) {
      acc += cells[i].size();
      if (acc * 2 >= total) {
        mid = i;
        break;
      }
    }
    // Append-order heuristic (see the leaf split): sequential separator
    // inserts keep interior pages full too.
    if (ref_index == cells.size() - 1) {
      mid = static_cast<uint32_t>(cells.size()) - 2;
    }
    mid = std::clamp<uint32_t>(mid, 1, static_cast<uint32_t>(cells.size()) - 2);

    const PageId old_aux = Aux(p);
    const InteriorCell promoted = ParseInteriorCell(cells[mid]);
    const std::string promoted_key(promoted.key);

    BP_ASSIGN_OR_RETURN(PageId right_id, pager_.Allocate());
    BP_ASSIGN_OR_RETURN(PageRef right_ref, pager_.GetMutable(right_id));
    char* rp = right_ref.mutable_data();
    InitNode(rp, kTypeInterior);
    for (uint32_t i = mid + 1; i < cells.size(); ++i) {
      BP_CHECK(InsertCellAt(rp, i - mid - 1, cells[i]));
    }
    SetAux(rp, old_aux);

    InitNode(p, kTypeInterior);
    for (uint32_t i = 0; i < mid; ++i) {
      BP_CHECK(InsertCellAt(p, i, cells[i]));
    }
    SetAux(p, promoted.child);

    SplitResult out;
    out.split = true;
    out.separator = promoted_key;
    out.new_right = right_id;
    return out;
  }

  BP_ASSIGN_OR_RETURN(PageRef ref, pager_.GetMutable(page_id));
  char* p = ref.mutable_data();
  BP_CHECK(NodeType(p) == kTypeLeaf, "unexpected page type in descent");

  uint32_t pos = LowerBound(p, key);
  if (pos < NCells(p)) {
    std::string_view bytes = CellBytes(p, pos);
    LeafCell existing = ParseLeafCell(bytes);
    if (existing.key == key) {
      BP_RETURN_IF_ERROR(FreeLeafCellPayload(bytes));
      RemoveCellAt(p, pos, existing.size);
    }
  }

  std::string cell = EncodeLeafCellInline(key, value);
  if (cell.size() > kMaxCellSize) {
    BP_ASSIGN_OR_RETURN(PageId first, WriteOverflowChain(value));
    cell = EncodeLeafCellOverflow(key, value.size(), first);
  }
  if (InsertCellAt(p, pos, cell)) return SplitResult{};

  // Split the leaf around the byte-weighted midpoint.
  const uint16_t n = NCells(p);
  std::vector<std::string> cells;
  cells.reserve(n + 1);
  size_t total = 0;
  for (uint32_t i = 0; i < n; ++i) {
    std::string_view bytes = CellBytes(p, i);
    cells.emplace_back(bytes.substr(0, ParseLeafCell(bytes).size));
    total += cells.back().size();
  }
  cells.insert(cells.begin() + pos, cell);
  total += cell.size();
  BP_CHECK(cells.size() >= 2, "leaf split with too few cells");

  size_t acc = 0;
  uint32_t split_at = 0;
  for (uint32_t i = 0; i < cells.size(); ++i) {
    acc += cells[i].size();
    if (acc * 2 >= total) {
      split_at = i + 1;
      break;
    }
  }
  // Append-order heuristic (as in SQLite): when the new cell lands at the
  // very end (sequential keys — the common case for row ids and
  // adjacency), keep the left page full and start a fresh right page,
  // giving ~100% fill instead of ~50%. Mirror case for descending loads.
  if (pos == cells.size() - 1) {
    split_at = static_cast<uint32_t>(cells.size()) - 1;
  } else if (pos == 0) {
    split_at = 1;
  }
  split_at =
      std::clamp<uint32_t>(split_at, 1, static_cast<uint32_t>(cells.size()) - 1);

  const PageId old_next = Aux(p);
  const PageId old_prev = Aux2(p);

  BP_ASSIGN_OR_RETURN(PageId right_id, pager_.Allocate());
  BP_ASSIGN_OR_RETURN(PageRef right_ref, pager_.GetMutable(right_id));
  char* rp = right_ref.mutable_data();
  InitNode(rp, kTypeLeaf);
  for (uint32_t i = split_at; i < cells.size(); ++i) {
    BP_CHECK(InsertCellAt(rp, i - split_at, cells[i]));
  }
  SetAux(rp, old_next);
  SetAux2(rp, page_id);

  InitNode(p, kTypeLeaf);
  for (uint32_t i = 0; i < split_at; ++i) {
    BP_CHECK(InsertCellAt(p, i, cells[i]));
  }
  SetAux(p, right_id);
  SetAux2(p, old_prev);

  if (old_next != kNoPage) {
    BP_ASSIGN_OR_RETURN(PageRef next_ref, pager_.GetMutable(old_next));
    SetAux2(next_ref.mutable_data(), right_id);
  }

  SplitResult out;
  out.split = true;
  out.separator = std::string(ParseLeafCell(cells[split_at - 1]).key);
  out.new_right = right_id;
  return out;
}

Status BTree::SplitRootIfNeeded(const SplitResult& split) {
  BP_CHECK(split.split);
  // The root id must stay stable: move the root's (low-half) content to a
  // fresh "left" page and rewrite the root as an interior node over
  // {left, new_right}.
  BP_ASSIGN_OR_RETURN(PageId left_id, pager_.Allocate());
  BP_ASSIGN_OR_RETURN(PageRef root_ref, pager_.GetMutable(root_));
  BP_ASSIGN_OR_RETURN(PageRef left_ref, pager_.GetMutable(left_id));
  std::memcpy(left_ref.mutable_data(), root_ref.data(), kPageSize);

  if (NodeType(left_ref.data()) == kTypeLeaf) {
    // The old root was the leftmost leaf; its successor's back link still
    // names the root page.
    PageId next = Aux(left_ref.data());
    if (next != kNoPage) {
      BP_ASSIGN_OR_RETURN(PageRef next_ref, pager_.GetMutable(next));
      SetAux2(next_ref.mutable_data(), left_id);
    }
  }

  char* p = root_ref.mutable_data();
  InitNode(p, kTypeInterior);
  std::string cell = EncodeInteriorCell(split.separator, left_id);
  BP_CHECK(InsertCellAt(p, 0, cell));
  SetAux(p, split.new_right);
  return Status::Ok();
}

// --------------------------------------------------------------- lookup

Result<PageId> BTree::LeafForKey(std::string_view key,
                                 std::vector<DescentRef>* path) const {
  PageId page_id = root_;
  while (true) {
    BP_ASSIGN_OR_RETURN(PageView ref, FetchPage(page_id));
    const char* p = ref.data();
    if (NodeType(p) == kTypeLeaf) return page_id;
    BP_CHECK(NodeType(p) == kTypeInterior);
    auto [ref_index, child] = FindChild(p, key);
    BP_CHECK(child != kNoPage);
    if (path != nullptr) {
      path->push_back(DescentRef{page_id, ref_index});
    }
    page_id = child;
  }
}

Result<std::string> BTree::Get(std::string_view key) const {
  BP_ASSIGN_OR_RETURN(PageId leaf_id, LeafForKey(key, nullptr));
  BP_ASSIGN_OR_RETURN(PageView ref, FetchPage(leaf_id));
  const char* p = ref.data();
  uint32_t pos = LowerBound(p, key);
  if (pos >= NCells(p)) return Status::NotFound();
  LeafCell cell = ParseLeafCell(CellBytes(p, pos));
  if (cell.key != key) return Status::NotFound();
  if (cell.is_overflow) {
    return ReadOverflowChain(cell.first_overflow, cell.total_len);
  }
  return std::string(cell.inline_value);
}

Result<bool> BTree::Contains(std::string_view key) const {
  auto v = Get(key);
  if (v.ok()) return true;
  if (v.status().IsNotFound()) return false;
  return v.status();
}

// --------------------------------------------------------------- delete

Status BTree::Delete(std::string_view key) {
  BP_REQUIRE(snap_ == nullptr, "Delete on a snapshot-bound tree");
  AutoTxn txn(pager_);
  std::vector<DescentRef> path;
  auto leaf_or = LeafForKey(key, &path);
  if (!leaf_or.ok()) return leaf_or.status();
  PageId cur = *leaf_or;

  {
    BP_ASSIGN_OR_RETURN(PageRef ref, pager_.Get(cur));
    uint32_t pos = LowerBound(ref.data(), key);
    if (pos >= NCells(ref.data()) ||
        ParseLeafCell(CellBytes(ref.data(), pos)).key != key) {
      return Status::NotFound();
    }
  }

  // Re-fetch mutably and remove.
  {
    BP_ASSIGN_OR_RETURN(PageRef ref, pager_.GetMutable(cur));
    char* p = ref.mutable_data();
    uint32_t pos = LowerBound(p, key);
    std::string_view bytes = CellBytes(p, pos);
    LeafCell cell = ParseLeafCell(bytes);
    BP_RETURN_IF_ERROR(FreeLeafCellPayload(bytes));
    RemoveCellAt(p, pos, cell.size);
  }

  // Retire emptied pages up the recorded path.
  while (cur != root_) {
    bool empty = false;
    bool is_leaf = false;
    PageId next = kNoPage;
    PageId prev = kNoPage;
    {
      BP_ASSIGN_OR_RETURN(PageRef ref, pager_.Get(cur));
      const char* p = ref.data();
      is_leaf = NodeType(p) == kTypeLeaf;
      empty = NCells(p) == 0 && (is_leaf || Aux(p) == kNoPage);
      next = Aux(p);
      prev = Aux2(p);
    }
    if (!empty) break;

    if (is_leaf) {
      if (prev != kNoPage) {
        BP_ASSIGN_OR_RETURN(PageRef ref, pager_.GetMutable(prev));
        SetAux(ref.mutable_data(), next);
      }
      if (next != kNoPage) {
        BP_ASSIGN_OR_RETURN(PageRef ref, pager_.GetMutable(next));
        SetAux2(ref.mutable_data(), prev);
      }
    }
    BP_RETURN_IF_ERROR(pager_.Free(cur));

    BP_CHECK(!path.empty());
    DescentRef parent = path.back();
    path.pop_back();
    BP_ASSIGN_OR_RETURN(PageRef ref, pager_.GetMutable(parent.page));
    char* p = ref.mutable_data();
    if (parent.ref_index < NCells(p)) {
      std::string_view bytes = CellBytes(p, parent.ref_index);
      RemoveCellAt(p, parent.ref_index, ParseInteriorCell(bytes).size);
    } else if (NCells(p) > 0) {
      // The aux child vanished: the last separator's child becomes aux.
      uint32_t last = NCells(p) - 1;
      InteriorCell last_cell = ParseInteriorCell(CellBytes(p, last));
      SetAux(p, last_cell.child);
      RemoveCellAt(p, last, last_cell.size);
    } else {
      SetAux(p, kNoPage);  // no children remain; parent is now empty
    }
    cur = parent.page;
  }

  // Collapse a root that degenerated to a single (aux) child.
  while (true) {
    PageId child = kNoPage;
    {
      BP_ASSIGN_OR_RETURN(PageRef ref, pager_.Get(root_));
      const char* p = ref.data();
      if (NodeType(p) != kTypeInterior || NCells(p) != 0 ||
          Aux(p) == kNoPage) {
        break;
      }
      child = Aux(p);
    }
    {
      BP_ASSIGN_OR_RETURN(PageRef root_ref, pager_.GetMutable(root_));
      BP_ASSIGN_OR_RETURN(PageRef child_ref, pager_.Get(child));
      std::memcpy(root_ref.mutable_data(), child_ref.data(), kPageSize);
    }
    // If the hoisted child is a leaf it was the only leaf; if interior,
    // its children are unaffected. Siblings cannot exist either way.
    BP_RETURN_IF_ERROR(pager_.Free(child));
  }
  return txn.Commit();
}

// --------------------------------------------------------------- cursor

void BTree::Cursor::Fail(Status status) {
  status_ = std::move(status);
  valid_ = false;
}

void BTree::Cursor::Seek(std::string_view target) {
  bound_prefix_.clear();
  bound_hi_.clear();
  status_ = Status::Ok();
  SeekInternal(target, /*exclusive=*/false);
}

void BTree::Cursor::SeekPrefix(std::string_view prefix) {
  status_ = Status::Ok();
  bound_prefix_.assign(prefix);
  bound_hi_.clear();
  SeekInternal(prefix, /*exclusive=*/false);
}

void BTree::Cursor::SeekRange(std::string_view lo, std::string_view hi) {
  status_ = Status::Ok();
  bound_prefix_.clear();
  bound_hi_.assign(hi);
  SeekInternal(lo, /*exclusive=*/false);
}

void BTree::Cursor::SeekInternal(std::string_view target, bool exclusive) {
  valid_ = false;
  BP_CHECK(tree_ != nullptr, "Seek on a default-constructed cursor");
  change_stamp_ = tree_->ReadStamp();
  auto leaf = tree_->LeafForKey(target, nullptr);
  if (!leaf.ok()) return Fail(leaf.status());
  leaf_ = *leaf;
  {
    auto ref = tree_->FetchPage(leaf_);
    if (!ref.ok()) return Fail(ref.status());
    pos_ = target.empty() ? 0 : LowerBound(ref->data(), target);
    if (exclusive && pos_ < NCells(ref->data()) &&
        ParseLeafCell(CellBytes(ref->data(), pos_)).key == target) {
      ++pos_;
    }
  }
  LoadOrAdvance();
}

void BTree::Cursor::Next() {
  if (!valid_) return;  // exhausted or errored: stay put
  // Snapshot-bound trees cannot change under the cursor, so the stamp
  // comparison is always-equal there and the re-seek never fires.
  if (change_stamp_ != tree_->ReadStamp()) {
    // Something mutated (possibly the entry under us): the (leaf_, pos_)
    // slot is no longer trustworthy. Re-seek by key to the successor of
    // the last entry returned.
    std::string last = std::move(key_);
    SeekInternal(last, /*exclusive=*/true);
    return;
  }
  ++pos_;
  LoadOrAdvance();
}

void BTree::Cursor::LoadOrAdvance() {
  valid_ = false;
  while (leaf_ != kNoPage) {
    auto ref = tree_->FetchPage(leaf_);
    if (!ref.ok()) return Fail(ref.status());
    const char* p = ref->data();
    BP_CHECK(NodeType(p) == kTypeLeaf, "cursor left the leaf level");
    if (pos_ >= NCells(p)) {
      // Off the end of this leaf (empty leaves exist only as an empty
      // root): follow the chain.
      leaf_ = Aux(p);
      pos_ = 0;
      continue;
    }
    LeafCell cell = ParseLeafCell(CellBytes(p, pos_));
    // Bounds are checked before the value is touched: an out-of-range
    // entry costs neither an overflow read nor a rows_scanned tick.
    if (!bound_prefix_.empty() &&
        (cell.key.size() < bound_prefix_.size() ||
         cell.key.substr(0, bound_prefix_.size()) != bound_prefix_)) {
      return;  // past the prefix bound: exhausted, status stays Ok
    }
    if (!bound_hi_.empty() && cell.key >= bound_hi_) {
      return;  // past the range bound: exhausted, status stays Ok
    }
    ++rows_scanned_;
    key_.assign(cell.key);
    if (cell.is_overflow) {
      // The chain read takes its own page refs; copy what we need from
      // `cell` first, then drop `ref` by scope exit order (safe: PageRefs
      // only pin, reads do not recurse into this leaf).
      auto value = tree_->ReadOverflowChain(cell.first_overflow,
                                            cell.total_len);
      if (!value.ok()) return Fail(value.status());
      value_ = *std::move(value);
    } else {
      value_.assign(cell.inline_value);
    }
    valid_ = true;
    return;
  }
}

// ---------------------------------------------------------------- scans
//
// The ForEach* family survives as thin wrappers so existing callers keep
// working; all internal read paths sit on Cursor directly.

Status BTree::ForEachRange(
    std::string_view lo, std::string_view hi,
    const std::function<bool(std::string_view, std::string_view)>& fn)
    const {
  Cursor cur = NewCursor();
  for (cur.SeekRange(lo, hi); cur.Valid(); cur.Next()) {
    if (!fn(cur.key(), cur.value())) break;
  }
  return cur.status();
}

Status BTree::ForEach(
    const std::function<bool(std::string_view, std::string_view)>& fn)
    const {
  return ForEachRange({}, {}, fn);
}

Status BTree::ForEachPrefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, std::string_view)>& fn)
    const {
  Cursor cur = NewCursor();
  for (cur.SeekPrefix(prefix); cur.Valid(); cur.Next()) {
    if (!fn(cur.key(), cur.value())) break;
  }
  return cur.status();
}

Result<uint64_t> BTree::CountRange(std::string_view lo,
                                   std::string_view hi) const {
  BP_ASSIGN_OR_RETURN(PageId page_id, LeafForKey(lo, nullptr));
  uint64_t n = 0;
  bool first = true;
  while (page_id != kNoPage) {
    BP_ASSIGN_OR_RETURN(PageView ref, FetchPage(page_id));
    const char* p = ref.data();
    const uint32_t start =
        first && !lo.empty() ? LowerBound(p, lo) : 0;
    first = false;
    uint32_t end = NCells(p);
    if (!hi.empty()) {
      // hi may fall inside this leaf; binary-search the boundary instead
      // of decoding every cell.
      uint32_t bound = LowerBound(p, hi);
      if (bound < end) {
        n += bound > start ? bound - start : 0;
        return n;
      }
    }
    n += end > start ? end - start : 0;
    page_id = Aux(p);
  }
  return n;
}

Result<uint64_t> BTree::Count() const {
  return CountRange({}, {});
}

// ---------------------------------------------------------------- stats

Result<TreeStats> BTree::Stats() const {
  TreeStats stats;
  // Iterative DFS; (page, depth) pairs.
  std::vector<std::pair<PageId, uint32_t>> stack{{root_, 1}};
  while (!stack.empty()) {
    auto [page_id, depth] = stack.back();
    stack.pop_back();
    stats.depth = std::max(stats.depth, depth);
    stats.disk_bytes += pager_.OnDiskPageBytes(page_id);
    BP_ASSIGN_OR_RETURN(PageView ref, FetchPage(page_id));
    const char* p = ref.data();
    if (NodeType(p) == kTypeInterior) {
      ++stats.interior_pages;
      for (uint32_t i = 0; i < NCells(p); ++i) {
        stack.push_back({ParseInteriorCell(CellBytes(p, i)).child,
                         depth + 1});
      }
      if (Aux(p) != kNoPage) stack.push_back({Aux(p), depth + 1});
    } else if (NodeType(p) == kTypeLeaf) {
      ++stats.leaf_pages;
      for (uint32_t i = 0; i < NCells(p); ++i) {
        LeafCell cell = ParseLeafCell(CellBytes(p, i));
        ++stats.cells;
        stats.key_bytes += cell.key.size();
        stats.value_bytes += cell.total_len;
        if (cell.is_overflow) {
          PageId ov = cell.first_overflow;
          while (ov != kNoPage) {
            ++stats.overflow_pages;
            stats.disk_bytes += pager_.OnDiskPageBytes(ov);
            BP_ASSIGN_OR_RETURN(PageView oref, FetchPage(ov));
            ov = Aux(oref.data());
          }
        }
      }
    } else {
      return Status::Corruption("unexpected page type in tree walk");
    }
  }
  return stats;
}

Status BTree::FreeAllPages() {
  BP_REQUIRE(snap_ == nullptr, "FreeAllPages on a snapshot-bound tree");
  AutoTxn txn(pager_);
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    PageId page_id = stack.back();
    stack.pop_back();
    {
      BP_ASSIGN_OR_RETURN(PageRef ref, pager_.Get(page_id));
      const char* p = ref.data();
      if (NodeType(p) == kTypeInterior) {
        for (uint32_t i = 0; i < NCells(p); ++i) {
          stack.push_back(ParseInteriorCell(CellBytes(p, i)).child);
        }
        if (Aux(p) != kNoPage) stack.push_back(Aux(p));
      } else if (NodeType(p) == kTypeLeaf) {
        for (uint32_t i = 0; i < NCells(p); ++i) {
          LeafCell cell = ParseLeafCell(CellBytes(p, i));
          if (cell.is_overflow) stack.push_back(cell.first_overflow);
        }
      } else {
        // Overflow page: continue its chain.
        if (Aux(p) != kNoPage) stack.push_back(Aux(p));
      }
    }
    BP_RETURN_IF_ERROR(pager_.Free(page_id));
  }
  return txn.Commit();
}

}  // namespace bp::storage
