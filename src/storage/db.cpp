#include "storage/db.hpp"

#include "util/require.hpp"
#include "util/serde.hpp"

namespace bp::storage {

using util::Reader;
using util::Result;
using util::Status;
using util::Writer;

uint64_t SpaceReport::BytesForPrefix(std::string_view prefix) const {
  uint64_t total = 0;
  for (const SpaceEntry& entry : trees) {
    if (entry.name.size() >= prefix.size() &&
        std::string_view(entry.name).substr(0, prefix.size()) == prefix) {
      // Physical footprint: compressed checkpoint slots count their
      // frame size, so the storage-overhead experiment sees the diet.
      total += entry.stats.disk_bytes;
    }
  }
  return total;
}

Result<std::unique_ptr<Db>> Db::Open(const std::string& path,
                                     DbOptions options) {
  PagerOptions popts;
  popts.env = options.env;
  popts.cache_pages = options.cache_pages;
  popts.sync = options.sync;
  popts.durability = options.durability;
  popts.wal_group_commit = options.wal_group_commit;
  popts.wal_checkpoint_bytes = options.wal_checkpoint_bytes;
  popts.write_domains = options.write_domains;
  popts.pool_bytes = options.pool_bytes;
  popts.buffer_pool = options.buffer_pool;
  popts.pool_publish_on_commit = options.pool_publish_on_commit;
  popts.compression = options.compression;
  BP_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager,
                      Pager::Open(path, popts));
  std::unique_ptr<Db> db(new Db(std::move(pager)));

  if (db->pager_->catalog_root() == kNoPage) {
    AutoTxn txn(*db->pager_);
    BP_ASSIGN_OR_RETURN(PageId root, BTree::Create(*db->pager_));
    BP_RETURN_IF_ERROR(db->pager_->SetCatalogRoot(root));
    BP_RETURN_IF_ERROR(txn.Commit());
  }
  db->catalog_ =
      std::make_unique<BTree>(*db->pager_, db->pager_->catalog_root());
  return db;
}

Result<BTree*> Db::CreateTree(const std::string& name) {
  BP_REQUIRE(!name.empty(), "tree name must be non-empty");
  auto existing = catalog_->Contains(name);
  BP_RETURN_IF_ERROR(existing.status());
  if (*existing) {
    return Status::AlreadyExists("tree exists: " + name);
  }
  AutoTxn txn(*pager_);
  BP_ASSIGN_OR_RETURN(PageId root, BTree::Create(*pager_));
  Writer w;
  w.PutU32(root);
  BP_RETURN_IF_ERROR(catalog_->Put(name, w.data()));
  BP_RETURN_IF_ERROR(txn.Commit());
  auto tree = std::make_unique<BTree>(*pager_, root);
  BTree* raw = tree.get();
  open_trees_[name] = std::move(tree);
  return raw;
}

Result<BTree*> Db::OpenTree(const std::string& name) {
  auto it = open_trees_.find(name);
  if (it != open_trees_.end()) return it->second.get();
  auto value = catalog_->Get(name);
  if (!value.ok()) {
    if (value.status().IsNotFound()) {
      return Status::NotFound("no such tree: " + name);
    }
    return value.status();
  }
  Reader r(*value);
  PageId root = r.ReadU32();
  BP_RETURN_IF_ERROR(r.Finish());
  auto tree = std::make_unique<BTree>(*pager_, root);
  BTree* raw = tree.get();
  open_trees_[name] = std::move(tree);
  return raw;
}

Result<BTree*> Db::OpenOrCreateTree(const std::string& name) {
  auto opened = OpenTree(name);
  if (opened.ok() || !opened.status().IsNotFound()) return opened;
  return CreateTree(name);
}

Status Db::DropTree(const std::string& name) {
  BP_ASSIGN_OR_RETURN(BTree * tree, OpenTree(name));
  AutoTxn txn(*pager_);
  BP_RETURN_IF_ERROR(tree->FreeAllPages());
  BP_RETURN_IF_ERROR(catalog_->Delete(name));
  BP_RETURN_IF_ERROR(txn.Commit());
  open_trees_.erase(name);
  return Status::Ok();
}

Result<std::vector<std::string>> Db::ListTrees() const {
  std::vector<std::string> names;
  BP_RETURN_IF_ERROR(
      catalog_->ForEach([&](std::string_view key, std::string_view) {
        names.emplace_back(key);
        return true;
      }));
  return names;
}

Result<SpaceReport> Db::Space() const {
  SpaceReport report;
  report.file_bytes = pager_->FileBytes();
  report.total_pages = pager_->page_count();
  report.free_pages = pager_->freelist_length();

  BP_ASSIGN_OR_RETURN(TreeStats catalog_stats, catalog_->Stats());
  report.catalog_pages = catalog_stats.TotalPages();

  // Collect (name, root) pairs first: Stats() walks pages and must not
  // run inside the catalog scan callback while it holds page pins.
  std::vector<std::pair<std::string, PageId>> entries;
  BP_RETURN_IF_ERROR(
      catalog_->ForEach([&](std::string_view key, std::string_view value) {
        Reader r(value);
        entries.emplace_back(std::string(key), r.ReadU32());
        return true;
      }));
  for (const auto& [name, root] : entries) {
    BTree tree(*pager_, root);
    BP_ASSIGN_OR_RETURN(TreeStats stats, tree.Stats());
    report.trees.push_back(SpaceEntry{name, stats});
  }
  return report;
}

}  // namespace bp::storage
