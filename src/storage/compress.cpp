#include "storage/compress.hpp"

#include <cstdlib>
#include <cstring>

#include "util/require.hpp"
#include "util/serde.hpp"
#include "util/strings.hpp"

namespace bp::storage::compress {

using util::Reader;
using util::Result;
using util::Status;
using util::Writer;

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = kFnvOffset;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

// --- LZ codec ----------------------------------------------------------
//
// Token stream in the LZ4 style. Each sequence is:
//   token u8: (literal_len nibble << 4) | match_len nibble
//   [255-run extension bytes if literal_len nibble == 15]
//   literal bytes
//   offset u16 LE (1..65535), then [255-run extension if match nibble == 15]
// A match is (match_len nibble + kMinMatch) bytes copied from `offset`
// bytes back in the output, overlap allowed. The final sequence carries
// literals only (decoding stops when raw_size bytes are produced).

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;
constexpr uint32_t kHashSize = 1u << kHashBits;

uint32_t ReadLe32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // hash input only; endianness does not matter for hashing
}

uint32_t HashSeq(uint32_t v) { return (v * 2654435761u) >> (32 - kHashBits); }

void PutRunLength(std::string& out, size_t extra) {
  while (extra >= 255) {
    out.push_back(static_cast<char>(0xff));
    extra -= 255;
  }
  out.push_back(static_cast<char>(extra));
}

void EmitSequence(std::string& out, const char* literals, size_t literal_len,
                  size_t match_len, size_t offset) {
  const size_t ml = match_len == 0 ? 0 : match_len - kMinMatch;
  const uint8_t lit_nibble =
      literal_len >= 15 ? 15 : static_cast<uint8_t>(literal_len);
  const uint8_t match_nibble = ml >= 15 ? 15 : static_cast<uint8_t>(ml);
  out.push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) PutRunLength(out, literal_len - 15);
  out.append(literals, literal_len);
  if (match_len != 0) {
    out.push_back(static_cast<char>(offset & 0xff));
    out.push_back(static_cast<char>((offset >> 8) & 0xff));
    if (match_nibble == 15) PutRunLength(out, ml - 15);
  }
}

std::string LzCompress(std::string_view in) {
  std::string out;
  out.reserve(in.size() / 2 + 16);
  const size_t n = in.size();
  if (n < kMinMatch + 1) {
    // Zero-length input encodes as an empty payload: the decoder stops
    // once raw_size bytes exist, so it would never consume a token.
    if (n != 0) EmitSequence(out, in.data(), n, 0, 0);
    return out;
  }
  uint32_t table[kHashSize];
  std::memset(table, 0xff, sizeof(table));  // UINT32_MAX = empty
  const char* base = in.data();
  size_t anchor = 0;
  size_t i = 0;
  const size_t hash_limit = n - kMinMatch;  // last position with 4 bytes
  while (i <= hash_limit) {
    const uint32_t h = HashSeq(ReadLe32(base + i));
    const uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(i);
    if (cand == UINT32_MAX || i - cand > kMaxOffset ||
        std::memcmp(base + cand, base + i, kMinMatch) != 0) {
      ++i;
      continue;
    }
    size_t match_len = kMinMatch;
    while (i + match_len < n && base[cand + match_len] == base[i + match_len]) {
      ++match_len;
    }
    EmitSequence(out, base + anchor, i - anchor, match_len, i - cand);
    i += match_len;
    anchor = i;
  }
  // No final sequence when the input ended exactly on a match — the
  // decoder exits at raw_size and would see the empty token as trailing
  // garbage.
  if (n > anchor) EmitSequence(out, base + anchor, n - anchor, 0, 0);
  return out;
}

// Reads a 255-run extension: adds bytes until one is != 255. Sets the
// reader's error flag (via ReadU8's bounds check) on truncation. The
// accumulated value is capped against `limit` so corrupt extensions
// cannot overflow size arithmetic.
bool ReadRunLength(Reader& r, size_t limit, size_t* len) {
  while (true) {
    const uint8_t b = r.ReadU8();
    if (!r.ok()) return false;
    *len += b;
    if (*len > limit) return false;
    if (b != 0xff) return true;
  }
}

Status LzDecompress(std::string_view payload, size_t raw_size,
                    std::string* out) {
  out->clear();
  out->reserve(raw_size);
  Reader r(payload);
  while (out->size() < raw_size) {
    const uint8_t token = r.ReadU8();
    if (!r.ok()) return Status::Corruption("lz frame: truncated token");
    size_t literal_len = token >> 4;
    if (literal_len == 15 &&
        !ReadRunLength(r, raw_size - out->size(), &literal_len)) {
      return Status::Corruption("lz frame: bad literal run length");
    }
    if (literal_len > raw_size - out->size()) {
      return Status::Corruption("lz frame: literal run exceeds raw size");
    }
    const std::string_view literals = r.ReadRaw(literal_len);
    if (!r.ok()) return Status::Corruption("lz frame: truncated literals");
    out->append(literals);
    if (out->size() == raw_size) break;  // final, literal-only sequence
    const size_t offset = r.ReadU16();
    if (!r.ok()) return Status::Corruption("lz frame: truncated offset");
    if (offset == 0 || offset > out->size()) {
      return Status::Corruption("lz frame: match offset out of range");
    }
    size_t match_len = (token & 0x0f) + kMinMatch;
    if ((token & 0x0f) == 15 &&
        !ReadRunLength(r, raw_size - out->size(), &match_len)) {
      return Status::Corruption("lz frame: bad match run length");
    }
    if (match_len > raw_size - out->size()) {
      return Status::Corruption("lz frame: match exceeds raw size");
    }
    // Byte-by-byte so overlapping matches (offset < match_len) replicate.
    size_t src = out->size() - offset;
    for (size_t k = 0; k < match_len; ++k) {
      out->push_back((*out)[src + k]);
    }
  }
  if (!r.AtEnd()) return Status::Corruption("lz frame: trailing bytes");
  return Status::Ok();
}

// --- integer delta codec over a raw u64 array --------------------------

std::string IntDeltaCompress(std::string_view in) {
  BP_REQUIRE(in.size() % 8 == 0, "kIntDelta raw size must be a multiple of 8");
  Writer w;
  uint64_t prev = 0;
  for (size_t i = 0; i < in.size(); i += 8) {
    uint64_t v;
    std::memcpy(&v, in.data() + i, sizeof(v));
    w.PutSignedVarint64(static_cast<int64_t>(v - prev));
    prev = v;
  }
  return std::move(w).data();
}

Status IntDeltaDecompress(std::string_view payload, size_t raw_size,
                          std::string* out) {
  if (raw_size % 8 != 0) {
    return Status::Corruption("int-delta frame: raw size not a u64 array");
  }
  out->clear();
  out->reserve(raw_size);
  Reader r(payload);
  uint64_t prev = 0;
  for (size_t i = 0; i < raw_size / 8; ++i) {
    prev += static_cast<uint64_t>(r.ReadSignedVarint64());
    if (!r.ok()) return Status::Corruption("int-delta frame: truncated");
    char buf[8];
    uint64_t v = prev;
    for (size_t b = 0; b < 8; ++b) {
      buf[b] = static_cast<char>(v >> (8 * b));
    }
    out->append(buf, sizeof(buf));
  }
  if (!r.AtEnd()) return Status::Corruption("int-delta frame: trailing bytes");
  return Status::Ok();
}

}  // namespace

std::string Compress(Codec codec, std::string_view raw) {
  std::string payload;
  switch (codec) {
    case Codec::kNone:
      payload.assign(raw);
      break;
    case Codec::kLz:
      payload = LzCompress(raw);
      break;
    case Codec::kIntDelta:
      payload = IntDeltaCompress(raw);
      break;
  }
  Writer w;
  w.PutU32(kFrameMagic);
  w.PutU8(static_cast<uint8_t>(codec));
  w.PutU32(static_cast<uint32_t>(raw.size()));
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU64(Fnv1a64(payload));
  std::string frame = std::move(w).data();
  BP_CHECK(frame.size() == kFrameHeaderSize);
  frame += payload;
  return frame;
}

bool LooksLikeFrame(std::string_view data) {
  if (data.size() < kFrameHeaderSize) return false;
  Reader r(data);
  return r.ReadU32() == kFrameMagic;
}

Result<FrameInfo> Inspect(std::string_view data) {
  if (data.size() < kFrameHeaderSize) {
    return Status::Corruption("compressed frame: short header");
  }
  Reader r(data);
  if (r.ReadU32() != kFrameMagic) {
    return Status::Corruption("compressed frame: bad magic");
  }
  const uint8_t codec = r.ReadU8();
  if (codec > static_cast<uint8_t>(Codec::kIntDelta)) {
    return Status::Corruption(
        util::StrFormat("compressed frame: unknown codec %u", codec));
  }
  FrameInfo info;
  info.codec = static_cast<Codec>(codec);
  info.raw_size = r.ReadU32();
  const uint32_t payload_size = r.ReadU32();
  // Header-only peek: the payload need not be present (OnDiskPageBytes
  // reads just the header for accounting). Decompress checks that the
  // payload actually fits before touching it.
  info.stored_size = uint64_t{kFrameHeaderSize} + payload_size;
  return info;
}

Status Decompress(std::string_view data, std::string* out) {
  BP_ASSIGN_OR_RETURN(FrameInfo info, Inspect(data));
  if (info.stored_size > data.size()) {
    return Status::Corruption("compressed frame: payload truncated");
  }
  Reader r(data);
  r.Skip(kFrameHeaderSize - 8);
  const uint64_t checksum = r.ReadU64();
  const std::string_view payload =
      data.substr(kFrameHeaderSize, info.stored_size - kFrameHeaderSize);
  if (Fnv1a64(payload) != checksum) {
    return Status::Corruption("compressed frame: checksum mismatch");
  }
  switch (info.codec) {
    case Codec::kNone:
      if (payload.size() != info.raw_size) {
        return Status::Corruption("compressed frame: raw size mismatch");
      }
      out->assign(payload);
      return Status::Ok();
    case Codec::kLz: {
      BP_RETURN_IF_ERROR(LzDecompress(payload, info.raw_size, out));
      if (out->size() != info.raw_size) {
        return Status::Corruption("lz frame: raw size mismatch");
      }
      return Status::Ok();
    }
    case Codec::kIntDelta:
      return IntDeltaDecompress(payload, info.raw_size, out);
  }
  return Status::Corruption("compressed frame: unknown codec");
}

std::string EncodeDeltaPairs(
    const std::vector<std::pair<uint64_t, uint64_t>>& pairs) {
  Writer w;
  w.PutVarint64(pairs.size());
  uint64_t prev = 0;
  for (const auto& [key, value] : pairs) {
    BP_REQUIRE(key >= prev, "EncodeDeltaPairs keys must be non-decreasing");
    w.PutVarint64(key - prev);
    w.PutVarint64(value);
    prev = key;
  }
  return std::move(w).data();
}

Status DecodeDeltaPairs(std::string_view blob,
                        std::vector<std::pair<uint64_t, uint64_t>>* out) {
  out->clear();
  Reader r(blob);
  const uint64_t n = r.ReadVarint64();
  if (!r.ok()) {
    return Status::Corruption("delta pairs: truncated count varint");
  }
  // The count is untrusted until proven payload-backed: each pair is two
  // varints of >= 1 byte each, so a count that two bytes per entry cannot
  // cover is corrupt — reject it BEFORE reserve(n), which would otherwise
  // turn one flipped byte into an unbounded allocation.
  if (n > (blob.size() - r.position()) / 2) {
    return Status::Corruption(util::StrFormat(
        "delta pairs: count %llu exceeds payload capacity (%zu bytes)",
        (unsigned long long)n, blob.size()));
  }
  out->reserve(n);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    prev += r.ReadVarint64();
    const uint64_t value = r.ReadVarint64();
    if (!r.ok()) {
      return Status::Corruption(util::StrFormat(
          "delta pairs: payload truncated at entry %llu of %llu",
          (unsigned long long)i, (unsigned long long)n));
    }
    out->emplace_back(prev, value);
  }
  return r.Finish();
}

CompressionOptions::Mode CompressionOptions::DefaultMode() {
  static const Mode mode = [] {
    const char* env = std::getenv("BP_COMPRESSION");
    if (env == nullptr) return Mode::kOff;
    const std::string_view v(env);
    if (v == "fast" || v == "on" || v == "1") return Mode::kFast;
    return Mode::kOff;
  }();
  return mode;
}

std::string MaybeCompressPage(const CompressionOptions& options,
                              std::string_view page) {
  if (!options.enabled()) return {};
  std::string frame = Compress(Codec::kLz, page);
  const double budget = options.ratio_floor * static_cast<double>(page.size());
  if (static_cast<double>(frame.size()) > budget) return {};
  return frame;
}

}  // namespace bp::storage::compress
