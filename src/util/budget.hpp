// QueryBudget: deadline + work-cap control for anytime queries.
//
// The paper claims its queries "complete in less than 200ms in the
// majority of cases and can be bound to that time in the remaining
// cases". The bound is realized by passing a QueryBudget into every
// use-case algorithm: traversals and expansions charge one unit per node
// touched and poll the deadline periodically; on exhaustion the algorithm
// stops expanding and returns its best-so-far results, flagged truncated.
#pragma once

#include <cstdint>
#include <limits>

#include "util/time.hpp"

namespace bp::util {

class QueryBudget {
 public:
  // Unlimited budget.
  QueryBudget() = default;

  static QueryBudget Unlimited() { return QueryBudget(); }

  static QueryBudget WithDeadlineMs(double ms) {
    QueryBudget b;
    b.deadline_ms_ = ms;
    return b;
  }

  static QueryBudget WithNodeCap(uint64_t cap) {
    QueryBudget b;
    b.node_cap_ = cap;
    return b;
  }

  static QueryBudget WithDeadlineAndCap(double ms, uint64_t cap) {
    QueryBudget b;
    b.deadline_ms_ = ms;
    b.node_cap_ = cap;
    return b;
  }

  // Charge `n` units of work. Returns false when the budget is exhausted;
  // the caller must stop expanding (but may still return partial results).
  bool Charge(uint64_t n = 1) {
    used_ += n;
    if (used_ > node_cap_) {
      exhausted_ = true;
      return false;
    }
    // The clock is polled every kPollInterval charges: a steady_clock read
    // per node would dominate small traversals.
    if (deadline_ms_ < std::numeric_limits<double>::infinity() &&
        used_ - last_poll_ >= kPollInterval) {
      last_poll_ = used_;
      if (watch_.ElapsedMs() > deadline_ms_) {
        exhausted_ = true;
        return false;
      }
    }
    return exhausted_ ? false : true;
  }

  bool exhausted() const { return exhausted_; }
  uint64_t used() const { return used_; }

 private:
  static constexpr uint64_t kPollInterval = 64;

  double deadline_ms_ = std::numeric_limits<double>::infinity();
  uint64_t node_cap_ = std::numeric_limits<uint64_t>::max();
  uint64_t used_ = 0;
  uint64_t last_poll_ = 0;
  bool exhausted_ = false;
  Stopwatch watch_;
};

}  // namespace bp::util
