// Deterministic pseudo-random utilities. All stochastic behaviour in bp
// (simulation, benchmarks, property tests) draws from Rng so that any run
// is exactly reproducible from its seed. PCG32 core with SplitMix64
// seeding; distribution helpers cover the needs of the browsing simulator
// (Zipf page popularity, Poisson session arrivals, exponential dwell
// times, weighted categorical actions).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bp::util {

// SplitMix64: used to expand one seed into independent stream seeds.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    state_ = SplitMix64(sm);
    inc_ = SplitMix64(sm) | 1u;  // stream selector must be odd
    NextU32();
    NextU32();
  }

  // Derive an independent generator; stable across runs for a given label.
  Rng Fork(uint64_t label) const {
    uint64_t sm = state_ ^ (label * 0x9e3779b97f4a7c15ULL) ^ inc_;
    return Rng(SplitMix64(sm));
  }

  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  uint64_t NextU64() {
    return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  }

  // Uniform integer in [0, n). Precondition: n > 0. Debiased via rejection.
  uint64_t Uniform(uint64_t n);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  // Uniform real in [0, 1).
  double UniformReal();

  bool Bernoulli(double p) { return UniformReal() < p; }

  // Knuth's method for small lambda; normal approximation above 64.
  int Poisson(double lambda);

  double Exponential(double rate);

  // Normal via Box-Muller (no cached spare: keeps the state stream simple).
  double Normal(double mean, double stddev);

  // Zipf-distributed rank in [0, n) with exponent s (s=1: classic).
  // Uses precomputable rejection-free inverse-CDF over harmonic weights
  // for small n, and rejection sampling for large n.
  uint64_t Zipf(uint64_t n, double s);

  // Index drawn proportionally to non-negative weights.
  // Precondition: at least one weight > 0.
  size_t PickWeighted(std::span<const double> weights);

  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

 private:
  uint64_t state_ = 0;
  uint64_t inc_ = 0;
};

}  // namespace bp::util
