#include "util/rng.hpp"

#include <cmath>

#include "util/require.hpp"

namespace bp::util {

uint64_t Rng::Uniform(uint64_t n) {
  BP_REQUIRE(n > 0, "Uniform(0) is meaningless");
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  BP_REQUIRE(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformReal() {
  // 53 random bits -> [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int Rng::Poisson(double lambda) {
  BP_REQUIRE(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 64.0) {
    double limit = std::exp(-lambda);
    double prod = UniformReal();
    int n = 0;
    while (prod > limit) {
      prod *= UniformReal();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction for large lambda.
  double v = Normal(lambda, std::sqrt(lambda));
  return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
}

double Rng::Exponential(double rate) {
  BP_REQUIRE(rate > 0.0);
  double u = UniformReal();
  // 1-u is in (0,1], so the log is finite.
  return -std::log(1.0 - u) / rate;
}

double Rng::Normal(double mean, double stddev) {
  double u1 = 1.0 - UniformReal();  // (0, 1]
  double u2 = UniformReal();
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  BP_REQUIRE(n > 0);
  // Rejection-inversion (Hörmann); exact for all n without O(n) tables.
  if (n == 1) return 0;
  const double b = std::pow(2.0, 1.0 - s);
  while (true) {
    double u = UniformReal();
    double v = UniformReal();
    double x = std::floor(std::pow(static_cast<double>(n) + 1.0, u));
    // x in [1, n+1); accept with probability proportional to x^-s.
    double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      uint64_t r = static_cast<uint64_t>(x) - 1;
      if (r < n) return r;
    }
  }
}

size_t Rng::PickWeighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    BP_REQUIRE(w >= 0.0, "negative weight");
    total += w;
  }
  BP_REQUIRE(total > 0.0, "all weights zero");
  double r = UniformReal() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // floating point slop: last positive bucket
}

}  // namespace bp::util
