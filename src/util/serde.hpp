// Byte-level serialization used by the storage engine and record schemas.
//
// Encoding conventions (little-endian throughout):
//   - fixed-width integers: PutU8/U16/U32/U64
//   - unsigned varints: ULEB128 (PutVarint64)
//   - signed varints: zig-zag then ULEB128 (PutSignedVarint64)
//   - strings/blobs: varint length prefix followed by raw bytes
//   - doubles: IEEE-754 bit pattern as fixed 64-bit
//
// Reader accumulates an error flag instead of returning Status from every
// call so that decode sequences stay linear; callers check ok() once at
// the end (and must treat !ok() as corruption).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace bp::util {

// Append-only encoder over an owned byte buffer.
class Writer {
 public:
  Writer() = default;

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }

  void PutVarint64(uint64_t v) {
    while (v >= 0x80) {
      PutU8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    PutU8(static_cast<uint8_t>(v));
  }

  void PutSignedVarint64(int64_t v) {
    // Zig-zag: small magnitudes (of either sign) encode small.
    PutVarint64((static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63));
  }

  void PutDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutString(std::string_view s) {
    PutVarint64(s.size());
    buf_.append(s.data(), s.size());
  }

  // Raw bytes with no length prefix (caller manages framing).
  void PutRaw(std::string_view s) { buf_.append(s.data(), s.size()); }

  const std::string& data() const& { return buf_; }
  std::string&& data() && { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    char tmp[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      tmp[i] = static_cast<char>(v >> (8 * i));
    }
    buf_.append(tmp, sizeof(T));
  }

  std::string buf_;
};

// Sequential decoder over a borrowed byte range. Does not own the bytes;
// the underlying buffer must outlive the Reader.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  uint8_t ReadU8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint16_t ReadU16() { return ReadFixed<uint16_t>(); }
  uint32_t ReadU32() { return ReadFixed<uint32_t>(); }
  uint64_t ReadU64() { return ReadFixed<uint64_t>(); }

  uint64_t ReadVarint64() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (!Need(1)) return 0;
      uint8_t b = static_cast<uint8_t>(data_[pos_++]);
      if (shift >= 64 || (shift == 63 && (b & 0x7e))) {
        ok_ = false;  // overflow: not a canonical 64-bit varint
        return 0;
      }
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  int64_t ReadSignedVarint64() {
    uint64_t z = ReadVarint64();
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  double ReadDouble() {
    uint64_t bits = ReadU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // Returns a view into the underlying buffer (zero copy).
  std::string_view ReadString() {
    uint64_t n = ReadVarint64();
    if (!Need(n)) return {};
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  std::string_view ReadRaw(size_t n) {
    if (!Need(n)) return {};
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  void Skip(size_t n) {
    if (Need(n)) pos_ += n;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

  // OK only when every read succeeded AND all input was consumed.
  Status Finish() const {
    if (!ok_) return Status::Corruption("truncated or malformed record");
    if (!AtEnd()) return Status::Corruption("trailing bytes in record");
    return Status::Ok();
  }

 private:
  template <typename T>
  T ReadFixed() {
    if (!Need(sizeof(T))) return T{};
    T v{};
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  bool Need(uint64_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Lexicographically order-preserving encoding of a uint64 (big-endian).
// Used for B+tree keys so that numeric order == byte order.
inline std::string OrderedKeyU64(uint64_t v) {
  std::string out(8, '\0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  return out;
}

// Inverse of OrderedKeyU64. Precondition: key.size() >= 8.
inline uint64_t DecodeOrderedKeyU64(std::string_view key) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(key[i]);
  }
  return v;
}

// Composite ordered key: big-endian u64 pairs concatenated; sorts by
// (a, b). Used for adjacency indexes keyed by (node id, edge id).
inline std::string OrderedKeyU64Pair(uint64_t a, uint64_t b) {
  std::string out = OrderedKeyU64(a);
  out += OrderedKeyU64(b);
  return out;
}

}  // namespace bp::util
