#include "util/status.hpp"

namespace bp::util {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kBudgetExhausted: return "BudgetExhausted";
    case StatusCode::kUnimplemented: return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace bp::util
