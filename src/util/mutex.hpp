// Annotated mutex wrappers: the capability-carrying types behind
// util/thread_annotations.hpp.
//
// Clang's thread-safety analysis needs the mutex TYPE to be declared a
// capability, which std::mutex is not — so every mutex-protected member
// in the codebase is a util::Mutex / RecursiveMutex / SharedMutex, and
// every acquisition goes through the annotated RAII scoped locks below.
// The wrappers are zero-cost passthroughs over their std counterparts
// (all methods are one inlined call); what they add is that
// -Werror=thread-safety can now prove lock discipline at compile time.
//
//   class Cache {
//     util::Mutex mu_;
//     std::map<K, V> entries_ BP_GUARDED_BY(mu_);
//     void EvictLocked() BP_REQUIRES(mu_);
//   };
//   util::MutexLock lock(mu_);   // acquires; releases at scope exit
//   lock.Unlock(); lock.Lock();  // tracked early release / re-acquire
//
// Condition variables: std::condition_variable needs a
// std::unique_lock<std::mutex>, so MutexLock is BUILT ON one and
// exposes it via native() — `cv.wait(lock.native())` blocks with the
// analysis none the wiser (wait returns with the lock re-held, so the
// static "held" state stays truthful). Write wait loops as explicit
// `while (!cond) cv.wait(lock.native());` rather than the
// predicate-lambda overload: the analysis checks lambda bodies as
// separate functions, where the enclosing scope's held locks are not
// visible.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.hpp"

namespace bp::util {

// ----------------------------------------------------------- mutexes

class BP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() BP_ACQUIRE() { mu_.lock(); }
  void Unlock() BP_RELEASE() { mu_.unlock(); }
  bool TryLock() BP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Declares (to the analysis) that this thread already holds the lock
  // — for code reached only from under the lock through a path the
  // analysis cannot follow (callbacks, lambdas). See the suppression
  // policy in README.md.
  void AssertHeld() const BP_ASSERT_CAPABILITY(this) {}

  // The wrapped mutex, for std::condition_variable interop (MutexLock
  // holds a std::unique_lock over it). Do not lock it directly: raw
  // acquisitions are invisible to the analysis.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// Re-entrant variant: ProvenanceDb's writer mutex, which Batch holds
// across user Ingest calls that lock it again. Note the analysis itself
// does not model re-entrancy — each function still acquires and
// releases exactly once in its own scope; the recursion only ever
// happens across call boundaries the analysis does not join.
class BP_CAPABILITY("mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;
  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void Lock() BP_ACQUIRE() { mu_.lock(); }
  void Unlock() BP_RELEASE() { mu_.unlock(); }
  bool TryLock() BP_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void AssertHeld() const BP_ASSERT_CAPABILITY(this) {}

  std::recursive_mutex& native() { return mu_; }

 private:
  std::recursive_mutex mu_;
};

// Reader/writer lock (MemEnv file content: page reads shared, WAL
// appends exclusive).
class BP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() BP_ACQUIRE() { mu_.lock(); }
  void Unlock() BP_RELEASE() { mu_.unlock(); }
  void LockShared() BP_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() BP_RELEASE_SHARED() { mu_.unlock_shared(); }

  std::shared_mutex& native() { return mu_; }

 private:
  std::shared_mutex mu_;
};

// ------------------------------------------------------ scoped locks

// RAII exclusive lock over Mutex. Supports tracked early release and
// re-acquisition (the ingest committer drops the queue lock around
// storage commits), and exposes the underlying std::unique_lock for
// condition-variable waits.
class BP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BP_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() BP_RELEASE_GENERIC() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() BP_RELEASE() { lock_.unlock(); }
  void Lock() BP_ACQUIRE() { lock_.lock(); }

  // For std::condition_variable::wait. The lock is held again when
  // wait returns, so the analysis' view stays correct across the call.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

// RAII exclusive lock over RecursiveMutex.
class BP_SCOPED_CAPABILITY RecursiveMutexLock {
 public:
  explicit RecursiveMutexLock(RecursiveMutex& mu) BP_ACQUIRE(mu)
      : lock_(mu.native()) {}
  ~RecursiveMutexLock() BP_RELEASE_GENERIC() {}

  RecursiveMutexLock(const RecursiveMutexLock&) = delete;
  RecursiveMutexLock& operator=(const RecursiveMutexLock&) = delete;

  void Unlock() BP_RELEASE() { lock_.unlock(); }
  void Lock() BP_ACQUIRE() { lock_.lock(); }

 private:
  std::unique_lock<std::recursive_mutex> lock_;
};

// RAII exclusive (writer) lock over SharedMutex.
class BP_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) BP_ACQUIRE(mu) : mu_(mu) {
    mu_.native().lock();
  }
  ~WriterMutexLock() BP_RELEASE_GENERIC() { mu_.native().unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) lock over SharedMutex.
class BP_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) BP_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.native().lock_shared();
  }
  ~ReaderMutexLock() BP_RELEASE_GENERIC() { mu_.native().unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace bp::util
