// Compile-time lock-discipline annotations.
//
// Thin macro layer over Clang's capability analysis attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), so the
// locking conventions that used to live in comments ("guarded by mu_",
// "commit_mu_ must already be held") become machine-checked invariants:
// a Clang build with -Werror=thread-safety (CI's clang-thread-safety
// job; enabled automatically whenever the compiler is Clang) refuses to
// compile an access to a BP_GUARDED_BY member without its lock, a call
// to a BP_REQUIRES function without the named capability, or a lock
// released on one path but not another. Under GCC (which has no
// capability analysis) every macro expands to nothing, so annotations
// are free for the default toolchain.
//
// The annotated types these macros are meant for live in
// util/mutex.hpp (Mutex / RecursiveMutex / SharedMutex and their RAII
// scoped locks); std::mutex itself cannot carry a capability attribute.
//
// Conventions used across the codebase:
//   BP_GUARDED_BY(mu)   on a data member: every read and write needs mu.
//   BP_REQUIRES(mu)     on a function: callers must already hold mu
//                       (the "...Locked()" naming convention, enforced).
//   BP_EXCLUDES(mu)     on a function: callers must NOT hold mu (the
//                       function acquires it itself; catches
//                       self-deadlock on non-recursive mutexes).
//   BP_ACQUIRE/RELEASE  on lock primitives and scoped-lock members.
//
// tests/negative_compile/ proves the annotations are live, not
// decorative: a CMake try_compile asserts that a guarded access
// without the lock FAILS the Clang build.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define BP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef BP_THREAD_ANNOTATION
#define BP_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

// --- type annotations ------------------------------------------------

// Marks a type as a lockable capability ("mutex", "shared_mutex", ...).
#define BP_CAPABILITY(x) BP_THREAD_ANNOTATION(capability(x))

// Marks an RAII type whose constructor acquires and destructor releases
// a capability (util::MutexLock and friends).
#define BP_SCOPED_CAPABILITY BP_THREAD_ANNOTATION(scoped_lockable)

// --- data-member annotations -----------------------------------------

// The member may only be accessed while holding the given capability.
#define BP_GUARDED_BY(x) BP_THREAD_ANNOTATION(guarded_by(x))

// The data POINTED TO by this member needs the capability (the pointer
// itself may be read freely).
#define BP_PT_GUARDED_BY(x) BP_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering declarations (deadlock prevention between capabilities).
#define BP_ACQUIRED_BEFORE(...) \
  BP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define BP_ACQUIRED_AFTER(...) \
  BP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// --- function annotations --------------------------------------------

// Caller must hold the capability (exclusively / shared) on entry, and
// still holds it on exit.
#define BP_REQUIRES(...) \
  BP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BP_REQUIRES_SHARED(...) \
  BP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability and holds it past return.
#define BP_ACQUIRE(...) BP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BP_ACQUIRE_SHARED(...) \
  BP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

// The function releases a capability the caller held on entry.
#define BP_RELEASE(...) BP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BP_RELEASE_SHARED(...) \
  BP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
// Releases however the capability was acquired (exclusive or shared) —
// what scoped-lock destructors use.
#define BP_RELEASE_GENERIC(...) \
  BP_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

// The function tries to acquire; the first argument is the return value
// that means success.
#define BP_TRY_ACQUIRE(...) \
  BP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Caller must NOT hold the capability (the function takes it itself).
#define BP_EXCLUDES(...) BP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Tells the analysis the capability IS held here without acquiring it —
// the escape hatch for holds-by-construction situations the analysis
// cannot see (e.g. a lambda invoked only while its enclosing function
// holds the lock). Backed by a runtime contract, never a plain claim.
#define BP_ASSERT_CAPABILITY(x) \
  BP_THREAD_ANNOTATION(assert_capability(x))

// The function returns a reference to the given capability.
#define BP_RETURN_CAPABILITY(x) BP_THREAD_ANNOTATION(lock_returned(x))

// Opts one function out of the analysis entirely. Every use must carry
// a justification comment (see the suppression policy in README.md).
#define BP_NO_THREAD_SAFETY_ANALYSIS \
  BP_THREAD_ANNOTATION(no_thread_safety_analysis)
