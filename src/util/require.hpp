// Contract checking. BP_REQUIRE guards public-API preconditions;
// BP_CHECK guards internal invariants. Both throw std::logic_error —
// a failure is a bug in the caller (REQUIRE) or in bp itself (CHECK),
// never an environmental condition, so Status is not appropriate.
#pragma once

#include <stdexcept>
#include <string>

namespace bp::util::internal {

[[noreturn]] inline void ContractFailure(const char* kind, const char* expr,
                                         const char* file, int line,
                                         const std::string& message) {
  std::string what(kind);
  what += " failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  if (!message.empty()) {
    what += " — ";
    what += message;
  }
  throw std::logic_error(what);
}

}  // namespace bp::util::internal

#define BP_REQUIRE(cond, ...)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::bp::util::internal::ContractFailure(                           \
          "BP_REQUIRE", #cond, __FILE__, __LINE__,                     \
          ::std::string(__VA_ARGS__));                                 \
    }                                                                  \
  } while (0)

#define BP_CHECK(cond, ...)                                            \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::bp::util::internal::ContractFailure(                           \
          "BP_CHECK", #cond, __FILE__, __LINE__,                       \
          ::std::string(__VA_ARGS__));                                 \
    }                                                                  \
  } while (0)
