#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace bp::util {

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                       : c);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", (unsigned long long)bytes);
  return StrFormat("%.1f %s", v, kUnits[unit]);
}

}  // namespace bp::util
