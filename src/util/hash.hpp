// Non-cryptographic hashing for hash maps, content fingerprints, and
// deterministic name->seed derivation.
#pragma once

#include <cstdint>
#include <string_view>

namespace bp::util {

// FNV-1a 64-bit. Stable across platforms and runs.
inline uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0) {
  uint64_t h = 14695981039346656037ULL ^ seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// SplitMix64 finalizer: good avalanche for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace bp::util
