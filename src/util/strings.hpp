// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bp::util {

std::string ToLower(std::string_view s);

// Split on any occurrence of `sep`; empty fields are dropped.
std::vector<std::string> Split(std::string_view s, char sep);

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

// printf-style formatting into a std::string (std::format is not complete
// in this toolchain's libstdc++).
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Human-readable byte count: "4.2 KiB", "1.0 MiB", ...
std::string HumanBytes(uint64_t bytes);

}  // namespace bp::util
