// Status / Result<T>: recoverable-error propagation for the bp libraries.
//
// Storage code encounters errors (I/O failure, corruption, missing keys)
// that callers are expected to handle, so public APIs that can fail return
// Status or Result<T> rather than throwing. Contract violations — caller
// bugs — throw std::logic_error via BP_REQUIRE (see util/require.hpp).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace bp::util {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kIoError,
  kCorruption,
  kOutOfRange,
  kFailedPrecondition,
  kAborted,
  kBudgetExhausted,
  kUnimplemented,
};

// Human-readable name of a status code ("NotFound", "IoError", ...).
std::string_view StatusCodeName(StatusCode code);

// A cheaply copyable success-or-error value. The OK status carries no
// message and allocates nothing.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = {}) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status AlreadyExists(std::string m = {}) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status InvalidArgument(std::string m = {}) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status IoError(std::string m = {}) {
    return {StatusCode::kIoError, std::move(m)};
  }
  static Status Corruption(std::string m = {}) {
    return {StatusCode::kCorruption, std::move(m)};
  }
  static Status OutOfRange(std::string m = {}) {
    return {StatusCode::kOutOfRange, std::move(m)};
  }
  static Status FailedPrecondition(std::string m = {}) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status Aborted(std::string m = {}) {
    return {StatusCode::kAborted, std::move(m)};
  }
  static Status BudgetExhausted(std::string m = {}) {
    return {StatusCode::kBudgetExhausted, std::move(m)};
  }
  static Status Unimplemented(std::string m = {}) {
    return {StatusCode::kUnimplemented, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsBudgetExhausted() const {
    return code_ == StatusCode::kBudgetExhausted;
  }

  // "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A value of type T or the Status explaining why it is absent.
// Result<T> is never in an "OK but empty" state.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : rep_(std::move(status)) {}  // NOLINT
  Result(StatusCode code, std::string message)
      : rep_(Status(code, std::move(message))) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  // Status(): OK when a value is held.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }

  // Precondition: ok(). Checked: throws std::logic_error when violated.
  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace bp::util

// Propagate a non-OK Status to the caller.
#define BP_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::bp::util::Status bp_st_ = (expr);           \
    if (!bp_st_.ok()) return bp_st_;              \
  } while (0)

// Evaluate a Result<T> expression; on success bind its value, otherwise
// return the error. `lhs` may declare a new variable ("auto x").
#define BP_ASSIGN_OR_RETURN(lhs, expr)            \
  BP_ASSIGN_OR_RETURN_IMPL_(                      \
      BP_STATUS_CONCAT_(bp_res_, __LINE__), lhs, expr)

#define BP_STATUS_CONCAT_INNER_(a, b) a##b
#define BP_STATUS_CONCAT_(a, b) BP_STATUS_CONCAT_INNER_(a, b)
#define BP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()
