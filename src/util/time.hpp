// Time representation. All simulated and stored times are milliseconds
// since an arbitrary epoch (int64). Wall-clock time is used only for
// measuring query latency, never for data.
#pragma once

#include <chrono>
#include <cstdint>

namespace bp::util {

using TimeMs = int64_t;

constexpr TimeMs kMsPerSecond = 1000;
constexpr TimeMs kMsPerMinute = 60 * kMsPerSecond;
constexpr TimeMs kMsPerHour = 60 * kMsPerMinute;
constexpr TimeMs kMsPerDay = 24 * kMsPerHour;

constexpr TimeMs Seconds(int64_t n) { return n * kMsPerSecond; }
constexpr TimeMs Minutes(int64_t n) { return n * kMsPerMinute; }
constexpr TimeMs Hours(int64_t n) { return n * kMsPerHour; }
constexpr TimeMs Days(int64_t n) { return n * kMsPerDay; }

// A half-open interval [open, close). close == kTimeMax means still open.
constexpr TimeMs kTimeMax = INT64_MAX;

struct TimeSpan {
  TimeMs open = 0;
  TimeMs close = kTimeMax;

  bool Overlaps(const TimeSpan& other) const {
    return open < other.close && other.open < close;
  }
  bool Contains(TimeMs t) const { return t >= open && t < close; }
};

// Monotonic stopwatch for latency measurement.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedMs() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }
  int64_t ElapsedUs() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bp::util
