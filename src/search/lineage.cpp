#include "search/lineage.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/algo.hpp"
#include "util/strings.hpp"

namespace bp::search {

using graph::Direction;
using graph::Node;
using graph::TraversalOptions;
using graph::VisitRecord;
using prov::EdgeKind;
using prov::NodeKind;
using util::Result;
using util::Status;

namespace {

// Human-readable node label for lineage reports.
Result<LineageStep> MakeStep(prov::ProvStore& store, NodeId node_id) {
  BP_ASSIGN_OR_RETURN(Node node, store.graph().GetNode(node_id));
  LineageStep step;
  step.node = node_id;
  switch (static_cast<NodeKind>(node.kind)) {
    case NodeKind::kPage:
      step.url = node.attrs.StringOr(prov::kAttrUrl, "");
      step.label = "page " + step.url;
      break;
    case NodeKind::kVisit: {
      auto page = store.PageOfView(node_id);
      if (page.ok()) {
        BP_ASSIGN_OR_RETURN(Node page_node, store.graph().GetNode(*page));
        step.url = page_node.attrs.StringOr(prov::kAttrUrl, "");
      }
      step.label = "visit of " + step.url;
      break;
    }
    case NodeKind::kDownload:
      step.url = node.attrs.StringOr(prov::kAttrUrl, "");
      step.label = util::StrFormat(
          "download %s -> %s", step.url.c_str(),
          std::string(node.attrs.StringOr(prov::kAttrTarget, "")).c_str());
      break;
    case NodeKind::kSearchTerm:
    case NodeKind::kSearchIssue:
      step.label = "search \"" +
                   std::string(node.attrs.StringOr(prov::kAttrQuery, "")) +
                   "\"";
      break;
    case NodeKind::kBookmark:
      step.label = "bookmark \"" +
                   std::string(node.attrs.StringOr(prov::kAttrTitle, "")) +
                   "\"";
      break;
    case NodeKind::kFormSubmission:
      step.label = "form [" +
                   std::string(node.attrs.StringOr(prov::kAttrSummary, "")) +
                   "]";
      break;
  }
  return step;
}

// Visit-count of the canonical page behind a lineage node (0 when the
// node has no page, e.g. a search term). Lazy refs: only node kinds are
// decoded until a candidate page's attributes are actually needed.
Result<std::pair<NodeId, int64_t>> PageAndVisitCount(
    prov::ProvStore& store, const graph::NodeRef& node,
    graph::QueryStats* stats) {
  NodeId page = 0;
  if (node.kind() == static_cast<uint32_t>(NodeKind::kPage)) {
    page = node.id();
  } else if (node.kind() == static_cast<uint32_t>(NodeKind::kVisit)) {
    auto canonical = store.PageOfView(node.id(), stats);
    if (canonical.ok()) page = *canonical;
  }
  if (page == 0) return std::pair<NodeId, int64_t>{0, 0};
  BP_ASSIGN_OR_RETURN(graph::NodeRef page_node,
                      store.graph().GetNodeRef(page, stats));
  BP_ASSIGN_OR_RETURN(graph::AttrMap attrs, page_node.attrs());
  return std::pair<NodeId, int64_t>{
      page, attrs.IntOr(prov::kAttrVisitCount, 0)};
}

}  // namespace

Result<LineageReport> TraceDownload(prov::ProvStore& store,
                                    NodeId download_node,
                                    const LineageOptions& options) {
  BP_ASSIGN_OR_RETURN(Node download, store.graph().GetNode(download_node));
  if (download.kind != static_cast<uint32_t>(NodeKind::kDownload)) {
    return Status::InvalidArgument("TraceDownload: not a download node");
  }

  TraversalOptions topts;
  topts.direction = Direction::kIn;
  topts.max_depth = options.max_depth;
  topts.budget = options.budget;
  // Ancestry must not cross kInstanceOf edges backwards into *other*
  // visits of the same page (a page's canonical node has in-edges from
  // every visit, not just this chain). Walk only action edges.
  topts.edge_filter = [](const graph::EdgeRef& edge) {
    EdgeKind kind = static_cast<EdgeKind>(edge.kind());
    return kind != EdgeKind::kInstanceOf &&
           kind != EdgeKind::kTermInstanceOf;
  };

  BP_ASSIGN_OR_RETURN(graph::TraversalResult traversal,
                      graph::Bfs(store.graph(), download_node, topts));

  LineageReport report;
  report.truncated = traversal.truncated;
  report.ancestors_scanned = traversal.visits.size();
  report.stats = traversal.stats;

  // First (nearest) recognizable ancestor in BFS order.
  NodeId found_node = 0;
  for (const VisitRecord& record : traversal.visits) {
    if (record.node == download_node) continue;
    BP_ASSIGN_OR_RETURN(graph::NodeRef node,
                        store.graph().GetNodeRef(record.node,
                                                 &report.stats));
    BP_ASSIGN_OR_RETURN(auto page_count,
                        PageAndVisitCount(store, node, &report.stats));
    if (page_count.first != 0 &&
        page_count.second >= options.min_visit_count) {
      report.found_recognizable = true;
      report.recognizable_page = page_count.first;
      found_node = record.node;
      BP_ASSIGN_OR_RETURN(Node page_node,
                          store.graph().GetNode(page_count.first));
      report.recognizable_url =
          std::string(page_node.attrs.StringOr(prov::kAttrUrl, ""));
      break;
    }
  }

  // Path: BFS parents lead from the recognizable node back to the
  // download; we present it in causal order (ancestor first).
  std::vector<NodeId> chain =
      traversal.PathTo(found_node != 0 ? found_node : traversal.visits
                                                          .back()
                                                          .node);
  // PathTo returns download -> ... -> ancestor (start first); reverse to
  // causal order.
  std::reverse(chain.begin(), chain.end());
  for (size_t i = 0; i < chain.size(); ++i) {
    BP_ASSIGN_OR_RETURN(LineageStep step, MakeStep(store, chain[i]));
    report.path.push_back(std::move(step));
  }
  return report;
}

Result<DescendantReport> DescendantDownloads(
    prov::ProvStore& store, const std::string& url,
    const LineageOptions& options) {
  DescendantReport report;
  BP_ASSIGN_OR_RETURN(NodeId page, store.PageForUrl(url));
  BP_ASSIGN_OR_RETURN(std::vector<NodeId> views,
                      store.ViewsOfPage(page, &report.stats));

  TraversalOptions topts;
  topts.direction = Direction::kOut;
  topts.max_depth = options.max_depth;
  topts.budget = options.budget;
  topts.edge_filter = [](const graph::EdgeRef& edge) {
    EdgeKind kind = static_cast<EdgeKind>(edge.kind());
    return kind != EdgeKind::kInstanceOf &&
           kind != EdgeKind::kTermInstanceOf;
  };

  std::unordered_map<NodeId, uint32_t> found;  // download -> min depth
  for (NodeId view : views) {
    BP_ASSIGN_OR_RETURN(graph::TraversalResult traversal,
                        graph::Bfs(store.graph(), view, topts));
    report.stats += traversal.stats;
    report.truncated = report.truncated || traversal.truncated;
    for (const VisitRecord& record : traversal.visits) {
      BP_ASSIGN_OR_RETURN(graph::NodeRef node,
                          store.graph().GetNodeRef(record.node,
                                                   &report.stats));
      if (node.kind() != static_cast<uint32_t>(NodeKind::kDownload)) {
        continue;
      }
      auto it = found.find(record.node);
      if (it == found.end() || record.depth < it->second) {
        found[record.node] = record.depth;
      }
    }
  }

  report.downloads.reserve(found.size());
  for (const auto& [node_id, depth] : found) {
    BP_ASSIGN_OR_RETURN(graph::NodeRef node,
                        store.graph().GetNodeRef(node_id, &report.stats));
    BP_ASSIGN_OR_RETURN(graph::AttrMap attrs, node.attrs());
    DescendantDownload download;
    download.download = node_id;
    download.source_url = std::string(attrs.StringOr(prov::kAttrUrl, ""));
    download.target_path =
        std::string(attrs.StringOr(prov::kAttrTarget, ""));
    download.depth = depth;
    report.downloads.push_back(std::move(download));
  }
  std::sort(report.downloads.begin(), report.downloads.end(),
            [](const DescendantDownload& a, const DescendantDownload& b) {
              if (a.depth != b.depth) return a.depth < b.depth;
              return a.download < b.download;
            });
  return report;
}

}  // namespace bp::search
