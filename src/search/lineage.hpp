// Download lineage (use case 2.4).
//
// "What the user really wants is, starting from a known location, the
// sequence of actions that resulted in the download." Two queries:
//
//   TraceDownload — breadth-first search over a download's ancestors,
//   stopping at the first node the user is "likely to recognize",
//   defined (as the paper suggests) by visit count. Returns the action
//   path recognizable-ancestor -> ... -> download.
//
//   DescendantDownloads — "Find all descendants of this page that are
//   downloads": after the user declares a page untrusted, every download
//   whose lineage passes through it.
#pragma once

#include <string>
#include <vector>

#include "prov/prov_store.hpp"
#include "util/budget.hpp"
#include "util/status.hpp"

namespace bp::search {

using graph::NodeId;

struct LineageOptions {
  // A page is "recognizable" when visited at least this often.
  int64_t min_visit_count = 5;
  uint32_t max_depth = 64;
  util::QueryBudget* budget = nullptr;
};

struct LineageStep {
  NodeId node = 0;
  std::string url;     // empty for non-page nodes (search terms etc.)
  std::string label;   // human-readable: node kind + title/query
  uint32_t edge_kind = 0;  // action that led to the NEXT step (0 at end)
};

struct LineageReport {
  bool found_recognizable = false;
  NodeId recognizable_page = 0;   // canonical page node
  std::string recognizable_url;
  // Path recognizable ancestor -> ... -> download (inclusive).
  std::vector<LineageStep> path;
  uint64_t ancestors_scanned = 0;
  bool truncated = false;
  graph::QueryStats stats;
};

// Walks the ancestry of `download_node` (a kDownload node) to the first
// recognizable page.
util::Result<LineageReport> TraceDownload(prov::ProvStore& store,
                                          NodeId download_node,
                                          const LineageOptions& options = {});

struct DescendantDownload {
  NodeId download = 0;
  std::string source_url;
  std::string target_path;
  uint32_t depth = 0;  // hops from the untrusted page's nearest view
};

struct DescendantReport {
  std::vector<DescendantDownload> downloads;
  bool truncated = false;
  graph::QueryStats stats;
};

// All downloads reachable from any view of the page with `url`.
util::Result<DescendantReport> DescendantDownloads(
    prov::ProvStore& store, const std::string& url,
    const LineageOptions& options = {});

}  // namespace bp::search
