// History search: the textual baseline and the provenance-aware
// contextual reranker (use case 2.1).
//
// Baseline ("Currently" in the paper): BM25 over page titles and URLs —
// it finds the rosebud *results page* but not Citizen Kane, because
// nothing connects the term to the film.
//
// Provenance-aware ("With Provenance"): after the textual stage, scores
// spread through the provenance neighborhood (Shah et al.'s reranking,
// which the paper cites as "readily extensible to history search"), so a
// first-generation descendant of the rosebud search page "receives
// substantial weight". Search-term nodes matching the query are seeded
// too (section 3.3: terms are user-generated descriptors in the lineage
// of the pages they generate).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "prov/prov_store.hpp"
#include "text/index.hpp"
#include "util/budget.hpp"
#include "util/status.hpp"

namespace bp::search {

using graph::NodeId;

struct RankedPage {
  NodeId page = 0;
  std::string url;
  std::string title;
  double text_score = 0.0;  // BM25 on the page's own text
  double prov_score = 0.0;  // provenance-neighborhood weight
  double total = 0.0;
};

struct ContextualSearchOptions {
  size_t k = 10;             // results to return
  size_t text_seeds = 20;    // textual candidates to expand from
  uint32_t expand_depth = 3; // neighborhood radius (graph hops)
  double decay = 0.5;        // per-hop weight decay
  double prov_weight = 1.0;  // blend: total = text + prov_weight * prov
  // Section 3.2 edge unification: skip redirect/embed edges during
  // expansion (they carry no user intent). Ablated by E9.
  bool unify_automatic_edges = true;
  util::QueryBudget* budget = nullptr;  // optional anytime bound
};

struct ContextualSearchResult {
  std::vector<RankedPage> pages;
  bool truncated = false;
  // Graph-side work: expansion rows/edges plus the page records folded
  // and fetched. (The inverted index's own postings reads are not graph
  // rows and are not counted here.)
  graph::QueryStats stats;
};

// Owns the inverted index over history pages (trees "textindex.*") and
// runs both search flavors against a ProvStore.
class HistorySearcher {
 public:
  static util::Result<std::unique_ptr<HistorySearcher>> Open(
      storage::Db& db, prov::ProvStore& store);

  // A read-only searcher over `snap`: the inverted index and all graph
  // expansion resolve through the snapshot, so queries on the returned
  // searcher are safe on a reader thread while the live stack keeps
  // ingesting. `bound_store` must be the matching ProvStore::AtSnapshot
  // handle (same snapshot); IndexNewPages on the result is a contract
  // violation — index BEFORE snapshotting so the frozen view is fully
  // searchable. `snap` and `bound_store` must outlive the result.
  util::Result<std::unique_ptr<HistorySearcher>> AtSnapshot(
      const storage::Snapshot& snap, prov::ProvStore& bound_store) const;
  bool snapshot_bound() const { return bound_; }

  // Indexes canonical pages added since the last call (id watermark), so
  // it can be called after every ingestion batch.
  util::Status IndexNewPages();

  // Recovery hook for a caller whose transaction rolled back after an
  // IndexNewPages composed into it: rewinds the watermark to what it
  // was before that indexing and re-reads the (reverted) corpus stats,
  // so pages whose node ids are reused later are not silently skipped.
  NodeId indexed_watermark() const { return indexed_watermark_; }
  util::Status RestoreIndexState(NodeId watermark) {
    indexed_watermark_ = watermark;
    return index_->ReloadStats();
  }

  // Baseline: BM25 only. Returns pages ranked by text_score.
  util::Result<ContextualSearchResult> TextualSearch(
      const std::string& query, size_t k);

  // Use case 2.1. Textual seeds + decay expansion through the provenance
  // graph; final rank blends both signals.
  util::Result<ContextualSearchResult> ContextualSearch(
      const std::string& query, const ContextualSearchOptions& options);

  prov::ProvStore& store() { return store_; }
  text::InvertedIndex& index() { return *index_; }

 private:
  HistorySearcher(storage::Db& db, prov::ProvStore& store)
      : db_(db), store_(store) {}

  util::Result<RankedPage> MakeRankedPage(NodeId page_node,
                                          graph::QueryStats* stats) const;

  storage::Db& db_;
  prov::ProvStore& store_;
  std::unique_ptr<text::InvertedIndex> index_;
  NodeId indexed_watermark_ = 0;
  bool bound_ = false;  // snapshot-bound handle (AtSnapshot)
};

}  // namespace bp::search
