#include "search/time_context.hpp"

#include <algorithm>
#include <unordered_set>

#include "graph/interval_index.hpp"

namespace bp::search {

using graph::Node;
using prov::NodeKind;
using util::Result;
using util::TimeSpan;

Result<TimeContextResult> TimeContextualSearch(
    HistorySearcher& searcher, const std::string& primary_query,
    const std::string& context_query, const TimeContextOptions& options) {
  prov::ProvStore& store = searcher.store();

  TimeContextResult result;
  BP_ASSIGN_OR_RETURN(
      ContextualSearchResult primary,
      searcher.TextualSearch(primary_query, options.candidate_pool));
  BP_ASSIGN_OR_RETURN(
      ContextualSearchResult context,
      searcher.TextualSearch(context_query, options.candidate_pool));
  result.stats += primary.stats;
  result.stats += context.stats;

  // Visit nodes of every context page.
  std::unordered_set<NodeId> context_visits;
  for (const RankedPage& page : context.pages) {
    BP_ASSIGN_OR_RETURN(std::vector<NodeId> views,
                        store.ViewsOfPage(page.page, &result.stats));
    context_visits.insert(views.begin(), views.end());
  }

  BP_ASSIGN_OR_RETURN(const graph::IntervalIndex* intervals,
                      store.VisitIntervals());

  graph::BudgetScope budget_scope(options.budget, &result.stats);
  for (const RankedPage& page : primary.pages) {
    if (options.budget != nullptr && !options.budget->Charge()) {
      result.truncated = true;
      break;
    }
    TimeContextMatch match;
    match.page = page;

    BP_ASSIGN_OR_RETURN(std::vector<NodeId> views,
                        store.ViewsOfPage(page.page, &result.stats));
    for (NodeId view : views) {
      BP_ASSIGN_OR_RETURN(graph::NodeRef node,
                          store.graph().GetNodeRef(view, &result.stats));
      if (node.kind() != static_cast<uint32_t>(NodeKind::kVisit)) continue;
      BP_ASSIGN_OR_RETURN(graph::AttrMap attrs, node.attrs());
      TimeSpan span;
      span.open = attrs.IntOr(prov::kAttrOpen, 0);
      span.close = attrs.IntOr(prov::kAttrClose, util::kTimeMax);
      for (uint64_t other : intervals->Overlapping(span)) {
        if (other == view || context_visits.count(other) == 0) continue;
        match.co_open = true;
        BP_ASSIGN_OR_RETURN(graph::NodeRef other_node,
                            store.graph().GetNodeRef(other, &result.stats));
        BP_ASSIGN_OR_RETURN(graph::AttrMap other_attrs, other_node.attrs());
        TimeSpan other_span;
        other_span.open = other_attrs.IntOr(prov::kAttrOpen, 0);
        other_span.close =
            other_attrs.IntOr(prov::kAttrClose, util::kTimeMax);
        const auto lo = std::max(span.open, other_span.open);
        const auto hi = std::min(span.close, other_span.close);
        if (hi > lo) match.overlap_ms += static_cast<double>(hi - lo);
      }
    }

    match.page.total = match.page.text_score *
                       (match.co_open ? options.co_open_boost : 1.0);
    result.matches.push_back(std::move(match));
  }

  std::sort(result.matches.begin(), result.matches.end(),
            [](const TimeContextMatch& a, const TimeContextMatch& b) {
              if (a.page.total != b.page.total) {
                return a.page.total > b.page.total;
              }
              if (a.overlap_ms != b.overlap_ms) {
                return a.overlap_ms > b.overlap_ms;
              }
              return a.page.page < b.page.page;
            });
  if (result.matches.size() > options.k) result.matches.resize(options.k);
  budget_scope.Flush();  // before `result` moves into the Result
  return result;
}

}  // namespace bp::search
