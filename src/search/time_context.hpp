// Time-contextual history search (use case 2.3): "wine associated with
// plane tickets".
//
// The primary query finds candidate pages textually; the context query
// finds the remembered companion pages; candidates are boosted when one
// of their visits was OPEN AT THE SAME TIME as a context page's visit.
// Requires the close timestamps of section 3.2 — with the Places-style
// "every page is always open" store this degrades to plain text search,
// which is exactly the paper's criticism.
#pragma once

#include <string>
#include <vector>

#include "search/history_search.hpp"
#include "util/status.hpp"

namespace bp::search {

struct TimeContextOptions {
  size_t k = 10;
  size_t candidate_pool = 30;  // textual candidates per side
  double co_open_boost = 4.0;  // multiplier when co-open with context
  util::QueryBudget* budget = nullptr;
};

struct TimeContextMatch {
  RankedPage page;
  bool co_open = false;       // overlapped a context visit
  double overlap_ms = 0.0;    // total overlap duration
};

struct TimeContextResult {
  std::vector<TimeContextMatch> matches;
  bool truncated = false;
  graph::QueryStats stats;
};

// Ranks pages matching `primary_query` by text score, boosted by co-open
// overlap with visits of pages matching `context_query`.
util::Result<TimeContextResult> TimeContextualSearch(
    HistorySearcher& searcher, const std::string& primary_query,
    const std::string& context_query, const TimeContextOptions& options = {});

}  // namespace bp::search
