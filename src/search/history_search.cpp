#include "search/history_search.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/algo.hpp"
#include "text/tokenizer.hpp"
#include "util/require.hpp"

namespace bp::search {

using graph::AttrMap;
using graph::Edge;
using graph::Node;
using prov::EdgeKind;
using prov::NodeKind;
using util::Result;
using util::Status;

Result<std::unique_ptr<HistorySearcher>> HistorySearcher::Open(
    storage::Db& db, prov::ProvStore& store) {
  std::unique_ptr<HistorySearcher> searcher(
      new HistorySearcher(db, store));
  BP_ASSIGN_OR_RETURN(searcher->index_,
                      text::InvertedIndex::Open(db, "textindex"));
  BP_RETURN_IF_ERROR(searcher->IndexNewPages());
  return searcher;
}

Result<std::unique_ptr<HistorySearcher>> HistorySearcher::AtSnapshot(
    const storage::Snapshot& snap, prov::ProvStore& bound_store) const {
  BP_REQUIRE(bound_store.snapshot_bound(),
             "AtSnapshot needs the matching snapshot-bound ProvStore");
  std::unique_ptr<HistorySearcher> view(
      new HistorySearcher(db_, bound_store));
  BP_ASSIGN_OR_RETURN(view->index_, index_->AtSnapshot(snap));
  view->indexed_watermark_ = indexed_watermark_;
  view->bound_ = true;
  return view;
}

Status HistorySearcher::IndexNewPages() {
  BP_REQUIRE(!bound_, "IndexNewPages on a snapshot-bound searcher");
  // Canonical page nodes carry url+title; node ids ascend, so the cursor
  // seeks straight to the first node past the watermark instead of
  // scanning (and skipping) everything below it.
  NodeId high = indexed_watermark_;
  graph::NodeCursor cur = store_.graph().Nodes(indexed_watermark_ + 1);
  for (; cur.Valid(); cur.Next()) {
    high = std::max(high, cur.node().id());
    if (cur.node().kind() != static_cast<uint32_t>(NodeKind::kPage)) {
      continue;
    }
    BP_ASSIGN_OR_RETURN(graph::AttrMap attrs, cur.node().attrs());
    std::string doc(attrs.StringOr(prov::kAttrUrl, ""));
    doc += ' ';
    doc += attrs.StringOr(prov::kAttrTitle, "");
    BP_RETURN_IF_ERROR(
        index_->AddDocument(cur.node().id(), text::Tokenize(doc)));
  }
  BP_RETURN_IF_ERROR(cur.status());
  indexed_watermark_ = high;
  return index_->Flush();
}

Result<RankedPage> HistorySearcher::MakeRankedPage(
    NodeId page_node, graph::QueryStats* stats) const {
  BP_ASSIGN_OR_RETURN(graph::NodeRef node,
                      store_.graph().GetNodeRef(page_node, stats));
  BP_ASSIGN_OR_RETURN(graph::AttrMap attrs, node.attrs());
  RankedPage page;
  page.page = page_node;
  page.url = std::string(attrs.StringOr(prov::kAttrUrl, ""));
  page.title = std::string(attrs.StringOr(prov::kAttrTitle, ""));
  return page;
}

Result<ContextualSearchResult> HistorySearcher::TextualSearch(
    const std::string& query, size_t k) {
  BP_ASSIGN_OR_RETURN(std::vector<text::ScoredDoc> docs,
                      index_->Search(text::Tokenize(query), k));
  ContextualSearchResult result;
  for (const text::ScoredDoc& doc : docs) {
    BP_ASSIGN_OR_RETURN(RankedPage page,
                        MakeRankedPage(doc.doc, &result.stats));
    page.text_score = doc.score;
    page.total = doc.score;
    result.pages.push_back(std::move(page));
  }
  return result;
}

Result<ContextualSearchResult> HistorySearcher::ContextualSearch(
    const std::string& query, const ContextualSearchOptions& options) {
  std::vector<std::string> tokens = text::Tokenize(query);

  // Stage 1: textual seeds (canonical pages).
  BP_ASSIGN_OR_RETURN(std::vector<text::ScoredDoc> docs,
                      index_->Search(tokens, options.text_seeds));
  std::vector<std::pair<NodeId, double>> seeds;
  std::unordered_map<NodeId, double> text_scores;
  for (const text::ScoredDoc& doc : docs) {
    seeds.push_back({doc.doc, doc.score});
    text_scores[doc.doc] = doc.score;
  }

  // Stage 1b: matching search-term nodes are seeds too — the query the
  // user once typed is in the lineage of what it produced.
  for (const std::string& token : tokens) {
    auto term = store_.TermForQuery(token);
    if (term.ok()) {
      seeds.push_back({*term, 1.0});
    } else if (!term.status().IsNotFound()) {
      return term.status();
    }
  }
  // Multi-token queries may exist as full term nodes ("plane tickets").
  if (tokens.size() > 1) {
    auto term = store_.TermForQuery(query);
    if (term.ok()) {
      seeds.push_back({*term, 1.5});
    } else if (!term.status().IsNotFound()) {
      return term.status();
    }
  }

  // Stage 2: spread relevance through the provenance neighborhood.
  graph::EdgeFilter filter;
  if (options.unify_automatic_edges) {
    filter = [](const graph::EdgeRef& edge) {
      return !prov::IsAutomaticEdge(static_cast<EdgeKind>(edge.kind()));
    };
  }
  BP_ASSIGN_OR_RETURN(
      graph::DecayExpansion expansion,
      graph::ExpandWithDecay(store_.graph(), seeds, options.expand_depth,
                             options.decay, filter, options.budget));

  ContextualSearchResult result;
  result.truncated = expansion.truncated;
  result.stats = expansion.stats;

  // Stage 3: fold weights onto canonical pages and blend. Lazy node refs
  // keep this cheap: only the kind is decoded unless the node is a page
  // we actually rank.
  std::unordered_map<NodeId, double> page_prov;
  for (const auto& [node_id, weight] : expansion.weights) {
    BP_ASSIGN_OR_RETURN(graph::NodeRef node,
                        store_.graph().GetNodeRef(node_id, &result.stats));
    NodeId page = 0;
    if (node.kind() == static_cast<uint32_t>(NodeKind::kPage)) {
      page = node_id;
    } else if (node.kind() == static_cast<uint32_t>(NodeKind::kVisit)) {
      auto canonical = store_.PageOfView(node_id, &result.stats);
      if (canonical.ok()) page = *canonical;
    }
    if (page != 0) page_prov[page] += weight;
  }

  for (const auto& [page_id, prov_score] : page_prov) {
    BP_ASSIGN_OR_RETURN(RankedPage page,
                        MakeRankedPage(page_id, &result.stats));
    auto text_it = text_scores.find(page_id);
    page.text_score = text_it == text_scores.end() ? 0.0 : text_it->second;
    page.prov_score = prov_score;
    page.total = page.text_score + options.prov_weight * page.prov_score;
    result.pages.push_back(std::move(page));
  }
  std::sort(result.pages.begin(), result.pages.end(),
            [](const RankedPage& a, const RankedPage& b) {
              if (a.total != b.total) return a.total > b.total;
              return a.page < b.page;
            });
  if (result.pages.size() > options.k) result.pages.resize(options.k);
  return result;
}

}  // namespace bp::search
