#include "search/personalize.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "text/tokenizer.hpp"

namespace bp::search {

using util::Result;

std::string PersonalizationResult::AugmentedQuery() const {
  std::string out = original_query;
  for (const std::string& term : expansion_terms) {
    out += ' ';
    out += term;
  }
  return out;
}

Result<PersonalizationResult> PersonalizeQuery(
    HistorySearcher& searcher, const std::string& query,
    const PersonalizeOptions& options) {
  PersonalizationResult result;
  result.original_query = query;

  ContextualSearchOptions copts = options.contextual;
  copts.k = options.history_results;
  BP_ASSIGN_OR_RETURN(ContextualSearchResult history,
                      searcher.ContextualSearch(query, copts));
  result.truncated = history.truncated;
  result.stats = history.stats;

  std::unordered_set<std::string> query_terms;
  for (const std::string& t : text::Tokenize(query)) query_terms.insert(t);

  // Mine only the *pure provenance* neighbors: pages that did NOT match
  // the query textually. Textual matches (e.g. the engine's own results
  // page, whose title quotes the query) restate the query rather than
  // revealing the user's context — the association signal the paper
  // wants lives in the contextually related pages.
  std::vector<const RankedPage*> pool;
  for (const RankedPage& page : history.pages) {
    if (page.text_score == 0.0 && page.total > 0.0) {
      pool.push_back(&page);
    }
  }
  if (pool.empty()) {
    for (const RankedPage& page : history.pages) {
      if (page.total > 0.0) pool.push_back(&page);
    }
  }

  // Relevance-weighted term mass + within-neighborhood document
  // frequency (terms recurring across many context pages are the
  // association; singletons are noise).
  std::unordered_map<std::string, double> term_mass;
  std::unordered_map<std::string, uint32_t> term_df;
  for (const RankedPage* page : pool) {
    std::unordered_set<std::string> seen_here;
    for (const std::string& term :
         text::Tokenize(page->title + " " + page->url)) {
      if (query_terms.count(term) > 0) continue;
      term_mass[term] += page->total;
      if (seen_here.insert(term).second) ++term_df[term];
    }
  }

  // Specificity: idf from the history index so boilerplate that saturates
  // the whole history scores low.
  result.candidates.reserve(term_mass.size());
  for (const auto& [term, mass] : term_mass) {
    BP_ASSIGN_OR_RETURN(double idf, searcher.index().Idf(term));
    if (idf <= 0.0) continue;
    const double association = std::log(1.0 + term_df[term]);
    result.candidates.push_back(TermCandidate{term, mass * association * idf});
  }
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const TermCandidate& a, const TermCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.term < b.term;
            });
  for (size_t i = 0;
       i < options.max_expansion_terms && i < result.candidates.size();
       ++i) {
    result.expansion_terms.push_back(result.candidates[i].term);
  }
  return result;
}

}  // namespace bp::search
