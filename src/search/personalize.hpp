// Personalizing web search (use case 2.2).
//
// A contextual history search over the ambiguous query finds the user's
// own context (the gardener's rosebud neighborhood is full of flower
// pages); term-frequency analysis of that neighborhood yields candidate
// expansion terms; the query sent to the engine becomes e.g.
// "rosebud flower".
//
// Privacy property (the paper's key point): the engine sees ONLY the
// augmented query string. PersonalizationResult contains the query and
// diagnostic candidates; `DisclosedBytes()` of the query is the entire
// information flow to the third party — no history leaves the machine.
#pragma once

#include <string>
#include <vector>

#include "search/history_search.hpp"
#include "util/status.hpp"

namespace bp::search {

struct TermCandidate {
  std::string term;
  double score = 0.0;  // relevance-weighted frequency x specificity
};

struct PersonalizationResult {
  std::string original_query;
  std::vector<std::string> expansion_terms;
  std::vector<TermCandidate> candidates;  // diagnostics (stay local)
  bool truncated = false;
  graph::QueryStats stats;  // from the inner contextual search

  // The exact string the engine would receive.
  std::string AugmentedQuery() const;
  // Bytes disclosed to the third party (the augmented query, nothing
  // else).
  size_t DisclosedBytes() const { return AugmentedQuery().size(); }
};

struct PersonalizeOptions {
  size_t max_expansion_terms = 1;
  size_t history_results = 15;  // contextual results to mine for terms
  ContextualSearchOptions contextual;  // inner search knobs

  PersonalizeOptions() {
    // Context pages sit one instance-hop further out than their visits;
    // radius 4 reaches pages two user actions away from the query.
    contextual.expand_depth = 4;
  }
};

// Mines the user's provenance neighborhood of `query` for expansion
// terms. Terms already in the query are excluded; candidates are scored
// by (sum of the relevance of pages containing them) x idf from the
// *history* index (specific words beat boilerplate).
util::Result<PersonalizationResult> PersonalizeQuery(
    HistorySearcher& searcher, const std::string& query,
    const PersonalizeOptions& options = {});

}  // namespace bp::search
