// Metrics exporter smoke: stand up the full stack, drive every
// instrumented hot path once (async ingest, group commit, checkpoint,
// each one-shot query family), and print the observability surface.
//
//   ./build/metrics_exporter          DebugDump() JSON on stdout
//   ./build/metrics_exporter --text   Prometheus-style text instead
//
// CI runs the JSON form and validates it against
// scripts/metrics_schema.json (scripts/validate_metrics.py), so the
// exporter doubles as the end-to-end check that the schema, the
// exporter, and the instrumentation agree.
#include <cstdio>
#include <cstring>

#include "obs/trace.hpp"
#include "prov/provenance_db.hpp"
#include "sim/scenario.hpp"

using namespace bp;

int main(int argc, char** argv) {
  const bool text = argc > 1 && std::strcmp(argv[1], "--text") == 0;

  storage::MemEnv env;
  prov::ProvenanceDb::Options options;
  options.db.env = &env;
  auto db = prov::ProvenanceDb::Open("metrics.db", options);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // Record every span so the dump demonstrably carries a slow-op log
  // even on a fast machine.
  obs::Tracer::Global().set_slow_threshold_us(0);

  // The quickstart session: search -> results -> film page -> download,
  // pushed through the ASYNC pipeline so the committer-side instruments
  // (batch latency, queue depth, coalescing) record too.
  sim::ScenarioBuilder s;
  uint64_t search = s.Search(/*tab=*/1, "rosebud");
  s.Wait(util::Seconds(1));
  uint64_t results =
      s.Visit(1, "https://search.example/results?q=rosebud",
              "rosebud - search results",
              capture::NavigationAction::kSearchResult, 0, search);
  s.Wait(util::Seconds(5));
  uint64_t kane = s.Visit(1, "http://films.example/citizen-kane",
                          "citizen kane 1941 film",
                          capture::NavigationAction::kLink, results);
  s.Wait(util::Seconds(5));
  uint64_t dl = s.Download("http://films.example/kane-script.pdf",
                           "/downloads/kane-script.pdf", kane);
  for (const capture::BrowserEvent& event : s.events()) {
    if (!(*db)->IngestAsync(event).ok()) {
      std::fprintf(stderr, "enqueue failed\n");
      return 1;
    }
  }
  if (auto st = (*db)->Drain(); !st.ok()) {
    std::fprintf(stderr, "drain: %s\n", st.ToString().c_str());
    return 1;
  }

  // One call per instrumented query family.
  (void)(*db)->Search("rosebud");
  (void)(*db)->TextualSearch("rosebud");
  (void)(*db)->Personalize("rosebud");
  (void)(*db)->TimeContext("rosebud", "kane");
  auto it = (*db)->recorder().download_map().find(dl);
  if (it != (*db)->recorder().download_map().end()) {
    (void)(*db)->TraceDownload(it->second);
    (void)(*db)->DescendantDownloads("http://films.example/citizen-kane");
  }
  (void)(*db)->Sync();

  std::fputs(text ? (*db)->DebugDumpText().c_str()
                  : (*db)->DebugDump().c_str(),
             stdout);
  return 0;
}
