// Download forensics (use case 2.4): a user discovers malware and asks
// "how was I infected?", then "what else came from that site?".
//
// Build & run:   ./build/examples/download_forensics
#include <cstdio>

#include "prov/provenance_db.hpp"
#include "sim/scenario.hpp"

using namespace bp;

int main() {
  storage::MemEnv env;
  prov::ProvenanceDb::Options options;
  options.db.env = &env;
  auto db = prov::ProvenanceDb::Open("forensics.db", options);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // Eight days of visiting a news portal, then one bad click: portal ->
  // URL shortener -> "free codecs" site -> installer download. Two days
  // later a second download from the same site.
  sim::MalwareScenario scenario = sim::MakeMalwareScenario();
  if (!(*db)->IngestAll(scenario.events).ok()) return 1;

  std::printf("the user finds %s is malware.\n\n",
              scenario.download_target.c_str());

  // Question 1: how did I get it? -> first recognizable ancestor.
  auto report = (*db)->TraceDownload(
      (*db)->recorder().download_map().at(scenario.download_id));
  std::printf("Q1: \"How did I get to this download?\"\n");
  if (report->found_recognizable) {
    std::printf("    first page you'd recognize: %s\n",
                report->recognizable_url.c_str());
    std::printf("    the full action sequence from there:\n");
    for (const auto& step : report->path) {
      std::printf("      -> %s\n", step.label.c_str());
    }
  }
  std::printf("    (%s)\n", report->stats.ToString().c_str());

  // Question 2: the codec site is clearly untrusted — what else came
  // from it? -> descendant downloads.
  std::printf("\nQ2: \"Find all downloads descending from %s\"\n",
              scenario.untrusted_url.c_str());
  auto downloads = (*db)->DescendantDownloads(scenario.untrusted_url);
  for (const auto& d : downloads->downloads) {
    std::printf("      %s  (from %s, %u hops)\n", d.target_path.c_str(),
                d.source_url.c_str(), d.depth);
  }
  std::printf("    (%s)\n", downloads->stats.ToString().c_str());
  std::printf("\nboth files can now be checked for infection.\n");
  return 0;
}
