// Download forensics (use case 2.4): a user discovers malware and asks
// "how was I infected?", then "what else came from that site?".
//
// Build & run:   ./build/examples/download_forensics
#include <cstdio>

#include "capture/bus.hpp"
#include "capture/recorders.hpp"
#include "search/lineage.hpp"
#include "sim/scenario.hpp"
#include "storage/db.hpp"

using namespace bp;

int main() {
  storage::MemEnv env;
  storage::DbOptions db_options;
  db_options.env = &env;
  auto db = storage::Db::Open("forensics.db", db_options);
  auto store = prov::ProvStore::Open(**db, {});
  capture::ProvenanceRecorder recorder(**store);
  capture::EventBus bus;
  bus.Subscribe(&recorder);

  // Eight days of visiting a news portal, then one bad click: portal ->
  // URL shortener -> "free codecs" site -> installer download. Two days
  // later a second download from the same site.
  sim::MalwareScenario scenario = sim::MakeMalwareScenario();
  if (!bus.PublishAll(scenario.events).ok()) return 1;

  std::printf("the user finds %s is malware.\n\n",
              scenario.download_target.c_str());

  // Question 1: how did I get it? -> first recognizable ancestor.
  auto report = search::TraceDownload(
      **store, recorder.download_map().at(scenario.download_id), {});
  std::printf("Q1: \"How did I get to this download?\"\n");
  if (report->found_recognizable) {
    std::printf("    first page you'd recognize: %s\n",
                report->recognizable_url.c_str());
    std::printf("    the full action sequence from there:\n");
    for (const auto& step : report->path) {
      std::printf("      -> %s\n", step.label.c_str());
    }
  }

  // Question 2: the codec site is clearly untrusted — what else came
  // from it? -> descendant downloads.
  std::printf("\nQ2: \"Find all downloads descending from %s\"\n",
              scenario.untrusted_url.c_str());
  auto downloads =
      search::DescendantDownloads(**store, scenario.untrusted_url);
  for (const auto& d : *downloads) {
    std::printf("      %s  (from %s, %u hops)\n", d.target_path.c_str(),
                d.source_url.c_str(), d.depth);
  }
  std::printf("\nboth files can now be checked for infection.\n");
  return 0;
}
