// Quickstart: record a short browsing session into the provenance store
// and ask it the paper's motivating question — "where did this come
// from?" — plus a contextual history search the textual baseline fails.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "capture/bus.hpp"
#include "capture/recorders.hpp"
#include "search/history_search.hpp"
#include "search/lineage.hpp"
#include "sim/scenario.hpp"
#include "storage/db.hpp"

using namespace bp;

int main() {
  // 1. An embedded database in memory (pass Env::Posix() + a path for a
  //    real file).
  storage::MemEnv env;
  storage::DbOptions db_options;
  db_options.env = &env;
  auto db = storage::Db::Open("quickstart.db", db_options);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. A provenance store and its event recorder.
  auto store = prov::ProvStore::Open(**db, {});
  capture::ProvenanceRecorder recorder(**store);
  capture::EventBus bus;
  bus.Subscribe(&recorder);

  // 3. Script a session: search "rosebud", click through to Citizen
  //    Kane, then download the script PDF from a film archive.
  sim::ScenarioBuilder s;
  uint64_t search = s.Search(/*tab=*/1, "rosebud");
  s.Wait(util::Seconds(1));
  uint64_t results =
      s.Visit(1, "https://search.example/results?q=rosebud",
              "rosebud - search results",
              capture::NavigationAction::kSearchResult, 0, search);
  s.Wait(util::Seconds(5));
  uint64_t kane = s.Visit(1, "http://films.example/citizen-kane",
                          "citizen kane 1941 film",
                          capture::NavigationAction::kLink, results);
  s.Wait(util::Seconds(30));
  uint64_t archive = s.Visit(1, "http://archive.example/scripts",
                             "screenplay archive",
                             capture::NavigationAction::kLink, kane);
  s.Wait(util::Seconds(5));
  uint64_t dl = s.Download("http://archive.example/kane-script.pdf",
                           "/home/user/Downloads/kane-script.pdf", archive);
  if (!bus.PublishAll(s.events()).ok()) return 1;

  // 4. Contextual history search: "rosebud" finds Citizen Kane even
  //    though the page text never contains the word.
  auto searcher = search::HistorySearcher::Open(**db, **store);
  auto hits = (*searcher)->ContextualSearch("rosebud", {});
  std::printf("history search for \"rosebud\":\n");
  for (const auto& page : hits->pages) {
    std::printf("  %.3f  %-42s %s\n", page.total, page.url.c_str(),
                page.title.c_str());
  }

  // 5. Download lineage: how did kane-script.pdf get here?
  auto report = search::TraceDownload(
      **store, recorder.download_map().at(dl),
      [] {
        search::LineageOptions o;
        o.min_visit_count = 1;
        return o;
      }());
  std::printf("\nlineage of kane-script.pdf:\n");
  for (const auto& step : report->path) {
    std::printf("  -> %s\n", step.label.c_str());
  }
  return 0;
}
