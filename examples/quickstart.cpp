// Quickstart: record a short browsing session into the provenance store
// — through the asynchronous ingest pipeline, the way a capture thread
// would — and ask it the paper's motivating question — "where did this
// come from?" — plus a contextual history search the textual baseline
// fails, and a snapshot query that stays consistent while ingestion
// continues.
//
// ProvenanceDb is the one supported way to stand the system up: it owns
// the storage engine, the provenance store, the event bus + recorder,
// and the history searcher behind a single Open().
//
// Build & run:   ./build/quickstart
#include <cstdio>

#include "prov/provenance_db.hpp"
#include "sim/scenario.hpp"

using namespace bp;

int main() {
  // 1. The whole stack in one Open. MemEnv keeps this demo in memory;
  //    drop the env override to put a real file at the path.
  storage::MemEnv env;
  prov::ProvenanceDb::Options options;
  options.db.env = &env;
  //    Storage diet on: checkpoints compress page slots that clear the
  //    ratio floor, and buffer-pool evictions demote into an in-memory
  //    compressed cold tier. (Also reachable via BP_COMPRESSION=fast.)
  options.db.compression.mode =
      storage::compress::CompressionOptions::Mode::kFast;
  auto db = prov::ProvenanceDb::Open("quickstart.db", options);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. Script a session: search "rosebud", click through to Citizen
  //    Kane, then download the script PDF from a film archive.
  sim::ScenarioBuilder s;
  uint64_t search = s.Search(/*tab=*/1, "rosebud");
  s.Wait(util::Seconds(1));
  uint64_t results =
      s.Visit(1, "https://search.example/results?q=rosebud",
              "rosebud - search results",
              capture::NavigationAction::kSearchResult, 0, search);
  s.Wait(util::Seconds(5));
  uint64_t kane = s.Visit(1, "http://films.example/citizen-kane",
                          "citizen kane 1941 film",
                          capture::NavigationAction::kLink, results);
  s.Wait(util::Seconds(30));
  uint64_t archive = s.Visit(1, "http://archive.example/scripts",
                             "screenplay archive",
                             capture::NavigationAction::kLink, kane);
  s.Wait(util::Seconds(5));
  uint64_t dl = s.Download("http://archive.example/kane-script.pdf",
                           "/home/user/Downloads/kane-script.pdf", archive);

  //    Async ingest: each event is a non-blocking enqueue (what a
  //    browser's capture thread pays); the background committer batches
  //    them into storage transactions. Flush(ticket) is the durability
  //    barrier — it returns once everything up to that ticket is
  //    committed AND fsynced.
  prov::ProvenanceDb::IngestTicket last = 0;
  for (const auto& event : s.events()) {
    auto ticket = (*db)->IngestAsync(event);
    if (!ticket.ok()) return 1;
    last = *ticket;
  }
  if (!(*db)->Flush(last).ok()) return 1;
  std::printf("ingested %llu events asynchronously (all durable)\n\n",
              (unsigned long long)last);

  // 3. Contextual history search: "rosebud" finds Citizen Kane even
  //    though the page text never contains the word.
  auto hits = (*db)->Search("rosebud");
  std::printf("history search for \"rosebud\":\n");
  for (const auto& page : hits->pages) {
    std::printf("  %.3f  %-42s %s\n", page.total, page.url.c_str(),
                page.title.c_str());
  }
  std::printf("  (%s)\n", hits->stats.ToString().c_str());

  // 4. Download lineage: how did kane-script.pdf get here?
  auto report = (*db)->TraceDownload(
      (*db)->recorder().download_map().at(dl),
      [] {
        search::LineageOptions o;
        o.min_visit_count = 1;
        return o;
      }());
  std::printf("\nlineage of kane-script.pdf:\n");
  for (const auto& step : report->path) {
    std::printf("  -> %s\n", step.label.c_str());
  }
  std::printf("  (%s)\n", report->stats.ToString().c_str());

  // 5. Snapshot-isolated reads: freeze a view, keep ingesting, and the
  //    view's answers do not move — this is how query load (even on
  //    other threads) runs against a live capture stream. Drain() is
  //    the everything-so-far barrier; one-shot queries and
  //    BeginSnapshot drain implicitly (read-your-writes), so the
  //    explicit call is only needed when you want durability itself.
  auto view = (*db)->BeginSnapshot();
  if (!view.ok()) return 1;
  sim::ScenarioBuilder more;
  uint64_t rose_search = more.Search(2, "rosebud");
  more.Visit(2, "http://flowers.example/rosebud-care",
             "rosebud flower care tips",
             capture::NavigationAction::kSearchResult, 0, rose_search);
  for (const auto& event : more.events()) {
    if (!(*db)->IngestAsync(event).ok()) return 1;
  }
  if (!(*db)->Drain().ok()) return 1;

  auto frozen = view->Search("rosebud");
  auto live = (*db)->Search("rosebud");
  if (!frozen.ok() || !live.ok()) return 1;
  std::printf(
      "\nsnapshot vs live after ingesting the flower session:\n"
      "  snapshot (commit %llu): %zu pages — the gardener's page is "
      "invisible\n  live one-shot query:    %zu pages — it is there\n",
      (unsigned long long)view->commit_seq(), frozen->pages.size(),
      live->pages.size());

  // 6. One coherent counter set for the whole storage stack: commits,
  //    the shared buffer pool behind every snapshot read (hits/misses/
  //    resident bytes), and what the released snapshots paid. A warm
  //    read path shows snapshot reads served from memory, not storage.
  //    The explicit checkpoint folds the WAL into the main file, which
  //    is where the storage diet compresses eligible page slots — the
  //    compression counters below come from that fold.
  {
    auto released = std::move(*view);  // checkpoint needs no live snapshots
  }
  if (!(*db)->Checkpoint().ok()) return 1;
  storage::PagerStats stats = (*db)->storage_stats();
  std::printf(
      "\nstorage counters: %llu commits, %llu wal frames\n"
      "  buffer pool: %llu hits, %llu misses, %llu KiB resident "
      "(%llu frames)\n"
      "  snapshot reads: %llu from pool, %llu from memo, %llu from "
      "storage\n"
      "  compression:   %llu pages squeezed %llu -> %llu bytes at "
      "checkpoint,\n"
      "                 %llu decompress reads, %llu cold demotions, "
      "%llu cold hits\n"
      "  (per-query attribution rides in each result's QueryStats: %s)\n",
      (unsigned long long)stats.commits,
      (unsigned long long)stats.wal_frames,
      (unsigned long long)stats.pool_hits,
      (unsigned long long)stats.pool_misses,
      (unsigned long long)(stats.pool_bytes / 1024),
      (unsigned long long)stats.pool_frames,
      (unsigned long long)stats.snapshot_pool_hits,
      (unsigned long long)stats.snapshot_cache_hits,
      (unsigned long long)stats.snapshot_pages_read,
      (unsigned long long)stats.compressed_pages,
      (unsigned long long)stats.compressible_raw_bytes,
      (unsigned long long)stats.compressed_bytes,
      (unsigned long long)stats.decompress_reads,
      (unsigned long long)stats.pool_cold_demotions,
      (unsigned long long)stats.pool_cold_hits,
      live->stats.ToString().c_str());
  return 0;
}
