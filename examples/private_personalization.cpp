// Private web-search personalization (use case 2.2): the gardener whose
// "rosebud" means a flower, not a sled. The browser augments her query
// locally from provenance; the engine never sees her history.
//
// Build & run:   ./build/examples/private_personalization
#include <cstdio>

#include "capture/bus.hpp"
#include "capture/recorders.hpp"
#include "search/personalize.hpp"
#include "sim/scenario.hpp"
#include "storage/db.hpp"

using namespace bp;

int main() {
  storage::MemEnv env;
  storage::DbOptions db_options;
  db_options.env = &env;
  auto db = storage::Db::Open("gardener.db", db_options);
  auto store = prov::ProvStore::Open(**db, {});
  capture::ProvenanceRecorder recorder(**store);
  capture::EventBus bus;
  bus.Subscribe(&recorder);

  // Four evenings of rosebud searches that all ended on horticulture
  // pages.
  sim::GardenerScenario scenario = sim::MakeGardenerScenario();
  if (!bus.PublishAll(scenario.events).ok()) return 1;

  auto searcher = search::HistorySearcher::Open(**db, **store);
  auto result =
      search::PersonalizeQuery(**searcher, scenario.ambiguous_query);

  std::printf("the user types:        \"%s\"\n",
              scenario.ambiguous_query.c_str());
  std::printf("the engine receives:   \"%s\"\n",
              result->AugmentedQuery().c_str());
  std::printf("bytes disclosed:       %zu (the query string, nothing "
              "else)\n\n",
              result->DisclosedBytes());

  std::printf("how the browser decided (all local, never sent):\n");
  int shown = 0;
  for (const auto& candidate : result->candidates) {
    std::printf("  %-14s %.3f\n", candidate.term.c_str(), candidate.score);
    if (++shown >= 8) break;
  }
  std::printf("\nwith \"%s\" added, an engine disambiguates toward "
              "gardening —\nwithout ever learning why.\n",
              result->expansion_terms.empty()
                  ? "(nothing)"
                  : result->expansion_terms[0].c_str());
  return 0;
}
