// Multi-profile service: one ProvenanceService hosting several browser
// profiles ("work", "home", ...) behind a shard-worker fleet and a
// bounded handle cache, all sharing one buffer-pool byte budget.
//
// Build & run:   ./build/service_demo
#include <cstdio>
#include <string>
#include <vector>

#include "capture/events.hpp"
#include "service/provenance_service.hpp"
#include "storage/env.hpp"
#include "util/time.hpp"

using namespace bp;

namespace {

capture::VisitEvent Visit(int i, const std::string& page) {
  capture::VisitEvent v;
  v.time = util::Days(1) + static_cast<util::TimeMs>(i) * 60'000;
  v.tab = 1;
  v.visit_id = static_cast<uint64_t>(i) + 1;
  v.url = "https://" + page;
  v.title = page;
  v.action = capture::NavigationAction::kTyped;
  return v;
}

}  // namespace

int main() {
  storage::MemEnv env;
  service::ServiceOptions options;
  options.workers = 2;
  options.max_live_handles = 2;  // fewer than the profiles we'll serve
  options.db.db.env = &env;
  options.db.db.pool_bytes = 1 << 20;  // ONE byte budget for every profile
  auto svc = service::ProvenanceService::Create("/profiles", options);
  if (!svc.ok()) {
    std::fprintf(stderr, "create: %s\n", svc.status().ToString().c_str());
    return 1;
  }

  // Four profiles stream captures through two shard workers; with only
  // two live handles the cache opens, evicts, and reopens databases
  // under the covers while every event still lands in its own profile.
  const std::vector<std::string> profiles = {"work", "home", "lab", "travel"};
  for (int i = 0; i < 6; ++i) {
    for (const std::string& profile : profiles) {
      std::string page = profile + ".example/day/" + std::to_string(i);
      auto status = (*svc)->Ingest(profile, Visit(i, page));
      if (!status.ok()) {
        std::fprintf(stderr, "ingest: %s\n", status.ToString().c_str());
        return 1;
      }
    }
  }
  if (!(*svc)->Drain().ok()) return 1;

  // Cross-profile queries: each snapshot is that profile's frozen view.
  for (const std::string& profile : profiles) {
    auto status = (*svc)->WithSnapshot(
        profile, [&](prov::ProvenanceDb::SnapshotView& view) {
          auto own = view.store().PageForUrl("https://" + profile +
                                             ".example/day/0");
          auto other = view.store().PageForUrl("https://work.example/day/0");
          std::printf("%-7s sees its own day-0 page: %s;  work's: %s\n",
                      profile.c_str(), own.ok() ? "yes" : "no",
                      profile == "work" ? "(same profile)"
                      : other.ok()      ? "LEAK"
                                        : "no (isolated)");
          return util::Status::Ok();
        });
    if (!status.ok()) {
      std::fprintf(stderr, "snapshot: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  service::ServiceStats stats = (*svc)->Stats();
  std::printf(
      "\n%llu events committed across %zu profiles; handle cache: %llu live, "
      "%llu opens, %llu reopens, %llu evictions\n",
      (unsigned long long)stats.committed, profiles.size(),
      (unsigned long long)stats.live_handles, (unsigned long long)stats.opens,
      (unsigned long long)stats.reopens, (unsigned long long)stats.evictions);
  return 0;
}
