// History explorer: simulate N days of browsing, persist BOTH schemas to
// a real database file on disk, and compare what each can answer.
// Demonstrates the full pipeline plus durability (reopen the file and
// query again).
//
// Usage:   ./build/examples/history_explorer [days] [seed] [query]
// e.g.     ./build/examples/history_explorer 30 7 wine
#include <cstdio>
#include <cstdlib>
#include <string>

#include "capture/bus.hpp"
#include "capture/recorders.hpp"
#include "search/history_search.hpp"
#include "search/time_context.hpp"
#include "sim/browser.hpp"
#include "storage/db.hpp"
#include "util/strings.hpp"

using namespace bp;

int main(int argc, char** argv) {
  const uint32_t days = argc > 1 ? std::atoi(argv[1]) : 14;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  const std::string query = argc > 3 ? argv[3] : "";
  const std::string path = "/tmp/bp_history_explorer.db";

  // Fresh file each run.
  (void)storage::Env::Posix()->Remove(path);
  (void)storage::Env::Posix()->Remove(path + ".journal");

  // 1. Simulate a user.
  util::Rng rng(seed);
  sim::Vocabulary vocab = sim::Vocabulary::Create(rng, {});
  sim::WebGraph web = sim::WebGraph::Generate(rng, {}, vocab);
  sim::UserConfig user;
  user.seed = seed;
  user.days = days;
  sim::SimOutput out = sim::BrowserSim(web, user).Run();
  std::printf("simulated %u days: %zu events, %llu page visits\n", days,
              out.events.size(), (unsigned long long)out.total_visits);

  // 2. Ingest into both schemas, on disk.
  {
    auto db = storage::Db::Open(path, {});
    auto places = places::PlacesStore::Open(**db);
    auto prov = prov::ProvStore::Open(**db, {});
    capture::PlacesRecorder places_recorder(**places);
    capture::ProvenanceRecorder prov_recorder(**prov);
    capture::EventBus bus;
    bus.Subscribe(&places_recorder);
    bus.Subscribe(&prov_recorder);
    if (!bus.PublishAll(out.events).ok()) return 1;
    auto searcher = search::HistorySearcher::Open(**db, **prov);
    (void)searcher;  // builds the text index before the file closes
  }

  // 3. Reopen the file (recovery path included) and explore.
  auto db = storage::Db::Open(path, {});
  auto places = places::PlacesStore::Open(**db);
  auto prov = prov::ProvStore::Open(**db, {});
  auto searcher = search::HistorySearcher::Open(**db, **prov);

  auto space = (*db)->Space();
  std::printf("database file: %s (%s)\n", path.c_str(),
              util::HumanBytes(space->file_bytes).c_str());
  std::printf("  places.*    %s\n",
              util::HumanBytes(space->BytesForPrefix("places.")).c_str());
  std::printf("  prov.*      %s\n",
              util::HumanBytes(space->BytesForPrefix("prov.")).c_str());
  std::printf("  places rows: %llu places, %llu visits\n",
              (unsigned long long)*(*places)->PlaceCount(),
              (unsigned long long)*(*places)->VisitCount());
  std::printf("  prov graph:  %llu nodes, %llu edges\n",
              (unsigned long long)*(*prov)->NodeCount(),
              (unsigned long long)*(*prov)->EdgeCount());

  // 4. Compare the two searches on a query (default: the user's own
  //    most recent search).
  std::string probe = query;
  if (probe.empty() && !out.searches.empty()) {
    probe = out.searches.back().query;
  }
  if (probe.empty()) return 0;

  std::printf("\nawesomebar (Places frecency) for \"%s\":\n", probe.c_str());
  auto matches = (*places)->AutocompleteSearch(
      probe, 5, util::Days(days) + util::Hours(12));
  for (const auto& match : *matches) {
    std::printf("  %8.0f  %-40s %s\n", match.frecency,
                match.place.url.c_str(), match.place.title.c_str());
  }

  std::printf("\nprovenance contextual search for \"%s\":\n", probe.c_str());
  auto hits = (*searcher)->ContextualSearch(probe, {});
  int shown = 0;
  for (const auto& page : hits->pages) {
    std::printf("  %8.3f  %-40s %s\n", page.total, page.url.c_str(),
                page.title.c_str());
    if (++shown >= 5) break;
  }
  return 0;
}
