#!/usr/bin/env python3
"""Gate bench results against a committed baseline.

Every bench writes BENCH_<name>.json (--json). CI smoke-runs the whole
suite, then this script compares the results against the snapshot
committed under bench/baseline/ and FAILS the job when any TRACKED
metric regresses beyond its tolerance (relative).

Tracked metrics are listed in bench/baseline/tracked.json:

    {
      "<bench>": {
        "<metric>": "higher" | "lower",
        "<metric>": {"direction": "higher" | "lower", "tolerance": 3.0},
        ...
      },
      ...
    }

where the value says which direction is better. The plain-string form
uses --max-regression as its tolerance; the object form carries its own.
Deterministic metrics (structural counters, hit counts, byte sizes,
fsync counts) belong in the string form. Latency percentiles may be
gated with the object form at a LOOSE tolerance (e.g. 3.0 = 4x) — wide
enough to absorb runner variance, tight enough to catch an
order-of-magnitude tail blow-up. Raw throughput numbers are diffed for
the log but never gated.

A tracked metric that is missing from the current run, the baseline, or
both is a hard failure: silently dropping an instrumented number is
exactly the regression this gate exists to catch.

--update-baseline copies the current run's BENCH_*.json files over the
baseline directory (after printing the diff) instead of failing. Use it
locally after an intentional perf change, then commit the result.

Exit codes: 0 clean, 1 regression / missing tracked data, 2 usage.
"""

import argparse
import glob
import json
import os
import shutil
import sys


def load_results(directory):
    results = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        with open(path) as f:
            data = json.load(f)
        results[data["bench"]] = data["metrics"]
    return results


def fmt(value):
    return f"{value:.6g}"


def parse_gate(bench, metric, spec, default_tolerance, failures):
    """Returns (direction, tolerance) or None for an untracked metric."""
    if spec is None:
        return None
    if isinstance(spec, str):
        direction, tolerance = spec, default_tolerance
    elif isinstance(spec, dict):
        direction = spec.get("direction")
        tolerance = spec.get("tolerance", default_tolerance)
    else:
        failures.append(f"{bench}/{metric}: bad gate spec {spec!r}")
        return None
    if direction not in ("higher", "lower"):
        failures.append(f"{bench}/{metric}: bad direction {direction!r}")
        return None
    return direction, tolerance


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory with baseline BENCH_*.json + tracked.json")
    parser.add_argument("--current", required=True,
                        help="directory with this run's BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="default relative regression tolerance (0.25)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="copy current BENCH_*.json over the baseline "
                             "instead of failing (prints the diff first)")
    args = parser.parse_args()

    tracked_path = os.path.join(args.baseline, "tracked.json")
    if not os.path.exists(tracked_path):
        print(f"bench_diff: no {tracked_path}", file=sys.stderr)
        return 2
    with open(tracked_path) as f:
        # Keys starting with "_" are commentary, not bench names.
        tracked = {bench: metrics
                   for bench, metrics in json.load(f).items()
                   if not bench.startswith("_")}

    baseline = load_results(args.baseline)
    current = load_results(args.current)

    failures = []
    print(f"{'bench/metric':56} {'baseline':>12} {'current':>12} "
          f"{'delta':>8}  gate")
    for bench in sorted(set(baseline) | set(current) | set(tracked)):
        gated = tracked.get(bench, {})
        base_metrics = baseline.get(bench)
        cur_metrics = current.get(bench)
        if base_metrics is None and cur_metrics is not None:
            print(f"{bench:56} {'-':>12} {'(new)':>12} {'-':>8}  info")
            if gated:
                failures.append(f"{bench}: tracked but no baseline file "
                                "committed (run with --update-baseline)")
            continue
        if base_metrics is None:
            failures.append(f"{bench}: tracked but no baseline file committed")
            continue
        if cur_metrics is None:
            if gated:
                failures.append(f"{bench}: result file missing from current run")
            continue
        # Union with the tracked keys so a metric that vanished from BOTH
        # sides (e.g. renamed in the bench but not in tracked.json) still
        # fails instead of being skipped.
        for metric in sorted(set(base_metrics) | set(cur_metrics) | set(gated)):
            name = f"{bench}/{metric}"
            base = base_metrics.get(metric)
            cur = cur_metrics.get(metric)
            gate = parse_gate(bench, metric, gated.get(metric),
                              args.max_regression, failures)
            if cur is None:
                if gate is not None:
                    failures.append(f"{name}: tracked metric missing from "
                                    "current run")
                continue
            if base is None:
                print(f"{name:56} {'-':>12} {fmt(cur):>12} {'-':>8}  new")
                if gate is not None:
                    failures.append(f"{name}: tracked metric has no baseline "
                                    "value (run with --update-baseline)")
                continue
            delta = (cur - base) / base if base != 0 else float("inf")
            if gate is None:
                print(f"{name:56} {fmt(base):>12} {fmt(cur):>12} "
                      f"{delta:+7.1%}  info")
                continue
            direction, tolerance = gate
            if direction == "lower" and base == 0:
                # No relative comparison is possible against a zero
                # baseline; failing on ANY nonzero current would make
                # the gate fire on measurement granularity alone.
                print(f"{name:56} {fmt(base):>12} {fmt(cur):>12} "
                      f"{'-':>8}  zero-base")
                continue
            if direction == "higher":
                regressed = cur < base * (1.0 - tolerance)
            else:
                regressed = cur > base * (1.0 + tolerance)
            verdict = "FAIL" if regressed else "ok"
            print(f"{name:56} {fmt(base):>12} {fmt(cur):>12} "
                  f"{delta:+7.1%}  {verdict}")
            if regressed:
                failures.append(
                    f"{name}: {fmt(base)} -> {fmt(cur)} "
                    f"({delta:+.1%}, tolerance {tolerance:.0%}, "
                    f"{direction} is better)")

    if args.update_baseline:
        copied = 0
        for path in sorted(glob.glob(os.path.join(args.current,
                                                  "BENCH_*.json"))):
            shutil.copy(path, os.path.join(args.baseline,
                                           os.path.basename(path)))
            copied += 1
        print(f"\nbench_diff: baseline updated ({copied} result files "
              f"copied to {args.baseline})")
        return 0

    if failures:
        print("\nbench_diff: REGRESSIONS", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbench_diff: all tracked metrics within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
