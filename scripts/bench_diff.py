#!/usr/bin/env python3
"""Gate bench results against a committed baseline.

Every bench writes BENCH_<name>.json (--json). CI smoke-runs the whole
suite, then this script compares the results against the snapshot
committed under bench/baseline/ and FAILS the job when any TRACKED
metric regresses by more than --max-regression (relative).

Tracked metrics are listed in bench/baseline/tracked.json:

    { "<bench>": { "<metric>": "higher" | "lower", ... }, ... }

where the value says which direction is better. Only metrics that are
deterministic under the seeded simulation (structural counters, hit
counts, byte sizes, fsync counts) belong there — wall-clock numbers
vary across runners and are DIFFED for the log but never gated.

Exit codes: 0 clean, 1 regression / missing tracked data, 2 usage.
"""

import argparse
import glob
import json
import os
import sys


def load_results(directory):
    results = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        with open(path) as f:
            data = json.load(f)
        results[data["bench"]] = data["metrics"]
    return results


def fmt(value):
    return f"{value:.6g}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory with baseline BENCH_*.json + tracked.json")
    parser.add_argument("--current", required=True,
                        help="directory with this run's BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="relative regression tolerance (default 0.25)")
    args = parser.parse_args()

    tracked_path = os.path.join(args.baseline, "tracked.json")
    if not os.path.exists(tracked_path):
        print(f"bench_diff: no {tracked_path}", file=sys.stderr)
        return 2
    with open(tracked_path) as f:
        # Keys starting with "_" are commentary, not bench names.
        tracked = {bench: metrics
                   for bench, metrics in json.load(f).items()
                   if not bench.startswith("_")}

    baseline = load_results(args.baseline)
    current = load_results(args.current)
    tolerance = args.max_regression

    failures = []
    print(f"{'bench/metric':56} {'baseline':>12} {'current':>12} "
          f"{'delta':>8}  gate")
    for bench in sorted(set(baseline) | set(current)):
        gated = tracked.get(bench, {})
        base_metrics = baseline.get(bench)
        cur_metrics = current.get(bench)
        if base_metrics is None:
            print(f"{bench:56} {'-':>12} {'(new)':>12} {'-':>8}  info")
            continue
        if cur_metrics is None:
            if gated:
                failures.append(f"{bench}: result file missing from current run")
            continue
        for metric in sorted(set(base_metrics) | set(cur_metrics)):
            name = f"{bench}/{metric}"
            base = base_metrics.get(metric)
            cur = cur_metrics.get(metric)
            direction = gated.get(metric)
            if cur is None:
                if direction is not None:
                    failures.append(f"{name}: tracked metric disappeared")
                continue
            if base is None:
                print(f"{name:56} {'-':>12} {fmt(cur):>12} {'-':>8}  new")
                continue
            delta = (cur - base) / base if base != 0 else float("inf")
            if direction is None:
                print(f"{name:56} {fmt(base):>12} {fmt(cur):>12} "
                      f"{delta:+7.1%}  info")
                continue
            if direction == "higher":
                regressed = cur < base * (1.0 - tolerance)
            elif direction == "lower":
                regressed = cur > base * (1.0 + tolerance)
            else:
                failures.append(f"{name}: bad direction {direction!r}")
                continue
            verdict = "FAIL" if regressed else "ok"
            print(f"{name:56} {fmt(base):>12} {fmt(cur):>12} "
                  f"{delta:+7.1%}  {verdict}")
            if regressed:
                failures.append(
                    f"{name}: {fmt(base)} -> {fmt(cur)} "
                    f"({delta:+.1%}, tolerance {tolerance:.0%}, "
                    f"{direction} is better)")

    # A tracked bench that produced no baseline file is a configuration
    # error worth failing loudly on.
    for bench in tracked:
        if bench not in baseline:
            failures.append(f"{bench}: tracked but no baseline file committed")

    if failures:
        print("\nbench_diff: REGRESSIONS", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbench_diff: all tracked metrics within "
          f"{tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
