#!/usr/bin/env python3
"""Validate a bp-metrics-v1 dump against scripts/metrics_schema.json.

Dependency-free (stdlib only): implements exactly the JSON Schema subset
the schema file uses — type, const, enum, required, properties, items,
and allOf with if/then — so CI does not need jsonschema installed.

Usage:
    ./build/metrics_exporter | python3 scripts/validate_metrics.py
    python3 scripts/validate_metrics.py --schema scripts/metrics_schema.json dump.json

Beyond the schema, a few semantic checks on the content: the dump must
carry at least one instrument of each kind the engine registers
(histogram + counter), and histogram quantiles must be ordered
(p50 <= p90 <= p99 <= max).

Exit codes: 0 valid, 1 invalid, 2 usage.
"""

import argparse
import json
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def check(instance, schema, path, errors):
    """Appends a message to errors for every violation under `path`."""
    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {instance!r}")
        return
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not one of {schema['enum']}")
        return
    if "type" in schema:
        checker = TYPE_CHECKS.get(schema["type"])
        if checker is None:
            errors.append(f"{path}: schema uses unsupported type "
                          f"{schema['type']!r}")
            return
        if not checker(instance):
            errors.append(f"{path}: expected {schema['type']}, got "
                          f"{type(instance).__name__}")
            return
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in instance:
                check(instance[key], sub, f"{path}.{key}", errors)
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            check(item, schema["items"], f"{path}[{i}]", errors)
    for clause in schema.get("allOf", []):
        if "if" in clause:
            trial = []
            check(instance, clause["if"], path, trial)
            if not trial and "then" in clause:
                check(instance, clause["then"], path, errors)
        else:
            check(instance, clause, path, errors)


def semantic_checks(dump, errors):
    metrics = dump.get("metrics", [])
    kinds = {m.get("type") for m in metrics if isinstance(m, dict)}
    for needed in ("counter", "histogram"):
        if needed not in kinds:
            errors.append(f"$.metrics: no {needed} present — the engine "
                          "always registers at least one")
    for i, m in enumerate(metrics):
        if not isinstance(m, dict) or m.get("type") != "histogram":
            continue
        p50, p90, p99 = m.get("p50", 0), m.get("p90", 0), m.get("p99", 0)
        if not (p50 <= p90 <= p99 <= max(m.get("max", 0), p99)):
            errors.append(f"$.metrics[{i}] ({m.get('name')}): quantiles out "
                          f"of order: p50={p50} p90={p90} p99={p99} "
                          f"max={m.get('max')}")
        if m.get("count", 0) == 0 and m.get("sum", 0) != 0:
            errors.append(f"$.metrics[{i}] ({m.get('name')}): sum without "
                          "count")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schema", default="scripts/metrics_schema.json")
    parser.add_argument("dump", nargs="?",
                        help="dump file; stdin when omitted")
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)
    try:
        if args.dump:
            with open(args.dump) as f:
                dump = json.load(f)
        else:
            dump = json.load(sys.stdin)
    except json.JSONDecodeError as e:
        print(f"validate_metrics: dump is not valid JSON: {e}",
              file=sys.stderr)
        return 1

    errors = []
    check(dump, schema, "$", errors)
    semantic_checks(dump, errors)
    if errors:
        print("validate_metrics: INVALID", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"validate_metrics: ok ({len(dump.get('metrics', []))} metrics, "
          f"{len(dump.get('slow_spans', []))} slow spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
