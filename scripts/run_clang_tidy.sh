#!/usr/bin/env bash
# Run the checked-in .clang-tidy over all of src/, the same way the CI
# clang-tidy job does:
#
#   scripts/run_clang_tidy.sh            # configure + lint
#   BUILD_DIR=build-tidy CXX=clang++-18 scripts/run_clang_tidy.sh
#
# Needs clang++ and clang-tidy (a compile database built by Clang, so
# clang-tidy sees the exact flags — including -Wthread-safety — the
# gated build uses). WarningsAsErrors is '*' in .clang-tidy, so any
# warning is a nonzero exit here and a red CI job.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tidy}
CXX=${CXX:-clang++}

cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DCMAKE_CXX_COMPILER="${CXX}"

RUNNER=$(command -v run-clang-tidy || command -v run-clang-tidy-18 || true)
if [[ -n "${RUNNER}" ]]; then
  "${RUNNER}" -p "${BUILD_DIR}" -quiet "^.*/src/.*\.cpp$"
else
  # Fallback when the parallel runner script isn't installed.
  find src -name '*.cpp' -print0 |
    xargs -0 -n 1 clang-tidy -p "${BUILD_DIR}" --quiet
fi
