// Tests for the event model, recorders (both schemas fed by one stream),
// and the browsing simulator (determinism, structural validity, scale).
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "capture/bus.hpp"
#include "capture/recorders.hpp"
#include "sim/browser.hpp"
#include "sim/scenario.hpp"
#include "sim/vocab.hpp"
#include "sim/web.hpp"
#include "storage/env.hpp"

namespace bp {
namespace {

using capture::BrowserEvent;
using capture::CloseEvent;
using capture::EventBus;
using capture::NavigationAction;
using capture::PlacesRecorder;
using capture::ProvenanceRecorder;
using capture::SearchEvent;
using capture::VisitEvent;
using storage::DbOptions;
using storage::MemEnv;

// ------------------------------------------------------------------ bus

// Sinks for the delivery-semantics tests: one counts, one fails on
// command.
class CountingSink : public capture::EventSink {
 public:
  util::Status OnEvent(const BrowserEvent&) override {
    ++events_seen;
    return util::Status::Ok();
  }
  int events_seen = 0;
};

class FailingSink : public capture::EventSink {
 public:
  util::Status OnEvent(const BrowserEvent&) override {
    ++events_seen;
    if (fail) return util::Status::IoError("sink failure");
    return util::Status::Ok();
  }
  bool fail = false;
  int events_seen = 0;
};

TEST(EventBusTest, PublishDeliversToAllSinksDespiteFailure) {
  // A mid-stream sink failure must not starve the sinks after it — the
  // storage-overhead experiment's "same stream" invariant depends on
  // every sink seeing every event.
  CountingSink before;
  FailingSink failing;
  CountingSink after;
  EventBus bus;
  bus.Subscribe(&before);
  bus.Subscribe(&failing);
  bus.Subscribe(&after);

  sim::ScenarioBuilder b;
  b.Visit(1, "http://a", "A", NavigationAction::kTyped);
  b.Visit(1, "http://b", "B", NavigationAction::kTyped);
  const std::vector<BrowserEvent>& events = b.events();

  failing.fail = true;
  util::Status status = bus.Publish(events[0]);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("sink failure"), std::string::npos);
  // Every sink — including the one after the failure — saw the event.
  EXPECT_EQ(before.events_seen, 1);
  EXPECT_EQ(failing.events_seen, 1);
  EXPECT_EQ(after.events_seen, 1);

  // Recovered sink: the stream continues in lockstep.
  failing.fail = false;
  ASSERT_TRUE(bus.Publish(events[1]).ok());
  EXPECT_EQ(before.events_seen, 2);
  EXPECT_EQ(after.events_seen, 2);
}

TEST(EventBusTest, PublishReturnsFirstErrorOfSeveral) {
  FailingSink first;
  FailingSink second;
  EventBus bus;
  bus.Subscribe(&first);
  bus.Subscribe(&second);
  first.fail = true;
  second.fail = true;

  sim::ScenarioBuilder b;
  b.Visit(1, "http://a", "A", NavigationAction::kTyped);
  util::Status status = bus.Publish(b.events()[0]);
  EXPECT_FALSE(status.ok());
  // Both sinks ran even though both failed.
  EXPECT_EQ(first.events_seen, 1);
  EXPECT_EQ(second.events_seen, 1);
}

TEST(EventBusTest, PublishAllStopsAfterFailedEventButFansItOut) {
  FailingSink failing;
  CountingSink after;
  EventBus bus;
  bus.Subscribe(&failing);
  bus.Subscribe(&after);
  failing.fail = true;

  sim::ScenarioBuilder b;
  b.Visit(1, "http://a", "A", NavigationAction::kTyped);
  b.Visit(1, "http://b", "B", NavigationAction::kTyped);
  EXPECT_FALSE(bus.PublishAll(b.events()).ok());
  // The failed event was fully fanned out; the next event never started.
  EXPECT_EQ(failing.events_seen, 1);
  EXPECT_EQ(after.events_seen, 1);
}

// ------------------------------------------------------------ recorders

class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DbOptions opts;
    opts.env = &env_;
    auto db = storage::Db::Open("cap.db", opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto places = places::PlacesStore::Open(*db_);
    ASSERT_TRUE(places.ok());
    places_ = std::move(*places);
    auto prov = prov::ProvStore::Open(*db_, {});
    ASSERT_TRUE(prov.ok());
    prov_ = std::move(*prov);

    places_recorder_ = std::make_unique<PlacesRecorder>(*places_);
    prov_recorder_ = std::make_unique<ProvenanceRecorder>(*prov_);
    bus_.Subscribe(places_recorder_.get());
    bus_.Subscribe(prov_recorder_.get());
  }

  MemEnv env_;
  std::unique_ptr<storage::Db> db_;
  std::unique_ptr<places::PlacesStore> places_;
  std::unique_ptr<prov::ProvStore> prov_;
  std::unique_ptr<PlacesRecorder> places_recorder_;
  std::unique_ptr<ProvenanceRecorder> prov_recorder_;
  EventBus bus_;
};

TEST_F(RecorderTest, LinkReferrerKeptByBothSchemas) {
  sim::ScenarioBuilder b;
  uint64_t v1 = b.Visit(1, "http://a", "A", NavigationAction::kTyped);
  b.Wait(1000);
  uint64_t v2 =
      b.Visit(1, "http://b", "B", NavigationAction::kLink, v1);
  ASSERT_TRUE(bus_.PublishAll(b.events()).ok());

  // Places kept the from_visit chain for the link.
  auto visit = places_->GetVisit(places_recorder_->visit_map().at(v2));
  ASSERT_TRUE(visit.ok());
  EXPECT_EQ(visit->from_visit, places_recorder_->visit_map().at(v1));

  // Provenance too.
  auto node = prov_recorder_->visit_map().at(v2);
  uint64_t in_edges = 0;
  ASSERT_TRUE(prov_->graph()
                  .ForEachEdge(node, graph::Direction::kIn,
                               [&](const graph::Edge&) {
                                 ++in_edges;
                                 return true;
                               })
                  .ok());
  EXPECT_GE(in_edges, 1u);
}

TEST_F(RecorderTest, TypedReferrerDroppedByPlacesKeptByProvenance) {
  sim::ScenarioBuilder b;
  uint64_t v1 = b.Visit(1, "http://a", "A", NavigationAction::kTyped);
  b.Wait(1000);
  uint64_t v2 =
      b.Visit(1, "http://b", "B", NavigationAction::kTyped, v1);
  ASSERT_TRUE(bus_.PublishAll(b.events()).ok());

  // The paper's core gap: Places records from_visit = 0 for typed.
  auto visit = places_->GetVisit(places_recorder_->visit_map().at(v2));
  EXPECT_EQ(visit->from_visit, 0u);

  // Provenance keeps a kTyped edge.
  auto node = prov_recorder_->visit_map().at(v2);
  bool typed_edge = false;
  ASSERT_TRUE(
      prov_->graph()
          .ForEachEdge(node, graph::Direction::kIn,
                       [&](const graph::Edge& edge) {
                         if (edge.kind ==
                             static_cast<uint32_t>(prov::EdgeKind::kTyped)) {
                           typed_edge = true;
                         }
                         return true;
                       })
          .ok());
  EXPECT_TRUE(typed_edge);
}

TEST_F(RecorderTest, SearchBecomesInputRowVsLineageNodes) {
  sim::ScenarioBuilder b;
  uint64_t search = b.Search(1, "rosebud");
  b.Wait(500);
  uint64_t results =
      b.Visit(1, "https://search.example/results?q=rosebud",
              "rosebud - results", NavigationAction::kSearchResult, 0,
              search);
  ASSERT_TRUE(bus_.PublishAll(b.events()).ok());
  (void)results;

  // Places: just an input-history string.
  int input_rows = 0;
  ASSERT_TRUE(places_
                  ->ForEachInput([&](uint64_t, const places::InputRow& row) {
                    EXPECT_EQ(row.input, "rosebud");
                    ++input_rows;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(input_rows, 1);

  // Provenance: term node -> issuance -> results visit.
  auto term = prov_->TermForQuery("rosebud");
  ASSERT_TRUE(term.ok());
  auto issue = prov_recorder_->search_map().at(search);
  bool result_edge = false;
  ASSERT_TRUE(
      prov_->graph()
          .ForEachEdge(issue, graph::Direction::kOut,
                       [&](const graph::Edge& edge) {
                         if (edge.kind == static_cast<uint32_t>(
                                              prov::EdgeKind::kSearchResult)) {
                           result_edge = true;
                         }
                         return true;
                       })
          .ok());
  EXPECT_TRUE(result_edge);
}

TEST_F(RecorderTest, CloseEventsDroppedByPlacesStoredByProvenance) {
  sim::ScenarioBuilder b;
  uint64_t v = b.Visit(1, "http://a", "A", NavigationAction::kTyped);
  b.Wait(60000);
  b.Close(1, v);
  ASSERT_TRUE(bus_.PublishAll(b.events()).ok());

  auto node =
      prov_->graph().GetNode(prov_recorder_->visit_map().at(v));
  ASSERT_TRUE(node.ok());
  EXPECT_TRUE(node->attrs.GetInt(prov::kAttrClose).has_value());
  // Places has no close concept at all — nothing to assert beyond the
  // visit row existing.
  EXPECT_EQ(*places_->VisitCount(), 1u);
}

TEST_F(RecorderTest, BookmarkClickLineage) {
  sim::ScenarioBuilder b;
  uint64_t v1 = b.Visit(1, "http://a", "A", NavigationAction::kTyped);
  b.Wait(1000);
  uint64_t bm = b.BookmarkAdd("http://a", "A", v1);
  b.Wait(50000);
  uint64_t v2 = b.Visit(1, "http://a", "A", NavigationAction::kBookmark, 0,
                        0, bm);
  ASSERT_TRUE(bus_.PublishAll(b.events()).ok());

  prov::NodeId bookmark = prov_recorder_->bookmark_map().at(bm);
  bool click_edge = false;
  ASSERT_TRUE(
      prov_->graph()
          .ForEachEdge(bookmark, graph::Direction::kOut,
                       [&](const graph::Edge& edge) {
                         if (edge.kind ==
                             static_cast<uint32_t>(
                                 prov::EdgeKind::kBookmarkClick)) {
                           EXPECT_EQ(edge.dst,
                                     prov_recorder_->visit_map().at(v2));
                           click_edge = true;
                         }
                         return true;
                       })
          .ok());
  EXPECT_TRUE(click_edge);
}

// ------------------------------------------------------------- simulator

class SimTest : public ::testing::Test {
 protected:
  sim::SimOutput RunSim(uint32_t days, uint64_t seed = 7) {
    util::Rng rng(99);
    sim::Vocabulary vocab =
        sim::Vocabulary::Create(rng, sim::VocabConfig{});
    sim::WebConfig web_config;
    web_config.sites_per_topic = 3;
    web_config.pages_per_site = 20;
    sim::WebGraph web = sim::WebGraph::Generate(rng, web_config, vocab);
    sim::UserConfig user;
    user.seed = seed;
    user.days = days;
    return sim::BrowserSim(web, user).Run();
  }
};

TEST_F(SimTest, DeterministicForSeed) {
  auto a = RunSim(3, 42);
  auto b = RunSim(3, 42);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(capture::DescribeEvent(a.events[i]),
              capture::DescribeEvent(b.events[i]));
  }
  auto c = RunSim(3, 43);
  EXPECT_NE(a.events.size(), c.events.size());
}

TEST_F(SimTest, EventsAreTimeOrderedAndWellFormed) {
  auto out = RunSim(5);
  ASSERT_FALSE(out.events.empty());
  util::TimeMs prev = 0;
  std::unordered_set<uint64_t> visit_ids;
  for (const BrowserEvent& event : out.events) {
    util::TimeMs t = capture::EventTime(event);
    EXPECT_GE(t, prev);
    prev = t;
    if (const auto* visit = std::get_if<VisitEvent>(&event)) {
      EXPECT_FALSE(visit->url.empty());
      EXPECT_NE(visit->visit_id, 0u);
      // Referrers refer backwards.
      if (visit->referrer_visit != 0) {
        EXPECT_TRUE(visit_ids.count(visit->referrer_visit) > 0)
            << "forward reference in stream";
      }
      EXPECT_TRUE(visit_ids.insert(visit->visit_id).second)
          << "duplicate visit id";
    }
    if (const auto* close = std::get_if<CloseEvent>(&event)) {
      EXPECT_TRUE(visit_ids.count(close->visit_id) > 0);
    }
  }
}

TEST_F(SimTest, ProducesAllEventKinds) {
  auto out = RunSim(20);
  std::set<size_t> kinds;
  std::set<NavigationAction> actions;
  for (const BrowserEvent& event : out.events) {
    kinds.insert(event.index());
    if (const auto* visit = std::get_if<VisitEvent>(&event)) {
      actions.insert(visit->action);
    }
  }
  // All six event types fire in 20 days of browsing.
  EXPECT_EQ(kinds.size(), 6u) << "missing event kinds";
  // Key navigation actions all occur.
  EXPECT_TRUE(actions.count(NavigationAction::kLink));
  EXPECT_TRUE(actions.count(NavigationAction::kTyped));
  EXPECT_TRUE(actions.count(NavigationAction::kSearchResult));
  EXPECT_TRUE(actions.count(NavigationAction::kEmbed));
}

TEST_F(SimTest, GroundTruthEpisodesConsistent) {
  auto out = RunSim(10);
  EXPECT_FALSE(out.searches.empty());
  std::unordered_map<uint64_t, const VisitEvent*> visits;
  for (const BrowserEvent& event : out.events) {
    if (const auto* visit = std::get_if<VisitEvent>(&event)) {
      visits[visit->visit_id] = visit;
    }
  }
  for (const sim::SearchEpisode& episode : out.searches) {
    ASSERT_TRUE(visits.count(episode.results_visit) > 0);
    EXPECT_EQ(visits.at(episode.results_visit)->action,
              NavigationAction::kSearchResult);
    if (episode.clicked_visit != 0) {
      ASSERT_TRUE(visits.count(episode.clicked_visit) > 0);
      EXPECT_EQ(visits.at(episode.clicked_visit)->url,
                episode.clicked_url);
    }
  }
  for (const sim::DownloadEpisode& episode : out.downloads) {
    EXPECT_FALSE(episode.resource_url.empty());
    EXPECT_FALSE(episode.referral_chain_visits.empty());
  }
}

TEST_F(SimTest, ScalesRoughlyLinearlyWithDays) {
  auto short_run = RunSim(4);
  auto long_run = RunSim(16);
  EXPECT_GT(long_run.total_visits, short_run.total_visits * 2);
}

TEST_F(SimTest, StreamIngestsIntoBothSchemasWithoutErrors) {
  auto out = RunSim(6);
  MemEnv env;
  DbOptions opts;
  opts.env = &env;
  opts.sync = false;
  auto db = storage::Db::Open("s.db", opts);
  ASSERT_TRUE(db.ok());
  auto places = places::PlacesStore::Open(**db);
  auto prov = prov::ProvStore::Open(**db, {});
  ASSERT_TRUE(places.ok() && prov.ok());
  PlacesRecorder places_recorder(**places);
  ProvenanceRecorder prov_recorder(**prov);
  EventBus bus;
  bus.Subscribe(&places_recorder);
  bus.Subscribe(&prov_recorder);
  ASSERT_TRUE(bus.PublishAll(out.events).ok());

  EXPECT_GT(*(*places)->VisitCount(), 0u);
  EXPECT_GT(*(*prov)->NodeCount(), *(*places)->PlaceCount());
  auto invariants = (*prov)->CheckInvariants();
  ASSERT_TRUE(invariants.ok());
  EXPECT_TRUE(*invariants);
}

}  // namespace
}  // namespace bp
