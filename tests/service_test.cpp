// ProvenanceService: shard routing and per-profile isolation, the LRU
// handle cache (open-on-demand, eviction through clean Close, reopen
// sees everything, pins beat eviction), per-shard backpressure (block
// and reject), read-your-writes flushes, snapshot isolation, and the
// exported bp_service metrics. The concurrent stress cases double as
// the TSan workload.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "service/provenance_service.hpp"
#include "storage/env.hpp"
#include "util/time.hpp"

namespace bp::service {
namespace {

capture::VisitEvent MakeVisit(const std::string& profile, int i) {
  capture::VisitEvent v;
  v.time = util::Days(1) + static_cast<util::TimeMs>(i) * 1000;
  v.tab = 1;
  v.visit_id = static_cast<uint64_t>(i) + 1;
  v.url = "https://" + profile + ".example/page/" + std::to_string(i);
  v.title = profile + " page " + std::to_string(i);
  v.action = capture::NavigationAction::kTyped;
  return v;
}

std::string UrlOf(const std::string& profile, int i) {
  return "https://" + profile + ".example/page/" + std::to_string(i);
}

class ServiceTest : public ::testing::Test {
 protected:
  ServiceOptions BaseOptions() {
    ServiceOptions options;
    options.db.db.env = &env_;
    return options;
  }

  // True when `profile`'s frozen view resolves the URL of event `i`.
  bool Sees(ProvenanceService& svc, const std::string& profile, int i) {
    bool found = false;
    EXPECT_TRUE(svc.WithSnapshot(profile,
                                 [&](prov::ProvenanceDb::SnapshotView& view) {
                                   found =
                                       view.store().PageForUrl(UrlOf(profile, i))
                                           .ok();
                                   return util::Status::Ok();
                                 })
                    .ok());
    return found;
  }

  storage::MemEnv env_;
};

TEST_F(ServiceTest, CreateRejectsInvalidOptions) {
  auto no_root = ProvenanceService::Create("", BaseOptions());
  EXPECT_EQ(no_root.status().code(), util::StatusCode::kInvalidArgument);

  ServiceOptions options = BaseOptions();
  options.workers = 0;
  EXPECT_EQ(ProvenanceService::Create("/p", options).status().code(),
            util::StatusCode::kInvalidArgument);

  options = BaseOptions();
  options.max_live_handles = 0;
  EXPECT_EQ(ProvenanceService::Create("/p", options).status().code(),
            util::StatusCode::kInvalidArgument);

  options = BaseOptions();
  options.queue_capacity = 0;
  EXPECT_EQ(ProvenanceService::Create("/p", options).status().code(),
            util::StatusCode::kInvalidArgument);

  options = BaseOptions();
  options.db.ingest_batch = 0;
  EXPECT_EQ(ProvenanceService::Create("/p", options).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(ServiceTest, RejectsInvalidProfileIds) {
  auto svc = ProvenanceService::Create("/p", BaseOptions());
  ASSERT_TRUE(svc.ok());
  // Ids become <root>/<id>.db and metric label values: anything that
  // could escape the service root ('/', '\\', '..') or corrupt a label
  // ('"', control characters) is refused at the door, by every
  // profile-taking entry point.
  const std::string bad[] = {"",    "../evil", "a/b",
                             "a\\b", "a\"b",   std::string("a\nb")};
  for (const std::string& profile : bad) {
    EXPECT_EQ((*svc)->Ingest(profile, MakeVisit("x", 0)).code(),
              util::StatusCode::kInvalidArgument)
        << profile;
    EXPECT_EQ((*svc)->Flush(profile).code(),
              util::StatusCode::kInvalidArgument)
        << profile;
    EXPECT_EQ((*svc)
                  ->WithSnapshot(profile,
                                 [](prov::ProvenanceDb::SnapshotView&) {
                                   return util::Status::Ok();
                                 })
                  .code(),
              util::StatusCode::kInvalidArgument)
        << profile;
  }
  // Nothing slipped past validation into a queue.
  EXPECT_EQ((*svc)->Stats().enqueued, 0u);
}

TEST_F(ServiceTest, RoutesProfilesToStableShardsAndIsolatesThem) {
  ServiceOptions options = BaseOptions();
  options.workers = 3;
  auto svc = ProvenanceService::Create("/p", options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  // The route is a pure function of the profile id.
  EXPECT_EQ((*svc)->ShardOf("alice"), (*svc)->ShardOf("alice"));
  EXPECT_LT((*svc)->ShardOf("alice"), (*svc)->workers());

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*svc)->Ingest("alice", MakeVisit("alice", i)).ok());
    ASSERT_TRUE((*svc)->Ingest("bob", MakeVisit("bob", i)).ok());
  }
  ASSERT_TRUE((*svc)->Drain().ok());

  // Each profile's view holds its own pages and none of the other's.
  ASSERT_TRUE(
      (*svc)
          ->WithSnapshot("alice",
                         [&](prov::ProvenanceDb::SnapshotView& view) {
                           EXPECT_TRUE(
                               view.store().PageForUrl(UrlOf("alice", 0)).ok());
                           EXPECT_FALSE(
                               view.store().PageForUrl(UrlOf("bob", 0)).ok());
                           return util::Status::Ok();
                         })
          .ok());
  ASSERT_TRUE(
      (*svc)
          ->WithSnapshot("bob",
                         [&](prov::ProvenanceDb::SnapshotView& view) {
                           EXPECT_TRUE(
                               view.store().PageForUrl(UrlOf("bob", 4)).ok());
                           EXPECT_FALSE(
                               view.store().PageForUrl(UrlOf("alice", 4)).ok());
                           return util::Status::Ok();
                         })
          .ok());
}

TEST_F(ServiceTest, EvictionClosesCleanlyAndReopenSeesEverything) {
  ServiceOptions options = BaseOptions();
  options.workers = 1;
  options.max_live_handles = 1;  // every profile switch evicts
  auto svc = ProvenanceService::Create("/p", options);
  ASSERT_TRUE(svc.ok());

  const int kProfiles = 4;
  for (int round = 0; round < 2; ++round) {
    for (int p = 0; p < kProfiles; ++p) {
      std::string profile = "p" + std::to_string(p);
      ASSERT_TRUE((*svc)->Ingest(profile, MakeVisit(profile, round)).ok());
    }
    ASSERT_TRUE((*svc)->Drain().ok());
  }

  // Every profile's data survived its evictions (Close checkpoints;
  // reopen recovers), across rounds.
  for (int p = 0; p < kProfiles; ++p) {
    std::string profile = "p" + std::to_string(p);
    EXPECT_TRUE(Sees(**svc, profile, 0)) << profile;
    EXPECT_TRUE(Sees(**svc, profile, 1)) << profile;
  }

  ServiceStats stats = (*svc)->Stats();
  EXPECT_LE(stats.live_handles, 1u);
  EXPECT_GE(stats.evictions, 3u);  // at least the first round's churn
  EXPECT_GE(stats.reopens, 3u);    // round two reopened evicted profiles
  EXPECT_EQ(stats.opens, stats.handle_misses);
  EXPECT_EQ(stats.committed, stats.enqueued);
}

TEST_F(ServiceTest, SustainsMoreProfilesThanTheHandleCap) {
  ServiceOptions options = BaseOptions();
  options.workers = 2;
  options.max_live_handles = 2;
  auto svc = ProvenanceService::Create("/p", options);
  ASSERT_TRUE(svc.ok());

  const int kProfiles = 8;
  for (int i = 0; i < 3; ++i) {
    for (int p = 0; p < kProfiles; ++p) {
      std::string profile = "prof" + std::to_string(p);
      ASSERT_TRUE((*svc)->Ingest(profile, MakeVisit(profile, i)).ok());
    }
  }
  ASSERT_TRUE((*svc)->Drain().ok());
  for (int p = 0; p < kProfiles; ++p) {
    EXPECT_TRUE(Sees(**svc, "prof" + std::to_string(p), 2));
  }
  EXPECT_LE((*svc)->Stats().live_handles, 2u);
}

TEST_F(ServiceTest, FlushIsAReadYourWritesBarrier) {
  auto svc = ProvenanceService::Create("/p", BaseOptions());
  ASSERT_TRUE(svc.ok());
  ASSERT_TRUE((*svc)->Ingest("alice", MakeVisit("alice", 7)).ok());
  ASSERT_TRUE((*svc)->Flush("alice").ok());
  ServiceStats stats = (*svc)->Stats();
  EXPECT_EQ(stats.committed, stats.enqueued);
  EXPECT_TRUE(Sees(**svc, "alice", 7));
}

TEST_F(ServiceTest, SnapshotViewIsFrozenAgainstLaterIngest) {
  auto svc = ProvenanceService::Create("/p", BaseOptions());
  ASSERT_TRUE(svc.ok());
  ASSERT_TRUE((*svc)->Ingest("alice", MakeVisit("alice", 0)).ok());

  ASSERT_TRUE(
      (*svc)
          ->WithSnapshot(
              "alice",
              [&](prov::ProvenanceDb::SnapshotView& view) {
                // WithSnapshot flushed: the earlier event is visible.
                EXPECT_TRUE(view.store().PageForUrl(UrlOf("alice", 0)).ok());
                // Ingested AND committed after the freeze: invisible
                // here, visible to the next snapshot.
                EXPECT_TRUE(
                    (*svc)->Ingest("alice", MakeVisit("alice", 1)).ok());
                EXPECT_TRUE((*svc)->Flush("alice").ok());
                EXPECT_FALSE(view.store().PageForUrl(UrlOf("alice", 1)).ok());
                return util::Status::Ok();
              })
          .ok());
  EXPECT_TRUE(Sees(**svc, "alice", 1));
}

TEST_F(ServiceTest, PinnedHandleSurvivesCachePressure) {
  ServiceOptions options = BaseOptions();
  options.workers = 1;
  options.max_live_handles = 1;
  auto svc = ProvenanceService::Create("/p", options);
  ASSERT_TRUE(svc.ok());
  ASSERT_TRUE((*svc)->Ingest("alice", MakeVisit("alice", 0)).ok());

  ASSERT_TRUE(
      (*svc)
          ->WithSnapshot(
              "alice",
              [&](prov::ProvenanceDb::SnapshotView& view) {
                // Committing to a second profile wants a second handle;
                // alice's is pinned by this view, so the cache must run
                // over its cap instead of evicting it. (The overshoot
                // itself is transient — the worker's unpin shrinks the
                // cache back — so the durable evidence is that alice
                // never had to be reopened: both profiles were first
                // opens, zero reopens, while the cap is 1.)
                EXPECT_TRUE((*svc)->Ingest("bob", MakeVisit("bob", 0)).ok());
                EXPECT_TRUE((*svc)->Flush("bob").ok());
                ServiceStats mid = (*svc)->Stats();
                EXPECT_GE(mid.opens, 2u);
                EXPECT_EQ(mid.reopens, 0u);
                // The pinned view still reads.
                EXPECT_TRUE(view.store().PageForUrl(UrlOf("alice", 0)).ok());
                return util::Status::Ok();
              })
          .ok());
  // Pins dropped: the cache shrinks back under its cap.
  EXPECT_LE((*svc)->Stats().live_handles, 1u);
  EXPECT_TRUE(Sees(**svc, "alice", 0));
  EXPECT_TRUE(Sees(**svc, "bob", 0));
}

TEST_F(ServiceTest, RejectBackpressureReturnsBudgetExhausted) {
  ServiceOptions options = BaseOptions();
  options.workers = 1;
  options.queue_capacity = 2;
  options.backpressure = capture::BackpressurePolicy::kReject;
  // Make every commit pay a visible fsync so the queue can actually
  // fill while the worker is busy.
  options.db.db.sync = true;
  options.db.db.wal_group_commit = 1;
  auto svc = ProvenanceService::Create("/p", options);
  ASSERT_TRUE(svc.ok());
  env_.set_sync_cost_us(20000);

  bool saw_reject = false;
  for (int i = 0; i < 200 && !saw_reject; ++i) {
    util::Status status = (*svc)->Ingest("alice", MakeVisit("alice", i));
    if (status.code() == util::StatusCode::kBudgetExhausted) {
      saw_reject = true;
    } else {
      ASSERT_TRUE(status.ok()) << status.ToString();
    }
  }
  env_.set_sync_cost_us(0);
  EXPECT_TRUE(saw_reject);
  ASSERT_TRUE((*svc)->Drain().ok());
  ServiceStats stats = (*svc)->Stats();
  EXPECT_GT(stats.rejected, 0u);
  // Rejected events were refused at the door, not half-applied.
  EXPECT_EQ(stats.committed, stats.enqueued);
}

TEST_F(ServiceTest, BlockBackpressureIsLossless) {
  ServiceOptions options = BaseOptions();
  options.workers = 2;
  options.queue_capacity = 4;
  options.backpressure = capture::BackpressurePolicy::kBlock;
  options.db.db.sync = true;
  options.db.db.wal_group_commit = 1;
  auto svc = ProvenanceService::Create("/p", options);
  ASSERT_TRUE(svc.ok());
  env_.set_sync_cost_us(500);

  const int kThreads = 3;
  const int kPerThread = 40;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::string profile = "prof" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        if (!(*svc)->Ingest(profile, MakeVisit(profile, i)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  env_.set_sync_cost_us(0);
  ASSERT_TRUE((*svc)->Drain().ok());
  EXPECT_EQ(failures.load(), 0);

  ServiceStats stats = (*svc)->Stats();
  EXPECT_EQ(stats.enqueued, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.committed, stats.enqueued);
  EXPECT_EQ(stats.rejected, 0u);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(Sees(**svc, "prof" + std::to_string(t), kPerThread - 1));
  }
}

// The TSan workload: capture threads spraying many profiles across a
// small handle cache while snapshot readers pin and release handles
// concurrently — eviction under load.
TEST_F(ServiceTest, ConcurrentIngestAndSnapshotsUnderEvictionPressure) {
  ServiceOptions options = BaseOptions();
  options.workers = 3;
  options.max_live_handles = 2;
  options.queue_capacity = 64;
  auto svc = ProvenanceService::Create("/p", options);
  ASSERT_TRUE(svc.ok());

  const int kProfiles = 6;
  const int kThreads = 4;
  const int kPerThread = 30;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string profile =
            "prof" + std::to_string((t * kPerThread + i) % kProfiles);
        int id = t * kPerThread + i;
        if (!(*svc)->Ingest(profile, MakeVisit(profile, id)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    int p = 0;
    while (!stop.load()) {
      std::string profile = "prof" + std::to_string(p++ % kProfiles);
      util::Status status = (*svc)->WithSnapshot(
          profile, [](prov::ProvenanceDb::SnapshotView& view) {
            // Touch the frozen view; content depends on timing.
            (void)view.commit_seq();
            return util::Status::Ok();
          });
      if (!status.ok()) failures.fetch_add(1);
    }
  });
  for (auto& thread : writers) thread.join();
  stop.store(true);
  reader.join();
  ASSERT_TRUE((*svc)->Drain().ok());
  EXPECT_EQ(failures.load(), 0);
  ServiceStats stats = (*svc)->Stats();
  EXPECT_EQ(stats.enqueued, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.committed, stats.enqueued);
}

// Regression: metrics dumps (registry collector lock → service
// collector → Stats() → registry mu_) used to deadlock against handle
// churn, which held mu_ across ProvenanceDb::Open/Close (both take the
// collector lock). Churn a cap-1 cache while a thread dumps in a loop;
// the test finishing at all is the assertion.
TEST_F(ServiceTest, MetricsDumpsConcurrentWithHandleChurn) {
  ServiceOptions options = BaseOptions();
  options.workers = 2;
  options.max_live_handles = 1;  // every profile switch opens + evicts
  auto svc = ProvenanceService::Create("/churn", options);
  ASSERT_TRUE(svc.ok());

  std::atomic<bool> stop{false};
  std::thread dumper([&] {
    while (!stop.load()) {
      (void)obs::MetricsRegistry::Global().DumpJson();
    }
  });
  const int kProfiles = 4;
  const int kEvents = 60;
  for (int i = 0; i < kEvents; ++i) {
    std::string profile = "prof" + std::to_string(i % kProfiles);
    ASSERT_TRUE((*svc)->Ingest(profile, MakeVisit(profile, i)).ok());
    // Periodic barriers keep the workers opening and evicting (rather
    // than folding a whole round into one batch on a warm handle).
    if (i % kProfiles == kProfiles - 1) ASSERT_TRUE((*svc)->Drain().ok());
  }
  ASSERT_TRUE((*svc)->Drain().ok());
  stop.store(true);
  dumper.join();

  ServiceStats stats = (*svc)->Stats();
  EXPECT_EQ(stats.committed, static_cast<uint64_t>(kEvents));
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.live_handles, 1u);
}

TEST_F(ServiceTest, ExportsServiceMetrics) {
  auto svc = ProvenanceService::Create("/metrics-probe", BaseOptions());
  ASSERT_TRUE(svc.ok());
  ASSERT_TRUE((*svc)->Ingest("alice", MakeVisit("alice", 0)).ok());
  ASSERT_TRUE((*svc)->Drain().ok());

  std::string json = obs::MetricsRegistry::Global().DumpJson();
  EXPECT_NE(json.find("bp_service_live_handles"), std::string::npos);
  EXPECT_NE(json.find("bp_service_ingest_us"), std::string::npos);
  EXPECT_NE(json.find("/metrics-probe"), std::string::npos);
  EXPECT_NE(json.find("bp_service_queue_depth"), std::string::npos);
}

}  // namespace
}  // namespace bp::service
